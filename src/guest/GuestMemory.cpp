//===-- guest/GuestMemory.cpp - Sparse paged guest address space ----------==//

#include "guest/GuestMemory.h"

#include <algorithm>

using namespace vg;

bool GuestMemory::ExecSnapshot::fetch(uint32_t Addr, void *Out,
                                      uint32_t Len) const {
  if (Len == 0)
    return true;
  // Binary search for the last range with Base <= Addr; a fetch never
  // straddles two ranges (coalescing merged adjacent pages, so a gap means
  // non-executable memory anyway).
  auto It = std::upper_bound(
      Ranges.begin(), Ranges.end(), Addr,
      [](uint32_t A, const Range &R) { return A < R.Base; });
  if (It == Ranges.begin())
    return false;
  const Range &R = *--It;
  uint64_t Off = static_cast<uint64_t>(Addr) - R.Base;
  if (Off + Len > R.Bytes.size())
    return false;
  std::memcpy(Out, R.Bytes.data() + Off, Len);
  return true;
}

GuestMemory::ExecSnapshot GuestMemory::snapshotExecRanges() const {
  std::vector<uint32_t> ExecPages;
  ExecPages.reserve(Pages.size());
  for (const auto &[Idx, P] : Pages)
    if (P->Perms & PermExec)
      ExecPages.push_back(Idx);
  std::sort(ExecPages.begin(), ExecPages.end());

  ExecSnapshot Snap;
  for (size_t I = 0; I != ExecPages.size(); ++I) {
    uint32_t Idx = ExecPages[I];
    if (Snap.Ranges.empty() ||
        ExecPages[I - 1] + 1 != Idx) {
      Snap.Ranges.push_back({Idx << PageShift, {}});
      Snap.Ranges.back().Bytes.reserve(PageSize);
    }
    const Page *P = Pages.find(Idx)->second.get();
    ExecSnapshot::Range &R = Snap.Ranges.back();
    R.Bytes.insert(R.Bytes.end(), P->Data.begin(), P->Data.end());
  }
  return Snap;
}

void GuestMemory::map(uint32_t Addr, uint32_t Len, uint8_t Perms) {
  if (Len == 0)
    return;
  uint32_t First = Addr >> PageShift;
  uint32_t Last = (Addr + Len - 1) >> PageShift;
  for (uint32_t P = First;; ++P) {
    auto &Slot = Pages[P];
    if (!Slot) {
      Slot = std::make_unique<Page>();
      Slot->Data.fill(0);
    }
    Slot->Perms = Perms;
    if (P == Last)
      break;
  }
  LastIdx = ~0u;
  LastPage = nullptr;
}

void GuestMemory::unmap(uint32_t Addr, uint32_t Len) {
  if (Len == 0)
    return;
  uint32_t First = Addr >> PageShift;
  uint32_t Last = (Addr + Len - 1) >> PageShift;
  for (uint32_t P = First;; ++P) {
    Pages.erase(P);
    if (P == Last)
      break;
  }
  LastIdx = ~0u;
  LastPage = nullptr;
}

void GuestMemory::protect(uint32_t Addr, uint32_t Len, uint8_t Perms) {
  if (Len == 0)
    return;
  uint32_t First = Addr >> PageShift;
  uint32_t Last = (Addr + Len - 1) >> PageShift;
  for (uint32_t P = First;; ++P) {
    if (Page *Pg = lookup(P))
      Pg->Perms = Perms;
    if (P == Last)
      break;
  }
}

template <bool IsWrite>
MemFault GuestMemory::access(uint32_t Addr, void *Buf, uint32_t Len,
                             uint8_t NeedPerm) const {
  uint8_t *Bytes = static_cast<uint8_t *>(Buf);
  uint32_t Done = 0;
  while (Done != Len) {
    uint32_t A = Addr + Done;
    Page *P = lookup(A >> PageShift);
    if (!P || (NeedPerm && !(P->Perms & NeedPerm)))
      return MemFault{true, A, IsWrite};
    uint32_t Off = A & (PageSize - 1);
    uint32_t Chunk = std::min(Len - Done, PageSize - Off);
    if constexpr (IsWrite)
      std::memcpy(P->Data.data() + Off, Bytes + Done, Chunk);
    else
      std::memcpy(Bytes + Done, P->Data.data() + Off, Chunk);
    Done += Chunk;
  }
  return MemFault{};
}

MemFault GuestMemory::read(uint32_t Addr, void *Out, uint32_t Len,
                           bool IgnorePerms) const {
  return access<false>(Addr, Out, Len,
                       IgnorePerms ? 0 : static_cast<uint8_t>(PermRead));
}

MemFault GuestMemory::write(uint32_t Addr, const void *Data, uint32_t Len,
                            bool IgnorePerms) {
  return access<true>(Addr, const_cast<void *>(Data), Len,
                      IgnorePerms ? 0 : static_cast<uint8_t>(PermWrite));
}

MemFault GuestMemory::fetch(uint32_t Addr, void *Out, uint32_t Len) const {
  return access<false>(Addr, Out, Len, PermExec);
}
