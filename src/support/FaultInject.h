//===-- support/FaultInject.h - Deterministic fault injection ---*- C++ -*-==//
///
/// \file
/// The --fault-inject subsystem: a seeded plan of adversity that the
/// SimKernel and the core consult at well-defined decision points —
/// syscall error returns, short reads/writes, mmap/brk exhaustion,
/// spurious nanosleep/yield wakeups, signal storms at block boundaries,
/// forced preemption (quantum = 1 slices), and translation-table flush
/// pressure. Every decision comes from the plan's own PRNG, advanced only
/// when consulted, so a run is exactly reproducible from its seed: the
/// same seed against the same image yields the same injections in the
/// same order (and therefore a byte-identical --trace-events dump).
///
/// Spec grammar (the value of --fault-inject=):
///
///   spec    := item ("," item)*
///   item    := kind (":" rate)? | "all" (":" rate)? | "seed=" N
///   kind    := syscall | shortio | mempressure | wakeup | sigstorm
///            | preempt | ttflush
///   rate    := decimal "1-in-N" chance per decision point (default per
///              kind, below)
///
/// e.g. --fault-inject=syscall:8,sigstorm:64,seed=42
///      --fault-inject=all,seed=7
///
//===----------------------------------------------------------------------===//
#ifndef VG_SUPPORT_FAULTINJECT_H
#define VG_SUPPORT_FAULTINJECT_H

#include <cstdint>
#include <string>

namespace vg {

/// The injectable fault categories.
enum class FaultKind : unsigned {
  Syscall,     ///< fallible syscall returns 0xFFFFFFFF without doing work
  ShortIO,     ///< read/write transfers fewer bytes than requested
  MemPressure, ///< mmap/brk/mremap report exhaustion
  Wakeup,      ///< nanosleep/yield return early/spuriously
  SigStorm,    ///< an installed-handler signal is queued at a block boundary
  Preempt,     ///< a scheduling slice is cut to quantum = 1
  TTFlush,     ///< the whole translation table is invalidated
  NumKinds
};

constexpr unsigned NumFaultKinds = static_cast<unsigned>(FaultKind::NumKinds);

/// Short stable name ("syscall", "sigstorm", ...) used in specs, traces,
/// and the --profile report.
const char *faultKindName(FaultKind K);

/// A parsed, seeded fault plan. Copyable; all state is inline.
class FaultPlan {
public:
  /// Parses a spec (see file comment). Returns false and sets \p Err on a
  /// malformed spec; the plan is unusable in that case.
  bool parse(const std::string &Spec, std::string &Err);

  uint64_t seed() const { return Seed; }
  bool enabled(FaultKind K) const { return Rate[static_cast<unsigned>(K)] != 0; }

  /// One decision: true with probability 1-in-rate(K). Advances the PRNG
  /// only when the kind is enabled, so disabling a kind does not perturb
  /// the others' sequences... it does shift them; see note in the .cpp —
  /// determinism is per-spec, not across specs.
  bool roll(FaultKind K);

  /// Deterministic value in [0, Bound). Bound must be nonzero.
  uint32_t pick(uint32_t Bound);

  // --- counters (observability; --profile reads these) -------------------
  uint64_t rolls() const { return Rolls; }
  uint64_t injected(FaultKind K) const {
    return Injected[static_cast<unsigned>(K)];
  }
  uint64_t injectedTotal() const;

private:
  uint64_t next(); // splitmix64 step

  uint64_t Seed = 0;
  uint64_t State = 0;
  uint32_t Rate[NumFaultKinds] = {}; // 0 = disabled
  uint64_t Rolls = 0;
  uint64_t Injected[NumFaultKinds] = {};
};

} // namespace vg

#endif // VG_SUPPORT_FAULTINJECT_H
