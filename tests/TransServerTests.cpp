//===-- tests/TransServerTests.cpp - Translation server -------------------==//
///
/// \file
/// Tests for the --tt-server subsystem, bottom-up: the VGTP framing and
/// daemon protocol (hit/miss/put/poison round trips, malformed and
/// truncated frames dropping the connection, PUT validation), the client
/// transport robustness (per-request deadline, bounded retries with
/// backoff, the dead-daemon latch — every failure degrades to the local
/// cache or the inline JIT with byte-identical guest output, never a
/// stall), write-through into the local cache, the request-coalescing
/// hammer (the TSan target of the `concurrency`/`server` ctest labels),
/// the daemon's poison eviction and byte budget, and the end-to-end
/// acceptance bar: a fresh run against a warmed daemon installs >= 90% of
/// its translations from the server.
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "core/TransCache.h"
#include "core/TranslationService.h"
#include "guestlib/GuestLib.h"
#include "server/TransProto.h"
#include "server/TransServer.h"
#include "server/TransServerClient.h"
#include "tools/Nulgrind.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

using namespace vg;
using namespace vg::vg1;

namespace {

namespace fs = std::filesystem;

/// Fresh per-test directory, removed on scope exit.
struct ScratchDir {
  fs::path Path;
  ScratchDir() {
    static int Counter = 0;
    Path = fs::temp_directory_path() /
           ("vgtsrv-test-" + std::to_string(getpid()) + "-" +
            std::to_string(Counter++));
    fs::remove_all(Path);
  }
  ~ScratchDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }
};

/// Fresh socket path in /tmp (sun_path is short; scratch dirs can nest).
std::string freshSockPath() {
  static int Counter = 0;
  return (fs::temp_directory_path() /
          ("vgtsrv-" + std::to_string(getpid()) + "-" +
           std::to_string(Counter++) + ".sock"))
      .string();
}

/// An in-process daemon over \p Dir, stopped (and socket unlinked) on
/// scope exit.
struct Daemon {
  std::string Sock = freshSockPath();
  TransServer Server;
  explicit Daemon(const std::string &Dir, uint64_t MaxBytes = 0,
                  int ReadDelayMs = 0)
      : Server([&] {
          TransServer::Options O;
          O.SocketPath = Sock;
          O.Dir = Dir;
          O.MaxBytes = MaxBytes;
          O.ReadDelayMs = ReadDelayMs;
          return O;
        }()) {
    std::string Err;
    if (!Server.start(Err))
      ADD_FAILURE() << "daemon start failed: " << Err;
  }
  ~Daemon() { Server.stop(); }
};

TransServerClient::Config clientConfig(const std::string &Sock,
                                       int TimeoutMs = 2000) {
  TransServerClient::Config C;
  C.SocketPath = Sock;
  C.TimeoutMs = TimeoutMs;
  return C;
}

//===----------------------------------------------------------------------===//
// Making real entry images: a cold service run against a local cache dir
//===----------------------------------------------------------------------===//

constexpr uint32_t CodeBase = 0x1000;
constexpr uint64_t TestCfg = 1; ///< the fixture's config fingerprint

struct StubHost : TranslationHost {
  unsigned Notes = 0;
  void setupTranslation(TranslationOptions &, uint32_t, bool,
                        Translation *Raw) override {
    Raw->Cacheable = true;
  }
  void noteTranslation(uint32_t, const Translation &, double) override {
    ++Notes;
  }
  void mergePhaseTimes(const PhaseTimes &) override {}
  void promotionInstalled(Translation *, uint64_t) override {}
};

/// A bank of tiny blocks plus a service wired to a local cache dir and/or
/// a daemon socket (empty string = not attached), both under TestCfg.
struct ServiceFixture {
  GuestMemory Mem;
  StubHost Host;
  TranslationService XS;
  std::vector<uint32_t> Blocks;

  ServiceFixture(const std::string &CacheDir, const std::string &Sock,
                 unsigned NBlocks = 4, int TimeoutMs = 2000)
      : XS(Host, Mem) {
    Assembler Code(CodeBase);
    for (unsigned I = 0; I != NBlocks; ++I) {
      Blocks.push_back(Code.here());
      Code.movi(Reg::R0, I);
      Code.ret();
    }
    GuestImage Img = GuestImageBuilder().addCode(Code).entry(CodeBase).build();
    for (const ImageSegment &S : Img.Segments) {
      Mem.map(S.Base, static_cast<uint32_t>(S.Bytes.size()), S.Perms);
      Mem.write(S.Base, S.Bytes.data(), static_cast<uint32_t>(S.Bytes.size()),
                /*IgnorePerms=*/true);
    }
    if (!CacheDir.empty())
      XS.attachCache(std::make_unique<TransCache>(CacheDir, 0, TestCfg));
    if (!Sock.empty())
      XS.attachServer(std::make_unique<TransServerClient>(
                          clientConfig(Sock, TimeoutMs)),
                      TestCfg);
  }
};

struct EntryImage {
  uint64_t Cfg = 0;
  uint64_t Key = 0;
  std::vector<uint8_t> Bytes;
};

/// Reads every .vgtc image from \p Dir, keys parsed from the filenames.
std::vector<EntryImage> collectImages(const fs::path &Dir) {
  std::vector<EntryImage> Out;
  for (const auto &DE : fs::directory_iterator(Dir)) {
    if (DE.path().extension() != ".vgtc")
      continue;
    std::string Stem = DE.path().stem().string();
    if (Stem.size() != 33 || Stem[16] != '-')
      continue;
    EntryImage E;
    E.Cfg = std::strtoull(Stem.substr(0, 16).c_str(), nullptr, 16);
    E.Key = std::strtoull(Stem.substr(17).c_str(), nullptr, 16);
    std::ifstream F(DE.path(), std::ios::binary);
    E.Bytes.assign(std::istreambuf_iterator<char>(F),
                   std::istreambuf_iterator<char>());
    Out.push_back(std::move(E));
  }
  return Out;
}

/// Populates \p Dir with NBlocks real entry images via a cold service run.
std::vector<EntryImage> makeImages(const ScratchDir &Dir,
                                   unsigned NBlocks = 2) {
  ServiceFixture Cold(Dir.str(), "", NBlocks);
  for (uint32_t PC : Cold.Blocks)
    Cold.XS.translateSync(PC, /*Hot=*/false);
  EXPECT_EQ(Cold.XS.jitStats().CacheWrites, NBlocks);
  return collectImages(Dir.Path);
}

//===----------------------------------------------------------------------===//
// Protocol round trip
//===----------------------------------------------------------------------===//

TEST(TransServerProtocol, RoundTripHitMissPutPoison) {
  ScratchDir SrcDir;
  std::vector<EntryImage> Images = makeImages(SrcDir, 2);
  ASSERT_EQ(Images.size(), 2u);

  ScratchDir SrvDir;
  Daemon D(SrvDir.str());
  TransServerClient C(clientConfig(D.Sock));

  // Empty daemon: every key is a miss.
  std::vector<uint8_t> Fetched;
  EXPECT_EQ(C.get(Images[0].Cfg, Images[0].Key, Fetched),
            TransServerClient::FetchResult::Miss);

  // PUT both images, GET them back byte-identical.
  for (const EntryImage &E : Images)
    EXPECT_TRUE(C.put(E.Cfg, E.Key, E.Bytes));
  EXPECT_EQ(D.Server.indexedEntries(), 2u);
  for (const EntryImage &E : Images) {
    Fetched.clear();
    ASSERT_EQ(C.get(E.Cfg, E.Key, Fetched),
              TransServerClient::FetchResult::Hit);
    EXPECT_EQ(Fetched, E.Bytes);
  }

  // The served image decodes under the same validation a local file gets.
  TransCacheEntry E;
  EXPECT_EQ(TransCache::decodeEntryFile(Images[0].Bytes, Images[0].Cfg,
                                        Images[0].Key, E,
                                        /*ResolveCallees=*/true),
            TransCache::LoadResult::Found);
  ASSERT_FALSE(E.Extents.empty());

  // Poisoning the entry's range evicts it (reply-acknowledged, so the
  // eviction is complete when poison() returns); the other entry stays.
  C.poison(Images[0].Cfg, E.Extents[0].first, 1);
  Fetched.clear();
  EXPECT_EQ(C.get(Images[0].Cfg, Images[0].Key, Fetched),
            TransServerClient::FetchResult::Miss);
  EXPECT_EQ(C.get(Images[1].Cfg, Images[1].Key, Fetched),
            TransServerClient::FetchResult::Hit);

  TransServer::Stats S = D.Server.stats();
  EXPECT_EQ(S.Puts, 2u);
  EXPECT_EQ(S.Hits, 3u);
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(S.Poisons, 1u);
  EXPECT_EQ(S.Evicted, 1u);
  EXPECT_EQ(S.PutRejects, 0u);
  EXPECT_EQ(S.MalformedFrames, 0u);
}

TEST(TransServerProtocol, ServerDirSurvivesRestartAndSkipsGarbage) {
  ScratchDir SrvDir;
  std::vector<EntryImage> Images;
  {
    ScratchDir SrcDir;
    Images = makeImages(SrcDir, 2);
    Daemon D(SrvDir.str());
    TransServerClient C(clientConfig(D.Sock));
    for (const EntryImage &E : Images)
      ASSERT_TRUE(C.put(E.Cfg, E.Key, E.Bytes));
  }
  // Plant junk the startup scan must skip: a non-entry file and a
  // truncated (torn-writer) entry under a plausible name.
  std::ofstream(SrvDir.Path / "junk.vgtc") << "not an entry";
  std::ofstream(SrvDir.Path /
                "00000000000000aa-00000000000000bb.vgtc")
      << "VG"; // truncated far below HeaderSize
  Daemon D2(SrvDir.str());
  EXPECT_EQ(D2.Server.indexedEntries(), 2u);
  TransServerClient C(clientConfig(D2.Sock));
  std::vector<uint8_t> Fetched;
  EXPECT_EQ(C.get(Images[0].Cfg, Images[0].Key, Fetched),
            TransServerClient::FetchResult::Hit);
  EXPECT_EQ(Fetched, Images[0].Bytes);
  // The planted names are not in the index, so they are plain misses.
  EXPECT_EQ(C.get(0xaa, 0xbb, Fetched), TransServerClient::FetchResult::Miss);
}

TEST(TransServerProtocol, PutOfUndecodableImageIsRejected) {
  ScratchDir SrcDir;
  std::vector<EntryImage> Images = makeImages(SrcDir, 1);
  ASSERT_EQ(Images.size(), 1u);

  ScratchDir SrvDir;
  Daemon D(SrvDir.str());
  TransServerClient C(clientConfig(D.Sock));

  // A checksum-corrupt image must never land in the directory.
  EntryImage Bad = Images[0];
  Bad.Bytes.back() ^= 0x40;
  EXPECT_FALSE(C.put(Bad.Cfg, Bad.Key, Bad.Bytes));
  EXPECT_EQ(D.Server.indexedEntries(), 0u);
  // An image stored under the wrong key is equally unservable.
  EXPECT_FALSE(C.put(Images[0].Cfg, Images[0].Key ^ 1, Images[0].Bytes));
  // Empty and sub-header images too.
  EXPECT_FALSE(C.put(1, 2, {}));
  TransServer::Stats S = D.Server.stats();
  EXPECT_EQ(S.PutRejects, 3u);
  EXPECT_EQ(S.Puts, 0u);
  EXPECT_EQ(D.Server.indexedEntries(), 0u);
  // The connection survived: rejects are polite Err replies, not drops.
  EXPECT_TRUE(C.put(Images[0].Cfg, Images[0].Key, Images[0].Bytes));
}

//===----------------------------------------------------------------------===//
// Malformed and truncated frames
//===----------------------------------------------------------------------===//

void sendRaw(int Fd, const void *Buf, size_t Len) {
  const uint8_t *P = static_cast<const uint8_t *>(Buf);
  while (Len) {
    ssize_t K = send(Fd, P, Len, 0);
    ASSERT_GT(K, 0);
    P += K;
    Len -= static_cast<size_t>(K);
  }
}

/// Polls \p Cond for up to ~5s (the daemon processes asynchronously).
template <typename F> bool eventually(F Cond) {
  for (int I = 0; I != 500; ++I) {
    if (Cond())
      return true;
    usleep(10 * 1000);
  }
  return Cond();
}

TEST(TransServerProtocol, MalformedMagicDropsConnection) {
  ScratchDir SrvDir;
  Daemon D(SrvDir.str());
  int Fd = srv::connectUnix(D.Sock);
  ASSERT_GE(Fd, 0);
  sendRaw(Fd, "XXXXXXXXXXXXXXXX", 16);
  // The daemon drops us. Our next read sees EOF — or ECONNRESET (Error)
  // when the close outran our unread bytes — never a reply frame and
  // never a stall. A fresh connection still works: one bad peer poisons
  // nothing shared.
  srv::Frame F;
  srv::IoResult R = srv::readFrame(Fd, F, 5000);
  EXPECT_TRUE(R == srv::IoResult::Eof || R == srv::IoResult::Error)
      << static_cast<int>(R);
  close(Fd);
  EXPECT_TRUE(eventually(
      [&] { return D.Server.stats().MalformedFrames >= 1; }));
  TransServerClient C(clientConfig(D.Sock));
  std::vector<uint8_t> Fetched;
  EXPECT_EQ(C.get(1, 2, Fetched), TransServerClient::FetchResult::Miss);
}

TEST(TransServerProtocol, TruncatedBodyDropsConnection) {
  ScratchDir SrvDir;
  Daemon D(SrvDir.str());
  int Fd = srv::connectUnix(D.Sock);
  ASSERT_GE(Fd, 0);
  // A valid GET header promising a 16-byte body, then only 4 bytes and a
  // close: the daemon must treat the stream as unrecoverable, not wait
  // forever and not interpret garbage.
  std::vector<uint8_t> Buf = {'V', 'G', 'T', 'P',
                              static_cast<uint8_t>(srv::MsgType::Get)};
  srv::putU32(Buf, 16);
  Buf.insert(Buf.end(), {1, 2, 3, 4});
  sendRaw(Fd, Buf.data(), Buf.size());
  close(Fd);
  EXPECT_TRUE(eventually(
      [&] { return D.Server.stats().MalformedFrames >= 1; }));
  EXPECT_EQ(D.Server.stats().Requests, 0u);
}

TEST(TransServerProtocol, OversizedBodyLengthIsMalformed) {
  ScratchDir SrvDir;
  Daemon D(SrvDir.str());
  int Fd = srv::connectUnix(D.Sock);
  ASSERT_GE(Fd, 0);
  std::vector<uint8_t> Buf = {'V', 'G', 'T', 'P',
                              static_cast<uint8_t>(srv::MsgType::Get)};
  srv::putU32(Buf, (64u << 20) + 1); // over MaxFrameBody
  sendRaw(Fd, Buf.data(), Buf.size());
  srv::Frame F;
  EXPECT_EQ(srv::readFrame(Fd, F, 5000), srv::IoResult::Eof);
  close(Fd);
  EXPECT_TRUE(eventually(
      [&] { return D.Server.stats().MalformedFrames >= 1; }));
}

//===----------------------------------------------------------------------===//
// Service-level: fetch, validate, install, write-through
//===----------------------------------------------------------------------===//

TEST(TransServerService, ServerOnlyWarmRunInstallsFromDaemon) {
  ScratchDir SrvDir;
  {
    // Cold run writes straight into the daemon's directory — a --tt-cache
    // dir IS a servable dir.
    ServiceFixture Cold(SrvDir.str(), "", 3);
    for (uint32_t PC : Cold.Blocks)
      Cold.XS.translateSync(PC, false);
  }
  Daemon D(SrvDir.str());
  ServiceFixture Warm("", D.Sock, 3);
  for (uint32_t PC : Warm.Blocks)
    ASSERT_NE(Warm.XS.translateSync(PC, false), nullptr);
  const JitStats &J = Warm.XS.jitStats();
  EXPECT_EQ(J.ServerHits, 3u);
  EXPECT_EQ(J.CacheHits, 3u); // server hits are cache hits
  EXPECT_EQ(J.ServerMisses, 0u);
  EXPECT_EQ(J.ServerFallbacks, 0u);
  EXPECT_EQ(J.ServerRejects, 0u);
  EXPECT_GT(J.ServerBytesFetched, 0u);
  // The server identity: every lookup settled into exactly one bucket.
  EXPECT_EQ(J.ServerRequests,
            J.ServerHits + J.ServerMisses + J.ServerRejects +
                J.ServerFallbacks);
}

TEST(TransServerService, ColdRunWarmsTheDaemonViaPuts) {
  ScratchDir SrvDir;
  Daemon D(SrvDir.str());
  {
    ServiceFixture Cold("", D.Sock, 3);
    for (uint32_t PC : Cold.Blocks)
      Cold.XS.translateSync(PC, false);
    EXPECT_EQ(Cold.XS.jitStats().ServerWrites, 3u);
    EXPECT_EQ(Cold.XS.jitStats().ServerMisses, 3u);
  }
  EXPECT_EQ(D.Server.indexedEntries(), 3u);
  ServiceFixture Warm("", D.Sock, 3);
  for (uint32_t PC : Warm.Blocks)
    Warm.XS.translateSync(PC, false);
  EXPECT_EQ(Warm.XS.jitStats().ServerHits, 3u);
}

TEST(TransServerService, ServerHitWritesThroughToLocalCache) {
  ScratchDir SrvDir;
  {
    ServiceFixture Cold(SrvDir.str(), "", 2);
    for (uint32_t PC : Cold.Blocks)
      Cold.XS.translateSync(PC, false);
  }
  Daemon D(SrvDir.str());
  ScratchDir LocalDir;
  {
    ServiceFixture Warm(LocalDir.str(), D.Sock, 2);
    for (uint32_t PC : Warm.Blocks)
      Warm.XS.translateSync(PC, false);
    EXPECT_EQ(Warm.XS.jitStats().ServerHits, 2u);
    // No pipeline ran, so no write-backs — the local copies below came
    // from the write-through path.
    EXPECT_EQ(Warm.XS.jitStats().CacheWrites, 0u);
  }
  // The written-through images are byte-identical to the served ones.
  std::vector<EntryImage> Local = collectImages(LocalDir.Path);
  std::vector<EntryImage> Served = collectImages(SrvDir.Path);
  ASSERT_EQ(Local.size(), 2u);
  auto find = [&](const EntryImage &E) {
    for (const EntryImage &S : Served)
      if (S.Cfg == E.Cfg && S.Key == E.Key)
        return S.Bytes == E.Bytes;
    return false;
  };
  for (const EntryImage &E : Local)
    EXPECT_TRUE(find(E)) << "written-through image diverged from served";

  // Third run, local cache only: everything local now, daemon untouched.
  D.Server.stop();
  ServiceFixture Third(LocalDir.str(), "", 2);
  for (uint32_t PC : Third.Blocks)
    Third.XS.translateSync(PC, false);
  EXPECT_EQ(Third.XS.jitStats().CacheHits, 2u);
}

TEST(TransServerService, CorruptServedBlobIsRejectedThenJitted) {
  ScratchDir SrvDir;
  {
    ServiceFixture Cold(SrvDir.str(), "", 2);
    for (uint32_t PC : Cold.Blocks)
      Cold.XS.translateSync(PC, false);
  }
  Daemon D(SrvDir.str());
  // Corrupt the files AFTER the startup scan indexed them: the daemon now
  // serves bytes whose checksum cannot verify — exactly what a disk gone
  // bad under a live daemon produces. The client must reject and JIT.
  for (const auto &DE : fs::directory_iterator(SrvDir.Path)) {
    std::fstream F(DE.path(), std::ios::in | std::ios::out | std::ios::binary);
    F.seekp(static_cast<std::streamoff>(fs::file_size(DE.path()) / 2));
    F.put('\x55');
  }
  ServiceFixture Warm("", D.Sock, 2);
  for (uint32_t PC : Warm.Blocks)
    ASSERT_NE(Warm.XS.translateSync(PC, false), nullptr);
  const JitStats &J = Warm.XS.jitStats();
  EXPECT_EQ(J.ServerHits, 0u);
  EXPECT_EQ(J.ServerRejects, 2u);
  EXPECT_EQ(J.CacheRejects, 2u);
}

TEST(TransServerService, PoisonEvictsFromDaemonAndBlocksInstall) {
  ScratchDir SrvDir;
  {
    ServiceFixture Cold(SrvDir.str(), "", 2);
    for (uint32_t PC : Cold.Blocks)
      Cold.XS.translateSync(PC, false);
  }
  Daemon D(SrvDir.str());
  ServiceFixture Warm("", D.Sock, 2);
  // A redirect-style invalidation: rejected locally for the rest of the
  // run AND evicted from the daemon.
  Warm.XS.invalidate(Warm.Blocks[0], 4);
  EXPECT_TRUE(eventually([&] { return D.Server.stats().Evicted >= 1; }));
  Warm.XS.translateSync(Warm.Blocks[0], false);
  Warm.XS.translateSync(Warm.Blocks[1], false);
  const JitStats &J = Warm.XS.jitStats();
  EXPECT_EQ(J.ServerHits, 1u);          // only the unpoisoned block
  EXPECT_EQ(J.ServerMisses, 1u);        // the evicted one
  EXPECT_EQ(J.CacheRejects, 0u);
  EXPECT_EQ(D.Server.indexedEntries(), 1u);
}

//===----------------------------------------------------------------------===//
// Transport robustness: the degradation ladder never stalls or crashes
//===----------------------------------------------------------------------===//

TEST(TransServerService, DeadSocketFallsBackToInlineJit) {
  // No daemon ever listened here: every lookup degrades instantly (the
  // connect fails), the dead-latch engages, and the run JITs everything.
  ServiceFixture F("", freshSockPath(), 3, /*TimeoutMs=*/100);
  for (uint32_t PC : F.Blocks)
    ASSERT_NE(F.XS.translateSync(PC, false), nullptr);
  const JitStats &J = F.XS.jitStats();
  EXPECT_EQ(J.ServerHits, 0u);
  EXPECT_GT(J.ServerFallbacks, 0u);
  EXPECT_EQ(J.ServerFallbacks, J.ServerRequests);
  EXPECT_FALSE(F.XS.server()->alive()); // the latch engaged
}

TEST(TransServerService, StalledDaemonDeadlineFiresThenBacksOffThenJits) {
  // A listener that accepts (kernel backlog) but never serves: requests
  // reach the socket, the per-request deadline fires, bounded retries back
  // off, and after MaxStrikes the client latches dead — the guest makes
  // progress on the inline JIT throughout.
  std::string Sock = freshSockPath();
  int ListenFd = srv::listenUnix(Sock, 8);
  ASSERT_GE(ListenFd, 0);
  ServiceFixture F("", Sock, 4, /*TimeoutMs=*/50);
  for (uint32_t PC : F.Blocks)
    ASSERT_NE(F.XS.translateSync(PC, false), nullptr);
  const JitStats &J = F.XS.jitStats();
  EXPECT_EQ(J.ServerHits, 0u);
  EXPECT_GT(J.ServerTimeouts, 0u);
  EXPECT_GT(J.ServerRetries, 0u);
  EXPECT_GT(J.ServerFallbacks, 0u);
  EXPECT_FALSE(F.XS.server()->alive());
  // Once dead, lookups skip the socket: the tail blocks fell back without
  // new timeouts (requests stopped reaching the transport).
  EXPECT_LT(J.ServerTimeouts,
            J.ServerRequests * static_cast<uint64_t>(
                                   F.XS.server()->config().MaxRetries + 1));
  close(ListenFd);
  unlink(Sock.c_str());
}

//===----------------------------------------------------------------------===//
// Concurrency: coalescing under a client hammer (TSan target)
//===----------------------------------------------------------------------===//

TEST(TransServerConcurrency, ConcurrentClientsCoalesceAndAgree) {
  ScratchDir SrvDir;
  std::vector<EntryImage> Images;
  {
    ScratchDir SrcDir;
    Images = makeImages(SrcDir, 2);
    ServiceFixture Cold(SrvDir.str(), "", 2);
    for (uint32_t PC : Cold.Blocks)
      Cold.XS.translateSync(PC, false);
  }
  // ReadDelayMs widens the leader's disk-read window so follower GETs for
  // the same key reliably coalesce instead of racing past each other.
  Daemon D(SrvDir.str(), /*MaxBytes=*/0, /*ReadDelayMs=*/20);
  std::vector<EntryImage> Served = collectImages(SrvDir.Path);
  ASSERT_EQ(Served.size(), 2u);

  constexpr int NThreads = 8;
  constexpr int NRounds = 5;
  std::atomic<int> Bad{0};
  std::vector<std::thread> Ts;
  for (int I = 0; I != NThreads; ++I)
    Ts.emplace_back([&, I] {
      TransServerClient C(clientConfig(D.Sock, 10000));
      for (int R = 0; R != NRounds; ++R) {
        const EntryImage &E = Served[(I + R) % 2 == 0 ? 0 : 1];
        std::vector<uint8_t> Fetched;
        if (C.get(E.Cfg, E.Key, Fetched) !=
                TransServerClient::FetchResult::Hit ||
            Fetched != E.Bytes)
          Bad.fetch_add(1);
      }
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(Bad.load(), 0);
  TransServer::Stats S = D.Server.stats();
  EXPECT_EQ(S.Hits, static_cast<uint64_t>(NThreads * NRounds));
  EXPECT_GE(S.Coalesced, 1u) << "no GETs shared a disk read";
  EXPECT_EQ(S.Connections, static_cast<uint64_t>(NThreads));
}

//===----------------------------------------------------------------------===//
// Daemon byte budget
//===----------------------------------------------------------------------===//

TEST(TransServerDaemon, EvictionHonoursByteBudget) {
  ScratchDir SrcDir;
  std::vector<EntryImage> Images = makeImages(SrcDir, 4);
  ASSERT_EQ(Images.size(), 4u);
  uint64_t OneEntry = Images[0].Bytes.size();

  ScratchDir SrvDir;
  Daemon D(SrvDir.str(), /*MaxBytes=*/2 * OneEntry + OneEntry / 2);
  TransServerClient C(clientConfig(D.Sock));
  for (const EntryImage &E : Images)
    EXPECT_TRUE(C.put(E.Cfg, E.Key, E.Bytes));
  TransServer::Stats S = D.Server.stats();
  EXPECT_EQ(S.Puts, 4u);
  EXPECT_GT(S.Evicted, 0u);
  EXPECT_LE(D.Server.totalBytes(), 2 * OneEntry + OneEntry / 2);
  EXPECT_LT(D.Server.indexedEntries(), 4u);
}

//===----------------------------------------------------------------------===//
// End-to-end under a full Core: the acceptance bar
//===----------------------------------------------------------------------===//

constexpr uint32_t ProgCodeBase = 0x1000;
constexpr uint32_t ProgDataBase = 0x100000;

GuestImage loopProgram() {
  Assembler Code(ProgCodeBase);
  Assembler Data(ProgDataBase);
  GuestLibLabels Lib = emitGuestLib(Code, Data);
  Label Main = Code.newLabel();
  uint32_t Entry = emitStart(Code, Main);
  Code.bind(Main);
  Code.symbol("main");
  Label Str = Data.boundLabel();
  Data.emitString("done\n");
  Code.movi(Reg::R1, 0);
  Label Outer = Code.boundLabel();
  Code.movi(Reg::R2, 0);
  Label Inner = Code.boundLabel();
  Code.addi(Reg::R2, Reg::R2, 1);
  Code.cmpi(Reg::R2, 50);
  Code.blt(Inner);
  Code.addi(Reg::R1, Reg::R1, 1);
  Code.cmpi(Reg::R1, 200);
  Code.blt(Outer);
  Code.movi(Reg::R1, Data.labelAddr(Str));
  Code.call(Lib.Print);
  Code.movi(Reg::R0, 5);
  Code.ret();
  return GuestImageBuilder()
      .addCode(Code)
      .addData(Data)
      .entry(Entry)
      .build();
}

TEST(TransServerEndToEnd, WarmDaemonServesAtLeastNinetyPercent) {
  ScratchDir Dir;
  GuestImage Img = loopProgram();
  // Cold run populates the directory through the ordinary local cache;
  // --tt-cache / --tt-server are excluded from the config fingerprint, so
  // the warm run's keys match even though its option line differs.
  Nulgrind T1, T2;
  RunReport Cold = runUnderCore(
      Img, &T1,
      {"--chaining=yes", "--hot-threshold=2", "--tt-cache=" + Dir.str()});
  ASSERT_TRUE(Cold.Completed);
  ASSERT_GT(Cold.Jit.CacheWrites, 0u);

  Daemon D(Dir.str());
  RunReport Warm = runUnderCore(Img, &T2,
                                {"--chaining=yes", "--hot-threshold=2",
                                 "--tt-server=" + D.Sock});
  ASSERT_TRUE(Warm.Completed);
  EXPECT_EQ(Warm.Stdout, Cold.Stdout);
  EXPECT_EQ(Warm.ExitCode, Cold.ExitCode);
  const JitStats &J = Warm.Jit;
  EXPECT_EQ(J.ServerFallbacks, 0u);
  EXPECT_EQ(J.ServerRejects, 0u);
  EXPECT_GT(J.ServerHits, 0u);
  // The acceptance bar: >= 90% of the run's translation installs came
  // from the daemon (all cache-path lookups settled as server hits).
  uint64_t Lookups = J.CacheHits + J.CacheMisses + J.CacheRejects;
  ASSERT_GT(Lookups, 0u);
  EXPECT_GE(10 * J.ServerHits, 9 * Lookups)
      << "served " << J.ServerHits << " of " << Lookups;
}

TEST(TransServerEndToEnd, DaemonDeathMidRunDegradesByteIdentically) {
  ScratchDir Dir;
  GuestImage Img = loopProgram();
  std::vector<std::string> BaseOpts = {"--chaining=yes", "--hot-threshold=2"};
  Nulgrind T0;
  RunReport Baseline = runUnderCore(Img, &T0, BaseOpts);
  ASSERT_TRUE(Baseline.Completed);

  // Cold-populate, then serve — but kill the daemon before the client's
  // run ends. stop() drops every connection mid-whatever-it-was-doing;
  // with the socket then unlinked, later lookups fail to connect. Either
  // way the run must settle down the ladder with identical guest output.
  {
    Nulgrind T1;
    ASSERT_TRUE(runUnderCore(Img, &T1,
                             {"--chaining=yes", "--hot-threshold=2",
                              "--tt-cache=" + Dir.str()})
                    .Completed);
  }
  Daemon D(Dir.str());
  std::string Sock = D.Sock;
  // Let the very first lookup race the shutdown: stop the daemon from a
  // side thread while the run starts. The precise interleaving varies by
  // scheduling — every outcome (some hits then fallbacks, all fallbacks)
  // must produce the same guest-visible behaviour.
  std::thread Killer([&] { D.Server.stop(); });
  std::vector<std::string> Opts = BaseOpts;
  Opts.push_back("--tt-server=" + Sock);
  Opts.push_back("--tt-server-timeout-ms=50");
  Nulgrind T2;
  RunReport R = runUnderCore(Img, &T2, Opts);
  Killer.join();
  ASSERT_TRUE(R.Completed) << "run must never hang or die with the daemon";
  EXPECT_EQ(R.Stdout, Baseline.Stdout);
  EXPECT_EQ(R.ExitCode, Baseline.ExitCode);
  EXPECT_EQ(R.Jit.ServerRejects, 0u);
  // Accounting stayed coherent whichever rung each lookup reached.
  EXPECT_EQ(R.Jit.ServerRequests, R.Jit.ServerHits + R.Jit.ServerMisses +
                                      R.Jit.ServerRejects +
                                      R.Jit.ServerFallbacks);
}

TEST(TransServerEndToEnd, LocalCachePlusServerPrefersLocal) {
  ScratchDir SrvDir;
  GuestImage Img = loopProgram();
  {
    Nulgrind T1;
    ASSERT_TRUE(runUnderCore(Img, &T1,
                             {"--chaining=yes", "--hot-threshold=2",
                              "--tt-cache=" + SrvDir.str()})
                    .Completed);
  }
  Daemon D(SrvDir.str());
  ScratchDir LocalDir;
  std::vector<std::string> Opts = {"--chaining=yes", "--hot-threshold=2",
                                   "--tt-cache=" + LocalDir.str(),
                                   "--tt-server=" + D.Sock};
  // First run: local cache empty, everything arrives from the daemon and
  // writes through.
  Nulgrind T2, T3;
  RunReport First = runUnderCore(Img, &T2, Opts);
  ASSERT_TRUE(First.Completed);
  EXPECT_GT(First.Jit.ServerHits, 0u);
  // Second run: the write-throughs satisfy every lookup locally; the
  // daemon is consulted only on local misses, of which there are none.
  RunReport Second = runUnderCore(Img, &T3, Opts);
  ASSERT_TRUE(Second.Completed);
  EXPECT_EQ(Second.Stdout, First.Stdout);
  EXPECT_GT(Second.Jit.CacheHits, 0u);
  EXPECT_EQ(Second.Jit.ServerRequests, 0u);
}

} // namespace
