//===-- core/Core.h - The Valgrind core -------------------------*- C++ -*-==//
///
/// \file
/// The core: everything of Section 3 that is not the JIT pipeline itself.
/// Once a monolith, it is now an owner/wiring class over four layered
/// engines plus the extracted TranslationService:
///
///   DispatchLoop        dispatcher + serial/sharded schedulers (3.9, 3.14)
///   SignalEngine        signal queueing, masking, delivery (3.15)
///   RedirectEngine      replacement, redirection, wrapping (3.13)
///   ClientRequestEngine client requests, registered stacks, the
///                       replacement allocator (3.11, R8)
///
/// Core itself owns the client address space, loads guest images
/// (start-up, Section 3.3), routes system calls to the simulated kernel
/// (3.10), drives the events system (3.12), holds run-state and
/// configuration, and checks for self-modifying code (3.16). Every public
/// entry point tools and tests use is kept here as a thin forward, so the
/// decomposition is invisible to callers that do not opt into the engine
/// accessors.
///
//===----------------------------------------------------------------------===//
#ifndef VG_CORE_CORE_H
#define VG_CORE_CORE_H

#include "core/ClientRequestEngine.h"
#include "core/ErrorManager.h"
#include "core/Events.h"
#include "core/GuestImage.h"
#include "core/RedirectEngine.h"
#include "core/SignalEngine.h"
#include "core/ThreadState.h"
#include "core/Tool.h"
#include "core/TransTab.h"
#include "core/Translate.h"
#include "core/TranslationService.h"
#include "kernel/SimKernel.h"
#include "support/EventTrace.h"
#include "support/FaultInject.h"
#include "support/Options.h"
#include "support/Output.h"

#include <array>
#include <atomic>
#include <memory>

namespace vg {

class DispatchLoop;

/// How aggressively to check for self-modifying code (Section 3.16).
enum class SmcMode { None, Stack, All };

/// Exit status of a whole run.
struct CoreExit {
  enum class Kind {
    Exited,      ///< exit syscall or HLT
    FatalSignal, ///< unhandled SIGSEGV/SIGILL
    BlockLimit,  ///< ran out of the block budget passed to run()
  };
  Kind K = Kind::Exited;
  int Code = 0;
  int Signal = 0;
};

/// Run statistics (bench/sec39_dispatch and the Table 2 harness read
/// these).
struct CoreStats {
  uint64_t BlocksDispatched = 0; ///< translations entered
  uint64_t FastCacheHits = 0;    ///< dispatcher direct-mapped cache hits
  uint64_t FastCacheMisses = 0;
  uint64_t Translations = 0;
  uint64_t GuestInsnsTranslated = 0;
  uint64_t ThreadSwitches = 0;
  uint64_t SignalsDelivered = 0;
  uint64_t SignalsDropped = 0; ///< bad target / coalesced / thread exit
  uint64_t SmcRetranslations = 0;
  uint64_t ChainedTransfers = 0;
  uint64_t HostRedirectCalls = 0;
  uint64_t HotPromotions = 0; ///< blocks retranslated as hot superblocks
  /// Trace tier (--trace-tier): traces installed, trace entries executed,
  /// and exits taken through a guarded side exit rather than the trace's
  /// terminal edge (TraceSideExits / TraceExecs is the side-exit rate).
  uint64_t TracesFormed = 0;
  uint64_t TraceExecs = 0;
  uint64_t TraceSideExits = 0;
  /// Guest-thread seconds producing installed translations: pipeline time
  /// for fresh ones, load+validate time for --tt-cache hits. The warm-start
  /// bench compares this across cold/warm runs.
  double TranslateSeconds = 0;
};

/// Signal numbers used by the simulated kernel.
enum Signals : int {
  SigSEGV = 11,
  SigILL = 4,
  SigUSR1 = 10,
  SigUSR2 = 12,
};

/// The core. Construct, configure (setTool/options), loadImage, run.
/// The TranslationHost side is the seam to the extracted
/// TranslationService: the service calls back for pipeline options and
/// guest-thread accounting, the core calls down for translations.
class Core : public KernelHost, public TranslationHost {
public:
  static constexpr int MaxThreads = 32;
  static constexpr uint64_t ThreadQuantum = 100'000; // blocks (Section 3.14)

  explicit Core(Tool *ToolPlugin = nullptr);
  ~Core() override;

  // --- configuration -----------------------------------------------------
  OptionRegistry &options() { return Opts; }
  /// Applies parsed options (smc-check, chaining, ...). Call after
  /// options().parse() and before run().
  void applyOptions();

  OutputSink &output() { return Out; }
  EventHub &events() { return Events; }
  ErrorManager &errors() { return Errors; }
  SimKernel &kernel() { return *Kernel; }
  GuestMemory &memory() { return Memory; }
  AddressSpace &addressSpace() { return AS; }
  Tool *tool() { return ToolPlugin; }
  const CoreStats &stats() const { return Stats; }
  TransTab &transTab() { return TT; }
  TranslationService &translationService() { return *XS; }

  // --- the engines (direct access for tools and tests) --------------------
  ClientRequestEngine &clientRequests() { return *ClReqs; }
  RedirectEngine &redirects() { return *Redirects; }
  SignalEngine &signals() { return *Signals; }
  DispatchLoop &dispatcher() { return *Dispatch; }

  void setSmcMode(SmcMode M) { Smc = M; }
  void setChaining(bool On) { ChainingEnabled = On; }
  /// Executions before a block is retranslated as a hot superblock with
  /// branch chasing (0 disables the hotness tier).
  void setHotThreshold(uint64_t N) { HotThreshold = N; }
  /// Enables the trace tier: hot superblocks whose chain edges are strongly
  /// biased get stitched into optimised traces (requires chaining and the
  /// hot tier to be on — traces form over tier-1 blocks only).
  void setTraceTier(bool On) { TraceTier = On; }
  /// Executions before a tier-1 superblock is considered for trace
  /// formation (0 = 4x the hot threshold).
  void setTraceThreshold(uint64_t N) { TraceThreshold = N; }
  /// Maximum superblocks stitched into one trace (clamped to [2, 8]).
  void setTraceMaxBlocks(unsigned N) {
    TraceMaxBlocks = N < 2 ? 2 : (N > 8 ? 8 : N);
  }
  Profiler *profiler() { return Prof.get(); }
  /// Non-null under --fault-inject / --trace-events.
  FaultPlan *faultPlan() { return Faults.get(); }
  EventTracer *tracer() { return Tracer.get(); }

  // --- start-up (Section 3.3) --------------------------------------------
  /// Loads the client image: maps text/data (firing new_mem_startup, R5),
  /// sets up the initial thread's stack and registers, creates the brk
  /// segment, and applies redirections against the image's symbol table.
  void loadImage(const GuestImage &Img);

  // --- execution -----------------------------------------------------------
  /// Runs the client to completion (or until \p MaxBlocks translations
  /// have been dispatched). Calls the tool's fini().
  CoreExit run(uint64_t MaxBlocks = ~0ull);

  // --- function replacement and wrapping (Section 3.13) -------------------
  /// Replaces the guest function at \p Addr with host code.
  void redirectToHost(uint32_t Addr, HostReplacementFn Fn) {
    Redirects->redirectToHost(Addr, std::move(Fn));
  }
  /// Replaces the function named \p Symbol (resolved at loadImage time;
  /// may be called before or after load).
  void redirectSymbolToHost(const std::string &Symbol, HostReplacementFn Fn) {
    Redirects->redirectSymbolToHost(Symbol, std::move(Fn));
  }
  /// Makes calls to \p From run \p To instead (guest-to-guest).
  void redirectGuest(uint32_t From, uint32_t To) {
    Redirects->redirectGuest(From, To);
  }
  /// Wraps the guest function at \p Addr: Pre hook, the original (via
  /// call-into-guest), Post hook which may rewrite the result.
  void wrapFunction(uint32_t Addr, WrapHooks Hooks) {
    Redirects->wrap(Addr, std::move(Hooks));
  }
  /// Like wrapFunction, resolved against the image symbol table (before or
  /// after loadImage).
  void wrapSymbolFunction(const std::string &Symbol, WrapHooks Hooks) {
    Redirects->wrapSymbol(Symbol, std::move(Hooks));
  }

  /// Calls back into guest code from host context (the mechanism that lets
  /// a replacement function invoke the function it replaced — wrapping).
  /// Returns the callee's r0.
  uint32_t callGuest(ThreadState &TS, uint32_t Addr,
                     const std::vector<uint32_t> &Args);

  // --- replacement allocator (R8) ------------------------------------------
  /// Allocates a client heap block (red zones per the tool's request).
  /// Returns the payload address, 0 on exhaustion.
  uint32_t clientMalloc(int Tid, uint32_t Size, bool Zeroed) {
    return ClReqs->clientMalloc(Tid, Size, Zeroed);
  }
  /// Frees a payload pointer. Returns false (and reports) on a bad free.
  bool clientFree(int Tid, uint32_t Addr) {
    return ClReqs->clientFree(Tid, Addr);
  }
  uint32_t clientRealloc(int Tid, uint32_t Addr, uint32_t NewSize) {
    return ClReqs->clientRealloc(Tid, Addr, NewSize);
  }
  /// Size of a live block (0 if unknown).
  uint32_t heapBlockSize(uint32_t Addr) const {
    return ClReqs->heapBlockSize(Addr);
  }
  /// Live heap blocks (leak checking, Massif).
  const std::map<uint32_t, uint32_t> &heapBlocks() const {
    return ClReqs->heapBlocks();
  }
  uint64_t heapBytesLive() const { return ClReqs->heapBytesLive(); }

  // --- threads (ThreadState access for tools/tests) -----------------------
  ThreadState &thread(int Tid) { return Threads[Tid]; }
  int currentTid() const { return CurTid; }
  int liveThreads() const;
  /// True while the sharded scheduler is running (--sched-threads > 1).
  /// Tools use this to avoid world-lock-only services from lock-free
  /// helper context (e.g. stack capture walks the segment map).
  bool isParallel() const;

  // --- KernelHost (threads & signals, called by the simulated kernel) -----
  int spawnThread(uint32_t Entry, uint32_t SP, uint32_t Arg) override;
  void exitThread(int Tid, int Code) override;
  void setSignalHandler(int Sig, uint32_t Handler) override;
  uint32_t signalHandler(int Sig) const override;
  bool raiseSignal(int Tid, int Sig) override;
  void sigreturn(int Tid) override;
  void requestYield(int Tid) override;

  /// Discards translations intersecting [Addr, Addr+Len) — the
  /// DISCARD_TRANSLATIONS client request and munmap both land here.
  void discardTranslations(uint32_t Addr, uint32_t Len);

  // --- TranslationHost (called by the TranslationService) -----------------
  void setupTranslation(TranslationOptions &TO, uint32_t PC, bool Hot,
                        Translation *Raw) override;
  void noteTranslation(uint32_t PC, const Translation &T,
                       double Seconds) override;
  void mergePhaseTimes(const PhaseTimes &PT) override;
  void promotionInstalled(Translation *T, uint64_t GenBefore) override;

  // Helper callees referenced from generated code (public because the
  // Callee descriptors binding them are defined at namespace scope).
  static uint64_t helperSmcCheck(void *Env, uint64_t TransPtr, uint64_t,
                                 uint64_t, uint64_t);
  static uint64_t helperTrackSp(void *Env, uint64_t, uint64_t, uint64_t,
                                uint64_t);

  /// Best-effort guest stack trace (return-address scan).
  std::vector<uint32_t> captureStackTrace(ThreadState &TS, unsigned Max = 8);

private:
  // The engines are friends: they are Core's own internals, split into
  // separate TUs for layering and testability, not arm's-length clients.
  friend class DispatchLoop;
  friend class SignalEngine;
  friend class RedirectEngine;
  friend class ClientRequestEngine;

  /// The shared run epilogue: worker shutdown, tool fini, profile/trace
  /// dumps, exit-status construction. Called by DispatchLoop::run.
  CoreExit finishRun();

  [[noreturn]] void internalError(const char *Msg);

  /// The core's own instrumentation layered around the tool's: SMC check
  /// prelude (when \p WantSmc — sampled on the guest thread at options-
  /// build time, since stack geometry must not be read from a worker) and
  /// SP-change tracking (R7). For trace pipelines \p SeamEntries lists the
  /// non-head constituent entry PCs: under WantSmc each seam gets its own
  /// SMC check + SmcFail exit, because the trace inlines its constituents
  /// without their own preludes and mid-path self-modification must still
  /// abort at the seam it invalidates.
  void instrumentBlock(ir::IRSB &SB, uint32_t Addr, Translation *Trans,
                       bool WantSmc,
                       const std::vector<uint32_t> &SeamEntries);
  bool addrOnAnyStack(uint32_t Addr) const;

  OptionRegistry Opts;
  OutputSink Out;
  EventHub Events;
  ErrorManager Errors;
  GuestMemory Memory;
  AddressSpace AS;
  std::unique_ptr<SimKernel> Kernel;
  /// The extracted translation layer; owns the TransTab and, under
  /// --jit-threads=N, the promotion queue and workers.
  std::unique_ptr<TranslationService> XS;
  TransTab &TT; ///< alias into XS (guest-thread access only)
  Tool *ToolPlugin;

  // The engines. Heap-allocated so their headers only need Core forward-
  // declared (DispatchLoop's header needs Core complete, hence the pointer
  // plus out-of-line isParallel/dtor).
  std::unique_ptr<SignalEngine> Signals;
  std::unique_ptr<RedirectEngine> Redirects;
  std::unique_ptr<ClientRequestEngine> ClReqs;
  std::unique_ptr<DispatchLoop> Dispatch;

  std::array<ThreadState, MaxThreads> Threads;
  int CurTid = 0;
  /// Atomic because MT shards read them in their loop conditions while
  /// another shard's locked section sets them; the serial scheduler uses
  /// them exactly as the plain flags they replaced.
  std::atomic<bool> ProcessExited{false};
  int ProcessExitCode = 0;
  std::atomic<int> FatalSignal{0};

  unsigned SchedThreads = 1; // --sched-threads
  SmcMode Smc = SmcMode::Stack;
  bool ChainingEnabled = false;
  uint64_t HotThreshold = 0;   // 0 = hotness tier off
  bool TraceTier = false;      // --trace-tier
  uint64_t TraceThreshold = 0; // 0 = 4x HotThreshold
  unsigned TraceMaxBlocks = 8; // constituents per trace, [2, 8]
  /// The effective trace-formation threshold (never 0 when the hot tier is
  /// on, so the gate can use a plain >=).
  uint64_t effTraceThreshold() const {
    return TraceThreshold ? TraceThreshold : 4 * HotThreshold;
  }
  uint32_t StackSwitchThreshold = 2u << 20; // 2MB (Section 3.12)

  std::unique_ptr<Profiler> Prof;      // non-null under --profile
  std::unique_ptr<FaultPlan> Faults;   // non-null under --fault-inject
  std::unique_ptr<EventTracer> Tracer; // non-null under --trace-events
  bool TraceDumpAtExit = false;        // --trace-dump (fatal always dumps)

  CoreStats Stats;
  const ir::SpecFn Spec;
};

} // namespace vg

#endif // VG_CORE_CORE_H
