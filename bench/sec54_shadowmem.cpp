//===-- bench/sec54_shadowmem.cpp - Section 5.4: shadow-memory layouts ----==//
///
/// \file
/// Reproduces the Section 5.4 trade-off between Memcheck's two-level
/// shadow map and TaintTrace/LIFT's flat reserved-region layout:
///
///   - the flat layout is faster per access (a single indexed array),
///   - but only covers a fixed window of the address space and commits
///     host memory for the whole window, while the two-level map covers
///     all 4GB and pays memory only for chunks actually touched.
///
/// Also reports the paper's companion observation ("shadow memory
/// operations account for close to half of Memcheck's overhead") by
/// comparing Memcheck against the 1-bit-per-byte TaintGrind on the same
/// workload.
///
/// Uses google-benchmark for the microbenchmarks.
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "shadow/ShadowMemory.h"
#include "tools/Memcheck.h"
#include "tools/TaintGrind.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace vg;

namespace {

constexpr uint32_t WindowBase = 0x10000000;
constexpr uint32_t WindowSize = 32u << 20;

void BM_TwoLevelLoadV(benchmark::State &State) {
  ShadowMap SM;
  SM.makeDefined(WindowBase, 1 << 20);
  uint32_t A = WindowBase;
  for (auto _ : State) {
    AddrCheck C;
    benchmark::DoNotOptimize(SM.loadV(A, 4, C));
    A = WindowBase + ((A + 12345) & ((1 << 20) - 4));
  }
}
BENCHMARK(BM_TwoLevelLoadV);

void BM_DirectLoadV(benchmark::State &State) {
  DirectShadow DS(WindowBase, WindowSize);
  DS.makeDefined(WindowBase, 1 << 20);
  uint32_t A = WindowBase;
  for (auto _ : State) {
    AddrCheck C;
    benchmark::DoNotOptimize(DS.loadV(A, 4, C));
    A = WindowBase + ((A + 12345) & ((1 << 20) - 4));
  }
}
BENCHMARK(BM_DirectLoadV);

void BM_TwoLevelStoreV(benchmark::State &State) {
  ShadowMap SM;
  SM.makeUndefined(WindowBase, 1 << 20);
  uint32_t A = WindowBase;
  for (auto _ : State) {
    AddrCheck C;
    SM.storeV(A, 4, 0, C);
    A = WindowBase + ((A + 12345) & ((1 << 20) - 4));
  }
}
BENCHMARK(BM_TwoLevelStoreV);

void BM_DirectStoreV(benchmark::State &State) {
  DirectShadow DS(WindowBase, WindowSize);
  DS.makeUndefined(WindowBase, 1 << 20);
  uint32_t A = WindowBase;
  for (auto _ : State) {
    AddrCheck C;
    DS.storeV(A, 4, 0, C);
    A = WindowBase + ((A + 12345) & ((1 << 20) - 4));
  }
}
BENCHMARK(BM_DirectStoreV);

/// The coverage difference: the flat layout simply cannot represent
/// accesses outside its window (the paper's robustness argument).
void BM_CoverageReport(benchmark::State &State) {
  for (auto _ : State) {
    ShadowMap SM;
    DirectShadow DS(WindowBase, WindowSize);
    // A high address (e.g. a stack near 3GB): fine for the map, out of
    // window for the flat layout.
    SM.makeDefined(0xBFFE0000, 64);
    AddrCheck C1, C2;
    benchmark::DoNotOptimize(SM.loadV(0xBFFE0000, 4, C1));
    benchmark::DoNotOptimize(DS.loadV(0xBFFE0000, 4, C2));
    if (C1.Ok == C2.Ok)
      State.SkipWithError("flat layout unexpectedly covered a high address");
  }
}
BENCHMARK(BM_CoverageReport)->Iterations(1);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Macro comparison: bit-per-byte taint vs bit-per-bit definedness.
  std::printf("\n== Section 5.4: analysis-depth comparison on 'vortex' ==\n");
  GuestImage Img = buildWorkload("vortex", 1);
  RunReport Native = runNative(Img);
  TaintGrind TG;
  RunReport Rt = runUnderCore(Img, &TG, {"--smc-check=none"});
  Memcheck MC;
  RunReport Rm = runUnderCore(Img, &MC,
                              {"--smc-check=none", "--leak-check=no"});
  auto Factor = [&](const RunReport &R) {
    return Native.Seconds > 0 && R.Completed ? R.Seconds / Native.Seconds
                                             : -1.0;
  };
  std::printf("taintgrind (1 taint bit/byte): %6.1fx native\n", Factor(Rt));
  std::printf("memcheck  (definedness + A-bits): %6.1fx native\n",
              Factor(Rm));
  std::printf("(paper: TaintTrace 5.5x / LIFT 3.5x vs Memcheck 22.1x — "
              "\"partly because they are doing\n a simpler analysis\"; the "
              "reproduction target is taint << memcheck)\n");
  return 0;
}
