//===-- core/GuestImage.cpp - Guest executable images ---------------------==//

#include "core/GuestImage.h"

#include "guest/GuestMemory.h"

using namespace vg;

void GuestImageBuilder::addSegment(vg1::Assembler &A, uint8_t Perms) {
  ImageSegment S;
  S.Base = A.baseAddr();
  S.Perms = Perms;
  S.Bytes = A.finalize();
  for (const auto &[Name, Addr] : A.symbols())
    Img.Symbols[Name] = Addr;
  Img.Segments.push_back(std::move(S));
}

GuestImageBuilder &GuestImageBuilder::addCode(vg1::Assembler &A) {
  addSegment(A, PermRX);
  return *this;
}

GuestImageBuilder &GuestImageBuilder::addData(vg1::Assembler &A) {
  addSegment(A, PermRW);
  return *this;
}
