//===-- guest/Decoder.cpp - VG1 instruction decoder -----------------------==//

#include "guest/Decoder.h"

#include <cstring>

using namespace vg;
using namespace vg::vg1;

namespace {

uint32_t readU32(const uint8_t *P) {
  uint32_t V;
  std::memcpy(&V, P, 4);
  return V;
}

uint64_t readU64(const uint8_t *P) {
  uint64_t V;
  std::memcpy(&V, P, 8);
  return V;
}

int16_t readS16(const uint8_t *P) {
  uint16_t V;
  std::memcpy(&V, P, 2);
  return static_cast<int16_t>(V);
}

} // namespace

bool vg1::decode(const uint8_t *Buf, size_t Avail, Instr &Out) {
  Out = Instr();
  if (Avail == 0)
    return false;
  uint8_t B0 = Buf[0];

  // Bcc occupies the range [0x20, 0x20 + NumConds).
  if (B0 >= static_cast<uint8_t>(Opcode::BCC) &&
      B0 < static_cast<uint8_t>(Opcode::BCC) + NumConds) {
    if (Avail < 5)
      return false;
    Out.Op = Opcode::BCC;
    Out.BCond = static_cast<Cond>(B0 - static_cast<uint8_t>(Opcode::BCC));
    Out.Imm = static_cast<int32_t>(readU32(Buf + 1));
    Out.Len = 5;
    return true;
  }

  Opcode Op = static_cast<Opcode>(B0);
  auto Need = [&](unsigned N) { return Avail >= N; };
  auto RegsAB = [&](uint8_t Byte, uint8_t &A, uint8_t &B) {
    A = Byte >> 4;
    B = Byte & 0xF;
  };

  switch (Op) {
  case Opcode::NOP:
  case Opcode::HLT:
  case Opcode::RET:
  case Opcode::SYS:
  case Opcode::CPUINFO:
  case Opcode::CLREQ:
    Out.Op = Op;
    Out.Len = 1;
    return true;

  case Opcode::MOV:
  case Opcode::CMP:
  case Opcode::JMPR:
  case Opcode::CALLR:
  case Opcode::PUSH:
  case Opcode::POP:
  case Opcode::FNEG:
  case Opcode::FITOD:
  case Opcode::FDTOI:
  case Opcode::FCMP:
  case Opcode::FMOV:
    if (!Need(2))
      return false;
    Out.Op = Op;
    RegsAB(Buf[1], Out.Rd, Out.Rs);
    Out.Len = 2;
    return true;

  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR:
  case Opcode::SHL:
  case Opcode::SHR:
  case Opcode::SAR:
  case Opcode::MUL:
  case Opcode::DIVU:
  case Opcode::DIVS:
  case Opcode::FADD:
  case Opcode::FSUB:
  case Opcode::FMUL:
  case Opcode::FDIV:
  case Opcode::VADD8:
  case Opcode::VSUB8:
  case Opcode::VCMPGT8:
    if (!Need(3))
      return false;
    Out.Op = Op;
    RegsAB(Buf[1], Out.Rd, Out.Rs);
    Out.Rt = Buf[2] >> 4;
    Out.Len = 3;
    return true;

  case Opcode::SHLI:
  case Opcode::SHRI:
  case Opcode::SARI:
    if (!Need(3))
      return false;
    Out.Op = Op;
    RegsAB(Buf[1], Out.Rd, Out.Rs);
    Out.Imm = Buf[2];
    Out.Len = 3;
    return true;

  case Opcode::LD:
  case Opcode::ST:
  case Opcode::LDB:
  case Opcode::LDSB:
  case Opcode::STB:
  case Opcode::LDH:
  case Opcode::LDSH:
  case Opcode::STH:
  case Opcode::FLD:
  case Opcode::FST:
    if (!Need(4))
      return false;
    Out.Op = Op;
    RegsAB(Buf[1], Out.Rd, Out.Rs);
    Out.Imm = readS16(Buf + 2);
    Out.Len = 4;
    return true;

  case Opcode::JMP:
  case Opcode::CALL:
    if (!Need(5))
      return false;
    Out.Op = Op;
    Out.Imm = static_cast<int32_t>(readU32(Buf + 1));
    Out.Len = 5;
    return true;

  case Opcode::MOVI:
  case Opcode::CMPI:
    if (!Need(6))
      return false;
    Out.Op = Op;
    RegsAB(Buf[1], Out.Rd, Out.Rs);
    Out.Imm = static_cast<int32_t>(readU32(Buf + 2));
    Out.Len = 6;
    return true;

  case Opcode::ADDI:
  case Opcode::ANDI:
    if (!Need(6))
      return false;
    Out.Op = Op;
    RegsAB(Buf[1], Out.Rd, Out.Rs);
    Out.Imm = static_cast<int32_t>(readU32(Buf + 2));
    Out.Len = 6;
    return true;

  case Opcode::LDX:
  case Opcode::STX:
    if (!Need(7))
      return false;
    Out.Op = Op;
    RegsAB(Buf[1], Out.Rd, Out.Rs);
    RegsAB(Buf[2], Out.Rt, Out.Scale);
    Out.Scale &= 0x3;
    Out.Imm = static_cast<int32_t>(readU32(Buf + 3));
    Out.Len = 7;
    return true;

  case Opcode::FMOVI:
    if (!Need(10))
      return false;
    Out.Op = Op;
    Out.Rd = Buf[1] >> 4;
    Out.Imm64 = readU64(Buf + 2);
    Out.Len = 10;
    return true;

  case Opcode::BCC: // handled above; 0x20 with cond EQ reaches here only
                    // via the range check, never through this switch.
    return false;
  }
  return false;
}
