//===-- hvm/Exec.cpp - The HVM executor -----------------------------------==//
///
/// Threaded-code execution of encoded translations. Uses computed-goto
/// dispatch (the classic direct-threaded interpreter technique) so that
/// thin ALU operations cost little more than their useful work — which is
/// what makes the cost ratios between inline analysis code, C-call
/// analysis code, and client code representative (Section 5.4).
///
//===----------------------------------------------------------------------===//

#include "hvm/Exec.h"

#include "guest/GuestMemory.h"
#include "hvm/HostVM.h"
#include "shadow/ShadowMemory.h"

#include <cstring>

using namespace vg;
using namespace vg::hvm;

namespace {

uint16_t rdU16(const uint8_t *P) {
  uint16_t V;
  std::memcpy(&V, P, 2);
  return V;
}

uint32_t rdU32(const uint8_t *P) {
  uint32_t V;
  std::memcpy(&V, P, 4);
  return V;
}

uint64_t rdU64(const uint8_t *P) {
  uint64_t V;
  std::memcpy(&V, P, 8);
  return V;
}

/// Fast paths for the most frequent operations: avoids evalOp's
/// metadata lookups (result-type table + truncation switch) on the hot
/// path. Falls back to evalOp for everything else — both are verified
/// against each other by the differential test suite.
inline uint64_t aluOp(ir::Op O, uint64_t A, uint64_t B) {
  using ir::Op;
  switch (O) {
  case Op::Add32:
    return static_cast<uint32_t>(A + B);
  case Op::Sub32:
    return static_cast<uint32_t>(A - B);
  case Op::And32:
    return static_cast<uint32_t>(A & B);
  case Op::Or32:
    return static_cast<uint32_t>(A | B);
  case Op::Xor32:
    return static_cast<uint32_t>(A ^ B);
  case Op::Mul32:
    return static_cast<uint32_t>(A * B);
  case Op::Shl32:
    return static_cast<uint32_t>(A << (B & 31));
  case Op::Shr32:
    return static_cast<uint32_t>(static_cast<uint32_t>(A) >> (B & 31));
  case Op::Sar32:
    return static_cast<uint32_t>(static_cast<int32_t>(A) >> (B & 31));
  case Op::Add64:
    return A + B;
  case Op::Or64:
    return A | B;
  case Op::CmpEQ32:
    return static_cast<uint32_t>(A) == static_cast<uint32_t>(B);
  case Op::CmpNE32:
    return static_cast<uint32_t>(A) != static_cast<uint32_t>(B);
  case Op::CmpLT32S:
    return static_cast<int32_t>(A) < static_cast<int32_t>(B);
  case Op::CmpLE32S:
    return static_cast<int32_t>(A) <= static_cast<int32_t>(B);
  case Op::CmpLT32U:
    return static_cast<uint32_t>(A) < static_cast<uint32_t>(B);
  case Op::CmpLE32U:
    return static_cast<uint32_t>(A) <= static_cast<uint32_t>(B);
  case Op::CmpNEZ32:
    return (A & 0xFFFFFFFFull) != 0;
  case Op::U1to32:
    return A & 1;
  case Op::Neg32:
    return static_cast<uint32_t>(0 - A);
  case Op::T32to8:
    return A & 0xFF;
  case Op::U8to32:
    return A & 0xFF;
  default:
    return ir::evalOp(O, A, B);
  }
}

} // namespace

RunOutcome Executor::run(const CodeBlob &Blob, uint64_t ChainBudget) {
  RunOutcome Out;
  const CodeBlob *Cur = &Blob;
  const uint8_t *Code = Cur->Bytes.data();
  size_t Ip = 0;
  uint32_t CurPC = 0;
  ++Out.BlocksExecuted;

  uint8_t *Gst = Ctx.GuestState;
  GuestMemory &Mem = *Ctx.Mem;
  void *Env = &Ctx;
  uint64_t *R = Regs;

  // Label table indexed by HOp. Must match the enum order in HostVM.h.
  static const void *const Table[] = {
      &&L_LI,    &&L_MOV,   &&L_ALU,   &&L_ALU1,  &&L_ALUI,   &&L_LDG,
      &&L_STG,   &&L_LDM,   &&L_STM,   &&L_SEL,   &&L_CALL,   &&L_JZ,
      &&L_EXITI, &&L_EXITR, &&L_IMARK, &&L_SPILL, &&L_RELOAD, &&L_ALUIS,
      &&L_SHPROBE};

#define DISPATCH() goto *Table[Code[Ip]]

  DISPATCH();

L_LI:
  R[Code[Ip + 1]] = rdU64(Code + Ip + 2);
  Ip += 10;
  DISPATCH();

L_MOV:
  R[Code[Ip + 1]] = R[Code[Ip + 2]];
  Ip += 3;
  DISPATCH();

L_ALU: {
  ir::Op O = static_cast<ir::Op>(rdU16(Code + Ip + 1));
  R[Code[Ip + 3]] = aluOp(O, R[Code[Ip + 4]], R[Code[Ip + 5]]);
  Ip += 6;
  DISPATCH();
}

L_ALU1: {
  ir::Op O = static_cast<ir::Op>(rdU16(Code + Ip + 1));
  R[Code[Ip + 3]] = aluOp(O, R[Code[Ip + 4]], 0);
  Ip += 5;
  DISPATCH();
}

L_ALUI: {
  ir::Op O = static_cast<ir::Op>(rdU16(Code + Ip + 1));
  R[Code[Ip + 3]] = aluOp(O, R[Code[Ip + 4]], rdU64(Code + Ip + 5));
  Ip += 13;
  DISPATCH();
}

L_LDG: {
  uint8_t *Slot = Gst + rdU32(Code + Ip + 2);
  uint64_t V;
  switch (Code[Ip + 6]) {
  case 4: {
    uint32_t W;
    std::memcpy(&W, Slot, 4);
    V = W;
    break;
  }
  case 8:
    std::memcpy(&V, Slot, 8);
    break;
  default:
    V = 0;
    std::memcpy(&V, Slot, Code[Ip + 6]);
    break;
  }
  R[Code[Ip + 1]] = V;
  Ip += 7;
  DISPATCH();
}

L_STG: {
  uint8_t *Slot = Gst + rdU32(Code + Ip + 2);
  uint64_t V = R[Code[Ip + 1]];
  switch (Code[Ip + 6]) {
  case 4: {
    uint32_t W = static_cast<uint32_t>(V);
    std::memcpy(Slot, &W, 4);
    break;
  }
  case 8:
    std::memcpy(Slot, &V, 8);
    break;
  default:
    std::memcpy(Slot, &V, Code[Ip + 6]);
    break;
  }
  Ip += 7;
  DISPATCH();
}

L_LDM: {
  uint32_t Addr = static_cast<uint32_t>(R[Code[Ip + 2]]) + rdU32(Code + Ip + 3);
  uint64_t V = 0;
  MemFault F;
  switch (Code[Ip + 7]) {
  case 4: {
    uint32_t W = 0;
    F = Mem.readU32(Addr, W);
    V = W;
    break;
  }
  case 1: {
    uint8_t W = 0;
    F = Mem.readU8(Addr, W);
    V = W;
    break;
  }
  case 2: {
    uint16_t W = 0;
    F = Mem.readU16(Addr, W);
    V = W;
    break;
  }
  default:
    F = Mem.readU64(Addr, V);
    break;
  }
  if (F.Faulted) {
    Out.K = RunOutcome::Kind::Fault;
    Out.FaultAddr = F.Addr;
    Out.FaultWrite = false;
    Out.FaultPC = CurPC;
    return Out;
  }
  R[Code[Ip + 1]] = V;
  Ip += 8;
  DISPATCH();
}

L_STM: {
  uint32_t Addr = static_cast<uint32_t>(R[Code[Ip + 1]]) + rdU32(Code + Ip + 3);
  uint64_t V = R[Code[Ip + 2]];
  MemFault F;
  switch (Code[Ip + 7]) {
  case 4:
    F = Mem.writeU32(Addr, static_cast<uint32_t>(V));
    break;
  case 1:
    F = Mem.writeU8(Addr, static_cast<uint8_t>(V));
    break;
  case 2:
    F = Mem.writeU16(Addr, static_cast<uint16_t>(V));
    break;
  default:
    F = Mem.writeU64(Addr, V);
    break;
  }
  if (F.Faulted) {
    Out.K = RunOutcome::Kind::Fault;
    Out.FaultAddr = F.Addr;
    Out.FaultWrite = true;
    Out.FaultPC = CurPC;
    return Out;
  }
  Ip += 8;
  DISPATCH();
}

L_SEL:
  R[Code[Ip + 1]] = R[Code[Ip + 2]] ? R[Code[Ip + 3]] : R[Code[Ip + 4]];
  Ip += 5;
  DISPATCH();

L_CALL: {
  const ir::Callee *C =
      reinterpret_cast<const ir::Callee *>(rdU64(Code + Ip + 1));
  uint8_t Dst = Code[Ip + 9];
  uint8_t N = Code[Ip + 10];
  uint64_t A[4] = {};
  for (unsigned J = 0; J != N; ++J)
    A[J] = R[Code[Ip + 11 + J]];
  // The helper-call ABI: the caller's full register context is saved to
  // the call frame and callee-saved state restored afterwards — the
  // register save/restore traffic a real JIT's call sequences perform
  // (and the reason C-call analysis code costs more than inline analysis
  // code, Section 5.4). Caller-saved registers come back poisoned so any
  // allocator violation fails loudly.
  // Per-register stores/loads, as a JIT-emitted save sequence would be.
  uint64_t SaveArea[NumHostRegs];
#pragma GCC unroll 1
  for (unsigned J = 0; J != NumHostRegs; ++J)
    SaveArea[J] = R[J];
  uint64_t Ret = C->Fn(Env, A[0], A[1], A[2], A[3]);
#pragma GCC unroll 1
  for (unsigned J = NumCallerSaved; J != NumHostRegs; ++J)
    R[J] = SaveArea[J];
  for (unsigned J = 0; J != NumCallerSaved; ++J)
    R[J] = 0xDEADDEADDEADDEADull;
  if (Dst != 0xFF)
    R[Dst] = Ret;
  Ip += 15;
  DISPATCH();
}

L_JZ:
  if (R[Code[Ip + 1]] == 0)
    Ip = rdU32(Code + Ip + 2);
  else
    Ip += 6;
  DISPATCH();

L_EXITI: {
  uint32_t NextPC = rdU32(Code + Ip + 1);
  ir::JumpKind JK = static_cast<ir::JumpKind>(Code[Ip + 5]);
  uint32_t Slot = rdU32(Code + Ip + 6);
  std::memcpy(Gst + PCOffset, &NextPC, 4);
  // Chaining: transfer directly into the successor translation.
  if (ChainFn && JK == ir::JumpKind::Boring && ChainBudget > 0) {
    if (const CodeBlob *NextBlob = ChainFn(ChainUser, Cur->Cookie, Slot)) {
      --ChainBudget;
      ++Out.BlocksExecuted;
      Cur = NextBlob;
      Code = Cur->Bytes.data();
      Ip = 0;
      DISPATCH();
    }
  }
  Out.K = RunOutcome::Kind::BlockEnd;
  Out.NextPC = NextPC;
  Out.JK = JK;
  Out.ExitCookie = Cur->Cookie;
  Out.ExitSlot = Slot;
  return Out;
}

L_EXITR: {
  uint32_t NextPC = static_cast<uint32_t>(R[Code[Ip + 1]]);
  ir::JumpKind JK = static_cast<ir::JumpKind>(Code[Ip + 2]);
  std::memcpy(Gst + PCOffset, &NextPC, 4);
  Out.K = RunOutcome::Kind::BlockEnd;
  Out.NextPC = NextPC;
  Out.JK = JK;
  Out.ExitCookie = Cur->Cookie;
  Out.ExitSlot = ~0u;
  return Out;
}

L_IMARK:
  CurPC = rdU32(Code + Ip + 1);
  Ip += 5;
  DISPATCH();

L_ALUIS: {
  ir::Op O = static_cast<ir::Op>(rdU16(Code + Ip + 1));
  R[Code[Ip + 3]] = aluOp(O, R[Code[Ip + 4]], Code[Ip + 5]);
  Ip += 6;
  DISPATCH();
}

L_SPILL:
  Frame[rdU32(Code + Ip + 2)] = R[Code[Ip + 1]];
  Ip += 6;
  DISPATCH();

L_RELOAD:
  R[Code[Ip + 1]] = Frame[rdU32(Code + Ip + 2)];
  Ip += 6;
  DISPATCH();

L_SHPROBE: {
  // Inline shadow-memory probe: runs in-line with no register save/restore
  // or caller-saved poisoning — the defining cost difference from a CALL
  // (Section 5.4, inline vs C-call analysis code).
  uint32_t Addr = static_cast<uint32_t>(R[Code[Ip + 2]]);
  ShadowMap *SM = Ctx.ShadowSM;
  uint64_t Res;
  if (Code[Ip + 4] & 1) {
    uint32_t VWord = static_cast<uint32_t>(R[Code[Ip + 3]]);
    Res = SM ? SM->probeStoreW32(Addr, VWord) : 1;
  } else {
    Res = SM ? SM->probeLoadW32(Addr) : ShadowMap::ProbeSlow;
  }
  R[Code[Ip + 1]] = Res;
  Ip += 6;
  DISPATCH();
}

#undef DISPATCH
}
