//===-- tests/SupportTests.cpp - Support-library unit tests ---------------==//
///
/// \file
/// Unit tests for the small substrates: option parsing, output sinks (R9),
/// error recording/deduplication/suppressions, hashing, and guest images.
///
//===----------------------------------------------------------------------===//

#include "core/ErrorManager.h"
#include "core/GuestImage.h"
#include "guest/GuestMemory.h"
#include "support/EventTrace.h"
#include "support/FaultInject.h"
#include "support/Hashing.h"
#include "support/Options.h"
#include "support/Output.h"

#include <gtest/gtest.h>

#include <set>

using namespace vg;

namespace {

//===----------------------------------------------------------------------===//
// OptionRegistry
//===----------------------------------------------------------------------===//

TEST(Options, ParseTypedValues) {
  OptionRegistry O;
  O.addOption("leak-check", "yes", "");
  O.addOption("threshold", "2097152", "");
  O.addOption("log-file", "", "");
  auto Unknown = O.parse({"--leak-check=no", "--threshold=0x1000",
                          "--log-file=/tmp/x", "--bogus=1", "stray"});
  EXPECT_FALSE(O.getBool("leak-check"));
  EXPECT_EQ(O.getInt("threshold"), 0x1000);
  EXPECT_EQ(O.getString("log-file"), "/tmp/x");
  ASSERT_EQ(Unknown.size(), 2u);
  EXPECT_EQ(Unknown[0], "--bogus=1");
  EXPECT_EQ(Unknown[1], "stray");
}

TEST(Options, BareFlagMeansYes) {
  OptionRegistry O;
  O.addOption("chaining", "no", "");
  O.parse({"--chaining"});
  EXPECT_TRUE(O.getBool("chaining"));
}

TEST(Options, DefaultsSurviveAndHelpRendered) {
  OptionRegistry O;
  O.addOption("smc-check", "stack", "when to check for SMC");
  EXPECT_EQ(O.getString("smc-check"), "stack");
  std::string H = O.helpText();
  EXPECT_NE(H.find("--smc-check"), std::string::npos);
  EXPECT_NE(H.find("default: stack"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// OutputSink (R9)
//===----------------------------------------------------------------------===//

TEST(Output, BufferModeCapturesAndClears) {
  OutputSink S;
  S.useBuffer();
  S.printf("x=%d %s", 42, "ok");
  EXPECT_EQ(S.buffer(), "x=42 ok");
  EXPECT_EQ(S.takeBuffer(), "x=42 ok");
  EXPECT_TRUE(S.buffer().empty());
}

TEST(Output, FileModeWrites) {
  std::string Path = "/tmp/vg_output_test.txt";
  {
    OutputSink S;
    ASSERT_TRUE(S.openFile(Path));
    S.printf("line %d\n", 1);
  } // destructor flushes/closes
  std::FILE *F = std::fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  char Buf[32] = {};
  [[maybe_unused]] size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  std::remove(Path.c_str());
  EXPECT_STREQ(Buf, "line 1\n");
}

//===----------------------------------------------------------------------===//
// ErrorManager
//===----------------------------------------------------------------------===//

TEST(Errors, DeduplicatesByKindAndPC) {
  ErrorManager E;
  EXPECT_TRUE(E.record("UninitValue", "m", 0x100));
  EXPECT_FALSE(E.record("UninitValue", "m", 0x100)); // same site
  EXPECT_TRUE(E.record("UninitValue", "m", 0x200));  // new site
  EXPECT_TRUE(E.record("InvalidRead", "m", 0x100));  // new kind
  EXPECT_EQ(E.uniqueErrors(), 3u);
  EXPECT_EQ(E.totalOccurrences(), 4u);
}

TEST(Errors, SuppressionsByKindAndRange) {
  ErrorManager E;
  EXPECT_EQ(E.parseSuppressions("# comment\nUninitValue\n"
                                "InvalidRead:0x1000-0x1FFF\n\n"),
            2u);
  EXPECT_FALSE(E.record("UninitValue", "m", 0x5));      // kind-wide
  EXPECT_FALSE(E.record("InvalidRead", "m", 0x1234));   // in range
  EXPECT_TRUE(E.record("InvalidRead", "m", 0x3000));    // out of range
  EXPECT_EQ(E.suppressedCount(), 2u);
  EXPECT_EQ(E.uniqueErrors(), 1u);
}

TEST(Errors, SummaryFormat) {
  ErrorManager E;
  E.record("K", "msg text", 0x42, {0x10, 0x20});
  E.record("K", "msg text", 0x42);
  OutputSink S;
  S.useBuffer();
  E.printSummary(S);
  std::string Out = S.takeBuffer();
  EXPECT_NE(Out.find("msg text (x2)"), std::string::npos);
  EXPECT_NE(Out.find("by 0x00000010"), std::string::npos);
  EXPECT_NE(Out.find("ERROR SUMMARY: 2 errors from 1 contexts"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

TEST(Hashing, ByteHashSensitivity) {
  uint8_t A[] = {1, 2, 3, 4};
  uint8_t B[] = {1, 2, 3, 5};
  EXPECT_NE(hashBytes(A, 4), hashBytes(B, 4));
  EXPECT_EQ(hashBytes(A, 4), hashBytes(A, 4));
  EXPECT_NE(hashBytes(A, 3), hashBytes(A, 4));
}

TEST(Hashing, AddrHashSpreadsNeighbours) {
  // Adjacent block addresses must not collide in a 2^13 cache.
  std::set<uint32_t> Buckets;
  for (uint32_t A = 0x1000; A != 0x1000 + 64 * 8; A += 8)
    Buckets.insert(hashAddr(A) & 0x1FFF);
  EXPECT_GE(Buckets.size(), 60u); // near-perfect spread of 64 inputs
}

//===----------------------------------------------------------------------===//
// GuestImage
//===----------------------------------------------------------------------===//

TEST(GuestImage, BuilderCollectsSegmentsAndSymbols) {
  vg1::Assembler Code(0x1000);
  Code.symbol("entry");
  Code.nop();
  Code.symbol("fn2");
  Code.hlt();
  vg1::Assembler Data(0x8000);
  Data.symbol("glob");
  Data.emitU32(7);
  GuestImage Img = GuestImageBuilder()
                       .addCode(Code)
                       .addData(Data)
                       .entry(0x1000)
                       .stackSize(64 * 1024)
                       .build();
  ASSERT_EQ(Img.Segments.size(), 2u);
  EXPECT_EQ(Img.Segments[0].Base, 0x1000u);
  EXPECT_EQ(Img.Segments[0].Perms & PermExec, PermExec);
  EXPECT_EQ(Img.Segments[1].Perms & PermWrite, PermWrite);
  EXPECT_EQ(Img.symbol("entry"), 0x1000u);
  EXPECT_EQ(Img.symbol("fn2"), 0x1001u);
  EXPECT_EQ(Img.symbol("glob"), 0x8000u);
  EXPECT_EQ(Img.symbol("nope"), 0u);
  EXPECT_EQ(Img.StackSize, 64u * 1024);
}

//===----------------------------------------------------------------------===//
// FaultPlan (--fault-inject)
//===----------------------------------------------------------------------===//

TEST(FaultPlan, ParsesKindsRatesAndSeed) {
  FaultPlan P;
  std::string Err;
  ASSERT_TRUE(P.parse("syscall:8,sigstorm,seed=42", Err)) << Err;
  EXPECT_EQ(P.seed(), 42u);
  EXPECT_TRUE(P.enabled(FaultKind::Syscall));
  EXPECT_TRUE(P.enabled(FaultKind::SigStorm));
  EXPECT_FALSE(P.enabled(FaultKind::ShortIO));
  EXPECT_FALSE(P.enabled(FaultKind::Preempt));
}

TEST(FaultPlan, AllEnablesEveryKind) {
  FaultPlan P;
  std::string Err;
  ASSERT_TRUE(P.parse("all,seed=1", Err)) << Err;
  for (unsigned I = 0; I != NumFaultKinds; ++I)
    EXPECT_TRUE(P.enabled(static_cast<FaultKind>(I)))
        << faultKindName(static_cast<FaultKind>(I));
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  std::string Err;
  EXPECT_FALSE(FaultPlan().parse("bogus", Err));
  EXPECT_FALSE(FaultPlan().parse("syscall:0", Err)); // rate 0 is not a rate
  EXPECT_FALSE(FaultPlan().parse("syscall:8x", Err));
  EXPECT_FALSE(FaultPlan().parse("seed=42", Err)); // no kinds enabled
  EXPECT_FALSE(FaultPlan().parse("", Err));
}

TEST(FaultPlan, SameSeedSameDecisionSequence) {
  FaultPlan A, B;
  std::string Err;
  ASSERT_TRUE(A.parse("all,seed=99", Err));
  ASSERT_TRUE(B.parse("all,seed=99", Err));
  for (int I = 0; I != 1000; ++I) {
    FaultKind K = static_cast<FaultKind>(I % NumFaultKinds);
    ASSERT_EQ(A.roll(K), B.roll(K)) << "diverged at decision " << I;
    ASSERT_EQ(A.pick(17), B.pick(17)) << "diverged at decision " << I;
  }
  EXPECT_EQ(A.rolls(), B.rolls());
  EXPECT_EQ(A.injectedTotal(), B.injectedTotal());
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  FaultPlan A, B;
  std::string Err;
  ASSERT_TRUE(A.parse("all:2,seed=1", Err));
  ASSERT_TRUE(B.parse("all:2,seed=2", Err));
  bool Diverged = false;
  for (int I = 0; I != 256 && !Diverged; ++I)
    Diverged = A.roll(FaultKind::Syscall) != B.roll(FaultKind::Syscall);
  EXPECT_TRUE(Diverged);
}

TEST(FaultPlan, DisabledKindNeverFiresOrAdvances) {
  FaultPlan P;
  std::string Err;
  ASSERT_TRUE(P.parse("syscall:1,seed=5", Err));
  for (int I = 0; I != 64; ++I)
    EXPECT_FALSE(P.roll(FaultKind::SigStorm));
  EXPECT_EQ(P.rolls(), 0u); // disabled rolls are not decisions
  EXPECT_TRUE(P.roll(FaultKind::Syscall)); // rate 1 always fires
  EXPECT_EQ(P.injected(FaultKind::Syscall), 1u);
}

//===----------------------------------------------------------------------===//
// EventTracer (--trace-events)
//===----------------------------------------------------------------------===//

TEST(EventTracer, RecordsAndCounts) {
  EventTracer T(16);
  uint64_t Clock = 7;
  T.setClock(&Clock);
  T.record(0, TraceEvent::SyscallEnter, 2);
  Clock = 9;
  T.record(1, TraceEvent::SigDeliver, 10, 0x2000);
  EXPECT_EQ(T.recorded(), 2u);
  EXPECT_EQ(T.dropped(), 0u);
  EXPECT_EQ(T.count(TraceEvent::SyscallEnter), 1u);
  EXPECT_EQ(T.count(TraceEvent::SigDeliver), 1u);
  std::string S = T.serialize();
  EXPECT_NE(S.find("=== event trace (records=2 dropped=0) ==="),
            std::string::npos);
  EXPECT_NE(S.find("=== end event trace ==="), std::string::npos);
  EXPECT_NE(S.find("@0000000007 t0 syscall-enter"), std::string::npos);
  EXPECT_NE(S.find("@0000000009 t1 sig-deliver"), std::string::npos);
}

TEST(EventTracer, RingWrapKeepsNewestAndCountsDropped) {
  EventTracer T(4);
  for (int I = 0; I != 10; ++I)
    T.record(0, TraceEvent::SyscallEnter, static_cast<uint32_t>(I));
  EXPECT_EQ(T.recorded(), 10u);
  EXPECT_EQ(T.dropped(), 6u);
  std::string S = T.serialize();
  EXPECT_EQ(S.find("a=0x5"), std::string::npos);  // oldest overwritten
  EXPECT_NE(S.find("a=0x6"), std::string::npos);  // four newest retained
  EXPECT_NE(S.find("a=0x9"), std::string::npos);
  EXPECT_EQ(T.count(TraceEvent::SyscallEnter), 10u); // counts are total
}

TEST(EventTracer, ZeroCapacityClampsToOne) {
  EventTracer T(0);
  EXPECT_EQ(T.capacity(), 1u);
  T.record(0, TraceEvent::ThreadExit);
  EXPECT_EQ(T.recorded(), 1u);
}

} // namespace
