//===-- core/ThreadState.h - Per-thread guest + shadow state ----*- C++ -*-==//
///
/// \file
/// "Valgrind provides a block of memory per client thread called the
/// ThreadState. Each one contains space for all the thread's guest and
/// shadow registers and is used to hold them at various times, in
/// particular between each code block." (Section 3.4)
///
/// The guest area layout is fixed by vg1::gso; the shadow registers live at
/// gso::ShadowOffset within the same block, which is what makes them
/// first-class (requirement R1): a tool GETs/PUTs them with ordinary IR.
///
//===----------------------------------------------------------------------===//
#ifndef VG_CORE_THREADSTATE_H
#define VG_CORE_THREADSTATE_H

#include "guest/CpuView.h"
#include "guest/GuestArch.h"
#include "guest/GuestMemory.h"

#include <cstring>
#include <vector>

namespace vg {

enum class ThreadStatus : uint8_t {
  Empty,    ///< slot unused
  Runnable, ///< ready to be scheduled
  Exited,   ///< finished (slot awaiting reuse)
};

/// One guest thread: register block plus scheduling metadata.
class ThreadState : public CpuView {
public:
  ThreadState() { std::memset(Guest, 0, sizeof(Guest)); }

  /// Raw guest+shadow register block, laid out per vg1::gso.
  alignas(8) uint8_t Guest[vg1::gso::TotalSize] = {};

  int Tid = -1;
  ThreadStatus Status = ThreadStatus::Empty;
  GuestMemory *Memory = nullptr; ///< shared client address space

  /// Stack bounds for the SMC "stack only" check and the stack-switch
  /// heuristic.
  uint32_t StackBase = 0; ///< highest address (exclusive)
  uint32_t StackLimit = 0;

  /// Core-side copy of the last seen stack pointer, driving
  /// new_mem_stack/die_mem_stack events.
  uint32_t TrackedSP = 0;

  /// Pending (queued, undelivered) signals, delivered only between code
  /// blocks (Section 3.15).
  std::vector<int> PendingSignals;

  /// One in-progress signal delivery: the saved guest+shadow area that
  /// sigreturn restores, tagged with which signal it belongs to so
  /// delivery can mask that signal for the handler's duration.
  struct SignalFrame {
    std::vector<uint8_t> Guest;
    int Sig = 0;
  };

  /// Saved contexts for nested signal deliveries (restored LIFO by
  /// sigreturn).
  std::vector<SignalFrame> SignalFrames;

  /// Bitmask of signals currently masked because their handler is on the
  /// frame stack: a handler is never re-entered while it runs (per-signal
  /// masking, as sigaction without SA_NODEFER).
  uint64_t SigMask = 0;

  bool signalMasked(int Sig) const {
    return Sig >= 0 && Sig < 64 && (SigMask & (1ull << Sig));
  }

  // --- typed accessors ---------------------------------------------------
  uint32_t gpr(unsigned I) const {
    uint32_t V;
    std::memcpy(&V, Guest + vg1::gso::gpr(I), 4);
    return V;
  }
  void setGpr(unsigned I, uint32_t V) {
    std::memcpy(Guest + vg1::gso::gpr(I), &V, 4);
  }
  double fpr(unsigned I) const {
    double V;
    std::memcpy(&V, Guest + vg1::gso::fpr(I), 8);
    return V;
  }
  void setFpr(unsigned I, double V) {
    std::memcpy(Guest + vg1::gso::fpr(I), &V, 8);
  }
  uint32_t getPC() const {
    uint32_t V;
    std::memcpy(&V, Guest + vg1::gso::PC, 4);
    return V;
  }
  void setPCVal(uint32_t V) { std::memcpy(Guest + vg1::gso::PC, &V, 4); }

  /// Shadow of a guest register (first-class shadow state, R1).
  uint32_t shadowGpr(unsigned I) const {
    uint32_t V;
    std::memcpy(&V, Guest + vg1::gso::ShadowOffset + vg1::gso::gpr(I), 4);
    return V;
  }
  void setShadowGpr(unsigned I, uint32_t V) {
    std::memcpy(Guest + vg1::gso::ShadowOffset + vg1::gso::gpr(I), &V, 4);
  }

  // --- CpuView (used by the simulated kernel) ----------------------------
  uint32_t readReg(unsigned Index) const override { return gpr(Index); }
  void writeReg(unsigned Index, uint32_t Value) override {
    setGpr(Index, Value);
  }
  uint32_t pc() const override { return getPC(); }
  void setPC(uint32_t Value) override { setPCVal(Value); }
  GuestMemory &mem() override { return *Memory; }
  int threadId() const override { return Tid; }
};

} // namespace vg

#endif // VG_CORE_THREADSTATE_H
