# Empty dependencies file for test_transtab.
# This may be replaced when dependencies are built.
