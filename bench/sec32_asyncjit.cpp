//===-- bench/sec32_asyncjit.cpp - Background superblock promotion --------==//
///
/// \file
/// Measures what the TranslationService's background workers buy: the
/// guest-visible promotion stall (time the guest thread spends inside
/// inline hot retranslation, plus snapshot/enqueue overhead in async
/// mode) and the end-to-end run time, at --jit-threads={0,1,2}.
///
/// At --jit-threads=0 every hot promotion is a synchronous "promotion
/// bounce": the dispatcher stalls for a full eight-phase superblock
/// pipeline. With workers, the guest thread pays only for an exec-page
/// snapshot and a queue push, and keeps executing tier-1 code until the
/// superblock is published at a dispatch boundary.
///
/// Emits BENCH_asyncjit.json for regression tracking.
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "tools/Nulgrind.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace vg;

namespace {

constexpr int NThreadCells = 3; // --jit-threads = 0, 1, 2
constexpr int Reps = 3;         // best-of, to damp scheduler noise

struct Cell {
  double Seconds = 0; ///< best end-to-end wall time across reps
  double Stall = 0;   ///< best promotion stall across reps
  JitStats Jit;       ///< counters from the best-stall run
};

double stallSeconds(const JitStats &J) {
  // Guest-thread time lost to promotion work: inline pipelines (the only
  // kind at --jit-threads=0, the fallback kind otherwise) plus the
  // snapshot/enqueue cost of handing a job to a worker.
  return J.SyncPromoStallSeconds + J.EnqueueSeconds;
}

} // namespace

int main() {
  uint32_t Scale = 1;
  if (const char *E = std::getenv("VG_BENCH_SCALE"))
    Scale = static_cast<uint32_t>(std::atoi(E));

  std::printf("== Section 3.2/3.9: asynchronous tiered translation ==\n");
  std::printf("(promotion stall = inline-promotion time + enqueue time "
              "on the guest thread)\n\n");
  std::printf("%-10s %3s %9s %10s %6s %6s %6s %6s %10s\n", "workload",
              "jt", "time(s)", "stall(ms)", "sync", "req", "inst", "disc",
              "stall/promo");

  struct Row {
    std::string Name;
    Cell Cells[NThreadCells];
  };
  std::vector<Row> Rows;

  for (const char *Name : {"crafty", "mcf", "gcc"}) {
    GuestImage Img = buildWorkload(Name, Scale);
    Row R;
    R.Name = Name;
    for (int JT = 0; JT != NThreadCells; ++JT) {
      Cell &C = R.Cells[JT];
      for (int Rep = 0; Rep != Reps; ++Rep) {
        Nulgrind T;
        RunReport RR = runUnderCore(
            Img, &T,
            {"--smc-check=none", "--chaining=yes", "--hot-threshold=2",
             "--jit-threads=" + std::to_string(JT)});
        if (Rep == 0 || RR.Seconds < C.Seconds)
          C.Seconds = RR.Seconds;
        if (Rep == 0 || stallSeconds(RR.Jit) < C.Stall) {
          C.Stall = stallSeconds(RR.Jit);
          C.Jit = RR.Jit;
        }
      }
      const JitStats &J = C.Jit;
      uint64_t Promos = J.SyncPromotions + J.AsyncRequests;
      std::printf("%-10s %3d %9.4f %10.3f %6llu %6llu %6llu %6llu %10.1f\n",
                  Name, JT, C.Seconds, 1e3 * C.Stall,
                  static_cast<unsigned long long>(J.SyncPromotions),
                  static_cast<unsigned long long>(J.AsyncRequests),
                  static_cast<unsigned long long>(J.AsyncInstalled),
                  static_cast<unsigned long long>(J.AsyncDiscardedEpoch +
                                                  J.AsyncDiscardedStale),
                  Promos ? 1e6 * C.Stall / static_cast<double>(Promos)
                         : 0.0);
    }
    Rows.push_back(std::move(R));
  }

  // Aggregate stall across workloads: the headline number.
  double TotalStall[NThreadCells] = {};
  for (const Row &R : Rows)
    for (int JT = 0; JT != NThreadCells; ++JT)
      TotalStall[JT] += R.Cells[JT].Stall;
  std::printf("\ntotal promotion stall: jt=0 %.3fms, jt=1 %.3fms, "
              "jt=2 %.3fms\n",
              1e3 * TotalStall[0], 1e3 * TotalStall[1],
              1e3 * TotalStall[2]);
  std::printf("(expected: workers replace inline eight-phase pipelines "
              "with snapshot+enqueue on the\n guest thread, cutting total "
              "promotion stall — the residue is queue-full fallbacks,\n "
              "which still run inline — without changing output.)\n");

  {
    std::ofstream F("BENCH_asyncjit.json");
    F << "{\n  \"bench\": \"sec32_asyncjit\",\n  \"scale\": " << Scale
      << ",\n  \"unit\": \"seconds\",\n  \"rows\": [\n";
    for (size_t I = 0; I != Rows.size(); ++I) {
      const Row &R = Rows[I];
      F << "    {\"program\": \"" << R.Name << "\"";
      for (int JT = 0; JT != NThreadCells; ++JT) {
        const Cell &C = R.Cells[JT];
        const JitStats &J = C.Jit;
        F << ", \"jt" << JT << "_sec\": " << C.Seconds << ", \"jt" << JT
          << "_stall_sec\": " << C.Stall << ", \"jt" << JT
          << "_sync_promos\": " << J.SyncPromotions << ", \"jt" << JT
          << "_async_requests\": " << J.AsyncRequests << ", \"jt" << JT
          << "_async_installed\": " << J.AsyncInstalled;
      }
      F << "}" << (I + 1 != Rows.size() ? "," : "") << "\n";
    }
    F << "  ],\n  \"total_stall_sec\": {\"jt0\": " << TotalStall[0]
      << ", \"jt1\": " << TotalStall[1] << ", \"jt2\": " << TotalStall[2]
      << "}\n}\n";
    std::printf("(wrote BENCH_asyncjit.json)\n");
  }
  return 0;
}
