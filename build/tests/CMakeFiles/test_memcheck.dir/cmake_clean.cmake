file(REMOVE_RECURSE
  "CMakeFiles/test_memcheck.dir/MemcheckTests.cpp.o"
  "CMakeFiles/test_memcheck.dir/MemcheckTests.cpp.o.d"
  "test_memcheck"
  "test_memcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
