//===-- bench/sec39_dispatch.cpp - Section 3.9: dispatch & chaining -------==//
///
/// \file
/// Reproduces the Section 3.9 dispatcher claims:
///  - the direct-mapped fast-cache hit rate is ~98% on real programs;
///  - translation chaining (which Valgrind 3.2 lacked) reduces trips
///    through the dispatcher, but hurts a fast-dispatcher design less
///    than it did Strata (22.1x -> 4.1x there; Valgrind without chaining
///    was already 4.3x).
///
/// Also reports translation-table statistics (Section 3.8): occupancy and
/// FIFO eviction activity on a translation-heavy synthetic.
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "guestlib/GuestLib.h"
#include "tools/Nulgrind.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace vg;

int main() {
  std::printf("== Section 3.9: dispatcher fast-cache hit rates ==\n");
  std::printf("%-10s %14s %14s %9s\n", "workload", "fast hits", "misses",
              "hit rate");
  for (const char *Name : {"gcc", "mcf", "perlbmk", "equake"}) {
    GuestImage Img = buildWorkload(Name, 1);
    Nulgrind T;
    RunReport R = runUnderCore(Img, &T, {"--smc-check=none"});
    double Hits = static_cast<double>(R.Stats.FastCacheHits);
    double Total = Hits + static_cast<double>(R.Stats.FastCacheMisses);
    std::printf("%-10s %14llu %14llu %8.2f%%\n", Name,
                static_cast<unsigned long long>(R.Stats.FastCacheHits),
                static_cast<unsigned long long>(R.Stats.FastCacheMisses),
                Total ? 100.0 * Hits / Total : 0.0);
  }
  std::printf("(paper: \"the hit-rate is around 98%%\")\n\n");

  std::printf("== Section 3.9 ablation: chaining off vs on ==\n");
  std::printf("%-10s %12s %12s %12s %9s\n", "workload", "dispatches",
              "disp(chain)", "chained", "time x");
  for (const char *Name : {"crafty", "mcf", "gcc"}) {
    GuestImage Img = buildWorkload(Name, 1);
    Nulgrind T1, T2;
    RunReport Off = runUnderCore(Img, &T1, {"--smc-check=none",
                                            "--chaining=no"});
    RunReport On = runUnderCore(Img, &T2, {"--smc-check=none",
                                           "--chaining=yes"});
    // "Dispatches" = returns to the dispatcher loop: blocks minus chained
    // transfers.
    uint64_t DispOff = Off.Stats.BlocksDispatched;
    uint64_t DispOn = On.Stats.BlocksDispatched - On.Stats.ChainedTransfers;
    std::printf("%-10s %12llu %12llu %12llu %9.2f\n", Name,
                static_cast<unsigned long long>(DispOff),
                static_cast<unsigned long long>(DispOn),
                static_cast<unsigned long long>(On.Stats.ChainedTransfers),
                Off.Seconds > 0 ? On.Seconds / Off.Seconds : 0.0);
  }
  std::printf("(expected: chaining removes most dispatcher trips; the "
              "time ratio stays near 1.0 because\n this dispatcher is "
              "cheap — the paper's argument for why missing chaining "
              "hurt Valgrind less than Strata.)\n\n");

  // The two-tier hot path: eager chain linking means slots fill at insert
  // time instead of through dispatcher round-trips, and --hot-threshold
  // retranslates proven-hot blocks as branch-chasing superblocks.
  std::printf("== Section 3.9: dispatcher exits — seed vs chained vs "
              "chained+hot ==\n");
  std::printf("%-10s %12s %12s %12s %12s %12s %12s %6s\n", "workload",
              "exits(seed)", "exits(chain)", "exits(hot)", "chained(hot)",
              "fcmiss(seed)", "fcmiss(hot)", "promo");
  for (const char *Name : {"crafty", "mcf", "gcc"}) {
    GuestImage Img = buildWorkload(Name, 1);
    Nulgrind T1, T2, T3;
    RunReport Seed = runUnderCore(Img, &T1, {"--smc-check=none",
                                             "--chaining=no"});
    RunReport Chain = runUnderCore(Img, &T2, {"--smc-check=none",
                                              "--chaining=yes"});
    RunReport Hot = runUnderCore(Img, &T3,
                                 {"--smc-check=none", "--chaining=yes",
                                  "--hot-threshold=50"});
    auto Exits = [](const RunReport &R) {
      return R.Stats.BlocksDispatched - R.Stats.ChainedTransfers;
    };
    std::printf("%-10s %12llu %12llu %12llu %12llu %12llu %12llu %6llu\n",
                Name, static_cast<unsigned long long>(Exits(Seed)),
                static_cast<unsigned long long>(Exits(Chain)),
                static_cast<unsigned long long>(Exits(Hot)),
                static_cast<unsigned long long>(Hot.Stats.ChainedTransfers),
                static_cast<unsigned long long>(Seed.Stats.FastCacheMisses),
                static_cast<unsigned long long>(Hot.Stats.FastCacheMisses),
                static_cast<unsigned long long>(Hot.Stats.HotPromotions));
  }
  std::printf("(expected: both chained columns keep exits orders of "
              "magnitude below the unchained seed;\n hot promotion pays "
              "one dispatcher bounce per promoted block and re-forms the "
              "loop as a\n branch-chased superblock — with the chain graph "
              "relinking predecessors eagerly.)\n\n");

  std::printf("== --profile: the observability layer (mcf, chained+hot) "
              "==\n");
  {
    GuestImage Img = buildWorkload("mcf", 1);
    Nulgrind T;
    RunReport R = runUnderCore(Img, &T,
                               {"--smc-check=none", "--chaining=yes",
                                "--hot-threshold=50", "--profile=yes"});
    std::fputs(R.ToolOutput.c_str(), stdout);
    std::printf("\n");
  }

  // Translation-table behaviour (Section 3.8): translate a sea of tiny
  // functions to force occupancy and eviction.
  std::printf("== Section 3.8: translation table (FIFO eviction) ==\n");
  {
    using namespace vg::vg1;
    Assembler Code(0x1000);
    Assembler Data(0x100000);
    Label Main = Code.newLabel();
    uint32_t Entry = emitStart(Code, Main);
    GuestLibLabels Lib = emitGuestLib(Code, Data);
    (void)Lib;
    // 20000 tiny functions, each its own translation.
    std::vector<Label> Fns;
    for (int I = 0; I != 20000; ++I)
      Fns.push_back(Code.newLabel());
    Code.bind(Main);
    for (int I = 0; I != 20000; ++I)
      Code.call(Fns[I]);
    Code.movi(Reg::R0, 0);
    Code.ret();
    for (int I = 0; I != 20000; ++I) {
      Code.bind(Fns[I]);
      Code.addi(Reg::R1, Reg::R1, 1);
      Code.ret();
    }
    GuestImage Img =
        GuestImageBuilder().addCode(Code).addData(Data).entry(Entry).build();
    Nulgrind T;
    RunReport R = runUnderCoreWith(
        Img, &T, {"--smc-check=none"}, "", ~0ull, [](Core &C) {
          (void)C; // default 16K-entry table; 20k translations overflow it
        });
    std::printf("completed=%d translations=%llu table-lookups=%llu "
                "eviction-runs=%llu evicted=%llu\n",
                R.Completed,
                static_cast<unsigned long long>(R.Stats.Translations),
                static_cast<unsigned long long>(R.TTStats.Lookups),
                static_cast<unsigned long long>(R.TTStats.EvictionRuns),
                static_cast<unsigned long long>(R.TTStats.Evicted));
    std::printf("(the 16K-entry linear-probe table passed 80%% occupancy "
                "and evicted FIFO chunks of 1/8th,\n as in Section 3.8)\n");
  }

  // The tentpole interaction: chaining under table pressure. Eviction runs
  // bump the table generation and clear the dispatcher's fast cache, so
  // the seed re-misses its whole live working set on the next pass over
  // it; chained blocks transfer without consulting the cache at all, and
  // when churn does evict a chained block its predecessors are unlinked in
  // O(degree) and relinked eagerly at retranslation.
  std::printf("\n== Section 3.8+3.9: chaining + hotness under eviction "
              "pressure ==\n");
  {
    using namespace vg::vg1;
    Assembler Code(0x1000);
    Assembler Data(0x100000);
    Label Main = Code.newLabel();
    uint32_t Entry = emitStart(Code, Main);
    GuestLibLabels Lib = emitGuestLib(Code, Data);
    (void)Lib;
    // Three passes; each pass first calls 4000 fresh one-shot functions
    // (a translation storm — FIFO pressure that evicts the previous
    // pass's storm), then runs a hot 200-trip loop and five repetitions
    // of a straight-line "sea" of jmp blocks. The loop and the sea stay
    // resident across passes, but each storm's eviction runs clear the
    // fast cache under them.
    constexpr int Passes = 3, StormFns = 4000, SeaBlocks = 12000, Reps = 5;
    std::vector<std::vector<Label>> Fns(Passes);
    for (int P = 0; P != Passes; ++P)
      for (int I = 0; I != StormFns; ++I)
        Fns[P].push_back(Code.newLabel());
    std::vector<Label> PassEntry, PassBody;
    for (int P = 0; P != Passes; ++P) {
      PassEntry.push_back(Code.newLabel());
      PassBody.push_back(Code.newLabel());
    }
    Label SeaTop = Code.newLabel(), SeaDone = Code.newLabel();
    std::vector<Label> Blocks;
    for (int I = 0; I != SeaBlocks; ++I)
      Blocks.push_back(Code.newLabel());

    Code.bind(Main);
    Code.jmp(PassEntry[0]);
    for (int P = 0; P != Passes; ++P) {
      // The storm: 4000 fresh call sites -> 4000 fresh functions.
      Code.bind(PassEntry[P]);
      for (int I = 0; I != StormFns; ++I)
        Code.call(Fns[P][I]);
      Code.jmp(PassBody[P]);
      for (int I = 0; I != StormFns; ++I) {
        Code.bind(Fns[P][I]);
        Code.addi(Reg::R1, Reg::R1, 1);
        Code.ret();
      }
      // The resident hot set: a 200-trip loop, then Reps sea walks.
      Code.bind(PassBody[P]);
      Code.movi(Reg::R3, 200);
      Label Loop = Code.boundLabel();
      Code.addi(Reg::R1, Reg::R1, 1);
      Code.addi(Reg::R3, Reg::R3, -1);
      Code.cmpi(Reg::R3, 0);
      Code.bne(Loop);
      Code.movi(Reg::R4, Reps);
      Code.movi(Reg::R5, P + 1 != Passes ? 0 : 1); // last pass?
      Code.jmp(SeaTop); // every pass funnels through the same sea
    }
    Code.bind(SeaTop);
    Code.jmp(Blocks[0]);
    for (int I = 0; I != SeaBlocks; ++I) {
      Code.bind(Blocks[I]);
      Code.addi(Reg::R1, Reg::R1, 1);
      if (I + 1 != SeaBlocks)
        Code.jmp(Blocks[I + 1]);
    }
    Code.addi(Reg::R4, Reg::R4, -1);
    Code.cmpi(Reg::R4, 0);
    Code.bne(SeaTop);
    Code.cmpi(Reg::R5, 1);
    Code.beq(SeaDone);
    // Next pass: dispatch on the pass counter kept in R6.
    Code.addi(Reg::R6, Reg::R6, 1);
    Code.cmpi(Reg::R6, 1);
    Code.beq(PassEntry[1]);
    Code.jmp(PassEntry[2]);
    Code.bind(SeaDone);
    Code.movi(Reg::R0, 0);
    Code.ret();
    GuestImage Img =
        GuestImageBuilder().addCode(Code).addData(Data).entry(Entry).build();

    Nulgrind T1, T2;
    RunReport Seed = runUnderCore(Img, &T1, {"--smc-check=none"});
    RunReport Hot = runUnderCore(Img, &T2,
                                 {"--smc-check=none", "--chaining=yes",
                                  "--hot-threshold=50"});
    auto Line = [](const char *Name, const RunReport &R) {
      std::printf("%-10s exits=%-8llu fcmiss=%-8llu chained=%-8llu "
                  "promos=%-4llu evict-runs=%llu evicted=%llu\n", Name,
                  static_cast<unsigned long long>(R.Stats.BlocksDispatched -
                                                  R.Stats.ChainedTransfers),
                  static_cast<unsigned long long>(R.Stats.FastCacheMisses),
                  static_cast<unsigned long long>(R.Stats.ChainedTransfers),
                  static_cast<unsigned long long>(R.Stats.HotPromotions),
                  static_cast<unsigned long long>(R.TTStats.EvictionRuns),
                  static_cast<unsigned long long>(R.TTStats.Evicted));
    };
    Line("seed", Seed);
    Line("chain+hot", Hot);
    std::printf("(expected: strictly fewer dispatcher exits and strictly "
                "fewer fast-cache misses with\n chaining+hotness on — after "
                "each storm's eviction runs clear the fast cache, the seed\n"
                " re-misses every live sea block, while chained transfers "
                "never consult the cache.)\n");
  }
  return 0;
}
