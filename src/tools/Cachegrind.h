//===-- tools/Cachegrind.h - Cache profiler ---------------------*- C++ -*-==//
///
/// \file
/// Cachegrind reproduced: simulates an I1/D1/LL cache hierarchy
/// (set-associative, LRU) and attributes hits/misses to guest code
/// addresses. Every instruction fetch and every data access is
/// instrumented with a call into the simulator — the "lightweight tools
/// add a lot of highly uniform analysis code" end of the paper's spectrum
/// (Section 1.2), in contrast to Memcheck.
///
/// The cache model is itself a substrate: bench/sec51_codesize counts it
/// separately, mirroring the paper's "Cachegrind is 2,431 lines" datum.
///
//===----------------------------------------------------------------------===//
#ifndef VG_TOOLS_CACHEGRIND_H
#define VG_TOOLS_CACHEGRIND_H

#include "core/Core.h"
#include "core/Tool.h"

#include <map>

namespace vg {

/// One set-associative, LRU, write-allocate cache level.
class CacheModel {
public:
  CacheModel(uint32_t SizeBytes, uint32_t Assoc, uint32_t LineSize);

  /// Touches the line(s) covering [Addr, Addr+Len); returns true on a full
  /// hit (an access spanning two lines hits only if both do).
  bool access(uint32_t Addr, uint32_t Len);

  uint32_t lineSize() const { return LineSize; }

private:
  bool touchLine(uint32_t LineAddr);

  uint32_t LineSize, NumSets, Assoc;
  /// Per set: tags in LRU order (front = most recent). ~0u = invalid.
  std::vector<std::vector<uint32_t>> Sets;
};

/// Per-PC event counts (the cachegrind.out rows).
struct CacheLineCounts {
  uint64_t Ir = 0, I1mr = 0, ILmr = 0;
  uint64_t Dr = 0, D1mr = 0, DLmr = 0;
  uint64_t Dw = 0, D1mw = 0, DLmw = 0;
};

class Cachegrind : public Tool {
public:
  Cachegrind();

  const char *name() const override { return "cachegrind"; }
  void registerOptions(OptionRegistry &Opts) override;
  void init(Core &C) override;
  void instrument(ir::IRSB &SB) override;
  void fini(int ExitCode) override;

  const CacheLineCounts &totals() const { return Totals; }
  const std::map<uint32_t, CacheLineCounts> &perPC() const { return PerPC; }

  // Helpers bound into Callee descriptors.
  static uint64_t helperInstr(void *Env, uint64_t PC, uint64_t Size,
                              uint64_t, uint64_t);
  static uint64_t helperRead(void *Env, uint64_t Addr, uint64_t Size,
                             uint64_t PC, uint64_t);
  static uint64_t helperWrite(void *Env, uint64_t Addr, uint64_t Size,
                              uint64_t PC, uint64_t);

private:
  void simInstr(uint32_t PC, uint32_t Size);
  void simData(uint32_t PC, uint32_t Addr, uint32_t Size, bool Write);

  Core *C = nullptr;
  std::unique_ptr<CacheModel> I1, D1, LL;
  CacheLineCounts Totals;
  std::map<uint32_t, CacheLineCounts> PerPC;
};

} // namespace vg

#endif // VG_TOOLS_CACHEGRIND_H
