//===-- workloads/Workloads.h - SPEC-like synthetic workloads ---*- C++ -*-==//
///
/// \file
/// Fourteen synthetic guest programs mimicking the computational character
/// of the SPEC CPU2000 benchmarks used in the paper's Table 2 — the
/// substitution for the real suite (see DESIGN.md). Integer workloads are
/// listed before floating-point ones, as in the paper.
///
///   bzip2    run-length compress/decompress of pseudo-random bytes
///   crafty   bitboard-style bit manipulation
///   gcc      branchy interpretation of a random bytecode program
///   gzip     LZ-style window matching (nested byte-compare loops)
///   mcf      pointer chasing through a shuffled linked list
///   parser   tokenising and dictionary matching over text
///   perlbmk  string hashing into chained buckets
///   vortex   open-addressing hash table insert/lookup mix
///   ammp     pairwise-force inner loops (FP)
///   applu    Jacobi sweeps over a 2D grid (FP)
///   art      dot products and winner-take-all scans (FP)
///   equake   1D wave-equation stencil steps (FP)
///   mesa     vertex transform with int<->FP conversions (mixed)
///   swim     elementwise triple-array updates (FP)
///
/// Every workload prints a checksum (so runs are comparable across
/// engines/tools) and heap users allocate through the guest library, so
/// tools with heap replacement see realistic allocation traffic.
///
//===----------------------------------------------------------------------===//
#ifndef VG_WORKLOADS_WORKLOADS_H
#define VG_WORKLOADS_WORKLOADS_H

#include "core/GuestImage.h"

#include <string>
#include <vector>

namespace vg {

struct WorkloadInfo {
  std::string Name;
  bool IsFP; ///< listed after integer workloads, as in Table 2
};

/// All workloads, integer first (Table 2 ordering).
const std::vector<WorkloadInfo> &allWorkloads();

/// Builds the named workload. \p Scale multiplies the iteration count
/// (1 = a few million native instructions). Unknown names abort.
GuestImage buildWorkload(const std::string &Name, uint32_t Scale = 1);

} // namespace vg

#endif // VG_WORKLOADS_WORKLOADS_H
