//===-- core/ClientRequests.h - The client-request trap door ----*- C++ -*-==//
///
/// \file
/// Client requests (Section 3.11): a guest program executes CLREQ with a
/// request code in r0 and arguments in r1..r4; the result is returned in
/// r0. Running natively (no Valgrind), CLREQ returns 0 — exactly the
/// behaviour of the real macros outside Valgrind.
///
/// Request codes are namespaced the way real Valgrind's VG_USERREQ codes
/// are: the top 16 bits carry a two-character owner tag and the low 16
/// bits the request number within that namespace —
///
///     code = (tag << 16) | number,   tag = (first << 8) | second
///
/// The core owns the 'C','R' namespace; each tool claims its own tag
/// ('M','C' for Memcheck, 'T','G' for TaintGrind, 'L','G' for Loopgrind).
/// ClientRequestEngine decodes the tag and routes: core-tagged requests
/// are serviced in the core, anything else is offered to the running
/// tool's Tool::handleClientRequest(); unrecognised requests return 0 and
/// are counted, never fatal.
///
/// Compatibility: the original flat code space (0x1001-0x1006 core
/// requests, 0x2001-0x2004 allocator requests, and CrToolBase=0x10000 tool
/// codes) predates the tag encoding. Those raw values are still accepted —
/// the engine normalises the legacy core/allocator codes to their
/// canonical tagged equivalents before dispatch, and tools keep alias
/// cases for their old CrToolBase-relative values. The CrLegacy* constants
/// below exist so the regression tests can pin that promise.
///
//===----------------------------------------------------------------------===//
#ifndef VG_CORE_CLIENTREQUESTS_H
#define VG_CORE_CLIENTREQUESTS_H

#include <cstdint>

namespace vg {

/// Builds a 16-bit namespace tag from two printable characters — the
/// VG_USERREQ_TOOL_BASE('X','Y') of the real macros.
constexpr uint32_t vgToolTag(char First, char Second) {
  return (static_cast<uint32_t>(static_cast<uint8_t>(First)) << 8) |
         static_cast<uint8_t>(Second);
}

/// Builds a full request code from a namespace tag and a request number.
constexpr uint32_t vgRequest(uint32_t Tag, uint32_t Number) {
  return (Tag << 16) | (Number & 0xFFFFu);
}

/// The namespace tag of a request code.
constexpr uint32_t vgRequestTag(uint32_t Code) { return Code >> 16; }

/// The core's own namespace.
constexpr uint32_t CrCoreTag = vgToolTag('C', 'R');

enum ClientRequest : uint32_t {
  /// Discard cached translations of [arg1, arg1+arg2) — for dynamic code
  /// generators (Section 3.16).
  CrDiscardTranslations = vgRequest(CrCoreTag, 0x0001),
  /// Register a stack [arg1=start(low), arg2=end(high)); returns an id.
  /// (Section 3.12: help for stack-switch detection in tricky cases.)
  CrStackRegister = vgRequest(CrCoreTag, 0x0002),
  /// Deregister stack arg1.
  CrStackDeregister = vgRequest(CrCoreTag, 0x0003),
  /// Change stack arg1 to [arg2, arg3).
  CrStackChange = vgRequest(CrCoreTag, 0x0004),
  /// Print the NUL-terminated string at arg1 on the tool output channel.
  CrPrint = vgRequest(CrCoreTag, 0x0005),
  /// True (1) when running under the core — lets guest code detect it.
  CrRunningOnValgrind = vgRequest(CrCoreTag, 0x0006),

  // --- replacement-allocator requests (issued by guestlib malloc etc.,
  //     the moral equivalent of Valgrind's vgpreload stubs; R8) ----------
  CrMalloc = vgRequest(CrCoreTag, 0x0101),  ///< arg1=size -> payload (0=OOM)
  CrFree = vgRequest(CrCoreTag, 0x0102),    ///< arg1=addr
  CrCalloc = vgRequest(CrCoreTag, 0x0103),  ///< arg1=n, arg2=sz -> zeroed
  CrRealloc = vgRequest(CrCoreTag, 0x0104), ///< arg1=addr, arg2=newsize
};

/// Pre-namespacing raw codes, still accepted at runtime (normalised to the
/// canonical codes above by ClientRequestEngine). New code should use the
/// tagged constants; these exist for old guest binaries and the
/// compatibility regression tests.
enum LegacyClientRequest : uint32_t {
  CrLegacyDiscardTranslations = 0x1001,
  CrLegacyStackRegister = 0x1002,
  CrLegacyStackDeregister = 0x1003,
  CrLegacyStackChange = 0x1004,
  CrLegacyPrint = 0x1005,
  CrLegacyRunningOnValgrind = 0x1006,
  CrLegacyMalloc = 0x2001,
  CrLegacyFree = 0x2002,
  CrLegacyCalloc = 0x2003,
  CrLegacyRealloc = 0x2004,
};

/// First code of the legacy flat tool space. Tools that shipped requests
/// as CrToolBase+N keep accepting those values as aliases of their tagged
/// codes; new tool requests should be vgRequest(vgToolTag(...), N).
constexpr uint32_t CrToolBase = 0x10000;

/// Normalises a legacy flat core/allocator code to its canonical tagged
/// equivalent; any other code (tagged, tool-space, or unknown) passes
/// through unchanged.
constexpr uint32_t vgNormalizeRequest(uint32_t Code) {
  switch (Code) {
  case CrLegacyDiscardTranslations:
    return CrDiscardTranslations;
  case CrLegacyStackRegister:
    return CrStackRegister;
  case CrLegacyStackDeregister:
    return CrStackDeregister;
  case CrLegacyStackChange:
    return CrStackChange;
  case CrLegacyPrint:
    return CrPrint;
  case CrLegacyRunningOnValgrind:
    return CrRunningOnValgrind;
  case CrLegacyMalloc:
    return CrMalloc;
  case CrLegacyFree:
    return CrFree;
  case CrLegacyCalloc:
    return CrCalloc;
  case CrLegacyRealloc:
    return CrRealloc;
  default:
    return Code;
  }
}

} // namespace vg

#endif // VG_CORE_CLIENTREQUESTS_H
