//===-- tests/HvmTests.cpp - Back-end unit tests --------------------------==//
///
/// \file
/// Unit tests for the JIT back end: instruction selection patterns,
/// linear-scan register allocation (coalescing, spilling, call-clobber
/// constraints), encoding round-trips, and executor semantics — including
/// a property sweep checking every IR op end-to-end against evalOp.
///
//===----------------------------------------------------------------------===//

#include "guest/GuestMemory.h"
#include "hvm/Exec.h"
#include "hvm/ISel.h"
#include "ir/IR.h"
#include "ir/IROpt.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>

using namespace vg;
using namespace vg::hvm;
using namespace vg::ir;

namespace {

/// Lowers, allocates, encodes, and runs one superblock over the given
/// guest-state bytes; returns the exit outcome.
RunOutcome runSB(IRSB &SB, uint8_t *Gst, GuestMemory &Mem) {
  HostCode HC = selectInstructions(SB);
  allocateRegisters(HC);
  CodeBlob Blob;
  Blob.Bytes = encode(HC);
  Blob.NumSpillSlots = HC.NumSpillSlots;
  ExecContext Ctx;
  Ctx.GuestState = Gst;
  Ctx.Mem = &Mem;
  Executor Exec(Ctx, /*PCOffset=*/64);
  return Exec.run(Blob);
}

TEST(ISel, FoldsAddressDisplacements) {
  IRSB SB;
  TmpId TA = SB.wrTmp(SB.get(0, Ty::I32));
  TmpId TV = SB.wrTmp(
      SB.load(Ty::I32, SB.binop(Op::Add32, SB.rdTmp(TA), SB.constI32(16))));
  SB.put(4, SB.rdTmp(TV));
  SB.setNext(SB.constI32(0), JumpKind::Boring);
  buildTrees(SB);
  HostCode HC = selectInstructions(SB);
  bool FoundFoldedLoad = false;
  for (const HInstr &I : HC.Instrs)
    if (I.Op == HOp::LDM && I.Disp == 16)
      FoundFoldedLoad = true;
  EXPECT_TRUE(FoundFoldedLoad);
}

TEST(ISel, ConstOperandsBecomeImmediates) {
  IRSB SB;
  TmpId T = SB.wrTmp(SB.binop(Op::Add32, SB.get(0, Ty::I32), SB.constI32(42)));
  SB.put(4, SB.rdTmp(T));
  SB.setNext(SB.constI32(0), JumpKind::Boring);
  buildTrees(SB);
  HostCode HC = selectInstructions(SB);
  bool FoundImm = false;
  for (const HInstr &I : HC.Instrs)
    if (I.Op == HOp::ALUI && I.Imm == 42)
      FoundImm = true;
  EXPECT_TRUE(FoundImm);
}

TEST(RegAlloc, AssignsPhysicalRegistersAndCoalesces) {
  IRSB SB;
  TmpId T0 = SB.wrTmp(SB.get(0, Ty::I32));
  TmpId T1 = SB.wrTmp(SB.binop(Op::Add32, SB.rdTmp(T0), SB.rdTmp(T0)));
  SB.put(4, SB.rdTmp(T1));
  SB.setNext(SB.constI32(0), JumpKind::Boring);
  HostCode HC = selectInstructions(SB);
  unsigned Coalesced = allocateRegisters(HC);
  EXPECT_GE(Coalesced, 1u); // the WrTmp copies vanish
  for (const HInstr &I : HC.Instrs) {
    EXPECT_FALSE(isVirtual(I.Dst) && I.Dst != NoReg);
    EXPECT_FALSE(isVirtual(I.A) && I.A != NoReg);
  }
}

TEST(RegAlloc, SpillsUnderPressureAndStaysCorrect) {
  // Sum 24 values loaded up-front: more live values than registers.
  IRSB SB;
  std::vector<TmpId> Vals;
  for (int I = 0; I != 24; ++I)
    Vals.push_back(SB.wrTmp(SB.get(static_cast<uint32_t>(4 * I), Ty::I32)));
  // Sum them in reverse order so everything stays live a long time.
  Expr *Acc = SB.rdTmp(Vals[23]);
  for (int I = 22; I >= 0; --I)
    Acc = SB.rdTmp(SB.wrTmp(SB.binop(Op::Add32, Acc, SB.rdTmp(Vals[I]))));
  SB.put(100, Acc);
  SB.setNext(SB.constI32(0), JumpKind::Boring);

  HostCode HC = selectInstructions(SB);
  allocateRegisters(HC);
  bool Spilled = false;
  for (const HInstr &I : HC.Instrs)
    if (I.Op == HOp::SPILL || I.Op == HOp::RELOAD)
      Spilled = true;
  EXPECT_TRUE(Spilled) << "24 live values must not fit 10 registers";

  alignas(8) uint8_t Gst[384] = {};
  for (uint32_t I = 0; I != 24; ++I) {
    uint32_t V = I + 1;
    std::memcpy(Gst + 4 * I, &V, 4);
  }
  GuestMemory Mem;
  runSB(SB, Gst, Mem);
  uint32_t Sum;
  std::memcpy(&Sum, Gst + 100, 4);
  EXPECT_EQ(Sum, 300u); // 1+..+24
}

TEST(RegAlloc, ValuesSurviveHelperCalls) {
  // A value live across a dirty call must land in a callee-saved register
  // or be spilled; the executor poisons caller-saved registers at calls.
  static const Callee Nop = {"nop_helper",
                             [](void *, uint64_t, uint64_t, uint64_t,
                                uint64_t) -> uint64_t { return 0; },
                             0};
  IRSB SB;
  TmpId T0 = SB.wrTmp(SB.get(0, Ty::I32));
  TmpId T1 = SB.wrTmp(SB.get(4, Ty::I32));
  SB.dirty(&Nop, {});
  SB.dirty(&Nop, {});
  TmpId T2 = SB.wrTmp(SB.binop(Op::Add32, SB.rdTmp(T0), SB.rdTmp(T1)));
  SB.put(8, SB.rdTmp(T2));
  SB.setNext(SB.constI32(0), JumpKind::Boring);

  alignas(8) uint8_t Gst[384] = {};
  uint32_t A = 1111, B = 2222;
  std::memcpy(Gst + 0, &A, 4);
  std::memcpy(Gst + 4, &B, 4);
  GuestMemory Mem;
  runSB(SB, Gst, Mem);
  uint32_t Out;
  std::memcpy(&Out, Gst + 8, 4);
  EXPECT_EQ(Out, 3333u);
}

TEST(Exec, GuardedExitTakenAndNotTaken) {
  for (uint32_t Flag : {0u, 1u}) {
    IRSB SB;
    TmpId T = SB.wrTmp(SB.get(0, Ty::I32));
    TmpId C = SB.wrTmp(SB.unop(Op::CmpNEZ32, SB.rdTmp(T)));
    SB.exit(SB.rdTmp(C), 0x2222, JumpKind::Boring);
    SB.setNext(SB.constI32(0x1111), JumpKind::Boring);
    alignas(8) uint8_t Gst[384] = {};
    std::memcpy(Gst, &Flag, 4);
    GuestMemory Mem;
    RunOutcome O = runSB(SB, Gst, Mem);
    EXPECT_EQ(O.NextPC, Flag ? 0x2222u : 0x1111u);
    // The exit also wrote the guest PC slot.
    uint32_t PC;
    std::memcpy(&PC, Gst + 64, 4);
    EXPECT_EQ(PC, O.NextPC);
  }
}

TEST(Exec, GuardedDirtyCallSkipped) {
  static int Calls;
  Calls = 0;
  static const Callee Count = {"count_helper",
                               [](void *, uint64_t, uint64_t, uint64_t,
                                  uint64_t) -> uint64_t {
                                 ++Calls;
                                 return 0;
                               },
                               0};
  IRSB SB;
  SB.dirty(&Count, {}, NoTmp, SB.constI1(false)); // PropFold would remove;
                                                  // keep un-optimised
  SB.dirty(&Count, {}, NoTmp, SB.constI1(true));
  SB.setNext(SB.constI32(0), JumpKind::Boring);
  alignas(8) uint8_t Gst[384] = {};
  GuestMemory Mem;
  runSB(SB, Gst, Mem);
  EXPECT_EQ(Calls, 1);
}

TEST(Exec, MemoryFaultReportsIMarkPC) {
  IRSB SB;
  SB.imark(0xABC0, 4);
  TmpId T = SB.wrTmp(SB.load(Ty::I32, SB.constI32(0x00990000)));
  SB.put(0, SB.rdTmp(T));
  SB.setNext(SB.constI32(0), JumpKind::Boring);
  alignas(8) uint8_t Gst[384] = {};
  GuestMemory Mem; // nothing mapped
  RunOutcome O = runSB(SB, Gst, Mem);
  EXPECT_EQ(O.K, RunOutcome::Kind::Fault);
  EXPECT_EQ(O.FaultPC, 0xABC0u);
  EXPECT_EQ(O.FaultAddr, 0x00990000u);
}

//===----------------------------------------------------------------------===//
// Property sweep: every op agrees with evalOp through the whole back end
//===----------------------------------------------------------------------===//

class OpProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(OpProperty, BackEndMatchesEvaluator) {
  Op O = static_cast<Op>(GetParam());
  std::mt19937_64 Rng(GetParam() * 7919 + 3);
  for (int Trial = 0; Trial != 16; ++Trial) {
    uint64_t A = truncToTy(Rng(), opArgTy(O, 0));
    uint64_t B = opArity(O) == 2 ? truncToTy(Rng(), opArgTy(O, 1)) : 0;
    IRSB SB;
    Expr *E = opArity(O) == 1
                  ? SB.unop(O, SB.mkConst(opArgTy(O, 0), A))
                  : SB.binop(O, SB.mkConst(opArgTy(O, 0), A),
                             SB.mkConst(opArgTy(O, 1), B));
    TmpId T = SB.wrTmp(E);
    // Widen to I64 through guest-state bytes: just PUT the raw tmp.
    SB.put(0, SB.rdTmp(T));
    SB.setNext(SB.constI32(0), JumpKind::Boring);
    // Deliberately NOT optimised: constants must flow through isel/exec.
    alignas(8) uint8_t Gst[384] = {};
    GuestMemory Mem;
    runSB(SB, Gst, Mem);
    uint64_t Got = 0;
    std::memcpy(&Got, Gst, tySizeBits(opResultTy(O)) / 8 == 0
                               ? 1
                               : tySizeBits(opResultTy(O)) / 8);
    uint64_t Want = truncToTy(evalOp(O, A, B), opResultTy(O));
    // I1 puts store a single byte.
    if (opResultTy(O) == Ty::I1)
      Got &= 1;
    EXPECT_EQ(Got, Want) << opName(O) << "(" << A << "," << B << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OpProperty,
    ::testing::Range(0u, static_cast<unsigned>(Op::CmpGT8Sx4) + 1),
    [](const ::testing::TestParamInfo<unsigned> &I) {
      return opName(static_cast<Op>(I.param));
    });

} // namespace
