//===-- kernel/AddressSpace.h - Address space manager -----------*- C++ -*-==//
///
/// \file
/// The address space manager (Section 3.3): tracks which guest ranges
/// belong to whom (client text/data/heap/stack/mmap vs. core-reserved) and
/// implements placement policy for mmap. System calls involving the
/// partitioned address space are pre-checked against it, "so that if the
/// client tries to mmap memory currently used by the tool, Valgrind will
/// make it fail without even consulting the kernel" (Section 3.10).
///
//===----------------------------------------------------------------------===//
#ifndef VG_KERNEL_ADDRESSSPACE_H
#define VG_KERNEL_ADDRESSSPACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace vg {

enum class SegKind : uint8_t {
  ClientText,
  ClientData,
  ClientHeap,  ///< the brk segment
  ClientStack,
  ClientMmap,
  CoreReserved, ///< where the core+tool "live" (the 0x38000000 region)
};

struct Segment {
  uint32_t Start = 0, End = 0; // [Start, End), page aligned
  uint8_t Perms = 0;
  SegKind Kind = SegKind::ClientMmap;
  std::string Name;
};

/// Sorted, non-overlapping segment map over the 32-bit guest space.
class AddressSpace {
public:
  static constexpr uint32_t PageSize = 4096;
  /// Default search base for floating mmaps.
  static constexpr uint32_t MmapBase = 0x40000000;
  /// The core image's reservation (paper: Valgrind loads at 0x38000000).
  static constexpr uint32_t CoreBase = 0x38000000;
  static constexpr uint32_t CoreSize = 16 * 1024 * 1024;

  /// Registers the core's own reservation.
  void reserveCoreRegion();

  /// Adds a segment; fails (returns false) on any overlap.
  bool add(uint32_t Start, uint32_t Len, uint8_t Perms, SegKind Kind,
           const std::string &Name);

  /// Removes [Start, Start+Len) from any client segments it intersects
  /// (splitting as needed). Core-reserved ranges are never released this
  /// way. Returns the sub-ranges actually removed.
  std::vector<std::pair<uint32_t, uint32_t>> release(uint32_t Start,
                                                     uint32_t Len);

  /// Grows/shrinks a segment in place (brk). Returns false on conflict.
  bool resize(uint32_t Start, uint32_t NewEnd);

  const Segment *segmentAt(uint32_t Addr) const;
  const Segment *segmentByKind(SegKind Kind) const;

  bool anyOverlap(uint32_t Start, uint32_t Len) const;

  /// Finds a free page-aligned range of \p Len bytes at or above \p Hint.
  /// Returns 0 when the space is exhausted.
  uint32_t findFree(uint32_t Len, uint32_t Hint = MmapBase) const;

  const std::vector<Segment> &segments() const { return Segs; }

  static uint32_t pageDown(uint32_t A) { return A & ~(PageSize - 1); }
  static uint32_t pageUp(uint32_t A) {
    return (A + PageSize - 1) & ~(PageSize - 1);
  }

private:
  std::vector<Segment> Segs; // sorted by Start
};

} // namespace vg

#endif // VG_KERNEL_ADDRESSSPACE_H
