//===-- frontend/Vg1Frontend.h - Phase 1: VG1 -> tree IR --------*- C++ -*-==//
///
/// \file
/// The disassemble half of disassemble-and-resynthesise (Section 3.5):
/// converts VG1 machine code into tree IR, one superblock at a time. All of
/// the original code's effects on guest state — including condition-code
/// setting — are represented explicitly, because the original instructions
/// are discarded and final code is generated purely from the IR.
///
/// Superblock formation follows the paper's policy (Section 3.7): follow
/// instructions until (a) an instruction limit (~50) is reached, (b) a
/// conditional branch is hit, (c) a branch to an unknown target is hit, or
/// (d) more than three unconditional branches to known targets have been
/// chased.
///
/// Condition codes use a lazy thunk (CC_OP/CC_DEP1/CC_DEP2) exactly as
/// Valgrind models x86 %eflags; conditional branches call a clean helper
/// which the optimiser can partially evaluate via specFn().
///
/// The architecture-specific CPUINFO instruction is not modelled in IR;
/// it becomes an annotated dirty helper call (Section 3.6's cpuid
/// treatment), so tools still see which registers it writes.
///
//===----------------------------------------------------------------------===//
#ifndef VG_FRONTEND_VG1FRONTEND_H
#define VG_FRONTEND_VG1FRONTEND_H

#include "ir/IR.h"
#include "ir/IROpt.h"

#include <functional>
#include <memory>
#include <vector>

namespace vg {

/// Reads guest code bytes for disassembly. Returns how many bytes starting
/// at \p Addr were copied into \p Buf (0 if the address is not executable).
using FetchFn =
    std::function<uint32_t(uint32_t Addr, uint8_t *Buf, uint32_t MaxLen)>;

/// Output of Phase 1 for one superblock.
struct DisasmResult {
  std::unique_ptr<ir::IRSB> SB; ///< tree IR
  uint32_t Addr = 0;            ///< guest address of the block entry
  uint32_t NumInsns = 0;
  /// Guest byte ranges covered (more than one when unconditional branches
  /// were chased). Used for SMC hashing and translation invalidation.
  std::vector<std::pair<uint32_t, uint32_t>> Extents;
  /// True if the block ends because the next instruction failed to decode;
  /// the block then ends with a NoDecode jump.
  bool DecodeFailed = false;
};

/// Superblock formation limits.
struct FrontendConfig {
  unsigned MaxInsns = 50;
  unsigned MaxChases = 3;
};

/// Disassembles one superblock starting at \p Addr.
DisasmResult disassembleSB(uint32_t Addr, const FetchFn &Fetch,
                           const FrontendConfig &Cfg = FrontendConfig());

/// The clean helper evaluating VG1 conditions from the CC thunk:
/// vg1_calc_cond(cond, cc_op, cc_dep1, cc_dep2) -> 0/1.
const ir::Callee *calcCondCallee();

/// The dirty helper emulating CPUINFO (writes guest r0/r1).
const ir::Callee *cpuinfoCallee();

/// Partial evaluator for calcCond calls with constant cond/cc_op — the
/// reproduction of the %eflags specialisation hook (Section 3.7, Phase 2).
ir::SpecFn vg1SpecFn();

} // namespace vg

#endif // VG_FRONTEND_VG1FRONTEND_H
