//===-- core/SignalEngine.cpp - Signal queueing and delivery --------------==//

#include "core/SignalEngine.h"

#include "core/Core.h"
#include "core/DispatchLoop.h"

#include <cstdio>

using namespace vg;
using namespace vg::vg1;

void SignalEngine::setHandler(int Sig, uint32_t Handler) {
  if (Sig >= 0 && Sig < 64)
    SigHandlers[Sig] = Handler;
}

uint32_t SignalEngine::handler(int Sig) const {
  return (Sig >= 0 && Sig < 64) ? SigHandlers[Sig] : 0;
}

bool SignalEngine::raise(int Tid, int Sig) {
  if (Sig <= 0 || Sig >= 64)
    return false;
  if (Tid < 0 || Tid >= Core::MaxThreads ||
      C.Threads[Tid].Status != ThreadStatus::Runnable) {
    // Exited/empty target: the signal has nowhere to go. Reject it rather
    // than queueing into a dead slot a future thread would inherit.
    ++C.Stats.SignalsDropped;
    if (C.Tracer)
      C.Tracer->record(Tid, TraceEvent::SigDrop, static_cast<uint32_t>(Sig),
                       static_cast<uint32_t>(Tid), SigDropBadTarget);
    return false;
  }
  ThreadState &TS = C.Threads[Tid];
  // Coalesce duplicates, like non-queued POSIX signals: a signal already
  // pending absorbs the new raise (which still succeeds).
  for (int P : TS.PendingSignals) {
    if (P == Sig) {
      ++C.Stats.SignalsDropped;
      if (C.Tracer)
        C.Tracer->record(Tid, TraceEvent::SigDrop, static_cast<uint32_t>(Sig),
                         static_cast<uint32_t>(Tid), SigDropCoalesced);
      return true;
    }
  }
  TS.PendingSignals.push_back(Sig);
  if (C.Tracer)
    C.Tracer->record(Tid, TraceEvent::SigQueue, static_cast<uint32_t>(Sig),
                     static_cast<uint32_t>(Tid));
  return true;
}

bool SignalEngine::deliverPending(ThreadState &TS) {
  if (TS.PendingSignals.empty())
    return false;
  // Deliver the first *unmasked* pending signal. A signal whose handler is
  // already on the frame stack stays queued until that handler's sigreturn
  // clears the mask bit — handlers are never re-entered.
  for (size_t I = 0; I != TS.PendingSignals.size(); ++I) {
    int Sig = TS.PendingSignals[I];
    if (TS.signalMasked(Sig))
      continue;
    TS.PendingSignals.erase(TS.PendingSignals.begin() +
                            static_cast<long>(I));
    if (SigHandlers[Sig] == 0) {
      if (C.Tracer)
        C.Tracer->record(TS.Tid, TraceEvent::SigFatal,
                         static_cast<uint32_t>(Sig));
      C.FatalSignal = Sig; // default action: terminate
      C.Dispatch->stopWorld();
      return true;
    }
    deliver(TS, Sig);
    return true;
  }
  return false;
}

void SignalEngine::deliver(ThreadState &TS, int Sig) {
  ++C.Stats.SignalsDelivered;
  // Save the full guest context; sigreturn restores it. gso::TotalSize
  // spans the guest registers, the shadow registers, and the CC thunk, so
  // a tool's shadow state survives the handler unchanged. Delivery happens
  // only between code blocks, so loads/stores are never separated from
  // their shadow counterparts (Section 3.15).
  TS.SignalFrames.push_back(
      {std::vector<uint8_t>(TS.Guest, TS.Guest + gso::TotalSize), Sig});
  TS.SigMask |= 1ull << Sig;
  uint32_t SP = TS.gpr(RegSP) - 4;
  uint32_t Tramp = AddressSpace::CoreBase;
  C.Memory.write(SP, &Tramp, 4, /*IgnorePerms=*/true);
  // Keep shadow-memory tools consistent: the slot became active stack and
  // then was written by the core.
  if (C.Events.NewMemStack)
    C.Events.NewMemStack(SP, 4);
  if (C.Events.PostMemWrite)
    C.Events.PostMemWrite(TS.Tid, SP, 4);
  TS.TrackedSP = SP;
  TS.setGpr(RegSP, SP);
  TS.setGpr(1, static_cast<uint32_t>(Sig));
  // The core wrote SP and r1 behind the client's back; without these a
  // definedness tool sees the handler read an undefined signal number.
  if (C.Events.PostRegWrite) {
    C.Events.PostRegWrite(TS.Tid, gso::gpr(RegSP), 4);
    C.Events.PostRegWrite(TS.Tid, gso::gpr(1), 4);
  }
  TS.setPCVal(SigHandlers[Sig]);
  if (C.Tracer)
    C.Tracer->record(TS.Tid, TraceEvent::SigDeliver,
                     static_cast<uint32_t>(Sig), SigHandlers[Sig]);
}

void SignalEngine::handleFault(ThreadState &TS, uint32_t FaultPC,
                               uint32_t FaultAddr, bool Write, int Sig) {
  TS.setPCVal(FaultPC);
  // A handler whose signal is masked (it is itself running) does not get
  // re-entered: a handler that faults the same way it was invoked for
  // terminates instead of recursing forever.
  if (Sig >= 0 && Sig < 64 && SigHandlers[Sig] && !TS.signalMasked(Sig)) {
    deliver(TS, Sig);
    return;
  }
  C.Out.printf("vg: fatal signal %d at pc=0x%08X (%s address 0x%08X)\n", Sig,
               FaultPC, Write ? "writing" : "reading", FaultAddr);
  if (C.Tracer)
    C.Tracer->record(TS.Tid, TraceEvent::SigFatal, static_cast<uint32_t>(Sig));
  C.FatalSignal = Sig;
  C.Dispatch->stopWorld();
}

void SignalEngine::sigreturn(int Tid) {
  ThreadState &TS = C.Threads[Tid];
  if (TS.SignalFrames.empty()) {
    // Stray sigreturn: the client re-entered the core's trampoline (or
    // issued the raw syscall) with no delivery in flight. With signals
    // still pending this is a real delivery bug, so report it instead of
    // silently ignoring it.
    char Msg[96];
    std::snprintf(Msg, sizeof(Msg),
                  "sigreturn with no signal frame (%u signal(s) pending)",
                  static_cast<unsigned>(TS.PendingSignals.size()));
    C.Errors.record("StraySigreturn", Msg, TS.getPC(),
                    C.captureStackTrace(TS));
    return;
  }
  ThreadState::SignalFrame &F = TS.SignalFrames.back();
  TS.SigMask &= ~(1ull << F.Sig);
  std::copy(F.Guest.begin(), F.Guest.end(), TS.Guest);
  TS.SignalFrames.pop_back();
  if (C.Tracer)
    C.Tracer->record(Tid, TraceEvent::SigReturn, TS.getPC());
}

void SignalEngine::threadExiting(ThreadState &TS) {
  // Signals queued at a dying thread die with it (they were addressed to
  // this thread, and the slot may be reused by a future spawn).
  if (!TS.PendingSignals.empty()) {
    C.Stats.SignalsDropped += TS.PendingSignals.size();
    if (C.Tracer)
      for (int Sig : TS.PendingSignals)
        C.Tracer->record(TS.Tid, TraceEvent::SigDrop,
                         static_cast<uint32_t>(Sig),
                         static_cast<uint32_t>(TS.Tid), SigDropThreadExit);
  }
  TS.PendingSignals.clear();
  TS.SignalFrames.clear();
  TS.SigMask = 0;
}
