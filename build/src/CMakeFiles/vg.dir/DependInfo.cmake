
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Core.cpp" "src/CMakeFiles/vg.dir/core/Core.cpp.o" "gcc" "src/CMakeFiles/vg.dir/core/Core.cpp.o.d"
  "/root/repo/src/core/ErrorManager.cpp" "src/CMakeFiles/vg.dir/core/ErrorManager.cpp.o" "gcc" "src/CMakeFiles/vg.dir/core/ErrorManager.cpp.o.d"
  "/root/repo/src/core/GuestImage.cpp" "src/CMakeFiles/vg.dir/core/GuestImage.cpp.o" "gcc" "src/CMakeFiles/vg.dir/core/GuestImage.cpp.o.d"
  "/root/repo/src/core/Launcher.cpp" "src/CMakeFiles/vg.dir/core/Launcher.cpp.o" "gcc" "src/CMakeFiles/vg.dir/core/Launcher.cpp.o.d"
  "/root/repo/src/core/TransTab.cpp" "src/CMakeFiles/vg.dir/core/TransTab.cpp.o" "gcc" "src/CMakeFiles/vg.dir/core/TransTab.cpp.o.d"
  "/root/repo/src/core/Translate.cpp" "src/CMakeFiles/vg.dir/core/Translate.cpp.o" "gcc" "src/CMakeFiles/vg.dir/core/Translate.cpp.o.d"
  "/root/repo/src/frontend/Vg1Frontend.cpp" "src/CMakeFiles/vg.dir/frontend/Vg1Frontend.cpp.o" "gcc" "src/CMakeFiles/vg.dir/frontend/Vg1Frontend.cpp.o.d"
  "/root/repo/src/guest/Assembler.cpp" "src/CMakeFiles/vg.dir/guest/Assembler.cpp.o" "gcc" "src/CMakeFiles/vg.dir/guest/Assembler.cpp.o.d"
  "/root/repo/src/guest/Decoder.cpp" "src/CMakeFiles/vg.dir/guest/Decoder.cpp.o" "gcc" "src/CMakeFiles/vg.dir/guest/Decoder.cpp.o.d"
  "/root/repo/src/guest/Disasm.cpp" "src/CMakeFiles/vg.dir/guest/Disasm.cpp.o" "gcc" "src/CMakeFiles/vg.dir/guest/Disasm.cpp.o.d"
  "/root/repo/src/guest/GuestMemory.cpp" "src/CMakeFiles/vg.dir/guest/GuestMemory.cpp.o" "gcc" "src/CMakeFiles/vg.dir/guest/GuestMemory.cpp.o.d"
  "/root/repo/src/guest/RefInterp.cpp" "src/CMakeFiles/vg.dir/guest/RefInterp.cpp.o" "gcc" "src/CMakeFiles/vg.dir/guest/RefInterp.cpp.o.d"
  "/root/repo/src/guestlib/GuestLib.cpp" "src/CMakeFiles/vg.dir/guestlib/GuestLib.cpp.o" "gcc" "src/CMakeFiles/vg.dir/guestlib/GuestLib.cpp.o.d"
  "/root/repo/src/hvm/Exec.cpp" "src/CMakeFiles/vg.dir/hvm/Exec.cpp.o" "gcc" "src/CMakeFiles/vg.dir/hvm/Exec.cpp.o.d"
  "/root/repo/src/hvm/HostVM.cpp" "src/CMakeFiles/vg.dir/hvm/HostVM.cpp.o" "gcc" "src/CMakeFiles/vg.dir/hvm/HostVM.cpp.o.d"
  "/root/repo/src/hvm/ISel.cpp" "src/CMakeFiles/vg.dir/hvm/ISel.cpp.o" "gcc" "src/CMakeFiles/vg.dir/hvm/ISel.cpp.o.d"
  "/root/repo/src/hvm/RegAlloc.cpp" "src/CMakeFiles/vg.dir/hvm/RegAlloc.cpp.o" "gcc" "src/CMakeFiles/vg.dir/hvm/RegAlloc.cpp.o.d"
  "/root/repo/src/ir/IR.cpp" "src/CMakeFiles/vg.dir/ir/IR.cpp.o" "gcc" "src/CMakeFiles/vg.dir/ir/IR.cpp.o.d"
  "/root/repo/src/ir/IROpt.cpp" "src/CMakeFiles/vg.dir/ir/IROpt.cpp.o" "gcc" "src/CMakeFiles/vg.dir/ir/IROpt.cpp.o.d"
  "/root/repo/src/ir/IRPrinter.cpp" "src/CMakeFiles/vg.dir/ir/IRPrinter.cpp.o" "gcc" "src/CMakeFiles/vg.dir/ir/IRPrinter.cpp.o.d"
  "/root/repo/src/kernel/AddressSpace.cpp" "src/CMakeFiles/vg.dir/kernel/AddressSpace.cpp.o" "gcc" "src/CMakeFiles/vg.dir/kernel/AddressSpace.cpp.o.d"
  "/root/repo/src/kernel/SimKernel.cpp" "src/CMakeFiles/vg.dir/kernel/SimKernel.cpp.o" "gcc" "src/CMakeFiles/vg.dir/kernel/SimKernel.cpp.o.d"
  "/root/repo/src/shadow/ShadowMemory.cpp" "src/CMakeFiles/vg.dir/shadow/ShadowMemory.cpp.o" "gcc" "src/CMakeFiles/vg.dir/shadow/ShadowMemory.cpp.o.d"
  "/root/repo/src/support/Options.cpp" "src/CMakeFiles/vg.dir/support/Options.cpp.o" "gcc" "src/CMakeFiles/vg.dir/support/Options.cpp.o.d"
  "/root/repo/src/support/Output.cpp" "src/CMakeFiles/vg.dir/support/Output.cpp.o" "gcc" "src/CMakeFiles/vg.dir/support/Output.cpp.o.d"
  "/root/repo/src/support/Profile.cpp" "src/CMakeFiles/vg.dir/support/Profile.cpp.o" "gcc" "src/CMakeFiles/vg.dir/support/Profile.cpp.o.d"
  "/root/repo/src/tools/Cachegrind.cpp" "src/CMakeFiles/vg.dir/tools/Cachegrind.cpp.o" "gcc" "src/CMakeFiles/vg.dir/tools/Cachegrind.cpp.o.d"
  "/root/repo/src/tools/ICnt.cpp" "src/CMakeFiles/vg.dir/tools/ICnt.cpp.o" "gcc" "src/CMakeFiles/vg.dir/tools/ICnt.cpp.o.d"
  "/root/repo/src/tools/Massif.cpp" "src/CMakeFiles/vg.dir/tools/Massif.cpp.o" "gcc" "src/CMakeFiles/vg.dir/tools/Massif.cpp.o.d"
  "/root/repo/src/tools/Memcheck.cpp" "src/CMakeFiles/vg.dir/tools/Memcheck.cpp.o" "gcc" "src/CMakeFiles/vg.dir/tools/Memcheck.cpp.o.d"
  "/root/repo/src/tools/TaintGrind.cpp" "src/CMakeFiles/vg.dir/tools/TaintGrind.cpp.o" "gcc" "src/CMakeFiles/vg.dir/tools/TaintGrind.cpp.o.d"
  "/root/repo/src/workloads/Workloads.cpp" "src/CMakeFiles/vg.dir/workloads/Workloads.cpp.o" "gcc" "src/CMakeFiles/vg.dir/workloads/Workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
