//===-- support/Output.cpp - Side-channel output sinks --------------------==//

#include "support/Output.h"

#include <vector>

using namespace vg;

OutputSink::~OutputSink() {
  if (File)
    std::fclose(File);
}

bool OutputSink::openFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  if (File)
    std::fclose(File);
  File = F;
  TheMode = Mode::File;
  return true;
}

void OutputSink::useBuffer() {
  TheMode = Mode::Buffer;
  Buf.clear();
}

void OutputSink::printf(const char *Fmt, ...) {
  va_list Ap;
  va_start(Ap, Fmt);
  vprintf(Fmt, Ap);
  va_end(Ap);
}

void OutputSink::vprintf(const char *Fmt, va_list Ap) {
  va_list Ap2;
  va_copy(Ap2, Ap);
  int N = std::vsnprintf(nullptr, 0, Fmt, Ap2);
  va_end(Ap2);
  if (N <= 0)
    return;
  std::vector<char> Tmp(static_cast<size_t>(N) + 1);
  std::vsnprintf(Tmp.data(), Tmp.size(), Fmt, Ap);
  write(std::string(Tmp.data(), static_cast<size_t>(N)));
}

void OutputSink::write(const std::string &S) {
  std::lock_guard<std::mutex> L(Mu);
  switch (TheMode) {
  case Mode::Stderr:
    std::fwrite(S.data(), 1, S.size(), stderr);
    break;
  case Mode::File:
    std::fwrite(S.data(), 1, S.size(), File);
    break;
  case Mode::Buffer:
    Buf += S;
    break;
  }
}

std::string OutputSink::takeBuffer() {
  std::lock_guard<std::mutex> L(Mu);
  std::string Out;
  Out.swap(Buf);
  return Out;
}
