//===-- bench/table1_events.cpp - Reproduces Table 1 ----------------------==//
///
/// \file
/// Regenerates the paper's Table 1: the events system. Runs a program that
/// exercises every trigger site (system calls, the loader, stack-pointer
/// changes) under a recording tool and prints each event with its
/// requirement, trigger location, Memcheck's handling callback, and the
/// observed fire count — demonstrating that every Table 1 row is live in
/// this reproduction.
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "guestlib/GuestLib.h"
#include "kernel/SimKernel.h"

#include <cstdio>
#include <map>

using namespace vg;
using namespace vg::vg1;

namespace {

struct Counts {
  std::map<std::string, uint64_t> N;
};

class Recorder : public Tool {
public:
  explicit Recorder(Counts &C) : Cnt(C) {}
  const char *name() const override { return "table1-recorder"; }
  void init(Core &C) override {
    EventHub &E = C.events();
    E.PreRegRead = [&](int, uint32_t, uint32_t, const char *) {
      ++Cnt.N["pre_reg_read"];
    };
    E.PostRegWrite = [&](int, uint32_t, uint32_t) {
      ++Cnt.N["post_reg_write"];
    };
    E.PreMemRead = [&](int, uint32_t, uint32_t, const char *) {
      ++Cnt.N["pre_mem_read"];
    };
    E.PreMemReadAsciiz = [&](int, uint32_t, const char *) {
      ++Cnt.N["pre_mem_read_asciiz"];
    };
    E.PreMemWrite = [&](int, uint32_t, uint32_t, const char *) {
      ++Cnt.N["pre_mem_write"];
    };
    E.PostMemWrite = [&](int, uint32_t, uint32_t) {
      ++Cnt.N["post_mem_write"];
    };
    E.NewMemStartup = [&](uint32_t, uint32_t, uint8_t) {
      ++Cnt.N["new_mem_startup"];
    };
    E.NewMemMmap = [&](uint32_t, uint32_t, uint8_t) {
      ++Cnt.N["new_mem_mmap"];
    };
    E.DieMemMunmap = [&](uint32_t, uint32_t) { ++Cnt.N["die_mem_munmap"]; };
    E.NewMemBrk = [&](uint32_t, uint32_t) { ++Cnt.N["new_mem_brk"]; };
    E.DieMemBrk = [&](uint32_t, uint32_t) { ++Cnt.N["die_mem_brk"]; };
    E.CopyMemMremap = [&](uint32_t, uint32_t, uint32_t) {
      ++Cnt.N["copy_mem_mremap"];
    };
    E.NewMemStack = [&](uint32_t, uint32_t) { ++Cnt.N["new_mem_stack"]; };
    E.DieMemStack = [&](uint32_t, uint32_t) { ++Cnt.N["die_mem_stack"]; };
  }

private:
  Counts &Cnt;
};

} // namespace

int main() {
  // A program touching every trigger: files, mmap/mremap/munmap, brk both
  // ways, gettimeofday, and plenty of stack motion.
  Assembler Code(0x1000);
  Assembler Data(0x100000);
  [[maybe_unused]] GuestLibLabels Lib = emitGuestLib(Code, Data);
  Label Main = Code.newLabel();
  uint32_t Entry = emitStart(Code, Main);
  Code.bind(Main);
  Label Path = Data.boundLabel();
  Data.emitString("t1.dat");
  Label Tv = Data.boundLabel();
  Data.emitZeros(8);
  Code.movi(Reg::R0, SysMmap);
  Code.movi(Reg::R1, 0);
  Code.movi(Reg::R2, 8192);
  Code.movi(Reg::R3, 3);
  Code.movi(Reg::R4, 0);
  Code.sys();
  Code.mov(Reg::R6, Reg::R0);
  Code.movi(Reg::R0, SysMremap);
  Code.mov(Reg::R1, Reg::R6);
  Code.movi(Reg::R2, 8192);
  Code.movi(Reg::R3, 16384);
  Code.sys();
  Code.mov(Reg::R6, Reg::R0);
  Code.movi(Reg::R0, SysMunmap);
  Code.mov(Reg::R1, Reg::R6);
  Code.movi(Reg::R2, 16384);
  Code.sys();
  Code.movi(Reg::R0, SysBrk);
  Code.movi(Reg::R1, 0);
  Code.sys();
  Code.mov(Reg::R6, Reg::R0);
  Code.addi(Reg::R1, Reg::R6, 8192);
  Code.movi(Reg::R0, SysBrk);
  Code.sys();
  Code.mov(Reg::R1, Reg::R6);
  Code.movi(Reg::R0, SysBrk);
  Code.sys();
  Code.movi(Reg::R0, SysOpen);
  Code.movi(Reg::R1, Data.labelAddr(Path));
  Code.movi(Reg::R2, 1);
  Code.sys();
  Code.movi(Reg::R0, SysGettimeofday);
  Code.movi(Reg::R1, Data.labelAddr(Tv));
  Code.sys();
  // write() pre-reads the buffer it sends (pre_mem_read).
  Code.movi(Reg::R0, SysWrite);
  Code.movi(Reg::R1, 1);
  Code.movi(Reg::R2, Data.labelAddr(Path));
  Code.movi(Reg::R3, 6);
  Code.sys();
  Code.push(Reg::R1);
  Code.push(Reg::R2);
  Code.pop(Reg::R2);
  Code.pop(Reg::R1);
  Code.movi(Reg::R0, 0);
  Code.ret();
  GuestImage Img =
      GuestImageBuilder().addCode(Code).addData(Data).entry(Entry).build();

  Counts Cnt;
  Recorder T(Cnt);
  RunReport R = runUnderCore(Img, &T);
  if (!R.Completed) {
    std::printf("exercise program failed\n");
    return 1;
  }

  struct RowDef {
    const char *Req, *Event, *Trigger, *McCallback;
  };
  static const RowDef Rows[] = {
      {"R4", "pre_reg_read", "every system call wrapper",
       "check shadow reg defined"},
      {"R4", "post_reg_write", "every system call wrapper",
       "make_reg_defined"},
      {"R4", "pre_mem_read", "many system call wrappers",
       "check_mem_is_defined"},
      {"R4", "pre_mem_read_asciiz", "open wrapper (paths)",
       "check_mem_is_defined_asciiz"},
      {"R4", "pre_mem_write", "many system call wrappers",
       "check_mem_is_addressable"},
      {"R4", "post_mem_write", "many system call wrappers",
       "make_mem_defined"},
      {"R5", "new_mem_startup", "the core's code loader",
       "make_mem_defined"},
      {"R6", "new_mem_mmap", "mmap wrapper", "make_mem_defined"},
      {"R6", "die_mem_munmap", "munmap wrapper", "make_mem_noaccess"},
      {"R6", "new_mem_brk", "brk wrapper", "make_mem_undefined"},
      {"R6", "die_mem_brk", "brk wrapper", "make_mem_noaccess"},
      {"R6", "copy_mem_mremap", "mremap wrapper", "copy_range"},
      {"R7", "new_mem_stack", "instrumentation of SP changes",
       "make_mem_undefined"},
      {"R7", "die_mem_stack", "instrumentation of SP changes",
       "make_mem_noaccess"},
  };

  std::printf("== Table 1: Valgrind events, trigger sites, Memcheck "
              "callbacks, observed fires ==\n");
  std::printf("%-4s %-20s %-34s %-30s %8s\n", "Req", "Event", "Called from",
              "Memcheck callback", "fires");
  bool AllFired = true;
  for (const RowDef &Row : Rows) {
    uint64_t N = Cnt.N[Row.Event];
    AllFired = AllFired && N > 0;
    std::printf("%-4s %-20s %-34s %-30s %8llu\n", Row.Req, Row.Event,
                Row.Trigger, Row.McCallback,
                static_cast<unsigned long long>(N));
  }
  std::printf("\nall 14 events fired: %s\n", AllFired ? "YES" : "NO");
  return AllFired ? 0 : 1;
}
