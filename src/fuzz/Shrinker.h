//===-- fuzz/Shrinker.h - ddmin repro minimisation --------------*- C++ -*-==//
///
/// \file
/// Shrinks a diverging program to a minimal repro: the predicate is "still
/// diverges on the config that originally failed" (any field — divergences
/// often change shape while shrinking), evaluated by re-running oracle +
/// that one config. Reduction passes, to fixpoint or an eval budget:
/// loop-count reduction, wholesale leaf removal, delta-debugging (ddmin)
/// over the body and each leaf's atom list, flag simplification
/// (signals/SMC off), and stdin truncation.
///
//===----------------------------------------------------------------------===//
#ifndef VG_FUZZ_SHRINKER_H
#define VG_FUZZ_SHRINKER_H

#include "fuzz/DiffRunner.h"

namespace vg {
namespace fuzz {

struct ShrinkOutcome {
  FuzzProgram Minimal;
  Divergence Div;         ///< first divergence of the minimal repro
  unsigned Evals = 0;     ///< predicate evaluations spent
  unsigned AtomsBefore = 0, AtomsAfter = 0;
  unsigned InstrsAfter = 0; ///< bodyInstrCount of the minimal repro
};

/// Minimises \p P against \p FailingConfig. \p P must diverge on that
/// config (the returned outcome reproduces the check either way).
ShrinkOutcome shrinkProgram(const FuzzProgram &P,
                            const FuzzConfig &FailingConfig,
                            unsigned MaxEvals = 600);

} // namespace fuzz
} // namespace vg

#endif // VG_FUZZ_SHRINKER_H
