//===-- tests/TranslationServiceTests.cpp - Tiered translation tests ------==//
///
/// \file
/// Tests for the TranslationService: the synchronous pipeline, the
/// asynchronous promotion queue (publication, epoch/stale discards,
/// backpressure, shutdown abandonment, the accounting invariant), a
/// concurrent enqueue/lookup/flush hammer (the ThreadSanitizer target of
/// the `concurrency` ctest label), and the end-to-end determinism of the
/// --jit-threads=0 default under a full Core.
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "core/TranslationService.h"
#include "guestlib/GuestLib.h"
#include "tools/Nulgrind.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>

#include <unistd.h>

using namespace vg;
using namespace vg::vg1;

namespace {

//===----------------------------------------------------------------------===//
// Service-level harness: a stub host and a bank of tiny guest blocks
//===----------------------------------------------------------------------===//

constexpr uint32_t CodeBase = 0x1000;

/// Minimal host: counts the callbacks and lets a test inject a Phase 3
/// hook (all counters are guest-thread-only by the service's contract, so
/// plain fields are correct here — TSan would catch a violation).
struct StubHost : TranslationHost {
  InstrumentFn Instrument; ///< copied into TO at setup time (guest thread)
  bool MarkCacheable = false; ///< mimic the Core's no-SMC-prelude decision
  unsigned Notes = 0;
  unsigned Merges = 0;
  unsigned Installs = 0;
  Translation *LastInstalled = nullptr;

  void setupTranslation(TranslationOptions &TO, uint32_t, bool,
                        Translation *Raw) override {
    TO.Instrument = Instrument;
    Raw->Cacheable = MarkCacheable;
  }
  void noteTranslation(uint32_t, const Translation &, double) override {
    ++Notes;
  }
  void mergePhaseTimes(const PhaseTimes &) override { ++Merges; }
  void promotionInstalled(Translation *T, uint64_t) override {
    ++Installs;
    LastInstalled = T;
  }
};

/// GuestMemory pre-loaded with \p NBlocks independent blocks
/// ("movi r0, i; ret"), each a complete translation unit.
struct ServiceFixture {
  GuestMemory Mem;
  StubHost Host;
  TranslationService XS;
  std::vector<uint32_t> Blocks;

  explicit ServiceFixture(unsigned NBlocks = 8, size_t TTCap = 1u << 8)
      : XS(Host, Mem, TTCap) {
    Assembler Code(CodeBase);
    for (unsigned I = 0; I != NBlocks; ++I) {
      Blocks.push_back(Code.here());
      Code.movi(Reg::R0, I);
      Code.ret();
    }
    GuestImage Img = GuestImageBuilder().addCode(Code).entry(CodeBase).build();
    for (const ImageSegment &S : Img.Segments) {
      Mem.map(S.Base, static_cast<uint32_t>(S.Bytes.size()), S.Perms);
      Mem.write(S.Base, S.Bytes.data(), static_cast<uint32_t>(S.Bytes.size()),
                /*IgnorePerms=*/true);
    }
  }

  /// The invariant every test ends on: each request is settled exactly
  /// once — installed, discarded, failed, or abandoned at shutdown.
  void expectRequestsSettled() {
    const JitStats &J = XS.jitStats();
    EXPECT_EQ(J.AsyncRequests, J.AsyncInstalled + J.AsyncDiscardedEpoch +
                                   J.AsyncDiscardedStale + J.WorkerFailures +
                                   J.AsyncAbandoned);
  }
};

//===----------------------------------------------------------------------===//
// The synchronous pipeline
//===----------------------------------------------------------------------===//

TEST(TranslationService, SyncTranslateInsertsAndAccounts) {
  ServiceFixture F;
  Translation *T = F.XS.translateSync(F.Blocks[0], /*Hot=*/false);
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(F.XS.transTab().find(F.Blocks[0]), T);
  EXPECT_EQ(T->Tier, 0u);
  EXPECT_EQ(F.Host.Notes, 1u);

  // A hot retranslation replaces the cold block in place.
  Translation *T2 = F.XS.translateSync(F.Blocks[0], /*Hot=*/true);
  EXPECT_EQ(F.XS.transTab().find(F.Blocks[0]), T2);
  EXPECT_EQ(T2->Tier, 1u);
  EXPECT_EQ(F.Host.Notes, 2u);
  EXPECT_EQ(F.XS.jitStats().AsyncRequests, 0u);
}

TEST(TranslationService, AsyncDisabledByDefault) {
  ServiceFixture F;
  EXPECT_FALSE(F.XS.asyncEnabled());
  EXPECT_FALSE(F.XS.hasCompleted());
  Translation *T = F.XS.translateSync(F.Blocks[0], false);
  EXPECT_FALSE(F.XS.enqueuePromotion(T));
  // The refused enqueue is not a request and not a backpressure event —
  // at --jit-threads=0 the counters stay untouched.
  EXPECT_EQ(F.XS.jitStats().AsyncRequests, 0u);
  EXPECT_EQ(F.XS.jitStats().QueueFullFallbacks, 0u);
}

//===----------------------------------------------------------------------===//
// Asynchronous publication
//===----------------------------------------------------------------------===//

TEST(TranslationService, AsyncPromotionInstallsSuperblock) {
  ServiceFixture F;
  F.XS.configure(/*Threads=*/2, /*QueueDepth=*/8);
  ASSERT_TRUE(F.XS.asyncEnabled());

  Translation *Cold = F.XS.translateSync(F.Blocks[0], false);
  ASSERT_TRUE(F.XS.enqueuePromotion(Cold));
  EXPECT_TRUE(Cold->PromoPending);

  F.XS.waitIdle();
  EXPECT_TRUE(F.XS.hasCompleted());
  EXPECT_EQ(F.XS.drainCompleted(), 1u);
  EXPECT_FALSE(F.XS.hasCompleted());

  Translation *Hot = F.XS.transTab().find(F.Blocks[0]);
  ASSERT_NE(Hot, nullptr);
  EXPECT_NE(Hot, Cold);
  EXPECT_EQ(Hot->Tier, 1u);
  EXPECT_FALSE(Hot->PromoPending);
  EXPECT_EQ(F.Host.Installs, 1u);
  EXPECT_EQ(F.Host.LastInstalled, Hot);
  EXPECT_EQ(F.Host.Merges, 1u);
  EXPECT_EQ(F.Host.Notes, 2u); // cold sync + async install

  const JitStats &J = F.XS.jitStats();
  EXPECT_EQ(J.AsyncRequests, 1u);
  EXPECT_EQ(J.AsyncCompleted, 1u);
  EXPECT_EQ(J.AsyncInstalled, 1u);
  EXPECT_GE(J.InstallLatencySeconds, 0.0);
  F.expectRequestsSettled();
}

// The promotion-install vs TT-flush race: a flush between enqueue and
// drain must kill the job even though the guest bytes still hash equal
// (a redirect rewrites meaning, not memory).
TEST(TranslationService, FlushBetweenEnqueueAndDrainDiscardsJob) {
  ServiceFixture F;
  F.XS.configure(1, 8);
  Translation *Cold = F.XS.translateSync(F.Blocks[0], false);
  ASSERT_TRUE(F.XS.enqueuePromotion(Cold));

  F.XS.transTab().invalidateAll(); // bumps the flush epoch
  F.XS.waitIdle();
  EXPECT_EQ(F.XS.drainCompleted(), 0u);
  EXPECT_EQ(F.XS.jitStats().AsyncDiscardedEpoch, 1u);
  EXPECT_EQ(F.Host.Installs, 0u);
  EXPECT_EQ(F.XS.transTab().find(F.Blocks[0]), nullptr);
  F.expectRequestsSettled();
}

TEST(TranslationService, RangeInvalidationAlsoDiscards) {
  ServiceFixture F;
  F.XS.configure(1, 8);
  Translation *Cold = F.XS.translateSync(F.Blocks[0], false);
  ASSERT_TRUE(F.XS.enqueuePromotion(Cold));
  // Invalidate an unrelated block: the epoch is global by design (cheap
  // and safe beats precise here — a discarded job just re-promotes).
  F.XS.transTab().invalidateRange(F.Blocks[1], 4);
  F.XS.waitIdle();
  EXPECT_EQ(F.XS.drainCompleted(), 0u);
  EXPECT_EQ(F.XS.jitStats().AsyncDiscardedEpoch, 1u);
  F.expectRequestsSettled();
}

// SMC after the snapshot: the worker translated pristine bytes, the live
// code changed, and no flush ran (the write came from outside the
// SMC-detection paths). The install-time hash check must catch it.
TEST(TranslationService, StaleCodeDiscardedAtInstallTime) {
  ServiceFixture F;
  F.XS.configure(1, 8);
  Translation *Cold = F.XS.translateSync(F.Blocks[0], false);
  ASSERT_TRUE(F.XS.enqueuePromotion(Cold));
  F.XS.waitIdle(); // job finished against the pristine snapshot

  uint32_t Clobber = 0xDEADBEEF;
  F.Mem.write(F.Blocks[0], &Clobber, 4, /*IgnorePerms=*/true);

  EXPECT_EQ(F.XS.drainCompleted(), 0u);
  EXPECT_EQ(F.XS.jitStats().AsyncDiscardedStale, 1u);
  EXPECT_EQ(F.Host.Installs, 0u);
  // The request is settled: the block may become hot (and re-enqueue)
  // again.
  EXPECT_FALSE(Cold->PromoPending);
  F.expectRequestsSettled();
}

//===----------------------------------------------------------------------===//
// Backpressure and shutdown
//===----------------------------------------------------------------------===//

TEST(TranslationService, FullQueueFallsBackToInline) {
  ServiceFixture F;

  // Cold-translate three blocks before arming the gate (the stub copies
  // the hook at setup time, so these stay un-gated).
  Translation *A = F.XS.translateSync(F.Blocks[0], false);
  Translation *B = F.XS.translateSync(F.Blocks[1], false);
  Translation *C = F.XS.translateSync(F.Blocks[2], false);

  // A Phase 3 gate the test controls: the single worker blocks inside job
  // A until released, making the queue occupancy deterministic.
  std::mutex GateMu;
  std::condition_variable GateCV;
  bool GateOpen = false;
  std::atomic<unsigned> Entered{0};
  F.Host.Instrument = [&](ir::IRSB &) {
    Entered.fetch_add(1);
    std::unique_lock<std::mutex> L(GateMu);
    GateCV.wait(L, [&] { return GateOpen; });
  };

  F.XS.configure(/*Threads=*/1, /*QueueDepth=*/1);
  ASSERT_TRUE(F.XS.enqueuePromotion(A));
  // Wait until the worker holds A so the queue is empty again.
  while (Entered.load() == 0)
    std::this_thread::yield();
  ASSERT_TRUE(F.XS.enqueuePromotion(B)); // fills the depth-1 queue
  EXPECT_FALSE(F.XS.enqueuePromotion(C)); // backpressure
  EXPECT_FALSE(C->PromoPending);
  EXPECT_EQ(F.XS.jitStats().QueueFullFallbacks, 1u);
  EXPECT_EQ(F.XS.jitStats().QueueHighWater, 1u);

  {
    std::lock_guard<std::mutex> L(GateMu);
    GateOpen = true;
  }
  GateCV.notify_all();
  F.XS.waitIdle();
  EXPECT_EQ(F.XS.drainCompleted(), 2u);
  EXPECT_EQ(F.XS.jitStats().AsyncInstalled, 2u);

  // The fallback rung is accounted separately, by the caller.
  F.XS.noteSyncPromotion(0.001);
  EXPECT_EQ(F.XS.jitStats().SyncPromotions, 1u);
  F.expectRequestsSettled();
}

TEST(TranslationService, ShutdownAbandonsUndrainedJobs) {
  ServiceFixture F;
  F.XS.configure(1, 8);
  ASSERT_TRUE(
      F.XS.enqueuePromotion(F.XS.translateSync(F.Blocks[0], false)));
  ASSERT_TRUE(
      F.XS.enqueuePromotion(F.XS.translateSync(F.Blocks[1], false)));
  F.XS.waitIdle();
  F.XS.shutdown(); // nobody drained: both jobs are abandoned
  EXPECT_FALSE(F.XS.asyncEnabled());
  EXPECT_EQ(F.XS.jitStats().AsyncAbandoned, 2u);
  EXPECT_EQ(F.Host.Installs, 0u);
  F.expectRequestsSettled();

  // Idempotent, and enqueue after shutdown refuses cleanly.
  F.XS.shutdown();
  EXPECT_FALSE(F.XS.enqueuePromotion(F.XS.transTab().find(F.Blocks[0])
                                         ? F.XS.transTab().find(F.Blocks[0])
                                         : F.XS.translateSync(F.Blocks[2],
                                                              false)));
}

//===----------------------------------------------------------------------===//
// Trace (tier 2) jobs on the same queue
//===----------------------------------------------------------------------===//

/// Two superblocks that chain A -> B (A ends at a BCC whose fall-through
/// is B), so a TraceSpec{A, B} is a real stitchable path.
struct TraceFixture {
  GuestMemory Mem;
  StubHost Host;
  TranslationService XS;
  uint32_t A = 0, B = 0;
  TraceSpec Spec;

  TraceFixture() : XS(Host, Mem, 1u << 8) {
    Assembler Code(CodeBase);
    Label Done = Code.newLabel();
    A = Code.here();
    Code.cmpi(Reg::R1, 0);
    Code.beq(Done); // unlikely side exit; superblock A ends here
    B = Code.here();
    Code.addi(Reg::R0, Reg::R0, 1);
    Code.ret();
    Code.bind(Done);
    Code.ret();
    GuestImage Img = GuestImageBuilder().addCode(Code).entry(CodeBase).build();
    for (const ImageSegment &S : Img.Segments) {
      Mem.map(S.Base, static_cast<uint32_t>(S.Bytes.size()), S.Perms);
      Mem.write(S.Base, S.Bytes.data(), static_cast<uint32_t>(S.Bytes.size()),
                /*IgnorePerms=*/true);
    }
    Spec.Entries = {A, B};
  }
};

// A trace job rides the promotion queue: enqueueTrace publishes a tier-2
// translation over the head and the books balance the same way promotion
// jobs do (run with two workers so the tsan preset exercises it).
TEST(TranslationService, AsyncTraceJobInstallsOverHead) {
  TraceFixture F;
  F.XS.configure(/*Threads=*/2, /*QueueDepth=*/8);
  Translation *HeadT = F.XS.translateSync(F.A, /*Hot=*/true);
  F.XS.translateSync(F.B, /*Hot=*/true);

  ASSERT_TRUE(F.XS.enqueueTrace(HeadT, F.Spec));
  EXPECT_TRUE(HeadT->PromoPending);
  F.XS.waitIdle();
  EXPECT_EQ(F.XS.drainCompleted(), 1u);

  Translation *Tr = F.XS.transTab().find(F.A);
  ASSERT_NE(Tr, nullptr);
  EXPECT_EQ(Tr->Tier, 2u);
  EXPECT_EQ(Tr->TraceEntries, (std::vector<uint32_t>{F.A, F.B}));
  EXPECT_EQ(F.Host.LastInstalled, Tr);
  // The tail constituent stays resident for side exits.
  ASSERT_NE(F.XS.transTab().find(F.B), nullptr);
  EXPECT_EQ(F.XS.transTab().find(F.B)->Tier, 1u);

  const JitStats &J = F.XS.jitStats();
  EXPECT_EQ(J.TraceRequests, 1u);
  EXPECT_EQ(J.TraceInstalled, 1u);
  EXPECT_EQ(J.TraceAborts, 0u);
  EXPECT_EQ(J.AsyncInstalled, 1u);
  const JitStats &JS = F.XS.jitStats();
  EXPECT_EQ(JS.AsyncRequests, JS.AsyncInstalled + JS.AsyncDiscardedEpoch +
                                  JS.AsyncDiscardedStale + JS.WorkerFailures +
                                  JS.AsyncAbandoned);
}

// A TT flush between enqueue and drain discards an in-flight trace job
// exactly like a promotion job — no install, epoch discard accounted.
TEST(TranslationService, FlushDiscardsInFlightTraceJob) {
  TraceFixture F;
  F.XS.configure(1, 8);
  Translation *HeadT = F.XS.translateSync(F.A, /*Hot=*/true);
  F.XS.translateSync(F.B, /*Hot=*/true);
  ASSERT_TRUE(F.XS.enqueueTrace(HeadT, F.Spec));

  F.XS.transTab().invalidateAll();
  F.XS.waitIdle();
  EXPECT_EQ(F.XS.drainCompleted(), 0u);

  const JitStats &J = F.XS.jitStats();
  EXPECT_EQ(J.TraceRequests, 1u);
  EXPECT_EQ(J.TraceInstalled, 0u);
  EXPECT_EQ(J.AsyncDiscardedEpoch, 1u);
  EXPECT_EQ(F.XS.transTab().find(F.A), nullptr);
  EXPECT_EQ(J.AsyncRequests, J.AsyncInstalled + J.AsyncDiscardedEpoch +
                                 J.AsyncDiscardedStale + J.WorkerFailures +
                                 J.AsyncAbandoned);
}

// The synchronous path (--jit-threads=0): translateTrace installs
// immediately and never rides the async counters.
TEST(TranslationService, SyncTranslateTraceInstallsImmediately) {
  TraceFixture F;
  F.XS.translateSync(F.A, /*Hot=*/true);
  F.XS.translateSync(F.B, /*Hot=*/true);
  Translation *Tr = F.XS.translateTrace(F.Spec);
  ASSERT_NE(Tr, nullptr);
  EXPECT_EQ(Tr->Tier, 2u);
  EXPECT_EQ(F.XS.transTab().find(F.A), Tr);
  EXPECT_EQ(F.XS.jitStats().TraceRequests, 1u);
  EXPECT_EQ(F.XS.jitStats().TraceInstalled, 1u);
  EXPECT_EQ(F.XS.jitStats().AsyncRequests, 0u);
}

//===----------------------------------------------------------------------===//
// The concurrency hammer (run under ThreadSanitizer via the tsan preset)
//===----------------------------------------------------------------------===//

// Guest thread churns translate/enqueue/lookup/flush/drain while two
// workers translate concurrently. A small table forces eviction runs
// underneath pending promotions; periodic invalidations race the epoch
// check. TSan must see no data race, and the books must balance exactly.
TEST(TranslationService, ConcurrentEnqueueLookupFlushHammer) {
  ServiceFixture F(/*NBlocks=*/16, /*TTCap=*/1u << 4);
  F.XS.configure(/*Threads=*/2, /*QueueDepth=*/4);
  TransTab &TT = F.XS.transTab();

  for (unsigned I = 0; I != 600; ++I) {
    uint32_t PC = F.Blocks[I % F.Blocks.size()];
    Translation *T = TT.find(PC);
    if (!T)
      T = F.XS.translateSync(PC, false);
    if (T->Tier == 0 && !T->PromoPending)
      F.XS.enqueuePromotion(T); // full queue => refused, counted
    if (F.XS.hasCompleted())
      F.XS.drainCompleted();
    if (I % 17 == 0)
      TT.invalidateRange(F.Blocks[(I / 17) % F.Blocks.size()], 4);
    if (I % 97 == 0)
      TT.invalidateAll();
  }

  F.XS.waitIdle();
  F.XS.drainCompleted();
  F.XS.shutdown();

  const JitStats &J = F.XS.jitStats();
  EXPECT_GT(J.AsyncRequests, 0u);
  EXPECT_EQ(J.WorkerFailures, 0u);
  F.expectRequestsSettled();
  // Every install went through the host exactly once.
  EXPECT_EQ(F.Host.Installs, J.AsyncInstalled);
}

//===----------------------------------------------------------------------===//
// End-to-end determinism under a full Core
//===----------------------------------------------------------------------===//

constexpr uint32_t ProgCodeBase = 0x1000;
constexpr uint32_t ProgDataBase = 0x100000;

GuestImage loopProgram() {
  Assembler Code(ProgCodeBase);
  Assembler Data(ProgDataBase);
  GuestLibLabels Lib = emitGuestLib(Code, Data);
  Label Main = Code.newLabel();
  uint32_t Entry = emitStart(Code, Main);
  Code.bind(Main);
  Code.symbol("main");
  Label Str = Data.boundLabel();
  Data.emitString("done\n");
  // Nested loops: the inner body and the outer body both cross any small
  // hot threshold, producing several promotion requests.
  Code.movi(Reg::R1, 0);
  Label Outer = Code.boundLabel();
  Code.movi(Reg::R2, 0);
  Label Inner = Code.boundLabel();
  Code.addi(Reg::R2, Reg::R2, 1);
  Code.cmpi(Reg::R2, 50);
  Code.blt(Inner);
  Code.addi(Reg::R1, Reg::R1, 1);
  Code.cmpi(Reg::R1, 400);
  Code.blt(Outer);
  Code.movi(Reg::R1, Data.labelAddr(Str));
  Code.call(Lib.Print);
  Code.movi(Reg::R0, 5);
  Code.ret();
  return GuestImageBuilder()
      .addCode(Code)
      .addData(Data)
      .entry(Entry)
      .build();
}

std::string extractTrace(const std::string &Output) {
  size_t Begin = Output.find("=== event trace");
  if (Begin == std::string::npos)
    return "";
  const char *EndMark = "=== end event trace ===";
  size_t End = Output.find(EndMark, Begin);
  if (End == std::string::npos)
    return "";
  return Output.substr(Begin, End + std::string(EndMark).size() - Begin);
}

// --jit-threads=0 (the default) must stay byte-identical: same stdout,
// same recorded event trace, run after run, with and without the flag.
TEST(TranslationService, JitThreadsZeroIsDeterministic) {
  GuestImage Img = loopProgram();
  std::vector<std::string> Base = {"--chaining=yes", "--hot-threshold=3",
                                   "--trace-events=yes", "--trace-dump=yes"};
  std::vector<std::string> Explicit = Base;
  Explicit.push_back("--jit-threads=0");

  Nulgrind T1, T2, T3;
  RunReport A = runUnderCore(Img, &T1, Base);
  RunReport B = runUnderCore(Img, &T2, Base);
  RunReport C = runUnderCore(Img, &T3, Explicit);
  ASSERT_TRUE(A.Completed);
  ASSERT_TRUE(B.Completed);
  ASSERT_TRUE(C.Completed);
  EXPECT_EQ(A.ExitCode, 5);
  EXPECT_EQ(A.Stdout, "done\n");

  std::string TA = extractTrace(A.ToolOutput);
  ASSERT_FALSE(TA.empty());
  EXPECT_EQ(TA, extractTrace(B.ToolOutput)) << "replay must be identical";
  EXPECT_EQ(TA, extractTrace(C.ToolOutput))
      << "--jit-threads=0 must not change behaviour";
  EXPECT_EQ(A.Stdout, C.Stdout);

  // The sync path did all the promoting; the async books are empty.
  EXPECT_EQ(C.Jit.AsyncRequests, 0u);
  EXPECT_GT(C.Jit.SyncPromotions, 0u);
  EXPECT_GT(C.Jit.SyncPromoStallSeconds, 0.0);
}

// Background promotion may change *timing* (which tier runs when) but
// never guest-visible behaviour, and its books must balance after the
// end-of-run shutdown.
TEST(TranslationService, AsyncRunMatchesGuestVisibleBehaviour) {
  GuestImage Img = loopProgram();
  Nulgrind T1, T2, T3;
  RunReport Sync = runUnderCore(Img, &T1,
                                {"--chaining=yes", "--hot-threshold=2"});
  RunReport AsyncChained =
      runUnderCore(Img, &T2,
                   {"--chaining=yes", "--hot-threshold=2",
                    "--jit-threads=2"});
  RunReport AsyncPlain =
      runUnderCore(Img, &T3,
                   {"--chaining=no", "--hot-threshold=2",
                    "--jit-threads=2"});
  ASSERT_TRUE(Sync.Completed);
  ASSERT_TRUE(AsyncChained.Completed);
  ASSERT_TRUE(AsyncPlain.Completed);
  EXPECT_EQ(Sync.ExitCode, AsyncChained.ExitCode);
  EXPECT_EQ(Sync.Stdout, AsyncChained.Stdout);
  EXPECT_EQ(Sync.ExitCode, AsyncPlain.ExitCode);
  EXPECT_EQ(Sync.Stdout, AsyncPlain.Stdout);

  for (const RunReport *R : {&AsyncChained, &AsyncPlain}) {
    const JitStats &J = R->Jit;
    EXPECT_GT(J.AsyncRequests, 0u) << "hot blocks must enqueue";
    EXPECT_EQ(J.AsyncRequests, J.AsyncInstalled + J.AsyncDiscardedEpoch +
                                   J.AsyncDiscardedStale + J.WorkerFailures +
                                   J.AsyncAbandoned);
  }
}

//===----------------------------------------------------------------------===//
// The persistent cache on the service's paths (accounting audit)
//===----------------------------------------------------------------------===//

/// Scratch --tt-cache directory, removed on scope exit.
struct CacheDir {
  std::filesystem::path Path;
  CacheDir() {
    static int Counter = 0;
    Path = std::filesystem::temp_directory_path() /
           ("vgxs-cache-" + std::to_string(getpid()) + "-" +
            std::to_string(Counter++));
    std::filesystem::remove_all(Path);
  }
  ~CacheDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }
};

// A cache hit for a promotion must install without ever touching the async
// books: no request, no queue traffic, identity trivially intact.
TEST(TranslationService, PromoteFromCacheBypassesAsyncAccounting) {
  CacheDir Dir;
  {
    ServiceFixture A;
    A.Host.MarkCacheable = true;
    A.XS.attachCache(std::make_unique<TransCache>(Dir.str(), 0, /*CH=*/1));
    A.XS.translateSync(A.Blocks[0], /*Hot=*/true); // seeds the hot entry
    EXPECT_EQ(A.XS.jitStats().CacheWrites, 1u);
  }
  ServiceFixture B;
  B.Host.MarkCacheable = true;
  B.XS.attachCache(std::make_unique<TransCache>(Dir.str(), 0, /*CH=*/1));
  Translation *Cold = B.XS.translateSync(B.Blocks[0], false);
  ASSERT_NE(Cold, nullptr);
  B.XS.configure(1, 8);

  Translation *Hot = B.XS.promoteFromCache(B.Blocks[0]);
  ASSERT_NE(Hot, nullptr);
  EXPECT_NE(Hot, Cold); // replaced the resident tier-1 block
  EXPECT_EQ(Hot->Tier, 1u);
  EXPECT_EQ(B.XS.transTab().find(B.Blocks[0]), Hot);
  EXPECT_EQ(B.Host.Installs, 1u); // promotionInstalled bookkeeping ran
  EXPECT_EQ(B.XS.jitStats().CacheHits, 1u);
  const JitStats &J = B.XS.jitStats();
  EXPECT_EQ(J.AsyncRequests, 0u);
  EXPECT_EQ(J.SyncPromotions, 0u);
  B.expectRequestsSettled();

  // A PC with no hot entry on disk is a miss and stays on the normal
  // promotion path.
  Translation *T1 = B.XS.translateSync(B.Blocks[1], false);
  ASSERT_NE(T1, nullptr);
  EXPECT_EQ(B.XS.promoteFromCache(B.Blocks[1]), nullptr);
  EXPECT_EQ(B.XS.transTab().find(B.Blocks[1]), T1); // untouched
  B.expectRequestsSettled();
}

// The audit the issue asks for: with the cache attached, every async path
// — publication, backpressure refusal, inline fallback, drain write-back —
// must keep AsyncRequests == Installed + DiscardedEpoch + DiscardedStale +
// WorkerFailures + Abandoned, and every cache lookup must settle into
// exactly one of hit/miss/reject.
TEST(TranslationService, CacheOnAsyncAndFallbackPathsKeepsBooksBalanced) {
  CacheDir Dir;
  ServiceFixture F;
  F.Host.MarkCacheable = true;
  F.XS.attachCache(std::make_unique<TransCache>(Dir.str(), 0, /*CH=*/1));

  Translation *A = F.XS.translateSync(F.Blocks[0], false);
  Translation *B = F.XS.translateSync(F.Blocks[1], false);
  Translation *C = F.XS.translateSync(F.Blocks[2], false);
  EXPECT_EQ(F.XS.jitStats().CacheMisses, 3u);
  EXPECT_EQ(F.XS.jitStats().CacheWrites, 3u);

  std::mutex GateMu;
  std::condition_variable GateCV;
  bool GateOpen = false;
  std::atomic<unsigned> Entered{0};
  F.Host.Instrument = [&](ir::IRSB &) {
    Entered.fetch_add(1);
    std::unique_lock<std::mutex> L(GateMu);
    GateCV.wait(L, [&] { return GateOpen; });
  };

  F.XS.configure(/*Threads=*/1, /*QueueDepth=*/1);
  ASSERT_TRUE(F.XS.enqueuePromotion(A));
  while (Entered.load() == 0)
    std::this_thread::yield();
  ASSERT_TRUE(F.XS.enqueuePromotion(B));
  EXPECT_FALSE(F.XS.enqueuePromotion(C)); // backpressure
  EXPECT_EQ(F.XS.jitStats().QueueFullFallbacks, 1u);

  {
    std::lock_guard<std::mutex> L(GateMu);
    GateOpen = true;
  }
  GateCV.notify_all();
  F.XS.waitIdle();
  EXPECT_EQ(F.XS.drainCompleted(), 2u);

  // The refused promotion runs inline — through the cache-aware sync path
  // (the gate is open now, so the copied instrument hook sails through).
  Translation *CHot = F.XS.translateSync(F.Blocks[2], /*Hot=*/true);
  ASSERT_NE(CHot, nullptr);
  F.XS.noteSyncPromotion(0.001);
  F.XS.shutdown();

  const JitStats &J = F.XS.jitStats();
  // Async books: 2 requests, both installed (the refusal never became a
  // request).
  EXPECT_EQ(J.AsyncRequests, 2u);
  EXPECT_EQ(J.AsyncInstalled, 2u);
  F.expectRequestsSettled();
  // Cache books: 3 cold misses + 1 hot miss, every one written back, plus
  // a write-back per drained install; no lookup left unsettled.
  EXPECT_EQ(J.CacheMisses, 4u);
  EXPECT_EQ(J.CacheHits, 0u);
  EXPECT_EQ(J.CacheRejects, 0u);
  EXPECT_EQ(J.CacheWrites, 6u);
}

// The scheduler/signal workload with background workers on: threads,
// preemption, signal delivery, and async installs all interleave. This is
// the short soak the ThreadSanitizer preset runs (verify.sh tsan smoke).
TEST(TranslationService, SigmtSoakWithBackgroundWorkers) {
  GuestImage Img = buildWorkload("sigmt", 1);
  for (uint32_t Seed = 1; Seed <= 3; ++Seed) {
    Nulgrind T;
    RunReport R = runUnderCore(
        Img, &T,
        {"--chaining=yes", "--hot-threshold=2", "--jit-threads=2",
         "--fault-inject=preempt:20,sigstorm:30,seed=" +
             std::to_string(Seed)});
    ASSERT_TRUE(R.Completed) << "seed " << Seed;
    EXPECT_EQ(R.ExitCode, 0) << "seed " << Seed;
    const JitStats &J = R.Jit;
    EXPECT_EQ(J.AsyncRequests, J.AsyncInstalled + J.AsyncDiscardedEpoch +
                                   J.AsyncDiscardedStale + J.WorkerFailures +
                                   J.AsyncAbandoned)
        << "seed " << Seed;
  }
}

} // namespace
