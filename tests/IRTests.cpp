//===-- tests/IRTests.cpp - IR, optimiser, and printer tests --------------==//
///
/// \file
/// Unit tests for the IR layer: construction/typechecking, evalOp
/// semantics, flattening, the Phase 2/4 optimisation passes, the cc-thunk
/// spec hook, and tree building.
///
//===----------------------------------------------------------------------===//

#include "frontend/Vg1Frontend.h"
#include "guest/Assembler.h"
#include "ir/IR.h"
#include "ir/IROpt.h"
#include "ir/IRPrinter.h"

#include <gtest/gtest.h>

using namespace vg;
using namespace vg::ir;

namespace {

constexpr uint32_t Base = 0x1000;

/// Builds a fetch function over an assembled image.
FetchFn fetchOf(const std::vector<uint8_t> &Img) {
  return [&Img](uint32_t Addr, uint8_t *Buf, uint32_t MaxLen) -> uint32_t {
    if (Addr < Base || Addr >= Base + Img.size())
      return 0;
    uint32_t Avail = static_cast<uint32_t>(Base + Img.size() - Addr);
    uint32_t N = std::min(MaxLen, Avail);
    std::memcpy(Buf, Img.data() + (Addr - Base), N);
    return N;
  };
}

int countKind(const IRSB &SB, StmtKind K) {
  int N = 0;
  for (const Stmt *S : SB.stmts())
    if (S->Kind == K)
      ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Core IR structure
//===----------------------------------------------------------------------===//

TEST(IR, BuildAndTypecheckFlatBlock) {
  IRSB SB;
  SB.imark(0x1000, 6);
  TmpId T0 = SB.wrTmp(SB.get(0, Ty::I32));
  TmpId T1 = SB.wrTmp(SB.binop(Op::Add32, SB.rdTmp(T0), SB.constI32(4)));
  SB.put(0, SB.rdTmp(T1));
  SB.setNext(SB.constI32(0x1006), JumpKind::Boring);
  EXPECT_EQ(SB.typecheck(true), "");
}

TEST(IR, TypecheckRejectsNonFlat) {
  IRSB SB;
  // Put of a nested tree is fine in tree IR but not flat IR.
  SB.put(0, SB.binop(Op::Add32, SB.get(4, Ty::I32), SB.constI32(1)));
  SB.setNext(SB.constI32(0), JumpKind::Boring);
  EXPECT_EQ(SB.typecheck(false), "");
  EXPECT_NE(SB.typecheck(true), "");
}

TEST(IR, TypecheckCatchesTypeErrors) {
  IRSB SB;
  // Add32 applied to an I8 constant.
  TmpId T = SB.newTmp(Ty::I32);
  Stmt *S = SB.allocStmt();
  S->Kind = StmtKind::WrTmp;
  S->Tmp = T;
  Expr *Bad = SB.binop(Op::Add32, SB.constI32(1), SB.constI32(2));
  Bad->Arg[1] = SB.constI8(3); // corrupt one operand
  S->Data = Bad;
  SB.append(S);
  SB.setNext(SB.constI32(0), JumpKind::Boring);
  EXPECT_NE(SB.typecheck(false), "");
}

TEST(IR, OpMetadataConsistency) {
  // Every op's evaluator result fits its declared result type.
  for (unsigned O = 0; O <= static_cast<unsigned>(Op::CmpGT8Sx4); ++O) {
    Op TheOp = static_cast<Op>(O);
    uint64_t V = evalOp(TheOp, 0x123456789ABCDEFull, 0x3);
    EXPECT_EQ(V, truncToTy(V, opResultTy(TheOp))) << opName(TheOp);
  }
}

TEST(IR, EvalOpSpotChecks) {
  EXPECT_EQ(evalOp(Op::Add32, 0xFFFFFFFFu, 1), 0u);
  EXPECT_EQ(evalOp(Op::Sub8, 0, 1), 0xFFu);
  EXPECT_EQ(evalOp(Op::Sar32, 0x80000000u, 31), 0xFFFFFFFFu);
  EXPECT_EQ(evalOp(Op::MullU32, 0xFFFFFFFFu, 2), 0x1FFFFFFFEull);
  EXPECT_EQ(evalOp(Op::MullS32, static_cast<uint32_t>(-3), 7),
            static_cast<uint64_t>(-21));
  EXPECT_EQ(evalOp(Op::CmpLT32S, 0x80000000u, 1), 1u);
  EXPECT_EQ(evalOp(Op::CmpLT32U, 0x80000000u, 1), 0u);
  EXPECT_EQ(evalOp(Op::S8to32, 0x80, 0), 0xFFFFFF80u);
  EXPECT_EQ(evalOp(Op::T64HIto32, 0xAABBCCDD11223344ull, 0), 0xAABBCCDDu);
  EXPECT_EQ(evalOp(Op::Concat32HLto64, 0xAABBCCDDu, 0x11223344u),
            0xAABBCCDD11223344ull);
  // F64: 1.5 + 2.5 == 4.0 through bit-pattern plumbing.
  double A = 1.5, B = 2.5, R;
  uint64_t BA, BB;
  std::memcpy(&BA, &A, 8);
  std::memcpy(&BB, &B, 8);
  uint64_t BR = evalOp(Op::AddF64, BA, BB);
  std::memcpy(&R, &BR, 8);
  EXPECT_DOUBLE_EQ(R, 4.0);
}

//===----------------------------------------------------------------------===//
// Flattening
//===----------------------------------------------------------------------===//

TEST(IROpt, FlattenProducesFlatIR) {
  IRSB SB;
  SB.imark(0x1000, 7);
  // Deep tree: the Figure 1 address computation.
  Expr *Addr = SB.binop(
      Op::Add32,
      SB.binop(Op::Add32, SB.get(12, Ty::I32),
               SB.binop(Op::Shl32, SB.get(0, Ty::I32), SB.constI8(2))),
      SB.constI32(0xFFFFC0CC));
  SB.put(0, SB.load(Ty::I32, Addr));
  SB.setNext(SB.constI32(0x1007), JumpKind::Boring);

  ASSERT_EQ(SB.typecheck(false), "");
  auto Flat = flatten(SB);
  EXPECT_EQ(Flat->typecheck(true), "");
  // The tree must have become >= 5 statements: 2 GETs, shift, 2 adds, load,
  // feeding a Put.
  EXPECT_GE(Flat->stmts().size(), 6u);
}

TEST(IROpt, FlattenPreservesStatementOrder) {
  IRSB SB;
  SB.imark(0x1000, 4);
  SB.store(SB.constI32(0x8000), SB.constI32(1));
  SB.store(SB.constI32(0x8004), SB.constI32(2));
  SB.setNext(SB.constI32(0x1004), JumpKind::Boring);
  auto Flat = flatten(SB);
  std::vector<const Stmt *> Stores;
  for (const Stmt *S : Flat->stmts())
    if (S->Kind == StmtKind::Store)
      Stores.push_back(S);
  ASSERT_EQ(Stores.size(), 2u);
  EXPECT_EQ(Stores[0]->Data->ConstVal, 1u);
  EXPECT_EQ(Stores[1]->Data->ConstVal, 2u);
}

//===----------------------------------------------------------------------===//
// Optimisation passes
//===----------------------------------------------------------------------===//

TEST(IROpt, ConstantFolding) {
  IRSB SB;
  TmpId T0 = SB.wrTmp(SB.binop(Op::Add32, SB.constI32(40), SB.constI32(2)));
  SB.put(0, SB.rdTmp(T0));
  SB.setNext(SB.constI32(0), JumpKind::Boring);
  optimise1(SB, nullptr);
  ASSERT_EQ(SB.stmts().size(), 1u);
  const Stmt *S = SB.stmts()[0];
  ASSERT_EQ(S->Kind, StmtKind::Put);
  ASSERT_TRUE(S->Data->isConst());
  EXPECT_EQ(S->Data->ConstVal, 42u);
}

TEST(IROpt, RedundantGetElimination) {
  IRSB SB;
  // Two GETs of the same register: the second must reuse the first.
  TmpId T0 = SB.wrTmp(SB.get(0, Ty::I32));
  TmpId T1 = SB.wrTmp(SB.get(0, Ty::I32));
  TmpId T2 = SB.wrTmp(SB.binop(Op::Add32, SB.rdTmp(T0), SB.rdTmp(T1)));
  SB.put(4, SB.rdTmp(T2));
  SB.setNext(SB.constI32(0), JumpKind::Boring);
  optimise1(SB, nullptr);
  int Gets = 0;
  for (const Stmt *S : SB.stmts())
    if (S->Kind == StmtKind::WrTmp && S->Data->Kind == ExprKind::Get)
      ++Gets;
  EXPECT_EQ(Gets, 1);
}

TEST(IROpt, GetAfterPutForwardsValue) {
  IRSB SB;
  TmpId TV = SB.wrTmp(SB.binop(Op::Add32, SB.get(8, Ty::I32), SB.constI32(0)));
  SB.put(0, SB.rdTmp(TV));
  TmpId TG = SB.wrTmp(SB.get(0, Ty::I32)); // must forward TV
  SB.store(SB.constI32(0x8000), SB.rdTmp(TG));
  SB.setNext(SB.constI32(0), JumpKind::Boring);
  auto Flat = flatten(SB);
  optimise1(*Flat, nullptr);
  // After optimisation there must be no Get of offset 0.
  for (const Stmt *S : Flat->stmts()) {
    if (S->Kind == StmtKind::WrTmp && S->Data->Kind == ExprKind::Get) {
      EXPECT_NE(S->Data->Offset, 0u);
    }
  }
}

TEST(IROpt, RedundantPutElimination) {
  IRSB SB;
  SB.put(64, SB.constI32(0x1000)); // overwritten below, no observation
  SB.put(64, SB.constI32(0x1006));
  SB.setNext(SB.constI32(0), JumpKind::Boring);
  optimise1(SB, nullptr);
  ASSERT_EQ(countKind(SB, StmtKind::Put), 1);
  EXPECT_EQ(SB.stmts()[0]->Data->ConstVal, 0x1006u);
}

TEST(IROpt, PutNotEliminatedAcrossExit) {
  IRSB SB;
  SB.put(64, SB.constI32(0x1000));
  TmpId G = SB.wrTmp(SB.binop(Op::CmpEQ32, SB.get(0, Ty::I32), SB.constI32(0)));
  SB.exit(SB.rdTmp(G), 0x2000, JumpKind::Boring);
  SB.put(64, SB.constI32(0x1006));
  SB.setNext(SB.constI32(0), JumpKind::Boring);
  auto Flat = flatten(SB);
  optimise1(*Flat, nullptr);
  // Both PUTs survive: the first is observable if the exit is taken.
  EXPECT_EQ(countKind(*Flat, StmtKind::Put), 2);
}

TEST(IROpt, PutNotEliminatedWhenDirtyReads) {
  static const Callee DummyHelper = {"dummy", nullptr, 0};
  IRSB SB;
  SB.put(64, SB.constI32(0x1000));
  SB.dirty(&DummyHelper, {}, NoTmp, nullptr, {{64, 4, /*IsWrite=*/false}});
  SB.put(64, SB.constI32(0x1006));
  SB.setNext(SB.constI32(0), JumpKind::Boring);
  optimise1(SB, nullptr);
  EXPECT_EQ(countKind(SB, StmtKind::Put), 2);
}

TEST(IROpt, DeadCodeRemoval) {
  IRSB SB;
  TmpId T0 = SB.wrTmp(SB.get(0, Ty::I32));
  SB.wrTmp(SB.binop(Op::Add32, SB.rdTmp(T0), SB.constI32(1))); // dead
  SB.put(4, SB.rdTmp(T0));
  SB.setNext(SB.constI32(0), JumpKind::Boring);
  optimise1(SB, nullptr);
  EXPECT_EQ(countKind(SB, StmtKind::WrTmp), 1);
}

TEST(IROpt, CSEMergesPureComputation) {
  IRSB SB;
  TmpId T0 = SB.wrTmp(SB.get(0, Ty::I32));
  TmpId A = SB.wrTmp(SB.binop(Op::Mul32, SB.rdTmp(T0), SB.constI32(3)));
  TmpId B = SB.wrTmp(SB.binop(Op::Mul32, SB.rdTmp(T0), SB.constI32(3)));
  TmpId C = SB.wrTmp(SB.binop(Op::Add32, SB.rdTmp(A), SB.rdTmp(B)));
  SB.put(4, SB.rdTmp(C));
  SB.setNext(SB.constI32(0), JumpKind::Boring);
  optimise1(SB, nullptr);
  int Muls = 0;
  for (const Stmt *S : SB.stmts())
    if (S->Kind == StmtKind::WrTmp && S->Data->Kind == ExprKind::Binop &&
        S->Data->Opc == Op::Mul32)
      ++Muls;
  EXPECT_EQ(Muls, 1);
}

TEST(IROpt, StaticallyFalseExitRemoved) {
  IRSB SB;
  SB.exit(SB.constI1(false), 0x2000, JumpKind::Boring);
  SB.put(0, SB.constI32(7));
  SB.setNext(SB.constI32(0), JumpKind::Boring);
  optimise1(SB, nullptr);
  EXPECT_EQ(countKind(SB, StmtKind::Exit), 0);
}

//===----------------------------------------------------------------------===//
// The cc-thunk spec hook
//===----------------------------------------------------------------------===//

TEST(IROpt, SpecFnTurnsCondHelperIntoComparison) {
  // Build the IR a CMP+BNE pair produces, then check the helper call is
  // specialised away.
  IRSB SB;
  using vg1::CCOp;
  SB.put(vg1::gso::CC_OP, SB.constI32(static_cast<uint32_t>(CCOp::Sub)));
  TmpId D1 = SB.wrTmp(SB.get(0, Ty::I32));
  TmpId D2 = SB.wrTmp(SB.get(4, Ty::I32));
  SB.put(vg1::gso::CC_DEP1, SB.rdTmp(D1));
  SB.put(vg1::gso::CC_DEP2, SB.rdTmp(D2));
  TmpId C = SB.wrTmp(SB.ccall(
      calcCondCallee(), Ty::I32,
      {SB.constI32(static_cast<uint32_t>(vg1::Cond::NE)),
       SB.get(vg1::gso::CC_OP, Ty::I32), SB.get(vg1::gso::CC_DEP1, Ty::I32),
       SB.get(vg1::gso::CC_DEP2, Ty::I32)}));
  TmpId G = SB.wrTmp(SB.unop(Op::CmpNEZ32, SB.rdTmp(C)));
  SB.exit(SB.rdTmp(G), 0x2000, JumpKind::Boring);
  SB.setNext(SB.constI32(0x1010), JumpKind::Boring);

  auto Flat = flatten(SB);
  optimise1(*Flat, vg1SpecFn());
  EXPECT_EQ(Flat->typecheck(true), "");
  for (const Stmt *S : Flat->stmts()) {
    if (S->Kind == StmtKind::WrTmp) {
      EXPECT_NE(S->Data->Kind, ExprKind::CCall)
          << "helper call survived specialisation";
    }
  }
}

TEST(IROpt, SpecFnAgreesWithHelperOnAllConds) {
  // Property: for every cond and CC op, the specialised expression (forced
  // through constant folding) equals the helper's result.
  const uint32_t Vals[] = {0, 1, 0x7FFFFFFFu, 0x80000000u, 0xFFFFFFFFu, 57};
  SpecFn Spec = vg1SpecFn();
  for (unsigned CondI = 0; CondI != vg1::NumConds; ++CondI) {
    for (uint32_t OpI : {1u, 2u, 3u}) { // Add, Sub, Logic
      for (uint32_t A : Vals) {
        for (uint32_t B : Vals) {
          IRSB SB;
          std::vector<Expr *> Args = {SB.constI32(CondI), SB.constI32(OpI),
                                      SB.constI32(A), SB.constI32(B)};
          Expr *R = Spec(SB, calcCondCallee(), Args);
          if (!R)
            continue; // spec declined: helper call stays, also correct
          // Force-fold by wrapping in a block and optimising.
          TmpId T = SB.wrTmp(R);
          SB.put(0, SB.rdTmp(T));
          SB.setNext(SB.constI32(0), JumpKind::Boring);
          auto Flat = flatten(SB);
          optimise1(*Flat, nullptr);
          ASSERT_EQ(Flat->stmts().size(), 1u);
          const Stmt *S = Flat->stmts()[0];
          ASSERT_TRUE(S->Data->isConst());
          EXPECT_EQ(S->Data->ConstVal != 0,
                    vg1::calcCond(CondI, OpI, A, B) != 0)
              << "cond=" << CondI << " op=" << OpI << " A=" << A << " B=" << B;
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Tree building
//===----------------------------------------------------------------------===//

TEST(IROpt, TreeBuildSubstitutesSingleUses) {
  IRSB SB;
  TmpId T0 = SB.wrTmp(SB.get(0, Ty::I32));
  TmpId T1 = SB.wrTmp(SB.binop(Op::Add32, SB.rdTmp(T0), SB.constI32(1)));
  TmpId T2 = SB.wrTmp(SB.binop(Op::Mul32, SB.rdTmp(T1), SB.constI32(3)));
  SB.put(4, SB.rdTmp(T2));
  SB.setNext(SB.constI32(0), JumpKind::Boring);
  buildTrees(SB);
  // Everything collapses into the Put's expression tree.
  ASSERT_EQ(SB.stmts().size(), 1u);
  EXPECT_EQ(SB.stmts()[0]->Kind, StmtKind::Put);
  EXPECT_EQ(SB.typecheck(false), "");
}

TEST(IROpt, TreeBuildKeepsMultiUseTmps) {
  IRSB SB;
  TmpId T0 = SB.wrTmp(SB.get(0, Ty::I32));
  TmpId T1 = SB.wrTmp(SB.binop(Op::Add32, SB.rdTmp(T0), SB.rdTmp(T0)));
  SB.put(4, SB.rdTmp(T1));
  SB.setNext(SB.constI32(0), JumpKind::Boring);
  buildTrees(SB);
  // T0 is used twice: its def must survive.
  EXPECT_EQ(countKind(SB, StmtKind::WrTmp), 1);
}

TEST(IROpt, TreeBuildNeverMovesLoadPastStore) {
  IRSB SB;
  TmpId TL = SB.wrTmp(SB.load(Ty::I32, SB.constI32(0x8000)));
  SB.store(SB.constI32(0x8000), SB.constI32(99)); // overwrites the slot
  SB.put(0, SB.rdTmp(TL)); // must see the OLD value
  SB.setNext(SB.constI32(0), JumpKind::Boring);
  buildTrees(SB);
  // The load's WrTmp must still be ahead of the store.
  ASSERT_GE(SB.stmts().size(), 3u);
  EXPECT_EQ(SB.stmts()[0]->Kind, StmtKind::WrTmp);
  EXPECT_EQ(SB.stmts()[0]->Data->Kind, ExprKind::Load);
  EXPECT_EQ(SB.stmts()[1]->Kind, StmtKind::Store);
}

TEST(IROpt, TreeBuildRespectsPutGetConflicts) {
  IRSB SB;
  TmpId TG = SB.wrTmp(SB.get(0, Ty::I32));
  SB.put(0, SB.constI32(123));
  SB.store(SB.constI32(0x8000), SB.rdTmp(TG)); // must be the OLD reg value
  SB.setNext(SB.constI32(0), JumpKind::Boring);
  buildTrees(SB);
  EXPECT_EQ(SB.stmts()[0]->Kind, StmtKind::WrTmp);
  EXPECT_EQ(SB.stmts()[0]->Data->Kind, ExprKind::Get);
}

//===----------------------------------------------------------------------===//
// Frontend output shape (Figure 1)
//===----------------------------------------------------------------------===//

TEST(Frontend, Figure1ShapedBlock) {
  // The paper's example: a scaled-index load, an add, an indirect jump.
  vg1::Assembler A(0x24F275);
  A.ldx(vg1::Reg::R0, vg1::Reg::R3, vg1::Reg::R0, 2, -16180);
  A.add(vg1::Reg::R0, vg1::Reg::R0, vg1::Reg::R3);
  A.jmpr(vg1::Reg::R0);
  std::vector<uint8_t> Img = A.finalize();
  FetchFn Fetch = [&](uint32_t Addr, uint8_t *Buf, uint32_t MaxLen) -> uint32_t {
    if (Addr < 0x24F275 || Addr >= 0x24F275 + Img.size())
      return 0;
    uint32_t Avail = static_cast<uint32_t>(0x24F275 + Img.size() - Addr);
    uint32_t N = std::min(MaxLen, Avail);
    std::memcpy(Buf, Img.data() + (Addr - 0x24F275), N);
    return N;
  };

  DisasmResult R = disassembleSB(0x24F275, Fetch);
  ASSERT_TRUE(R.SB);
  EXPECT_EQ(R.NumInsns, 3u);
  EXPECT_EQ(R.SB->typecheck(false), "");
  std::string Text = toString(*R.SB, vg1OffsetName);
  // Figure 1's key features: IMarks with lengths, the Shl32 address tree,
  // cc-thunk puts, and the final indirect goto.
  EXPECT_NE(Text.find("IMark(0x24f275, 7)"), std::string::npos) << Text;
  EXPECT_NE(Text.find("Shl32"), std::string::npos);
  EXPECT_NE(Text.find("LDle:I32"), std::string::npos);
  EXPECT_NE(Text.find("# put %cc_dep1"), std::string::npos);
  EXPECT_NE(Text.find("goto {Boring}"), std::string::npos);
}

TEST(Frontend, SuperblockStopsAtConditionalBranch) {
  vg1::Assembler A(Base);
  vg1::Label L = A.newLabel();
  A.movi(vg1::Reg::R1, 1);
  A.cmpi(vg1::Reg::R1, 0);
  A.beq(L);
  A.movi(vg1::Reg::R2, 2); // separate block
  A.bind(L);
  A.hlt();
  std::vector<uint8_t> Img = A.finalize();
  DisasmResult R = disassembleSB(Base, fetchOf(Img));
  EXPECT_EQ(R.NumInsns, 3u);
  EXPECT_EQ(countKind(*R.SB, StmtKind::Exit), 1);
}

TEST(Frontend, ChasesUnconditionalJumps) {
  vg1::Assembler A(Base);
  vg1::Label L1 = A.newLabel(), L2 = A.newLabel();
  A.movi(vg1::Reg::R1, 1);
  A.jmp(L1);
  A.bind(L2);
  A.movi(vg1::Reg::R3, 3);
  A.hlt();
  A.bind(L1);
  A.movi(vg1::Reg::R2, 2);
  A.jmp(L2);
  std::vector<uint8_t> Img = A.finalize();
  DisasmResult R = disassembleSB(Base, fetchOf(Img));
  // All 6 instructions (including the chased jmps) land in one superblock
  // via 2 chases, covering 3 disjoint guest ranges.
  EXPECT_EQ(R.NumInsns, 6u);
  EXPECT_EQ(R.Extents.size(), 3u);
}

TEST(Frontend, ChaseLimitRespected) {
  vg1::Assembler A(Base);
  // A long chain of jumps: j1 -> j2 -> ... -> j10 -> hlt
  std::vector<vg1::Label> Ls;
  for (int I = 0; I != 10; ++I)
    Ls.push_back(A.newLabel());
  A.jmp(Ls[0]);
  for (int I = 0; I != 10; ++I) {
    A.bind(Ls[I]);
    if (I + 1 < 10)
      A.jmp(Ls[I + 1]);
  }
  A.hlt();
  std::vector<uint8_t> Img = A.finalize();
  FrontendConfig Cfg;
  Cfg.MaxChases = 3;
  DisasmResult R = disassembleSB(Base, fetchOf(Img), Cfg);
  EXPECT_EQ(R.NumInsns, 4u); // initial jmp + 3 chased jmps
}

TEST(Frontend, InstructionLimitEndsBlock) {
  vg1::Assembler A(Base);
  for (int I = 0; I != 80; ++I)
    A.addi(vg1::Reg::R1, vg1::Reg::R1, 1);
  A.hlt();
  std::vector<uint8_t> Img = A.finalize();
  DisasmResult R = disassembleSB(Base, fetchOf(Img));
  EXPECT_EQ(R.NumInsns, 50u);
  EXPECT_EQ(R.SB->endJumpKind(), JumpKind::Boring);
}

TEST(Frontend, UndecodableEndsWithNoDecode) {
  std::vector<uint8_t> Img = {0xFF, 0xFF};
  DisasmResult R = disassembleSB(Base, fetchOf(Img));
  EXPECT_TRUE(R.DecodeFailed);
  EXPECT_EQ(R.SB->endJumpKind(), JumpKind::NoDecode);
}

TEST(Frontend, CpuInfoBecomesAnnotatedDirtyCall) {
  vg1::Assembler A(Base);
  A.cpuinfo();
  A.hlt();
  std::vector<uint8_t> Img = A.finalize();
  DisasmResult R = disassembleSB(Base, fetchOf(Img));
  const Stmt *Dirty = nullptr;
  for (const Stmt *S : R.SB->stmts())
    if (S->Kind == StmtKind::Dirty)
      Dirty = S;
  ASSERT_NE(Dirty, nullptr);
  ASSERT_EQ(Dirty->Fx.size(), 2u);
  EXPECT_TRUE(Dirty->Fx[0].IsWrite);
  EXPECT_EQ(Dirty->Fx[0].Offset, vg1::gso::gpr(0));
}

TEST(Frontend, OptimisationShrinksFigure1Block) {
  // Paper: 17 tree statements -> fewer after flattening+optimisation, with
  // the intermediate %pc put and redundant gets removed.
  vg1::Assembler A(0x24F275);
  A.ldx(vg1::Reg::R0, vg1::Reg::R3, vg1::Reg::R0, 2, -16180);
  A.add(vg1::Reg::R0, vg1::Reg::R0, vg1::Reg::R3);
  A.jmpr(vg1::Reg::R0);
  std::vector<uint8_t> Img = A.finalize();
  FetchFn Fetch = [&](uint32_t Addr, uint8_t *Buf, uint32_t MaxLen) -> uint32_t {
    if (Addr < 0x24F275 || Addr >= 0x24F275 + Img.size())
      return 0;
    uint32_t N = std::min<uint32_t>(
        MaxLen, static_cast<uint32_t>(0x24F275 + Img.size() - Addr));
    std::memcpy(Buf, Img.data() + (Addr - 0x24F275), N);
    return N;
  };
  DisasmResult R = disassembleSB(0x24F275, Fetch);
  auto Flat = flatten(*R.SB);
  optimise1(*Flat, vg1SpecFn());
  // Only one Get of r3 must remain (shared by the address tree and the
  // add), and only one Get of r0.
  int GetsOfR3 = 0, GetsOfR0 = 0, PutsOfPC = 0;
  uint64_t LastPCPut = 0;
  for (const Stmt *S : Flat->stmts()) {
    if (S->Kind == StmtKind::WrTmp && S->Data->Kind == ExprKind::Get) {
      if (S->Data->Offset == vg1::gso::gpr(3))
        ++GetsOfR3;
      if (S->Data->Offset == vg1::gso::gpr(0))
        ++GetsOfR0;
    }
    if (S->Kind == StmtKind::Put && S->Offset == vg1::gso::PC) {
      ++PutsOfPC;
      LastPCPut = S->Data->ConstVal;
    }
  }
  EXPECT_EQ(GetsOfR3, 1);
  EXPECT_EQ(GetsOfR0, 1);
  // The paper's statement-5 removal: the intermediate %pc write at the
  // second instruction is dead (overwritten by the final one with no
  // intervening observation), so exactly one PC put survives.
  EXPECT_EQ(PutsOfPC, 1);
  EXPECT_EQ(LastPCPut, 0x24F27Fu);
}

} // namespace
