//===-- kernel/SimKernel.h - The simulated kernel ---------------*- C++ -*-==//
///
/// \file
/// The substrate standing in for the Linux kernel: ~20 system calls over an
/// in-memory virtual filesystem, guest memory (brk/mmap/munmap/mremap), a
/// virtual clock, and hooks into the core for threads and signals.
///
/// Every system call has a *wrapper* that knows exactly which registers and
/// memory ranges the call reads and writes, and fires the corresponding
/// Table 1 events (pre_reg_read, pre_mem_read{,_asciiz}, pre_mem_write,
/// post_mem_write, post_reg_write, new_mem_mmap, die_mem_munmap,
/// new_mem_brk, die_mem_brk, copy_mem_mremap) — the reproduction of
/// Valgrind's 15k lines of syscall wrappers (Section 3.12), scaled to this
/// kernel's surface.
///
/// The kernel serves both execution engines: under the DBI core (events
/// live, threads/signals via KernelHost) and under the reference
/// interpreter (null events/host — "native" runs).
///
//===----------------------------------------------------------------------===//
#ifndef VG_KERNEL_SIMKERNEL_H
#define VG_KERNEL_SIMKERNEL_H

#include "core/Events.h"
#include "guest/RefInterp.h"
#include "kernel/AddressSpace.h"
#include "support/FaultInject.h"

#include <map>
#include <string>
#include <vector>

namespace vg {

/// Syscall numbers (the guest ABI: number in r0, args in r1..r5, result to
/// r0; errors return 0xFFFFFFFF).
enum Syscalls : uint32_t {
  SysExit = 1,
  SysWrite = 2,
  SysRead = 3,
  SysOpen = 4,
  SysClose = 5,
  SysBrk = 6,
  SysMmap = 7,
  SysMunmap = 8,
  SysMremap = 9,
  SysGettimeofday = 10,
  SysSettimeofday = 11,
  SysGetpid = 12,
  SysKill = 13,
  SysSigaction = 14,
  SysSigreturn = 15,
  SysClone = 16,
  SysExitThread = 17,
  SysYield = 18,
  SysNanosleep = 19,
  SysTime = 20,
  SysFsize = 21,
  SysMprotect = 22,
};

constexpr uint32_t SysErr = 0xFFFFFFFFu;

/// Services only the DBI core can provide (threads, signals, scheduling).
/// Null for "native" runs: the affected syscalls then fail cleanly.
class KernelHost {
public:
  virtual ~KernelHost() = default;
  virtual int spawnThread(uint32_t Entry, uint32_t SP, uint32_t Arg) = 0;
  virtual void exitThread(int Tid, int Code) = 0;
  virtual void setSignalHandler(int Sig, uint32_t Handler) = 0;
  virtual uint32_t signalHandler(int Sig) const = 0;
  virtual bool raiseSignal(int Tid, int Sig) = 0;
  virtual void sigreturn(int Tid) = 0;
  virtual void requestYield(int Tid) = 0;
};

/// The simulated kernel.
class SimKernel : public vg1::SyscallSink {
public:
  SimKernel(AddressSpace &AS, EventHub *Events = nullptr,
            KernelHost *Host = nullptr)
      : AS(AS), Events(Events), Host(Host) {
    Fds.resize(3); // 0 stdin, 1 stdout, 2 stderr
    Fds[0] = OpenFd{FdKind::Stdin, "", 0, true};
    Fds[1] = OpenFd{FdKind::Stdout, "", 0, true};
    Fds[2] = OpenFd{FdKind::Stderr, "", 0, true};
  }

  /// Handles one SYS instruction. Returns Exit for SysExit.
  Action onSyscall(CpuView &Cpu) override;

  /// Installs (or clears) the --fault-inject plan. The kernel consults it
  /// at its decision points: fallible-syscall entry (error return without
  /// running the wrapper), read/write lengths (short transfers),
  /// brk/mmap/mremap (exhaustion), and nanosleep/yield (spurious wakeups).
  void setFaultPlan(FaultPlan *P) { Faults = P; }

  // --- host-visible state (tests, harnesses) -----------------------------
  std::string stdoutText() const { return StdoutBuf; }
  std::string stderrText() const { return StderrBuf; }
  void provideStdin(const std::string &S) {
    StdinBuf.assign(S.begin(), S.end());
  }
  void addFile(const std::string &Name, std::vector<uint8_t> Data) {
    Files[Name] = std::move(Data);
  }
  const std::vector<uint8_t> *file(const std::string &Name) const {
    auto It = Files.find(Name);
    return It == Files.end() ? nullptr : &It->second;
  }
  int exitCode() const { return TheExitCode; }
  uint64_t virtualTimeUsec() const { return ClockUsec; }
  uint64_t syscallCount() const { return NumSyscalls; }

private:
  enum class FdKind { Closed, Stdin, Stdout, Stderr, File };
  struct OpenFd {
    FdKind Kind = FdKind::Closed;
    std::string Name;
    uint32_t Pos = 0;
    bool Open = false;
    bool Writable = false;
  };

  // Individual syscall implementations (the "wrappers").
  uint32_t doWrite(CpuView &Cpu);
  uint32_t doRead(CpuView &Cpu);
  uint32_t doOpen(CpuView &Cpu);
  uint32_t doClose(CpuView &Cpu);
  uint32_t doBrk(CpuView &Cpu);
  uint32_t doMmap(CpuView &Cpu);
  uint32_t doMunmap(CpuView &Cpu);
  uint32_t doMremap(CpuView &Cpu);
  uint32_t doMprotect(CpuView &Cpu);
  uint32_t doGettimeofday(CpuView &Cpu);
  uint32_t doSettimeofday(CpuView &Cpu);
  uint32_t doKill(CpuView &Cpu);
  uint32_t doSigaction(CpuView &Cpu);
  uint32_t doClone(CpuView &Cpu);
  uint32_t doFsize(CpuView &Cpu);

  // Event-firing helpers (no-ops when Events is null).
  void preRegRead(int Tid, unsigned Reg, const char *Name);
  void postRegWrite(int Tid, unsigned Reg);
  void preMemRead(int Tid, uint32_t Addr, uint32_t Len, const char *Name);
  void preMemReadAsciiz(int Tid, uint32_t Addr, const char *Name);
  void preMemWrite(int Tid, uint32_t Addr, uint32_t Len, const char *Name);
  void postMemWrite(int Tid, uint32_t Addr, uint32_t Len);
  void faultInjected(int Tid, FaultKind K, uint32_t Arg);

  std::string readGuestString(CpuView &Cpu, uint32_t Addr);

  AddressSpace &AS;
  EventHub *Events;
  KernelHost *Host;
  FaultPlan *Faults = nullptr;

  std::map<std::string, std::vector<uint8_t>> Files;
  std::vector<OpenFd> Fds;
  std::vector<uint8_t> StdinBuf;
  uint32_t StdinPos = 0;
  std::string StdoutBuf, StderrBuf;

  uint64_t ClockUsec = 1'200'000'000ull * 1'000'000; // an arbitrary epoch
  int TheExitCode = 0;
  uint64_t NumSyscalls = 0;
  int NextPid = 1000;
};

} // namespace vg

#endif // VG_KERNEL_SIMKERNEL_H
