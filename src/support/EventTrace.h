//===-- support/EventTrace.h - Scheduler/signal/event tracing ---*- C++ -*-==//
///
/// \file
/// The --trace-events ring buffer: a fixed-capacity record of everything
/// interesting the core and simulated kernel do — every Table-1 event,
/// syscall entry/exit, signal queue/deliver/sigreturn, thread switches,
/// and injected faults — timestamped with the global dispatched-block
/// counter (never wall-clock time, so a seeded run serialises to a
/// byte-identical dump on replay). When the buffer fills, the oldest
/// records are overwritten and counted as dropped; the per-category
/// counters keep the full totals either way. The serialized dump is
/// bracketed by stable markers so a soak harness can extract and diff it.
///
//===----------------------------------------------------------------------===//
#ifndef VG_SUPPORT_EVENTTRACE_H
#define VG_SUPPORT_EVENTTRACE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace vg {

class OutputSink;

/// Everything the tracer can record. The first block mirrors EventHub
/// (Table 1 plus the extension events); the rest are scheduler/signal
/// transitions the hub has no callback for.
enum class TraceEvent : uint8_t {
  // Table-1 / EventHub events.
  PreRegRead,
  PostRegWrite,
  PreMemRead,
  PreMemReadAsciiz,
  PreMemWrite,
  PostMemWrite,
  NewMemStartup,
  NewMemMmap,
  DieMemMunmap,
  NewMemBrk,
  DieMemBrk,
  CopyMemMremap,
  NewMemStack,
  DieMemStack,
  PostFileRead,
  // Syscall boundary.
  SyscallEnter, ///< A = syscall number
  SyscallExit,  ///< A = syscall number, B = result
  // Signal machinery.
  SigQueue,   ///< A = signal, B = target tid
  SigDrop,    ///< A = signal, B = target tid, C = reason (SigDropReason)
  SigDeliver, ///< A = signal, B = handler PC
  SigReturn,  ///< A = restored PC
  SigFatal,   ///< A = signal
  // Scheduler.
  ThreadSwitch, ///< A = from tid, B = to tid
  ThreadExit,   ///< A = exit code
  // Fault injection.
  FaultInjected, ///< A = FaultKind, B = site-specific argument
  NumEvents
};

constexpr unsigned NumTraceEvents = static_cast<unsigned>(TraceEvent::NumEvents);

/// Stable short name used in the dump ("sig-deliver", "syscall-enter", ...).
const char *traceEventName(TraceEvent E);

/// Why a SigDrop happened (the C argument of that record).
enum SigDropReason : uint32_t {
  SigDropBadTarget = 0,  ///< no such thread / thread not runnable
  SigDropCoalesced = 1,  ///< identical signal already pending
  SigDropThreadExit = 2, ///< target thread exited with it still queued
};

/// The fixed-capacity event recorder. All state is deterministic: the
/// timestamp source is an external uint64 counter (the core's dispatched
/// block count) read at record() time.
class EventTracer {
public:
  explicit EventTracer(size_t Capacity);

  /// Points the tracer at the block counter used for timestamps. Records
  /// made before this is called carry timestamp 0.
  void setClock(const uint64_t *Counter) { Clock = Counter; }

  /// Sharded-scheduler mode: timestamps come from the core's global atomic
  /// block clock (the per-shard plain counters would race), and record()
  /// serialises internally so shards can trace concurrently. Timestamps
  /// are then only approximately ordered — MT traces are diagnostic, the
  /// byte-identical replay property belongs to --sched-threads=1.
  void setAtomicClock(const std::atomic<uint64_t> *Counter) {
    AtomicClock = Counter;
    ThreadSafe = true;
  }

  void record(int Tid, TraceEvent E, uint32_t A = 0, uint32_t B = 0,
              uint32_t C = 0);

  // --- counters ----------------------------------------------------------
  uint64_t recorded() const { return Recorded; }
  uint64_t dropped() const {
    return Recorded > Ring.size() ? Recorded - Ring.size() : 0;
  }
  uint64_t count(TraceEvent E) const {
    return Counts[static_cast<unsigned>(E)];
  }
  size_t capacity() const { return Ring.size(); }

  /// Renders the retained records (oldest first) between stable markers:
  ///   === event trace (records=R dropped=D) ===
  ///   ...
  ///   === end event trace ===
  std::string serialize() const;

  /// serialize() into \p Out.
  void dump(OutputSink &Out) const;

private:
  struct Record {
    uint64_t Block;
    int32_t Tid;
    TraceEvent E;
    uint32_t A, B, C;
  };

  const uint64_t *Clock = nullptr;
  const std::atomic<uint64_t> *AtomicClock = nullptr;
  bool ThreadSafe = false;
  std::mutex Mu; ///< guards Ring/Recorded/Counts when ThreadSafe
  std::vector<Record> Ring;
  uint64_t Recorded = 0; ///< total record() calls; ring keeps the tail
  uint64_t Counts[NumTraceEvents] = {};
};

} // namespace vg

#endif // VG_SUPPORT_EVENTTRACE_H
