//===-- core/ClientRequests.h - The client-request trap door ----*- C++ -*-==//
///
/// \file
/// Client requests (Section 3.11): a guest program executes CLREQ with a
/// request code in r0 and arguments in r1..r4; the result is returned in
/// r0. Codes below 0x10000 are handled by the core; higher codes go to the
/// running tool. Running natively (no Valgrind), CLREQ returns 0 — exactly
/// the behaviour of the real macros outside Valgrind.
///
//===----------------------------------------------------------------------===//
#ifndef VG_CORE_CLIENTREQUESTS_H
#define VG_CORE_CLIENTREQUESTS_H

#include <cstdint>

namespace vg {

enum ClientRequest : uint32_t {
  /// Discard cached translations of [arg1, arg1+arg2) — for dynamic code
  /// generators (Section 3.16).
  CrDiscardTranslations = 0x1001,
  /// Register a stack [arg1=start(low), arg2=end(high)); returns an id.
  /// (Section 3.12: help for stack-switch detection in tricky cases.)
  CrStackRegister = 0x1002,
  /// Deregister stack arg1.
  CrStackDeregister = 0x1003,
  /// Change stack arg1 to [arg2, arg3).
  CrStackChange = 0x1004,
  /// Print the NUL-terminated string at arg1 on the tool output channel.
  CrPrint = 0x1005,
  /// True (1) when running under the core — lets guest code detect it.
  CrRunningOnValgrind = 0x1006,

  // --- replacement-allocator requests (issued by guestlib malloc etc.,
  //     the moral equivalent of Valgrind's vgpreload stubs; R8) ----------
  CrMalloc = 0x2001,  ///< arg1=size        -> payload address (0 on OOM)
  CrFree = 0x2002,    ///< arg1=addr
  CrCalloc = 0x2003,  ///< arg1=n, arg2=sz  -> zeroed payload
  CrRealloc = 0x2004, ///< arg1=addr, arg2=newsize -> payload

  /// First code owned by tools.
  CrToolBase = 0x10000,
};

} // namespace vg

#endif // VG_CORE_CLIENTREQUESTS_H
