//===-- tests/ShadowTests.cpp - ShadowMap fast-path tests -----------------==//
///
/// \file
/// Exercises the word-access fast paths of the two-level shadow map: the
/// aligned whole-word loadV/storeV route, the one-entry last-secondary
/// cache (including its invalidation on range operations), copy-on-write
/// materialisation from both distinguished secondaries, reclamation of
/// owned chunks back to the free list, the non-faulting JIT probes, and a
/// randomized equivalence check of the word path against a byte-by-byte
/// reference.
///
//===----------------------------------------------------------------------===//

#include "shadow/ShadowMemory.h"

#include <gtest/gtest.h>

#include <random>

using namespace vg;

namespace {

constexpr uint32_t CS = ShadowMap::ChunkSize;

/// Byte-loop reference for loadV, built on the public byte accessors.
uint64_t refLoadV(const ShadowMap &SM, uint32_t Addr, uint32_t Size,
                  AddrCheck &Check) {
  uint64_t V = 0;
  for (uint32_t I = 0; I != Size; ++I) {
    uint32_t A = Addr + I;
    uint8_t VB;
    if (!SM.abit(A)) {
      if (Check.Ok) {
        Check.Ok = false;
        Check.FirstBad = A;
      }
      VB = 0xFF;
    } else {
      VB = SM.vbyte(A);
    }
    V |= static_cast<uint64_t>(VB) << (8 * I);
  }
  return V;
}

/// Byte-loop reference for storeV (writes V only where addressable).
void refStoreV(ShadowMap &SM, uint32_t Addr, uint32_t Size, uint64_t Vbits) {
  for (uint32_t I = 0; I != Size; ++I) {
    uint32_t A = Addr + I;
    if (SM.abit(A))
      SM.setByte(A, true, static_cast<uint8_t>(Vbits >> (8 * I)));
  }
}

//===----------------------------------------------------------------------===//
// Word path vs chunk boundaries
//===----------------------------------------------------------------------===//

TEST(ShadowFast, AccessStraddlingChunkBoundaryRoundTrips) {
  ShadowMap SM;
  // [CS-16, CS+16): undefined and addressable on both sides of the seam.
  SM.makeUndefined(CS - 16, 32);
  AddrCheck C;
  // 8-byte store at CS-4 is 4-aligned but not 8-aligned: byte path, and it
  // must land half in each chunk.
  SM.storeV(CS - 4, 8, 0x1122334455667788ull, C);
  EXPECT_TRUE(C.Ok);
  EXPECT_EQ(SM.vbyte(CS - 1), 0x55);
  EXPECT_EQ(SM.vbyte(CS), 0x44);
  AddrCheck C2;
  EXPECT_EQ(SM.loadV(CS - 4, 8, C2), 0x1122334455667788ull);
  // Aligned accesses entirely on either side take the word path and see
  // the same bytes.
  AddrCheck C3;
  EXPECT_EQ(SM.loadV(CS - 4, 4, C3), 0x55667788ull);
  AddrCheck C4;
  EXPECT_EQ(SM.loadV(CS, 4, C4), 0x11223344ull);
}

TEST(ShadowFast, WordLoadOnPartiallyAddressableWordPunts) {
  ShadowMap SM;
  SM.makeDefined(0x4000, 64);
  SM.makeNoAccess(0x4006, 1);
  AddrCheck C;
  uint64_t V = SM.loadV(0x4004, 4, C);
  EXPECT_FALSE(C.Ok);
  EXPECT_EQ(C.FirstBad, 0x4006u);
  EXPECT_EQ((V >> 16) & 0xFF, 0xFFull); // the hole reads undefined
}

//===----------------------------------------------------------------------===//
// Copy-on-write materialisation and reclamation
//===----------------------------------------------------------------------===//

TEST(ShadowFast, CoWFromDefinedDsmPreservesSurroundings) {
  ShadowMap SM;
  uint32_t Base = 5 * CS;
  SM.makeDefined(Base, CS); // whole chunk: stays distinguished
  EXPECT_EQ(SM.chunksMaterialised(), 0u);
  SM.setByte(Base + 100, true, 0xAB); // first write materialises
  EXPECT_EQ(SM.chunksMaterialised(), 1u);
  EXPECT_EQ(SM.vbyte(Base + 100), 0xAB);
  // The rest of the chunk still carries the Defined DSM's contents.
  EXPECT_EQ(SM.vbyte(Base + 99), 0x00);
  EXPECT_TRUE(SM.abit(Base + 99));
  uint32_t Bad;
  EXPECT_TRUE(SM.isAddressable(Base, CS, Bad));
}

TEST(ShadowFast, CoWFromNoAccessDsmPreservesSurroundings) {
  ShadowMap SM;
  uint32_t Base = 9 * CS;
  SM.makeUndefined(Base + 8, 8); // partial write into a NoAccess chunk
  EXPECT_EQ(SM.chunksMaterialised(), 1u);
  EXPECT_TRUE(SM.abit(Base + 8));
  EXPECT_EQ(SM.vbyte(Base + 8), 0xFF);
  // Around the carve-out the chunk is still unaddressable.
  EXPECT_FALSE(SM.abit(Base + 7));
  EXPECT_FALSE(SM.abit(Base + 16));
}

TEST(ShadowFast, WholeChunkOpsReclaimOwnedSecondaries) {
  ShadowMap SM;
  uint32_t Base = 3 * CS;
  SM.makeUndefined(Base + 4, 4); // materialise
  EXPECT_EQ(SM.chunksLive(), 1u);
  EXPECT_EQ(SM.chunksHighWater(), 1u);

  // Whole-chunk makeNoAccess releases the secondary back to the DSM.
  SM.makeNoAccess(Base, CS);
  EXPECT_EQ(SM.chunksLive(), 0u);
  EXPECT_EQ(SM.chunksReclaimed(), 1u);
  uint32_t Bad;
  EXPECT_FALSE(SM.isAddressable(Base + 4, 4, Bad));

  // The next materialise anywhere reuses the freed slot.
  SM.makeUndefined(7 * CS + 4, 4);
  EXPECT_EQ(SM.chunksMaterialised(), 2u);
  EXPECT_EQ(SM.chunksLive(), 1u);
  EXPECT_EQ(SM.chunksHighWater(), 1u); // never two live at once

  // Whole-chunk makeDefined reclaims too.
  SM.makeDefined(7 * CS, CS);
  EXPECT_EQ(SM.chunksLive(), 0u);
  EXPECT_EQ(SM.chunksReclaimed(), 2u);
  bool Unaddr;
  EXPECT_TRUE(SM.isDefined(7 * CS, CS, Bad, Unaddr));
}

//===----------------------------------------------------------------------===//
// Last-secondary cache
//===----------------------------------------------------------------------===//

TEST(ShadowFast, SecondaryCacheCountsHitsWithinAChunk) {
  ShadowMap SM;
  SM.makeDefined(0x8000, 256);
  SM.resetStats();
  AddrCheck C;
  for (uint32_t I = 0; I != 64; ++I)
    SM.loadV(0x8000 + 4 * I, 4, C);
  const ShadowStats &St = SM.stats();
  EXPECT_GE(St.SecCacheHits, 63u);
  EXPECT_LE(St.SecCacheMisses, 1u);
}

TEST(ShadowFast, CacheInvalidatedByWholeChunkRangeOps) {
  ShadowMap SM;
  uint32_t Base = 11 * CS;
  SM.makeUndefined(Base, 64);
  AddrCheck C;
  SM.storeV(Base, 4, 0, C);
  EXPECT_EQ(SM.loadV(Base, 4, C), 0ull); // cache now holds this chunk

  // Swap the whole chunk to NoAccess: the cached secondary must not be
  // consulted again.
  SM.makeNoAccess(Base, CS);
  AddrCheck C2;
  SM.loadV(Base, 4, C2);
  EXPECT_FALSE(C2.Ok);
  EXPECT_FALSE(SM.abit(Base));

  // And to Defined: reads must see the Defined DSM, stores must CoW, not
  // scribble on a stale (freed) secondary.
  SM.makeDefined(Base, CS);
  AddrCheck C3;
  EXPECT_EQ(SM.loadV(Base, 4, C3), 0ull);
  EXPECT_TRUE(C3.Ok);
  uint64_t Before = SM.chunksMaterialised();
  AddrCheck C4;
  SM.storeV(Base, 4, 0xFFFFFFFFull, C4);
  EXPECT_EQ(SM.chunksMaterialised(), Before + 1);
  EXPECT_EQ(SM.vbyte(Base), 0xFF);
}

TEST(ShadowFast, ReclaimThenImmediateProbeNeverSeesStaleSecondary) {
  // The stale-cache window: the last-secondary cache resolves an owned
  // secondary, whole-chunk reclamation releases that secondary, and the
  // very next probe of the same chunk address must re-resolve through the
  // primary — a stale pointer would read freed memory (or, with slot
  // reuse, another chunk's shadow). The epoch-validated per-thread cache
  // makes the reload unconditional; probe every cached entry point.
  ShadowMap SM;
  uint32_t Base = 21 * CS;
  SM.makeUndefined(Base, 64);
  AddrCheck C;
  SM.storeV(Base, 4, 0, C);
  ASSERT_EQ(SM.probeLoadW32(Base), 0ull); // cache holds the owned secondary
  ASSERT_EQ(SM.chunksLive(), 1u);

  SM.makeNoAccess(Base, CS); // reclaims the cached secondary
  ASSERT_EQ(SM.chunksLive(), 0u);
  EXPECT_EQ(SM.probeLoadW32(Base), ShadowMap::ProbeSlow);
  EXPECT_EQ(SM.probeStoreW32(Base, 0), 1ull);
  EXPECT_FALSE(SM.abit(Base));
  AddrCheck C2;
  EXPECT_EQ(SM.loadV(Base, 4, C2) & 0xFFFFFFFFull, 0xFFFFFFFFull);
  EXPECT_FALSE(C2.Ok);

  // Same window under deferred reclamation (the sharded scheduler's
  // mode): the reclaimed secondary is parked, not freed, and the probe
  // still re-resolves to the DSM.
  ShadowMap SD;
  SD.setDeferredReclaim(true);
  SD.makeUndefined(Base, 64);
  AddrCheck C3;
  SD.storeV(Base, 4, 0, C3);
  ASSERT_EQ(SD.probeLoadW32(Base), 0ull);
  SD.makeDefined(Base, CS); // whole-chunk swap to the Defined DSM
  EXPECT_EQ(SD.chunksLive(), 0u);
  EXPECT_EQ(SD.chunksReclaimed(), 1u);
  EXPECT_EQ(SD.probeLoadW32(Base), 0ull); // Defined DSM, not the old copy
  AddrCheck C4;
  SD.storeV(Base, 4, 0xFFFFFFFFull, C4); // must CoW afresh
  EXPECT_EQ(SD.chunksMaterialised(), 2u);
  EXPECT_EQ(SD.vbyte(Base), 0xFF);
}

//===----------------------------------------------------------------------===//
// JIT probes
//===----------------------------------------------------------------------===//

TEST(ShadowFast, ProbeLoadSucceedsOnlyOnAlignedDefinedWords) {
  ShadowMap SM;
  SM.makeDefined(0x6000, 64);
  SM.makeUndefined(0x6020, 4);
  SM.resetStats();

  EXPECT_EQ(SM.probeLoadW32(0x6000), 0ull);              // defined word
  EXPECT_EQ(SM.probeLoadW32(0x6002), ShadowMap::ProbeSlow); // unaligned
  EXPECT_EQ(SM.probeLoadW32(0x6020), ShadowMap::ProbeSlow); // undefined
  EXPECT_EQ(SM.probeLoadW32(0x9000), ShadowMap::ProbeSlow); // unaddressable

  const ShadowStats &St = SM.stats();
  EXPECT_EQ(St.FastLoads, 1u);
  EXPECT_EQ(St.SlowLoads, 3u);
}

TEST(ShadowFast, ProbeLoadPuntsOnPartiallyDefinedWord) {
  ShadowMap SM;
  SM.makeDefined(0x6000, 8);
  SM.setByte(0x6001, true, 0xFF); // one undefined byte inside the word
  EXPECT_EQ(SM.probeLoadW32(0x6000), ShadowMap::ProbeSlow);
}

TEST(ShadowFast, ProbeStoreWritesInlineOnOwnedChunks) {
  ShadowMap SM;
  SM.makeUndefined(0x7000, 16); // owned chunk
  EXPECT_EQ(SM.probeStoreW32(0x7000, 0), 0ull);
  EXPECT_EQ(SM.vbyte(0x7000), 0x00); // V-word landed
  EXPECT_EQ(SM.vbyte(0x7003), 0x00);
  EXPECT_EQ(SM.probeStoreW32(0x7004, 0x00FF0000u), 0ull);
  EXPECT_EQ(SM.vbyte(0x7006), 0xFF); // partial definedness stored exactly
  EXPECT_EQ(SM.probeStoreW32(0x7002, 0), 1ull); // unaligned: punt
}

TEST(ShadowFast, ProbeStoreOnDefinedDsmAvoidsMaterialisation) {
  ShadowMap SM;
  uint32_t Base = 13 * CS;
  SM.makeDefined(Base, CS); // distinguished, not owned
  EXPECT_EQ(SM.chunksMaterialised(), 0u);

  // Storing an all-defined word into the Defined DSM is a no-op: no CoW.
  EXPECT_EQ(SM.probeStoreW32(Base + 8, 0), 0ull);
  EXPECT_EQ(SM.chunksMaterialised(), 0u);

  // Storing undefined bits must NOT be absorbed: the probe punts and the
  // map is untouched (the helper handles the store).
  EXPECT_EQ(SM.probeStoreW32(Base + 8, 0xFFFFFFFFu), 1ull);
  EXPECT_EQ(SM.chunksMaterialised(), 0u);
  EXPECT_EQ(SM.vbyte(Base + 8), 0x00);

  // NoAccess chunks always punt.
  EXPECT_EQ(SM.probeStoreW32(17 * CS, 0), 1ull);
}

//===----------------------------------------------------------------------===//
// copyRange
//===----------------------------------------------------------------------===//

TEST(ShadowFast, CopyRangeAcrossChunksWithMismatchedBitPhase) {
  ShadowMap SM;
  uint32_t Src = CS - 32; // spans the chunk seam
  SM.makeUndefined(Src, 64);
  AddrCheck C;
  for (uint32_t I = 0; I != 64; I += 4)
    SM.storeV(Src + I, 4, 0x01010101ull * (I / 4), C);
  SM.makeNoAccess(Src + 10, 3); // an A-hole to carry along
  // Dst offset differs from Src modulo 8: exercises the per-bit A copy.
  uint32_t Dst = 21 * CS + 13;
  SM.makeDefined(Dst - 8, 96);
  SM.copyRange(Src, Dst, 64);
  for (uint32_t I = 0; I != 64; ++I) {
    EXPECT_EQ(SM.abit(Dst + I), SM.abit(Src + I)) << I;
    if (SM.abit(Src + I)) {
      EXPECT_EQ(SM.vbyte(Dst + I), SM.vbyte(Src + I)) << I;
    }
  }
  // Bytes just outside the destination window are untouched.
  EXPECT_EQ(SM.vbyte(Dst - 1), 0x00);
  EXPECT_TRUE(SM.abit(Dst + 64));
}

TEST(ShadowFast, CopyRangeOverlapBehavesLikeMemmove) {
  ShadowMap SM;
  SM.makeUndefined(0x3000, 32);
  AddrCheck C;
  SM.storeV(0x3000, 8, 0x0807060504030201ull, C);
  SM.copyRange(0x3000, 0x3003, 8); // forward overlap
  for (uint32_t I = 0; I != 8; ++I)
    EXPECT_EQ(SM.vbyte(0x3003 + I), I + 1) << I;
  // Backward overlap.
  ShadowMap SM2;
  SM2.makeUndefined(0x3000, 32);
  SM2.storeV(0x3008, 8, 0x0807060504030201ull, C);
  SM2.copyRange(0x3008, 0x3005, 8);
  for (uint32_t I = 0; I != 8; ++I)
    EXPECT_EQ(SM2.vbyte(0x3005 + I), I + 1) << I;
}

//===----------------------------------------------------------------------===//
// Randomized equivalence: word path vs byte loop
//===----------------------------------------------------------------------===//

TEST(ShadowFast, RandomizedLoadsMatchByteLoopReference) {
  ShadowMap SM;
  std::mt19937 Rng(0xC0FFEE);
  uint32_t Base = 15 * CS - 0x100; // window straddles a chunk seam
  uint32_t Window = 0x200;
  for (uint32_t I = 0; I != Window; ++I) {
    bool Addressable = (Rng() % 10) != 0; // ~10% holes
    SM.setByte(Base + I, Addressable, static_cast<uint8_t>(Rng()));
  }
  const uint32_t Sizes[4] = {1, 2, 4, 8};
  for (int T = 0; T != 4000; ++T) {
    uint32_t Size = Sizes[Rng() % 4];
    uint32_t Addr = Base + Rng() % (Window - Size);
    if (T & 1)
      Addr &= ~(Size - 1); // half the trials aligned (fast path)
    AddrCheck CFast, CRef;
    uint64_t VFast = SM.loadV(Addr, Size, CFast);
    uint64_t VRef = refLoadV(SM, Addr, Size, CRef);
    ASSERT_EQ(VFast, VRef) << "addr=" << Addr << " size=" << Size;
    ASSERT_EQ(CFast.Ok, CRef.Ok) << "addr=" << Addr << " size=" << Size;
    if (!CRef.Ok) {
      ASSERT_EQ(CFast.FirstBad, CRef.FirstBad);
    }
  }
}

TEST(ShadowFast, RandomizedStoresMatchByteLoopReference) {
  ShadowMap SM, Ref;
  std::mt19937 Rng(0xBEEF);
  uint32_t Base = 25 * CS - 0x80;
  uint32_t Window = 0x100;
  for (uint32_t I = 0; I != Window; ++I) {
    bool Addressable = (Rng() % 8) != 0;
    uint8_t V = static_cast<uint8_t>(Rng());
    SM.setByte(Base + I, Addressable, V);
    Ref.setByte(Base + I, Addressable, V);
  }
  const uint32_t Sizes[4] = {1, 2, 4, 8};
  for (int T = 0; T != 4000; ++T) {
    uint32_t Size = Sizes[Rng() % 4];
    uint32_t Addr = Base + Rng() % (Window - Size);
    if (T & 1)
      Addr &= ~(Size - 1);
    uint64_t Vbits = (static_cast<uint64_t>(Rng()) << 32) | Rng();
    AddrCheck C;
    SM.storeV(Addr, Size, Vbits, C);
    refStoreV(Ref, Addr, Size, Vbits);
  }
  for (uint32_t I = 0; I != Window; ++I) {
    ASSERT_EQ(SM.abit(Base + I), Ref.abit(Base + I)) << I;
    if (Ref.abit(Base + I)) {
      ASSERT_EQ(SM.vbyte(Base + I), Ref.vbyte(Base + I)) << I;
    }
  }
}

} // namespace
