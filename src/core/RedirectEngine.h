//===-- core/RedirectEngine.h - Replacement and wrapping --------*- C++ -*-==//
///
/// \file
/// Function redirection, replacement, and wrapping (Section 3.13),
/// extracted from the Core monolith. The engine owns the redirection
/// tables the dispatch engines consult at every dispatcher entry:
///
///   guest->guest   calls to From run To instead (redirectGuest)
///   guest->host    the function at Addr is replaced by host code
///                  (redirectToHost / redirectSymbolToHost)
///   wrapping       pre/post hooks around the original guest function,
///                  layered on a host redirect that calls back into the
///                  guest (wrap / wrapSymbol)
///
/// Wrapping protocol: the wrapper's host redirect runs the Pre hook, then
/// re-enters the wrapped guest function via Core::callGuest with a
/// one-shot redirect bypass (so the dispatcher does not loop back into the
/// wrapper), then runs the Post hook with the original's result, which it
/// may rewrite. Host redirects are world-lock property under the sharded
/// scheduler, so the one-shot bypass needs no further synchronisation.
///
/// Registering any redirect invalidates existing translations of the
/// target byte: a predecessor chained straight into the old code would
/// bypass the dispatcher's redirect check.
///
//===----------------------------------------------------------------------===//
#ifndef VG_CORE_REDIRECTENGINE_H
#define VG_CORE_REDIRECTENGINE_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace vg {

class Core;
class ThreadState;

/// A host-side function replacement: runs instead of a guest function.
/// Reads its arguments from the thread's registers (r1..), writes its
/// result to r0. Entered via the guest CALL convention; the core performs
/// the return.
using HostReplacementFn = std::function<void(Core &C, ThreadState &TS)>;

/// Wrapping hooks (Section 3.13 "function wrapping"). Pre runs before the
/// wrapped function with the thread state at call entry (arguments in
/// r1..r5); Post runs after it and may rewrite the result the caller sees.
struct WrapHooks {
  std::function<void(Core &C, ThreadState &TS)> Pre;
  std::function<void(Core &C, ThreadState &TS, uint32_t &Result)> Post;
};

class RedirectEngine {
public:
  explicit RedirectEngine(Core &C) : C(C) {}

  // --- registration ------------------------------------------------------
  void redirectToHost(uint32_t Addr, HostReplacementFn Fn);
  void redirectSymbolToHost(const std::string &Symbol, HostReplacementFn Fn);
  void redirectGuest(uint32_t From, uint32_t To);
  /// Wraps the guest function at \p Addr with pre/post hooks; the original
  /// still runs (via call-into-guest) between them.
  void wrap(uint32_t Addr, WrapHooks Hooks);
  /// Like wrap, resolved against the image symbol table (before or after
  /// loadImage).
  void wrapSymbol(const std::string &Symbol, WrapHooks Hooks);

  /// loadImage hands the image's symbol table over; pending symbol
  /// redirects/wraps resolve here and later registrations resolve
  /// immediately.
  void setImageSymbols(const std::map<std::string, uint32_t> &Symbols);
  /// Resolved address of \p Symbol (0 if unknown).
  uint32_t symbolAddr(const std::string &Symbol) const;

  // --- dispatcher queries (every dispatcher entry; keep inline) ----------
  /// Guest->guest redirect target for \p PC, or null.
  const uint32_t *guestTarget(uint32_t PC) const {
    auto It = GuestRedirects.find(PC);
    return It == GuestRedirects.end() ? nullptr : &It->second;
  }
  /// Host replacement registered at \p PC, or null. Consumes the one-shot
  /// wrapping bypass: the first dispatch of the bypass address after a
  /// wrapper armed it sees no replacement (that is how the wrapper's
  /// call-into-guest reaches the original instead of itself).
  const HostReplacementFn *hostReplacement(uint32_t PC) {
    if (PC == BypassOnce) {
      BypassOnce = NoBypass;
      return nullptr;
    }
    auto It = HostRedirects.find(PC);
    return It == HostRedirects.end() ? nullptr : &It->second;
  }

private:
  static constexpr uint32_t NoBypass = 0xFFFFFFFFu;

  Core &C;
  std::map<uint32_t, HostReplacementFn> HostRedirects;
  std::map<std::string, HostReplacementFn> PendingSymbolRedirects;
  std::map<std::string, WrapHooks> PendingSymbolWraps;
  std::map<uint32_t, uint32_t> GuestRedirects;
  std::map<std::string, uint32_t> ImageSymbols;
  /// One-shot wrapping bypass address (world-lock property in MT; see
  /// hostReplacement above).
  uint32_t BypassOnce = NoBypass;
};

} // namespace vg

#endif // VG_CORE_REDIRECTENGINE_H
