//===-- tests/WorkloadTests.cpp - Workload validation ---------------------==//
///
/// \file
/// The Table 2 harness only means something if every synthetic workload
/// (a) terminates, (b) produces the same checksum natively and under the
/// core, and (c) is Memcheck-clean. These parameterised suites enforce all
/// three for all fourteen workloads.
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "tools/Memcheck.h"
#include "tools/Nulgrind.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace vg;

namespace {

class WorkloadSuite : public ::testing::TestWithParam<int> {
protected:
  std::string name() const { return allWorkloads()[GetParam()].Name; }
};

TEST_P(WorkloadSuite, NativeAndNulgrindAgree) {
  GuestImage Img = buildWorkload(name(), 1);
  RunReport N = runNative(Img);
  ASSERT_TRUE(N.Completed) << name() << " did not complete natively";
  ASSERT_FALSE(N.Stdout.empty()) << name() << " printed no checksum";
  Nulgrind T;
  RunReport C = runUnderCore(Img, &T);
  ASSERT_TRUE(C.Completed) << name() << " did not complete under the core";
  EXPECT_EQ(N.Stdout, C.Stdout) << name() << " checksum differs";
  EXPECT_EQ(N.ExitCode, C.ExitCode);
  EXPECT_GT(N.NativeInsns, 100'000u) << name() << " is suspiciously small";
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadSuite,
                         ::testing::Range(0, 14),
                         [](const ::testing::TestParamInfo<int> &I) {
                           return allWorkloads()[I.param].Name;
                         });

// Memcheck cleanliness on a representative subset (full sweeps live in the
// bench harness; these keep the unit-test cycle fast).
class WorkloadMemcheck : public ::testing::TestWithParam<const char *> {};

TEST_P(WorkloadMemcheck, IsMemcheckClean) {
  GuestImage Img = buildWorkload(GetParam(), 1);
  RunReport N = runNative(Img);
  Memcheck T;
  RunReport C = runUnderCore(Img, &T);
  ASSERT_TRUE(C.Completed);
  EXPECT_EQ(N.Stdout, C.Stdout) << "checksum differs under Memcheck";
  EXPECT_NE(C.ToolOutput.find("ERROR SUMMARY: 0 errors"), std::string::npos)
      << GetParam() << " output:\n"
      << C.ToolOutput;
}

INSTANTIATE_TEST_SUITE_P(Subset, WorkloadMemcheck,
                         ::testing::Values("mcf", "vortex", "equake"));

} // namespace
