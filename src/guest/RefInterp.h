//===-- guest/RefInterp.h - Reference VG1 interpreter -----------*- C++ -*-==//
///
/// \file
/// The reference interpreter: a direct, uninstrumented executor of VG1
/// machine code. It plays two roles in the reproduction:
///
///  1. "Native" execution for the Table 2 slow-down measurements — the
///     fastest way this repo can run guest code, standing in for direct
///     hardware execution.
///  2. A differential-testing oracle: tests run the same programs here and
///     under the DBI core and require identical architectural results.
///
/// It deliberately shares the decoder and flag semantics (guest/GuestArch.h)
/// with the D&R front end so the two engines cannot diverge on encodings.
///
//===----------------------------------------------------------------------===//
#ifndef VG_GUEST_REFINTERP_H
#define VG_GUEST_REFINTERP_H

#include "guest/CpuView.h"
#include "guest/GuestArch.h"
#include "guest/GuestMemory.h"

#include <algorithm>
#include <vector>

namespace vg {
namespace vg1 {

/// Receives SYS instructions from the interpreter. The SimKernel implements
/// this; tests may supply stubs.
class SyscallSink {
public:
  enum class Action { Continue, Exit };
  virtual ~SyscallSink() = default;
  /// Handles one syscall. Register/memory access happens through \p Cpu.
  virtual Action onSyscall(CpuView &Cpu) = 0;
};

/// Why a run() call returned.
enum class RunStatus {
  InsnLimit, ///< executed MaxInsns instructions
  Halted,    ///< HLT instruction
  Exited,    ///< syscall sink requested exit
  Faulted,   ///< memory fault or arithmetic fault
  BadInstr,  ///< undecodable instruction
};

/// Result of a run() call.
struct RunResult {
  RunStatus Status = RunStatus::InsnLimit;
  uint64_t InsnsExecuted = 0;
  MemFault Fault;        ///< valid when Status == Faulted (memory)
  uint32_t FaultPC = 0;  ///< PC of faulting/bad instruction
};

/// Direct interpreter of VG1 code over a GuestMemory.
///
/// To be a credible stand-in for hardware execution (Table 2's "native"
/// baseline), fetch/decode is amortised through a direct-mapped predecoded
/// instruction cache — the software analogue of an instruction cache plus
/// hardware decoders. The cache is not coherent with code stores; programs
/// that modify code must call flushDecodeCache() (real hardware needs its
/// analogous flush on most architectures too, Section 3.16).
class RefInterp : public CpuView {
public:
  RefInterp(GuestMemory &Mem, SyscallSink *Sys = nullptr)
      : Memory(Mem), Sys(Sys), DCache(DCacheSize) {}

  /// Runs until HLT, exit, fault, or \p MaxInsns instructions.
  RunResult run(uint64_t MaxInsns);

  /// Discards predecoded instructions (after self-modifying code).
  void flushDecodeCache() {
    std::fill(DCache.begin(), DCache.end(), DEntry());
  }

  // CpuView implementation.
  uint32_t readReg(unsigned Index) const override { return R[Index]; }
  void writeReg(unsigned Index, uint32_t Value) override { R[Index] = Value; }
  uint32_t pc() const override { return PC; }
  void setPC(uint32_t Value) override { PC = Value; }
  GuestMemory &mem() override { return Memory; }

  // Architectural state (public for test assertions and result snapshots).
  uint32_t R[NumGPRs] = {};
  uint32_t PC = 0;
  uint32_t CCOpVal = 0, CCDep1 = 0, CCDep2 = 0;
  double F[NumFPRs] = {};

  /// Current NZCV, materialised from the thunk.
  uint32_t flags() const { return calcNZCV(CCOpVal, CCDep1, CCDep2); }

private:
  struct DEntry {
    uint32_t Addr = ~0u;
    Instr I;
  };
  static constexpr size_t DCacheSize = 1u << 16; // direct-mapped

  GuestMemory &Memory;
  SyscallSink *Sys;
  std::vector<DEntry> DCache;
};

} // namespace vg1
} // namespace vg

#endif // VG_GUEST_REFINTERP_H
