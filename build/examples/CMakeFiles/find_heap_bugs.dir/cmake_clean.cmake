file(REMOVE_RECURSE
  "CMakeFiles/find_heap_bugs.dir/find_heap_bugs.cpp.o"
  "CMakeFiles/find_heap_bugs.dir/find_heap_bugs.cpp.o.d"
  "find_heap_bugs"
  "find_heap_bugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_heap_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
