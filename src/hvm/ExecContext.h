//===-- hvm/ExecContext.h - Helper-call environment -------------*- C++ -*-==//
///
/// \file
/// The environment handed to every IR helper call (clean CCalls and Dirty
/// calls) as its opaque Env pointer. It exposes the executing thread's guest
/// state, guest memory, and an opaque core pointer that tool helpers use to
/// find their own data structures.
///
//===----------------------------------------------------------------------===//
#ifndef VG_HVM_EXECCONTEXT_H
#define VG_HVM_EXECCONTEXT_H

#include <cstdint>

namespace vg {

class GuestMemory;
class ShadowMap;

/// Per-run execution environment visible to IR helpers.
struct ExecContext {
  /// The running thread's guest state area (registers + shadows), laid out
  /// per vg1::gso. Dirty helpers read/write it directly, as declared by
  /// their GuestFx annotations.
  uint8_t *GuestState = nullptr;
  /// The client address space.
  GuestMemory *Mem = nullptr;
  /// The owning core (tools downcast this in their helpers).
  void *Core = nullptr;
  /// The running tool (tool helpers downcast this).
  void *Tool = nullptr;
  /// Guest thread id this context executes. Helpers that need the owning
  /// ThreadState must index through this, never through the core's
  /// "current tid" — under --sched-threads=N several contexts run
  /// concurrently and there is no single current thread.
  int Tid = 0;
  /// The tool's shadow map, when it has one (Tool::shadowMap()). Services
  /// SHPROBE instructions — the JIT-inlined Memcheck fast path — without a
  /// helper call. Null makes every probe report "take the slow path".
  ShadowMap *ShadowSM = nullptr;
};

} // namespace vg

#endif // VG_HVM_EXECCONTEXT_H
