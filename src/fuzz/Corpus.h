//===-- fuzz/Corpus.h - .vg1 repro corpus management ------------*- C++ -*-==//
///
/// \file
/// Load/save/list for the on-disk corpus of minimized repro cases
/// (fuzz/corpus/*.vg1 in the repository; every divergence fixed during
/// development leaves one behind, and a regression test replays them all).
///
//===----------------------------------------------------------------------===//
#ifndef VG_FUZZ_CORPUS_H
#define VG_FUZZ_CORPUS_H

#include "fuzz/ProgramGen.h"

#include <string>
#include <vector>

namespace vg {
namespace fuzz {

/// Sorted paths of every *.vg1 under \p Dir (empty if the directory does
/// not exist).
std::vector<std::string> listCases(const std::string &Dir);

bool loadCase(const std::string &Path, FuzzProgram &Out, std::string &Err);

/// Writes serialize(P) (with disassembly comments). Returns false on I/O
/// failure.
bool saveCase(const std::string &Path, const FuzzProgram &P);

} // namespace fuzz
} // namespace vg

#endif // VG_FUZZ_CORPUS_H
