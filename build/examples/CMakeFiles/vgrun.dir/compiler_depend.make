# Empty compiler generated dependencies file for vgrun.
# This may be replaced when dependencies are built.
