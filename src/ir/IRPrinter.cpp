//===-- ir/IRPrinter.cpp - Textual IR rendering ---------------------------==//

#include "ir/IRPrinter.h"

#include "guest/GuestArch.h"

#include <cstdio>

using namespace vg;
using namespace vg::ir;

namespace {

std::string hex(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%llx", static_cast<unsigned long long>(V));
  return Buf;
}

std::string constStr(const Expr *E) {
  return hex(E->ConstVal) + ":" + tyName(E->T);
}

} // namespace

std::string ir::toString(const Expr *E) {
  if (!E)
    return "<null>";
  switch (E->Kind) {
  case ExprKind::Const:
    return constStr(E);
  case ExprKind::RdTmp:
    return "t" + std::to_string(E->Tmp);
  case ExprKind::Get:
    return std::string("GET:") + tyName(E->T) + "(" +
           std::to_string(E->Offset) + ")";
  case ExprKind::Unop:
    return std::string(opName(E->Opc)) + "(" + toString(E->Arg[0]) + ")";
  case ExprKind::Binop:
    return std::string(opName(E->Opc)) + "(" + toString(E->Arg[0]) + "," +
           toString(E->Arg[1]) + ")";
  case ExprKind::Load:
    return std::string("LDle:") + tyName(E->T) + "(" + toString(E->Arg[0]) +
           ")";
  case ExprKind::ITE:
    return "ITE(" + toString(E->Arg[0]) + "," + toString(E->Arg[1]) + "," +
           toString(E->Arg[2]) + ")";
  case ExprKind::CCall: {
    std::string S = std::string(E->CalleeFn->Name) + "(";
    for (size_t I = 0; I != E->CallArgs.size(); ++I) {
      if (I)
        S += ",";
      S += toString(E->CallArgs[I]);
    }
    return S + "):" + tyName(E->T);
  }
  }
  return "<bad-expr>";
}

std::string ir::toString(const Stmt *S, const OffsetNamer &Namer) {
  auto Note = [&](uint32_t Off, const char *What) -> std::string {
    if (!Namer)
      return {};
    std::string N = Namer(Off);
    if (N.empty())
      return {};
    return std::string("   # ") + What + " " + N;
  };
  switch (S->Kind) {
  case StmtKind::NoOp:
    return "IR-NoOp";
  case StmtKind::IMark: {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "------ IMark(0x%x, %u) ------", S->IAddr,
                  S->ILen);
    return Buf;
  }
  case StmtKind::Put:
    return "PUT(" + std::to_string(S->Offset) + ") = " + toString(S->Data) +
           Note(S->Offset, "put");
  case StmtKind::WrTmp: {
    std::string Out = "t" + std::to_string(S->Tmp) + " = " + toString(S->Data);
    if (S->Data->Kind == ExprKind::Get)
      Out += Note(S->Data->Offset, "get");
    return Out;
  }
  case StmtKind::Store:
    return "STle(" + toString(S->Addr) + ") = " + toString(S->Data);
  case StmtKind::Dirty: {
    std::string Out = "DIRTY ";
    Out += S->Guard ? toString(S->Guard) : "1:I1";
    for (const GuestFx &F : S->Fx) {
      Out += F.IsWrite ? " WrFX-gst(" : " RdFX-gst(";
      Out += std::to_string(F.Offset) + "," + std::to_string(F.Size) + ")";
    }
    Out += " ::: ";
    if (S->Tmp != NoTmp)
      Out = "t" + std::to_string(S->Tmp) + " = " + Out;
    Out += std::string(S->CalleeFn->Name) + "(";
    for (size_t I = 0; I != S->CallArgs.size(); ++I) {
      if (I)
        Out += ",";
      Out += toString(S->CallArgs[I]);
    }
    return Out + ")";
  }
  case StmtKind::Exit: {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "if (%s) goto {%s} 0x%x",
                  toString(S->Guard).c_str(), jumpKindName(S->JK), S->DstPC);
    return Buf;
  }
  case StmtKind::ShadowProbe: {
    std::string Out = "t" + std::to_string(S->Tmp) + " = ShadowProbe";
    Out += S->Data ? "St" : "Ld";
    Out += std::to_string(8u * S->AccSize) + "(" + toString(S->Addr);
    if (S->Data)
      Out += "," + toString(S->Data);
    return Out + ")";
  }
  }
  return "<bad-stmt>";
}

std::string ir::toString(const IRSB &SB, const OffsetNamer &Namer) {
  std::string Out;
  int N = 1;
  for (const Stmt *S : SB.stmts()) {
    char Buf[16];
    std::snprintf(Buf, sizeof(Buf), "%3d: ", N++);
    Out += Buf;
    Out += toString(S, Namer);
    Out += "\n";
  }
  Out += "     goto {";
  Out += jumpKindName(SB.endJumpKind());
  Out += "} " + toString(SB.next()) + "\n";
  return Out;
}

std::string ir::vg1OffsetName(uint32_t Offset) {
  using namespace vg::vg1;
  bool Shadow = false;
  uint32_t Off = Offset;
  if (Off >= gso::ShadowOffset && Off < gso::ShadowOffset + gso::GuestStateSize) {
    Shadow = true;
    Off -= gso::ShadowOffset;
  }
  std::string Name;
  if (Off < gso::PC && Off % 4 == 0)
    Name = "%r" + std::to_string(Off / 4);
  else if (Off == gso::PC)
    Name = "%pc";
  else if (Off == gso::CC_OP)
    Name = "%cc_op";
  else if (Off == gso::CC_DEP1)
    Name = "%cc_dep1";
  else if (Off == gso::CC_DEP2)
    Name = "%cc_dep2";
  else if (Off == gso::CC_NDEP)
    Name = "%cc_ndep";
  else if (Off >= gso::F0 && Off < gso::F0 + 8 * NumFPRs && (Off - gso::F0) % 8 == 0)
    Name = "%f" + std::to_string((Off - gso::F0) / 8);
  else
    return {};
  return Shadow ? "sh(" + Name + ")" : Name;
}
