//===-- core/TransCache.h - Persistent translation cache --------*- C++ -*-==//
///
/// \file
/// The on-disk translation cache behind --tt-cache=<dir>: finished
/// translations are serialized one file per entry, keyed by (guest
/// code-byte hash, tool id, option fingerprint, format version), so a
/// later run of the same binary under the same configuration can install
/// host code without paying the eight-phase pipeline again.
///
/// Safety is by construction, not by trust in the directory contents:
///
///  - The cache key includes a hash of the live guest bytes at the entry
///    PC, and a loaded entry is only ever installed after the same
///    hashLive(Extents) == CodeHash check the asynchronous promotion path
///    performs — different code at the same address can never be served.
///  - Encoded blobs embed raw host Callee pointers (HOp::CALL), which are
///    meaningless across processes. store() rewrites every callee field
///    into an index into a serialized name table; load() resolves the
///    names back through the ir callee registry. A file therefore never
///    contains a host pointer, and an unresolvable name rejects the entry.
///  - Translations whose blob is position-dependent (the SMC-check
///    prelude embeds the owning Translation's address) are never stored;
///    see Translation::Cacheable.
///  - Every entry carries a whole-payload FNV-1a checksum. Truncated,
///    bit-flipped, or otherwise malformed files are reported as Malformed
///    (counted as CacheRejects by the service) and fall through to the
///    normal pipeline — never a crash, never garbage host code.
///  - Writes go to a temporary file and are renamed into place, so a
///    crashed writer leaves no half-written entry under the real name.
///
/// Same-run invalidation (redirects, munmap, ttflush — meaning changes
/// even when bytes do not) is handled by an in-memory poison-range set:
/// the service routes every invalidateRange through poison(), and a hit
/// whose extents intersect a poisoned range is rejected for the rest of
/// the run. On-disk entries are content-keyed, so they need no versioning
/// across runs: a future run installs its own redirects and re-poisons.
///
/// All methods are guest-thread-only (the workers never touch the cache),
/// which is what keeps --jit-threads=N with --tt-cache race-free.
///
//===----------------------------------------------------------------------===//
#ifndef VG_CORE_TRANSCACHE_H
#define VG_CORE_TRANSCACHE_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vg {

/// Bump on any change to the entry layout or to anything that alters
/// generated code without being captured by the option fingerprint.
constexpr uint32_t TransCacheFormatVersion = 1;

/// Same-run semantic-invalidation ranges. Redirects, unmaps, and TT
/// flushes change what an address *means* without changing its bytes, so
/// content checks cannot catch them; every invalidateRange poisons here
/// and a hit whose extents intersect is rejected for the rest of the run.
/// Shared by TransCache (--tt-cache) and by the server-only client path
/// (--tt-server without a local cache directory).
struct PoisonSet {
  /// [lo, hi) ranges; hi is 64-bit so a range reaching the top of the
  /// guest space covers byte 0xFFFFFFFF (hi == 2^32) instead of being
  /// clipped one byte short.
  std::vector<std::pair<uint32_t, uint64_t>> Ranges;
  bool All = false; ///< whole-space poison (full TT flush)

  void poison(uint32_t Addr, uint32_t Len);
  void poisonAll() { All = true; }
  bool poisoned(
      const std::vector<std::pair<uint32_t, uint32_t>> &Extents) const;
};

/// One translation in its process-independent form. Bytes hold callee
/// *name indexes* on disk; load() returns them patched back to live
/// pointers, ready for CodeBlob::Bytes.
struct TransCacheEntry {
  uint32_t Addr = 0;
  uint8_t Tier = 0;
  uint32_t NumInsns = 0;
  uint64_t CodeHash = 0;
  std::vector<std::pair<uint32_t, uint32_t>> Extents;
  uint32_t NumSpillSlots = 0;
  uint32_t NumChainSlots = 0;
  std::vector<uint32_t> ChainTargets;
  std::vector<uint8_t> Bytes;
};

class TransCache {
public:
  enum class LoadResult {
    NotFound,  ///< no entry under that key (a plain miss)
    Malformed, ///< entry exists but failed validation (a reject)
    Found,     ///< decoded and callee-resolved; caller still live-hash checks
  };

  /// \p Dir is created if missing. \p MaxBytes bounds the directory's
  /// total entry size (0 = unbounded); the oldest entries are evicted to
  /// make room. \p ConfigHash folds tool id, option fingerprint, and
  /// format version — entries from other configurations are invisible.
  TransCache(std::string Dir, uint64_t MaxBytes, uint64_t ConfigHash);

  /// The lookup key for a translation of \p PC at tier \p Hot whose guest
  /// code starts with bytes hashing to \p PrefixHash. The prefix hash only
  /// affects the hit rate, never correctness: a colliding entry either
  /// covers identical guest bytes (and is the correct, deterministic
  /// pipeline output for them) or fails the caller's live-hash check.
  static uint64_t entryKey(uint32_t PC, bool Hot, uint64_t PrefixHash);

  /// Fingerprint for the run configuration. \p Options are (name, value)
  /// pairs of every option that can influence generated code.
  static uint64_t configHash(
      const std::string &ToolId,
      const std::vector<std::pair<std::string, std::string>> &Options);

  LoadResult load(uint64_t Key, TransCacheEntry &Out);

  /// Serializes \p E under \p Key. Returns false when the entry cannot be
  /// made position-independent (undecodable bytes, a callee with no
  /// registered name) or the write failed; the run simply continues
  /// without persisting that translation.
  bool store(uint64_t Key, const TransCacheEntry &E);

  /// Serializes \p E into the complete on-disk file image (header +
  /// checksummed payload) under (\p ConfigHash, \p Key). Callee pointers
  /// are rewritten into name-table indexes, so the image is position- and
  /// process-independent — the form that crosses the translation-server
  /// wire. False when the entry cannot leave the process.
  static bool encodeEntryFile(uint64_t ConfigHash, uint64_t Key,
                              const TransCacheEntry &E,
                              std::vector<uint8_t> &File);

  /// Validates and decodes a file image produced by encodeEntryFile — the
  /// byte-level half of load(), shared with the translation-server client
  /// (which receives images over a socket instead of from disk) and the
  /// server daemon (which validates PUT payloads before storing them).
  /// A zero-length or truncated image is Malformed, never a hit candidate.
  /// \p ResolveCallees patches name indexes back to live pointers (what an
  /// installing client needs); the daemon passes false — pointers are
  /// meaningless in its process, but the structural walk, bounds checks,
  /// and checksum still run.
  static LoadResult decodeEntryFile(const std::vector<uint8_t> &File,
                                    uint64_t ConfigHash, uint64_t Key,
                                    TransCacheEntry &Out,
                                    bool ResolveCallees);

  /// Atomically publishes a pre-encoded file image under \p Key — the
  /// write-through path for validated server-fetched entries. Honours the
  /// size budget exactly like store().
  bool storeFile(uint64_t Key, const std::vector<uint8_t> &File);

  /// The filename an entry lives under: hex16(config)-hex16(key).vgtc.
  /// Shared with the server daemon so a server directory IS a cache
  /// directory (a cold run's --tt-cache output can be served directly).
  static std::string entryFileName(uint64_t ConfigHash, uint64_t Key);

  /// Marks [Addr, Addr+Len) semantically invalid for the rest of this
  /// run: redirects and unmaps change what an address *means* without
  /// changing its bytes, so the content checks cannot catch them.
  void poison(uint32_t Addr, uint32_t Len);
  /// Marks the entire guest space invalid for the rest of this run (a full
  /// TT flush). A dedicated whole-space flag rather than poison(0, ~0u):
  /// a 32-bit length cannot express the full 4GB, so a range-based
  /// encoding would always exclude the final guest byte 0xFFFFFFFF.
  void poisonAll();
  bool poisoned(
      const std::vector<std::pair<uint32_t, uint32_t>> &Extents) const;

  /// The file an entry under \p Key lives in (tests inject corruption
  /// through this).
  std::string entryPath(uint64_t Key) const;

  const std::string &dir() const { return Dir; }
  uint64_t configHashValue() const { return ConfigHash; }
  uint64_t totalBytes() const { return TotalBytes; }
  uint64_t evictedFiles() const { return EvictedFiles; }
  uint64_t writeFailures() const { return WriteFailures; }
  /// Accounts an encode failure detected by a caller that serializes
  /// through encodeEntryFile directly (the service's shared write-back).
  void noteWriteFailure() { ++WriteFailures; }

private:
  void evictToFit(uint64_t NeedBytes);

  std::string Dir;
  uint64_t MaxBytes = 0;
  uint64_t ConfigHash = 0;
  uint64_t TotalBytes = 0; ///< current on-disk usage of this config's entries
  uint64_t EvictedFiles = 0;
  uint64_t WriteFailures = 0;
  PoisonSet Poison; ///< same-run semantic invalidation
};

} // namespace vg

#endif // VG_CORE_TRANSCACHE_H
