file(REMOVE_RECURSE
  "CMakeFiles/cache_profile.dir/cache_profile.cpp.o"
  "CMakeFiles/cache_profile.dir/cache_profile.cpp.o.d"
  "cache_profile"
  "cache_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
