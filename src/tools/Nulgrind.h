//===-- tools/Nulgrind.h - The null tool ------------------------*- C++ -*-==//
///
/// \file
/// Nulgrind: the tool that adds no analysis code (Section 5.4's baseline).
/// Its cost is therefore the cost of the framework itself: D&R translation,
/// ThreadState-resident registers, and dispatch.
///
//===----------------------------------------------------------------------===//
#ifndef VG_TOOLS_NULGRIND_H
#define VG_TOOLS_NULGRIND_H

#include "core/Tool.h"

namespace vg {

class Nulgrind : public Tool {
public:
  const char *name() const override { return "nulgrind"; }
  /// No analysis state at all, so parallel guest execution is trivially
  /// safe.
  bool supportsParallelGuests() const override { return true; }
};

} // namespace vg

#endif // VG_TOOLS_NULGRIND_H
