//===-- support/Options.cpp - Command-line option handling ----------------==//

#include "support/Options.h"

#include "support/Errors.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

using namespace vg;

void OptionRegistry::addOption(const std::string &Name,
                               const std::string &Default,
                               const std::string &Help) {
  Entry E;
  E.Value = Default;
  E.Default = Default;
  E.Help = Help;
  Entries[Name] = E;
}

std::vector<std::string>
OptionRegistry::parse(const std::vector<std::string> &Args) {
  std::vector<std::string> Unknown;
  for (const auto &Arg : Args) {
    if (Arg.size() < 3 || Arg[0] != '-' || Arg[1] != '-') {
      Unknown.push_back(Arg);
      continue;
    }
    std::string Body = Arg.substr(2);
    std::string Name = Body, Value = "yes";
    if (size_t Eq = Body.find('='); Eq != std::string::npos) {
      Name = Body.substr(0, Eq);
      Value = Body.substr(Eq + 1);
    }
    auto It = Entries.find(Name);
    if (It == Entries.end()) {
      Unknown.push_back(Arg);
      continue;
    }
    It->second.Value = Value;
  }
  return Unknown;
}

bool OptionRegistry::has(const std::string &Name) const {
  return Entries.count(Name) != 0;
}

std::string OptionRegistry::getString(const std::string &Name) const {
  auto It = Entries.find(Name);
  if (It == Entries.end())
    unreachable("lookup of unregistered option");
  return It->second.Value;
}

int64_t OptionRegistry::getInt(const std::string &Name) const {
  return std::strtoll(getString(Name).c_str(), nullptr, 0);
}

int64_t OptionRegistry::getIntChecked(const std::string &Name, int64_t Lo,
                                      int64_t Hi) const {
  std::string S = getString(Name);
  const char *C = S.c_str();
  char *End = nullptr;
  errno = 0;
  long long V = std::strtoll(C, &End, 0);
  if (S.empty() || End == C || *End != '\0' || errno == ERANGE || V < Lo ||
      V > Hi) {
    char Msg[256];
    std::snprintf(Msg, sizeof(Msg),
                  "--%s=%s: expected an integer in [%lld, %lld]",
                  Name.c_str(), S.c_str(), static_cast<long long>(Lo),
                  static_cast<long long>(Hi));
    fatalError(Msg);
  }
  return V;
}

std::vector<std::pair<std::string, std::string>>
OptionRegistry::items() const {
  std::vector<std::pair<std::string, std::string>> Out;
  Out.reserve(Entries.size());
  for (const auto &[Name, E] : Entries)
    Out.push_back({Name, E.Value});
  return Out;
}

bool OptionRegistry::getBool(const std::string &Name) const {
  std::string V = getString(Name);
  return V == "yes" || V == "true" || V == "1" || V == "on";
}

std::string OptionRegistry::helpText() const {
  std::string Out;
  for (const auto &[Name, E] : Entries) {
    Out += "  --" + Name + " (default: " + E.Default + ")\n      " + E.Help +
           "\n";
  }
  return Out;
}
