file(REMOVE_RECURSE
  "CMakeFiles/sec51_codesize.dir/sec51_codesize.cpp.o"
  "CMakeFiles/sec51_codesize.dir/sec51_codesize.cpp.o.d"
  "sec51_codesize"
  "sec51_codesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec51_codesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
