//===-- kernel/AddressSpace.cpp - Address space manager -------------------==//

#include "kernel/AddressSpace.h"

#include <algorithm>
#include <cassert>

using namespace vg;

void AddressSpace::reserveCoreRegion() {
  bool Ok = add(CoreBase, CoreSize, 0, SegKind::CoreReserved, "core+tool");
  assert(Ok && "core region must be reservable at startup");
  (void)Ok;
}

bool AddressSpace::add(uint32_t Start, uint32_t Len, uint8_t Perms,
                       SegKind Kind, const std::string &Name) {
  if (Len == 0)
    return false;
  Start = pageDown(Start);
  uint32_t End = pageUp(Start + Len);
  if (End <= Start) // wrapped
    return false;
  if (anyOverlap(Start, End - Start))
    return false;
  Segment S{Start, End, Perms, Kind, Name};
  auto It = std::lower_bound(
      Segs.begin(), Segs.end(), S,
      [](const Segment &A, const Segment &B) { return A.Start < B.Start; });
  Segs.insert(It, S);
  return true;
}

std::vector<std::pair<uint32_t, uint32_t>>
AddressSpace::release(uint32_t Start, uint32_t Len) {
  std::vector<std::pair<uint32_t, uint32_t>> Removed;
  if (Len == 0)
    return Removed;
  Start = pageDown(Start);
  uint32_t End = pageUp(Start + Len);
  std::vector<Segment> Out;
  Out.reserve(Segs.size());
  for (Segment &S : Segs) {
    if (S.Kind == SegKind::CoreReserved || S.End <= Start || S.Start >= End) {
      Out.push_back(S);
      continue;
    }
    uint32_t CutLo = std::max(S.Start, Start);
    uint32_t CutHi = std::min(S.End, End);
    Removed.push_back({CutLo, CutHi});
    if (S.Start < CutLo) {
      Segment Left = S;
      Left.End = CutLo;
      Out.push_back(Left);
    }
    if (CutHi < S.End) {
      Segment Right = S;
      Right.Start = CutHi;
      Out.push_back(Right);
    }
  }
  Segs = std::move(Out);
  return Removed;
}

bool AddressSpace::resize(uint32_t Start, uint32_t NewEnd) {
  NewEnd = pageUp(NewEnd);
  for (size_t I = 0; I != Segs.size(); ++I) {
    Segment &S = Segs[I];
    if (S.Start != Start)
      continue;
    if (NewEnd <= S.Start)
      return false;
    // Check growth doesn't collide with the next segment.
    if (I + 1 < Segs.size() && NewEnd > Segs[I + 1].Start)
      return false;
    S.End = NewEnd;
    return true;
  }
  return false;
}

const Segment *AddressSpace::segmentAt(uint32_t Addr) const {
  for (const Segment &S : Segs)
    if (Addr >= S.Start && Addr < S.End)
      return &S;
  return nullptr;
}

const Segment *AddressSpace::segmentByKind(SegKind Kind) const {
  for (const Segment &S : Segs)
    if (S.Kind == Kind)
      return &S;
  return nullptr;
}

bool AddressSpace::anyOverlap(uint32_t Start, uint32_t Len) const {
  uint32_t End = Start + Len;
  for (const Segment &S : Segs)
    if (S.Start < End && Start < S.End)
      return true;
  return false;
}

uint32_t AddressSpace::findFree(uint32_t Len, uint32_t Hint) const {
  Len = pageUp(Len);
  uint32_t Cand = pageUp(Hint);
  for (;;) {
    // Find the first segment overlapping [Cand, Cand+Len).
    const Segment *Conflict = nullptr;
    for (const Segment &S : Segs) {
      if (S.Start < Cand + Len && Cand < S.End) {
        Conflict = &S;
        break;
      }
    }
    if (!Conflict) {
      if (Cand + Len < Cand) // wrapped: out of space
        return 0;
      return Cand;
    }
    uint32_t Next = pageUp(Conflict->End);
    if (Next <= Cand) // wrapped
      return 0;
    Cand = Next;
  }
}
