file(REMOVE_RECURSE
  "libvg.a"
)
