//===-- shadow/ShadowMemory.h - Shadow memory (R2) --------------*- C++ -*-==//
///
/// \file
/// Shadow memory for shadow-value tools (requirement R2). Two layouts are
/// provided, reproducing the Section 5.4 trade-off discussion:
///
///  - ShadowMap: Memcheck's two-level table ("How to shadow every byte of
///    memory used by a program", VEE 2007). A primary array of 64K entries
///    maps each 64KB chunk of guest space to a secondary holding one V-bit
///    byte per guest byte and one A-bit per guest byte. Unmaterialised
///    chunks share two distinguished secondaries (all-NoAccess,
///    all-Defined), so memory cost tracks the client's footprint. Works
///    for the whole 4GB guest space.
///
///  - DirectShadow: the TaintTrace-style layout — one flat allocation at a
///    fixed offset, making shadow access a single add. Fast, but only
///    covers a fixed window of the address space and wastes host memory
///    for sparse clients (the paper: "reserving large areas of address
///    space works most of the time on Linux, but is untenable on many
///    other OSes").
///
/// Encoding (Memcheck's): V-bit 1 = undefined, 0 = defined; A-bit 1 =
/// addressable. Unaddressable bytes read as fully undefined.
///
//===----------------------------------------------------------------------===//
#ifndef VG_SHADOW_SHADOWMEMORY_H
#define VG_SHADOW_SHADOWMEMORY_H

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace vg {

/// Result of an addressability probe.
struct AddrCheck {
  bool Ok = true;
  uint32_t FirstBad = 0;
};

/// The two-level Memcheck-style shadow map.
class ShadowMap {
public:
  static constexpr uint32_t ChunkBits = 16;
  static constexpr uint32_t ChunkSize = 1u << ChunkBits; // 64KB
  static constexpr uint32_t NumChunks = 1u << (32 - ChunkBits);

  ShadowMap();

  // --- range operations (the make_mem_* of Table 1) -----------------------
  void makeNoAccess(uint32_t Addr, uint32_t Len);
  void makeUndefined(uint32_t Addr, uint32_t Len);
  void makeDefined(uint32_t Addr, uint32_t Len);
  /// Copies both A and V bits (mremap/realloc support).
  void copyRange(uint32_t Src, uint32_t Dst, uint32_t Len);

  // --- per-access operations ----------------------------------------------
  /// Loads V-bits for \p Size (1/2/4/8) bytes at \p Addr, low byte first.
  /// Unaddressable bytes contribute 0xFF. \p Check reports the first
  /// unaddressable byte.
  uint64_t loadV(uint32_t Addr, uint32_t Size, AddrCheck &Check) const;
  /// Stores V-bits for \p Size bytes; \p Check as for loadV. Stores to
  /// unaddressable bytes leave their shadow untouched.
  void storeV(uint32_t Addr, uint32_t Size, uint64_t Vbits, AddrCheck &Check);

  bool isAddressable(uint32_t Addr, uint32_t Len, uint32_t &FirstBad) const;
  /// True if [Addr,Addr+Len) is fully addressable and defined; else sets
  /// \p FirstBad to the first offending byte and \p BadIsUnaddressable.
  bool isDefined(uint32_t Addr, uint32_t Len, uint32_t &FirstBad,
                 bool &BadIsUnaddressable) const;

  uint8_t vbyte(uint32_t Addr) const;
  bool abit(uint32_t Addr) const;
  void setByte(uint32_t Addr, bool Addressable, uint8_t V);

  /// Materialised secondaries (memory-footprint statistics).
  uint64_t chunksMaterialised() const { return Materialised; }

private:
  struct Secondary {
    std::array<uint8_t, ChunkSize> V;
    std::array<uint8_t, ChunkSize / 8> A;
  };

  /// Distinguished secondary kinds.
  enum class Dsm : uint8_t { NoAccess, Defined, Owned };

  Secondary *writable(uint32_t ChunkIdx);
  const Secondary *readable(uint32_t ChunkIdx) const;

  std::vector<std::unique_ptr<Secondary>> Owned; // indexed via OwnedIdx
  std::vector<int32_t> OwnedIdx;                 // -1 NoAccess, -2 Defined
  uint64_t Materialised = 0;

  static Secondary DsmNoAccess, DsmDefined;
  static bool DsmInit;
};

/// The flat, fixed-window shadow layout (ablation comparator).
class DirectShadow {
public:
  /// Covers [WindowBase, WindowBase + WindowSize).
  DirectShadow(uint32_t WindowBase, uint32_t WindowSize);

  bool covers(uint32_t Addr, uint32_t Len) const {
    return Addr >= Base && Addr + Len <= Base + Size && Addr + Len >= Addr;
  }

  void makeNoAccess(uint32_t Addr, uint32_t Len);
  void makeUndefined(uint32_t Addr, uint32_t Len);
  void makeDefined(uint32_t Addr, uint32_t Len);

  uint64_t loadV(uint32_t Addr, uint32_t Sz, AddrCheck &Check) const;
  void storeV(uint32_t Addr, uint32_t Sz, uint64_t Vbits, AddrCheck &Check);

private:
  uint32_t Base, Size;
  std::vector<uint8_t> V; ///< one byte per guest byte
  std::vector<uint8_t> A; ///< one byte per guest byte (keeps it branchless)
};

} // namespace vg

#endif // VG_SHADOW_SHADOWMEMORY_H
