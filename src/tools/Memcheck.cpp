//===-- tools/Memcheck.cpp - The definedness checker ----------------------==//

#include "tools/Memcheck.h"

#include "guest/GuestArch.h"

#include <cinttypes>

using namespace vg;
using namespace vg::ir;
using namespace vg::vg1;

//===----------------------------------------------------------------------===//
// Helpers called from generated code
//===----------------------------------------------------------------------===//

namespace {

Memcheck *toolOf(void *Env) {
  return static_cast<Memcheck *>(static_cast<ExecContext *>(Env)->Tool);
}

int tidOf(void *Env) { return static_cast<ExecContext *>(Env)->Tid; }

std::string hexAddr(uint32_t A) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "0x%08X", A);
  return Buf;
}

} // namespace

uint64_t Memcheck::helperLoadV(void *Env, uint64_t Addr, uint64_t Size,
                               uint64_t PC, uint64_t) {
  Memcheck *MC = toolOf(Env);
  MC->ShadowLoads.fetch_add(1, std::memory_order_relaxed);
  AddrCheck Check;
  uint64_t V = MC->SM.loadV(static_cast<uint32_t>(Addr),
                            static_cast<uint32_t>(Size), Check);
  if (!Check.Ok) {
    MC->reportError("InvalidRead",
                    "Invalid read of size " + std::to_string(Size) + " at " +
                        hexAddr(static_cast<uint32_t>(Addr)),
                    static_cast<uint32_t>(PC), tidOf(Env));
  }
  return V;
}

uint64_t Memcheck::helperStoreV(void *Env, uint64_t Addr, uint64_t Vbits,
                                uint64_t Size, uint64_t PC) {
  Memcheck *MC = toolOf(Env);
  MC->ShadowStores.fetch_add(1, std::memory_order_relaxed);
  AddrCheck Check;
  MC->SM.storeV(static_cast<uint32_t>(Addr), static_cast<uint32_t>(Size),
                Vbits, Check);
  if (!Check.Ok) {
    MC->reportError("InvalidWrite",
                    "Invalid write of size " + std::to_string(Size) + " at " +
                        hexAddr(static_cast<uint32_t>(Addr)),
                    static_cast<uint32_t>(PC), tidOf(Env));
  }
  return 0;
}

uint64_t Memcheck::helperValueCheckFail(void *Env, uint64_t PC, uint64_t Size,
                                        uint64_t, uint64_t) {
  Memcheck *MC = toolOf(Env);
  MC->reportError("UninitValue",
                  "Use of uninitialised value of size " +
                      std::to_string(Size) + " (memory address)",
                  static_cast<uint32_t>(PC), tidOf(Env));
  return 0;
}

uint64_t Memcheck::helperCondUndef(void *Env, uint64_t PC, uint64_t, uint64_t,
                                   uint64_t) {
  Memcheck *MC = toolOf(Env);
  MC->reportError(
      "UninitCondition",
      "Conditional jump or move depends on uninitialised value(s)",
      static_cast<uint32_t>(PC), tidOf(Env));
  return 0;
}

uint64_t Memcheck::helperJumpUndef(void *Env, uint64_t PC, uint64_t, uint64_t,
                                   uint64_t) {
  Memcheck *MC = toolOf(Env);
  MC->reportError("UninitJumpTarget",
                  "Jump to an uninitialised target address",
                  static_cast<uint32_t>(PC), tidOf(Env));
  return 0;
}

namespace {
// All five helpers touch only shadow memory and the error log — never
// guest registers (StateFxComplete) — and only STOREV writes V-bits, so
// the others additionally preserve cached ShadowProbe results.
const Callee LoadVCallee = {"mc_LOADV", &Memcheck::helperLoadV, 0,
                            /*PreservesShadow=*/true,
                            /*StateFxComplete=*/true};
const Callee StoreVCallee = {"mc_STOREV", &Memcheck::helperStoreV, 0,
                             /*PreservesShadow=*/false,
                             /*StateFxComplete=*/true};
const Callee ValueCheckFailCallee = {"mc_value_check_fail",
                                     &Memcheck::helperValueCheckFail, 0,
                                     /*PreservesShadow=*/true,
                                     /*StateFxComplete=*/true};
const Callee CondUndefCallee = {"mc_cond_undef", &Memcheck::helperCondUndef,
                                0, /*PreservesShadow=*/true,
                                /*StateFxComplete=*/true};
const Callee JumpUndefCallee = {"mc_jump_undef", &Memcheck::helperJumpUndef,
                                0, /*PreservesShadow=*/true,
                                /*StateFxComplete=*/true};
const ir::CalleeRegistrar RegisterCallees{
    &LoadVCallee, &StoreVCallee, &ValueCheckFailCallee, &CondUndefCallee,
    &JumpUndefCallee};
} // namespace

//===----------------------------------------------------------------------===//
// The instrumenter (translation Phase 3; paper Figure 2)
//===----------------------------------------------------------------------===//

namespace {

/// Instruments one flat superblock in place.
class McInstrumenter {
public:
  McInstrumenter(IRSB &SB) : SB(SB) {}

  void run() {
    std::vector<Stmt *> Old;
    Old.swap(SB.stmts()); // factories now append to the fresh list
    for (Stmt *S : Old)
      visit(S);
    // Indirect block ends: check the target address is defined.
    Expr *Next = SB.next();
    if (Next->isRdTmp()) {
      Expr *VN = vAtom(Next);
      Expr *G = atom(SB.unop(Op::CmpNEZ32, VN));
      SB.dirty(&JumpUndefCallee, {SB.constI64(CurPC)}, NoTmp, G);
    }
  }

private:
  static Ty shTy(Ty T) { return T == Ty::F64 ? Ty::I64 : T; }

  TmpId shadowOf(TmpId T) {
    if (T >= ShadowTmp.size())
      ShadowTmp.resize(T + 1, NoTmp);
    if (ShadowTmp[T] == NoTmp)
      ShadowTmp[T] = SB.newTmp(shTy(SB.typeOfTmp(T)));
    return ShadowTmp[T];
  }

  /// Shadow value of an original-program atom.
  Expr *vAtom(const Expr *A) {
    if (A->isConst())
      return SB.mkConst(shTy(A->T), 0); // literals are fully defined
    return SB.rdTmp(shadowOf(A->Tmp));
  }

  /// Materialises an expression into an atom (emitting a WrTmp).
  Expr *atom(Expr *E) {
    if (E->isAtom())
      return E;
    return SB.rdTmp(SB.wrTmp(E));
  }

  // --- V-bit combinators -------------------------------------------------
  static Op orOp(Ty T) {
    switch (T) {
    case Ty::I8:
      return Op::Or8;
    case Ty::I16:
      return Op::Or16;
    case Ty::I32:
      return Op::Or32;
    default:
      return Op::Or64;
    }
  }
  static Op negOp(Ty T) {
    switch (T) {
    case Ty::I8:
      return Op::Neg8;
    case Ty::I16:
      return Op::Neg16;
    case Ty::I32:
      return Op::Neg32;
    default:
      return Op::Neg64;
    }
  }
  static Op cmpNEZOp(Ty T) {
    switch (T) {
    case Ty::I8:
      return Op::CmpNEZ8;
    case Ty::I16:
      return Op::CmpNEZ16;
    case Ty::I32:
      return Op::CmpNEZ32;
    default:
      return Op::CmpNEZ64;
    }
  }

  /// UifU: undefined if either input is (paper Figure 2, "shadow addl
  /// 1/3").
  Expr *uifu(Ty T, Expr *A, Expr *B) { return atom(SB.binop(orOp(T), A, B)); }

  /// Left: smear undefinedness towards the MSB — Or(x, Neg(x)) (Figure 2,
  /// "shadow addl 2/3 and 3/3": carries propagate leftward).
  Expr *left(Ty T, Expr *V) {
    Expr *N = atom(SB.unop(negOp(T), V));
    return atom(SB.binop(orOp(T), V, N));
  }

  /// PCast: if any input bit is undefined, every output bit is.
  Expr *pcast(Ty From, Ty To, Expr *V) {
    Expr *C = From == Ty::I1 ? V : atom(SB.unop(cmpNEZOp(From), V));
    switch (To) {
    case Ty::I1:
      return C;
    case Ty::I8: {
      Expr *W = atom(SB.unop(Op::U1to8, C));
      return atom(SB.unop(Op::Neg8, W));
    }
    case Ty::I16: {
      Expr *W32 = atom(SB.unop(Op::U1to32, C));
      Expr *N32 = atom(SB.unop(Op::Neg32, W32));
      return atom(SB.unop(Op::T32to16, N32));
    }
    case Ty::I32: {
      Expr *W = atom(SB.unop(Op::U1to32, C));
      return atom(SB.unop(Op::Neg32, W));
    }
    case Ty::I64:
    case Ty::F64: {
      Expr *W = atom(SB.unop(Op::U1to64, C));
      return atom(SB.unop(Op::Neg64, W));
    }
    }
    unreachable("pcast: bad target type");
  }

  /// Shadow for a unary operation.
  Expr *shadowUnop(Op O, Expr *V) {
    switch (O) {
    case Op::Not8:
    case Op::Not16:
    case Op::Not32:
    case Op::Not64:
    case Op::NegF64: // sign-bit flip: V-bits unchanged
    case Op::AbsF64:
    case Op::ReinterpF64asI64:
    case Op::ReinterpI64asF64:
      return V;
    case Op::Neg8:
    case Op::Neg16:
    case Op::Neg32:
    case Op::Neg64:
      return left(opResultTy(O), V);
    // Conversions: the same conversion on V-bits preserves per-bit
    // correspondence (sign-extension deliberately smears an undefined
    // sign bit).
    case Op::U1to8:
    case Op::U1to32:
    case Op::U1to64:
    case Op::U8to16:
    case Op::U8to32:
    case Op::S8to32:
    case Op::U8to64:
    case Op::U16to32:
    case Op::S16to32:
    case Op::U16to64:
    case Op::U32to64:
    case Op::S32to64:
    case Op::T16to8:
    case Op::T32to8:
    case Op::T32to16:
    case Op::T64to32:
    case Op::T64HIto32:
    case Op::T32to1:
    case Op::T64to1:
      return atom(SB.unop(O, V));
    case Op::CmpNEZ8:
    case Op::CmpNEZ16:
    case Op::CmpNEZ32:
    case Op::CmpNEZ64:
      return pcast(opArgTy(O, 0), Ty::I1, V);
    case Op::I32StoF64:
      return pcast(Ty::I32, Ty::I64, V);
    case Op::F64toI32S:
      return pcast(Ty::I64, Ty::I32, V);
    case Op::SqrtF64:
      return pcast(Ty::I64, Ty::I64, V);
    default:
      return pcast(shTy(opArgTy(O, 0)), shTy(opResultTy(O)), V);
    }
  }

  /// Shadow for a binary operation.
  Expr *shadowBinop(const Expr *D, Expr *V1, Expr *V2) {
    Op O = D->Opc;
    Ty RT = shTy(opResultTy(O));
    switch (O) {
    case Op::And8:
    case Op::And16:
    case Op::And32:
    case Op::And64:
    case Op::Or8:
    case Op::Or16:
    case Op::Or32:
    case Op::Or64:
    case Op::Xor8:
    case Op::Xor16:
    case Op::Xor32:
    case Op::Xor64:
      return uifu(RT, V1, V2);
    case Op::Add8:
    case Op::Add16:
    case Op::Add32:
    case Op::Add64:
    case Op::Sub8:
    case Op::Sub16:
    case Op::Sub32:
    case Op::Sub64:
    case Op::Mul8:
    case Op::Mul16:
    case Op::Mul32:
    case Op::Mul64:
    case Op::Add8x4:
    case Op::Sub8x4:
      return left(RT, uifu(RT, V1, V2));
    case Op::Shl8:
    case Op::Shl16:
    case Op::Shl32:
    case Op::Shl64:
    case Op::Shr8:
    case Op::Shr16:
    case Op::Shr32:
    case Op::Shr64:
    case Op::Sar8:
    case Op::Sar16:
    case Op::Sar32:
    case Op::Sar64:
      if (D->Arg[1]->isConst()) {
        // Constant shift: shift the V-bits identically.
        return atom(
            SB.binop(O, V1, SB.constI8(static_cast<uint8_t>(
                                D->Arg[1]->ConstVal))));
      }
      // Variable shift: any undefinedness in the amount poisons all.
      return pcast(RT, RT,
                   uifu(RT, V1, pcast(Ty::I8, RT, V2)));
    case Op::Concat32HLto64:
      return atom(SB.binop(Op::Concat32HLto64, V1, V2));
    case Op::CmpGT8Sx4:
      return left(Ty::I32, uifu(Ty::I32, V1, V2));
    default: {
      // Comparisons, divisions, widening multiplies, FP arithmetic: PCast
      // of the operands' combined V-bits.
      Ty AT = shTy(opArgTy(O, 0));
      return pcast(AT, RT, uifu(AT, V1, V2));
    }
    }
  }

  /// Emits the "is this address fully defined?" check before a memory
  /// access (paper Figure 2, statements 15-16).
  void emitAddrCheck(Expr *AddrAtom, uint32_t Size) {
    Expr *VA = vAtom(AddrAtom);
    Expr *G = atom(SB.unop(Op::CmpNEZ32, VA));
    SB.dirty(&ValueCheckFailCallee, {SB.constI64(CurPC), SB.constI64(Size)},
             NoTmp, G);
  }

  static uint32_t sizeOfTy(Ty T) { return tySizeBits(T) / 8; }

  void visit(Stmt *S) {
    switch (S->Kind) {
    case StmtKind::NoOp:
      return;
    case StmtKind::IMark:
      CurPC = S->IAddr;
      SB.append(S);
      return;

    case StmtKind::Put: {
      // Shadow register write first (paper: every operation on guest
      // values is preceded by the shadow operation).
      SB.put(S->Offset + gso::ShadowOffset, vAtom(S->Data));
      SB.append(S);
      return;
    }

    case StmtKind::WrTmp: {
      Expr *D = S->Data;
      Expr *VShadow = nullptr;
      switch (D->Kind) {
      case ExprKind::Const:
        VShadow = SB.mkConst(shTy(D->T), 0);
        break;
      case ExprKind::RdTmp:
        VShadow = vAtom(D);
        break;
      case ExprKind::Get:
        VShadow = atom(SB.get(D->Offset + gso::ShadowOffset, shTy(D->T)));
        break;
      case ExprKind::Unop:
        VShadow = shadowUnop(D->Opc, vAtom(D->Arg[0]));
        break;
      case ExprKind::Binop:
        VShadow = shadowBinop(D, vAtom(D->Arg[0]), vAtom(D->Arg[1]));
        break;
      case ExprKind::Load: {
        emitAddrCheck(D->Arg[0], sizeOfTy(D->T));
        if (D->T == Ty::I32) {
          // JIT-inlined fast path (Section 5.4): a non-faulting probe
          // resolves aligned, fully-addressable, fully-defined words
          // without leaving generated code. The probe result has bit 32
          // set when it punted; only then does the guarded mc_LOADV call
          // run (errors, partial definedness, unaligned, chunk edges).
          TmpId TP = SB.newTmp(Ty::I64);
          SB.shadowProbe(D->Arg[0], nullptr, TP, 4);
          Expr *Hi = atom(SB.unop(Op::T64HIto32, SB.rdTmp(TP)));
          Expr *G = atom(SB.unop(Op::CmpNEZ32, Hi));
          // TSlow is defined only by the guarded call; the SEL discards
          // its (unwritten) value whenever the fast path was taken.
          TmpId TSlow = SB.newTmp(Ty::I64);
          SB.dirty(&LoadVCallee,
                   {D->Arg[0], SB.constI64(4), SB.constI64(CurPC)}, TSlow,
                   G);
          // Select in I64 and truncate once (one op fewer than truncating
          // both arms).
          Expr *Sel = atom(SB.ite(G, SB.rdTmp(TSlow), SB.rdTmp(TP)));
          VShadow = atom(SB.unop(Op::T64to32, Sel));
          break;
        }
        TmpId TV = SB.newTmp(shTy(D->T));
        SB.dirty(&LoadVCallee,
                 {D->Arg[0], SB.constI64(sizeOfTy(D->T)),
                  SB.constI64(CurPC)},
                 TV);
        VShadow = SB.rdTmp(TV);
        break;
      }
      case ExprKind::ITE: {
        Expr *VC = vAtom(D->Arg[0]);
        Expr *VT = vAtom(D->Arg[1]);
        Expr *VF = vAtom(D->Arg[2]);
        Expr *Sel = atom(SB.ite(D->Arg[0], VT, VF));
        VShadow = uifu(shTy(D->T), Sel, pcast(Ty::I1, shTy(D->T), VC));
        break;
      }
      case ExprKind::CCall: {
        // Conservative: any undefined argument bit poisons the result.
        Expr *Acc = SB.constI32(0);
        for (const Expr *A : D->CallArgs) {
          Expr *VA = vAtom(A);
          Expr *C1 = pcast(shTy(A->T), Ty::I32, VA);
          Acc = uifu(Ty::I32, Acc, C1);
        }
        VShadow = pcast(Ty::I32, shTy(D->T), Acc);
        break;
      }
      }
      // Shadow assignment precedes the original computation.
      SB.wrTmpTo(shadowOf(S->Tmp), VShadow);
      SB.append(S);
      return;
    }

    case StmtKind::Store: {
      uint32_t Size = sizeOfTy(S->Data->T);
      emitAddrCheck(S->Addr, Size);
      if (S->Data->T == Ty::I32) {
        // Store-form probe: writes the V-word inline when the chunk is
        // fully addressable and writable without CoW (or the store is a
        // no-op on the Defined DSM); returns nonzero to punt.
        Expr *VD = vAtom(S->Data);
        TmpId TP = SB.newTmp(Ty::I64);
        SB.shadowProbe(S->Addr, VD, TP, 4);
        Expr *G = atom(SB.unop(Op::CmpNEZ64, SB.rdTmp(TP)));
        SB.dirty(&StoreVCallee,
                 {S->Addr, VD, SB.constI64(4), SB.constI64(CurPC)}, NoTmp,
                 G);
        SB.append(S);
        return;
      }
      SB.dirty(&StoreVCallee,
               {S->Addr, vAtom(S->Data), SB.constI64(Size),
                SB.constI64(CurPC)});
      SB.append(S);
      return;
    }

    case StmtKind::Dirty: {
      SB.append(S);
      // Trust the helper's effect annotations: written guest-state regions
      // become defined, and a destination temporary is defined.
      for (const GuestFx &F : S->Fx) {
        if (!F.IsWrite)
          continue;
        uint32_t Off = F.Offset + gso::ShadowOffset;
        if (F.Size == 4)
          SB.put(Off, SB.constI32(0));
        else if (F.Size == 8)
          SB.put(Off, SB.constI64(0));
        else
          for (uint32_t I = 0; I != F.Size; ++I)
            SB.put(Off + I, SB.constI8(0));
      }
      if (S->Tmp != NoTmp)
        SB.wrTmpTo(shadowOf(S->Tmp),
                   SB.mkConst(shTy(SB.typeOfTmp(S->Tmp)), 0));
      return;
    }

    case StmtKind::Exit: {
      // Branching on undefined flags: the classic Memcheck error.
      Expr *VG = vAtom(S->Guard); // I1
      SB.dirty(&CondUndefCallee, {SB.constI64(CurPC)}, NoTmp, VG);
      SB.append(S);
      return;
    }
    }
  }

  IRSB &SB;
  std::vector<TmpId> ShadowTmp;
  uint32_t CurPC = 0;
};

} // namespace

void Memcheck::instrument(IRSB &SB) {
  McInstrumenter In(SB);
  In.run();
}

//===----------------------------------------------------------------------===//
// Tool plumbing: options, events, heap, client requests, reports
//===----------------------------------------------------------------------===//

void Memcheck::registerOptions(OptionRegistry &Opts) {
  Opts.addOption("leak-check", "yes", "search for leaked heap blocks at exit");
}

void Memcheck::init(Core &Core_) {
  C = &Core_;
  LeakCheckEnabled = C->options().getBool("leak-check");
  EventHub &E = C->events();

  // R5/R6: allocation state from the loader and the syscall wrappers.
  E.NewMemStartup = [this](uint32_t A, uint32_t L, uint8_t) {
    SM.makeDefined(A, L);
  };
  E.NewMemMmap = [this](uint32_t A, uint32_t L, uint8_t) {
    SM.makeDefined(A, L); // the simulated kernel zero-fills
  };
  E.DieMemMunmap = [this](uint32_t A, uint32_t L) { SM.makeNoAccess(A, L); };
  E.NewMemBrk = [this](uint32_t A, uint32_t L) { SM.makeUndefined(A, L); };
  E.DieMemBrk = [this](uint32_t A, uint32_t L) { SM.makeNoAccess(A, L); };
  E.CopyMemMremap = [this](uint32_t S, uint32_t D, uint32_t L) {
    SM.copyRange(S, D, L);
  };

  // R7: the stack breathes.
  E.NewMemStack = [this](uint32_t A, uint32_t L) { SM.makeUndefined(A, L); };
  E.DieMemStack = [this](uint32_t A, uint32_t L) { SM.makeNoAccess(A, L); };

  // R4: syscall accesses.
  E.PreRegRead = [this](int Tid, uint32_t Off, uint32_t Size,
                        const char *Sys) {
    ThreadState &TS = C->thread(Tid);
    for (uint32_t I = 0; I != Size; ++I) {
      if (TS.Guest[gso::ShadowOffset + Off + I]) {
        reportError("UninitSyscall",
                    std::string("Syscall parameter ") + Sys +
                        " contains uninitialised byte(s)",
                    TS.getPC(), Tid);
        return;
      }
    }
  };
  E.PostRegWrite = [this](int Tid, uint32_t Off, uint32_t Size) {
    ThreadState &TS = C->thread(Tid);
    std::memset(TS.Guest + gso::ShadowOffset + Off, 0, Size);
  };
  E.PreMemRead = [this](int Tid, uint32_t Addr, uint32_t Len,
                        const char *Sys) {
    checkDefinedRange(Tid, Addr, Len, Sys);
  };
  E.PreMemReadAsciiz = [this](int Tid, uint32_t Addr, const char *Sys) {
    // Walk to the NUL, checking as we go.
    for (uint32_t I = 0;; ++I) {
      uint32_t Bad;
      bool Unaddr;
      if (!SM.isDefined(Addr + I, 1, Bad, Unaddr)) {
        reportError(Unaddr ? "InvalidRead" : "UninitSyscall",
                    std::string("Syscall parameter ") + Sys +
                        " string is bad at " + hexAddr(Bad),
                    C->thread(Tid).getPC(), Tid);
        return;
      }
      uint8_t B;
      if (C->memory().read(Addr + I, &B, 1, true).Faulted || B == 0)
        return;
    }
  };
  E.PreMemWrite = [this](int Tid, uint32_t Addr, uint32_t Len,
                         const char *Sys) {
    uint32_t Bad;
    if (!SM.isAddressable(Addr, Len, Bad)) {
      reportError("InvalidWrite",
                  std::string("Syscall parameter ") + Sys +
                      " points to unaddressable byte(s) at " + hexAddr(Bad),
                  C->thread(Tid).getPC(), Tid);
    }
  };
  E.PostMemWrite = [this](int, uint32_t Addr, uint32_t Len) {
    SM.makeDefined(Addr, Len);
  };

  // R8 note: the heap redirection itself (malloc/free/calloc/realloc ->
  // the core's replacement allocator) is installed by the core because
  // this tool returns tracksHeap() — see Core::loadImage.
}

void Memcheck::checkDefinedRange(int Tid, uint32_t Addr, uint32_t Len,
                                 const char *What) {
  uint32_t Bad;
  bool Unaddr;
  if (SM.isDefined(Addr, Len, Bad, Unaddr))
    return;
  if (Unaddr) {
    reportError("InvalidRead",
                std::string("Syscall parameter ") + What +
                    " points to unaddressable byte(s) at " + hexAddr(Bad),
                C->thread(Tid).getPC(), Tid);
  } else {
    reportError("UninitSyscall",
                std::string("Syscall parameter ") + What +
                    " points to uninitialised byte(s) at " + hexAddr(Bad),
                C->thread(Tid).getPC(), Tid);
  }
}

void Memcheck::onMalloc(int Tid, uint32_t Addr, uint32_t Size, bool Zeroed) {
  if (Zeroed)
    SM.makeDefined(Addr, Size);
  else
    SM.makeUndefined(Addr, Size);
}

void Memcheck::onFree(int Tid, uint32_t Addr, uint32_t Size) {
  SM.makeNoAccess(Addr, Size);
}

void Memcheck::onBadFree(int Tid, uint32_t Addr) {
  // Attribute the error to the call site: free() is entered via CALL, so
  // the caller's return address is on top of the stack.
  ThreadState &TS = C->thread(Tid);
  uint32_t Site = TS.getPC();
  uint32_t Ret;
  if (!C->memory().read(TS.gpr(vg1::RegSP), &Ret, 4, true).Faulted)
    Site = Ret;
  reportError("InvalidFree",
              "Invalid free() / delete of " + hexAddr(Addr) +
                  " (not a live heap block)",
              Site, Tid);
}

bool Memcheck::handleClientRequest(int Tid, uint32_t Code,
                                   const uint32_t Args[4], uint32_t &Result) {
  switch (Code) {
  case McMakeMemDefined:
  case McLegacyMakeMemDefined:
    SM.makeDefined(Args[0], Args[1]);
    return true;
  case McMakeMemUndefined:
  case McLegacyMakeMemUndefined:
    SM.makeUndefined(Args[0], Args[1]);
    return true;
  case McMakeMemNoAccess:
  case McLegacyMakeMemNoAccess:
    SM.makeNoAccess(Args[0], Args[1]);
    return true;
  case McCheckMemIsDefined:
  case McLegacyCheckMemIsDefined: {
    uint32_t Bad;
    bool Unaddr;
    Result = SM.isDefined(Args[0], Args[1], Bad, Unaddr) ? 0 : Bad;
    return true;
  }
  case McCheckMemIsAddressable:
  case McLegacyCheckMemIsAddressable: {
    uint32_t Bad;
    Result = SM.isAddressable(Args[0], Args[1], Bad) ? 0 : Bad;
    return true;
  }
  case McCountErrors:
  case McLegacyCountErrors:
    Result = static_cast<uint32_t>(C->errors().uniqueErrors());
    return true;
  default:
    return false;
  }
}

void Memcheck::reportError(const char *Kind, const std::string &Msg,
                           uint32_t PC, int Tid) {
  if (Tid < 0)
    Tid = C->currentTid();
  // The stack scan consults the address-space segment map, which is only
  // stable under the world lock; helpers run lock-free under
  // --sched-threads=N, so parallel runs record errors without a stack
  // (deduplication is by kind + PC and unaffected).
  std::vector<uint32_t> Stack;
  if (!C->isParallel())
    Stack = C->captureStackTrace(C->thread(Tid));
  bool IsNew =
      C->errors().record(Kind, "==memcheck== " + Msg, PC, std::move(Stack));
  if (IsNew) {
    C->output().printf("==memcheck== %s\n==memcheck==    at %s\n",
                       Msg.c_str(), hexAddr(PC).c_str());
  }
}

uint64_t Memcheck::uniqueErrors() const { return C->errors().uniqueErrors(); }

void Memcheck::leakCheck() {
  const auto &Blocks = C->heapBlocks();
  if (Blocks.empty())
    return;
  // Conservative pointer scan: any aligned, defined word anywhere in
  // addressable memory or in the registers that points into a block keeps
  // it. (Real Memcheck distinguishes start/interior pointers; we treat
  // both as reachable.)
  std::vector<std::pair<uint32_t, uint32_t>> Ranges; // payload, size
  for (auto [A, S] : Blocks)
    Ranges.push_back({A, S});
  auto FindBlock = [&](uint32_t V) -> int {
    for (size_t I = 0; I != Ranges.size(); ++I)
      if (V >= Ranges[I].first && V < Ranges[I].first + Ranges[I].second)
        return static_cast<int>(I);
    return -1;
  };

  std::vector<bool> Reached(Ranges.size(), false);
  auto ScanWord = [&](uint32_t V) {
    if (int I = FindBlock(V); I >= 0)
      Reached[static_cast<size_t>(I)] = true;
  };

  // Registers of all live threads.
  for (int T = 0; T != Core::MaxThreads; ++T) {
    ThreadState &TS = C->thread(T);
    if (TS.Status != ThreadStatus::Runnable)
      continue;
    for (unsigned R = 0; R != NumGPRs; ++R)
      ScanWord(TS.gpr(R));
  }
  // All client segments (data, stack, heap, mmaps).
  for (const Segment &S : C->addressSpace().segments()) {
    if (S.Kind == SegKind::CoreReserved || S.Kind == SegKind::ClientText)
      continue;
    for (uint32_t A = S.Start; A + 4 <= S.End; A += 4) {
      uint32_t Bad;
      if (!SM.isAddressable(A, 4, Bad)) {
        A = (Bad & ~3u); // skip to the next aligned word after the hole
        continue;
      }
      uint32_t V;
      if (!C->memory().read(A, &V, 4, true).Faulted)
        ScanWord(V);
    }
  }

  uint64_t LostBytes = 0, LostBlocks = 0;
  for (size_t I = 0; I != Ranges.size(); ++I) {
    if (!Reached[I]) {
      ++LostBlocks;
      LostBytes += Ranges[I].second;
      C->errors().record("Leak",
                         "==memcheck== " + std::to_string(Ranges[I].second) +
                             " bytes definitely lost at " +
                             hexAddr(Ranges[I].first),
                         Ranges[I].first);
    }
  }
  C->output().printf("==memcheck== LEAK SUMMARY: definitely lost: %llu "
                     "bytes in %llu blocks\n",
                     static_cast<unsigned long long>(LostBytes),
                     static_cast<unsigned long long>(LostBlocks));
}

void Memcheck::fini(int ExitCode) {
  C->output().printf(
      "==memcheck== HEAP SUMMARY: in use at exit: %llu bytes in %zu blocks\n",
      static_cast<unsigned long long>(C->heapBytesLive()),
      C->heapBlocks().size());
  if (LeakCheckEnabled)
    leakCheck();
  C->errors().printSummary(C->output());
}
