//===-- guest/GuestMemory.cpp - Sparse paged guest address space ----------==//

#include "guest/GuestMemory.h"

#include <algorithm>

using namespace vg;

GuestMemory::~GuestMemory() {
  for (std::atomic<Leaf *> &TS : Top) {
    Leaf *L = TS.load(std::memory_order_relaxed);
    if (!L)
      continue;
    for (std::atomic<Page *> &PS : L->Slots)
      delete PS.load(std::memory_order_relaxed);
    delete L;
  }
  // Graveyard pages free themselves (unique_ptr).
}

bool GuestMemory::ExecSnapshot::fetch(uint32_t Addr, void *Out,
                                      uint32_t Len) const {
  if (Len == 0)
    return true;
  // Binary search for the last range with Base <= Addr; a fetch never
  // straddles two ranges (coalescing merged adjacent pages, so a gap means
  // non-executable memory anyway).
  auto It = std::upper_bound(
      Ranges.begin(), Ranges.end(), Addr,
      [](uint32_t A, const Range &R) { return A < R.Base; });
  if (It == Ranges.begin())
    return false;
  const Range &R = *--It;
  uint64_t Off = static_cast<uint64_t>(Addr) - R.Base;
  if (Off + Len > R.Bytes.size())
    return false;
  std::memcpy(Out, R.Bytes.data() + Off, Len);
  return true;
}

GuestMemory::ExecSnapshot GuestMemory::snapshotExecRanges() const {
  // The radix tree iterates in address order, so runs coalesce in one
  // pass with no sort.
  ExecSnapshot Snap;
  uint32_t PrevIdx = ~0u;
  for (uint32_t TI = 0; TI != TopSize; ++TI) {
    const Leaf *L = Top[TI].load(std::memory_order_acquire);
    if (!L)
      continue;
    for (uint32_t LI = 0; LI != LeafSize; ++LI) {
      const Page *P = L->Slots[LI].load(std::memory_order_acquire);
      if (!P || !(P->Perms.load(std::memory_order_relaxed) & PermExec))
        continue;
      uint32_t Idx = (TI << LeafBits) | LI;
      if (Snap.Ranges.empty() || PrevIdx + 1 != Idx) {
        Snap.Ranges.push_back({Idx << PageShift, {}});
        Snap.Ranges.back().Bytes.reserve(PageSize);
      }
      ExecSnapshot::Range &R = Snap.Ranges.back();
      R.Bytes.insert(R.Bytes.end(), P->Data.begin(), P->Data.end());
      PrevIdx = Idx;
    }
  }
  return Snap;
}

GuestMemory::Leaf *GuestMemory::ensureLeaf(uint32_t PageIdx) {
  std::atomic<Leaf *> &Slot = Top[PageIdx >> LeafBits];
  Leaf *L = Slot.load(std::memory_order_relaxed);
  if (!L) {
    // Mutators are serialised by the world lock, so a plain
    // check-then-publish cannot double-install.
    L = new Leaf();
    Slot.store(L, std::memory_order_release);
  }
  return L;
}

void GuestMemory::dropPage(uint32_t PageIdx) {
  Leaf *L = Top[PageIdx >> LeafBits].load(std::memory_order_relaxed);
  if (!L)
    return;
  std::atomic<Page *> &Slot = L->Slots[PageIdx & (LeafSize - 1)];
  Page *P = Slot.load(std::memory_order_relaxed);
  if (!P)
    return;
  Slot.store(nullptr, std::memory_order_release);
  PageCount.fetch_sub(1, std::memory_order_relaxed);
  if (DeferReclaim)
    Graveyard.emplace_back(P); // a concurrent reader may still hold P
  else
    delete P;
}

void GuestMemory::map(uint32_t Addr, uint32_t Len, uint8_t Perms) {
  if (Len == 0)
    return;
  uint32_t First = Addr >> PageShift;
  uint32_t Last = (Addr + Len - 1) >> PageShift;
  for (uint32_t PI = First;; ++PI) {
    Leaf *L = ensureLeaf(PI);
    std::atomic<Page *> &Slot = L->Slots[PI & (LeafSize - 1)];
    Page *P = Slot.load(std::memory_order_relaxed);
    if (!P) {
      P = new Page();
      P->Data.fill(0);
      P->Perms.store(Perms, std::memory_order_relaxed);
      // Release: a lock-free reader that sees the pointer sees the
      // zero-fill and the permissions.
      Slot.store(P, std::memory_order_release);
      PageCount.fetch_add(1, std::memory_order_relaxed);
    } else {
      P->Perms.store(Perms, std::memory_order_relaxed);
    }
    if (PI == Last)
      break;
  }
}

void GuestMemory::unmap(uint32_t Addr, uint32_t Len) {
  if (Len == 0)
    return;
  uint32_t First = Addr >> PageShift;
  uint32_t Last = (Addr + Len - 1) >> PageShift;
  for (uint32_t PI = First;; ++PI) {
    dropPage(PI);
    if (PI == Last)
      break;
  }
}

void GuestMemory::protect(uint32_t Addr, uint32_t Len, uint8_t Perms) {
  if (Len == 0)
    return;
  uint32_t First = Addr >> PageShift;
  uint32_t Last = (Addr + Len - 1) >> PageShift;
  for (uint32_t PI = First;; ++PI) {
    if (Page *Pg = lookup(PI))
      Pg->Perms.store(Perms, std::memory_order_relaxed);
    if (PI == Last)
      break;
  }
}

// VG_NO_TSAN: the byte copy lands in guest data (see Sanitizers.h);
// the page-table walk alongside it is already atomic.
template <bool IsWrite>
VG_NO_TSAN MemFault GuestMemory::access(uint32_t Addr, void *Buf, uint32_t Len,
                             uint8_t NeedPerm) const {
  uint8_t *Bytes = static_cast<uint8_t *>(Buf);
  uint32_t Done = 0;
  while (Done != Len) {
    uint32_t A = Addr + Done;
    Page *P = lookup(A >> PageShift);
    if (!P ||
        (NeedPerm && !(P->Perms.load(std::memory_order_relaxed) & NeedPerm)))
      return MemFault{true, A, IsWrite};
    uint32_t Off = A & (PageSize - 1);
    uint32_t Chunk = std::min(Len - Done, PageSize - Off);
    if constexpr (IsWrite)
      std::memcpy(P->Data.data() + Off, Bytes + Done, Chunk);
    else
      std::memcpy(Bytes + Done, P->Data.data() + Off, Chunk);
    Done += Chunk;
  }
  return MemFault{};
}

MemFault GuestMemory::read(uint32_t Addr, void *Out, uint32_t Len,
                           bool IgnorePerms) const {
  return access<false>(Addr, Out, Len,
                       IgnorePerms ? 0 : static_cast<uint8_t>(PermRead));
}

MemFault GuestMemory::write(uint32_t Addr, const void *Data, uint32_t Len,
                            bool IgnorePerms) {
  return access<true>(Addr, const_cast<void *>(Data), Len,
                      IgnorePerms ? 0 : static_cast<uint8_t>(PermWrite));
}

MemFault GuestMemory::fetch(uint32_t Addr, void *Out, uint32_t Len) const {
  return access<false>(Addr, Out, Len, PermExec);
}
