//===-- tests/JitTests.cpp - End-to-end JIT differential tests ------------==//
///
/// \file
/// Exercises the full eight-phase pipeline (translate -> execute via HVM)
/// and differentially checks its architectural results against the
/// reference interpreter, including randomized program sweeps. This is the
/// paper's D&R correctness claim in test form: "any error converting
/// machine code to IR is likely to cause visibly wrong behaviour".
///
//===----------------------------------------------------------------------===//

#include "core/Translate.h"
#include "guest/Assembler.h"
#include "guest/RefInterp.h"
#include "hvm/Exec.h"

#include <gtest/gtest.h>

#include <map>
#include <random>

using namespace vg;
using namespace vg::vg1;

namespace {

constexpr uint32_t CodeBase = 0x1000;
constexpr uint32_t DataBase = 0x8000;
constexpr uint32_t DataSize = 0x4000;
constexpr uint32_t StackTop = 0x20000;

/// A minimal dispatcher over translateBlock: translate on demand, run until
/// an Exit/NoDecode/fault. Client requests read as 0 to match native runs.
struct MiniJit {
  GuestMemory Mem;
  alignas(8) uint8_t State[gso::TotalSize] = {};
  std::map<uint32_t, TranslatedBlock> Cache;
  TranslationOptions Opts;
  ExecContext Ctx;
  uint64_t BlocksRun = 0;

  MiniJit() {
    Opts.Verify = true;
    Ctx.GuestState = State;
    Ctx.Mem = &Mem;
  }

  uint32_t &reg(unsigned I) {
    return *reinterpret_cast<uint32_t *>(State + gso::gpr(I));
  }
  double &freg(unsigned I) {
    return *reinterpret_cast<double *>(State + gso::fpr(I));
  }
  uint32_t &pc() { return *reinterpret_cast<uint32_t *>(State + gso::PC); }

  void load(const std::vector<uint8_t> &Img) {
    Mem.map(CodeBase, static_cast<uint32_t>(Img.size()), PermRX);
    ASSERT_FALSE(Mem.write(CodeBase, Img.data(),
                           static_cast<uint32_t>(Img.size()), true)
                     .Faulted);
    Mem.map(DataBase, DataSize, PermRW);
    Mem.map(StackTop - 0x4000, 0x4000, PermRW);
    pc() = CodeBase;
    reg(RegSP) = StackTop;
  }

  FetchFn fetch() {
    return [this](uint32_t Addr, uint8_t *Buf, uint32_t MaxLen) -> uint32_t {
      uint32_t N = 0;
      while (N < MaxLen && !Mem.fetch(Addr + N, Buf + N, 1).Faulted)
        ++N;
      return N;
    };
  }

  /// Returns the final jump kind (Exit on HLT) or NoDecode/SigSEGV.
  ir::JumpKind run(uint64_t MaxBlocks = 1'000'000) {
    hvm::Executor Exec(Ctx, gso::PC);
    FetchFn F = fetch();
    while (MaxBlocks--) {
      uint32_t PC = pc();
      auto It = Cache.find(PC);
      if (It == Cache.end())
        It = Cache.emplace(PC, translateBlock(PC, F, Opts)).first;
      hvm::RunOutcome O = Exec.run(It->second.Blob);
      BlocksRun += O.BlocksExecuted;
      if (O.K == hvm::RunOutcome::Kind::Fault)
        return ir::JumpKind::SigSEGV;
      switch (O.JK) {
      case ir::JumpKind::Boring:
      case ir::JumpKind::Call:
      case ir::JumpKind::Ret:
        continue;
      case ir::JumpKind::ClientReq:
        reg(0) = 0; // native semantics
        continue;
      case ir::JumpKind::Syscall: // no kernel in this harness
      case ir::JumpKind::Exit:
      case ir::JumpKind::NoDecode:
      case ir::JumpKind::Yield:
      case ir::JumpKind::SigSEGV:
      case ir::JumpKind::SmcFail:
        return O.JK;
      }
    }
    return ir::JumpKind::Yield;
  }
};

/// Runs the image both natively (RefInterp) and under the JIT and asserts
/// identical final register state.
void differential(Assembler &A, uint64_t MaxInsns = 2'000'000) {
  std::vector<uint8_t> Img = A.finalize();

  // Native.
  GuestMemory NMem;
  NMem.map(CodeBase, static_cast<uint32_t>(Img.size()), PermRX);
  ASSERT_FALSE(
      NMem.write(CodeBase, Img.data(), static_cast<uint32_t>(Img.size()), true)
          .Faulted);
  NMem.map(DataBase, DataSize, PermRW);
  NMem.map(StackTop - 0x4000, 0x4000, PermRW);
  RefInterp Ref(NMem);
  Ref.PC = CodeBase;
  Ref.R[RegSP] = StackTop;
  RunResult NR = Ref.run(MaxInsns);
  ASSERT_EQ(NR.Status, RunStatus::Halted) << "native run did not halt";

  // JIT.
  MiniJit J;
  J.load(Img);
  ir::JumpKind JK = J.run();
  ASSERT_EQ(JK, ir::JumpKind::Exit) << "JIT run did not halt";

  for (unsigned I = 0; I != NumGPRs; ++I)
    EXPECT_EQ(J.reg(I), Ref.R[I]) << "GPR r" << I << " differs";
  for (unsigned I = 0; I != NumFPRs; ++I) {
    uint64_t JB, RB;
    std::memcpy(&JB, &J.freg(I), 8);
    std::memcpy(&RB, &Ref.F[I], 8);
    EXPECT_EQ(JB, RB) << "FPR f" << I << " differs";
  }

  // Data section must match byte for byte.
  std::vector<uint8_t> NData(DataSize), JData(DataSize);
  ASSERT_FALSE(NMem.read(DataBase, NData.data(), DataSize, true).Faulted);
  ASSERT_FALSE(J.Mem.read(DataBase, JData.data(), DataSize, true).Faulted);
  EXPECT_EQ(NData, JData) << "data section differs";
}

//===----------------------------------------------------------------------===//
// Directed differential tests
//===----------------------------------------------------------------------===//

TEST(Jit, StraightLineArithmetic) {
  Assembler A(CodeBase);
  A.movi(Reg::R1, 6);
  A.movi(Reg::R2, 7);
  A.mul(Reg::R3, Reg::R1, Reg::R2);
  A.addi(Reg::R4, Reg::R3, 100);
  A.sub(Reg::R5, Reg::R4, Reg::R1);
  A.xor_(Reg::R6, Reg::R5, Reg::R2);
  A.shli(Reg::R7, Reg::R6, 3);
  A.sari(Reg::R8, Reg::R7, 1);
  A.hlt();
  differential(A);
}

TEST(Jit, SumLoop) {
  Assembler A(CodeBase);
  A.movi(Reg::R1, 0);
  A.movi(Reg::R2, 1);
  Label Loop = A.boundLabel();
  A.add(Reg::R1, Reg::R1, Reg::R2);
  A.addi(Reg::R2, Reg::R2, 1);
  A.cmpi(Reg::R2, 10000);
  A.ble(Loop);
  A.hlt();
  differential(A);
}

TEST(Jit, AllConditionsTaken) {
  // For each condition, run cmp against two values and record the branch
  // outcome in a bitmask.
  Assembler A(CodeBase);
  A.movi(Reg::R10, 0); // result mask
  int Bit = 0;
  const int32_t Pairs[][2] = {{5, 3}, {3, 5}, {4, 4}, {-1, 1}, {1, -1}};
  for (auto &P : Pairs) {
    for (unsigned C = 0; C != NumConds; ++C) {
      A.movi(Reg::R1, static_cast<uint32_t>(P[0]));
      A.movi(Reg::R2, static_cast<uint32_t>(P[1]));
      A.cmp(Reg::R1, Reg::R2);
      Label Taken = A.newLabel(), Done = A.newLabel();
      A.bcc(static_cast<Cond>(C), Taken);
      A.jmp(Done);
      A.bind(Taken);
      A.movi(Reg::R3, 1);
      A.shli(Reg::R3, Reg::R3, static_cast<uint8_t>(Bit % 30));
      A.or_(Reg::R10, Reg::R10, Reg::R3);
      A.bind(Done);
      ++Bit;
    }
  }
  A.hlt();
  differential(A);
}

TEST(Jit, MemoryPatterns) {
  Assembler A(CodeBase);
  A.movi(Reg::R1, DataBase);
  A.movi(Reg::R2, 0);
  Label Fill = A.boundLabel();
  A.mul(Reg::R3, Reg::R2, Reg::R2);
  A.stx(Reg::R1, Reg::R2, 2, 0, Reg::R3);
  A.addi(Reg::R2, Reg::R2, 1);
  A.cmpi(Reg::R2, 256);
  A.blt(Fill);
  // Sum them back with byte/halfword accesses mixed in.
  A.movi(Reg::R4, 0);
  A.movi(Reg::R2, 0);
  Label Sum = A.boundLabel();
  A.ldx(Reg::R5, Reg::R1, Reg::R2, 2, 0);
  A.add(Reg::R4, Reg::R4, Reg::R5);
  A.ldb(Reg::R6, Reg::R1, 64);
  A.add(Reg::R4, Reg::R4, Reg::R6);
  A.ldsh(Reg::R7, Reg::R1, 128);
  A.add(Reg::R4, Reg::R4, Reg::R7);
  A.addi(Reg::R2, Reg::R2, 1);
  A.cmpi(Reg::R2, 256);
  A.blt(Sum);
  A.hlt();
  differential(A);
}

TEST(Jit, CallsAndStack) {
  Assembler A(CodeBase);
  Label Fib = A.newLabel();
  A.movi(Reg::R1, 15);
  A.call(Fib);
  A.hlt();
  // Recursive Fibonacci: r0 = fib(r1).
  A.bind(Fib);
  A.cmpi(Reg::R1, 2);
  Label Recurse = A.newLabel();
  A.bge(Recurse);
  A.mov(Reg::R0, Reg::R1);
  A.ret();
  A.bind(Recurse);
  A.push(Reg::R1);
  A.addi(Reg::R1, Reg::R1, -1);
  A.call(Fib);
  A.pop(Reg::R1);
  A.push(Reg::R0);
  A.addi(Reg::R1, Reg::R1, -2);
  A.call(Fib);
  A.pop(Reg::R2);
  A.add(Reg::R0, Reg::R0, Reg::R2);
  A.ret();
  differential(A);
}

TEST(Jit, FloatingPointKernel) {
  Assembler A(CodeBase);
  // Dot product of two small vectors built on the fly.
  A.movi(Reg::R1, DataBase);
  A.movi(Reg::R2, 0);
  A.fmovi(FReg::F0, 0.5);
  A.fmovi(FReg::F1, 1.25);
  Label Fill = A.boundLabel();
  A.fst(Reg::R1, 0, FReg::F0);
  A.fst(Reg::R1, 512, FReg::F1);
  A.fadd(FReg::F0, FReg::F0, FReg::F1);
  A.fmul(FReg::F1, FReg::F1, FReg::F1);
  A.addi(Reg::R1, Reg::R1, 8);
  A.addi(Reg::R2, Reg::R2, 1);
  A.cmpi(Reg::R2, 32);
  A.blt(Fill);
  A.movi(Reg::R1, DataBase);
  A.movi(Reg::R2, 0);
  A.fmovi(FReg::F2, 0.0);
  Label Dot = A.boundLabel();
  A.fld(FReg::F3, Reg::R1, 0);
  A.fld(FReg::F4, Reg::R1, 512);
  A.fmul(FReg::F5, FReg::F3, FReg::F4);
  A.fadd(FReg::F2, FReg::F2, FReg::F5);
  A.addi(Reg::R1, Reg::R1, 8);
  A.addi(Reg::R2, Reg::R2, 1);
  A.cmpi(Reg::R2, 32);
  A.blt(Dot);
  A.fdtoi(Reg::R3, FReg::F2);
  A.fcmp(FReg::F2, FReg::F5);
  Label Bigger = A.newLabel();
  A.bgt(Bigger);
  A.movi(Reg::R4, 111);
  A.hlt();
  A.bind(Bigger);
  A.movi(Reg::R4, 222);
  A.hlt();
  differential(A);
}

TEST(Jit, SimdLanes) {
  Assembler A(CodeBase);
  A.movi(Reg::R1, 0x7F010203);
  A.movi(Reg::R2, 0x01FF0402);
  A.vadd8(Reg::R3, Reg::R1, Reg::R2);
  A.vsub8(Reg::R4, Reg::R1, Reg::R2);
  A.vcmpgt8(Reg::R5, Reg::R1, Reg::R2);
  A.hlt();
  differential(A);
}

TEST(Jit, CpuInfoDirtyHelper) {
  Assembler A(CodeBase);
  A.movi(Reg::R0, 1);
  A.movi(Reg::R1, 2);
  A.cpuinfo();
  A.add(Reg::R2, Reg::R0, Reg::R1);
  A.hlt();
  differential(A);
}

TEST(Jit, PopIntoStackPointer) {
  Assembler A(CodeBase);
  A.movi(Reg::R1, DataBase + 64);
  A.push(Reg::R1); // stash a pointer
  A.pop(Reg::SP);  // SP = loaded value (x86-style pop-into-sp semantics)
  A.mov(Reg::R2, Reg::SP);
  A.movi(Reg::SP, StackTop); // restore for a clean HLT comparison
  A.hlt();
  differential(A);
}

TEST(Jit, FaultBehaviourMatchesNative) {
  Assembler A(CodeBase);
  A.movi(Reg::R1, 0x00FF0000); // unmapped
  A.ld(Reg::R2, Reg::R1, 0);
  A.hlt();
  std::vector<uint8_t> Img = A.finalize();

  MiniJit J;
  J.load(Img);
  EXPECT_EQ(J.run(), ir::JumpKind::SigSEGV);
}

TEST(Jit, DivisionEdgeCases) {
  Assembler A(CodeBase);
  A.movi(Reg::R1, 100);
  A.movi(Reg::R2, 0);
  A.divu(Reg::R3, Reg::R1, Reg::R2);
  A.divs(Reg::R4, Reg::R1, Reg::R2);
  A.movi(Reg::R5, 0x80000000);
  A.movi(Reg::R6, 0xFFFFFFFF);
  A.divs(Reg::R7, Reg::R5, Reg::R6); // INT_MIN / -1 wraps
  A.divu(Reg::R8, Reg::R5, Reg::R6);
  A.hlt();
  differential(A);
}

TEST(Jit, SelfContainedChasingAcrossJumps) {
  Assembler A(CodeBase);
  Label L1 = A.newLabel(), L2 = A.newLabel(), L3 = A.newLabel();
  A.movi(Reg::R1, 1);
  A.jmp(L2);
  A.bind(L1);
  A.addi(Reg::R1, Reg::R1, 100);
  A.jmp(L3);
  A.bind(L2);
  A.addi(Reg::R1, Reg::R1, 10);
  A.jmp(L1);
  A.bind(L3);
  A.hlt();
  differential(A);
}

//===----------------------------------------------------------------------===//
// Randomised differential sweep (property test)
//===----------------------------------------------------------------------===//

class RandomProgram : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomProgram, JitMatchesNative) {
  std::mt19937 Rng(GetParam() * 2654435761u + 12345);
  auto Pick = [&](uint32_t N) { return Rng() % N; };

  Assembler A(CodeBase);
  // Seed registers deterministically.
  for (unsigned R = 0; R != 12; ++R)
    A.movi(static_cast<Reg>(R), Rng());
  A.movi(Reg::R12, DataBase);
  A.fmovi(FReg::F0, 1.5);
  A.fmovi(FReg::F1, -2.25);

  const unsigned NumOps = 120;
  for (unsigned I = 0; I != NumOps; ++I) {
    Reg Rd = static_cast<Reg>(Pick(12));
    Reg Rs = static_cast<Reg>(Pick(12));
    Reg Rt = static_cast<Reg>(Pick(12));
    switch (Pick(20)) {
    case 0:
      A.add(Rd, Rs, Rt);
      break;
    case 1:
      A.sub(Rd, Rs, Rt);
      break;
    case 2:
      A.and_(Rd, Rs, Rt);
      break;
    case 3:
      A.or_(Rd, Rs, Rt);
      break;
    case 4:
      A.xor_(Rd, Rs, Rt);
      break;
    case 5:
      A.shl(Rd, Rs, Rt);
      break;
    case 6:
      A.shr(Rd, Rs, Rt);
      break;
    case 7:
      A.sar(Rd, Rs, Rt);
      break;
    case 8:
      A.mul(Rd, Rs, Rt);
      break;
    case 9:
      A.divu(Rd, Rs, Rt);
      break;
    case 10:
      A.addi(Rd, Rs, static_cast<int32_t>(Rng()));
      break;
    case 11:
      A.vadd8(Rd, Rs, Rt);
      break;
    case 12:
      A.vcmpgt8(Rd, Rs, Rt);
      break;
    case 13: { // in-bounds store: mask index into the data region
      A.andi(Reg::R13, Rs, DataSize - 4);
      A.add(Reg::R13, Reg::R13, Reg::R12);
      A.st(Reg::R13, 0, Rt);
      break;
    }
    case 14: { // in-bounds load
      A.andi(Reg::R13, Rs, DataSize - 4);
      A.add(Reg::R13, Reg::R13, Reg::R12);
      A.ld(Rd, Reg::R13, 0);
      break;
    }
    case 15: { // forward conditional skip
      A.cmp(Rs, Rt);
      Label Skip = A.newLabel();
      A.bcc(static_cast<Cond>(Pick(NumConds)), Skip);
      A.addi(Rd, Rd, 1);
      A.xor_(Rt == Rd ? Rs : Rt, Rd, Rs);
      A.bind(Skip);
      break;
    }
    case 16:
      A.fadd(FReg::F0, FReg::F0, FReg::F1);
      break;
    case 17:
      A.fmul(FReg::F1, FReg::F1, FReg::F0);
      break;
    case 18:
      A.fitod(static_cast<FReg>(Pick(8)), Rs);
      break;
    case 19:
      A.fdtoi(Rd, static_cast<FReg>(Pick(4)));
      break;
    }
  }
  A.hlt();
  differential(A);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomProgram, ::testing::Range(0u, 24u));

//===----------------------------------------------------------------------===//
// D&R totality: original bytes are dead after translation
//===----------------------------------------------------------------------===//

TEST(Jit, OriginalCodeNeverExecuted) {
  // After translation, corrupt the original guest bytes. Execution must be
  // unaffected because final code is generated purely from the IR
  // (Section 3.5: none of the client's original code is run).
  Assembler A(CodeBase);
  A.movi(Reg::R1, 42);
  A.hlt();
  std::vector<uint8_t> Img = A.finalize();

  MiniJit J;
  J.load(Img);
  FetchFn F = J.fetch();
  TranslatedBlock TB = translateBlock(CodeBase, F, J.Opts);

  // Scribble over the code.
  std::vector<uint8_t> Junk(Img.size(), 0xFF);
  ASSERT_FALSE(J.Mem.write(CodeBase, Junk.data(),
                           static_cast<uint32_t>(Junk.size()), true)
                   .Faulted);

  hvm::Executor Exec(J.Ctx, gso::PC);
  hvm::RunOutcome O = Exec.run(TB.Blob);
  EXPECT_EQ(O.JK, ir::JumpKind::Exit);
  EXPECT_EQ(J.reg(1), 42u);
}

} // namespace
