# Empty dependencies file for fig123_pipeline.
# This may be replaced when dependencies are built.
