//===-- server/TransProto.cpp - Translation-server wire protocol ----------==//

#include "server/TransProto.h"

#include <chrono>
#include <cstring>

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0 // a dead peer then raises SIGPIPE; Linux has it
#endif

using namespace vg;
using namespace vg::srv;

void srv::putU32(std::vector<uint8_t> &B, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    B.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void srv::putU64(std::vector<uint8_t> &B, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    B.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

uint32_t srv::getU32(const uint8_t *P) {
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(P[I]) << (8 * I);
  return V;
}

uint64_t srv::getU64(const uint8_t *P) {
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  return V;
}

namespace {

double nowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// Remaining milliseconds until \p Deadline (seconds), or -1 for "block".
int remainingMs(double Deadline) {
  if (Deadline < 0)
    return -1;
  double Left = (Deadline - nowSeconds()) * 1e3;
  if (Left <= 0)
    return 0;
  return Left > 1e9 ? 1000000000 : static_cast<int>(Left) + 1;
}

/// Reads exactly \p N bytes. \p Progress reports whether any byte landed,
/// so callers can tell an idle timeout from a mid-frame stall.
IoResult readFull(int Fd, uint8_t *Buf, size_t N, double Deadline,
                  bool &Progress) {
  size_t Got = 0;
  while (Got != N) {
    int Wait = remainingMs(Deadline);
    if (Wait == 0)
      return Got || Progress ? IoResult::Error : IoResult::Timeout;
    struct pollfd P = {Fd, POLLIN, 0};
    int R = poll(&P, 1, Wait);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return IoResult::Error;
    }
    if (R == 0)
      return Got || Progress ? IoResult::Error : IoResult::Timeout;
    ssize_t K = recv(Fd, Buf + Got, N - Got, 0);
    if (K == 0)
      return Got || Progress ? IoResult::Error : IoResult::Eof;
    if (K < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      return IoResult::Error;
    }
    Got += static_cast<size_t>(K);
    Progress = true;
  }
  return IoResult::Ok;
}

IoResult writeFull(int Fd, const uint8_t *Buf, size_t N, double Deadline) {
  size_t Put = 0;
  while (Put != N) {
    int Wait = remainingMs(Deadline);
    if (Wait == 0)
      return IoResult::Timeout;
    struct pollfd P = {Fd, POLLOUT, 0};
    int R = poll(&P, 1, Wait);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return IoResult::Error;
    }
    if (R == 0)
      return IoResult::Timeout;
    ssize_t K = send(Fd, Buf + Put, N - Put, MSG_NOSIGNAL);
    if (K < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      return IoResult::Error; // includes EPIPE: peer is gone
    }
    Put += static_cast<size_t>(K);
  }
  return IoResult::Ok;
}

} // namespace

IoResult srv::writeFrame(int Fd, MsgType Type, const uint8_t *Body,
                         size_t Len, int TimeoutMs) {
  if (Len > MaxFrameBody)
    return IoResult::Malformed;
  double Deadline = TimeoutMs < 0 ? -1 : nowSeconds() + TimeoutMs * 1e-3;
  std::vector<uint8_t> Buf;
  Buf.reserve(FrameHeaderSize + Len);
  Buf.insert(Buf.end(), FrameMagic, FrameMagic + 4);
  Buf.push_back(static_cast<uint8_t>(Type));
  putU32(Buf, static_cast<uint32_t>(Len));
  if (Len)
    Buf.insert(Buf.end(), Body, Body + Len);
  return writeFull(Fd, Buf.data(), Buf.size(), Deadline);
}

IoResult srv::readFrame(int Fd, Frame &Out, int TimeoutMs) {
  double Deadline = TimeoutMs < 0 ? -1 : nowSeconds() + TimeoutMs * 1e-3;
  uint8_t Hdr[FrameHeaderSize];
  bool Progress = false;
  IoResult R = readFull(Fd, Hdr, sizeof(Hdr), Deadline, Progress);
  if (R != IoResult::Ok)
    return R;
  if (std::memcmp(Hdr, FrameMagic, 4) != 0)
    return IoResult::Malformed;
  uint32_t Len = getU32(Hdr + 5);
  if (Len > MaxFrameBody)
    return IoResult::Malformed;
  Out.Type = static_cast<MsgType>(Hdr[4]);
  Out.Body.resize(Len);
  if (Len) {
    R = readFull(Fd, Out.Body.data(), Len, Deadline, Progress);
    if (R != IoResult::Ok)
      // A truncated body (peer closed or stalled mid-frame) can never be
      // interpreted; surface it as Malformed so both sides drop the
      // connection rather than resynchronise on garbage.
      return R == IoResult::Error || R == IoResult::Eof ? IoResult::Malformed
                                                        : R;
  }
  return IoResult::Ok;
}

static int makeUnixAddr(const std::string &Path, struct sockaddr_un &SA) {
  if (Path.size() >= sizeof(SA.sun_path))
    return -1;
  std::memset(&SA, 0, sizeof(SA));
  SA.sun_family = AF_UNIX;
  std::memcpy(SA.sun_path, Path.c_str(), Path.size() + 1);
  return 0;
}

int srv::connectUnix(const std::string &Path) {
  struct sockaddr_un SA;
  if (makeUnixAddr(Path, SA) < 0)
    return -1;
  int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  for (;;) {
    if (connect(Fd, reinterpret_cast<struct sockaddr *>(&SA), sizeof(SA)) ==
        0)
      return Fd;
    if (errno == EINTR)
      continue;
    close(Fd);
    return -1;
  }
}

int srv::listenUnix(const std::string &Path, int Backlog) {
  struct sockaddr_un SA;
  if (makeUnixAddr(Path, SA) < 0)
    return -1;
  int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  unlink(Path.c_str()); // a stale socket from a dead daemon
  if (bind(Fd, reinterpret_cast<struct sockaddr *>(&SA), sizeof(SA)) < 0 ||
      listen(Fd, Backlog) < 0) {
    close(Fd);
    return -1;
  }
  return Fd;
}
