//===-- server/TransServerClient.cpp - --tt-server client -----------------==//

#include "server/TransServerClient.h"

#include <unistd.h>

using namespace vg;
using namespace vg::srv;

TransServerClient::~TransServerClient() { closeFd(); }

void TransServerClient::closeFd() {
  if (Fd >= 0) {
    close(Fd);
    Fd = -1;
  }
}

bool TransServerClient::request(MsgType Type,
                                const std::vector<uint8_t> &Body,
                                Frame &Reply, CallStats *CS) {
  if (Dead)
    return false;
  ++S.Requests;
  if (CS)
    CS->Attempted = true;
  for (int Attempt = 0; Attempt <= C.MaxRetries; ++Attempt) {
    if (Attempt) {
      ++S.Retries;
      if (CS)
        ++CS->Retries;
      // Exponential backoff, capped: a daemon mid-restart gets a breather
      // without the guest thread ever sleeping long enough to notice.
      long Ms = static_cast<long>(C.BackoffBaseMs) << (Attempt - 1);
      if (Ms > 50)
        Ms = 50;
      if (Ms > 0)
        usleep(static_cast<useconds_t>(Ms) * 1000);
    }
    if (Fd < 0) {
      Fd = connectUnix(C.SocketPath);
      if (Fd < 0)
        continue; // daemon gone or not yet up; backoff and retry
      ++S.Reconnects;
    }
    if (writeFrame(Fd, Type, Body.data(), Body.size(), C.TimeoutMs) !=
        IoResult::Ok) {
      closeFd();
      continue;
    }
    IoResult R = readFrame(Fd, Reply, C.TimeoutMs);
    if (R == IoResult::Ok) {
      Strikes = 0;
      return true;
    }
    if (R == IoResult::Timeout) {
      ++S.Timeouts;
      if (CS)
        ++CS->Timeouts;
    }
    // Timeout/EOF/malformed/error all poison the connection: the stream
    // may hold a half-delivered reply, so resynchronising is hopeless.
    closeFd();
  }
  if (++Strikes >= C.MaxStrikes)
    Dead = true; // latch: no more socket traffic this run
  return false;
}

TransServerClient::FetchResult
TransServerClient::get(uint64_t Cfg, uint64_t Key,
                       std::vector<uint8_t> &Image, CallStats *CS) {
  if (Dead) {
    ++S.Fallbacks;
    return FetchResult::Failed;
  }
  std::vector<uint8_t> Body;
  putU64(Body, Cfg);
  putU64(Body, Key);
  Frame Reply;
  if (!request(MsgType::Get, Body, Reply, CS)) {
    ++S.Fallbacks;
    return FetchResult::Failed;
  }
  switch (Reply.Type) {
  case MsgType::Hit:
    ++S.Hits;
    S.BytesFetched += Reply.Body.size();
    Image = std::move(Reply.Body);
    return FetchResult::Hit;
  case MsgType::Miss:
  case MsgType::Err: // daemon understood but could not serve: a plain miss
    ++S.Misses;
    return FetchResult::Miss;
  default:
    // Reply desync — drop the connection and degrade this lookup.
    closeFd();
    ++S.Fallbacks;
    return FetchResult::Failed;
  }
}

bool TransServerClient::put(uint64_t Cfg, uint64_t Key,
                            const std::vector<uint8_t> &Image,
                            CallStats *CS) {
  if (Dead)
    return false;
  std::vector<uint8_t> Body;
  Body.reserve(16 + Image.size());
  putU64(Body, Cfg);
  putU64(Body, Key);
  Body.insert(Body.end(), Image.begin(), Image.end());
  Frame Reply;
  if (!request(MsgType::Put, Body, Reply, CS) ||
      Reply.Type != MsgType::Ok) {
    ++S.PutFailures;
    return false;
  }
  ++S.Puts;
  S.BytesSent += Image.size();
  return true;
}

void TransServerClient::poison(uint64_t Cfg, uint32_t Addr, uint32_t Len,
                               CallStats *CS) {
  if (Dead)
    return;
  std::vector<uint8_t> Body;
  putU64(Body, Cfg);
  Body.push_back(0); // All = false
  putU32(Body, Addr);
  putU32(Body, Len);
  Frame Reply;
  request(MsgType::Poison, Body, Reply, CS); // best-effort
}

void TransServerClient::poisonAll(uint64_t Cfg, CallStats *CS) {
  if (Dead)
    return;
  std::vector<uint8_t> Body;
  putU64(Body, Cfg);
  Body.push_back(1); // All = true
  putU32(Body, 0);
  putU32(Body, 0);
  Frame Reply;
  request(MsgType::Poison, Body, Reply, CS); // best-effort
}
