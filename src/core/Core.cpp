//===-- core/Core.cpp - The Valgrind core ---------------------------------==//

#include "core/Core.h"

#include "core/ClientRequests.h"
#include "shadow/ShadowMemory.h"
#include "support/Errors.h"
#include "support/Hashing.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace vg;
using namespace vg::vg1;

//===----------------------------------------------------------------------===//
// Construction and options
//===----------------------------------------------------------------------===//

Tool::~Tool() = default;

Core::Core(Tool *ToolPlugin)
    : XS(std::make_unique<TranslationService>(
          static_cast<TranslationHost &>(*this), Memory, 1u << 14)),
      TT(XS->transTab()), ToolPlugin(ToolPlugin), FastCache(FastCacheSize),
      Spec(vg1SpecFn()) {
  Opts.addOption("smc-check", "stack",
                 "when to check for self-modifying code: none|stack|all");
  Opts.addOption("chaining", "no",
                 "chain translations directly (ablation of Section 3.9)");
  Opts.addOption("hot-threshold", "0",
                 "executions before a block is retranslated as a "
                 "branch-chased superblock (0 = off)");
  Opts.addOption("trace-tier", "no",
                 "stitch hot superblock chains into optimised traces "
                 "(tier 2; needs --chaining and --hot-threshold)");
  Opts.addOption("trace-threshold", "0",
                 "executions before a hot superblock is considered for "
                 "trace formation (0 = 4x hot-threshold)");
  Opts.addOption("trace-max-blocks", "8",
                 "maximum superblocks stitched into one trace (2-8)");
  Opts.addOption("profile", "no",
                 "record per-phase translation time and per-block execution "
                 "counts; dump a ranked hot-block report at exit");
  Opts.addOption("stack-switch-threshold", "2097152",
                 "SP jumps above this many bytes are stack switches");
  Opts.addOption("log-file", "", "send tool output to a file");
  Opts.addOption("verify-ir", "no", "typecheck IR between phases");
  Opts.addOption("no-iropt", "no",
                 "ablation: disable Phase 2 optimisation and cc-thunk "
                 "specialisation (Section 3.5 bench)");
  Opts.addOption("suppressions", "",
                 "inline suppression spec (Kind or Kind:0xLO-0xHI; ';' "
                 "separates entries)");
  Opts.addOption("fault-inject", "",
                 "deterministic fault plan: kind[:rate],...,seed=N — kinds "
                 "are syscall, shortio, mempressure, wakeup, sigstorm, "
                 "preempt, ttflush, or 'all'");
  Opts.addOption("trace-events", "no",
                 "record Table-1 events, syscalls, signals, and thread "
                 "switches in a ring buffer: no|yes|<capacity>");
  Opts.addOption("trace-dump", "no",
                 "dump the event trace at exit (a fatal signal always "
                 "dumps it)");
  Opts.addOption("jit-threads", "0",
                 "background translation workers for hot-block promotion "
                 "(0 = fully synchronous, deterministic)");
  Opts.addOption("jit-queue-depth", "8",
                 "bounded promotion-queue depth; a full queue falls back "
                 "to inline translation");
  Opts.addOption("tt-cache", "",
                 "directory for the persistent translation cache: warm "
                 "runs install serialized translations instead of "
                 "re-running the pipeline (empty = off)");
  Opts.addOption("tt-cache-max-mb", "256",
                 "size budget for the --tt-cache directory in MiB; oldest "
                 "entries are evicted to fit (0 = unbounded)");
  Opts.addOption("tt-server", "",
                 "Unix-domain socket of a vgserve translation daemon, "
                 "consulted on a local-cache miss; fetched entries are "
                 "re-validated before install and any server failure "
                 "degrades to the local cache / inline JIT (empty = off)");
  Opts.addOption("tt-server-timeout-ms", "200",
                 "per-request deadline for --tt-server traffic; a deadline "
                 "that fires is retried with backoff, then degraded");
  Opts.addOption("sched-threads", "1",
                 "host threads executing guest threads in parallel (1 = the "
                 "serialised big-lock scheduler of Section 3.14; >1 needs a "
                 "tool that declares supportsParallelGuests)");
  if (ToolPlugin)
    ToolPlugin->registerOptions(Opts);
  Kernel = std::make_unique<SimKernel>(AS, &Events, this);
  AS.reserveCoreRegion();
}

Core::~Core() = default;

void Core::applyOptions() {
  std::string S = Opts.getString("smc-check");
  if (S == "none")
    Smc = SmcMode::None;
  else if (S == "all")
    Smc = SmcMode::All;
  else
    Smc = SmcMode::Stack;
  ChainingEnabled = Opts.getBool("chaining");
  HotThreshold = static_cast<uint64_t>(
      Opts.getIntChecked("hot-threshold", 0, INT64_MAX));
  TraceTier = Opts.getBool("trace-tier");
  TraceThreshold = static_cast<uint64_t>(
      Opts.getIntChecked("trace-threshold", 0, INT64_MAX));
  setTraceMaxBlocks(static_cast<unsigned>(
      Opts.getIntChecked("trace-max-blocks", 2, 8)));
  if (Opts.getBool("profile") && !Prof)
    Prof = std::make_unique<Profiler>();
  StackSwitchThreshold =
      static_cast<uint32_t>(Opts.getInt("stack-switch-threshold"));
  if (std::string F = Opts.getString("log-file"); !F.empty())
    Out.openFile(F);
  if (std::string Sup = Opts.getString("suppressions"); !Sup.empty()) {
    std::string Text = Sup;
    std::replace(Text.begin(), Text.end(), ';', '\n');
    Errors.parseSuppressions(Text);
  }
  if (std::string FI = Opts.getString("fault-inject"); !FI.empty()) {
    auto Plan = std::make_unique<FaultPlan>();
    std::string Err;
    if (!Plan->parse(FI, Err))
      fatalError(("--fault-inject: " + Err).c_str());
    Faults = std::move(Plan);
    Kernel->setFaultPlan(Faults.get());
  }
  if (std::string TE = Opts.getString("trace-events");
      !TE.empty() && TE != "no") {
    // "yes" takes the default capacity; anything else must parse cleanly
    // as a positive integer ("--trace-events=4o96" used to silently become
    // capacity 4, truncating the very trace being asked for).
    size_t Cap =
        TE == "yes"
            ? 4096
            : static_cast<size_t>(
                  Opts.getIntChecked("trace-events", 1, INT64_MAX));
    Tracer = std::make_unique<EventTracer>(Cap);
    Tracer->setClock(&Stats.BlocksDispatched);
  }
  TraceDumpAtExit = Opts.getBool("trace-dump");
  SchedThreads = static_cast<unsigned>(
      Opts.getIntChecked("sched-threads", 1, 16));
  if (SchedThreads > 1 && ToolPlugin &&
      !ToolPlugin->supportsParallelGuests()) {
    Out.printf("core: tool '%s' does not support parallel guest execution; "
               "forcing --sched-threads=1\n",
               ToolPlugin->name());
    SchedThreads = 1;
  }
  unsigned JT = static_cast<unsigned>(
      Opts.getIntChecked("jit-threads", 0, 16));
  unsigned QD = static_cast<unsigned>(
      Opts.getIntChecked("jit-queue-depth", 1, 1024));
  if (JT)
    XS->configure(JT, QD);
  std::string CacheDir = Opts.getString("tt-cache");
  std::string ServerSock = Opts.getString("tt-server");
  if (!CacheDir.empty() || !ServerSock.empty()) {
    // The fingerprint covers everything that can change generated code:
    // the tool (its options too — tools register into this same registry)
    // and every core option except the handful that only affect where
    // output/cache files go or what gets *reported* (never what gets
    // *emitted*). --trace-events stays in: it turns on SP-tracking
    // instrumentation. Computed once and shared by the cache and the
    // server client: local files and served images must live in one key
    // space, so a cold --tt-cache run's directory can be served verbatim.
    auto Items = Opts.items();
    std::erase_if(Items, [](const auto &It) {
      return It.first == "tt-cache" || It.first == "tt-cache-max-mb" ||
             It.first == "tt-server" || It.first == "tt-server-timeout-ms" ||
             It.first == "log-file" || It.first == "profile" ||
             It.first == "trace-dump" || It.first == "sched-threads";
    });
    uint64_t CH = TransCache::configHash(
        ToolPlugin ? ToolPlugin->name() : "none", Items);
    if (!CacheDir.empty()) {
      uint64_t MaxMb = static_cast<uint64_t>(
          Opts.getIntChecked("tt-cache-max-mb", 0, 1 << 20));
      XS->attachCache(std::make_unique<TransCache>(
          CacheDir, MaxMb * (1ull << 20), CH));
    }
    if (!ServerSock.empty()) {
      TransServerClient::Config SC;
      SC.SocketPath = ServerSock;
      SC.TimeoutMs = static_cast<int>(
          Opts.getIntChecked("tt-server-timeout-ms", 1, 60000));
      XS->attachServer(std::make_unique<TransServerClient>(SC), CH);
    }
  }
}

int Core::liveThreads() const {
  int N = 0;
  for (const ThreadState &TS : Threads)
    if (TS.Status == ThreadStatus::Runnable)
      ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Start-up (Section 3.3)
//===----------------------------------------------------------------------===//

void Core::loadImage(const GuestImage &Img) {
  if (ToolPlugin)
    ToolPlugin->init(*this);

  // Chain the core onto the deallocation events (after the tool installed
  // its callbacks): unmapped code must lose its translations (Section 3.8:
  // "translations are also evicted when code in shared objects is
  // unloaded").
  {
    auto ToolMunmap = Events.DieMemMunmap;
    Events.DieMemMunmap = [this, ToolMunmap](uint32_t Addr, uint32_t Len) {
      discardTranslations(Addr, Len);
      if (ToolMunmap)
        ToolMunmap(Addr, Len);
    };
    auto ToolBrk = Events.DieMemBrk;
    Events.DieMemBrk = [this, ToolBrk](uint32_t Addr, uint32_t Len) {
      discardTranslations(Addr, Len);
      if (ToolBrk)
        ToolBrk(Addr, Len);
    };
  }

  // --trace-events sees everything from here on, including the start-up
  // mappings below.
  installTracerHooks();

  // The sigreturn trampoline lives in the core's own region: a handler
  // returning normally lands here, which re-enters the core via the
  // sigreturn syscall.
  {
    Assembler TrampAsm(AddressSpace::CoreBase);
    TrampAsm.movi(Reg::R0, SysSigreturn);
    TrampAsm.sys();
    TrampAsm.hlt(); // unreachable
    std::vector<uint8_t> T = TrampAsm.finalize();
    Memory.map(AddressSpace::CoreBase, AddressSpace::PageSize, PermRX);
    Memory.write(AddressSpace::CoreBase, T.data(),
                 static_cast<uint32_t>(T.size()), /*IgnorePerms=*/true);
  }

  uint32_t HighestEnd = 0;
  for (const ImageSegment &S : Img.Segments) {
    uint32_t Len = static_cast<uint32_t>(S.Bytes.size());
    Memory.map(S.Base, Len, S.Perms);
    Memory.write(S.Base, S.Bytes.data(), Len, /*IgnorePerms=*/true);
    AS.add(S.Base, Len, S.Perms,
           (S.Perms & PermExec) ? SegKind::ClientText : SegKind::ClientData,
           (S.Perms & PermExec) ? "text" : "data");
    if (Events.NewMemStartup)
      Events.NewMemStartup(S.Base, Len, S.Perms);
    HighestEnd = std::max(HighestEnd, S.Base + Len);
  }

  // The brk segment starts one page past the highest load segment.
  uint32_t HeapStart = AddressSpace::pageUp(HighestEnd) + AddressSpace::PageSize;
  AS.add(HeapStart, AddressSpace::PageSize, PermRW, SegKind::ClientHeap,
         "brk");
  Memory.map(HeapStart, AddressSpace::PageSize, PermRW);
  if (Events.NewMemStartup)
    Events.NewMemStartup(HeapStart, AddressSpace::PageSize, PermRW);

  // Client stack.
  uint32_t StackTop = 0xBFFF0000;
  uint32_t StackSize = AddressSpace::pageUp(Img.StackSize);
  Memory.map(StackTop - StackSize, StackSize, PermRW);
  AS.add(StackTop - StackSize, StackSize, PermRW, SegKind::ClientStack,
         "stack");
  uint32_t InitSP = StackTop - 64; // start-up setup area
  if (Events.NewMemStartup)
    Events.NewMemStartup(InitSP, StackTop - InitSP, PermRW);

  ThreadState &TS = Threads[0];
  TS.Tid = 0;
  TS.Status = ThreadStatus::Runnable;
  TS.Memory = &Memory;
  TS.StackBase = StackTop;
  TS.StackLimit = StackTop - StackSize;
  TS.TrackedSP = InitSP;
  TS.setGpr(RegSP, InitSP);
  TS.setPCVal(Img.Entry);

  // R8: heap-tracking tools get the replacement allocator. The core
  // redirects the program's allocator symbols (Section 3.13) to host
  // replacements backed by clientMalloc/clientFree, which drive the
  // tool's onMalloc/onFree callbacks and add red zones.
  if (ToolPlugin && ToolPlugin->tracksHeap()) {
    redirectSymbolToHost("malloc", [](Core &C, ThreadState &TS) {
      TS.setGpr(0, C.clientMalloc(TS.Tid, TS.gpr(1), false));
    });
    redirectSymbolToHost("free", [](Core &C, ThreadState &TS) {
      C.clientFree(TS.Tid, TS.gpr(1));
    });
    redirectSymbolToHost("calloc", [](Core &C, ThreadState &TS) {
      uint64_t Total = static_cast<uint64_t>(TS.gpr(1)) * TS.gpr(2);
      TS.setGpr(0, Total > 0xFFFFFFFFull
                       ? 0
                       : C.clientMalloc(TS.Tid,
                                        static_cast<uint32_t>(Total), true));
    });
    redirectSymbolToHost("realloc", [](Core &C, ThreadState &TS) {
      TS.setGpr(0, C.clientRealloc(TS.Tid, TS.gpr(1), TS.gpr(2)));
    });
  }

  // Resolve pending symbol redirections against the image's symbol table
  // (and keep the table so later registrations resolve immediately).
  ImageSymbols = Img.Symbols;
  for (auto &[Sym, Fn] : PendingSymbolRedirects) {
    if (uint32_t Addr = Img.symbol(Sym))
      HostRedirects[Addr] = Fn;
  }
}

void Core::installTracerHooks() {
  if (!Tracer)
    return;
  // Layer the tracer over every EventHub callback, keeping whatever the
  // tool (or the core itself) registered. Note this makes
  // wantsStackEvents() true even for tools that ignore stacks — traced
  // runs deliberately instrument SP changes so the trace is complete.
  EventTracer *Tr = Tracer.get();

  auto P1 = Events.PreRegRead;
  Events.PreRegRead = [Tr, P1](int Tid, uint32_t Off, uint32_t Size,
                               const char *Name) {
    Tr->record(Tid, TraceEvent::PreRegRead, Off, Size);
    if (P1)
      P1(Tid, Off, Size, Name);
  };
  auto P2 = Events.PostRegWrite;
  Events.PostRegWrite = [Tr, P2](int Tid, uint32_t Off, uint32_t Size) {
    Tr->record(Tid, TraceEvent::PostRegWrite, Off, Size);
    if (P2)
      P2(Tid, Off, Size);
  };
  auto P3 = Events.PreMemRead;
  Events.PreMemRead = [Tr, P3](int Tid, uint32_t Addr, uint32_t Len,
                               const char *Name) {
    Tr->record(Tid, TraceEvent::PreMemRead, Addr, Len);
    if (P3)
      P3(Tid, Addr, Len, Name);
  };
  auto P4 = Events.PreMemReadAsciiz;
  Events.PreMemReadAsciiz = [Tr, P4](int Tid, uint32_t Addr,
                                     const char *Name) {
    Tr->record(Tid, TraceEvent::PreMemReadAsciiz, Addr);
    if (P4)
      P4(Tid, Addr, Name);
  };
  auto P5 = Events.PreMemWrite;
  Events.PreMemWrite = [Tr, P5](int Tid, uint32_t Addr, uint32_t Len,
                                const char *Name) {
    Tr->record(Tid, TraceEvent::PreMemWrite, Addr, Len);
    if (P5)
      P5(Tid, Addr, Len, Name);
  };
  auto P6 = Events.PostMemWrite;
  Events.PostMemWrite = [Tr, P6](int Tid, uint32_t Addr, uint32_t Len) {
    Tr->record(Tid, TraceEvent::PostMemWrite, Addr, Len);
    if (P6)
      P6(Tid, Addr, Len);
  };
  auto P7 = Events.NewMemStartup;
  Events.NewMemStartup = [Tr, P7](uint32_t Addr, uint32_t Len,
                                  uint8_t Perms) {
    Tr->record(0, TraceEvent::NewMemStartup, Addr, Len, Perms);
    if (P7)
      P7(Addr, Len, Perms);
  };
  auto P8 = Events.NewMemMmap;
  Events.NewMemMmap = [Tr, P8](uint32_t Addr, uint32_t Len, uint8_t Perms) {
    Tr->record(0, TraceEvent::NewMemMmap, Addr, Len, Perms);
    if (P8)
      P8(Addr, Len, Perms);
  };
  auto P9 = Events.DieMemMunmap;
  Events.DieMemMunmap = [Tr, P9](uint32_t Addr, uint32_t Len) {
    Tr->record(0, TraceEvent::DieMemMunmap, Addr, Len);
    if (P9)
      P9(Addr, Len);
  };
  auto P10 = Events.NewMemBrk;
  Events.NewMemBrk = [Tr, P10](uint32_t Addr, uint32_t Len) {
    Tr->record(0, TraceEvent::NewMemBrk, Addr, Len);
    if (P10)
      P10(Addr, Len);
  };
  auto P11 = Events.DieMemBrk;
  Events.DieMemBrk = [Tr, P11](uint32_t Addr, uint32_t Len) {
    Tr->record(0, TraceEvent::DieMemBrk, Addr, Len);
    if (P11)
      P11(Addr, Len);
  };
  auto P12 = Events.CopyMemMremap;
  Events.CopyMemMremap = [Tr, P12](uint32_t Src, uint32_t Dst,
                                   uint32_t Len) {
    Tr->record(0, TraceEvent::CopyMemMremap, Src, Dst, Len);
    if (P12)
      P12(Src, Dst, Len);
  };
  auto P13 = Events.NewMemStack;
  Events.NewMemStack = [Tr, P13](uint32_t Addr, uint32_t Len) {
    Tr->record(0, TraceEvent::NewMemStack, Addr, Len);
    if (P13)
      P13(Addr, Len);
  };
  auto P14 = Events.DieMemStack;
  Events.DieMemStack = [Tr, P14](uint32_t Addr, uint32_t Len) {
    Tr->record(0, TraceEvent::DieMemStack, Addr, Len);
    if (P14)
      P14(Addr, Len);
  };
  auto P15 = Events.PostFileRead;
  Events.PostFileRead = [Tr, P15](int Tid, uint32_t Fd, uint32_t Addr,
                                  uint32_t Len, const char *Source) {
    Tr->record(Tid, TraceEvent::PostFileRead, Fd, Addr, Len);
    if (P15)
      P15(Tid, Fd, Addr, Len, Source);
  };
  auto P16 = Events.PreSyscall;
  Events.PreSyscall = [Tr, P16](int Tid, uint32_t Num) {
    Tr->record(Tid, TraceEvent::SyscallEnter, Num);
    if (P16)
      P16(Tid, Num);
  };
  auto P17 = Events.PostSyscall;
  Events.PostSyscall = [Tr, P17](int Tid, uint32_t Num, uint32_t Result) {
    Tr->record(Tid, TraceEvent::SyscallExit, Num, Result);
    if (P17)
      P17(Tid, Num, Result);
  };
  auto P18 = Events.FaultInjected;
  Events.FaultInjected = [Tr, P18](int Tid, uint32_t Kind, uint32_t Arg) {
    Tr->record(Tid, TraceEvent::FaultInjected, Kind, Arg);
    if (P18)
      P18(Tid, Kind, Arg);
  };
}

//===----------------------------------------------------------------------===//
// Core-side helpers callable from translated code
//===----------------------------------------------------------------------===//

uint64_t Core::helperSmcCheck(void *Env, uint64_t TransPtr, uint64_t,
                              uint64_t, uint64_t) {
  auto *Ctx = static_cast<ExecContext *>(Env);
  auto *T = reinterpret_cast<Translation *>(static_cast<uintptr_t>(TransPtr));
  GuestMemory &Mem = *Ctx->Mem;
  uint64_t H = 0xcbf29ce484222325ULL;
  for (auto [Lo, Hi] : T->Extents) {
    for (uint32_t A = Lo; A != Hi; ++A) {
      uint8_t B = 0;
      Mem.read(A, &B, 1, /*IgnorePerms=*/true);
      H ^= B;
      H *= 0x100000001b3ULL;
    }
  }
  return H != T->CodeHash ? 1 : 0;
}

uint64_t Core::helperTrackSp(void *Env, uint64_t, uint64_t, uint64_t,
                             uint64_t) {
  auto *Ctx = static_cast<ExecContext *>(Env);
  Core *C = static_cast<Core *>(Ctx->Core);
  // Index through the context's tid, never the scheduler's "current"
  // thread: under --sched-threads=N several contexts execute at once and
  // CurTid is meaningless (satellite of the big-lock break-up — this was
  // the one helper that still assumed the serialised world).
  ThreadState &TS = C->Threads[Ctx->Tid];
  uint32_t NewSP = TS.gpr(RegSP);
  uint32_t Old = TS.TrackedSP;
  if (NewSP == Old)
    return 0;

  // Stack-switch heuristic (Section 3.12): a jump of >= threshold bytes, or
  // a move into a different registered stack, is a switch (no events).
  auto StackOf = [&](uint32_t A) -> int {
    for (const RegisteredStack &R : C->AltStacks)
      if (A >= R.Start && A < R.End)
        return static_cast<int>(R.Id);
    return -1;
  };
  uint32_t Delta = NewSP > Old ? NewSP - Old : Old - NewSP;
  int OldStk = StackOf(Old), NewStk = StackOf(NewSP);
  if (Delta >= C->StackSwitchThreshold || OldStk != NewStk) {
    TS.TrackedSP = NewSP;
    return 0;
  }
  if (NewSP < Old) {
    if (C->Events.NewMemStack)
      C->Events.NewMemStack(NewSP, Old - NewSP);
  } else {
    if (C->Events.DieMemStack)
      C->Events.DieMemStack(Old, NewSP - Old);
  }
  TS.TrackedSP = NewSP;
  return 0;
}

namespace {
// The SMC check hashes guest *memory* only; SP tracking fires stack events
// that mark shadow memory, so it must not preserve cached probe results.
const ir::Callee SmcCheckCallee = {"vg_smc_check", &Core::helperSmcCheck, 0,
                                   /*PreservesShadow=*/true,
                                   /*StateFxComplete=*/true};
const ir::Callee TrackSpCallee = {"vg_track_sp", &Core::helperTrackSp, 0,
                                  /*PreservesShadow=*/false,
                                  /*StateFxComplete=*/true};
const ir::CalleeRegistrar RegisterCallees{&SmcCheckCallee, &TrackSpCallee};
} // namespace

//===----------------------------------------------------------------------===//
// Translation (including the core's own instrumentation)
//===----------------------------------------------------------------------===//

void Core::instrumentBlock(ir::IRSB &SB, uint32_t Addr, Translation *Trans,
                           bool WantSmc,
                           const std::vector<uint32_t> &SeamEntries) {
  // Phase 3 proper: the tool's analysis code.
  if (ToolPlugin)
    ToolPlugin->instrument(SB);

  // R7: stack events. The core instruments SP changes on the tool's behalf
  // (Section 3.12): after every Put of the stack pointer, call the
  // SP-tracking helper (annotated as reading SP so the put stays live).
  if (Events.wantsStackEvents()) {
    std::vector<ir::Stmt *> Old;
    Old.swap(SB.stmts());
    for (ir::Stmt *S : Old) {
      SB.append(S);
      if (S->Kind == ir::StmtKind::Put && S->Offset == gso::gpr(RegSP))
        SB.dirty(&TrackSpCallee, {}, ir::NoTmp, nullptr,
                 {{gso::gpr(RegSP), 4, /*IsWrite=*/false}});
    }
  }

  // Self-modifying-code check (Section 3.16): prepended so a stale block
  // aborts before running any guest work. A trace additionally re-checks at
  // every seam: its constituents were inlined without their own preludes,
  // so a store inside the trace body can invalidate a later constituent —
  // the seam exit aborts there with the guest state consistent (the exit
  // writes the seam PC itself; the dispatcher's SmcFail handler then
  // invalidates the whole trace's extents and resumes at that PC).
  if (WantSmc) {
    auto EmitCheck = [&](uint32_t ResumePC) {
      ir::TmpId Stale = SB.newTmp(ir::Ty::I32);
      SB.dirty(&SmcCheckCallee,
               {SB.constI64(static_cast<uint64_t>(
                   reinterpret_cast<uintptr_t>(Trans)))},
               Stale);
      ir::TmpId Cond = SB.wrTmp(SB.unop(ir::Op::CmpNEZ32, SB.rdTmp(Stale)));
      SB.exit(SB.rdTmp(Cond), ResumePC, ir::JumpKind::SmcFail);
    };
    std::vector<ir::Stmt *> Old;
    Old.swap(SB.stmts());
    EmitCheck(Addr);
    for (ir::Stmt *S : Old) {
      if (!SeamEntries.empty() && S->Kind == ir::StmtKind::IMark &&
          std::find(SeamEntries.begin(), SeamEntries.end(), S->IAddr) !=
              SeamEntries.end())
        EmitCheck(S->IAddr);
      SB.append(S);
    }
  }
}

bool Core::addrOnAnyStack(uint32_t Addr) const {
  for (const ThreadState &TS : Threads)
    if (TS.Status == ThreadStatus::Runnable && Addr >= TS.StackLimit &&
        Addr < TS.StackBase)
      return true;
  for (const RegisteredStack &R : AltStacks)
    if (Addr >= R.Start && Addr < R.End)
      return true;
  return false;
}

void Core::setupTranslation(TranslationOptions &TO, uint32_t PC, bool Hot,
                            Translation *Raw) {
  TO.Spec = Spec;
  TO.Verify = Opts.getBool("verify-ir");
  TO.Prof = Prof.get();
  if (Hot) {
    // Hot tier: chase branches aggressively so the loop body becomes one
    // superblock with chainable internal exits. Cold translations keep the
    // default limits; only blocks that prove hot pay for big-superblock
    // formation.
    TO.Frontend.MaxInsns = 200;
    TO.Frontend.MaxChases = 16;
  }
  if (size_t N = TO.Trace.Entries.size()) {
    // Tier 2: the trace inlines up to N former superblocks, so the limits
    // scale with the path length (capped — the executor frame and the
    // linear-scan allocator put a practical ceiling on block size).
    TO.Frontend.MaxInsns =
        static_cast<uint32_t>(std::min<size_t>(200 * N, 1200));
    TO.Frontend.MaxChases =
        static_cast<uint32_t>(std::min<size_t>(16 * N, 64));
  }
  if (Opts.getBool("no-iropt")) {
    TO.RunOptimise1 = false;
    TO.RunOptimise2 = false;
    TO.Spec = [](ir::IRSB &, const ir::Callee *,
                 const std::vector<ir::Expr *> &) -> ir::Expr * {
      return nullptr; // keep every helper call
    };
  }
  if (Events.wantsStackEvents()) {
    // Every SP write must remain visible to the SP-tracking helper (R7).
    TO.Preserve.Lo = gso::gpr(RegSP);
    TO.Preserve.Hi = gso::gpr(RegSP) + 4;
  }
  // The SMC policy consults live stack geometry, so it is sampled here on
  // the guest thread; a worker running this hook later must not recompute
  // it.
  bool WantSmc = Smc == SmcMode::All ||
                 (Smc == SmcMode::Stack && addrOnAnyStack(PC));
  // An SMC prelude embeds this run's Translation* in the blob, and under
  // --smc-check=stack the decision itself depends on live stack geometry,
  // so such blocks must never be served from (or written to) the
  // persistent cache. Traces are never cacheable either: they encode this
  // run's branch bias and chain graph, which no byte-content key captures.
  Raw->Cacheable = !WantSmc && TO.Trace.Entries.empty();
  // Seam entries (constituents after the head) for the per-seam SMC
  // checks; copied now so the worker-side instrument call needs nothing
  // from the guest thread.
  std::vector<uint32_t> Seams(
      TO.Trace.Entries.empty() ? TO.Trace.Entries.begin()
                               : TO.Trace.Entries.begin() + 1,
      TO.Trace.Entries.end());
  TO.Instrument = [this, PC, Raw, WantSmc,
                   Seams = std::move(Seams)](ir::IRSB &SB) {
    instrumentBlock(SB, PC, Raw, WantSmc, Seams);
  };
}

void Core::noteTranslation(uint32_t PC, const Translation &T,
                           double Seconds) {
  ++Stats.Translations;
  Stats.GuestInsnsTranslated += T.NumInsns;
  Stats.TranslateSeconds += Seconds;
  if (Prof)
    Prof->noteTranslation(PC, T.NumInsns, T.Tier, Seconds);
}

void Core::mergePhaseTimes(const PhaseTimes &PT) {
  if (Prof)
    Prof->mergePhases(PT);
}

void Core::promotionInstalled(Translation *T, uint64_t GenBefore) {
  if (T->Tier == 2)
    ++Stats.TracesFormed;
  else
    ++Stats.HotPromotions;
  if (TT.generation() == GenBefore + 1) {
    // Only the replaced tier-1 block died in the insert: repair its
    // fast-cache line surgically, exactly as the inline promotion path
    // does. Any bigger generation jump (an eviction run) lets the
    // generation check wipe the cache wholesale on the next dispatch.
    FastCacheGen = TT.generation();
    FastCache[hashAddr(T->Addr) & (FastCacheSize - 1)] =
        FastCacheEntry{T->Addr, T};
  }
}

TraceSpec Core::selectTracePath(Translation *Head) {
  // Greedy walk over filled chain slots: at each constituent take the
  // most-traversed outgoing edge, but only while that edge is strongly
  // biased — taken on at least 3/4 of the block's executions. Anything
  // weaker and the guarded side exit replacing the branch would fire
  // constantly, making the trace a net loss. EdgeExecs (not the
  // successor's ExecCount) is the evidence: a successor with other hot
  // predecessors has a large ExecCount even when *this* edge is cold.
  TraceSpec Spec;
  Spec.Entries.push_back(Head->Addr);
  Translation *Cur = Head;
  while (Spec.Entries.size() < TraceMaxBlocks) {
    Translation *Best = nullptr;
    uint64_t BestEdge = 0;
    for (size_t I = 0; I != Cur->Chain.size(); ++I) {
      // Acquire pairs with the release install so the successor's fields
      // (Tier, Addr) are visible; the edge counters are approximate
      // profile data, relaxed is all they need.
      Translation *Succ = Cur->Chain[I].load(std::memory_order_acquire);
      uint64_t Edge =
          I < Cur->EdgeExecs.size()
              ? Cur->EdgeExecs[I].load(std::memory_order_relaxed)
              : 0;
      if (Succ && Succ->Tier == 1 && Edge > BestEdge) {
        Best = Succ;
        BestEdge = Edge;
      }
    }
    if (!Best ||
        BestEdge * 4 < Cur->ExecCount.load(std::memory_order_relaxed) * 3)
      break;
    auto It = std::find(Spec.Entries.begin(), Spec.Entries.end(),
                        Best->Addr);
    if (It != Spec.Entries.end()) {
      // Loop closure. A back-edge to the head is the ideal ending: prefer
      // it as the final target so the installed trace chains to itself.
      if (It == Spec.Entries.begin())
        Spec.PreferredFinal = Head->Addr;
      break;
    }
    Spec.Entries.push_back(Best->Addr);
    Cur = Best;
  }
  return Spec;
}

Translation *Core::promoteHot(uint32_t PC) {
  ++Stats.HotPromotions;
  // insert() replaces the cold translation; its predecessors' chain slots
  // are re-parked and relink to the superblock immediately (TransTab's
  // eager waiter resolution), so the hot path re-forms without further
  // dispatcher round-trips.
  using Clock = std::chrono::steady_clock;
  double T0 =
      std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
  Translation *T = XS->translateSync(PC, /*Hot=*/true);
  double T1 =
      std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
  XS->noteSyncPromotion(T1 - T0);
  return T;
}

void Core::dumpProfile() {
  if (!Prof)
    return;
  const TransTab::Stats &TS = TT.stats();
  ProfCounters C;
  C.BlocksDispatched = Stats.BlocksDispatched;
  C.DispatcherEntries = Stats.BlocksDispatched - Stats.ChainedTransfers;
  C.FastCacheHits = Stats.FastCacheHits;
  C.FastCacheMisses = Stats.FastCacheMisses;
  C.ChainedTransfers = Stats.ChainedTransfers;
  C.Translations = Stats.Translations;
  C.HotPromotions = Stats.HotPromotions;
  C.TableLookups = TS.Lookups;
  C.TableHits = TS.Hits;
  C.ChainsFilled = TS.ChainsFilled;
  C.Unchains = TS.Unchains;
  C.EvictionRuns = TS.EvictionRuns;
  C.Evicted = TS.Evicted;
  C.Invalidated = TS.Invalidated;
  if (ShadowMap *SM = ToolPlugin ? ToolPlugin->shadowMap() : nullptr) {
    const ShadowStats &SS = SM->stats();
    C.HasShadow = true;
    C.ShadowFastLoads = SS.FastLoads;
    C.ShadowSlowLoads = SS.SlowLoads;
    C.ShadowFastStores = SS.FastStores;
    C.ShadowSlowStores = SS.SlowStores;
    C.ShadowSecCacheHits = SS.SecCacheHits;
    C.ShadowSecCacheMisses = SS.SecCacheMisses;
    C.ShadowChunksMaterialised = SS.Materialised;
    C.ShadowChunksReclaimed = SS.Reclaimed;
    C.ShadowChunksLive = SS.LiveChunks;
    C.ShadowChunksHighWater = SS.HighWater;
  }
  C.ThreadSwitches = Stats.ThreadSwitches;
  C.SignalsDelivered = Stats.SignalsDelivered;
  C.SignalsDropped = Stats.SignalsDropped;
  if (Faults) {
    C.HasFaults = true;
    C.FaultRolls = Faults->rolls();
    for (unsigned I = 0; I != NumFaultKinds; ++I) {
      C.FaultsInjected[I] = Faults->injected(static_cast<FaultKind>(I));
      C.FaultNames[I] = faultKindName(static_cast<FaultKind>(I));
    }
  }
  if (XS->jitThreads() > 0) {
    const JitStats &J = XS->jitStats();
    C.HasJit = true;
    C.JitThreads = XS->jitThreads();
    C.JitQueueDepth = XS->queueDepth();
    C.AsyncRequests = J.AsyncRequests;
    C.AsyncCompleted = J.AsyncCompleted;
    C.AsyncInstalled = J.AsyncInstalled;
    C.AsyncDiscardedEpoch = J.AsyncDiscardedEpoch;
    C.AsyncDiscardedStale = J.AsyncDiscardedStale;
    C.AsyncAbandoned = J.AsyncAbandoned;
    C.QueueFullFallbacks = J.QueueFullFallbacks;
    C.WorkerFailures = J.WorkerFailures;
    C.QueueHighWater = J.QueueHighWater;
    C.SyncPromotions = J.SyncPromotions;
    C.InstallLatencySeconds = J.InstallLatencySeconds;
    C.SyncPromoStallSeconds = J.SyncPromoStallSeconds;
    C.EnqueueSeconds = J.EnqueueSeconds;
  }
  if (TraceTier) {
    const JitStats &J = XS->jitStats();
    C.HasTraces = true;
    C.TraceRequests = J.TraceRequests;
    C.TracesFormed = Stats.TracesFormed;
    C.TraceAborts = J.TraceAborts;
    C.TraceExecs = Stats.TraceExecs;
    C.TraceSideExits = Stats.TraceSideExits;
    C.TraceDeadFlagPuts = J.TraceDeadFlagPuts;
    C.TraceProbesCSEd = J.TraceProbesCSEd;
  }
  if (const TransCache *TC = XS->cache()) {
    const JitStats &J = XS->jitStats();
    C.HasTransCache = true;
    C.CacheHits = J.CacheHits;
    C.CacheMisses = J.CacheMisses;
    C.CacheRejects = J.CacheRejects;
    C.CacheWrites = J.CacheWrites;
    C.CacheEvictedFiles = TC->evictedFiles();
    C.CacheDirBytes = TC->totalBytes();
    C.CacheLoadSeconds = J.CacheLoadSeconds;
    C.CacheStoreSeconds = J.CacheStoreSeconds;
  }
  if (const TransServerClient *SC = XS->server()) {
    const JitStats &J = XS->jitStats();
    C.HasTransServer = true;
    C.ServerRequests = J.ServerRequests;
    C.ServerHits = J.ServerHits;
    C.ServerMisses = J.ServerMisses;
    C.ServerRejects = J.ServerRejects;
    C.ServerTimeouts = J.ServerTimeouts;
    C.ServerRetries = J.ServerRetries;
    C.ServerFallbacks = J.ServerFallbacks;
    C.ServerWrites = J.ServerWrites;
    C.ServerBytesFetched = J.ServerBytesFetched;
    C.ServerBytesSent = J.ServerBytesSent;
    C.ServerFetchSeconds = J.ServerFetchSeconds;
    C.ServerAlive = SC->alive();
  }
  if (SchedThreads > 1) {
    C.HasSched = true;
    C.SchedThreads = SchedThreads;
    for (const auto &S : Shards) {
      C.SchedQuanta += S->Quanta;
      C.WorldLockAcquisitions += S->WorldLockAcquisitions;
    }
    C.RunQueuePushes = RunQPushes;
    C.RunQueuePops = RunQPops;
    C.RunQueueWaits = RunQWaits;
    C.TranslationsRetired = TranslationsRetired;
    C.LimboHighWater = LimboHighWater;
  }
  if (Tracer) {
    C.HasTrace = true;
    C.TraceRecorded = Tracer->recorded();
    C.TraceDropped = Tracer->dropped();
    C.TraceSyscalls = Tracer->count(TraceEvent::SyscallEnter);
    C.TraceSignals = Tracer->count(TraceEvent::SigQueue) +
                     Tracer->count(TraceEvent::SigDeliver) +
                     Tracer->count(TraceEvent::SigReturn) +
                     Tracer->count(TraceEvent::SigDrop);
  }
  Prof->report(Out, C);
}

Translation *Core::findOrTranslate(uint32_t PC) {
  if (FastCacheGen != TT.generation()) {
    std::fill(FastCache.begin(), FastCache.end(), FastCacheEntry{});
    FastCacheGen = TT.generation();
  }
  FastCacheEntry &E = FastCache[hashAddr(PC) & (FastCacheSize - 1)];
  if (E.Addr == PC && E.T) {
    ++Stats.FastCacheHits;
    // The table was bypassed, but the lookup still logically happened:
    // fold it into the table's statistics so hit rates stay honest.
    TT.countFastHit();
    return E.T;
  }
  ++Stats.FastCacheMisses;
  Translation *T = TT.lookup(PC);
  if (!T)
    T = XS->translateSync(PC, /*Hot=*/false);
  if (FastCacheGen != TT.generation()) {
    std::fill(FastCache.begin(), FastCache.end(), FastCacheEntry{});
    FastCacheGen = TT.generation();
  }
  FastCache[hashAddr(PC) & (FastCacheSize - 1)] = FastCacheEntry{PC, T};
  return T;
}

const hvm::CodeBlob *Core::chainResolveThunk(void *User, void *Cookie,
                                             uint32_t Slot) {
  Core *C = static_cast<Core *>(User);
  auto *T = static_cast<Translation *>(Cookie);
  // Side-exit accounting: a tier-2 exit through any slot other than the
  // terminal one means a guarded speculation failed and the trace bailed
  // to a constituent. (Counted here because with chaining on — a trace-
  // formation precondition — every constant Boring exit consults this
  // thunk whether or not the slot is filled.)
  if (T->Tier == 2 && Slot != T->Blob.TerminalChainSlot)
    ++C->Stats.TraceSideExits;
  // Acquire pairs with the release install in TransTab::chainTo: a filled
  // slot must imply a fully-initialised successor blob.
  Translation *Succ = Slot < T->Chain.size()
                          ? T->Chain[Slot].load(std::memory_order_acquire)
                          : nullptr;
  if (!Succ)
    return nullptr;
  // A worker published a superblock: bounce to the dispatcher so it can
  // install at a boundary where nothing is executing inside the code
  // cache (an install may evict translations this very chain is standing
  // on). Always false at --jit-threads=0.
  if (C->XS->hasCompleted())
    return nullptr;
  // Hotness accounting happens here too, or chained loops would never
  // cross the threshold. A successor about to go hot bounces back to the
  // dispatcher, which performs the promotion (retranslation must not run
  // while the executor is inside the chain). A block whose promotion is
  // already queued keeps chaining at tier 1 — bouncing every transfer
  // until the worker finishes would cost more than the stall we avoided.
  if (C->HotThreshold && Succ->Tier == 0 &&
      !Succ->PromoPending.load(std::memory_order_relaxed) &&
      Succ->ExecCount.load(std::memory_order_relaxed) + 1 >=
          C->HotThreshold) {
    // The successor is known — the bounce exists only to run the promotion
    // from dispatcher context. Prefill its fast-cache line so the bounced
    // dispatch doesn't pay a table lookup for a block we are holding.
    if (C->FastCacheGen == C->TT.generation())
      C->FastCache[hashAddr(Succ->Addr) & (FastCacheSize - 1)] =
          FastCacheEntry{Succ->Addr, Succ};
    return nullptr;
  }
  // Same bounce for trace formation: a tier-1 successor crossing the trace
  // threshold returns to the dispatcher, which selects the path and
  // stitches (or enqueues the stitch) there — never from inside a chain.
  // TraceRetryAt keeps a head whose chain graph proved unbiased from
  // bouncing every transfer.
  if (C->TraceTier && Succ->Tier == 1 &&
      !Succ->PromoPending.load(std::memory_order_relaxed) &&
      Succ->ExecCount.load(std::memory_order_relaxed) + 1 >=
          C->effTraceThreshold() &&
      Succ->ExecCount.load(std::memory_order_relaxed) + 1 >=
          Succ->TraceRetryAt.load(std::memory_order_relaxed)) {
    if (C->FastCacheGen == C->TT.generation())
      C->FastCache[hashAddr(Succ->Addr) & (FastCacheSize - 1)] =
          FastCacheEntry{Succ->Addr, Succ};
    return nullptr;
  }
  Succ->ExecCount.fetch_add(1, std::memory_order_relaxed);
  if (Slot < T->EdgeExecs.size())
    T->EdgeExecs[Slot].fetch_add(1, std::memory_order_relaxed);
  ++C->Stats.ChainedTransfers;
  if (Succ->Tier == 2)
    ++C->Stats.TraceExecs;
  if (C->Prof)
    C->Prof->noteExec(Succ->Addr);
  return &Succ->Blob;
}

//===----------------------------------------------------------------------===//
// The dispatcher/scheduler (Section 3.9/3.14)
//===----------------------------------------------------------------------===//

void Core::dispatchLoop(ThreadState &TS, uint64_t &Quantum, uint32_t StopPC) {
  ExecContext Ctx;
  Ctx.GuestState = TS.Guest;
  Ctx.Mem = &Memory;
  Ctx.Core = this;
  Ctx.Tool = ToolPlugin;
  Ctx.ShadowSM = ToolPlugin ? ToolPlugin->shadowMap() : nullptr;
  Ctx.Tid = TS.Tid;
  hvm::Executor Exec(Ctx, gso::PC);
  if (ChainingEnabled)
    Exec.setChaining(&chainResolveThunk, this);

  // Lazy chain-fill fallback (register-constant edges the eager linker
  // could not resolve at insert time never reach here; this catches edges
  // whose slot was parked and has since been cancelled). LastGen guards
  // against the cookie dangling after an eviction.
  void *LastCookie = nullptr;
  uint32_t LastSlot = ~0u;
  uint64_t LastGen = 0;

  while (Quantum > 0 && !ProcessExited && !FatalSignal &&
         TS.Status == ThreadStatus::Runnable && !YieldRequested) {
    // Publish finished background promotions. Safe exactly here: nothing
    // is executing inside the code cache between Exec.run calls, so the
    // install may evict/replace translations freely. A no-op single
    // atomic load at --jit-threads=0.
    if (XS->hasCompleted())
      XS->drainCompleted();
    if (Faults)
      injectBoundaryFaults(TS);
    if (deliverPendingSignals(TS)) {
      // A delivery consumes one slice of the quantum on top of the
      // handler's own blocks (counted by Exec.run like any others), so a
      // signal storm cannot starve the other threads.
      Quantum -= std::min<uint64_t>(Quantum, 1);
      continue; // PC changed; redispatch
    }

    uint32_t PC = TS.getPC();
    if (PC == StopPC)
      return;

    // Function redirection (Section 3.13).
    if (auto GR = GuestRedirects.find(PC); GR != GuestRedirects.end()) {
      TS.setPCVal(GR->second);
      continue;
    }
    if (auto HR = HostRedirects.find(PC); HR != HostRedirects.end()) {
      ++Stats.HostRedirectCalls;
      HR->second(*this, TS);
      // Perform the guest return: pop the address CALL pushed.
      uint32_t SP = TS.gpr(RegSP);
      uint32_t Ret = 0;
      if (Memory.read(SP, &Ret, 4, /*IgnorePerms=*/true).Faulted) {
        handleFault(TS, PC, SP, false, SigSEGV);
        continue;
      }
      TS.setGpr(RegSP, SP + 4);
      TS.setPCVal(Ret);
      LastCookie = nullptr;
      continue;
    }

    Translation *T = findOrTranslate(PC);

    // Fill the previous exit's chain slot now that the successor is known.
    // Safe only if no eviction ran since the exit (the cookie would dangle).
    if (ChainingEnabled && LastCookie && LastSlot != ~0u &&
        TT.generation() == LastGen) {
      auto *Prev = static_cast<Translation *>(LastCookie);
      // Only link true fall-through edges: if the exit's recorded constant
      // target is not the PC we dispatched (a guest redirect rewrote it),
      // chaining would bypass the dispatcher's redirect check.
      if (LastSlot < Prev->Blob.ChainTargets.size() &&
          Prev->Blob.ChainTargets[LastSlot] == PC) {
        TT.chainTo(Prev, LastSlot, T);
        // A dispatcher-mediated traversal of this edge (unfilled slot or a
        // thunk bounce) is edge-profile evidence just like a chained one.
        if (LastSlot < Prev->EdgeExecs.size())
          Prev->EdgeExecs[LastSlot].fetch_add(1, std::memory_order_relaxed);
      }
    }
    LastCookie = nullptr;
    LastSlot = ~0u;

    // Hotness tier: promote once a block has proven itself.
    uint64_t Execs = T->ExecCount.fetch_add(1, std::memory_order_relaxed) + 1;
    if (T->Tier == 2)
      ++Stats.TraceExecs;
    if (Prof)
      Prof->noteExec(PC);
    if (HotThreshold && T->Tier == 0 &&
        !T->PromoPending.load(std::memory_order_relaxed) &&
        Execs >= HotThreshold) {
      if (Translation *CT = XS->asyncEnabled() ? XS->promoteFromCache(PC)
                                               : nullptr) {
        // Persistent-cache hit: the superblock was installed synchronously,
        // replacing the tier-1 translation we were about to execute — the
        // old T is dead memory now, so continue with the replacement.
        // (At --jit-threads=0 the inline promoteHot path below consults
        // the cache itself inside translateSync.)
        T = CT;
      } else if (XS->asyncEnabled() && XS->enqueuePromotion(T)) {
        // The promotion compiles in the background; keep executing the
        // tier-1 translation and install the superblock at a later
        // boundary. No stall taken here — that is the whole point.
      } else {
        uint64_t GenBefore = TT.generation();
        T = promoteHot(PC);
        if (TT.generation() == GenBefore + 1) {
          // Only the replaced translation died: repair its fast-cache line
          // surgically instead of letting the generation check wipe the
          // whole cache (every other entry still points at live memory).
          FastCacheGen = TT.generation();
          FastCache[hashAddr(PC) & (FastCacheSize - 1)] =
              FastCacheEntry{PC, T};
        }
      }
    }

    // Trace tier: a tier-1 superblock whose chain edges have proven
    // strongly biased gets its dominant path stitched into one trace.
    // Requires chaining (the chain graph is both the evidence and the
    // profit mechanism) and runs only at this boundary — never inside a
    // chain, where an install could evict code being executed.
    // Re-read the exec count: the promotion above may have replaced T.
    uint64_t TExecs = T->ExecCount.load(std::memory_order_relaxed);
    if (TraceTier && ChainingEnabled && T->Tier == 1 &&
        !T->PromoPending.load(std::memory_order_relaxed) &&
        TExecs >= effTraceThreshold() &&
        TExecs >= T->TraceRetryAt.load(std::memory_order_relaxed)) {
      TraceSpec Spec = selectTracePath(T);
      if (Spec.Entries.size() < 2) {
        // No dominant successor: the chain graph is unbiased at the head.
        // Back off exponentially rather than re-walking it every entry.
        T->TraceRetryAt.store(TExecs * 2, std::memory_order_relaxed);
      } else if (XS->asyncEnabled()) {
        // Queued (PromoPending stops re-requests) or queue-full (retry on
        // a later entry — no stall, no backoff; the bias only grows).
        XS->enqueueTrace(T, Spec);
      } else if (Translation *NT = XS->translateTrace(Spec)) {
        T = NT; // the old T was replaced by the insert: run the trace now
      } else {
        // spill overflow: back off
        T->TraceRetryAt.store(TExecs * 2, std::memory_order_relaxed);
      }
    }

    // The chain budget is Quantum - 1 (this dispatch itself is one block);
    // guard the subtraction — delivery charges above can leave the quantum
    // at 0 exactly when a continue re-entered the loop through a path that
    // does not re-test it.
    uint64_t ChainBudget =
        (ChainingEnabled && Quantum > 0) ? Quantum - 1 : 0;
    hvm::RunOutcome O = Exec.run(T->Blob, ChainBudget);
    Stats.BlocksDispatched += O.BlocksExecuted;
    Quantum -= std::min<uint64_t>(Quantum, O.BlocksExecuted);

    if (O.K == hvm::RunOutcome::Kind::Fault) {
      handleFault(TS, O.FaultPC, O.FaultAddr, O.FaultWrite, SigSEGV);
      continue;
    }

    switch (O.JK) {
    case ir::JumpKind::Boring:
      LastCookie = O.ExitCookie;
      LastSlot = O.ExitSlot;
      LastGen = TT.generation();
      continue;
    case ir::JumpKind::Call:
    case ir::JumpKind::Ret:
      continue;
    case ir::JumpKind::Syscall: {
      SimKernel::Action A = Kernel->onSyscall(TS);
      if (A == SimKernel::Action::Exit) {
        ProcessExited = true;
        ProcessExitCode = Kernel->exitCode();
        stopWorld();
      }
      continue;
    }
    case ir::JumpKind::ClientReq:
      handleClientRequest(TS);
      continue;
    case ir::JumpKind::Yield:
      Quantum = 0;
      continue;
    case ir::JumpKind::Exit:
      ProcessExited = true;
      stopWorld();
      continue;
    case ir::JumpKind::NoDecode:
      handleFault(TS, O.NextPC, O.NextPC, false, SigILL);
      continue;
    case ir::JumpKind::SmcFail: {
      // Stale translation: throw it (and anything else over those bytes)
      // away and retranslate. PC is unchanged.
      ++Stats.SmcRetranslations;
      for (auto [Lo, Hi] : T->Extents)
        XS->invalidate(Lo, Hi - Lo);
      continue;
    }
    case ir::JumpKind::SigSEGV:
      handleFault(TS, O.NextPC, O.NextPC, false, SigSEGV);
      continue;
    }
  }
}

void Core::injectBoundaryFaults(ThreadState &TS) {
  // Signal storm: queue one of the signals the client installed a handler
  // for, as if another process had just kill()ed us at this block boundary.
  if (Faults->roll(FaultKind::SigStorm)) {
    int Installed[64];
    int Count = 0;
    for (int S = 1; S < 64; ++S)
      if (SigHandlers[S])
        Installed[Count++] = S;
    if (Count) {
      int Sig = Installed[Faults->pick(static_cast<uint32_t>(Count))];
      if (Events.FaultInjected)
        Events.FaultInjected(TS.Tid, static_cast<uint32_t>(FaultKind::SigStorm),
                             static_cast<uint32_t>(Sig));
      raiseSignal(TS.Tid, Sig);
    }
  }
  // Translation-table flush pressure: everything retranslates from here.
  if (Faults->roll(FaultKind::TTFlush)) {
    if (Events.FaultInjected)
      Events.FaultInjected(TS.Tid, static_cast<uint32_t>(FaultKind::TTFlush),
                           0);
    // Whole-space flush. Not invalidate(0, 0xFFFFFFFFu): a 32-bit length
    // cannot express the full 4GB and left translations covering the final
    // guest byte alive.
    XS->invalidateAll();
  }
}

CoreExit Core::run(uint64_t MaxBlocks) {
  if (SchedThreads > 1)
    return runParallel(MaxBlocks);
  while (!ProcessExited && !FatalSignal && liveThreads() > 0 &&
         Stats.BlocksDispatched < MaxBlocks) {
    // Round-robin thread choice (the serialised big lock of Section 3.14:
    // exactly one thread ever runs).
    int Next = -1;
    for (int I = 1; I <= MaxThreads; ++I) {
      int Cand = (CurTid + I) % MaxThreads;
      if (Threads[Cand].Status == ThreadStatus::Runnable) {
        Next = Cand;
        break;
      }
    }
    if (Next < 0)
      break;
    if (Next != CurTid) {
      ++Stats.ThreadSwitches;
      if (Tracer)
        Tracer->record(Next, TraceEvent::ThreadSwitch,
                       static_cast<uint32_t>(CurTid),
                       static_cast<uint32_t>(Next));
    }
    CurTid = Next;
    YieldRequested = false;
    uint64_t Quantum =
        std::min<uint64_t>(ThreadQuantum, MaxBlocks - Stats.BlocksDispatched);
    // Forced preemption: shrink this slice to a single block, shaking out
    // scheduling assumptions the 100k-block quantum normally hides.
    if (Faults && Quantum > 1 && Faults->roll(FaultKind::Preempt)) {
      if (Events.FaultInjected)
        Events.FaultInjected(CurTid, static_cast<uint32_t>(FaultKind::Preempt),
                             1);
      Quantum = 1;
    }
    dispatchLoop(Threads[CurTid], Quantum, /*StopPC=*/0xFFFFFFFF);
  }

  return finishRun();
}

CoreExit Core::finishRun() {
  // Stop the translation workers before reporting: unpublished jobs are
  // abandoned (counted), and the counters below must be final. Any
  // callGuest from a tool's fini degrades to inline promotion.
  XS->shutdown();

  if (ToolPlugin)
    ToolPlugin->fini(ProcessExitCode);
  dumpProfile();
  if (Tracer && (TraceDumpAtExit || FatalSignal))
    Tracer->dump(Out);

  CoreExit E;
  if (FatalSignal) {
    E.K = CoreExit::Kind::FatalSignal;
    E.Signal = FatalSignal;
  } else if (!ProcessExited) {
    E.K = CoreExit::Kind::BlockLimit;
  } else {
    E.Code = ProcessExitCode;
  }
  return E;
}

//===----------------------------------------------------------------------===//
// The sharded scheduler (--sched-threads=N, DESIGN section 14)
//===----------------------------------------------------------------------===//
//
// The serial scheduler above *is* the big lock of Section 3.14: one host
// thread, one guest thread at a time. runParallel breaks it: N host
// "shards" each pop a runnable guest thread from the run queue and execute
// one quantum concurrently. The big lock survives in miniature as WorldMu,
// held only for block-boundary slow work (translate, chain, promote,
// signals, syscalls, client requests); Exec.run and the chain-resolve
// thunk — where virtually all time goes for a CPU-bound guest — run with
// no lock at all.
//
// Memory reclamation is the crux. A shard executing inside the code cache
// holds raw Translation pointers no lock protects, so nothing another
// shard invalidates may be freed while it could still be running. The
// scheme is quiescent-state-based: each shard, at the top of every
// dispatch iteration (provably outside all translations), republishes the
// global epoch as its LocalEpoch; retiring a translation stamps it with a
// freshly incremented epoch and parks it in Limbo; a limbo entry is freed
// once every shard has announced an epoch at or past its stamp. A parked
// shard announces ~0 (it holds nothing). The same deferred-destruction
// idea covers guest pages and shadow chunks via their graveyards.

CoreExit Core::runParallel(uint64_t MaxBlocks) {
  MaxBlocksMT = MaxBlocks;
  // Unmapped guest pages and reclaimed shadow chunks must survive until
  // the run ends: lock-free readers (helpers, other shards' Exec.run) may
  // still be dereferencing them.
  Memory.setDeferredReclaim(true);
  if (ShadowMap *SM = ToolPlugin ? ToolPlugin->shadowMap() : nullptr)
    SM->setDeferredReclaim(true);
  TT.setRetireHook([this](std::unique_ptr<Translation> T) {
    retireTranslation(std::move(T));
  });
  if (Tracer)
    Tracer->setAtomicClock(&GlobalBlockClock);

  RunQ = std::make_unique<RunQueue>();
  for (int I = 0; I != MaxThreads; ++I)
    if (Threads[I].Status == ThreadStatus::Runnable)
      RunQ->push(I);

  Shards.clear();
  for (unsigned I = 0; I != SchedThreads; ++I) {
    auto S = std::make_unique<ShardCtx>();
    S->C = this;
    S->Index = I;
    S->FastCache.resize(FastCacheSize);
    Shards.push_back(std::move(S));
  }
  {
    std::vector<std::thread> Workers;
    Workers.reserve(SchedThreads);
    for (auto &S : Shards)
      Workers.emplace_back([this, &S] { shardMain(*S); });
    for (auto &W : Workers)
      W.join();
  }

  // Single-threaded again: merge the shards' lock-free counters, settle
  // the block clock, and drain what the grace periods held back.
  for (auto &S : Shards) {
    Stats.ChainedTransfers += S->ChainedTransfers;
    Stats.TraceExecs += S->TraceExecs;
    Stats.TraceSideExits += S->TraceSideExits;
  }
  Stats.BlocksDispatched = GlobalBlockClock.load(std::memory_order_relaxed);
  RunQPushes = RunQ->pushes();
  RunQPops = RunQ->pops();
  RunQWaits = RunQ->waits();
  TT.setRetireHook({});
  Limbo.clear();
  RunQ.reset();
  return finishRun();
}

void Core::shardMain(ShardCtx &S) {
  while (true) {
    // Parked: this shard holds no translation pointers and blocks no
    // reclamation.
    S.LocalEpoch.store(~0ull, std::memory_order_release);
    int Tid = RunQ->pop();
    if (Tid == RunQueue::Shutdown)
      return;
    ++S.Quanta;
    dispatchLoopMT(S, Threads[Tid]);
    S.LocalEpoch.store(~0ull, std::memory_order_release);
    if (ProcessExited.load(std::memory_order_acquire) ||
        FatalSignal.load(std::memory_order_acquire)) {
      RunQ->shutdown();
      return;
    }
    if (GlobalBlockClock.load(std::memory_order_relaxed) >= MaxBlocksMT) {
      RunQ->shutdown();
      return;
    }
    if (Threads[Tid].Status == ThreadStatus::Runnable)
      RunQ->push(Tid);
  }
}

void Core::dispatchLoopMT(ShardCtx &S, ThreadState &TS) {
  ExecContext Ctx;
  Ctx.GuestState = TS.Guest;
  Ctx.Mem = &Memory;
  Ctx.Core = this;
  Ctx.Tool = ToolPlugin;
  Ctx.ShadowSM = ToolPlugin ? ToolPlugin->shadowMap() : nullptr;
  Ctx.Tid = TS.Tid;
  hvm::Executor Exec(Ctx, gso::PC);
  if (ChainingEnabled)
    Exec.setChaining(&chainResolveThunkMT, &S);

  YieldFlags[TS.Tid].store(false, std::memory_order_relaxed);
  uint64_t Clock = GlobalBlockClock.load(std::memory_order_relaxed);
  uint64_t Quantum = std::min<uint64_t>(
      ThreadQuantum, MaxBlocksMT - std::min(MaxBlocksMT, Clock));

  void *LastCookie = nullptr;
  uint32_t LastSlot = ~0u;
  uint32_t LastAddr = 0;

  while (Quantum > 0 && !ProcessExited.load(std::memory_order_acquire) &&
         !FatalSignal.load(std::memory_order_acquire) &&
         TS.Status == ThreadStatus::Runnable &&
         !YieldFlags[TS.Tid].load(std::memory_order_relaxed)) {
    // Quiescent point: between Exec.run calls this shard holds no
    // translation pointer except LastCookie — and that one is only ever
    // dereferenced after the residency check below proves the table still
    // maps LastAddr to this exact pointer.
    S.LocalEpoch.store(GlobalEpoch.load(std::memory_order_acquire),
                       std::memory_order_release);

    Translation *T;
    {
      std::lock_guard<std::mutex> World(WorldMu);
      ++S.WorldLockAcquisitions;
      if (XS->hasCompleted())
        XS->drainCompleted();
      if (Faults)
        injectBoundaryFaults(TS);
      if (deliverPendingSignals(TS)) {
        Quantum -= std::min<uint64_t>(Quantum, 1);
        continue;
      }

      uint32_t PC = TS.getPC();
      if (auto GR = GuestRedirects.find(PC); GR != GuestRedirects.end()) {
        TS.setPCVal(GR->second);
        continue;
      }
      if (auto HR = HostRedirects.find(PC); HR != HostRedirects.end()) {
        ++Stats.HostRedirectCalls;
        // The replacement body runs under the world lock, including any
        // callGuest re-entry (which uses the serial dispatchLoop and the
        // core's own fast cache — both world-lock property in MT). Host
        // replacements are slow-path by contract.
        HR->second(*this, TS);
        uint32_t SP = TS.gpr(RegSP);
        uint32_t Ret = 0;
        if (Memory.read(SP, &Ret, 4, /*IgnorePerms=*/true).Faulted) {
          handleFault(TS, PC, SP, false, SigSEGV);
          continue;
        }
        TS.setGpr(RegSP, SP + 4);
        TS.setPCVal(Ret);
        LastCookie = nullptr;
        continue;
      }

      T = findOrTranslateMT(S, PC);

      // Lazy chain-fill, exactly as in the serial loop — but the serial
      // loop's generation check is NOT sufficient proof here that
      // LastCookie still points at a live translation. Another shard can
      // retire the very translation this shard is executing (promotion
      // install, eviction, SMC flush) *before* the Boring exit saves the
      // cookie, so the saved generation already includes that retirement
      // and the compare passes on a limbo'd — soon freed — object. Worse
      // than the dangling read: chaining through such a cookie injects a
      // back-edge from a retired translation into the live chain graph,
      // which unlinkChains later re-parks as a waiter whose From is freed
      // memory. Instead, re-validate residency by address: the cookie is
      // live iff the table still maps LastAddr to this exact pointer
      // (pointer compare only — no dereference until it passes).
      if (ChainingEnabled && LastCookie && LastSlot != ~0u &&
          TT.find(LastAddr) == LastCookie) {
        auto *Prev = static_cast<Translation *>(LastCookie);
        if (LastSlot < Prev->Blob.ChainTargets.size() &&
            Prev->Blob.ChainTargets[LastSlot] == PC) {
          TT.chainTo(Prev, LastSlot, T);
          if (LastSlot < Prev->EdgeExecs.size())
            Prev->EdgeExecs[LastSlot].fetch_add(1, std::memory_order_relaxed);
        }
      }
      LastCookie = nullptr;
      LastSlot = ~0u;

      uint64_t Execs =
          T->ExecCount.fetch_add(1, std::memory_order_relaxed) + 1;
      if (T->Tier == 2)
        ++Stats.TraceExecs;
      if (Prof)
        Prof->noteExec(PC);
      if (HotThreshold && T->Tier == 0 &&
          !T->PromoPending.load(std::memory_order_relaxed) &&
          Execs >= HotThreshold) {
        if (Translation *CT = XS->asyncEnabled() ? XS->promoteFromCache(PC)
                                                 : nullptr) {
          T = CT;
        } else if (XS->asyncEnabled() && XS->enqueuePromotion(T)) {
          // Background promotion; keep running tier 1.
        } else {
          uint64_t GenBefore = TT.generation();
          T = promoteHot(PC);
          if (TT.generation() == GenBefore + 1) {
            // Surgical repair of this shard's own line (the serial loop's
            // trick); other shards see the generation bump and wipe.
            S.FastCacheGen = TT.generation();
            S.FastCache[hashAddr(PC) & (FastCacheSize - 1)] =
                FastCacheEntry{PC, T};
          }
        }
      }

      uint64_t TExecs = T->ExecCount.load(std::memory_order_relaxed);
      if (TraceTier && ChainingEnabled && T->Tier == 1 &&
          !T->PromoPending.load(std::memory_order_relaxed) &&
          TExecs >= effTraceThreshold() &&
          TExecs >= T->TraceRetryAt.load(std::memory_order_relaxed)) {
        TraceSpec Spec = selectTracePath(T);
        if (Spec.Entries.size() < 2) {
          T->TraceRetryAt.store(TExecs * 2, std::memory_order_relaxed);
        } else if (XS->asyncEnabled()) {
          XS->enqueueTrace(T, Spec);
        } else if (Translation *NT = XS->translateTrace(Spec)) {
          T = NT;
        } else {
          T->TraceRetryAt.store(TExecs * 2, std::memory_order_relaxed);
        }
      }
    } // WorldMu released — everything below runs lock-free.

    uint64_t ChainBudget = (ChainingEnabled && Quantum > 0) ? Quantum - 1 : 0;
    hvm::RunOutcome O = Exec.run(T->Blob, ChainBudget);
    GlobalBlockClock.fetch_add(O.BlocksExecuted, std::memory_order_relaxed);
    Quantum -= std::min<uint64_t>(Quantum, O.BlocksExecuted);

    if (O.K == hvm::RunOutcome::Kind::Fault) {
      std::lock_guard<std::mutex> World(WorldMu);
      ++S.WorldLockAcquisitions;
      handleFault(TS, O.FaultPC, O.FaultAddr, O.FaultWrite, SigSEGV);
      continue;
    }

    switch (O.JK) {
    case ir::JumpKind::Boring:
      LastCookie = O.ExitCookie;
      LastSlot = O.ExitSlot;
      // Dereferencing the cookie is safe HERE and only here: the chain
      // pointer that led to this translation was still live after this
      // quantum's epoch announcement, so even a mid-quantum retirement
      // cannot reclaim its memory before this shard next announces. The
      // address is what the next iteration's residency check keys on.
      LastAddr = static_cast<Translation *>(LastCookie)->Addr;
      continue;
    case ir::JumpKind::Call:
    case ir::JumpKind::Ret:
      continue;
    case ir::JumpKind::Syscall: {
      std::lock_guard<std::mutex> World(WorldMu);
      ++S.WorldLockAcquisitions;
      SimKernel::Action A = Kernel->onSyscall(TS);
      if (A == SimKernel::Action::Exit) {
        ProcessExited.store(true, std::memory_order_release);
        ProcessExitCode = Kernel->exitCode();
        stopWorld();
      }
      continue;
    }
    case ir::JumpKind::ClientReq: {
      std::lock_guard<std::mutex> World(WorldMu);
      ++S.WorldLockAcquisitions;
      handleClientRequest(TS);
      continue;
    }
    case ir::JumpKind::Yield:
      Quantum = 0;
      continue;
    case ir::JumpKind::Exit: {
      std::lock_guard<std::mutex> World(WorldMu);
      ++S.WorldLockAcquisitions;
      ProcessExited.store(true, std::memory_order_release);
      stopWorld();
      continue;
    }
    case ir::JumpKind::NoDecode: {
      std::lock_guard<std::mutex> World(WorldMu);
      ++S.WorldLockAcquisitions;
      handleFault(TS, O.NextPC, O.NextPC, false, SigILL);
      continue;
    }
    case ir::JumpKind::SmcFail: {
      std::lock_guard<std::mutex> World(WorldMu);
      ++S.WorldLockAcquisitions;
      ++Stats.SmcRetranslations;
      for (auto [Lo, Hi] : T->Extents)
        XS->invalidate(Lo, Hi - Lo);
      continue;
    }
    case ir::JumpKind::SigSEGV: {
      std::lock_guard<std::mutex> World(WorldMu);
      ++S.WorldLockAcquisitions;
      handleFault(TS, O.NextPC, O.NextPC, false, SigSEGV);
      continue;
    }
    }
  }
}

Translation *Core::findOrTranslateMT(ShardCtx &S, uint32_t PC) {
  // A block boundary under the lock is the natural place to try freeing
  // limbo: every shard passes through here constantly.
  if (!Limbo.empty())
    reclaimLimbo();
  if (S.FastCacheGen != TT.generation()) {
    std::fill(S.FastCache.begin(), S.FastCache.end(), FastCacheEntry{});
    S.FastCacheGen = TT.generation();
  }
  FastCacheEntry &E = S.FastCache[hashAddr(PC) & (FastCacheSize - 1)];
  if (E.Addr == PC && E.T) {
    ++Stats.FastCacheHits;
    TT.countFastHit();
    return E.T;
  }
  ++Stats.FastCacheMisses;
  Translation *T = TT.lookup(PC);
  if (!T)
    T = XS->translateSync(PC, /*Hot=*/false);
  if (S.FastCacheGen != TT.generation()) {
    std::fill(S.FastCache.begin(), S.FastCache.end(), FastCacheEntry{});
    S.FastCacheGen = TT.generation();
  }
  S.FastCache[hashAddr(PC) & (FastCacheSize - 1)] = FastCacheEntry{PC, T};
  return T;
}

const hvm::CodeBlob *Core::chainResolveThunkMT(void *User, void *Cookie,
                                               uint32_t Slot) {
  // The lock-free twin of chainResolveThunk: same decisions, but all
  // counter traffic goes to the shard (merged after join) and the bounce
  // prefills the shard's private fast cache. No profiler attribution —
  // that map is world-lock property.
  auto *S = static_cast<ShardCtx *>(User);
  Core *C = S->C;
  auto *T = static_cast<Translation *>(Cookie);
  if (T->Tier == 2 && Slot != T->Blob.TerminalChainSlot)
    ++S->TraceSideExits;
  Translation *Succ = Slot < T->Chain.size()
                          ? T->Chain[Slot].load(std::memory_order_acquire)
                          : nullptr;
  if (!Succ)
    return nullptr;
  if (C->XS->hasCompleted())
    return nullptr; // bounce: publish finished promotions at the boundary
  if (C->HotThreshold && Succ->Tier == 0 &&
      !Succ->PromoPending.load(std::memory_order_relaxed) &&
      Succ->ExecCount.load(std::memory_order_relaxed) + 1 >=
          C->HotThreshold) {
    if (S->FastCacheGen == C->TT.generation())
      S->FastCache[hashAddr(Succ->Addr) & (FastCacheSize - 1)] =
          FastCacheEntry{Succ->Addr, Succ};
    return nullptr; // bounce: promotion decisions are made under the lock
  }
  if (C->TraceTier && Succ->Tier == 1 &&
      !Succ->PromoPending.load(std::memory_order_relaxed)) {
    uint64_t E = Succ->ExecCount.load(std::memory_order_relaxed) + 1;
    if (E >= C->effTraceThreshold() &&
        E >= Succ->TraceRetryAt.load(std::memory_order_relaxed)) {
      if (S->FastCacheGen == C->TT.generation())
        S->FastCache[hashAddr(Succ->Addr) & (FastCacheSize - 1)] =
            FastCacheEntry{Succ->Addr, Succ};
      return nullptr; // bounce: trace formation too
    }
  }
  Succ->ExecCount.fetch_add(1, std::memory_order_relaxed);
  if (Slot < T->EdgeExecs.size())
    T->EdgeExecs[Slot].fetch_add(1, std::memory_order_relaxed);
  ++S->ChainedTransfers;
  if (Succ->Tier == 2)
    ++S->TraceExecs;
  return &Succ->Blob;
}

void Core::retireTranslation(std::unique_ptr<Translation> T) {
  // Unlink-from-table and chain-unlink already happened (under WorldMu);
  // the increment publishes "this translation was dead by epoch E". A
  // shard that later announces an epoch >= E read the counter after the
  // unlink, so it can only have found the translation through a stale
  // pointer it no longer holds at its next quiescent point.
  uint64_t E = GlobalEpoch.fetch_add(1, std::memory_order_acq_rel) + 1;
  Limbo.emplace_back(E, std::move(T));
  ++TranslationsRetired;
  LimboHighWater = std::max<uint64_t>(LimboHighWater, Limbo.size());
  reclaimLimbo();
}

void Core::reclaimLimbo() {
  uint64_t MinE = ~0ull;
  for (auto &S : Shards)
    MinE = std::min(MinE, S->LocalEpoch.load(std::memory_order_acquire));
  std::erase_if(Limbo, [&](const auto &Ent) { return Ent.first <= MinE; });
}

void Core::stopWorld() {
  if (RunQ)
    RunQ->shutdown();
}

uint32_t Core::callGuest(ThreadState &TS, uint32_t Addr,
                         const std::vector<uint32_t> &Args) {
  // Save the registers the call clobbers.
  uint32_t SavedPC = TS.getPC();
  uint32_t SavedRegs[NumGPRs];
  for (unsigned I = 0; I != NumGPRs; ++I)
    SavedRegs[I] = TS.gpr(I);

  uint32_t SP = TS.gpr(RegSP) - 4;
  Memory.write(SP, &ReturnSentinel, 4, /*IgnorePerms=*/true);
  if (Events.NewMemStack)
    Events.NewMemStack(SP, 4);
  if (Events.PostMemWrite)
    Events.PostMemWrite(TS.Tid, SP, 4);
  TS.TrackedSP = SP;
  TS.setGpr(RegSP, SP);
  for (size_t I = 0; I != Args.size() && I < 5; ++I)
    TS.setGpr(static_cast<unsigned>(1 + I), Args[I]);
  // As in deliverSignal: the core set SP and the argument registers, so
  // definedness tools must see them as written.
  if (Events.PostRegWrite) {
    Events.PostRegWrite(TS.Tid, gso::gpr(RegSP), 4);
    for (size_t I = 0; I != Args.size() && I < 5; ++I)
      Events.PostRegWrite(TS.Tid, gso::gpr(static_cast<unsigned>(1 + I)), 4);
  }
  TS.setPCVal(Addr);

  uint64_t Quantum = ~0ull >> 1;
  dispatchLoop(TS, Quantum, ReturnSentinel);
  uint32_t Result = TS.gpr(0);

  for (unsigned I = 0; I != NumGPRs; ++I)
    TS.setGpr(I, SavedRegs[I]);
  TS.setPCVal(SavedPC);
  return Result;
}

//===----------------------------------------------------------------------===//
// Faults and signals (Section 3.15)
//===----------------------------------------------------------------------===//

void Core::handleFault(ThreadState &TS, uint32_t FaultPC, uint32_t FaultAddr,
                       bool Write, int Sig) {
  TS.setPCVal(FaultPC);
  // A handler whose signal is masked (it is itself running) does not get
  // re-entered: a handler that faults the same way it was invoked for
  // terminates instead of recursing forever.
  if (Sig >= 0 && Sig < 64 && SigHandlers[Sig] && !TS.signalMasked(Sig)) {
    deliverSignal(TS, Sig);
    return;
  }
  Out.printf("vg: fatal signal %d at pc=0x%08X (%s address 0x%08X)\n", Sig,
             FaultPC, Write ? "writing" : "reading", FaultAddr);
  if (Tracer)
    Tracer->record(TS.Tid, TraceEvent::SigFatal, static_cast<uint32_t>(Sig));
  FatalSignal = Sig;
  stopWorld();
}

bool Core::deliverPendingSignals(ThreadState &TS) {
  if (TS.PendingSignals.empty())
    return false;
  // Deliver the first *unmasked* pending signal. A signal whose handler is
  // already on the frame stack stays queued until that handler's sigreturn
  // clears the mask bit — handlers are never re-entered.
  for (size_t I = 0; I != TS.PendingSignals.size(); ++I) {
    int Sig = TS.PendingSignals[I];
    if (TS.signalMasked(Sig))
      continue;
    TS.PendingSignals.erase(TS.PendingSignals.begin() +
                            static_cast<long>(I));
    if (SigHandlers[Sig] == 0) {
      if (Tracer)
        Tracer->record(TS.Tid, TraceEvent::SigFatal,
                       static_cast<uint32_t>(Sig));
      FatalSignal = Sig; // default action: terminate
      stopWorld();
      return true;
    }
    deliverSignal(TS, Sig);
    return true;
  }
  return false;
}

void Core::deliverSignal(ThreadState &TS, int Sig) {
  ++Stats.SignalsDelivered;
  // Save the full guest context; sigreturn restores it. gso::TotalSize
  // spans the guest registers, the shadow registers, and the CC thunk, so
  // a tool's shadow state survives the handler unchanged. Delivery happens
  // only between code blocks, so loads/stores are never separated from
  // their shadow counterparts (Section 3.15).
  TS.SignalFrames.push_back(
      {std::vector<uint8_t>(TS.Guest, TS.Guest + gso::TotalSize), Sig});
  TS.SigMask |= 1ull << Sig;
  uint32_t SP = TS.gpr(RegSP) - 4;
  uint32_t Tramp = AddressSpace::CoreBase;
  Memory.write(SP, &Tramp, 4, /*IgnorePerms=*/true);
  // Keep shadow-memory tools consistent: the slot became active stack and
  // then was written by the core.
  if (Events.NewMemStack)
    Events.NewMemStack(SP, 4);
  if (Events.PostMemWrite)
    Events.PostMemWrite(TS.Tid, SP, 4);
  TS.TrackedSP = SP;
  TS.setGpr(RegSP, SP);
  TS.setGpr(1, static_cast<uint32_t>(Sig));
  // The core wrote SP and r1 behind the client's back; without these a
  // definedness tool sees the handler read an undefined signal number.
  if (Events.PostRegWrite) {
    Events.PostRegWrite(TS.Tid, gso::gpr(RegSP), 4);
    Events.PostRegWrite(TS.Tid, gso::gpr(1), 4);
  }
  TS.setPCVal(SigHandlers[Sig]);
  if (Tracer)
    Tracer->record(TS.Tid, TraceEvent::SigDeliver, static_cast<uint32_t>(Sig),
                   SigHandlers[Sig]);
}

void Core::setSignalHandler(int Sig, uint32_t Handler) {
  if (Sig >= 0 && Sig < 64)
    SigHandlers[Sig] = Handler;
}

uint32_t Core::signalHandler(int Sig) const {
  return (Sig >= 0 && Sig < 64) ? SigHandlers[Sig] : 0;
}

bool Core::raiseSignal(int Tid, int Sig) {
  if (Sig <= 0 || Sig >= 64)
    return false;
  if (Tid < 0 || Tid >= MaxThreads ||
      Threads[Tid].Status != ThreadStatus::Runnable) {
    // Exited/empty target: the signal has nowhere to go. Reject it rather
    // than queueing into a dead slot a future thread would inherit.
    ++Stats.SignalsDropped;
    if (Tracer)
      Tracer->record(Tid, TraceEvent::SigDrop, static_cast<uint32_t>(Sig),
                     static_cast<uint32_t>(Tid), SigDropBadTarget);
    return false;
  }
  ThreadState &TS = Threads[Tid];
  // Coalesce duplicates, like non-queued POSIX signals: a signal already
  // pending absorbs the new raise (which still succeeds).
  for (int P : TS.PendingSignals) {
    if (P == Sig) {
      ++Stats.SignalsDropped;
      if (Tracer)
        Tracer->record(Tid, TraceEvent::SigDrop, static_cast<uint32_t>(Sig),
                       static_cast<uint32_t>(Tid), SigDropCoalesced);
      return true;
    }
  }
  TS.PendingSignals.push_back(Sig);
  if (Tracer)
    Tracer->record(Tid, TraceEvent::SigQueue, static_cast<uint32_t>(Sig),
                   static_cast<uint32_t>(Tid));
  return true;
}

void Core::sigreturn(int Tid) {
  ThreadState &TS = Threads[Tid];
  if (TS.SignalFrames.empty()) {
    // Stray sigreturn: the client re-entered the core's trampoline (or
    // issued the raw syscall) with no delivery in flight. With signals
    // still pending this is a real delivery bug, so report it instead of
    // silently ignoring it.
    char Msg[96];
    std::snprintf(Msg, sizeof(Msg),
                  "sigreturn with no signal frame (%u signal(s) pending)",
                  static_cast<unsigned>(TS.PendingSignals.size()));
    Errors.record("StraySigreturn", Msg, TS.getPC(), captureStackTrace(TS));
    return;
  }
  ThreadState::SignalFrame &F = TS.SignalFrames.back();
  TS.SigMask &= ~(1ull << F.Sig);
  std::copy(F.Guest.begin(), F.Guest.end(), TS.Guest);
  TS.SignalFrames.pop_back();
  if (Tracer)
    Tracer->record(Tid, TraceEvent::SigReturn, TS.getPC());
}

//===----------------------------------------------------------------------===//
// Threads
//===----------------------------------------------------------------------===//

int Core::spawnThread(uint32_t Entry, uint32_t SP, uint32_t Arg) {
  for (int I = 0; I != MaxThreads; ++I) {
    ThreadState &TS = Threads[I];
    if (TS.Status != ThreadStatus::Empty && TS.Status != ThreadStatus::Exited)
      continue;
    TS = ThreadState();
    TS.Tid = I;
    TS.Status = ThreadStatus::Runnable;
    TS.Memory = &Memory;
    TS.setGpr(RegSP, SP);
    TS.setGpr(1, Arg);
    TS.setPCVal(Entry);
    TS.TrackedSP = SP;
    TS.StackBase = SP;
    TS.StackLimit = SP > (1u << 20) ? SP - (1u << 20) : 0;
    // Under the sharded scheduler the new thread must enter the run queue
    // or no shard would ever pick it up (the serial scheduler's round-robin
    // scan finds it by polling Threads[] instead).
    if (RunQ)
      RunQ->push(I);
    return I;
  }
  return -1;
}

void Core::exitThread(int Tid, int Code) {
  if (Tid < 0 || Tid >= MaxThreads)
    return;
  ThreadState &TS = Threads[Tid];
  // Signals queued at a dying thread die with it (they were addressed to
  // this thread, and the slot may be reused by a future spawn).
  if (!TS.PendingSignals.empty()) {
    Stats.SignalsDropped += TS.PendingSignals.size();
    if (Tracer)
      for (int Sig : TS.PendingSignals)
        Tracer->record(Tid, TraceEvent::SigDrop, static_cast<uint32_t>(Sig),
                       static_cast<uint32_t>(Tid), SigDropThreadExit);
  }
  TS.PendingSignals.clear();
  TS.SignalFrames.clear();
  TS.SigMask = 0;
  TS.Status = ThreadStatus::Exited;
  if (Tracer)
    Tracer->record(Tid, TraceEvent::ThreadExit, static_cast<uint32_t>(Code));
  if (liveThreads() == 0) {
    ProcessExited = true;
    ProcessExitCode = Code;
    stopWorld();
  }
}

void Core::requestYield(int Tid) {
  // Both flags: the serial scheduler tests YieldRequested (kept so its
  // decisions are bit-for-bit what they always were), each shard tests its
  // own thread's bit.
  YieldRequested = true;
  if (Tid >= 0 && Tid < MaxThreads)
    YieldFlags[Tid].store(true, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Client requests (Section 3.11)
//===----------------------------------------------------------------------===//

void Core::handleClientRequest(ThreadState &TS) {
  uint32_t Code = TS.gpr(0);
  uint32_t Args[4] = {TS.gpr(1), TS.gpr(2), TS.gpr(3), TS.gpr(4)};
  uint32_t Result = 0;

  switch (Code) {
  case CrDiscardTranslations:
    discardTranslations(Args[0], Args[1]);
    break;
  case CrStackRegister: {
    AltStacks.push_back(RegisteredStack{NextStackId, Args[0], Args[1]});
    Result = NextStackId++;
    break;
  }
  case CrStackDeregister:
    AltStacks.erase(std::remove_if(AltStacks.begin(), AltStacks.end(),
                                   [&](const RegisteredStack &R) {
                                     return R.Id == Args[0];
                                   }),
                    AltStacks.end());
    break;
  case CrStackChange:
    for (RegisteredStack &R : AltStacks) {
      if (R.Id == Args[0]) {
        R.Start = Args[1];
        R.End = Args[2];
      }
    }
    break;
  case CrPrint: {
    std::string S;
    for (uint32_t I = 0; I != 4096; ++I) {
      uint8_t B;
      if (Memory.read(Args[0] + I, &B, 1, true).Faulted || B == 0)
        break;
      S.push_back(static_cast<char>(B));
    }
    Out.printf("%s", S.c_str());
    break;
  }
  case CrRunningOnValgrind:
    Result = 1;
    break;
  case CrMalloc:
    Result = clientMalloc(TS.Tid, Args[0], /*Zeroed=*/false);
    break;
  case CrFree:
    clientFree(TS.Tid, Args[0]);
    break;
  case CrCalloc: {
    uint64_t Total = static_cast<uint64_t>(Args[0]) * Args[1];
    Result = Total > 0xFFFFFFFFull
                 ? 0
                 : clientMalloc(TS.Tid, static_cast<uint32_t>(Total),
                                /*Zeroed=*/true);
    break;
  }
  case CrRealloc:
    Result = clientRealloc(TS.Tid, Args[0], Args[1]);
    break;
  default:
    if (ToolPlugin &&
        ToolPlugin->handleClientRequest(TS.Tid, Code, Args, Result))
      break;
    Result = 0; // unknown requests read as 0, like native CLREQ
    break;
  }
  TS.setGpr(0, Result);
}

void Core::discardTranslations(uint32_t Addr, uint32_t Len) {
  XS->invalidate(Addr, Len);
}

//===----------------------------------------------------------------------===//
// Function redirection (Section 3.13)
//===----------------------------------------------------------------------===//

void Core::redirectToHost(uint32_t Addr, HostReplacementFn Fn) {
  HostRedirects[Addr] = std::move(Fn);
  // Drop any pre-redirect translation of Addr (and cancel chain waiters
  // parked on it): a predecessor chained straight into the old code would
  // bypass the dispatcher's redirect check.
  XS->invalidate(Addr, 1);
}

void Core::redirectSymbolToHost(const std::string &Symbol,
                                HostReplacementFn Fn) {
  if (auto It = ImageSymbols.find(Symbol); It != ImageSymbols.end()) {
    HostRedirects[It->second] = std::move(Fn);
    XS->invalidate(It->second, 1); // drop any pre-redirect translation
    return;
  }
  PendingSymbolRedirects[Symbol] = std::move(Fn);
}

void Core::redirectGuest(uint32_t From, uint32_t To) {
  GuestRedirects[From] = To;
  // Any existing translation entered at From must go (and chasing through
  // From could have inlined it elsewhere, so scrub the byte too).
  XS->invalidate(From, 1);
}

//===----------------------------------------------------------------------===//
// The replacement allocator (R8)
//===----------------------------------------------------------------------===//

namespace {
constexpr uint32_t HeapArenaSize = 64u << 20;
constexpr uint32_t HeapChunk = 1u << 20;
uint32_t align16(uint32_t V) { return (V + 15) & ~15u; }
} // namespace

uint32_t Core::clientMalloc(int Tid, uint32_t Size, bool Zeroed) {
  if (HeapArenaBase == 0) {
    HeapArenaBase = AS.findFree(HeapArenaSize, 0x60000000);
    if (!HeapArenaBase ||
        !AS.add(HeapArenaBase, HeapArenaSize, PermRW, SegKind::ClientMmap,
                "replacement-heap"))
      return 0;
    HeapArenaEnd = HeapArenaBase + HeapArenaSize;
    HeapBump = HeapArenaBase;
    HeapMapped = HeapArenaBase;
  }
  uint32_t RZ = (ToolPlugin && ToolPlugin->tracksHeap())
                    ? ToolPlugin->redzoneBytes()
                    : 0;
  uint32_t RawSize = align16(std::max<uint32_t>(Size, 1) + 2 * RZ);

  uint32_t Raw = 0;
  // First fit over the free list.
  for (size_t I = 0; I != HeapFree.size(); ++I) {
    if (HeapFree[I].second >= RawSize) {
      Raw = HeapFree[I].first;
      if (HeapFree[I].second > RawSize) {
        HeapFree[I].first += RawSize;
        HeapFree[I].second -= RawSize;
      } else {
        HeapFree.erase(HeapFree.begin() + static_cast<long>(I));
      }
      break;
    }
  }
  if (!Raw) {
    if (HeapBump + RawSize > HeapArenaEnd)
      return 0; // arena exhausted
    Raw = HeapBump;
    HeapBump += RawSize;
    while (HeapMapped < HeapBump) {
      Memory.map(HeapMapped, HeapChunk, PermRW);
      HeapMapped += HeapChunk;
    }
  }

  uint32_t Payload = Raw + RZ;
  HeapLive[Payload] = Size;
  HeapMeta[Payload] = {Raw, RawSize};
  HeapLiveBytes += Size;
  if (Zeroed) {
    std::vector<uint8_t> Z(Size, 0);
    Memory.write(Payload, Z.data(), Size, /*IgnorePerms=*/true);
  }
  if (ToolPlugin)
    ToolPlugin->onMalloc(Tid, Payload, Size, Zeroed);
  return Payload;
}

bool Core::clientFree(int Tid, uint32_t Addr) {
  if (Addr == 0)
    return true; // free(NULL)
  auto It = HeapLive.find(Addr);
  if (It == HeapLive.end()) {
    if (ToolPlugin)
      ToolPlugin->onBadFree(Tid, Addr);
    return false;
  }
  uint32_t Size = It->second;
  if (ToolPlugin)
    ToolPlugin->onFree(Tid, Addr, Size);
  auto Meta = HeapMeta[Addr];
  HeapFree.push_back(Meta);
  HeapLive.erase(It);
  HeapMeta.erase(Addr);
  HeapLiveBytes -= Size;
  return true;
}

uint32_t Core::clientRealloc(int Tid, uint32_t Addr, uint32_t NewSize) {
  if (Addr == 0)
    return clientMalloc(Tid, NewSize, false);
  auto It = HeapLive.find(Addr);
  if (It == HeapLive.end()) {
    if (ToolPlugin)
      ToolPlugin->onBadFree(Tid, Addr);
    return 0;
  }
  uint32_t OldSize = It->second;
  uint32_t NewAddr = clientMalloc(Tid, NewSize, false);
  if (!NewAddr)
    return 0;
  // Copy the payload (like mremap, tools see onMalloc+onFree; Memcheck's
  // definedness copy rides on its own onMalloc/Free handling plus this
  // byte copy happening through IgnorePerms writes).
  uint32_t N = std::min(OldSize, NewSize);
  std::vector<uint8_t> Tmp(N);
  Memory.read(Addr, Tmp.data(), N, true);
  Memory.write(NewAddr, Tmp.data(), N, true);
  if (Events.CopyMemMremap)
    Events.CopyMemMremap(Addr, NewAddr, N);
  clientFree(Tid, Addr);
  return NewAddr;
}

uint32_t Core::heapBlockSize(uint32_t Addr) const {
  auto It = HeapLive.find(Addr);
  return It == HeapLive.end() ? 0 : It->second;
}

//===----------------------------------------------------------------------===//
// Stack traces
//===----------------------------------------------------------------------===//

std::vector<uint32_t> Core::captureStackTrace(ThreadState &TS, unsigned Max) {
  // Conservative scan: walk up the stack looking for plausible return
  // addresses (values pointing into executable client memory).
  std::vector<uint32_t> Trace;
  uint32_t SP = TS.gpr(RegSP);
  for (uint32_t Off = 0; Off < 512 && Trace.size() < Max; Off += 4) {
    uint32_t V;
    if (Memory.read(SP + Off, &V, 4, true).Faulted)
      break;
    if (const Segment *S = AS.segmentAt(V);
        S && S->Kind == SegKind::ClientText)
      Trace.push_back(V);
  }
  return Trace;
}

void Core::internalError(const char *Msg) { fatalError(Msg); }
