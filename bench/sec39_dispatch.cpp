//===-- bench/sec39_dispatch.cpp - Section 3.9: dispatch & chaining -------==//
///
/// \file
/// Reproduces the Section 3.9 dispatcher claims:
///  - the direct-mapped fast-cache hit rate is ~98% on real programs;
///  - translation chaining (which Valgrind 3.2 lacked) reduces trips
///    through the dispatcher, but hurts a fast-dispatcher design less
///    than it did Strata (22.1x -> 4.1x there; Valgrind without chaining
///    was already 4.3x).
///
/// Also reports translation-table statistics (Section 3.8): occupancy and
/// FIFO eviction activity on a translation-heavy synthetic.
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "guestlib/GuestLib.h"
#include "tools/Nulgrind.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace vg;

int main() {
  std::printf("== Section 3.9: dispatcher fast-cache hit rates ==\n");
  std::printf("%-10s %14s %14s %9s\n", "workload", "fast hits", "misses",
              "hit rate");
  for (const char *Name : {"gcc", "mcf", "perlbmk", "equake"}) {
    GuestImage Img = buildWorkload(Name, 1);
    Nulgrind T;
    RunReport R = runUnderCore(Img, &T, {"--smc-check=none"});
    double Hits = static_cast<double>(R.Stats.FastCacheHits);
    double Total = Hits + static_cast<double>(R.Stats.FastCacheMisses);
    std::printf("%-10s %14llu %14llu %8.2f%%\n", Name,
                static_cast<unsigned long long>(R.Stats.FastCacheHits),
                static_cast<unsigned long long>(R.Stats.FastCacheMisses),
                Total ? 100.0 * Hits / Total : 0.0);
  }
  std::printf("(paper: \"the hit-rate is around 98%%\")\n\n");

  std::printf("== Section 3.9 ablation: chaining off vs on ==\n");
  std::printf("%-10s %12s %12s %12s %9s\n", "workload", "dispatches",
              "disp(chain)", "chained", "time x");
  for (const char *Name : {"crafty", "mcf", "gcc"}) {
    GuestImage Img = buildWorkload(Name, 1);
    Nulgrind T1, T2;
    RunReport Off = runUnderCore(Img, &T1, {"--smc-check=none",
                                            "--chaining=no"});
    RunReport On = runUnderCore(Img, &T2, {"--smc-check=none",
                                           "--chaining=yes"});
    // "Dispatches" = returns to the dispatcher loop: blocks minus chained
    // transfers.
    uint64_t DispOff = Off.Stats.BlocksDispatched;
    uint64_t DispOn = On.Stats.BlocksDispatched - On.Stats.ChainedTransfers;
    std::printf("%-10s %12llu %12llu %12llu %9.2f\n", Name,
                static_cast<unsigned long long>(DispOff),
                static_cast<unsigned long long>(DispOn),
                static_cast<unsigned long long>(On.Stats.ChainedTransfers),
                Off.Seconds > 0 ? On.Seconds / Off.Seconds : 0.0);
  }
  std::printf("(expected: chaining removes most dispatcher trips; the "
              "time ratio stays near 1.0 because\n this dispatcher is "
              "cheap — the paper's argument for why missing chaining "
              "hurt Valgrind less than Strata.)\n\n");

  // Translation-table behaviour (Section 3.8): translate a sea of tiny
  // functions to force occupancy and eviction.
  std::printf("== Section 3.8: translation table (FIFO eviction) ==\n");
  {
    using namespace vg::vg1;
    Assembler Code(0x1000);
    Assembler Data(0x100000);
    Label Main = Code.newLabel();
    uint32_t Entry = emitStart(Code, Main);
    GuestLibLabels Lib = emitGuestLib(Code, Data);
    (void)Lib;
    // 20000 tiny functions, each its own translation.
    std::vector<Label> Fns;
    for (int I = 0; I != 20000; ++I)
      Fns.push_back(Code.newLabel());
    Code.bind(Main);
    for (int I = 0; I != 20000; ++I)
      Code.call(Fns[I]);
    Code.movi(Reg::R0, 0);
    Code.ret();
    for (int I = 0; I != 20000; ++I) {
      Code.bind(Fns[I]);
      Code.addi(Reg::R1, Reg::R1, 1);
      Code.ret();
    }
    GuestImage Img =
        GuestImageBuilder().addCode(Code).addData(Data).entry(Entry).build();
    Nulgrind T;
    RunReport R = runUnderCoreWith(
        Img, &T, {"--smc-check=none"}, "", ~0ull, [](Core &C) {
          (void)C; // default 16K-entry table; 20k translations overflow it
        });
    std::printf("completed=%d translations=%llu table-lookups=%llu "
                "eviction-runs=%llu evicted=%llu\n",
                R.Completed,
                static_cast<unsigned long long>(R.Stats.Translations),
                static_cast<unsigned long long>(R.TTStats.Lookups),
                static_cast<unsigned long long>(R.TTStats.EvictionRuns),
                static_cast<unsigned long long>(R.TTStats.Evicted));
    std::printf("(the 16K-entry linear-probe table passed 80%% occupancy "
                "and evicted FIFO chunks of 1/8th,\n as in Section 3.8)\n");
  }
  return 0;
}
