# Empty dependencies file for sec54_shadowmem.
# This may be replaced when dependencies are built.
