//===-- bench/sec54_shadowmem.cpp - Section 5.4: shadow-memory layouts ----==//
///
/// \file
/// Reproduces the Section 5.4 trade-off between Memcheck's two-level
/// shadow map and TaintTrace/LIFT's flat reserved-region layout:
///
///   - the flat layout is faster per access (a single indexed array),
///   - but only covers a fixed window of the address space and commits
///     host memory for the whole window, while the two-level map covers
///     all 4GB and pays memory only for chunks actually touched.
///
/// Also reports the paper's companion observation ("shadow memory
/// operations account for close to half of Memcheck's overhead") by
/// comparing Memcheck against the 1-bit-per-byte TaintGrind on the same
/// workload.
///
/// Uses google-benchmark for the microbenchmarks.
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "shadow/ShadowMemory.h"
#include "tools/Memcheck.h"
#include "tools/TaintGrind.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

using namespace vg;

namespace {

constexpr uint32_t WindowBase = 0x10000000;
constexpr uint32_t WindowSize = 32u << 20;

void BM_TwoLevelLoadV(benchmark::State &State) {
  ShadowMap SM;
  SM.makeDefined(WindowBase, 1 << 20);
  uint32_t A = WindowBase;
  for (auto _ : State) {
    AddrCheck C;
    benchmark::DoNotOptimize(SM.loadV(A, 4, C));
    A = WindowBase + ((A + 12345) & ((1 << 20) - 4));
  }
}
BENCHMARK(BM_TwoLevelLoadV);

void BM_DirectLoadV(benchmark::State &State) {
  DirectShadow DS(WindowBase, WindowSize);
  DS.makeDefined(WindowBase, 1 << 20);
  uint32_t A = WindowBase;
  for (auto _ : State) {
    AddrCheck C;
    benchmark::DoNotOptimize(DS.loadV(A, 4, C));
    A = WindowBase + ((A + 12345) & ((1 << 20) - 4));
  }
}
BENCHMARK(BM_DirectLoadV);

void BM_TwoLevelStoreV(benchmark::State &State) {
  ShadowMap SM;
  SM.makeUndefined(WindowBase, 1 << 20);
  uint32_t A = WindowBase;
  for (auto _ : State) {
    AddrCheck C;
    SM.storeV(A, 4, 0, C);
    A = WindowBase + ((A + 12345) & ((1 << 20) - 4));
  }
}
BENCHMARK(BM_TwoLevelStoreV);

void BM_DirectStoreV(benchmark::State &State) {
  DirectShadow DS(WindowBase, WindowSize);
  DS.makeUndefined(WindowBase, 1 << 20);
  uint32_t A = WindowBase;
  for (auto _ : State) {
    AddrCheck C;
    DS.storeV(A, 4, 0, C);
    A = WindowBase + ((A + 12345) & ((1 << 20) - 4));
  }
}
BENCHMARK(BM_DirectStoreV);

/// The coverage difference: the flat layout simply cannot represent
/// accesses outside its window (the paper's robustness argument).
void BM_CoverageReport(benchmark::State &State) {
  for (auto _ : State) {
    ShadowMap SM;
    DirectShadow DS(WindowBase, WindowSize);
    // A high address (e.g. a stack near 3GB): fine for the map, out of
    // window for the flat layout.
    SM.makeDefined(0xBFFE0000, 64);
    AddrCheck C1, C2;
    benchmark::DoNotOptimize(SM.loadV(0xBFFE0000, 4, C1));
    benchmark::DoNotOptimize(DS.loadV(0xBFFE0000, 4, C2));
    if (C1.Ok == C2.Ok)
      State.SkipWithError("flat layout unexpectedly covered a high address");
  }
}
BENCHMARK(BM_CoverageReport)->Iterations(1);

//===----------------------------------------------------------------------===//
// Layout x access-pattern matrix -> BENCH_shadowmem.json
//===----------------------------------------------------------------------===//

/// Byte-loop loadV as the seed implemented it (one secondary lookup per
/// byte for A and V): the reference the whole-word fast path replaces.
uint64_t byteLoopLoadV(const ShadowMap &SM, uint32_t Addr, uint32_t Size) {
  uint64_t V = 0;
  for (uint32_t I = 0; I != Size; ++I) {
    uint32_t A = Addr + I;
    uint8_t VB = SM.abit(A) ? SM.vbyte(A) : 0xFF;
    V |= static_cast<uint64_t>(VB) << (8 * I);
  }
  return V;
}

struct MatrixRow {
  const char *Layout;
  const char *Pattern;
  double NsPerAccess;
};

double timeNs(uint64_t Ops, const std::function<void()> &Body) {
  using Clock = std::chrono::steady_clock;
  auto T0 = Clock::now();
  Body();
  auto T1 = Clock::now();
  return std::chrono::duration<double, std::nano>(T1 - T0).count() /
         static_cast<double>(Ops);
}

std::vector<MatrixRow> runMatrix(uint64_t Ops) {
  std::vector<MatrixRow> Rows;
  constexpr uint32_t Span = 1 << 20; // 1MB working set, 16 chunks

  ShadowMap SM;
  SM.makeDefined(WindowBase, Span);
  DirectShadow DS(WindowBase, WindowSize);
  DS.makeDefined(WindowBase, Span);

  uint64_t Sink = 0;
  auto Seq = [](uint64_t I) {
    return WindowBase + static_cast<uint32_t>((I * 4) & (Span - 4));
  };
  auto Rand = [](uint64_t I) {
    // LCG-scattered aligned addresses: defeats the last-secondary cache.
    return WindowBase +
           (static_cast<uint32_t>(I * 2654435761u) & (Span - 1) & ~3u);
  };

  AddrCheck C;
  Rows.push_back({"twolevel", "seq_aligned4_load",
                  timeNs(Ops, [&] {
                    for (uint64_t I = 0; I != Ops; ++I)
                      Sink += SM.loadV(Seq(I), 4, C);
                  })});
  Rows.push_back({"twolevel", "rand_aligned4_load",
                  timeNs(Ops, [&] {
                    for (uint64_t I = 0; I != Ops; ++I)
                      Sink += SM.loadV(Rand(I), 4, C);
                  })});
  Rows.push_back({"twolevel", "seq_aligned4_store",
                  timeNs(Ops, [&] {
                    for (uint64_t I = 0; I != Ops; ++I)
                      SM.storeV(Seq(I), 4, 0, C);
                  })});
  Rows.push_back({"twolevel", "seq_unaligned4_load",
                  timeNs(Ops, [&] {
                    for (uint64_t I = 0; I != Ops; ++I)
                      Sink += SM.loadV(Seq(I) + 2, 4, C);
                  })});
  Rows.push_back({"twolevel", "seq_byteloop4_load",
                  timeNs(Ops, [&] {
                    for (uint64_t I = 0; I != Ops; ++I)
                      Sink += byteLoopLoadV(SM, Seq(I), 4);
                  })});
  Rows.push_back({"direct", "seq_aligned4_load",
                  timeNs(Ops, [&] {
                    for (uint64_t I = 0; I != Ops; ++I)
                      Sink += DS.loadV(Seq(I), 4, C);
                  })});
  Rows.push_back({"direct", "seq_aligned4_store",
                  timeNs(Ops, [&] {
                    for (uint64_t I = 0; I != Ops; ++I)
                      DS.storeV(Seq(I), 4, 0, C);
                  })});
  benchmark::DoNotOptimize(Sink);
  return Rows;
}

void emitJson(const std::vector<MatrixRow> &Rows, double Speedup) {
  std::ofstream F("BENCH_shadowmem.json");
  F << "{\n  \"bench\": \"sec54_shadowmem\",\n  \"unit\": "
       "\"ns_per_access\",\n  \"results\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I) {
    F << "    {\"layout\": \"" << Rows[I].Layout << "\", \"pattern\": \""
      << Rows[I].Pattern << "\", \"ns_per_access\": " << Rows[I].NsPerAccess
      << "}" << (I + 1 != Rows.size() ? "," : "") << "\n";
  }
  F << "  ],\n  \"aligned_word_over_byteloop_speedup\": " << Speedup
    << "\n}\n";
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Layout x access-pattern matrix (the ISSUE's ns/access table). A quick
  // pass still exercises every cell; the JSON is written either way.
  bool Quick = std::getenv("VG_SEC54_QUICK") != nullptr;
  uint64_t Ops = Quick ? 1u << 20 : 1u << 24;
  std::printf("\n== Section 5.4: layout x access pattern (ns/access, %llu "
              "ops/cell) ==\n",
              static_cast<unsigned long long>(Ops));
  std::vector<MatrixRow> Rows = runMatrix(Ops);
  double ByteLoop = 0, Aligned = 0;
  for (const MatrixRow &R : Rows) {
    std::printf("%-9s %-20s %8.2f\n", R.Layout, R.Pattern, R.NsPerAccess);
    if (std::string(R.Pattern) == "seq_byteloop4_load")
      ByteLoop = R.NsPerAccess;
    if (std::string(R.Layout) == "twolevel" &&
        std::string(R.Pattern) == "seq_aligned4_load")
      Aligned = R.NsPerAccess;
  }
  double Speedup = Aligned > 0 ? ByteLoop / Aligned : 0;
  std::printf("aligned-word path vs byte loop: %.1fx\n", Speedup);
  emitJson(Rows, Speedup);
  std::printf("(wrote BENCH_shadowmem.json)\n");

  if (Quick)
    return 0;

  // Macro comparison: bit-per-byte taint vs bit-per-bit definedness.
  std::printf("\n== Section 5.4: analysis-depth comparison on 'vortex' ==\n");
  GuestImage Img = buildWorkload("vortex", 1);
  RunReport Native = runNative(Img);
  TaintGrind TG;
  RunReport Rt = runUnderCore(Img, &TG, {"--smc-check=none"});
  Memcheck MC;
  RunReport Rm = runUnderCore(Img, &MC,
                              {"--smc-check=none", "--leak-check=no"});
  auto Factor = [&](const RunReport &R) {
    return Native.Seconds > 0 && R.Completed ? R.Seconds / Native.Seconds
                                             : -1.0;
  };
  std::printf("taintgrind (1 taint bit/byte): %6.1fx native\n", Factor(Rt));
  std::printf("memcheck  (definedness + A-bits): %6.1fx native\n",
              Factor(Rm));
  std::printf("(paper: TaintTrace 5.5x / LIFT 3.5x vs Memcheck 22.1x — "
              "\"partly because they are doing\n a simpler analysis\"; the "
              "reproduction target is taint << memcheck)\n");
  return 0;
}
