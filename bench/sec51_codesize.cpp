//===-- bench/sec51_codesize.cpp - Section 5.1: tool-writing ease ---------==//
///
/// \file
/// Reproduces the Section 5.1 measurement: lines of code of the core
/// versus each tool plug-in, the paper's proxy for tool-writing effort.
/// The paper's numbers (Valgrind 3.2.1): core 170,280 + 3,207 asm;
/// Memcheck 10,509; Cachegrind 2,431; Massif 1,764; Nulgrind 39. The
/// reproduction target is the *ratio* story: tools are one to three
/// orders of magnitude smaller than the framework they plug into.
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#ifndef VG_SOURCE_DIR
#define VG_SOURCE_DIR "."
#endif

namespace {

namespace fs = std::filesystem;

uint64_t countLines(const fs::path &P) {
  std::ifstream In(P);
  uint64_t N = 0;
  std::string Line;
  while (std::getline(In, Line))
    ++N;
  return N;
}

uint64_t countGroup(const std::vector<std::string> &Patterns) {
  uint64_t Total = 0;
  fs::path Root = fs::path(VG_SOURCE_DIR) / "src";
  for (const auto &Entry : fs::recursive_directory_iterator(Root)) {
    if (!Entry.is_regular_file())
      continue;
    std::string Rel = fs::relative(Entry.path(), Root).string();
    for (const std::string &Pat : Patterns) {
      if (Rel.rfind(Pat, 0) == 0) {
        Total += countLines(Entry.path());
        break;
      }
    }
  }
  return Total;
}

} // namespace

int main() {
  struct Group {
    const char *Name;
    std::vector<std::string> Pats;
    const char *PaperDatum;
  };
  const std::vector<Group> Groups = {
      {"core (framework)",
       {"support/", "guest/", "ir/", "frontend/", "hvm/", "core/",
        "kernel/", "guestlib/"},
       "170,280 C + 3,207 asm"},
      {"shadow-memory substrate", {"shadow/"}, "(part of Memcheck)"},
      {"memcheck", {"tools/Memcheck"}, "10,509"},
      {"cachegrind", {"tools/Cachegrind"}, "2,431"},
      {"massif", {"tools/Massif"}, "1,764"},
      {"taintgrind", {"tools/TaintGrind"}, "(TaintCheck-analogue)"},
      {"icnt (both)", {"tools/ICnt"}, "(paper's ICntI/ICntC)"},
      {"nulgrind", {"tools/Nulgrind"}, "39"},
  };

  std::printf("== Section 5.1: code sizes (this reproduction vs the "
              "paper) ==\n");
  std::printf("%-26s %10s   %s\n", "component", "lines", "paper (3.2.1)");
  uint64_t CoreLines = 0;
  for (const Group &G : Groups) {
    uint64_t N = countGroup(G.Pats);
    if (std::string(G.Name).rfind("core", 0) == 0)
      CoreLines = N;
    std::printf("%-26s %10llu   %s\n", G.Name,
                static_cast<unsigned long long>(N), G.PaperDatum);
  }
  uint64_t Nul = countGroup({"tools/Nulgrind"});
  uint64_t Mc = countGroup({"tools/Memcheck"});
  if (Nul && Mc && CoreLines) {
    std::printf("\ncore : memcheck : nulgrind ratio = %.0f : %.0f : 1\n",
                static_cast<double>(CoreLines) / static_cast<double>(Nul),
                static_cast<double>(Mc) / static_cast<double>(Nul));
    std::printf("(paper: 170,280 : 10,509 : 39  ~=  4366 : 269 : 1 — the "
                "framework dwarfs the tools,\n and heavyweight tools dwarf "
                "trivial ones; \"the benefit of using Valgrind is clear\")\n");
  }
  return 0;
}
