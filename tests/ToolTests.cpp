//===-- tests/ToolTests.cpp - TaintGrind, Cachegrind, Massif tests --------==//
///
/// \file
/// Validates the remaining tool plug-ins: taint propagation and sinks,
/// the cache-simulator substrate and its attribution, heap profiling, and
/// the custom-tool API surface (multiple tools over one framework).
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "guestlib/GuestLib.h"
#include "kernel/SimKernel.h"
#include "tools/Cachegrind.h"
#include "tools/Massif.h"
#include "tools/TaintGrind.h"

#include <gtest/gtest.h>

using namespace vg;
using namespace vg::vg1;

namespace {

constexpr uint32_t CodeBase = 0x1000;
constexpr uint32_t DataBase = 0x100000;

GuestImage buildProgram(
    const std::function<void(Assembler &, Assembler &, GuestLibLabels &)>
        &Body) {
  Assembler Code(CodeBase);
  Assembler Data(DataBase);
  GuestLibLabels Lib = emitGuestLib(Code, Data);
  Label Main = Code.newLabel();
  uint32_t Entry = emitStart(Code, Main);
  Code.bind(Main);
  Body(Code, Data, Lib);
  return GuestImageBuilder().addCode(Code).addData(Data).entry(Entry).build();
}

//===----------------------------------------------------------------------===//
// TaintGrind
//===----------------------------------------------------------------------===//

TEST(TaintGrind, StdinIsTaintSourceAndPropagates) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &) {
    Label Buf = Data.boundLabel();
    Data.emitZeros(8);
    Code.movi(Reg::R0, SysRead);
    Code.movi(Reg::R1, 0);
    Code.movi(Reg::R2, Data.labelAddr(Buf));
    Code.movi(Reg::R3, 4);
    Code.sys();
    // Propagate through arithmetic and memory, then query via request.
    Code.movi(Reg::R2, Data.labelAddr(Buf));
    Code.ld(Reg::R3, Reg::R2, 0);
    Code.shli(Reg::R3, Reg::R3, 4);
    Code.st(Reg::R2, 4, Reg::R3); // derived value parked at Buf+4
    Code.movi(Reg::R0, TgIsTainted);
    Code.addi(Reg::R1, Reg::R2, 4);
    Code.movi(Reg::R2, 4);
    Code.clreq();
    Code.ret(); // 1 if tainted
  });
  TaintGrind T;
  RunReport R = runUnderCore(Img, &T, {}, "abcd");
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 1);
}

TEST(TaintGrind, ConstantsAndUntaintedFilesAreClean) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &) {
    Label Buf = Data.boundLabel();
    Data.emitZeros(8);
    Code.movi(Reg::R2, Data.labelAddr(Buf));
    Code.movi(Reg::R3, 1234);
    Code.st(Reg::R2, 0, Reg::R3);
    Code.movi(Reg::R0, TgIsTainted);
    Code.mov(Reg::R1, Reg::R2);
    Code.movi(Reg::R2, 4);
    Code.clreq();
    Code.ret();
  });
  TaintGrind T;
  RunReport R = runUnderCore(Img, &T);
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(TaintGrind, TaintedJumpTargetReported) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &) {
    Label Buf = Data.boundLabel();
    Data.emitZeros(8);
    Label Target = Code.newLabel();
    Code.movi(Reg::R0, SysRead);
    Code.movi(Reg::R1, 0);
    Code.movi(Reg::R2, Data.labelAddr(Buf));
    Code.movi(Reg::R3, 4);
    Code.sys();
    Code.movi(Reg::R2, Data.labelAddr(Buf));
    Code.ld(Reg::R3, Reg::R2, 0); // tainted 0 (input is "\0\0\0\0")
    Code.leai(Reg::R5, Target);
    Code.add(Reg::R5, Reg::R5, Reg::R3); // tainted target
    Code.jmpr(Reg::R5);
    Code.bind(Target);
    Code.movi(Reg::R0, 0);
    Code.ret();
  });
  TaintGrind T;
  RunReport R = runUnderCore(Img, &T, {}, std::string(4, '\0'));
  ASSERT_TRUE(R.Completed);
  EXPECT_NE(R.ToolOutput.find("Indirect jump/call target depends on tainted"),
            std::string::npos)
      << R.ToolOutput;
}

TEST(TaintGrind, SanitisationClearsTaint) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &) {
    Label Buf = Data.boundLabel();
    Data.emitZeros(8);
    Code.movi(Reg::R0, SysRead);
    Code.movi(Reg::R1, 0);
    Code.movi(Reg::R2, Data.labelAddr(Buf));
    Code.movi(Reg::R3, 4);
    Code.sys();
    // Sanitise, then ask.
    Code.movi(Reg::R0, TgUntaint);
    Code.movi(Reg::R1, Data.labelAddr(Buf));
    Code.movi(Reg::R2, 4);
    Code.clreq();
    Code.movi(Reg::R0, TgIsTainted);
    Code.movi(Reg::R1, Data.labelAddr(Buf));
    Code.movi(Reg::R2, 4);
    Code.clreq();
    Code.ret();
  });
  TaintGrind T;
  RunReport R = runUnderCore(Img, &T, {}, "xxxx");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(TaintGrind, TaintedSyscallArgumentReported) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &) {
    Label Buf = Data.boundLabel();
    Data.emitZeros(8);
    Code.movi(Reg::R0, SysRead);
    Code.movi(Reg::R1, 0);
    Code.movi(Reg::R2, Data.labelAddr(Buf));
    Code.movi(Reg::R3, 4);
    Code.sys();
    Code.movi(Reg::R2, Data.labelAddr(Buf));
    Code.ld(Reg::R1, Reg::R2, 0); // tainted
    Code.movi(Reg::R0, SysNanosleep);
    Code.sys(); // tainted argument to the kernel
    Code.movi(Reg::R0, 0);
    Code.ret();
  });
  TaintGrind T;
  RunReport R = runUnderCore(Img, &T, {}, std::string(4, '\x01'));
  EXPECT_NE(R.ToolOutput.find("Tainted value passed to syscall"),
            std::string::npos)
      << R.ToolOutput;
}

//===----------------------------------------------------------------------===//
// Cachegrind
//===----------------------------------------------------------------------===//

TEST(CacheModel, LruSetAssociativity) {
  CacheModel C(/*Size=*/1024, /*Assoc=*/2, /*Line=*/64); // 8 sets
  EXPECT_FALSE(C.access(0x0000, 4));  // miss
  EXPECT_TRUE(C.access(0x0000, 4));   // hit
  EXPECT_FALSE(C.access(0x2000, 4));  // same set (0x2000/64 % 8 == 0), way 2
  EXPECT_TRUE(C.access(0x0000, 4));   // still resident
  EXPECT_FALSE(C.access(0x4000, 4));  // evicts LRU (0x2000)
  EXPECT_TRUE(C.access(0x0000, 4));   // 0 was MRU: survives
  EXPECT_FALSE(C.access(0x2000, 4));  // was evicted
}

TEST(CacheModel, StraddlingAccessTouchesTwoLines) {
  CacheModel C(1024, 2, 64);
  EXPECT_FALSE(C.access(60, 8)); // lines 0 and 1: both cold
  EXPECT_TRUE(C.access(0, 4));
  EXPECT_TRUE(C.access(64, 4)); // both now resident
}

TEST(Cachegrind, CountsMatchInstructionAndAccessCounts) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &) {
    Label Cell = Data.boundLabel();
    Data.emitZeros(64);
    Code.movi(Reg::R1, Data.labelAddr(Cell));
    Code.movi(Reg::R2, 0);
    Label Loop = Code.boundLabel();
    Code.st(Reg::R1, 0, Reg::R2);  // 100 writes
    Code.ld(Reg::R3, Reg::R1, 0);  // 100 reads
    Code.addi(Reg::R2, Reg::R2, 1);
    Code.cmpi(Reg::R2, 100);
    Code.blt(Loop);
    Code.movi(Reg::R0, 0);
    Code.ret();
  });
  RunReport Native = runNative(Img);
  Cachegrind T;
  RunReport R = runUnderCore(Img, &T);
  ASSERT_TRUE(R.Completed);
  // Ir equals the dynamic instruction count exactly.
  EXPECT_EQ(T.totals().Ir, Native.NativeInsns);
  EXPECT_GE(T.totals().Dr, 100u);
  EXPECT_GE(T.totals().Dw, 100u);
  // A single hot cell: essentially everything hits after the cold miss.
  EXPECT_LE(T.totals().D1mr + T.totals().D1mw, 8u);
}

TEST(Cachegrind, StridePatternsChangeMissRate) {
  auto MissRate = [](uint32_t Stride) {
    GuestImage Img = buildProgram([Stride](Assembler &Code, Assembler &,
                                           GuestLibLabels &Lib) {
      Code.movi(Reg::R1, 1 << 18);
      Code.call(Lib.Malloc);
      Code.mov(Reg::R6, Reg::R0);
      Code.movi(Reg::R7, 0);
      Label Walk = Code.boundLabel();
      Code.add(Reg::R2, Reg::R6, Reg::R7);
      Code.st(Reg::R2, 0, Reg::R7);
      Code.addi(Reg::R7, Reg::R7, static_cast<int32_t>(Stride));
      Code.cmpi(Reg::R7, 1 << 18);
      Code.bltu(Walk);
      Code.movi(Reg::R0, 0);
      Code.ret();
    });
    Cachegrind T;
    RunReport R = runUnderCore(Img, &T);
    EXPECT_TRUE(R.Completed);
    return static_cast<double>(T.totals().D1mw) /
           static_cast<double>(T.totals().Dw ? T.totals().Dw : 1);
  };
  double Dense = MissRate(4);
  double Sparse = MissRate(64);
  EXPECT_LT(Dense, 0.15);
  EXPECT_GT(Sparse, 0.80);
}

//===----------------------------------------------------------------------===//
// Massif
//===----------------------------------------------------------------------===//

TEST(Massif, PeakAndTimelineTracked) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &Lib) {
    // alloc 10 x 1KB, free them all, alloc 1 x 512.
    Label Ptrs = Data.boundLabel();
    Data.emitZeros(10 * 4);
    uint32_t P = Data.labelAddr(Ptrs);
    Code.movi(Reg::R6, 0);
    Label A = Code.boundLabel();
    Code.movi(Reg::R1, 1024);
    Code.call(Lib.Malloc);
    Code.movi(Reg::R2, P);
    Code.stx(Reg::R2, Reg::R6, 2, 0, Reg::R0);
    Code.addi(Reg::R6, Reg::R6, 1);
    Code.cmpi(Reg::R6, 10);
    Code.blt(A);
    Code.movi(Reg::R6, 0);
    Label F = Code.boundLabel();
    Code.movi(Reg::R2, P);
    Code.ldx(Reg::R1, Reg::R2, Reg::R6, 2, 0);
    Code.call(Lib.Free);
    Code.addi(Reg::R6, Reg::R6, 1);
    Code.cmpi(Reg::R6, 10);
    Code.blt(F);
    Code.movi(Reg::R1, 512);
    Code.call(Lib.Malloc);
    Code.movi(Reg::R0, 0);
    Code.ret();
  });
  Massif T;
  RunReport R = runUnderCore(Img, &T);
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(T.peakBytes(), 10240u);
  EXPECT_FALSE(T.snapshots().empty());
  EXPECT_NE(R.ToolOutput.find("peak heap usage: 10240 bytes"),
            std::string::npos)
      << R.ToolOutput;
  // One site still holds 512 bytes at exit.
  uint64_t Live = 0;
  for (auto [Site, Bytes] : T.bytesBySite())
    Live += Bytes;
  EXPECT_EQ(Live, 512u);
}

} // namespace
