//===-- frontend/Vg1Frontend.cpp - Phase 1: VG1 -> tree IR ----------------==//

#include "frontend/Vg1Frontend.h"

#include "guest/Decoder.h"
#include "guest/GuestArch.h"
#include "hvm/ExecContext.h"

#include <cstring>

using namespace vg;
using namespace vg::ir;
using namespace vg::vg1;

//===----------------------------------------------------------------------===//
// Helpers callable from IR
//===----------------------------------------------------------------------===//

namespace {

uint64_t helperCalcCond(void *, uint64_t Cond, uint64_t Op, uint64_t Dep1,
                        uint64_t Dep2) {
  return calcCond(static_cast<uint32_t>(Cond), static_cast<uint32_t>(Op),
                  static_cast<uint32_t>(Dep1), static_cast<uint32_t>(Dep2));
}

uint64_t helperCpuInfo(void *Env, uint64_t, uint64_t, uint64_t, uint64_t) {
  auto *Ctx = static_cast<ExecContext *>(Env);
  uint32_t Magic = CpuInfoMagic, Version = CpuInfoVersion;
  std::memcpy(Ctx->GuestState + gso::gpr(0), &Magic, 4);
  std::memcpy(Ctx->GuestState + gso::gpr(1), &Version, 4);
  return 0;
}

constexpr uint32_t SpecKeyCalcCond = 1;

const Callee CalcCondCallee = {"vg1_calc_cond", helperCalcCond,
                               SpecKeyCalcCond};
const Callee CpuInfoCallee = {"vg1_cpuinfo", helperCpuInfo, 0};
const ir::CalleeRegistrar RegisterCallees{&CalcCondCallee, &CpuInfoCallee};

} // namespace

const Callee *vg::calcCondCallee() { return &CalcCondCallee; }
const Callee *vg::cpuinfoCallee() { return &CpuInfoCallee; }

//===----------------------------------------------------------------------===//
// The per-superblock translator
//===----------------------------------------------------------------------===//

namespace {

class Translator {
public:
  Translator(uint32_t Addr, const FetchFn &Fetch, const FrontendConfig &Cfg,
             const TraceSpec *Trace = nullptr)
      : Entry(Addr), Fetch(Fetch), Cfg(Cfg), Trace(Trace) {
    Res.SB = std::make_unique<IRSB>();
    Res.Addr = Addr;
    if (Trace)
      Res.TraceEntries.push_back(Addr);
  }

  DisasmResult run() {
    uint32_t PC = Entry;
    uint32_t ExtentStart = PC;
    unsigned Chases = 0;

    for (;;) {
      // A constituent may end in a straight line (the original superblock
      // hit its instruction limit): crossing the next entry's PC advances
      // the path position without any seam to stitch.
      if (Trace && CurEntry + 1 < Trace->Entries.size() &&
          PC == Trace->Entries[CurEntry + 1]) {
        ++CurEntry;
        Res.TraceEntries.push_back(PC);
      }

      if (Res.NumInsns >= Cfg.MaxInsns) {
        endBlock(PC, JumpKind::Boring);
        closeExtent(ExtentStart, PC);
        return std::move(Res);
      }

      uint8_t Buf[MaxInstrLen];
      uint32_t Got = Fetch(PC, Buf, MaxInstrLen);
      Instr I;
      if (Got == 0 || !decode(Buf, Got, I)) {
        // The dispatcher turns a NoDecode block end into a SIGILL-style
        // event when it is actually reached.
        Res.DecodeFailed = true;
        endBlock(PC, JumpKind::NoDecode);
        closeExtent(ExtentStart, PC);
        return std::move(Res);
      }

      IRSB &SB = *Res.SB;
      SB.imark(PC, I.Len);
      // Keep the guest PC in the ThreadState current at instruction
      // granularity (paper Figure 1, statements 5/15); the optimiser
      // removes the writes it can prove redundant.
      if (Res.NumInsns > 0)
        SB.put(gso::PC, SB.constI32(PC));
      ++Res.NumInsns;

      uint32_t Next = PC + I.Len;
      switch (translateInsn(I, PC, Next)) {
      case InsnEnd::Fallthrough:
        PC = Next;
        continue;
      case InsnEnd::BlockDone:
        closeExtent(ExtentStart, Next);
        return std::move(Res);
      case InsnEnd::SeamTo:
        // The likely direction of the constituent's ending branch: the
        // unlikely side exit is already emitted; carry on across the seam.
        closeExtent(ExtentStart, Next);
        ++CurEntry;
        Res.TraceEntries.push_back(ChaseTarget);
        PC = ChaseTarget;
        ExtentStart = PC;
        continue;
      case InsnEnd::ChaseTo:
        closeExtent(ExtentStart, Next);
        if (Trace && ChaseTarget == Entry) {
          // A jump back to the trace head: end here so the trace chains
          // to itself instead of unrolling the loop.
          endBlock(ChaseTarget, JumpKind::Boring);
          return std::move(Res);
        }
        if (Chases >= Cfg.MaxChases) {
          endBlock(ChaseTarget, JumpKind::Boring);
          return std::move(Res);
        }
        ++Chases;
        PC = ChaseTarget;
        ExtentStart = PC;
        continue;
      }
    }
  }

private:
  enum class InsnEnd { Fallthrough, BlockDone, ChaseTo, SeamTo };

  /// Where the hot path continues after the current constituent (~0 when
  /// following a plain superblock or past the end of the spec).
  uint32_t preferredNext() const {
    if (!Trace)
      return ~0u;
    if (CurEntry + 1 < Trace->Entries.size())
      return Trace->Entries[CurEntry + 1];
    return Trace->PreferredFinal;
  }

  bool atLastEntry() const {
    return Trace && CurEntry + 1 >= Trace->Entries.size();
  }

  void closeExtent(uint32_t Start, uint32_t End) {
    if (End > Start)
      Res.Extents.push_back({Start, End});
  }

  void endBlock(uint32_t NextPC, JumpKind K) {
    Res.SB->setNext(Res.SB->constI32(NextPC), K);
  }

  // --- small IR-building conveniences -----------------------------------

  Expr *gpr(unsigned I) { return Res.SB->get(gso::gpr(I), Ty::I32); }
  Expr *fpr(unsigned I) { return Res.SB->get(gso::fpr(I), Ty::F64); }
  void putGpr(unsigned I, Expr *E) { Res.SB->put(gso::gpr(I), E); }
  void putFpr(unsigned I, Expr *E) { Res.SB->put(gso::fpr(I), E); }

  /// Captures a guest register read in a temporary — required when the
  /// value is used after a Put that might alias the source register.
  Expr *gprT(unsigned I) {
    IRSB &SB = *Res.SB;
    return SB.rdTmp(SB.wrTmp(gpr(I)));
  }

  void setThunk(CCOp Op, Expr *Dep1, Expr *Dep2) {
    IRSB &SB = *Res.SB;
    SB.put(gso::CC_OP, SB.constI32(static_cast<uint32_t>(Op)));
    SB.put(gso::CC_DEP1, Dep1);
    SB.put(gso::CC_DEP2, Dep2);
    SB.put(gso::CC_NDEP, SB.constI32(0));
  }

  /// I8-typed shift amount from a register (low 5 bits are significant).
  Expr *shiftAmt(unsigned RegIdx) {
    IRSB &SB = *Res.SB;
    return SB.unop(Op::T32to8, gpr(RegIdx));
  }

  InsnEnd translateInsn(const Instr &I, uint32_t PC, uint32_t Next) {
    IRSB &SB = *Res.SB;
    switch (I.Op) {
    case vg1::Opcode::NOP:
      return InsnEnd::Fallthrough;

    case vg1::Opcode::HLT:
      endBlock(Next, JumpKind::Exit);
      return InsnEnd::BlockDone;

    case vg1::Opcode::MOVI:
      putGpr(I.Rd, SB.constI32(static_cast<uint32_t>(I.Imm)));
      return InsnEnd::Fallthrough;

    case vg1::Opcode::MOV:
      putGpr(I.Rd, gpr(I.Rs));
      return InsnEnd::Fallthrough;

    case vg1::Opcode::ADD:
    case vg1::Opcode::SUB: {
      Expr *A = gprT(I.Rs), *B = gprT(I.Rt);
      bool IsAdd = I.Op == vg1::Opcode::ADD;
      TmpId T = SB.wrTmp(SB.binop(IsAdd ? Op::Add32 : Op::Sub32, A, B));
      setThunk(IsAdd ? CCOp::Add : CCOp::Sub, A, B);
      putGpr(I.Rd, SB.rdTmp(T));
      return InsnEnd::Fallthrough;
    }

    case vg1::Opcode::AND:
    case vg1::Opcode::OR:
    case vg1::Opcode::XOR: {
      Op O = I.Op == vg1::Opcode::AND  ? Op::And32
             : I.Op == vg1::Opcode::OR ? Op::Or32
                                       : Op::Xor32;
      TmpId T = SB.wrTmp(SB.binop(O, gpr(I.Rs), gpr(I.Rt)));
      setThunk(CCOp::Logic, SB.rdTmp(T), SB.constI32(0));
      putGpr(I.Rd, SB.rdTmp(T));
      return InsnEnd::Fallthrough;
    }

    case vg1::Opcode::SHL:
    case vg1::Opcode::SHR:
    case vg1::Opcode::SAR: {
      Op O = I.Op == vg1::Opcode::SHL   ? Op::Shl32
             : I.Op == vg1::Opcode::SHR ? Op::Shr32
                                        : Op::Sar32;
      TmpId T = SB.wrTmp(SB.binop(O, gpr(I.Rs), shiftAmt(I.Rt)));
      setThunk(CCOp::Logic, SB.rdTmp(T), SB.constI32(0));
      putGpr(I.Rd, SB.rdTmp(T));
      return InsnEnd::Fallthrough;
    }

    case vg1::Opcode::MUL:
      putGpr(I.Rd, SB.binop(Op::Mul32, gpr(I.Rs), gpr(I.Rt)));
      return InsnEnd::Fallthrough;
    case vg1::Opcode::DIVU:
      putGpr(I.Rd, SB.binop(Op::DivU32, gpr(I.Rs), gpr(I.Rt)));
      return InsnEnd::Fallthrough;
    case vg1::Opcode::DIVS:
      putGpr(I.Rd, SB.binop(Op::DivS32, gpr(I.Rs), gpr(I.Rt)));
      return InsnEnd::Fallthrough;

    case vg1::Opcode::ADDI: {
      Expr *A = gprT(I.Rs);
      Expr *B = SB.constI32(static_cast<uint32_t>(I.Imm));
      TmpId T = SB.wrTmp(SB.binop(Op::Add32, A, B));
      setThunk(CCOp::Add, A, B);
      putGpr(I.Rd, SB.rdTmp(T));
      return InsnEnd::Fallthrough;
    }

    case vg1::Opcode::ANDI: {
      TmpId T = SB.wrTmp(SB.binop(Op::And32, gpr(I.Rs),
                                  SB.constI32(static_cast<uint32_t>(I.Imm))));
      setThunk(CCOp::Logic, SB.rdTmp(T), SB.constI32(0));
      putGpr(I.Rd, SB.rdTmp(T));
      return InsnEnd::Fallthrough;
    }

    case vg1::Opcode::SHLI:
    case vg1::Opcode::SHRI:
    case vg1::Opcode::SARI: {
      Op O = I.Op == vg1::Opcode::SHLI   ? Op::Shl32
             : I.Op == vg1::Opcode::SHRI ? Op::Shr32
                                         : Op::Sar32;
      TmpId T = SB.wrTmp(
          SB.binop(O, gpr(I.Rs), SB.constI8(static_cast<uint8_t>(I.Imm))));
      setThunk(CCOp::Logic, SB.rdTmp(T), SB.constI32(0));
      putGpr(I.Rd, SB.rdTmp(T));
      return InsnEnd::Fallthrough;
    }

    case vg1::Opcode::CMP:
      setThunk(CCOp::Sub, gpr(I.Rd), gpr(I.Rs));
      return InsnEnd::Fallthrough;
    case vg1::Opcode::CMPI:
      setThunk(CCOp::Sub, gpr(I.Rd),
               SB.constI32(static_cast<uint32_t>(I.Imm)));
      return InsnEnd::Fallthrough;

    case vg1::Opcode::LD:
    case vg1::Opcode::LDB:
    case vg1::Opcode::LDSB:
    case vg1::Opcode::LDH:
    case vg1::Opcode::LDSH: {
      Expr *Addr = SB.binop(Op::Add32, gpr(I.Rs),
                            SB.constI32(static_cast<uint32_t>(I.Imm)));
      TmpId TA = SB.wrTmp(Addr);
      Expr *Val;
      switch (I.Op) {
      case vg1::Opcode::LD:
        Val = SB.load(Ty::I32, SB.rdTmp(TA));
        break;
      case vg1::Opcode::LDB:
        Val = SB.unop(Op::U8to32, SB.load(Ty::I8, SB.rdTmp(TA)));
        break;
      case vg1::Opcode::LDSB:
        Val = SB.unop(Op::S8to32, SB.load(Ty::I8, SB.rdTmp(TA)));
        break;
      case vg1::Opcode::LDH:
        Val = SB.unop(Op::U16to32, SB.load(Ty::I16, SB.rdTmp(TA)));
        break;
      default:
        Val = SB.unop(Op::S16to32, SB.load(Ty::I16, SB.rdTmp(TA)));
        break;
      }
      putGpr(I.Rd, Val);
      return InsnEnd::Fallthrough;
    }

    case vg1::Opcode::ST:
    case vg1::Opcode::STB:
    case vg1::Opcode::STH: {
      Expr *Addr = SB.binop(Op::Add32, gpr(I.Rd),
                            SB.constI32(static_cast<uint32_t>(I.Imm)));
      Expr *Val = gpr(I.Rs);
      if (I.Op == vg1::Opcode::STB)
        Val = SB.unop(Op::T32to8, Val);
      else if (I.Op == vg1::Opcode::STH)
        Val = SB.unop(Op::T32to16, Val);
      SB.store(Addr, Val);
      return InsnEnd::Fallthrough;
    }

    case vg1::Opcode::LDX: {
      // The CISC addressing mode becomes an explicit address tree, exposing
      // the intermediate address to tools (paper Figure 1, statement 2).
      Expr *Addr = SB.binop(
          Op::Add32,
          SB.binop(Op::Add32, gpr(I.Rs),
                   SB.binop(Op::Shl32, gpr(I.Rt), SB.constI8(I.Scale))),
          SB.constI32(static_cast<uint32_t>(I.Imm)));
      TmpId TA = SB.wrTmp(Addr);
      putGpr(I.Rd, SB.load(Ty::I32, SB.rdTmp(TA)));
      return InsnEnd::Fallthrough;
    }

    case vg1::Opcode::STX: {
      Expr *Addr = SB.binop(
          Op::Add32,
          SB.binop(Op::Add32, gpr(I.Rd),
                   SB.binop(Op::Shl32, gpr(I.Rt), SB.constI8(I.Scale))),
          SB.constI32(static_cast<uint32_t>(I.Imm)));
      SB.store(Addr, gpr(I.Rs));
      return InsnEnd::Fallthrough;
    }

    case vg1::Opcode::BCC: {
      Expr *CondE = SB.ccall(
          &CalcCondCallee, Ty::I32,
          {SB.constI32(static_cast<uint32_t>(I.BCond)),
           SB.get(gso::CC_OP, Ty::I32), SB.get(gso::CC_DEP1, Ty::I32),
           SB.get(gso::CC_DEP2, Ty::I32)});
      TmpId TC = SB.wrTmp(CondE);
      uint32_t Target = static_cast<uint32_t>(I.Imm);
      uint32_t Pref = preferredNext();
      if (Trace && Pref == Target && Target != Next) {
        // Speculate taken: the fall-through becomes the guarded side
        // exit and disassembly continues at the branch target.
        SB.exit(SB.binop(Op::CmpEQ32, SB.rdTmp(TC), SB.constI32(0)), Next,
                JumpKind::Boring);
        if (atLastEntry()) {
          endBlock(Target, JumpKind::Boring);
          return InsnEnd::BlockDone;
        }
        ChaseTarget = Target;
        return InsnEnd::SeamTo;
      }
      SB.exit(SB.unop(Op::CmpNEZ32, SB.rdTmp(TC)), Target,
              JumpKind::Boring);
      if (Trace && Pref == Next && !atLastEntry()) {
        // Speculate not-taken: the taken side exit above guards the seam.
        ChaseTarget = Next;
        return InsnEnd::SeamTo;
      }
      // Plain superblock end — also the trace's graceful degradation when
      // the code no longer matches the recorded hot path.
      endBlock(Next, JumpKind::Boring);
      return InsnEnd::BlockDone;
    }

    case vg1::Opcode::JMP:
      ChaseTarget = static_cast<uint32_t>(I.Imm);
      return InsnEnd::ChaseTo;

    case vg1::Opcode::JMPR:
      Res.SB->setNext(gpr(I.Rd), JumpKind::Boring);
      return InsnEnd::BlockDone;

    case vg1::Opcode::CALL:
    case vg1::Opcode::CALLR: {
      Expr *Target = I.Op == vg1::Opcode::CALL
                         ? SB.constI32(static_cast<uint32_t>(I.Imm))
                         : gprT(I.Rd);
      TmpId NewSP =
          SB.wrTmp(SB.binop(Op::Sub32, gpr(RegSP), SB.constI32(4)));
      // SP is updated before the store so stack-allocation events (R7)
      // precede the write: the return address slot becomes active, then
      // defined.
      SB.put(gso::gpr(RegSP), SB.rdTmp(NewSP));
      SB.store(SB.rdTmp(NewSP), SB.constI32(Next));
      SB.setNext(Target, JumpKind::Call);
      return InsnEnd::BlockDone;
    }

    case vg1::Opcode::RET: {
      TmpId SP = SB.wrTmp(gpr(RegSP));
      TmpId RetAddr = SB.wrTmp(SB.load(Ty::I32, SB.rdTmp(SP)));
      SB.put(gso::gpr(RegSP),
             SB.binop(Op::Add32, SB.rdTmp(SP), SB.constI32(4)));
      SB.setNext(SB.rdTmp(RetAddr), JumpKind::Ret);
      return InsnEnd::BlockDone;
    }

    case vg1::Opcode::PUSH: {
      // Capture the value first (push sp must push the OLD sp), update SP
      // (firing stack events), then store.
      Expr *Val = gprT(I.Rd);
      TmpId NewSP =
          SB.wrTmp(SB.binop(Op::Sub32, gpr(RegSP), SB.constI32(4)));
      SB.put(gso::gpr(RegSP), SB.rdTmp(NewSP));
      SB.store(SB.rdTmp(NewSP), Val);
      return InsnEnd::Fallthrough;
    }

    case vg1::Opcode::POP: {
      TmpId SP = SB.wrTmp(gpr(RegSP));
      TmpId Val = SB.wrTmp(SB.load(Ty::I32, SB.rdTmp(SP)));
      SB.put(gso::gpr(RegSP),
             SB.binop(Op::Add32, SB.rdTmp(SP), SB.constI32(4)));
      putGpr(I.Rd, SB.rdTmp(Val)); // pop into SP: loaded value wins
      return InsnEnd::Fallthrough;
    }

    case vg1::Opcode::SYS:
      endBlock(Next, JumpKind::Syscall);
      return InsnEnd::BlockDone;

    case vg1::Opcode::CPUINFO:
      SB.dirty(&CpuInfoCallee, {}, NoTmp, nullptr,
               {{gso::gpr(0), 4, true}, {gso::gpr(1), 4, true}});
      return InsnEnd::Fallthrough;

    case vg1::Opcode::CLREQ:
      endBlock(Next, JumpKind::ClientReq);
      return InsnEnd::BlockDone;

    case vg1::Opcode::FADD:
    case vg1::Opcode::FSUB:
    case vg1::Opcode::FMUL:
    case vg1::Opcode::FDIV: {
      Op O = I.Op == vg1::Opcode::FADD   ? Op::AddF64
             : I.Op == vg1::Opcode::FSUB ? Op::SubF64
             : I.Op == vg1::Opcode::FMUL ? Op::MulF64
                                         : Op::DivF64;
      putFpr(I.Rd, SB.binop(O, fpr(I.Rs), fpr(I.Rt)));
      return InsnEnd::Fallthrough;
    }

    case vg1::Opcode::FNEG:
      putFpr(I.Rd, SB.unop(Op::NegF64, fpr(I.Rs)));
      return InsnEnd::Fallthrough;
    case vg1::Opcode::FMOV:
      putFpr(I.Rd, fpr(I.Rs));
      return InsnEnd::Fallthrough;

    case vg1::Opcode::FLD: {
      Expr *Addr = SB.binop(Op::Add32, gpr(I.Rs),
                            SB.constI32(static_cast<uint32_t>(I.Imm)));
      putFpr(I.Rd, SB.load(Ty::F64, Addr));
      return InsnEnd::Fallthrough;
    }
    case vg1::Opcode::FST: {
      Expr *Addr = SB.binop(Op::Add32, gpr(I.Rd),
                            SB.constI32(static_cast<uint32_t>(I.Imm)));
      SB.store(Addr, fpr(I.Rs));
      return InsnEnd::Fallthrough;
    }

    case vg1::Opcode::FITOD:
      putFpr(I.Rd, SB.unop(Op::I32StoF64, gpr(I.Rs)));
      return InsnEnd::Fallthrough;
    case vg1::Opcode::FDTOI:
      putGpr(I.Rd, SB.unop(Op::F64toI32S, fpr(I.Rs)));
      return InsnEnd::Fallthrough;

    case vg1::Opcode::FCMP:
      setThunk(CCOp::Copy, SB.binop(Op::CmpF64, fpr(I.Rd), fpr(I.Rs)),
               SB.constI32(0));
      return InsnEnd::Fallthrough;

    case vg1::Opcode::FMOVI:
      putFpr(I.Rd, SB.mkConst(Ty::F64, I.Imm64));
      return InsnEnd::Fallthrough;

    case vg1::Opcode::VADD8:
      putGpr(I.Rd, SB.binop(Op::Add8x4, gpr(I.Rs), gpr(I.Rt)));
      return InsnEnd::Fallthrough;
    case vg1::Opcode::VSUB8:
      putGpr(I.Rd, SB.binop(Op::Sub8x4, gpr(I.Rs), gpr(I.Rt)));
      return InsnEnd::Fallthrough;
    case vg1::Opcode::VCMPGT8:
      putGpr(I.Rd, SB.binop(Op::CmpGT8Sx4, gpr(I.Rs), gpr(I.Rt)));
      return InsnEnd::Fallthrough;
    }
    unreachable("translateInsn: unhandled opcode");
  }

  uint32_t Entry;
  const FetchFn &Fetch;
  const FrontendConfig &Cfg;
  const TraceSpec *Trace;
  size_t CurEntry = 0;
  DisasmResult Res;
  uint32_t ChaseTarget = 0;
};

} // namespace

DisasmResult vg::disassembleSB(uint32_t Addr, const FetchFn &Fetch,
                               const FrontendConfig &Cfg) {
  Translator T(Addr, Fetch, Cfg);
  return T.run();
}

DisasmResult vg::disassembleTrace(const TraceSpec &Spec, const FetchFn &Fetch,
                                  const FrontendConfig &Cfg) {
  Translator T(Spec.Entries.at(0), Fetch, Cfg, &Spec);
  return T.run();
}

bool vg::flagsDeadAt(uint32_t PC, const FetchFn &Fetch,
                     std::vector<std::pair<uint32_t, uint32_t>> &Scanned) {
  std::vector<std::pair<uint32_t, uint32_t>> Local;
  uint32_t RunStart = PC, Cur = PC;
  unsigned Chases = 0;
  for (unsigned N = 0; N != 16; ++N) {
    uint8_t Buf[MaxInstrLen];
    uint32_t Got = Fetch(Cur, Buf, MaxInstrLen);
    Instr I;
    if (Got == 0 || !decode(Buf, Got, I))
      return false;
    uint32_t End = Cur + I.Len;
    if (opSetsFlags(I.Op)) {
      // Full thunk overwrite before any read: proof complete. Record the
      // scanned bytes so retranslation is forced if they change.
      Local.push_back({RunStart, End});
      Scanned.insert(Scanned.end(), Local.begin(), Local.end());
      return true;
    }
    switch (I.Op) {
    case vg1::Opcode::JMP:
      if (++Chases > 2)
        return false;
      Local.push_back({RunStart, End});
      Cur = static_cast<uint32_t>(I.Imm);
      RunStart = Cur;
      break;
    case vg1::Opcode::BCC:    // reads the thunk
    case vg1::Opcode::JMPR:   // leaves straight-line code:
    case vg1::Opcode::CALL:   // the continuation is unknown or the
    case vg1::Opcode::CALLR:  // kernel/handler may observe the thunk
    case vg1::Opcode::RET:
    case vg1::Opcode::SYS:
    case vg1::Opcode::HLT:
    case vg1::Opcode::CLREQ:
      return false;
    default:
      Cur = End;
      break;
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Partial evaluation of vg1_calc_cond (the %eflags specialisation hook)
//===----------------------------------------------------------------------===//

namespace {

/// Builds U1to32(Cmp...) so the replacement has the helper's I32 type.
Expr *widen(IRSB &SB, Expr *I1E) { return SB.unop(Op::U1to32, I1E); }

Expr *specSub(IRSB &SB, Cond C, Expr *D1, Expr *D2) {
  switch (C) {
  case Cond::EQ:
    return widen(SB, SB.binop(Op::CmpEQ32, D1, D2));
  case Cond::NE:
    return widen(SB, SB.binop(Op::CmpNE32, D1, D2));
  case Cond::LTS:
    return widen(SB, SB.binop(Op::CmpLT32S, D1, D2));
  case Cond::GES:
    return widen(SB, SB.binop(Op::CmpLE32S, D2, D1));
  case Cond::LTU:
    return widen(SB, SB.binop(Op::CmpLT32U, D1, D2));
  case Cond::GEU:
    return widen(SB, SB.binop(Op::CmpLE32U, D2, D1));
  case Cond::GTS:
    return widen(SB, SB.binop(Op::CmpLT32S, D2, D1));
  case Cond::LES:
    return widen(SB, SB.binop(Op::CmpLE32S, D1, D2));
  case Cond::MI:
    return widen(SB, SB.binop(Op::CmpLT32S, SB.binop(Op::Sub32, D1, D2),
                              SB.constI32(0)));
  case Cond::PL:
    return widen(SB, SB.binop(Op::CmpLE32S, SB.constI32(0),
                              SB.binop(Op::Sub32, D1, D2)));
  }
  return nullptr;
}

Expr *specLogic(IRSB &SB, Cond C, Expr *D1) {
  Expr *Zero = SB.constI32(0);
  switch (C) {
  case Cond::EQ:
    return widen(SB, SB.binop(Op::CmpEQ32, D1, Zero));
  case Cond::NE:
    return widen(SB, SB.binop(Op::CmpNE32, D1, Zero));
  case Cond::MI:
  case Cond::LTS: // V=0 after logic ops, so LTS degenerates to N
    return widen(SB, SB.binop(Op::CmpLT32S, D1, Zero));
  case Cond::PL:
  case Cond::GES:
    return widen(SB, SB.binop(Op::CmpLE32S, Zero, D1));
  case Cond::GTS:
    return widen(SB, SB.binop(Op::CmpLT32S, Zero, D1));
  case Cond::LES:
    return widen(SB, SB.binop(Op::CmpLE32S, D1, Zero));
  case Cond::LTU: // C=0 after logic ops: LTU (= !C) is always true
    return SB.constI32(1);
  case Cond::GEU:
    return SB.constI32(0);
  }
  return nullptr;
}

Expr *specAdd(IRSB &SB, Cond C, Expr *D1, Expr *D2) {
  Expr *Sum = SB.binop(Op::Add32, D1, D2);
  Expr *Zero = SB.constI32(0);
  switch (C) {
  case Cond::EQ:
    return widen(SB, SB.binop(Op::CmpEQ32, Sum, Zero));
  case Cond::NE:
    return widen(SB, SB.binop(Op::CmpNE32, Sum, Zero));
  case Cond::MI:
    return widen(SB, SB.binop(Op::CmpLT32S, Sum, Zero));
  case Cond::PL:
    return widen(SB, SB.binop(Op::CmpLE32S, Zero, Sum));
  default:
    return nullptr; // carry/overflow conditions keep the helper call
  }
}

Expr *specCopy(IRSB &SB, Cond C, Expr *D1) {
  auto BitSet = [&](uint32_t Bit) {
    return widen(SB, SB.binop(Op::CmpNE32,
                              SB.binop(Op::And32, D1, SB.constI32(Bit)),
                              SB.constI32(0)));
  };
  auto BitClear = [&](uint32_t Bit) {
    return widen(SB, SB.binop(Op::CmpEQ32,
                              SB.binop(Op::And32, D1, SB.constI32(Bit)),
                              SB.constI32(0)));
  };
  switch (C) {
  case Cond::EQ:
    return BitSet(FlagZ);
  case Cond::NE:
    return BitClear(FlagZ);
  case Cond::MI:
    return BitSet(FlagN);
  case Cond::PL:
    return BitClear(FlagN);
  case Cond::LTU:
    return BitClear(FlagC);
  case Cond::GEU:
    return BitSet(FlagC);
  case Cond::LTS:
    return widen(SB,
                 SB.binop(Op::CmpNE32,
                          SB.binop(Op::And32,
                                   SB.binop(Op::Shr32, D1, SB.constI8(3)),
                                   SB.constI32(1)),
                          SB.binop(Op::And32, D1, SB.constI32(1))));
  case Cond::GES:
    return widen(SB,
                 SB.binop(Op::CmpEQ32,
                          SB.binop(Op::And32,
                                   SB.binop(Op::Shr32, D1, SB.constI8(3)),
                                   SB.constI32(1)),
                          SB.binop(Op::And32, D1, SB.constI32(1))));
  default:
    return nullptr; // GTS/LES on raw flags keep the helper call
  }
}

} // namespace

SpecFn vg::vg1SpecFn() {
  return [](IRSB &SB, const Callee *C,
            const std::vector<Expr *> &Args) -> Expr * {
    if (C->SpecKey != SpecKeyCalcCond || Args.size() != 4)
      return nullptr;
    Expr *CondA = Args[0], *OpA = Args[1], *D1 = Args[2], *D2 = Args[3];
    if (!CondA->isConst() || !OpA->isConst())
      return nullptr;
    // Fully constant: evaluate outright.
    if (D1->isConst() && D2->isConst())
      return SB.constI32(static_cast<uint32_t>(
          calcCond(static_cast<uint32_t>(CondA->ConstVal),
                   static_cast<uint32_t>(OpA->ConstVal),
                   static_cast<uint32_t>(D1->ConstVal),
                   static_cast<uint32_t>(D2->ConstVal))));
    Cond CC = static_cast<Cond>(CondA->ConstVal);
    switch (static_cast<CCOp>(OpA->ConstVal)) {
    case CCOp::Sub:
      return specSub(SB, CC, D1, D2);
    case CCOp::Logic:
      return specLogic(SB, CC, D1);
    case CCOp::Add:
      return specAdd(SB, CC, D1, D2);
    case CCOp::Copy:
      return specCopy(SB, CC, D1);
    }
    return nullptr;
  };
}
