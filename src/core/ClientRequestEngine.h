//===-- core/ClientRequestEngine.h - Client-request dispatch ----*- C++ -*-==//
///
/// \file
/// The client-request trap door of Section 3.11, extracted from the Core
/// monolith. A guest CLREQ lands here (between code blocks, under the
/// world lock when the sharded scheduler runs): the engine normalises
/// legacy flat codes, decodes the 16-bit namespace tag, services the
/// core's own 'C','R' requests, and offers everything else to the running
/// tool. Unrecognised requests return 0 — exactly what CLREQ yields when
/// run natively — and are counted, never fatal.
///
/// The engine owns the two services core requests reach for: the
/// registered-stack table (CrStackRegister and friends, consulted by the
/// stack-switch heuristic) and the replacement allocator (R8: CrMalloc and
/// friends, plus the host redirects of the program's allocator symbols).
///
//===----------------------------------------------------------------------===//
#ifndef VG_CORE_CLIENTREQUESTENGINE_H
#define VG_CORE_CLIENTREQUESTENGINE_H

#include <cstdint>
#include <map>
#include <vector>

namespace vg {

class Core;
class ThreadState;

class ClientRequestEngine {
public:
  explicit ClientRequestEngine(Core &C) : C(C) {}

  /// Services the CLREQ the thread just executed: request code in r0,
  /// arguments in r1..r4, result written back to r0.
  void handle(ThreadState &TS);

  /// Requests no namespace recognised (returned 0 to the guest).
  uint64_t unknownRequests() const { return UnknownRequests; }

  // --- registered alternative stacks (Section 3.12) ----------------------
  /// Id of the registered stack containing \p Addr, -1 if none (the
  /// SP-tracking helper's stack-switch heuristic).
  int stackIdOf(uint32_t Addr) const;
  /// True when \p Addr lies in any registered stack (SMC stack policy).
  bool onRegisteredStack(uint32_t Addr) const;

  // --- replacement allocator (R8) ----------------------------------------
  uint32_t clientMalloc(int Tid, uint32_t Size, bool Zeroed);
  bool clientFree(int Tid, uint32_t Addr);
  uint32_t clientRealloc(int Tid, uint32_t Addr, uint32_t NewSize);
  uint32_t heapBlockSize(uint32_t Addr) const;
  const std::map<uint32_t, uint32_t> &heapBlocks() const { return HeapLive; }
  uint64_t heapBytesLive() const { return HeapLiveBytes; }

private:
  Core &C;

  struct RegisteredStack {
    uint32_t Id, Start, End;
  };
  std::vector<RegisteredStack> AltStacks;
  uint32_t NextStackId = 1;

  uint64_t UnknownRequests = 0;

  // Replacement allocator state.
  uint32_t HeapArenaBase = 0, HeapArenaEnd = 0, HeapBump = 0;
  uint32_t HeapMapped = 0; ///< arena pages are mapped lazily up to here
  std::map<uint32_t, uint32_t> HeapLive; ///< payload addr -> size
  /// payload addr -> (raw start, raw size), including red zones.
  std::map<uint32_t, std::pair<uint32_t, uint32_t>> HeapMeta;
  std::vector<std::pair<uint32_t, uint32_t>> HeapFree; ///< addr,size (raw)
  uint64_t HeapLiveBytes = 0;
};

} // namespace vg

#endif // VG_CORE_CLIENTREQUESTENGINE_H
