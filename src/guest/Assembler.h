//===-- guest/Assembler.h - Programmatic VG1 assembler ----------*- C++ -*-==//
///
/// \file
/// A programmatic assembler for VG1. Guest programs (the guest runtime
/// library, examples, tests, and the SPEC-like workloads of the Table 2
/// harness) are written against this API: one method per instruction,
/// forward-referencing labels, data directives, and named symbols that end
/// up in the guest executable image's symbol table (used by function
/// redirection, R8).
///
//===----------------------------------------------------------------------===//
#ifndef VG_GUEST_ASSEMBLER_H
#define VG_GUEST_ASSEMBLER_H

#include "guest/GuestArch.h"

#include <cassert>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace vg {
namespace vg1 {

/// GPR names for the assembler API.
enum class Reg : uint8_t {
  R0 = 0, R1, R2, R3, R4, R5, R6, R7,
  R8, R9, R10, R11, R12, R13, R14, R15,
  SP = 14,
  LR = 15,
};

/// FPR names for the assembler API.
enum class FReg : uint8_t { F0 = 0, F1, F2, F3, F4, F5, F6, F7 };

/// A forward-referencing code label.
struct Label {
  int Id = -1;
  bool valid() const { return Id >= 0; }
};

/// Assembles a VG1 code+data image based at a fixed guest address.
class Assembler {
public:
  explicit Assembler(uint32_t BaseAddr) : Base(BaseAddr) {}

  uint32_t baseAddr() const { return Base; }
  /// Current guest address (next byte to be emitted).
  uint32_t here() const { return Base + static_cast<uint32_t>(Code.size()); }

  // --- Labels and symbols ---------------------------------------------
  Label newLabel();
  void bind(Label L);
  /// Creates a label already bound at the current position.
  Label boundLabel() {
    Label L = newLabel();
    bind(L);
    return L;
  }
  /// Records a named symbol at the current position (ends up in the image
  /// symbol table; function redirection is keyed on these).
  void symbol(const std::string &Name);
  /// Guest address of a bound label.
  uint32_t labelAddr(Label L) const;

  // --- Moves and ALU ---------------------------------------------------
  void movi(Reg Rd, uint32_t Imm);
  void mov(Reg Rd, Reg Rs);
  void add(Reg Rd, Reg Rs, Reg Rt) { alu3(Opcode::ADD, Rd, Rs, Rt); }
  void sub(Reg Rd, Reg Rs, Reg Rt) { alu3(Opcode::SUB, Rd, Rs, Rt); }
  void and_(Reg Rd, Reg Rs, Reg Rt) { alu3(Opcode::AND, Rd, Rs, Rt); }
  void or_(Reg Rd, Reg Rs, Reg Rt) { alu3(Opcode::OR, Rd, Rs, Rt); }
  void xor_(Reg Rd, Reg Rs, Reg Rt) { alu3(Opcode::XOR, Rd, Rs, Rt); }
  void shl(Reg Rd, Reg Rs, Reg Rt) { alu3(Opcode::SHL, Rd, Rs, Rt); }
  void shr(Reg Rd, Reg Rs, Reg Rt) { alu3(Opcode::SHR, Rd, Rs, Rt); }
  void sar(Reg Rd, Reg Rs, Reg Rt) { alu3(Opcode::SAR, Rd, Rs, Rt); }
  void mul(Reg Rd, Reg Rs, Reg Rt) { alu3(Opcode::MUL, Rd, Rs, Rt); }
  void divu(Reg Rd, Reg Rs, Reg Rt) { alu3(Opcode::DIVU, Rd, Rs, Rt); }
  void divs(Reg Rd, Reg Rs, Reg Rt) { alu3(Opcode::DIVS, Rd, Rs, Rt); }
  void addi(Reg Rd, Reg Rs, int32_t Imm);
  void andi(Reg Rd, Reg Rs, uint32_t Imm);
  void shli(Reg Rd, Reg Rs, uint8_t Imm);
  void shri(Reg Rd, Reg Rs, uint8_t Imm);
  void sari(Reg Rd, Reg Rs, uint8_t Imm);
  void cmp(Reg Rs, Reg Rt);
  void cmpi(Reg Rs, int32_t Imm);

  // --- Memory ----------------------------------------------------------
  void ld(Reg Rd, Reg Base, int16_t Disp) { mem(Opcode::LD, Rd, Base, Disp); }
  void st(Reg Base, int16_t Disp, Reg Rv) { mem(Opcode::ST, Base, Rv, Disp); }
  void ldb(Reg Rd, Reg B, int16_t D) { mem(Opcode::LDB, Rd, B, D); }
  void ldsb(Reg Rd, Reg B, int16_t D) { mem(Opcode::LDSB, Rd, B, D); }
  void stb(Reg B, int16_t D, Reg Rv) { mem(Opcode::STB, B, Rv, D); }
  void ldh(Reg Rd, Reg B, int16_t D) { mem(Opcode::LDH, Rd, B, D); }
  void ldsh(Reg Rd, Reg B, int16_t D) { mem(Opcode::LDSH, Rd, B, D); }
  void sth(Reg B, int16_t D, Reg Rv) { mem(Opcode::STH, B, Rv, D); }
  void ldx(Reg Rd, Reg Base, Reg Index, uint8_t Scale, int32_t Disp);
  void stx(Reg Base, Reg Index, uint8_t Scale, int32_t Disp, Reg Rv);
  void push(Reg Rs);
  void pop(Reg Rd);

  // --- Control flow ----------------------------------------------------
  void bcc(Cond C, Label Target);
  void beq(Label T) { bcc(Cond::EQ, T); }
  void bne(Label T) { bcc(Cond::NE, T); }
  void blt(Label T) { bcc(Cond::LTS, T); }
  void bge(Label T) { bcc(Cond::GES, T); }
  void bltu(Label T) { bcc(Cond::LTU, T); }
  void bgeu(Label T) { bcc(Cond::GEU, T); }
  void bgt(Label T) { bcc(Cond::GTS, T); }
  void ble(Label T) { bcc(Cond::LES, T); }
  void jmp(Label Target);
  void jmpAbs(uint32_t Target);
  void jmpr(Reg Rs);
  void call(Label Target);
  void callAbs(uint32_t Target);
  void callr(Reg Rs);
  void ret();
  void sys();
  void cpuinfo();
  void clreq();
  void nop();
  void hlt();

  // --- Floating point and SIMD ----------------------------------------
  void fadd(FReg Fd, FReg Fs, FReg Ft) { falu3(Opcode::FADD, Fd, Fs, Ft); }
  void fsub(FReg Fd, FReg Fs, FReg Ft) { falu3(Opcode::FSUB, Fd, Fs, Ft); }
  void fmul(FReg Fd, FReg Fs, FReg Ft) { falu3(Opcode::FMUL, Fd, Fs, Ft); }
  void fdiv(FReg Fd, FReg Fs, FReg Ft) { falu3(Opcode::FDIV, Fd, Fs, Ft); }
  void fneg(FReg Fd, FReg Fs);
  void fmov(FReg Fd, FReg Fs);
  void fld(FReg Fd, Reg Base, int16_t Disp);
  void fst(Reg Base, int16_t Disp, FReg Fs);
  void fitod(FReg Fd, Reg Rs);
  void fdtoi(Reg Rd, FReg Fs);
  void fcmp(FReg Fs, FReg Ft);
  void fmovi(FReg Fd, double Value);
  void vadd8(Reg Rd, Reg Rs, Reg Rt) { alu3(Opcode::VADD8, Rd, Rs, Rt); }
  void vsub8(Reg Rd, Reg Rs, Reg Rt) { alu3(Opcode::VSUB8, Rd, Rs, Rt); }
  void vcmpgt8(Reg Rd, Reg Rs, Reg Rt) { alu3(Opcode::VCMPGT8, Rd, Rs, Rt); }

  // --- Data directives -------------------------------------------------
  void emitU8(uint8_t V) { Code.push_back(V); }
  void emitU16(uint16_t V);
  void emitU32(uint32_t V);
  void emitU64(uint64_t V);
  void emitF64(double V);
  void emitBytes(const void *Data, size_t Len);
  void emitString(const std::string &S); ///< bytes + NUL terminator
  void emitZeros(size_t Len);
  void align(uint32_t A);
  /// Emits a placeholder u32 that is patched with a label's address.
  void emitLabelAddr(Label L);
  /// Loads a label's absolute address into a register (a MOVI fixup).
  void leai(Reg Rd, Label L);

  // --- Finalisation ----------------------------------------------------
  /// Resolves all fixups and returns the image bytes. All referenced labels
  /// must be bound.
  std::vector<uint8_t> finalize();
  const std::map<std::string, uint32_t> &symbols() const { return Symbols; }

private:
  void alu3(Opcode Op, Reg Rd, Reg Rs, Reg Rt);
  void falu3(Opcode Op, FReg Fd, FReg Fs, FReg Ft);
  void mem(Opcode Op, Reg A, Reg B, int16_t Disp);
  void emitRegPair(Reg A, Reg B) {
    Code.push_back(static_cast<uint8_t>(
        (static_cast<uint8_t>(A) << 4) | static_cast<uint8_t>(B)));
  }
  void addFixup(Label L, size_t Offset);

  struct Fixup {
    int LabelId;
    size_t Offset; ///< byte offset of the u32 to patch
  };

  uint32_t Base;
  std::vector<uint8_t> Code;
  std::vector<int64_t> LabelOffsets; ///< -1 while unbound
  std::vector<Fixup> Fixups;
  std::map<std::string, uint32_t> Symbols;
};

/// Re-encodes a decoded instruction back into machine code. \p Out must
/// have room for MaxInstrLen (10) bytes. Returns the encoded length, or 0
/// if \p I is not encodable (field out of range: register > 15, LDX scale
/// > 3, memory displacement outside int16, shift imm8 outside 0..255).
///
/// This is the inverse of decode(): for every decodable byte sequence B,
/// encodeInstr(decode(B)) reproduces B exactly, up to the don't-care
/// nibbles the decoder ignores (ALU3 byte 2 low nibble, FMOVI byte 1 low
/// nibble), which are re-emitted as 0 — the assembler's canonical form.
/// The round-trip property is enforced over the whole opcode table by
/// tests/RoundTripTests.cpp.
unsigned encodeInstr(const Instr &I, uint8_t *Out);

} // namespace vg1
} // namespace vg

#endif // VG_GUEST_ASSEMBLER_H
