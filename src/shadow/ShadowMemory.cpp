//===-- shadow/ShadowMemory.cpp - Shadow memory ---------------------------==//

#include "shadow/ShadowMemory.h"

using namespace vg;

ShadowMap::Secondary ShadowMap::DsmNoAccess;
ShadowMap::Secondary ShadowMap::DsmDefined;
bool ShadowMap::DsmInit = false;

ShadowMap::ShadowMap() : OwnedIdx(NumChunks, -1) {
  if (!DsmInit) {
    DsmNoAccess.V.fill(0xFF);
    DsmNoAccess.A.fill(0x00);
    DsmDefined.V.fill(0x00);
    DsmDefined.A.fill(0xFF);
    DsmInit = true;
  }
}

const ShadowMap::Secondary *ShadowMap::readable(uint32_t ChunkIdx) const {
  int32_t Idx = OwnedIdx[ChunkIdx];
  if (Idx == -1)
    return &DsmNoAccess;
  if (Idx == -2)
    return &DsmDefined;
  return Owned[static_cast<uint32_t>(Idx)].get();
}

ShadowMap::Secondary *ShadowMap::writable(uint32_t ChunkIdx) {
  int32_t Idx = OwnedIdx[ChunkIdx];
  if (Idx >= 0)
    return Owned[static_cast<uint32_t>(Idx)].get();
  // Materialise a copy of the distinguished secondary (copy-on-write).
  auto S = std::make_unique<Secondary>(Idx == -1 ? DsmNoAccess : DsmDefined);
  Secondary *Raw = S.get();
  OwnedIdx[ChunkIdx] = static_cast<int32_t>(Owned.size());
  Owned.push_back(std::move(S));
  ++Materialised;
  return Raw;
}

namespace {
/// Applies Fn(chunk-relative offset, length) over [Addr, Addr+Len) chunk by
/// chunk.
template <typename Fn>
void forChunks(uint32_t Addr, uint32_t Len, Fn F) {
  while (Len) {
    uint32_t Chunk = Addr >> ShadowMap::ChunkBits;
    uint32_t Off = Addr & (ShadowMap::ChunkSize - 1);
    uint32_t N = std::min(Len, ShadowMap::ChunkSize - Off);
    F(Chunk, Off, N);
    Addr += N;
    Len -= N;
  }
}
} // namespace

void ShadowMap::makeNoAccess(uint32_t Addr, uint32_t Len) {
  forChunks(Addr, Len, [&](uint32_t C, uint32_t Off, uint32_t N) {
    if (Off == 0 && N == ChunkSize && OwnedIdx[C] < 0) {
      OwnedIdx[C] = -1; // whole chunk: swap in the distinguished secondary
      return;
    }
    Secondary *S = writable(C);
    std::memset(S->V.data() + Off, 0xFF, N);
    for (uint32_t I = Off; I != Off + N; ++I)
      S->A[I >> 3] &= static_cast<uint8_t>(~(1u << (I & 7)));
  });
}

void ShadowMap::makeDefined(uint32_t Addr, uint32_t Len) {
  forChunks(Addr, Len, [&](uint32_t C, uint32_t Off, uint32_t N) {
    if (Off == 0 && N == ChunkSize && OwnedIdx[C] < 0) {
      OwnedIdx[C] = -2;
      return;
    }
    Secondary *S = writable(C);
    std::memset(S->V.data() + Off, 0x00, N);
    for (uint32_t I = Off; I != Off + N; ++I)
      S->A[I >> 3] |= static_cast<uint8_t>(1u << (I & 7));
  });
}

void ShadowMap::makeUndefined(uint32_t Addr, uint32_t Len) {
  forChunks(Addr, Len, [&](uint32_t C, uint32_t Off, uint32_t N) {
    Secondary *S = writable(C);
    std::memset(S->V.data() + Off, 0xFF, N);
    for (uint32_t I = Off; I != Off + N; ++I)
      S->A[I >> 3] |= static_cast<uint8_t>(1u << (I & 7));
  });
}

void ShadowMap::copyRange(uint32_t Src, uint32_t Dst, uint32_t Len) {
  // Byte loop; ranges in this system are modest (mremap/realloc).
  for (uint32_t I = 0; I != Len; ++I) {
    uint32_t S = Src + I, D = Dst + I;
    setByte(D, abit(S), vbyte(S));
  }
}

uint8_t ShadowMap::vbyte(uint32_t Addr) const {
  const Secondary *S = readable(Addr >> ChunkBits);
  return S->V[Addr & (ChunkSize - 1)];
}

bool ShadowMap::abit(uint32_t Addr) const {
  const Secondary *S = readable(Addr >> ChunkBits);
  uint32_t Off = Addr & (ChunkSize - 1);
  return S->A[Off >> 3] & (1u << (Off & 7));
}

void ShadowMap::setByte(uint32_t Addr, bool Addressable, uint8_t V) {
  Secondary *S = writable(Addr >> ChunkBits);
  uint32_t Off = Addr & (ChunkSize - 1);
  S->V[Off] = V;
  if (Addressable)
    S->A[Off >> 3] |= static_cast<uint8_t>(1u << (Off & 7));
  else
    S->A[Off >> 3] &= static_cast<uint8_t>(~(1u << (Off & 7)));
}

uint64_t ShadowMap::loadV(uint32_t Addr, uint32_t Size,
                          AddrCheck &Check) const {
  uint64_t V = 0;
  for (uint32_t I = 0; I != Size; ++I) {
    uint32_t A = Addr + I;
    uint8_t VB;
    if (!abit(A)) {
      if (Check.Ok) {
        Check.Ok = false;
        Check.FirstBad = A;
      }
      VB = 0xFF;
    } else {
      VB = vbyte(A);
    }
    V |= static_cast<uint64_t>(VB) << (8 * I);
  }
  return V;
}

void ShadowMap::storeV(uint32_t Addr, uint32_t Size, uint64_t Vbits,
                       AddrCheck &Check) {
  for (uint32_t I = 0; I != Size; ++I) {
    uint32_t A = Addr + I;
    if (!abit(A)) {
      if (Check.Ok) {
        Check.Ok = false;
        Check.FirstBad = A;
      }
      continue;
    }
    Secondary *S = writable(A >> ChunkBits);
    S->V[A & (ChunkSize - 1)] = static_cast<uint8_t>(Vbits >> (8 * I));
  }
}

bool ShadowMap::isAddressable(uint32_t Addr, uint32_t Len,
                              uint32_t &FirstBad) const {
  for (uint32_t I = 0; I != Len; ++I) {
    if (!abit(Addr + I)) {
      FirstBad = Addr + I;
      return false;
    }
  }
  return true;
}

bool ShadowMap::isDefined(uint32_t Addr, uint32_t Len, uint32_t &FirstBad,
                          bool &BadIsUnaddressable) const {
  for (uint32_t I = 0; I != Len; ++I) {
    if (!abit(Addr + I)) {
      FirstBad = Addr + I;
      BadIsUnaddressable = true;
      return false;
    }
    if (vbyte(Addr + I)) {
      FirstBad = Addr + I;
      BadIsUnaddressable = false;
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// DirectShadow
//===----------------------------------------------------------------------===//

DirectShadow::DirectShadow(uint32_t WindowBase, uint32_t WindowSize)
    : Base(WindowBase), Size(WindowSize), V(WindowSize, 0xFF),
      A(WindowSize, 0) {}

void DirectShadow::makeNoAccess(uint32_t Addr, uint32_t Len) {
  if (!covers(Addr, Len))
    return;
  std::memset(V.data() + (Addr - Base), 0xFF, Len);
  std::memset(A.data() + (Addr - Base), 0, Len);
}

void DirectShadow::makeUndefined(uint32_t Addr, uint32_t Len) {
  if (!covers(Addr, Len))
    return;
  std::memset(V.data() + (Addr - Base), 0xFF, Len);
  std::memset(A.data() + (Addr - Base), 1, Len);
}

void DirectShadow::makeDefined(uint32_t Addr, uint32_t Len) {
  if (!covers(Addr, Len))
    return;
  std::memset(V.data() + (Addr - Base), 0, Len);
  std::memset(A.data() + (Addr - Base), 1, Len);
}

uint64_t DirectShadow::loadV(uint32_t Addr, uint32_t Sz,
                             AddrCheck &Check) const {
  if (!covers(Addr, Sz)) {
    Check.Ok = false;
    Check.FirstBad = Addr;
    return ~0ull;
  }
  uint32_t Off = Addr - Base;
  uint64_t Out = 0;
  for (uint32_t I = 0; I != Sz; ++I) {
    if (!A[Off + I] && Check.Ok) {
      Check.Ok = false;
      Check.FirstBad = Addr + I;
    }
    Out |= static_cast<uint64_t>(A[Off + I] ? V[Off + I] : 0xFF) << (8 * I);
  }
  return Out;
}

void DirectShadow::storeV(uint32_t Addr, uint32_t Sz, uint64_t Vbits,
                          AddrCheck &Check) {
  if (!covers(Addr, Sz)) {
    Check.Ok = false;
    Check.FirstBad = Addr;
    return;
  }
  uint32_t Off = Addr - Base;
  for (uint32_t I = 0; I != Sz; ++I) {
    if (!A[Off + I]) {
      if (Check.Ok) {
        Check.Ok = false;
        Check.FirstBad = Addr + I;
      }
      continue;
    }
    V[Off + I] = static_cast<uint8_t>(Vbits >> (8 * I));
  }
}
