//===-- tests/PropertyTests.cpp - Semantic-preservation properties --------==//
///
/// \file
/// Randomised invariants over the translation pipeline:
///
///  - the Phase 2/4/5 optimisation passes preserve a block's observable
///    semantics (final guest state + stores + exit target), checked by
///    executing random flat blocks with and without each pass;
///  - chaining changes no architectural result on random programs;
///  - Nulgrind, ICnt, Memcheck, Cachegrind and TaintGrind all preserve
///    client behaviour (checksums/exit codes) on random programs — the
///    paper's transparency assumption (Section 2, R9: "no other
///    functional perturbation").
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "guest/GuestMemory.h"
#include "guestlib/GuestLib.h"
#include "hvm/Exec.h"
#include "hvm/ISel.h"
#include "ir/IROpt.h"
#include "tools/Cachegrind.h"
#include "tools/ICnt.h"
#include "tools/Memcheck.h"
#include "tools/Nulgrind.h"
#include "tools/TaintGrind.h"

#include <gtest/gtest.h>

#include <random>

using namespace vg;
using namespace vg::ir;

namespace {

//===----------------------------------------------------------------------===//
// Random flat-IR blocks: optimisation must not change their meaning
//===----------------------------------------------------------------------===//

/// Builds a random flat block over I32 temporaries: gets, ALU ops, loads,
/// stores, puts, ITEs, guarded exits.
void buildRandomBlock(IRSB &SB, std::mt19937 &Rng) {
  auto Pick = [&](uint32_t N) { return Rng() % N; };
  std::vector<TmpId> Pool;
  // Seed with a few register reads.
  for (int I = 0; I != 4; ++I)
    Pool.push_back(SB.wrTmp(SB.get(4 * Pick(8), Ty::I32)));
  auto RandAtom = [&]() -> Expr * {
    if (Pick(4) == 0)
      return SB.constI32(Rng());
    return SB.rdTmp(Pool[Pick(static_cast<uint32_t>(Pool.size()))]);
  };
  const Op Ops[] = {Op::Add32, Op::Sub32, Op::And32, Op::Or32,  Op::Xor32,
                    Op::Mul32, Op::Shl32, Op::Shr32, Op::Add8x4};
  for (int I = 0; I != 24; ++I) {
    switch (Pick(8)) {
    case 0:
    case 1:
    case 2:
    case 3: { // ALU
      Op O = Ops[Pick(9)];
      Expr *B = opArgTy(O, 1) == Ty::I8
                    ? SB.constI8(static_cast<uint8_t>(Pick(32)))
                    : RandAtom();
      Pool.push_back(SB.wrTmp(SB.binop(O, RandAtom(), B)));
      break;
    }
    case 4: { // masked in-bounds load from the data window
      TmpId Masked = SB.wrTmp(
          SB.binop(Op::And32, RandAtom(), SB.constI32(0xFFC)));
      TmpId Addr = SB.wrTmp(
          SB.binop(Op::Add32, SB.rdTmp(Masked), SB.constI32(0x8000)));
      Pool.push_back(SB.wrTmp(SB.load(Ty::I32, SB.rdTmp(Addr))));
      break;
    }
    case 5: { // masked in-bounds store
      TmpId Masked = SB.wrTmp(
          SB.binop(Op::And32, RandAtom(), SB.constI32(0xFFC)));
      TmpId Addr = SB.wrTmp(
          SB.binop(Op::Add32, SB.rdTmp(Masked), SB.constI32(0x8000)));
      SB.store(SB.rdTmp(Addr), RandAtom());
      break;
    }
    case 6: { // put
      SB.put(4 * Pick(14), RandAtom());
      break;
    }
    case 7: { // guarded exit
      TmpId C = SB.wrTmp(SB.binop(Op::CmpLT32U, RandAtom(), RandAtom()));
      SB.exit(SB.rdTmp(C), 0x5000 + Pick(16) * 4, JumpKind::Boring);
      break;
    }
    }
  }
  SB.put(60, RandAtom()); // make something always observable
  SB.setNext(SB.constI32(0x4000), JumpKind::Boring);
}

struct BlockResult {
  std::array<uint8_t, vg1::gso::TotalSize> Gst;
  std::vector<uint8_t> DataWindow;
  uint32_t NextPC;
};

BlockResult runBlock(IRSB &SB, uint32_t Seed) {
  BlockResult R;
  R.Gst.fill(0);
  // Deterministic initial guest state.
  std::mt19937 Init(Seed ^ 0x5EED);
  for (unsigned I = 0; I != 64; I += 4) {
    uint32_t V = Init();
    std::memcpy(R.Gst.data() + I, &V, 4);
  }
  GuestMemory Mem;
  Mem.map(0x8000, 0x1000, PermRW);
  for (uint32_t A = 0; A != 0x1000; A += 4)
    Mem.writeU32(0x8000 + A, Init());

  hvm::HostCode HC = hvm::selectInstructions(SB);
  hvm::allocateRegisters(HC);
  hvm::CodeBlob Blob;
  Blob.Bytes = hvm::encode(HC);
  ExecContext Ctx;
  Ctx.GuestState = R.Gst.data();
  Ctx.Mem = &Mem;
  hvm::Executor Exec(Ctx, vg1::gso::PC);
  hvm::RunOutcome O = Exec.run(Blob);
  R.NextPC = O.NextPC;
  R.DataWindow.resize(0x1000);
  Mem.read(0x8000, R.DataWindow.data(), 0x1000, true);
  return R;
}

class OptEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(OptEquivalence, PassesPreserveSemantics) {
  unsigned Seed = GetParam();
  // Reference: the raw flat block, unoptimised.
  std::mt19937 Rng1(Seed);
  IRSB Raw;
  buildRandomBlock(Raw, Rng1);
  ASSERT_EQ(Raw.typecheck(true), "");
  BlockResult Want = runBlock(Raw, Seed);

  // Variant A: full optimise1 + optimise2 + tree building.
  {
    std::mt19937 Rng2(Seed);
    IRSB SB;
    buildRandomBlock(SB, Rng2);
    optimise1(SB, nullptr);
    optimise2(SB, nullptr);
    ASSERT_EQ(SB.typecheck(true), "") << "seed " << Seed;
    buildTrees(SB);
    ASSERT_EQ(SB.typecheck(false), "") << "seed " << Seed;
    BlockResult Got = runBlock(SB, Seed);
    EXPECT_EQ(Got.NextPC, Want.NextPC) << "seed " << Seed;
    EXPECT_EQ(Got.Gst, Want.Gst) << "seed " << Seed;
    EXPECT_EQ(Got.DataWindow, Want.DataWindow) << "seed " << Seed;
  }
  // Variant B: tree building alone.
  {
    std::mt19937 Rng3(Seed);
    IRSB SB;
    buildRandomBlock(SB, Rng3);
    buildTrees(SB);
    BlockResult Got = runBlock(SB, Seed);
    EXPECT_EQ(Got.NextPC, Want.NextPC) << "seed " << Seed;
    EXPECT_EQ(Got.Gst, Want.Gst) << "seed " << Seed;
    EXPECT_EQ(Got.DataWindow, Want.DataWindow) << "seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OptEquivalence, ::testing::Range(0u, 40u));

//===----------------------------------------------------------------------===//
// Whole-program transparency: tools must not perturb client behaviour
//===----------------------------------------------------------------------===//

GuestImage randomProgram(unsigned Seed) {
  using namespace vg::vg1;
  std::mt19937 Rng(Seed * 2654435761u + 99);
  auto Pick = [&](uint32_t N) { return Rng() % N; };
  Assembler Code(0x1000);
  Assembler Data(0x100000);
  GuestLibLabels Lib = emitGuestLib(Code, Data);
  Label Main = Code.newLabel();
  uint32_t Entry = emitStart(Code, Main);
  Code.bind(Main);
  // malloc a working buffer.
  Code.movi(Reg::R1, 4096);
  Code.call(Lib.Malloc);
  Code.mov(Reg::R12, Reg::R0);
  for (unsigned R = 1; R != 12; ++R)
    Code.movi(static_cast<Reg>(R), Rng());
  // A loop running a random body 500 times.
  Code.movi(Reg::R10, 0);
  Label Loop = Code.boundLabel();
  for (int I = 0; I != 30; ++I) {
    Reg Rd = static_cast<Reg>(1 + Pick(9));
    Reg Rs = static_cast<Reg>(1 + Pick(9));
    Reg Rt = static_cast<Reg>(1 + Pick(9));
    switch (Pick(10)) {
    case 0:
      Code.add(Rd, Rs, Rt);
      break;
    case 1:
      Code.sub(Rd, Rs, Rt);
      break;
    case 2:
      Code.xor_(Rd, Rs, Rt);
      break;
    case 3:
      Code.mul(Rd, Rs, Rt);
      break;
    case 4:
      Code.shli(Rd, Rs, static_cast<uint8_t>(Pick(31)));
      break;
    case 5: { // in-bounds store
      Code.andi(Reg::R11, Rs, 0xFFC);
      Code.add(Reg::R11, Reg::R11, Reg::R12);
      Code.st(Reg::R11, 0, Rt);
      break;
    }
    case 6: { // in-bounds load
      Code.andi(Reg::R11, Rs, 0xFFC);
      Code.add(Reg::R11, Reg::R11, Reg::R12);
      Code.ld(Rd, Reg::R11, 0);
      break;
    }
    case 7: { // forward skip
      Code.cmp(Rs, Rt);
      Label Skip = Code.newLabel();
      Code.bcc(static_cast<Cond>(Pick(NumConds)), Skip);
      Code.addi(Rd, Rd, 1);
      Code.bind(Skip);
      break;
    }
    case 8:
      Code.vadd8(Rd, Rs, Rt);
      break;
    case 9:
      Code.push(Rs);
      Code.pop(Rd);
      break;
    }
  }
  Code.addi(Reg::R10, Reg::R10, 1);
  Code.cmpi(Reg::R10, 500);
  Code.blt(Loop);
  // Checksum of the registers + buffer head.
  Code.movi(Reg::R11, 0);
  for (unsigned R = 1; R != 10; ++R)
    Code.add(Reg::R11, Reg::R11, static_cast<Reg>(R));
  Code.ld(Reg::R2, Reg::R12, 0);
  Code.add(Reg::R11, Reg::R11, Reg::R2);
  Code.andi(Reg::R11, Reg::R11, 0x7FFFFFFF);
  Code.mov(Reg::R1, Reg::R11);
  Code.call(Lib.PrintU32);
  Code.movi(Reg::R0, 0);
  Code.ret();
  return GuestImageBuilder().addCode(Code).addData(Data).entry(Entry).build();
}

class Transparency : public ::testing::TestWithParam<unsigned> {};

TEST_P(Transparency, EveryToolPreservesClientBehaviour) {
  GuestImage Img = randomProgram(GetParam());
  RunReport Native = runNative(Img);
  ASSERT_TRUE(Native.Completed);
  ASSERT_FALSE(Native.Stdout.empty());

  auto Check = [&](Tool *T, const std::vector<std::string> &Opts,
                   const char *Name) {
    RunReport R = runUnderCore(Img, T, Opts);
    EXPECT_TRUE(R.Completed) << Name;
    EXPECT_EQ(R.Stdout, Native.Stdout) << Name;
    EXPECT_EQ(R.ExitCode, Native.ExitCode) << Name;
  };
  Nulgrind T0;
  Check(&T0, {}, "nulgrind");
  Nulgrind T1;
  Check(&T1, {"--chaining=yes"}, "nulgrind+chaining");
  ICnt T2(ICnt::Mode::Inline);
  Check(&T2, {}, "icnt-inline");
  Memcheck T3;
  Check(&T3, {"--leak-check=no"}, "memcheck");
  Cachegrind T4;
  Check(&T4, {}, "cachegrind");
  TaintGrind T5;
  Check(&T5, {}, "taintgrind");
}

INSTANTIATE_TEST_SUITE_P(Sweep, Transparency, ::testing::Range(0u, 6u));

} // namespace
