//===-- tools/Loopgrind.h - The loop/CFG profiler ---------------*- C++ -*-==//
///
/// \file
/// Loopgrind: a loop profiler built on the dispatcher's view of the guest
/// CFG. A dirty call planted at the head of every translated block streams
/// block-entry addresses to the tool, which detects loops dynamically: a
/// transfer to an address at or below the previous block's entry is a
/// back-edge, and consecutive arrivals at the same head are iterations of
/// one run ("trip"). Per loop head it keeps entry count, total iterations,
/// the maximum trip, and a 16-bucket log2 trip-count histogram; fini()
/// reports the hottest loops by iterations and cross-checks them against
/// the translation chain graph (TransTab back-edges weighted by the
/// EdgeExecs profile the chain thunks maintain anyway).
///
/// Trace-tier caveat: a tier-2 trace executes several former blocks per
/// dispatch but carries one entry dirty call, so interior iterations that
/// never leave the trace count once per trace pass. The chain-graph
/// cross-section in the report is immune (EdgeExecs are bumped by the
/// thunks regardless of tier).
///
/// Client requests ('L','G' namespace): LgStart/LgStop toggle collection
/// (it starts on), LgAnnotate(head, str) names a loop so the report reads
/// like source. The tool doubles as the worked example of the plug-in
/// surface: tool-tagged requests, dirty-call instrumentation, and a
/// fini-time walk of core data structures.
///
//===----------------------------------------------------------------------===//
#ifndef VG_TOOLS_LOOPGRIND_H
#define VG_TOOLS_LOOPGRIND_H

#include "core/ClientRequests.h"
#include "core/Core.h"
#include "core/Tool.h"

#include <array>
#include <map>
#include <string>

namespace vg {

/// Loopgrind's client-request namespace tag.
constexpr uint32_t LgTag = vgToolTag('L', 'G');

/// Loopgrind's client requests ('L','G' namespace).
enum LoopgrindRequest : uint32_t {
  LgStart = vgRequest(LgTag, 1),    ///< () resume collection
  LgStop = vgRequest(LgTag, 2),     ///< () pause collection
  LgAnnotate = vgRequest(LgTag, 3), ///< (head, strptr) label a loop
};

class Loopgrind : public Tool {
public:
  const char *name() const override { return "loopgrind"; }
  void registerOptions(OptionRegistry &Opts) override;
  void init(Core &Core_) override;
  void instrument(ir::IRSB &SB) override;
  void fini(int ExitCode) override;
  bool handleClientRequest(int Tid, uint32_t Code, const uint32_t Args[4],
                           uint32_t &Result) override;

  // Accessors for tests.
  uint64_t blocksSeen() const { return BlocksSeen; }
  uint64_t backEdges() const { return BackEdges; }

  static uint64_t helperBlockEntry(void *Env, uint64_t Addr, uint64_t,
                                   uint64_t, uint64_t);

private:
  /// One thread's in-flight loop run.
  struct TidRun {
    uint32_t Last = 0;       ///< previous block-entry address
    uint32_t ActiveHead = 0; ///< loop head of the run in progress (0 none)
    uint64_t Trip = 0;       ///< iterations accumulated in this run
  };

  static constexpr size_t HistBuckets = 16;

  /// Everything known about one loop head.
  struct LoopStat {
    uint64_t Entries = 0;    ///< completed runs
    uint64_t Iterations = 0; ///< total trips across runs
    uint64_t MaxTrip = 0;
    std::array<uint64_t, HistBuckets> Hist{}; ///< bucket k: trip in 2^k..
    std::string Label;                        ///< LgAnnotate name, if any
  };

  void noteBlock(int Tid, uint32_t Addr);
  void flushRun(TidRun &R);

  Core *C = nullptr;
  bool Collecting = true;
  unsigned TopN = 5;
  std::array<TidRun, Core::MaxThreads> Runs;
  std::map<uint32_t, LoopStat> Loops;
  uint64_t BlocksSeen = 0;
  uint64_t BackEdges = 0;
};

} // namespace vg

#endif // VG_TOOLS_LOOPGRIND_H
