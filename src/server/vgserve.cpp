//===-- server/vgserve.cpp - Standalone translation-server daemon ---------==//
///
/// \file
/// `vgserve --socket=<path> --dir=<dir>`: a thin main() around
/// TransServer. Serves validated translation entries from <dir> (any
/// --tt-cache directory works as-is) until SIGINT/SIGTERM, then prints a
/// one-line stats summary.
///
//===----------------------------------------------------------------------===//

#include "server/TransServer.h"

#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

namespace {

volatile std::sig_atomic_t GotSignal = 0;

void onSignal(int) { GotSignal = 1; }

void usage() {
  std::fprintf(stderr,
               "usage: vgserve --socket=<path> --dir=<dir> [--max-mb=<n>] "
               "[--quiet]\n"
               "  Serves translation-cache entries from <dir> over the\n"
               "  Unix-domain socket at <path> until SIGINT/SIGTERM.\n"
               "  --max-mb bounds the directory size (default 256, 0 = "
               "unbounded).\n");
}

} // namespace

int main(int Argc, char **Argv) {
  vg::TransServer::Options O;
  bool Quiet = false;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto valueOf = [&](const char *Prefix) -> const char * {
      size_t N = std::strlen(Prefix);
      return A.compare(0, N, Prefix) == 0 ? A.c_str() + N : nullptr;
    };
    if (const char *V = valueOf("--socket=")) {
      O.SocketPath = V;
    } else if (const char *V = valueOf("--dir=")) {
      O.Dir = V;
    } else if (const char *V = valueOf("--max-mb=")) {
      char *End = nullptr;
      unsigned long long MB = std::strtoull(V, &End, 10);
      if (!End || *End) {
        std::fprintf(stderr, "vgserve: bad --max-mb value '%s'\n", V);
        return 2;
      }
      O.MaxBytes = static_cast<uint64_t>(MB) << 20;
    } else if (A == "--quiet") {
      Quiet = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "vgserve: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    }
  }
  if (O.SocketPath.empty() || O.Dir.empty()) {
    usage();
    return 2;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  vg::TransServer Server(O);
  std::string Err;
  if (!Server.start(Err)) {
    std::fprintf(stderr, "vgserve: %s\n", Err.c_str());
    return 1;
  }
  if (!Quiet) {
    // One flushed line so scripts can wait for readiness on stdout.
    std::printf("vgserve: serving %s on %s (%" PRIu64 " entries, %" PRIu64
                " bytes)\n",
                O.Dir.c_str(), O.SocketPath.c_str(), Server.indexedEntries(),
                Server.totalBytes());
    std::fflush(stdout);
  }
  while (!GotSignal)
    usleep(100 * 1000);
  Server.stop();
  if (!Quiet) {
    vg::TransServer::Stats S = Server.stats();
    std::printf("vgserve: conns=%" PRIu64 " gets=%" PRIu64 " hits=%" PRIu64
                " misses=%" PRIu64 " coalesced=%" PRIu64 " puts=%" PRIu64
                " put-rejects=%" PRIu64 " poisons=%" PRIu64
                " evicted=%" PRIu64 " malformed=%" PRIu64 "\n",
                S.Connections, S.Requests, S.Hits, S.Misses, S.Coalesced,
                S.Puts, S.PutRejects, S.Poisons, S.Evicted,
                S.MalformedFrames);
  }
  return 0;
}
