//===-- server/TransServer.h - The vgserve daemon core ---------*- C++ -*-==//
///
/// \file
/// The translation server: owns a TransCache-format directory (one .vgtc
/// file per entry, named hex16(config)-hex16(key)) and serves the raw file
/// images over a Unix-domain socket with the TransProto framing. Because
/// the payload is exactly the on-disk format, a --tt-cache directory from
/// any cold run can be served as-is, and everything a client fetches is
/// re-validated on the client with the same checks a local file gets —
/// the daemon is a blob store, never a trust anchor.
///
/// Embeddable by design: tests, the fuzz harness, and the warm-start
/// bench run a TransServer in-process on a scratch socket; the standalone
/// `vgserve` binary is a thin main() around this class.
///
/// Daemon-side behaviour:
///
///  - accept loop + one thread per connection, each reading frames under
///    an idle-tolerant deadline (idle connections stay open; a peer that
///    stalls mid-frame or sends garbage is dropped);
///  - request coalescing: concurrent GETs for the same in-flight key
///    share one disk read (the followers park on a condvar);
///  - PUT payloads are structurally validated (decode walk + FNV checksum,
///    callee-name indexes bounds-checked) before they are stored — a
///    malicious or buggy client cannot plant a non-decoding blob;
///  - poison notifications evict entries of that config whose extents
///    intersect the range (the in-memory extents index is built from a
///    startup scan and maintained on PUT);
///  - a byte budget evicts oldest-mtime entries, mirroring TransCache.
///
//===----------------------------------------------------------------------===//
#ifndef VG_SERVER_TRANSSERVER_H
#define VG_SERVER_TRANSSERVER_H

#include "server/TransProto.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace vg {

class TransServer {
public:
  struct Options {
    std::string SocketPath;
    std::string Dir;
    uint64_t MaxBytes = 256ull << 20; ///< 0 = unbounded
    /// Per-read slice while a connection is idle; shutdown latency is
    /// bounded by this. A peer mid-frame still gets the full slice.
    int IdleSliceMs = 200;
    /// Test hook: stall this long before each GET's disk read, so the
    /// coalescing window is wide enough to assert on deterministically.
    int ReadDelayMs = 0;
  };

  /// Counter snapshot (internally atomics; reads are relaxed).
  struct Stats {
    uint64_t Connections = 0;
    uint64_t Requests = 0; ///< GET frames handled
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Coalesced = 0; ///< GETs that shared another GET's disk read
    uint64_t Puts = 0;
    uint64_t PutRejects = 0; ///< PUT payloads that failed validation
    uint64_t Poisons = 0;
    uint64_t Evicted = 0; ///< entries dropped by poison or the byte budget
    uint64_t MalformedFrames = 0;
    uint64_t BytesIn = 0;
    uint64_t BytesOut = 0;
  };

  explicit TransServer(Options O) : O(std::move(O)) {}
  ~TransServer();

  TransServer(const TransServer &) = delete;
  TransServer &operator=(const TransServer &) = delete;

  /// Scans the directory (creating it if missing), indexes every entry
  /// that validates, binds the socket, and starts the accept thread.
  /// False with \p Err set on bind/listen failure.
  bool start(std::string &Err);

  /// Stops accepting, drops every connection at its next read slice,
  /// joins all threads, and unlinks the socket. Idempotent.
  void stop();

  bool running() const { return Running; }
  uint64_t indexedEntries() const;
  uint64_t totalBytes() const;
  Stats stats() const;
  const Options &options() const { return O; }

private:
  struct Entry {
    std::string Path;
    uint64_t Size = 0;
    std::vector<std::pair<uint32_t, uint32_t>> Extents;
  };
  /// A GET's shared disk read: followers for the same key wait on CV
  /// (guarded by Mu) instead of issuing their own read.
  struct Pending {
    bool Done = false;
    std::shared_ptr<std::vector<uint8_t>> Bytes; ///< null = read failed
    std::condition_variable CV;
  };
  using KeyT = std::pair<uint64_t, uint64_t>; ///< (config hash, entry key)

  void scanDir();
  void acceptLoop();
  void serveConnection(int Fd, uint64_t Id);
  /// True to keep the connection; false to drop it.
  bool handleFrame(int Fd, const srv::Frame &F);
  bool handleGet(int Fd, uint64_t Cfg, uint64_t Key);
  bool handlePut(int Fd, uint64_t Cfg, uint64_t Key,
                 const uint8_t *Image, size_t Len);
  bool handlePoison(uint64_t Cfg, bool All, uint32_t Addr, uint32_t Len);
  /// Drops the entry (file + index); Mu must be held.
  void dropEntryLocked(const KeyT &K);
  /// Mu must be held. Evicts oldest-mtime entries until NeedBytes fit.
  void evictToFitLocked(uint64_t NeedBytes);
  bool reply(int Fd, srv::MsgType T, const uint8_t *Body, size_t Len);

  Options O;
  std::atomic<bool> Running{false};
  std::atomic<bool> StopFlag{false};
  int ListenFd = -1;
  std::thread Acceptor;

  mutable std::mutex Mu;
  std::map<KeyT, Entry> Index;                      ///< guarded by Mu
  std::map<KeyT, std::shared_ptr<Pending>> InFlight; ///< guarded by Mu
  uint64_t TotalBytes = 0;                          ///< guarded by Mu
  std::map<uint64_t, std::thread> Conns;            ///< guarded by Mu
  std::vector<uint64_t> FinishedConns;              ///< guarded by Mu
  uint64_t NextConnId = 0;

  struct {
    std::atomic<uint64_t> Connections{0}, Requests{0}, Hits{0}, Misses{0},
        Coalesced{0}, Puts{0}, PutRejects{0}, Poisons{0}, Evicted{0},
        MalformedFrames{0}, BytesIn{0}, BytesOut{0};
  } St;
};

} // namespace vg

#endif // VG_SERVER_TRANSSERVER_H
