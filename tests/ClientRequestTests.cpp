//===-- tests/ClientRequestTests.cpp - Client-request surface tests -------==//
///
/// \file
/// The tool plug-in surface opened by the engine split: namespaced client
/// requests (tagged encoding + legacy-code compatibility), unknown-request
/// accounting, RefInterp-vs-JIT agreement, function wrapping ordering, the
/// Loopgrind tool end to end (golden report), and client requests hammered
/// from four guest threads under the sharded scheduler.
///
/// Regenerate the Loopgrind golden after an intentional report change:
///
///   UPDATE_GOLDENS=1 ./build/tests/test_clientrequest
///
//===----------------------------------------------------------------------===//

#include "core/ClientRequests.h"
#include "core/Launcher.h"
#include "guestlib/GuestLib.h"
#include "kernel/SimKernel.h"
#include "tools/Loopgrind.h"
#include "tools/Memcheck.h"
#include "tools/Nulgrind.h"
#include "tools/TaintGrind.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace vg;
using namespace vg::vg1;

namespace {

constexpr uint32_t CodeBase = 0x1000;
constexpr uint32_t DataBase = 0x100000;

GuestImage buildProgram(
    const std::function<void(Assembler &, Assembler &, GuestLibLabels &)>
        &Body) {
  Assembler Code(CodeBase);
  Assembler Data(DataBase);
  GuestLibLabels Lib = emitGuestLib(Code, Data);
  Label Main = Code.newLabel();
  uint32_t Entry = emitStart(Code, Main);
  Code.bind(Main);
  Code.symbol("main");
  Body(Code, Data, Lib);
  return GuestImageBuilder()
      .addCode(Code)
      .addData(Data)
      .entry(Entry)
      .build();
}

//===----------------------------------------------------------------------===//
// Encoding: (tag << 16) | code, with the legacy flat space still accepted
//===----------------------------------------------------------------------===//

// The canonical values are ABI: guest binaries embed them as immediates.
static_assert(CrCoreTag == 0x4352u, "'C','R'");
static_assert(CrDiscardTranslations == 0x43520001u);
static_assert(CrStackRegister == 0x43520002u);
static_assert(CrPrint == 0x43520005u);
static_assert(CrRunningOnValgrind == 0x43520006u);
static_assert(CrMalloc == 0x43520101u);
static_assert(CrRealloc == 0x43520104u);
static_assert(McTag == 0x4D43u, "'M','C'");
static_assert(McMakeMemDefined == 0x4D430001u);
static_assert(McCountErrors == 0x4D430006u);
static_assert(TgTag == 0x5447u, "'T','G'");
static_assert(TgTaint == 0x54470001u);
static_assert(LgTag == 0x4C47u, "'L','G'");
static_assert(LgStart == 0x4C470001u);
static_assert(vgRequestTag(McMakeMemDefined) == McTag);
static_assert(vgRequestTag(CrLegacyPrint) == 0, "legacy codes are untagged");

// Normalisation: every legacy core/allocator code maps to its canonical
// equivalent; everything else passes through untouched.
static_assert(vgNormalizeRequest(CrLegacyDiscardTranslations) ==
              CrDiscardTranslations);
static_assert(vgNormalizeRequest(CrLegacyStackRegister) == CrStackRegister);
static_assert(vgNormalizeRequest(CrLegacyStackDeregister) ==
              CrStackDeregister);
static_assert(vgNormalizeRequest(CrLegacyStackChange) == CrStackChange);
static_assert(vgNormalizeRequest(CrLegacyPrint) == CrPrint);
static_assert(vgNormalizeRequest(CrLegacyRunningOnValgrind) ==
              CrRunningOnValgrind);
static_assert(vgNormalizeRequest(CrLegacyMalloc) == CrMalloc);
static_assert(vgNormalizeRequest(CrLegacyFree) == CrFree);
static_assert(vgNormalizeRequest(CrLegacyCalloc) == CrCalloc);
static_assert(vgNormalizeRequest(CrLegacyRealloc) == CrRealloc);
static_assert(vgNormalizeRequest(CrRunningOnValgrind) ==
              CrRunningOnValgrind);
static_assert(vgNormalizeRequest(McMakeMemDefined) == McMakeMemDefined);
static_assert(vgNormalizeRequest(0) == 0);
static_assert(vgNormalizeRequest(0x5A5A1234u) == 0x5A5A1234u);

// Tool legacy aliases keep their historical flat values.
static_assert(McLegacyMakeMemDefined == CrToolBase + 1);
static_assert(TgLegacyTaint == CrToolBase + 0x100);

TEST(Encoding, TagBuilderMatchesHandRolledValues) {
  EXPECT_EQ(vgToolTag('Z', 'Z'), 0x5A5Au);
  EXPECT_EQ(vgRequest(vgToolTag('Z', 'Z'), 0x42), 0x5A5A0042u);
  EXPECT_EQ(vgRequestTag(vgRequest(vgToolTag('Z', 'Z'), 0x42)), 0x5A5Au);
}

//===----------------------------------------------------------------------===//
// Core requests: legacy and canonical encodings agree end to end
//===----------------------------------------------------------------------===//

TEST(CoreRequests, LegacyAndCanonicalRunningOnValgrindBothAnswerOne) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    emitClientRequest(Code, CrRunningOnValgrind);
    Code.mov(Reg::R6, Reg::R0);
    emitClientRequest(Code, CrLegacyRunningOnValgrind);
    Code.add(Reg::R0, Reg::R0, Reg::R6); // canonical + legacy == 2
    Code.ret();
  });
  Nulgrind T;
  RunReport R = runUnderCore(Img, &T);
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 2);
}

TEST(CoreRequests, LegacyAllocatorCodesStillReachTheReplacementHeap) {
  // malloc(64) then free through the legacy flat codes; a heap-tracking
  // tool must see the block come and go with no error.
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Code.movi(Reg::R0, CrLegacyMalloc);
    Code.movi(Reg::R1, 64);
    Code.clreq();
    Code.mov(Reg::R6, Reg::R0);
    Code.cmpi(Reg::R6, 0);
    Label Fail = Code.newLabel();
    Code.beq(Fail);
    Code.movi(Reg::R0, CrLegacyFree);
    Code.mov(Reg::R1, Reg::R6);
    Code.clreq();
    Code.movi(Reg::R0, 0);
    Code.ret();
    Code.bind(Fail);
    Code.movi(Reg::R0, 1);
    Code.ret();
  });
  Memcheck T;
  RunReport R = runUnderCore(Img, &T, {"--leak-check=no"});
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(T.uniqueErrors(), 0u);
}

TEST(CoreRequests, UnknownTagReturnsZeroAndIsCounted) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    // Two unclaimed 'Z','Z' requests plus the all-zero code: every one
    // must come back 0 (exit code accumulates any nonzero result).
    emitClientRequest(Code, vgRequest(vgToolTag('Z', 'Z'), 1), 7, 8, 9, 10);
    Code.mov(Reg::R6, Reg::R0);
    emitClientRequest(Code, vgRequest(vgToolTag('Z', 'Z'), 0xFFFF));
    Code.add(Reg::R6, Reg::R6, Reg::R0);
    emitClientRequest(Code, 0);
    Code.add(Reg::R0, Reg::R6, Reg::R0);
    Code.ret();
  });
  Nulgrind T;
  Core C(&T);
  C.output().useBuffer();
  C.applyOptions();
  C.loadImage(Img);
  CoreExit E = C.run(~0ull);
  EXPECT_EQ(E.K, CoreExit::Kind::Exited);
  EXPECT_EQ(E.Code, 0);
  EXPECT_EQ(C.clientRequests().unknownRequests(), 3u);
}

TEST(CoreRequests, RefInterpAndJitAgreeOnRequestResults) {
  // The same request-bearing program through the oracle and the JIT at
  // several tier configurations: every guest-visible observation must
  // match (CLREQ is a native no-op returning 0, and these codes return 0
  // under the core too).
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &Lib) {
    Label Msg = Data.boundLabel();
    Data.emitString("creq\n");
    Code.movi(Reg::R6, 0); // result accumulator
    Code.movi(Reg::R7, 0); // loop counter
    Label Loop = Code.boundLabel();
    emitClientRequest(Code, vgRequest(vgToolTag('Z', 'Z'), 3), 1, 2, 3, 4);
    Code.add(Reg::R6, Reg::R6, Reg::R0);
    emitClientRequest(Code, 0);
    Code.add(Reg::R6, Reg::R6, Reg::R0);
    Code.addi(Reg::R7, Reg::R7, 1);
    Code.cmpi(Reg::R7, 30); // enough laps to cross the hot threshold
    Code.blt(Loop);
    Code.movi(Reg::R1, Data.labelAddr(Msg));
    Code.call(Lib.Print);
    Code.mov(Reg::R0, Reg::R6);
    Code.ret();
  });
  RunReport Oracle = runNative(Img);
  ASSERT_TRUE(Oracle.Completed);
  ASSERT_EQ(Oracle.ExitCode, 0);
  const std::vector<std::vector<std::string>> Configs = {
      {},
      {"--no-iropt"},
      {"--chaining=yes", "--hot-threshold=2"},
      {"--chaining=yes", "--hot-threshold=2", "--trace-tier=yes",
       "--trace-threshold=8"},
  };
  for (const auto &Opts : Configs) {
    Nulgrind T;
    RunReport R = runUnderCore(Img, &T, Opts);
    ASSERT_TRUE(R.Completed);
    EXPECT_EQ(R.ExitCode, Oracle.ExitCode);
    EXPECT_EQ(R.Stdout, Oracle.Stdout);
  }
}

//===----------------------------------------------------------------------===//
// Function wrapping: Pre -> original -> Post, result rewriting
//===----------------------------------------------------------------------===//

TEST(Wrap, PreOriginalPostOrderWithResultRewrite) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Label Victim = Code.newLabel();
    Code.movi(Reg::R1, 5);
    Code.call(Victim);
    Code.ret(); // main returns the (wrapped) victim's result
    Code.bind(Victim);
    Code.symbol("victim");
    Code.addi(Reg::R0, Reg::R1, 100); // original: arg + 100
    Code.ret();
  });
  Nulgrind T;
  std::vector<std::string> Order;
  uint32_t PreArg = 0, PostResult = 0;
  WrapHooks H;
  H.Pre = [&](Core &, ThreadState &TS) {
    Order.push_back("pre");
    PreArg = TS.gpr(1);
  };
  H.Post = [&](Core &, ThreadState &, uint32_t &Result) {
    Order.push_back("post");
    PostResult = Result; // the original's untouched result
    Result += 1000;      // rewrite what the caller sees
  };
  RunReport R = runUnderCoreWith(Img, &T, {}, "", ~0ull, [&](Core &C) {
    C.wrapSymbolFunction("victim", H);
  });
  ASSERT_TRUE(R.Completed);
  ASSERT_EQ(Order, (std::vector<std::string>{"pre", "post"}));
  EXPECT_EQ(PreArg, 5u);
  EXPECT_EQ(PostResult, 105u); // the original really ran between the hooks
  EXPECT_EQ(R.ExitCode, 1105); // and the caller saw the rewritten result
}

TEST(Wrap, WrapFunctionByAddressFiresOnEveryCall) {
  // Two calls through the wrapper: the one-shot bypass must re-arm per
  // call, so both calls run Pre -> original -> Post.
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Label Victim = Code.newLabel();
    Code.movi(Reg::R1, 3);
    Code.call(Victim);
    Code.mov(Reg::R6, Reg::R0);
    Code.movi(Reg::R1, 4);
    Code.call(Victim);
    Code.add(Reg::R0, Reg::R0, Reg::R6);
    Code.ret();
    Code.bind(Victim);
    Code.symbol("victim");
    Code.shli(Reg::R0, Reg::R1, 1); // original: arg * 2
    Code.ret();
  });
  Nulgrind T;
  uint32_t VictimAddr = Img.symbol("victim");
  ASSERT_NE(VictimAddr, 0u);
  int PreCount = 0, PostCount = 0;
  WrapHooks H;
  H.Pre = [&](Core &, ThreadState &) { ++PreCount; };
  H.Post = [&](Core &, ThreadState &, uint32_t &Result) {
    ++PostCount;
    Result += 1; // 3*2+1 and 4*2+1
  };
  RunReport R = runUnderCoreWith(Img, &T, {}, "", ~0ull, [&](Core &C) {
    C.wrapFunction(VictimAddr, H);
  });
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(PreCount, 2);
  EXPECT_EQ(PostCount, 2);
  EXPECT_EQ(R.ExitCode, 16); // (3*2+1) + (4*2+1)
}

TEST(Wrap, PreOnlyWrapObservesWithoutChangingBehaviour) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Label Victim = Code.newLabel();
    Code.movi(Reg::R1, 9);
    Code.call(Victim);
    Code.ret();
    Code.bind(Victim);
    Code.symbol("victim");
    Code.addi(Reg::R0, Reg::R1, 1);
    Code.ret();
  });
  Nulgrind T;
  uint32_t Seen = 0;
  WrapHooks H;
  H.Pre = [&](Core &, ThreadState &TS) { Seen = TS.gpr(1); };
  RunReport R = runUnderCoreWith(Img, &T, {}, "", ~0ull, [&](Core &C) {
    C.wrapSymbolFunction("victim", H);
  });
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(Seen, 9u);
  EXPECT_EQ(R.ExitCode, 10); // behaviour unchanged
}

//===----------------------------------------------------------------------===//
// Loopgrind end to end
//===----------------------------------------------------------------------===//

#ifndef VG_TEST_GOLDEN_DIR
#error "VG_TEST_GOLDEN_DIR must point at tests/goldens"
#endif

void checkGolden(const std::string &Name, const std::string &Actual) {
  std::string Path = std::string(VG_TEST_GOLDEN_DIR) + "/" + Name + ".txt";
  if (std::getenv("UPDATE_GOLDENS")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out) << "cannot write " << Path;
    Out << Actual;
    return;
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In) << "missing golden " << Path
                  << " (run with UPDATE_GOLDENS=1 to create)";
  std::ostringstream SS;
  SS << In.rdbuf();
  EXPECT_EQ(SS.str(), Actual)
      << "(UPDATE_GOLDENS=1 regenerates " << Path << ")";
}

TEST(Loopgrind, GoldenReportForNestedLoops) {
  // Two loops with known shapes: an inner loop of 8 trips entered 3 times
  // by an outer loop of 3 trips, and LG_ANNOTATE labelling the inner head.
  // The whole run is deterministic, so the report is pinned as a golden.
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &) {
    Label Name = Data.boundLabel();
    Data.emitString("inner-loop");
    Code.movi(Reg::R6, 0); // outer counter
    Label Outer = Code.boundLabel();
    Code.movi(Reg::R7, 0); // inner counter
    Label Inner = Code.boundLabel();
    Code.addi(Reg::R7, Reg::R7, 1);
    Code.cmpi(Reg::R7, 8);
    Code.blt(Inner);
    Code.addi(Reg::R6, Reg::R6, 1);
    Code.cmpi(Reg::R6, 3);
    Code.blt(Outer);
    // Annotate the inner head now that the label is bound.
    emitClientRequest(Code, LgAnnotate, Code.labelAddr(Inner),
                      Data.labelAddr(Name));
    Code.movi(Reg::R0, 0);
    Code.ret();
  });
  Loopgrind T;
  RunReport R = runUnderCore(Img, &T, {"--chaining=yes"});
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_GT(T.backEdges(), 0u);
  checkGolden("loopgrind_nested", R.ToolOutput);
}

TEST(Loopgrind, StartStopGateCollection) {
  // The same loop runs twice, but collection is off for the first pass:
  // only the second pass's iterations may be counted.
  auto build = [](bool StopFirst) {
    return buildProgram([StopFirst](Assembler &Code, Assembler &,
                                    GuestLibLabels &) {
      if (StopFirst)
        emitClientRequest(Code, LgStop);
      Code.movi(Reg::R7, 0);
      Label L1 = Code.boundLabel();
      Code.addi(Reg::R7, Reg::R7, 1);
      Code.cmpi(Reg::R7, 50);
      Code.blt(L1);
      emitClientRequest(Code, LgStart);
      Code.movi(Reg::R7, 0);
      Label L2 = Code.boundLabel();
      Code.addi(Reg::R7, Reg::R7, 1);
      Code.cmpi(Reg::R7, 50);
      Code.blt(L2);
      Code.movi(Reg::R0, 0);
      Code.ret();
    });
  };
  Loopgrind Gated;
  RunReport R1 = runUnderCore(build(true), &Gated);
  ASSERT_TRUE(R1.Completed);
  Loopgrind Free;
  RunReport R2 = runUnderCore(build(false), &Free);
  ASSERT_TRUE(R2.Completed);
  EXPECT_LT(Gated.backEdges(), Free.backEdges());
  EXPECT_GT(Gated.backEdges(), 0u);
}

//===----------------------------------------------------------------------===//
// Client requests from four concurrent guest threads (sharded scheduler)
//===----------------------------------------------------------------------===//

TEST(MtClientRequests, FourThreadsHammerRequestsUnderShardedScheduler) {
  // Four cloned threads each issue a mix of canonical, legacy, and
  // unknown-tag requests in a loop; every request takes the world lock
  // exactly like a syscall, so results must be correct under --sched-
  // threads=4 and the run must be TSan-clean (this test carries the
  // concurrency label). Each thread accumulates wrong answers into an
  // error word; main sums them into the exit code.
  constexpr int NThreads = 4;
  constexpr uint32_t DoneBase = DataBase;     // 4 done flags
  constexpr uint32_t ErrBase = DataBase + 16; // 4 error words
  GuestImage Img = buildProgram([&](Assembler &Code, Assembler &Data,
                                    GuestLibLabels &) {
    Data.emitZeros(32);
    Label Worker = Code.newLabel();
    // Spawn the workers.
    for (int I = 0; I != NThreads; ++I) {
      Code.movi(Reg::R0, SysMmap);
      Code.movi(Reg::R1, 0);
      Code.movi(Reg::R2, 65536);
      Code.movi(Reg::R3, 3);
      Code.movi(Reg::R4, 0);
      Code.sys();
      Code.addi(Reg::R2, Reg::R0, 65536);
      Code.movi(Reg::R0, SysClone);
      Code.leai(Reg::R1, Worker);
      Code.movi(Reg::R3, I);
      Code.sys();
    }
    // Wait for all done flags.
    Label Wait = Code.boundLabel();
    Code.movi(Reg::R0, SysYield);
    Code.sys();
    Code.movi(Reg::R6, 0);
    for (int I = 0; I != NThreads; ++I) {
      Code.movi(Reg::R3, DoneBase + 4 * I);
      Code.ld(Reg::R4, Reg::R3, 0);
      Code.add(Reg::R6, Reg::R6, Reg::R4);
    }
    Code.cmpi(Reg::R6, NThreads);
    Code.blt(Wait);
    // Sum the error words into the exit code.
    Code.movi(Reg::R6, 0);
    for (int I = 0; I != NThreads; ++I) {
      Code.movi(Reg::R3, ErrBase + 4 * I);
      Code.ld(Reg::R4, Reg::R3, 0);
      Code.add(Reg::R6, Reg::R6, Reg::R4);
    }
    Code.mov(Reg::R0, Reg::R6);
    Code.ret();
    // Worker (arg in r1 = index): 200 laps of three requests.
    Code.bind(Worker);
    Code.mov(Reg::R6, Reg::R1);
    Code.movi(Reg::R7, 0); // errors
    Code.movi(Reg::R8, 0); // laps
    Label Loop = Code.boundLabel();
    Code.movi(Reg::R0, CrRunningOnValgrind);
    Code.clreq();
    Code.cmpi(Reg::R0, 1);
    Label Ok1 = Code.newLabel();
    Code.beq(Ok1);
    Code.addi(Reg::R7, Reg::R7, 1);
    Code.bind(Ok1);
    Code.movi(Reg::R0, CrLegacyRunningOnValgrind);
    Code.clreq();
    Code.cmpi(Reg::R0, 1);
    Label Ok2 = Code.newLabel();
    Code.beq(Ok2);
    Code.addi(Reg::R7, Reg::R7, 1);
    Code.bind(Ok2);
    Code.movi(Reg::R0, vgRequest(vgToolTag('Z', 'Z'), 9));
    Code.clreq();
    Code.cmpi(Reg::R0, 0);
    Label Ok3 = Code.newLabel();
    Code.beq(Ok3);
    Code.addi(Reg::R7, Reg::R7, 1);
    Code.bind(Ok3);
    Code.addi(Reg::R8, Reg::R8, 1);
    Code.cmpi(Reg::R8, 200);
    Code.blt(Loop);
    // err[i] = r7; done[i] = 1; exit_thread.
    Code.shli(Reg::R4, Reg::R6, 2);
    Code.movi(Reg::R3, ErrBase);
    Code.add(Reg::R3, Reg::R3, Reg::R4);
    Code.st(Reg::R3, 0, Reg::R7);
    Code.movi(Reg::R3, DoneBase);
    Code.add(Reg::R3, Reg::R3, Reg::R4);
    Code.movi(Reg::R5, 1);
    Code.st(Reg::R3, 0, Reg::R5);
    Code.movi(Reg::R0, SysExitThread);
    Code.movi(Reg::R1, 0);
    Code.sys();
  });
  Nulgrind T;
  RunReport R = runUnderCore(Img, &T, {"--sched-threads=4"});
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 0) << "a request returned a wrong result under MT";
}

} // namespace
