//===-- core/Tool.h - The tool plug-in interface ----------------*- C++ -*-==//
///
/// \file
/// "Valgrind core + tool plug-in = Valgrind tool" (Section 3.1). A tool's
/// main job is instrument(): transforming each flat superblock the core
/// hands it (translation Phase 3). Everything else is optional: event
/// callbacks (registered on the core's EventHub in init()), heap
/// replacement (R8), client-request handling, command-line options, and a
/// fini() hook for end-of-run reports (R9 output goes through the core's
/// OutputSink).
///
//===----------------------------------------------------------------------===//
#ifndef VG_CORE_TOOL_H
#define VG_CORE_TOOL_H

#include "ir/IR.h"
#include "support/Options.h"

#include <cstdint>

namespace vg {

class Core;
class ShadowMap;

/// Base class for tool plug-ins.
class Tool {
public:
  virtual ~Tool();

  virtual const char *name() const = 0;

  /// Registers tool-specific command-line options (called before parse).
  virtual void registerOptions(OptionRegistry &Opts) {}

  /// Called once after command-line processing, before the client runs.
  /// Tools register event callbacks on C.events() here.
  virtual void init(Core &C) {}

  /// Phase 3: instrument one flat superblock in place. The default adds no
  /// analysis code (Nulgrind behaviour).
  virtual void instrument(ir::IRSB &SB) {}

  /// Called at client exit, before the core prints its summary.
  virtual void fini(int ExitCode) {}

  /// The tool's shadow memory map, when it keeps one. The executor services
  /// SHPROBE instructions (the JIT-inlined shadow fast path) against it
  /// directly; returning null makes every probe punt to the helper call.
  virtual ShadowMap *shadowMap() { return nullptr; }

  /// Whether the tool's analysis state tolerates several guest threads
  /// executing concurrently (--sched-threads=N). Requires: instrument()
  /// already reentrant (the async JIT demands that of every tool), all
  /// helper-side counters atomic, and shadow state kept in the MT-safe
  /// ShadowMap (or none at all). Tools that keep plain mutable state must
  /// leave this false — the core then clamps --sched-threads to 1.
  virtual bool supportsParallelGuests() const { return false; }

  /// Tool client requests (codes >= 0x10000 are tool space). Returns true
  /// if the request was recognised.
  virtual bool handleClientRequest(int Tid, uint32_t Code,
                                   const uint32_t Args[4],
                                   uint32_t &Result) {
    return false;
  }

  // --- heap replacement (R8) --------------------------------------------
  /// When true, the core's replacement allocator pads client blocks with
  /// red zones of redzoneBytes() and routes allocation events to the
  /// on*() callbacks below.
  virtual bool tracksHeap() const { return false; }
  virtual uint32_t redzoneBytes() const { return 16; }
  /// A heap block was handed to the client. \p Zeroed is true for calloc.
  virtual void onMalloc(int Tid, uint32_t Addr, uint32_t Size, bool Zeroed) {}
  /// A heap block is being returned by the client.
  virtual void onFree(int Tid, uint32_t Addr, uint32_t Size) {}
  /// free()/realloc() of a pointer that is not a live block.
  virtual void onBadFree(int Tid, uint32_t Addr) {}
};

} // namespace vg

#endif // VG_CORE_TOOL_H
