//===-- ir/IRPrinter.h - Textual IR rendering -------------------*- C++ -*-==//
///
/// \file
/// Renders IR superblocks in the paper's notation (Figures 1 and 2):
/// IMark separators, GET:I32(offset), PUT(offset), LDle/STle, helper calls
/// with their RdFX/WrFX guest-state annotations, and guarded exits.
///
//===----------------------------------------------------------------------===//
#ifndef VG_IR_IRPRINTER_H
#define VG_IR_IRPRINTER_H

#include "ir/IR.h"

#include <functional>
#include <string>

namespace vg {
namespace ir {

/// Optional resolver mapping a guest-state offset to a register name, used
/// to append "# get %r3"-style comments. Returns an empty string when the
/// offset has no friendly name.
using OffsetNamer = std::function<std::string(uint32_t Offset)>;

std::string toString(const Expr *E);
std::string toString(const Stmt *S, const OffsetNamer &Namer = nullptr);

/// Renders a whole superblock, one numbered statement per line plus the
/// final "goto {kind} next".
std::string toString(const IRSB &SB, const OffsetNamer &Namer = nullptr);

/// The VG1 offset namer ("%r0".."%r15", "%pc", "%ccop", shadows as
/// "sh(%r3)").
std::string vg1OffsetName(uint32_t Offset);

} // namespace ir
} // namespace vg

#endif // VG_IR_IRPRINTER_H
