//===-- support/Profile.h - Dispatcher/translation profiling ---*- C++ -*-==//
///
/// \file
/// The --profile observability layer: records per-phase translation time
/// (Section 3.7's eight phases), per-translation execution counts, and the
/// dispatcher/translation-table counters, then renders a ranked hot-block
/// report at fini(). Everything here is off the hot path unless profiling
/// was requested; the core only consults a null-checked pointer otherwise.
///
//===----------------------------------------------------------------------===//
#ifndef VG_SUPPORT_PROFILE_H
#define VG_SUPPORT_PROFILE_H

#include <cstdint>
#include <map>

namespace vg {

class OutputSink;

/// The translation-pipeline phases timed under --profile (Section 3.7).
enum class ProfPhase : unsigned {
  Disasm,     ///< Phase 1: machine code -> tree IR
  Optimise1,  ///< Phase 2: flatten + optimisation 1
  Instrument, ///< Phase 3: the tool plug-in
  Optimise2,  ///< Phase 4: optimisation 2
  TreeBuild,  ///< Phase 5: tree reconstruction
  ISel,       ///< Phase 6: instruction selection
  RegAlloc,   ///< Phase 7: linear-scan allocation
  Encode,     ///< Phase 8: assembly into code-cache bytes
  NumPhases
};

const char *profPhaseName(ProfPhase P);

/// Per-phase wall time accumulated by ONE thread. Each translation worker
/// owns its own instance and the guest thread merges them at install time,
/// so the asynchronous pipeline never shares a counter (the pre-service
/// code mutated the Profiler's plain fields straight from the translation
/// path, which a background worker would race).
struct PhaseTimes {
  static constexpr unsigned NPhases =
      static_cast<unsigned>(ProfPhase::NumPhases);
  double Seconds[NPhases] = {};
  uint64_t Counts[NPhases] = {};

  void add(ProfPhase Ph, double S) {
    unsigned I = static_cast<unsigned>(Ph);
    Seconds[I] += S;
    ++Counts[I];
  }
  void merge(const PhaseTimes &O) {
    for (unsigned I = 0; I != NPhases; ++I) {
      Seconds[I] += O.Seconds[I];
      Counts[I] += O.Counts[I];
    }
  }
};

/// Counters snapshotted by the core at report time (kept as a plain struct
/// so support/ does not depend on core/ headers).
struct ProfCounters {
  uint64_t BlocksDispatched = 0;
  uint64_t DispatcherEntries = 0; ///< blocks minus chained transfers
  uint64_t FastCacheHits = 0;
  uint64_t FastCacheMisses = 0;
  uint64_t ChainedTransfers = 0;
  uint64_t Translations = 0;
  uint64_t HotPromotions = 0;
  uint64_t TableLookups = 0;
  uint64_t TableHits = 0;
  uint64_t ChainsFilled = 0;
  uint64_t Unchains = 0;
  uint64_t EvictionRuns = 0;
  uint64_t Evicted = 0;
  uint64_t Invalidated = 0;
  // Shadow-memory fast-path counters (only when the tool has a ShadowMap).
  bool HasShadow = false;
  uint64_t ShadowFastLoads = 0;
  uint64_t ShadowSlowLoads = 0;
  uint64_t ShadowFastStores = 0;
  uint64_t ShadowSlowStores = 0;
  uint64_t ShadowSecCacheHits = 0;
  uint64_t ShadowSecCacheMisses = 0;
  uint64_t ShadowChunksMaterialised = 0;
  uint64_t ShadowChunksReclaimed = 0;
  uint64_t ShadowChunksLive = 0;
  uint64_t ShadowChunksHighWater = 0;
  // Scheduler/signal counters (PR 3).
  uint64_t ThreadSwitches = 0;
  uint64_t SignalsDelivered = 0;
  uint64_t SignalsDropped = 0;
  // Fault-injection counters (only when --fault-inject is active).
  bool HasFaults = false;
  uint64_t FaultRolls = 0;
  uint64_t FaultsInjected[8] = {};  ///< indexed by FaultKind
  const char *FaultNames[8] = {};   ///< parallel names, null-terminated set
  // Event-tracer counters (only when --trace-events is active).
  bool HasTrace = false;
  uint64_t TraceRecorded = 0;
  uint64_t TraceDropped = 0;
  uint64_t TraceSyscalls = 0;
  uint64_t TraceSignals = 0; ///< queue+deliver+return+drop records
  // Translation-service counters (only when --jit-threads > 0).
  bool HasJit = false;
  uint64_t JitThreads = 0;
  uint64_t JitQueueDepth = 0;
  uint64_t AsyncRequests = 0;       ///< promotions enqueued
  uint64_t AsyncCompleted = 0;      ///< pipelines finished by workers
  uint64_t AsyncInstalled = 0;      ///< superblocks published into the TT
  uint64_t AsyncDiscardedEpoch = 0; ///< lost to a TT flush/invalidation
  uint64_t AsyncDiscardedStale = 0; ///< guest code changed under the job
  uint64_t AsyncAbandoned = 0;      ///< still queued/unpublished at exit
  uint64_t QueueFullFallbacks = 0;  ///< backpressure -> inline translation
  uint64_t WorkerFailures = 0;
  uint64_t QueueHighWater = 0;
  uint64_t SyncPromotions = 0;      ///< promotions run inline (stalls)
  double InstallLatencySeconds = 0; ///< enqueue -> publication, summed
  double SyncPromoStallSeconds = 0; ///< guest time lost to inline promotion
  double EnqueueSeconds = 0;        ///< guest time spent snapshotting/queueing
  // Trace-tier counters (only when --trace-tier is on).
  bool HasTraces = false;
  uint64_t TraceRequests = 0;     ///< trace formations attempted
  uint64_t TracesFormed = 0;      ///< traces installed over tier-1 heads
  uint64_t TraceAborts = 0;       ///< spill overflow / worker failure
  uint64_t TraceExecs = 0;        ///< trace entries executed
  uint64_t TraceSideExits = 0;    ///< exits taken through a guarded side exit
  uint64_t TraceDeadFlagPuts = 0; ///< dead CC-thunk writes deleted
  uint64_t TraceProbesCSEd = 0;   ///< shadow probes CSE'd across seams
  // Sharded-scheduler counters (only when --sched-threads > 1).
  bool HasSched = false;
  uint64_t SchedThreads = 0;
  uint64_t SchedQuanta = 0;          ///< run-queue pops that ran a quantum
  uint64_t RunQueuePushes = 0;
  uint64_t RunQueuePops = 0;
  uint64_t RunQueueWaits = 0;        ///< pops that had to park
  uint64_t WorldLockAcquisitions = 0;///< block-boundary lock round-trips
  uint64_t TranslationsRetired = 0;  ///< QSBR limbo traffic
  uint64_t LimboHighWater = 0;       ///< peak translations awaiting grace
  // Persistent translation-cache counters (only when --tt-cache is set).
  bool HasTransCache = false;
  uint64_t CacheHits = 0;    ///< entries validated and installed
  uint64_t CacheMisses = 0;  ///< key not present on disk
  uint64_t CacheRejects = 0; ///< present but malformed/stale/poisoned
  uint64_t CacheWrites = 0;  ///< entries written back after a pipeline run
  uint64_t CacheEvictedFiles = 0; ///< files removed to honour the budget
  uint64_t CacheDirBytes = 0;     ///< on-disk footprint at exit
  double CacheLoadSeconds = 0;    ///< read+validate+install, summed
  double CacheStoreSeconds = 0;   ///< serialize+write-back, summed
  // Translation-server counters (only when --tt-server is set).
  bool HasTransServer = false;
  uint64_t ServerRequests = 0;  ///< server lookups settled
  uint64_t ServerHits = 0;      ///< fetched, validated, installed
  uint64_t ServerMisses = 0;
  uint64_t ServerRejects = 0;   ///< fetched but failed validation
  uint64_t ServerTimeouts = 0;
  uint64_t ServerRetries = 0;
  uint64_t ServerFallbacks = 0; ///< lookups degraded down the ladder
  uint64_t ServerWrites = 0;    ///< entries pushed to the daemon
  uint64_t ServerBytesFetched = 0;
  uint64_t ServerBytesSent = 0;
  double ServerFetchSeconds = 0;
  bool ServerAlive = false; ///< daemon still reachable at exit
};

/// Accumulates profile data for one run.
class Profiler {
public:
  /// RAII phase timer; a null profiler makes it a no-op, so call sites can
  /// be written unconditionally.
  class Timer {
  public:
    Timer(Profiler *P, ProfPhase Ph);
    ~Timer();
    Timer(const Timer &) = delete;
    Timer &operator=(const Timer &) = delete;

  private:
    Profiler *P;
    ProfPhase Ph;
    double T0;
  };

  /// One block entry (dispatcher entry or chained transfer) at \p Addr.
  void noteExec(uint32_t Addr) { ++Blocks[Addr].Execs; }

  /// One phase sample (the sync pipeline's RAII timer lands here).
  void notePhase(ProfPhase Ph, double Seconds) {
    notePhaseSeconds(Ph, Seconds);
  }

  /// Folds a worker's privately-accumulated phase times in. Guest thread
  /// only; workers never touch the Profiler directly.
  void mergePhases(const PhaseTimes &PT) {
    for (unsigned I = 0; I != NPhases; ++I) {
      PhaseSeconds[I] += PT.Seconds[I];
      PhaseCounts[I] += PT.Counts[I];
    }
  }

  /// A translation of \p Addr finished (Tier 1 = hot superblock).
  void noteTranslation(uint32_t Addr, uint32_t NumInsns, unsigned Tier,
                       double Seconds);

  /// Renders the report: per-phase translation timings, dispatcher and
  /// table counters, and the TopN blocks ranked by execution count.
  void report(OutputSink &Out, const ProfCounters &C,
              unsigned TopN = 10) const;

private:
  void notePhaseSeconds(ProfPhase Ph, double Seconds);

  struct BlockInfo {
    uint64_t Execs = 0;
    uint32_t NumInsns = 0;
    uint32_t Translations = 0; ///< times (re)translated
    unsigned Tier = 0;         ///< highest tier reached
    double TranslateSeconds = 0;
  };

  static constexpr unsigned NPhases =
      static_cast<unsigned>(ProfPhase::NumPhases);
  double PhaseSeconds[NPhases] = {};
  uint64_t PhaseCounts[NPhases] = {};
  std::map<uint32_t, BlockInfo> Blocks; ///< survives eviction, keyed by PC
};

} // namespace vg

#endif // VG_SUPPORT_PROFILE_H
