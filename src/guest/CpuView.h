//===-- guest/CpuView.h - Abstract guest CPU access -------------*- C++ -*-==//
///
/// \file
/// An abstract view of a guest CPU's architectural state. The simulated
/// kernel (src/kernel) reads syscall arguments and writes results through
/// this interface, so it can serve both execution engines: the reference
/// interpreter (native baseline) and the DBI core's ThreadState.
///
//===----------------------------------------------------------------------===//
#ifndef VG_GUEST_CPUVIEW_H
#define VG_GUEST_CPUVIEW_H

#include <cstdint>

namespace vg {

class GuestMemory;

/// Read/write access to one guest hardware thread's registers and memory.
class CpuView {
public:
  virtual ~CpuView() = default;

  virtual uint32_t readReg(unsigned Index) const = 0;
  virtual void writeReg(unsigned Index, uint32_t Value) = 0;
  virtual uint32_t pc() const = 0;
  virtual void setPC(uint32_t Value) = 0;
  virtual GuestMemory &mem() = 0;

  /// Identifies the guest thread (0 in single-threaded contexts).
  virtual int threadId() const { return 0; }
};

} // namespace vg

#endif // VG_GUEST_CPUVIEW_H
