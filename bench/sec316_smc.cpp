//===-- bench/sec316_smc.cpp - Section 3.16: self-modifying code ----------==//
///
/// \file
/// Reproduces the Section 3.16 design point: per-execution hash checks of
/// translated code are expensive, so by default Valgrind applies them only
/// to code on the stack (enough for GCC's nested-function trampolines),
/// and programs can opt out or opt in globally.
///
/// Measures a normal workload under --smc-check=none/stack/all (stack
/// should cost ~nothing for code not on the stack; all should be clearly
/// slower), and demonstrates correctness on a stack-trampoline program
/// that is *wrong* under none and *right* under stack.
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "guestlib/GuestLib.h"
#include "kernel/SimKernel.h"
#include "tools/Nulgrind.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace vg;
using namespace vg::vg1;

namespace {

/// The stack-trampoline program from the test suite: writes a 2-insn
/// function to the stack, runs it, patches it, runs it again.
GuestImage trampolineImage() {
  Assembler Code(0x1000);
  Assembler Data(0x100000);
  GuestLibLabels Lib = emitGuestLib(Code, Data);
  Label Main = Code.newLabel();
  uint32_t Entry = emitStart(Code, Main);
  Code.bind(Main);
  Code.movi(Reg::R0, SysMprotect);
  Code.movi(Reg::R1, ClientStackTop - (1u << 20));
  Code.movi(Reg::R2, 1u << 20);
  Code.movi(Reg::R3, 7);
  Code.sys();
  Code.movi(Reg::R10, 0);      // total
  Code.movi(Reg::R11, 0);      // iteration
  Label Loop = Code.boundLabel();
  Code.addi(Reg::R6, Reg::SP, -32);
  // movi r0, <iter & 0xFF>; ret  — regenerated each iteration
  Code.andi(Reg::R2, Reg::R11, 0xFF);
  Code.shli(Reg::R2, Reg::R2, 16);
  Code.movi(Reg::R3, 0x00000002);
  Code.or_(Reg::R2, Reg::R2, Reg::R3); // 02 00 <iter> 00
  Code.st(Reg::R6, 0, Reg::R2);
  Code.movi(Reg::R2, 0x00320000); // 00 00 32 00
  Code.st(Reg::R6, 4, Reg::R2);
  Code.callr(Reg::R6);
  Code.add(Reg::R10, Reg::R10, Reg::R0);
  Code.addi(Reg::R11, Reg::R11, 1);
  Code.cmpi(Reg::R11, 64);
  Code.blt(Loop);
  Code.mov(Reg::R1, Reg::R10);
  Code.call(Lib.PrintU32);
  Code.movi(Reg::R0, 0);
  Code.ret();
  return GuestImageBuilder().addCode(Code).addData(Data).entry(Entry).build();
}

} // namespace

int main() {
  std::printf("== Section 3.16: SMC check cost on ordinary code ==\n");
  std::printf("%-10s %12s %12s %12s\n", "workload", "none", "stack", "all");
  for (const char *Name : {"crafty", "gzip"}) {
    GuestImage Img = buildWorkload(Name, 1);
    double T[3];
    const char *Modes[3] = {"none", "stack", "all"};
    for (int I = 0; I != 3; ++I) {
      Nulgrind Tool;
      RunReport R = runUnderCore(
          Img, &Tool, {std::string("--smc-check=") + Modes[I]});
      T[I] = R.Completed ? R.Seconds : -1;
    }
    std::printf("%-10s %11.3fs %11.3fs %11.3fs   (all/none = %.1fx)\n", Name,
                T[0], T[1], T[2], T[0] > 0 ? T[2] / T[0] : 0.0);
  }
  std::printf("(expected: stack ~= none for code not on the stack; all is "
              "markedly slower —\n \"this has a high run-time cost ... only "
              "code on the stack is slowed down\")\n\n");

  std::printf("== Section 3.16: stack-trampoline correctness ==\n");
  GuestImage Tramp = trampolineImage();
  // Sum of 0..63 = 2016 when every regenerated trampoline is re-translated.
  for (const char *Mode : {"none", "stack", "all"}) {
    Nulgrind Tool;
    RunReport R = runUnderCore(Tramp, &Tool,
                               {std::string("--smc-check=") + Mode});
    std::printf("--smc-check=%-6s -> stdout %-8s (want 2016) "
                "retranslations=%llu %s\n",
                Mode, R.Stdout.substr(0, R.Stdout.find('\n')).c_str(),
                static_cast<unsigned long long>(R.Stats.SmcRetranslations),
                R.Stdout.substr(0, 4) == "2016" ? "CORRECT" : "STALE");
  }
  std::printf("(the GCC-nested-function scenario: only =stack and =all "
              "notice the rewritten trampoline)\n");
  return 0;
}
