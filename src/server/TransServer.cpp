//===-- server/TransServer.cpp - The vgserve daemon core ------------------==//

#include "server/TransServer.h"

#include "core/TransCache.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace vg;
using namespace vg::srv;

namespace fs = std::filesystem;

namespace {

bool readWholeFile(const std::string &Path, std::vector<uint8_t> &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::fseek(F, 0, SEEK_END);
  long Sz = std::ftell(F);
  std::fseek(F, 0, SEEK_SET);
  if (Sz < 0 || Sz > (64l << 20)) {
    std::fclose(F);
    return false;
  }
  Out.resize(static_cast<size_t>(Sz));
  size_t Got = Sz ? std::fread(Out.data(), 1, Out.size(), F) : 0;
  std::fclose(F);
  return Got == Out.size();
}

bool writeFileAtomic(const std::string &Path, const uint8_t *Data,
                     size_t Len) {
  // Unique temp name: concurrent PUTs of the same key must each stage
  // privately (same rationale as TransCache::storeFile).
  static std::atomic<uint64_t> Counter{0};
  std::string Tmp = Path + "." + std::to_string(getpid()) + "-" +
                    std::to_string(Counter.fetch_add(1)) + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return false;
  size_t Put = Len ? std::fwrite(Data, 1, Len, F) : 0;
  bool Ok = std::fclose(F) == 0 && Put == Len;
  std::error_code EC;
  if (!Ok) {
    fs::remove(Tmp, EC);
    return false;
  }
  fs::rename(Tmp, Path, EC);
  if (EC) {
    fs::remove(Tmp, EC);
    return false;
  }
  return true;
}

/// Parses "hex16-hex16" from an entry filename stem; false on anything
/// that is not exactly a TransCache entry name.
bool parseEntryStem(const std::string &Stem, uint64_t &Cfg, uint64_t &Key) {
  if (Stem.size() != 33 || Stem[16] != '-')
    return false;
  auto hex = [](const std::string &S, uint64_t &V) {
    V = 0;
    for (char C : S) {
      V <<= 4;
      if (C >= '0' && C <= '9')
        V |= static_cast<uint64_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        V |= static_cast<uint64_t>(C - 'a' + 10);
      else
        return false;
    }
    return true;
  };
  return hex(Stem.substr(0, 16), Cfg) && hex(Stem.substr(17), Key);
}

} // namespace

TransServer::~TransServer() { stop(); }

void TransServer::scanDir() {
  std::error_code EC;
  fs::create_directories(O.Dir, EC);
  for (const auto &DE : fs::directory_iterator(O.Dir, EC)) {
    if (!DE.is_regular_file(EC) || DE.path().extension() != ".vgtc")
      continue;
    uint64_t Cfg = 0, Key = 0;
    if (!parseEntryStem(DE.path().stem().string(), Cfg, Key))
      continue;
    std::vector<uint8_t> Image;
    if (!readWholeFile(DE.path().string(), Image))
      continue;
    // Only entries that survive the full structural walk are served. A
    // malformed file (torn by a crashed writer, bit-rotted, truncated)
    // is left on disk but never indexed — a GET for it is a Miss, so a
    // client can never be handed bytes the daemon already knows are bad.
    TransCacheEntry E;
    if (TransCache::decodeEntryFile(Image, Cfg, Key, E,
                                    /*ResolveCallees=*/false) !=
        TransCache::LoadResult::Found)
      continue;
    Entry &Ent = Index[{Cfg, Key}];
    Ent.Path = DE.path().string();
    Ent.Size = Image.size();
    Ent.Extents = std::move(E.Extents);
    TotalBytes += Ent.Size;
  }
}

bool TransServer::start(std::string &Err) {
  if (Running) {
    Err = "already running";
    return false;
  }
  StopFlag = false;
  scanDir();
  ListenFd = listenUnix(O.SocketPath, 64);
  if (ListenFd < 0) {
    Err = "cannot bind/listen on '" + O.SocketPath + "'";
    return false;
  }
  Running = true;
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void TransServer::stop() {
  if (!Running)
    return;
  StopFlag = true;
  if (Acceptor.joinable())
    Acceptor.join();
  // The acceptor closed the listen socket on its way out; now every
  // connection thread notices StopFlag at its next idle slice.
  std::map<uint64_t, std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> L(Mu);
    ToJoin.swap(Conns);
    FinishedConns.clear();
  }
  for (auto &[Id, T] : ToJoin)
    if (T.joinable())
      T.join();
  unlink(O.SocketPath.c_str());
  Running = false;
}

uint64_t TransServer::indexedEntries() const {
  std::lock_guard<std::mutex> L(Mu);
  return Index.size();
}

uint64_t TransServer::totalBytes() const {
  std::lock_guard<std::mutex> L(Mu);
  return TotalBytes;
}

TransServer::Stats TransServer::stats() const {
  Stats S;
  S.Connections = St.Connections.load(std::memory_order_relaxed);
  S.Requests = St.Requests.load(std::memory_order_relaxed);
  S.Hits = St.Hits.load(std::memory_order_relaxed);
  S.Misses = St.Misses.load(std::memory_order_relaxed);
  S.Coalesced = St.Coalesced.load(std::memory_order_relaxed);
  S.Puts = St.Puts.load(std::memory_order_relaxed);
  S.PutRejects = St.PutRejects.load(std::memory_order_relaxed);
  S.Poisons = St.Poisons.load(std::memory_order_relaxed);
  S.Evicted = St.Evicted.load(std::memory_order_relaxed);
  S.MalformedFrames = St.MalformedFrames.load(std::memory_order_relaxed);
  S.BytesIn = St.BytesIn.load(std::memory_order_relaxed);
  S.BytesOut = St.BytesOut.load(std::memory_order_relaxed);
  return S;
}

void TransServer::acceptLoop() {
  while (!StopFlag) {
    struct pollfd P = {ListenFd, POLLIN, 0};
    int R = poll(&P, 1, 100);
    if (R < 0 && errno != EINTR)
      break;
    // Reap connection threads that announced completion, so a long-lived
    // daemon's thread table stays bounded by its *live* connections.
    {
      std::lock_guard<std::mutex> L(Mu);
      for (uint64_t Id : FinishedConns) {
        auto It = Conns.find(Id);
        if (It != Conns.end()) {
          It->second.detach(); // already past its last shared access
          Conns.erase(It);
        }
      }
      FinishedConns.clear();
    }
    if (R <= 0)
      continue;
    int Fd = accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    St.Connections.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> L(Mu);
    uint64_t Id = NextConnId++;
    Conns.emplace(Id, std::thread([this, Fd, Id] {
                    serveConnection(Fd, Id);
                  }));
  }
  close(ListenFd);
  ListenFd = -1;
}

void TransServer::serveConnection(int Fd, uint64_t Id) {
  for (;;) {
    Frame F;
    IoResult R = readFrame(Fd, F, O.IdleSliceMs);
    if (R == IoResult::Timeout) {
      if (StopFlag)
        break;
      continue; // idle connection: keep it open
    }
    if (R != IoResult::Ok) {
      if (R == IoResult::Malformed)
        St.MalformedFrames.fetch_add(1, std::memory_order_relaxed);
      break; // EOF, error, or garbage: drop the connection
    }
    St.BytesIn.fetch_add(FrameHeaderSize + F.Body.size(),
                         std::memory_order_relaxed);
    if (!handleFrame(Fd, F))
      break;
  }
  close(Fd);
  std::lock_guard<std::mutex> L(Mu);
  FinishedConns.push_back(Id);
}

bool TransServer::reply(int Fd, MsgType T, const uint8_t *Body, size_t Len) {
  // A bounded send: a client that stops draining its socket mid-reply is
  // dropped rather than wedging this connection thread.
  if (writeFrame(Fd, T, Body, Len, 5000) != IoResult::Ok)
    return false;
  St.BytesOut.fetch_add(FrameHeaderSize + Len, std::memory_order_relaxed);
  return true;
}

bool TransServer::handleFrame(int Fd, const Frame &F) {
  const uint8_t *B = F.Body.data();
  switch (F.Type) {
  case MsgType::Get:
    if (F.Body.size() != 16) {
      St.MalformedFrames.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return handleGet(Fd, getU64(B), getU64(B + 8));
  case MsgType::Put:
    if (F.Body.size() < 16) {
      St.MalformedFrames.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return handlePut(Fd, getU64(B), getU64(B + 8), B + 16,
                     F.Body.size() - 16);
  case MsgType::Poison:
    if (F.Body.size() != 17) {
      St.MalformedFrames.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (!handlePoison(getU64(B), B[8] != 0, getU32(B + 9), getU32(B + 13)))
      return false;
    return reply(Fd, MsgType::Ok, nullptr, 0);
  case MsgType::Ping:
    return reply(Fd, MsgType::Ok, nullptr, 0);
  default:
    // A response type (or junk) arriving as a request is a protocol
    // violation, not a servable frame.
    St.MalformedFrames.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
}

bool TransServer::handleGet(int Fd, uint64_t Cfg, uint64_t Key) {
  St.Requests.fetch_add(1, std::memory_order_relaxed);
  KeyT K{Cfg, Key};
  std::shared_ptr<Pending> P;
  std::string Path;
  bool Leader = false;
  {
    std::unique_lock<std::mutex> L(Mu);
    auto InIt = InFlight.find(K);
    if (InIt != InFlight.end()) {
      // Coalesce: share the in-flight read instead of hitting the disk
      // again for the same key.
      P = InIt->second;
      St.Coalesced.fetch_add(1, std::memory_order_relaxed);
      P->CV.wait(L, [&] { return P->Done; });
    } else {
      auto It = Index.find(K);
      if (It == Index.end()) {
        St.Misses.fetch_add(1, std::memory_order_relaxed);
        L.unlock();
        return reply(Fd, MsgType::Miss, nullptr, 0);
      }
      P = std::make_shared<Pending>();
      InFlight.emplace(K, P);
      Path = It->second.Path;
      Leader = true;
    }
  }
  if (Leader) {
    if (O.ReadDelayMs > 0)
      usleep(static_cast<useconds_t>(O.ReadDelayMs) * 1000);
    auto Bytes = std::make_shared<std::vector<uint8_t>>();
    bool Ok = readWholeFile(Path, *Bytes);
    {
      std::lock_guard<std::mutex> L(Mu);
      P->Done = true;
      P->Bytes = Ok ? Bytes : nullptr;
      InFlight.erase(K);
      if (!Ok)
        dropEntryLocked(K); // vanished or unreadable underneath us
    }
    P->CV.notify_all();
  }
  if (!P->Bytes) {
    St.Misses.fetch_add(1, std::memory_order_relaxed);
    return reply(Fd, MsgType::Miss, nullptr, 0);
  }
  St.Hits.fetch_add(1, std::memory_order_relaxed);
  return reply(Fd, MsgType::Hit, P->Bytes->data(), P->Bytes->size());
}

bool TransServer::handlePut(int Fd, uint64_t Cfg, uint64_t Key,
                            const uint8_t *Image, size_t Len) {
  // Validation before storage: the image must decode end to end (header,
  // checksum, payload walk, callee-index bounds) for THIS (cfg, key).
  // Pointers are not resolved — they are meaningless here — but nothing
  // structurally unsound ever lands in the directory.
  std::vector<uint8_t> File(Image, Image + Len);
  TransCacheEntry E;
  if (TransCache::decodeEntryFile(File, Cfg, Key, E,
                                  /*ResolveCallees=*/false) !=
      TransCache::LoadResult::Found) {
    St.PutRejects.fetch_add(1, std::memory_order_relaxed);
    return reply(Fd, MsgType::Err, nullptr, 0);
  }
  KeyT K{Cfg, Key};
  std::string Path =
      O.Dir + "/" + TransCache::entryFileName(Cfg, Key);
  {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Index.find(K);
    uint64_t OldSize = It != Index.end() ? It->second.Size : 0;
    if (O.MaxBytes)
      evictToFitLocked(Len > OldSize ? Len - OldSize : 0);
    if (!writeFileAtomic(Path, File.data(), File.size())) {
      St.PutRejects.fetch_add(1, std::memory_order_relaxed);
      return reply(Fd, MsgType::Err, nullptr, 0);
    }
    // Re-find: eviction above may have dropped the old slot.
    Entry &Ent = Index[K];
    TotalBytes += Len;
    TotalBytes -= std::min<uint64_t>(TotalBytes, Ent.Size);
    Ent.Path = Path;
    Ent.Size = Len;
    Ent.Extents = std::move(E.Extents);
  }
  St.Puts.fetch_add(1, std::memory_order_relaxed);
  return reply(Fd, MsgType::Ok, nullptr, 0);
}

bool TransServer::handlePoison(uint64_t Cfg, bool All, uint32_t Addr,
                               uint32_t Len) {
  St.Poisons.fetch_add(1, std::memory_order_relaxed);
  uint64_t Lo = Addr;
  uint64_t Hi = std::min<uint64_t>(static_cast<uint64_t>(Addr) + Len,
                                   0x100000000ull);
  std::lock_guard<std::mutex> L(Mu);
  std::vector<KeyT> Victims;
  for (const auto &[K, Ent] : Index) {
    if (K.first != Cfg)
      continue;
    if (All) {
      Victims.push_back(K);
      continue;
    }
    for (auto [ELo, EHi] : Ent.Extents)
      if (ELo < Hi && Lo < EHi) {
        Victims.push_back(K);
        break;
      }
  }
  for (const KeyT &K : Victims)
    dropEntryLocked(K);
  return true;
}

void TransServer::dropEntryLocked(const KeyT &K) {
  auto It = Index.find(K);
  if (It == Index.end())
    return;
  std::error_code EC;
  fs::remove(It->second.Path, EC);
  TotalBytes -= std::min<uint64_t>(TotalBytes, It->second.Size);
  Index.erase(It);
  St.Evicted.fetch_add(1, std::memory_order_relaxed);
}

void TransServer::evictToFitLocked(uint64_t NeedBytes) {
  if (TotalBytes + NeedBytes <= O.MaxBytes)
    return;
  struct Victim {
    fs::file_time_type When;
    KeyT K;
  };
  std::vector<Victim> Vs;
  std::error_code EC;
  for (const auto &[K, Ent] : Index)
    Vs.push_back({fs::last_write_time(Ent.Path, EC), K});
  std::sort(Vs.begin(), Vs.end(),
            [](const Victim &A, const Victim &B) { return A.When < B.When; });
  for (const Victim &V : Vs) {
    if (TotalBytes + NeedBytes <= O.MaxBytes)
      break;
    dropEntryLocked(V.K);
  }
}
