//===-- core/TracerHooks.h - Event-trace layering ---------------*- C++ -*-==//
///
/// \file
/// Wraps every EventHub callback so the --trace-events ring buffer sees
/// the event stream (whatever the tool or the core registered still
/// runs). Called once from Core::loadImage, before the start-up mappings
/// fire their events. A free function: it needs nothing from Core but the
/// hub and the tracer.
///
//===----------------------------------------------------------------------===//
#ifndef VG_CORE_TRACERHOOKS_H
#define VG_CORE_TRACERHOOKS_H

namespace vg {

class EventHub;
class EventTracer;

/// Layers \p Tr over every callback of \p Events. No-op when \p Tr is
/// null. Note this makes wantsStackEvents() true even for tools that
/// ignore stacks — traced runs deliberately instrument SP changes so the
/// trace is complete.
void installTracerHooks(EventHub &Events, EventTracer *Tr);

} // namespace vg

#endif // VG_CORE_TRACERHOOKS_H
