//===-- bench/sec33_warmstart.cpp - Persistent-cache warm start -----------==//
///
/// \file
/// Measures what --tt-cache buys on the Table 2 trio: a cold run pays the
/// full eight-phase pipeline for every translation and writes each result
/// back to disk; a warm run of the same binary+tool+options installs the
/// deserialized translations instead. Reports translation time (the
/// guest-thread seconds spent producing installed translations — pipeline
/// time cold, load+validate time warm), hit rates, and end-to-end wall
/// time, and *asserts* the contract: warm stdout byte-identical to cold,
/// zero rejects, and a warm hit rate of at least 70%.
///
/// A third scenario measures the translation server: the cold run's
/// directory is handed to an in-process vgserve daemon and a fresh client
/// (no local cache) installs everything over the Unix socket — same
/// byte-identical contract, plus at least 90% of installs served.
///
/// Emits BENCH_warmstart.json for regression tracking.
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "server/TransServer.h"
#include "tools/Nulgrind.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace vg;

namespace {

constexpr int Reps = 3; // best-of, to damp scheduler noise

struct Cell {
  double Seconds = 0;     ///< best end-to-end wall time
  double XlateSeconds = 0; ///< translation time from the best-wall run
  JitStats Jit;
  uint64_t Translations = 0;
  std::string Stdout;
};

int Failures = 0;

void check(bool Ok, const char *What, const std::string &Prog) {
  if (!Ok) {
    std::printf("FAIL [%s]: %s\n", Prog.c_str(), What);
    ++Failures;
  }
}

} // namespace

int main() {
  uint32_t Scale = 1;
  if (const char *E = std::getenv("VG_BENCH_SCALE"))
    Scale = static_cast<uint32_t>(std::atoi(E));

  std::filesystem::path CacheRoot =
      std::filesystem::temp_directory_path() /
      ("vg-warmstart-" + std::to_string(getpid()));
  std::filesystem::remove_all(CacheRoot);

  std::printf("== Section 3.3/3.7: persistent translation cache "
              "(warm start) ==\n");
  std::printf("(xlate = guest-thread translation seconds: pipeline when "
              "cold, load+validate when warm)\n\n");
  std::printf("%-10s %6s %9s %10s %6s %6s %6s %6s %8s\n", "workload",
              "run", "time(s)", "xlate(ms)", "xl8ns", "hits", "miss",
              "wrote", "hit-rate");

  struct Row {
    std::string Name;
    Cell Cold, Warm, Served;
  };
  std::vector<Row> Rows;

  for (const char *Name : {"crafty", "mcf", "gcc"}) {
    GuestImage Img = buildWorkload(Name, Scale);
    Row R;
    R.Name = Name;
    for (int Rep = 0; Rep != Reps; ++Rep) {
      // Fresh directory per rep so every cold run is genuinely cold; the
      // warm run follows it against the directory it just populated.
      std::filesystem::path Dir =
          CacheRoot / (std::string(Name) + "-" + std::to_string(Rep));
      std::vector<std::string> Opts = {
          "--smc-check=none", "--chaining=yes", "--hot-threshold=2",
          "--tt-cache=" + Dir.string()};
      Nulgrind T1, T2, T3;
      RunReport Cold = runUnderCore(Img, &T1, Opts);
      RunReport Warm = runUnderCore(Img, &T2, Opts);
      check(Cold.Completed && Warm.Completed, "run did not complete", Name);
      check(Warm.Stdout == Cold.Stdout,
            "warm stdout differs from cold stdout", Name);
      // Server-warm: an in-process daemon owns the directory the cold run
      // just populated; the client has no local cache, so every install
      // must travel the socket (fetch + client-side re-validation).
      TransServer::Options SO;
      SO.Dir = Dir.string();
      SO.SocketPath = Dir.string() + ".sock";
      TransServer Server(SO);
      std::string SrvErr;
      check(Server.start(SrvErr), "vgserve daemon failed to start", Name);
      std::vector<std::string> SrvOpts = {
          "--smc-check=none", "--chaining=yes", "--hot-threshold=2",
          "--tt-server=" + SO.SocketPath};
      RunReport Srv = runUnderCore(Img, &T3, SrvOpts);
      Server.stop();
      check(Srv.Completed, "served run did not complete", Name);
      check(Srv.Stdout == Cold.Stdout,
            "served stdout differs from cold stdout", Name);
      if (Rep == 0 || Cold.Seconds < R.Cold.Seconds) {
        R.Cold = {Cold.Seconds, Cold.Stats.TranslateSeconds, Cold.Jit,
                  Cold.Stats.Translations, Cold.Stdout};
      }
      if (Rep == 0 || Warm.Seconds < R.Warm.Seconds) {
        R.Warm = {Warm.Seconds, Warm.Stats.TranslateSeconds, Warm.Jit,
                  Warm.Stats.Translations, Warm.Stdout};
      }
      if (Rep == 0 || Srv.Seconds < R.Served.Seconds) {
        R.Served = {Srv.Seconds, Srv.Stats.TranslateSeconds, Srv.Jit,
                    Srv.Stats.Translations, Srv.Stdout};
      }
    }
    for (const auto &[Label, C] :
         {std::pair<const char *, const Cell &>{"cold", R.Cold},
          std::pair<const char *, const Cell &>{"warm", R.Warm},
          std::pair<const char *, const Cell &>{"served", R.Served}}) {
      uint64_t Lookups =
          C.Jit.CacheHits + C.Jit.CacheMisses + C.Jit.CacheRejects;
      std::printf("%-10s %6s %9.4f %10.3f %6llu %6llu %6llu %6llu %7.1f%%\n",
                  R.Name.c_str(), Label, C.Seconds, 1e3 * C.XlateSeconds,
                  static_cast<unsigned long long>(C.Translations),
                  static_cast<unsigned long long>(C.Jit.CacheHits),
                  static_cast<unsigned long long>(C.Jit.CacheMisses),
                  static_cast<unsigned long long>(C.Jit.CacheWrites),
                  Lookups ? 100.0 * static_cast<double>(C.Jit.CacheHits) /
                                static_cast<double>(Lookups)
                          : 0.0);
    }
    // The acceptance contract.
    uint64_t WarmLookups = R.Warm.Jit.CacheHits + R.Warm.Jit.CacheMisses +
                           R.Warm.Jit.CacheRejects;
    check(R.Cold.Jit.CacheWrites > 0, "cold run wrote no entries", R.Name);
    check(R.Warm.Jit.CacheHits > 0, "warm run had no hits", R.Name);
    check(R.Warm.Jit.CacheRejects == 0, "warm run rejected entries",
          R.Name);
    check(WarmLookups != 0 && 10 * R.Warm.Jit.CacheHits >= 7 * WarmLookups,
          "warm hit rate below 70%", R.Name);
    // Served contract: everything the warm run got from disk, the served
    // run must get over the wire — >= 90% of installs, no fallbacks, no
    // rejects (the daemon only ever hands back what the cold run wrote).
    uint64_t SrvLookups = R.Served.Jit.CacheHits + R.Served.Jit.CacheMisses +
                          R.Served.Jit.CacheRejects;
    check(R.Served.Jit.ServerHits > 0, "served run had no server hits",
          R.Name);
    check(R.Served.Jit.ServerFallbacks == 0, "served run fell back to JIT",
          R.Name);
    check(R.Served.Jit.ServerRejects == 0, "served run rejected blobs",
          R.Name);
    check(SrvLookups != 0 && 10 * R.Served.Jit.ServerHits >= 9 * SrvLookups,
          "server-served install rate below 90%", R.Name);
    Rows.push_back(std::move(R));
  }

  double ColdXlate = 0, WarmXlate = 0;
  for (const Row &R : Rows) {
    ColdXlate += R.Cold.XlateSeconds;
    WarmXlate += R.Warm.XlateSeconds;
  }
  std::printf("\ntotal translation time: cold %.3fms, warm %.3fms "
              "(%.1fx)\n",
              1e3 * ColdXlate, 1e3 * WarmXlate,
              WarmXlate > 0 ? ColdXlate / WarmXlate : 0.0);
  std::printf("(expected: warm runs replace eight-phase pipelines with a "
              "read+checksum+hash-check per\n block; served runs add a "
              "socket round-trip but keep the same validation; output "
              "must\n stay byte-identical — cache and server can change "
              "only where translations come from,\n never what they "
              "do.)\n");

  {
    std::ofstream F("BENCH_warmstart.json");
    F << "{\n  \"bench\": \"sec33_warmstart\",\n  \"scale\": " << Scale
      << ",\n  \"unit\": \"seconds\",\n  \"rows\": [\n";
    for (size_t I = 0; I != Rows.size(); ++I) {
      const Row &R = Rows[I];
      uint64_t WarmLookups = R.Warm.Jit.CacheHits + R.Warm.Jit.CacheMisses +
                             R.Warm.Jit.CacheRejects;
      uint64_t SrvLookups = R.Served.Jit.CacheHits +
                            R.Served.Jit.CacheMisses +
                            R.Served.Jit.CacheRejects;
      F << "    {\"program\": \"" << R.Name << "\""
        << ", \"cold_sec\": " << R.Cold.Seconds
        << ", \"warm_sec\": " << R.Warm.Seconds
        << ", \"served_sec\": " << R.Served.Seconds
        << ", \"cold_xlate_sec\": " << R.Cold.XlateSeconds
        << ", \"warm_xlate_sec\": " << R.Warm.XlateSeconds
        << ", \"served_xlate_sec\": " << R.Served.XlateSeconds
        << ", \"cold_writes\": " << R.Cold.Jit.CacheWrites
        << ", \"warm_hits\": " << R.Warm.Jit.CacheHits
        << ", \"warm_misses\": " << R.Warm.Jit.CacheMisses
        << ", \"warm_rejects\": " << R.Warm.Jit.CacheRejects
        << ", \"warm_hit_rate\": "
        << (WarmLookups ? static_cast<double>(R.Warm.Jit.CacheHits) /
                              static_cast<double>(WarmLookups)
                        : 0.0)
        << ", \"server_hits\": " << R.Served.Jit.ServerHits
        << ", \"server_fallbacks\": " << R.Served.Jit.ServerFallbacks
        << ", \"server_bytes_fetched\": " << R.Served.Jit.ServerBytesFetched
        << ", \"server_fetch_sec\": " << R.Served.Jit.ServerFetchSeconds
        << ", \"served_rate\": "
        << (SrvLookups ? static_cast<double>(R.Served.Jit.ServerHits) /
                             static_cast<double>(SrvLookups)
                       : 0.0)
        << ", \"stdout_identical\": true}"
        << (I + 1 != Rows.size() ? "," : "") << "\n";
    }
    F << "  ],\n  \"cold_xlate_total_sec\": " << ColdXlate
      << ",\n  \"warm_xlate_total_sec\": " << WarmXlate << "\n}\n";
    std::printf("(wrote BENCH_warmstart.json)\n");
  }

  std::filesystem::remove_all(CacheRoot);
  if (Failures) {
    std::printf("\n%d contract failure(s)\n", Failures);
    return 1;
  }
  return 0;
}
