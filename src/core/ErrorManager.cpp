//===-- core/ErrorManager.cpp - Error recording and suppression -----------==//

#include "core/ErrorManager.h"

#include <cstdlib>
#include <sstream>

using namespace vg;

bool ErrorManager::record(const std::string &Kind, const std::string &Message,
                          uint32_t PC, std::vector<uint32_t> Stack) {
  std::lock_guard<std::mutex> L(Mu);
  if (matchesSuppression(Kind, PC)) {
    ++NumSuppressed;
    return false;
  }
  for (ErrorRecord &R : Records) {
    if (R.Kind == Kind && R.PC == PC) {
      ++R.Count;
      return false;
    }
  }
  ErrorRecord R;
  R.Kind = Kind;
  R.Message = Message;
  R.PC = PC;
  R.Stack = std::move(Stack);
  R.Count = 1;
  Records.push_back(std::move(R));
  return true;
}

bool ErrorManager::matchesSuppression(const std::string &Kind,
                                      uint32_t PC) const {
  for (const Suppression &S : Sups)
    if (S.Kind == Kind && PC >= S.Lo && PC <= S.Hi)
      return true;
  return false;
}

unsigned ErrorManager::parseSuppressions(const std::string &Text) {
  std::istringstream In(Text);
  std::string Line;
  unsigned Added = 0;
  while (std::getline(In, Line)) {
    // Strip comments and whitespace.
    if (size_t H = Line.find('#'); H != std::string::npos)
      Line = Line.substr(0, H);
    size_t B = Line.find_first_not_of(" \t");
    if (B == std::string::npos)
      continue;
    size_t E = Line.find_last_not_of(" \t");
    Line = Line.substr(B, E - B + 1);
    Suppression S;
    if (size_t Colon = Line.find(':'); Colon != std::string::npos) {
      S.Kind = Line.substr(0, Colon);
      std::string Range = Line.substr(Colon + 1);
      size_t Dash = Range.find('-');
      if (Dash == std::string::npos)
        continue; // malformed: skip
      S.Lo = static_cast<uint32_t>(
          std::strtoul(Range.substr(0, Dash).c_str(), nullptr, 0));
      S.Hi = static_cast<uint32_t>(
          std::strtoul(Range.substr(Dash + 1).c_str(), nullptr, 0));
    } else {
      S.Kind = Line;
    }
    addSuppression(S);
    ++Added;
  }
  return Added;
}

uint64_t ErrorManager::uniqueErrors() const {
  return static_cast<uint64_t>(Records.size());
}

uint64_t ErrorManager::totalOccurrences() const {
  uint64_t N = 0;
  for (const ErrorRecord &R : Records)
    N += R.Count;
  return N;
}

void ErrorManager::printSummary(OutputSink &Out) const {
  for (const ErrorRecord &R : Records) {
    Out.printf("%s (x%llu)\n", R.Message.c_str(),
               static_cast<unsigned long long>(R.Count));
    Out.printf("   at 0x%08X\n", R.PC);
    for (uint32_t A : R.Stack)
      Out.printf("   by 0x%08X\n", A);
  }
  Out.printf("ERROR SUMMARY: %llu errors from %llu contexts (suppressed: "
             "%llu)\n",
             static_cast<unsigned long long>(totalOccurrences()),
             static_cast<unsigned long long>(uniqueErrors()),
             static_cast<unsigned long long>(suppressedCount()));
}
