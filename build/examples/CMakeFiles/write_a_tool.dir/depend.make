# Empty dependencies file for write_a_tool.
# This may be replaced when dependencies are built.
