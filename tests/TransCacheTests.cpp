//===-- tests/TransCacheTests.cpp - Persistent translation cache ----------==//
///
/// \file
/// Tests for the --tt-cache subsystem: key/fingerprint derivation, the
/// serialize -> deserialize -> install round trip at the service level,
/// rejection of stale/poisoned/corrupt entries (truncations and bit flips
/// must be misses, never crashes, never garbage installs), size-budget
/// eviction, the hard option-validation errors, and end-to-end cold/warm
/// equivalence under a full Core — including with background workers on
/// (the ThreadSanitizer target of the `concurrency` ctest label).
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "core/TransCache.h"
#include "core/TranslationService.h"
#include "guestlib/GuestLib.h"
#include "tools/Memcheck.h"
#include "tools/Nulgrind.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include <unistd.h>

using namespace vg;
using namespace vg::vg1;

namespace {

namespace fs = std::filesystem;

/// Fresh per-test cache directory, removed on scope exit.
struct ScratchDir {
  fs::path Path;
  ScratchDir() {
    static int Counter = 0;
    Path = fs::temp_directory_path() /
           ("vgttc-test-" + std::to_string(getpid()) + "-" +
            std::to_string(Counter++));
    fs::remove_all(Path);
  }
  ~ScratchDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }
};

//===----------------------------------------------------------------------===//
// Keys and fingerprints
//===----------------------------------------------------------------------===//

TEST(TransCache, EntryKeyIsContentSensitive) {
  uint64_t K = TransCache::entryKey(0x1000, false, 0xABCD);
  EXPECT_EQ(K, TransCache::entryKey(0x1000, false, 0xABCD));
  EXPECT_NE(K, TransCache::entryKey(0x1004, false, 0xABCD));
  EXPECT_NE(K, TransCache::entryKey(0x1000, true, 0xABCD));
  EXPECT_NE(K, TransCache::entryKey(0x1000, false, 0xABCE));
}

TEST(TransCache, ConfigHashCoversToolAndOptions) {
  std::vector<std::pair<std::string, std::string>> A = {{"chaining", "yes"}};
  std::vector<std::pair<std::string, std::string>> B = {{"chaining", "no"}};
  uint64_t HA = TransCache::configHash("nulgrind", A);
  EXPECT_EQ(HA, TransCache::configHash("nulgrind", A));
  EXPECT_NE(HA, TransCache::configHash("memcheck", A));
  EXPECT_NE(HA, TransCache::configHash("nulgrind", B));
}

//===----------------------------------------------------------------------===//
// Service-level round trip (no full Core)
//===----------------------------------------------------------------------===//

constexpr uint32_t CodeBase = 0x1000;

/// Stub host that marks every translation cacheable (the real Core does
/// this for all blocks without an SMC prelude).
struct CacheStubHost : TranslationHost {
  unsigned Notes = 0;
  unsigned Installs = 0;
  void setupTranslation(TranslationOptions &, uint32_t, bool,
                        Translation *Raw) override {
    Raw->Cacheable = true;
  }
  void noteTranslation(uint32_t, const Translation &, double) override {
    ++Notes;
  }
  void mergePhaseTimes(const PhaseTimes &) override {}
  void promotionInstalled(Translation *, uint64_t) override { ++Installs; }
};

/// A bank of tiny blocks plus a service with a cache attached to \p Dir.
struct CacheFixture {
  GuestMemory Mem;
  CacheStubHost Host;
  TranslationService XS;
  std::vector<uint32_t> Blocks;

  explicit CacheFixture(const std::string &Dir, uint64_t MaxBytes = 0,
                        unsigned NBlocks = 4)
      : XS(Host, Mem) {
    Assembler Code(CodeBase);
    for (unsigned I = 0; I != NBlocks; ++I) {
      Blocks.push_back(Code.here());
      Code.movi(Reg::R0, I);
      Code.ret();
    }
    GuestImage Img = GuestImageBuilder().addCode(Code).entry(CodeBase).build();
    for (const ImageSegment &S : Img.Segments) {
      Mem.map(S.Base, static_cast<uint32_t>(S.Bytes.size()), S.Perms);
      Mem.write(S.Base, S.Bytes.data(), static_cast<uint32_t>(S.Bytes.size()),
                /*IgnorePerms=*/true);
    }
    XS.attachCache(std::make_unique<TransCache>(Dir, MaxBytes, /*CH=*/1));
  }
};

TEST(TransCache, StoreThenLoadRoundTripInstalls) {
  ScratchDir Dir;
  uint64_t CodeHash, NumInsns;
  {
    CacheFixture Cold(Dir.str());
    Translation *T = Cold.XS.translateSync(Cold.Blocks[0], /*Hot=*/false);
    ASSERT_NE(T, nullptr);
    CodeHash = T->CodeHash;
    NumInsns = T->NumInsns;
    EXPECT_EQ(Cold.XS.jitStats().CacheMisses, 1u);
    EXPECT_EQ(Cold.XS.jitStats().CacheWrites, 1u);
    EXPECT_EQ(Cold.XS.jitStats().CacheHits, 0u);
  }
  CacheFixture Warm(Dir.str());
  Translation *T = Warm.XS.translateSync(Warm.Blocks[0], /*Hot=*/false);
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(Warm.XS.jitStats().CacheHits, 1u);
  EXPECT_EQ(Warm.XS.jitStats().CacheMisses, 0u);
  EXPECT_EQ(Warm.XS.jitStats().CacheWrites, 0u); // hits are not re-written
  // The deserialized translation is the real thing, installed and
  // accounted like a pipeline product.
  EXPECT_EQ(T->CodeHash, CodeHash);
  EXPECT_EQ(T->NumInsns, NumInsns);
  EXPECT_EQ(Warm.XS.transTab().find(Warm.Blocks[0]), T);
  EXPECT_EQ(Warm.Host.Notes, 1u);
}

TEST(TransCache, ChangedGuestBytesRejectEntry) {
  ScratchDir Dir;
  {
    CacheFixture Cold(Dir.str());
    Cold.XS.translateSync(Cold.Blocks[0], false);
  }
  CacheFixture Warm(Dir.str());
  // Same addresses, different code: patch the first block's immediate.
  // The key's prefix hash changes with the bytes, so this is a plain miss;
  // the stale entry must never be installed.
  uint32_t Clobber = 0x00FFu;
  Warm.Mem.write(Warm.Blocks[0] + 1, &Clobber, 2, /*IgnorePerms=*/true);
  Translation *T = Warm.XS.translateSync(Warm.Blocks[0], false);
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(Warm.XS.jitStats().CacheHits, 0u);
  EXPECT_EQ(Warm.XS.jitStats().CacheMisses +
                Warm.XS.jitStats().CacheRejects,
            1u);
}

TEST(TransCache, PoisonedRangeBlocksLoadAndStore) {
  ScratchDir Dir;
  {
    CacheFixture Cold(Dir.str());
    Cold.XS.translateSync(Cold.Blocks[0], false);
    EXPECT_EQ(Cold.XS.jitStats().CacheWrites, 1u);
  }
  CacheFixture Warm(Dir.str());
  // A redirect-style invalidation changes what the address *means* without
  // changing its bytes: the on-disk entry must be refused for the rest of
  // this run, and the retranslation must not be written back over it.
  Warm.XS.invalidate(Warm.Blocks[0], 4);
  Translation *T = Warm.XS.translateSync(Warm.Blocks[0], false);
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(Warm.XS.jitStats().CacheHits, 0u);
  EXPECT_EQ(Warm.XS.jitStats().CacheRejects, 1u);
  EXPECT_EQ(Warm.XS.jitStats().CacheWrites, 0u);
  // A non-overlapping block is unaffected.
  Warm.XS.translateSync(Warm.Blocks[1], false);
  EXPECT_EQ(Warm.XS.jitStats().CacheWrites, 1u);
}

//===----------------------------------------------------------------------===//
// Corruption: truncations and bit flips are misses, never crashes
//===----------------------------------------------------------------------===//

TEST(TransCache, TruncatedEntryIsRejectedNotCrash) {
  ScratchDir Dir;
  uint64_t Key;
  {
    CacheFixture Cold(Dir.str());
    Cold.XS.translateSync(Cold.Blocks[0], false);
    Key = TransCache::entryKey(
        Cold.Blocks[0], false,
        [&] {
          // Recompute the prefix hash the way the service does: FNV-1a over
          // the live bytes (both blocks fit comfortably in the window).
          uint64_t H = 0xcbf29ce484222325ull;
          for (uint32_t I = 0; I != 64; ++I) {
            uint8_t B = 0;
            if (Cold.Mem.read(Cold.Blocks[0] + I, &B, 1,
                              /*IgnorePerms=*/true)
                    .Faulted)
              break;
            H = (H ^ B) * 0x100000001b3ull;
          }
          return H;
        }());
    std::string Path = Cold.XS.cache()->entryPath(Key);
    ASSERT_TRUE(fs::exists(Path));
    // Chop the file mid-payload.
    fs::resize_file(Path, fs::file_size(Path) / 2);
  }
  CacheFixture Warm(Dir.str());
  Translation *T = Warm.XS.translateSync(Warm.Blocks[0], false);
  ASSERT_NE(T, nullptr); // pipeline fallback, correct translation
  EXPECT_EQ(Warm.XS.jitStats().CacheHits, 0u);
  EXPECT_EQ(Warm.XS.jitStats().CacheRejects, 1u);
}

TEST(TransCache, BitFlippedEntriesAreRejectedNotCrash) {
  ScratchDir Dir;
  {
    CacheFixture Cold(Dir.str(), 0, /*NBlocks=*/4);
    for (uint32_t PC : Cold.Blocks)
      Cold.XS.translateSync(PC, false);
    EXPECT_EQ(Cold.XS.jitStats().CacheWrites, 4u);
  }
  // Flip one byte at a different offset in every cached file: header,
  // payload, and checksum corruption are all covered across the set.
  unsigned N = 0;
  for (const auto &DE : fs::directory_iterator(Dir.Path)) {
    std::fstream F(DE.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(F.good());
    uint64_t Size = fs::file_size(DE.path());
    uint64_t Off = (N * 13 + 3) % Size;
    F.seekg(static_cast<std::streamoff>(Off));
    char C = 0;
    F.get(C);
    F.seekp(static_cast<std::streamoff>(Off));
    F.put(static_cast<char>(C ^ 0x40));
    ++N;
  }
  ASSERT_EQ(N, 4u);
  CacheFixture Warm(Dir.str());
  for (uint32_t PC : Warm.Blocks)
    ASSERT_NE(Warm.XS.translateSync(PC, false), nullptr);
  EXPECT_EQ(Warm.XS.jitStats().CacheHits, 0u);
  // Every corrupted entry was detected (reject) or its key no longer
  // matched its filename (miss); either way nothing installed from disk.
  EXPECT_EQ(Warm.XS.jitStats().CacheMisses +
                Warm.XS.jitStats().CacheRejects,
            4u);
  EXPECT_GT(Warm.XS.jitStats().CacheRejects, 0u);
}

TEST(TransCache, GarbageFilesInDirAreIgnored) {
  ScratchDir Dir;
  fs::create_directories(Dir.Path);
  std::ofstream(Dir.Path / "junk.vgtc") << "not a cache entry";
  std::ofstream(Dir.Path / "README.txt") << "hello";
  CacheFixture F(Dir.str());
  Translation *T = F.XS.translateSync(F.Blocks[0], false);
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(F.XS.jitStats().CacheHits, 0u);
}

// A zero-length entry file — what a writer killed between open and first
// write leaves behind — must be Malformed (a reject), never a hit
// candidate and never a crash. Pinned both at the decode layer and
// through the full service path.
TEST(TransCache, ZeroLengthEntryIsMalformed) {
  TransCacheEntry E;
  EXPECT_EQ(TransCache::decodeEntryFile({}, /*ConfigHash=*/1, /*Key=*/2, E,
                                        /*ResolveCallees=*/true),
            TransCache::LoadResult::Malformed);

  ScratchDir Dir;
  {
    CacheFixture Cold(Dir.str());
    Cold.XS.translateSync(Cold.Blocks[0], false);
    EXPECT_EQ(Cold.XS.jitStats().CacheWrites, 1u);
  }
  unsigned N = 0;
  for (const auto &DE : fs::directory_iterator(Dir.Path)) {
    fs::resize_file(DE.path(), 0);
    ++N;
  }
  ASSERT_EQ(N, 1u);
  CacheFixture Warm(Dir.str());
  Translation *T = Warm.XS.translateSync(Warm.Blocks[0], false);
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(Warm.XS.jitStats().CacheHits, 0u);
  EXPECT_EQ(Warm.XS.jitStats().CacheRejects, 1u);
}

//===----------------------------------------------------------------------===//
// Two writers, one key: temp-file+rename must never publish a torn entry
//===----------------------------------------------------------------------===//

// Two cache instances (standing in for two processes racing on a shared
// --tt-cache directory) hammer the SAME key with images of different
// sizes while a reader polls the published file. Every observation must
// be one complete image — a shared temp-file name would let the writers
// interleave and rename a torn mix into place, which the whole-payload
// checksum then exposes as Malformed.
TEST(TransCacheConcurrency, TwoWritersSameKeyNeverTearAnEntry) {
  // Two valid images of different lengths, made by translating blocks of
  // different instruction counts through a cold service run.
  ScratchDir SrcDir;
  struct Image {
    uint64_t Key;
    std::vector<uint8_t> Bytes;
  };
  std::vector<Image> Images;
  {
    GuestMemory Mem;
    CacheStubHost Host;
    TranslationService XS(Host, Mem);
    Assembler Code(CodeBase);
    std::vector<uint32_t> Blocks;
    for (unsigned I = 0; I != 2; ++I) {
      Blocks.push_back(Code.here());
      for (unsigned K = 0; K != 1 + 8 * I; ++K)
        Code.movi(Reg::R0, K);
      Code.ret();
    }
    GuestImage Img = GuestImageBuilder().addCode(Code).entry(CodeBase).build();
    for (const ImageSegment &S : Img.Segments) {
      Mem.map(S.Base, static_cast<uint32_t>(S.Bytes.size()), S.Perms);
      Mem.write(S.Base, S.Bytes.data(), static_cast<uint32_t>(S.Bytes.size()),
                /*IgnorePerms=*/true);
    }
    XS.attachCache(std::make_unique<TransCache>(SrcDir.str(), 0, /*CH=*/1));
    for (uint32_t PC : Blocks)
      XS.translateSync(PC, false);
    for (const auto &DE : fs::directory_iterator(SrcDir.Path)) {
      std::string Stem = DE.path().stem().string();
      ASSERT_EQ(Stem.size(), 33u);
      Image I;
      I.Key = std::strtoull(Stem.substr(17).c_str(), nullptr, 16);
      std::ifstream F(DE.path(), std::ios::binary);
      I.Bytes.assign(std::istreambuf_iterator<char>(F),
                     std::istreambuf_iterator<char>());
      Images.push_back(std::move(I));
    }
  }
  ASSERT_EQ(Images.size(), 2u);
  ASSERT_NE(Images[0].Bytes.size(), Images[1].Bytes.size());

  ScratchDir Dir;
  constexpr uint64_t SharedKey = 0x5EED;
  constexpr int Rounds = 300;
  std::atomic<bool> WritersDone{false};
  std::atomic<int> Torn{0};
  auto writer = [&](const Image &I) {
    TransCache C(Dir.str(), 0, /*ConfigHash=*/1);
    for (int R = 0; R != Rounds; ++R)
      ASSERT_TRUE(C.storeFile(SharedKey, I.Bytes));
  };
  std::thread W1(writer, std::cref(Images[0]));
  std::thread W2(writer, std::cref(Images[1]));
  std::thread Reader([&] {
    std::string Path =
        Dir.str() + "/" + TransCache::entryFileName(1, SharedKey);
    while (!WritersDone.load(std::memory_order_acquire)) {
      std::ifstream F(Path, std::ios::binary);
      if (!F.good())
        continue; // nothing published yet
      std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(F)),
                                 std::istreambuf_iterator<char>());
      // Whichever writer's rename won, the file must be one of the two
      // complete images: decode it against the key its SIZE claims it is.
      const Image *Want = nullptr;
      for (const Image &I : Images)
        if (I.Bytes.size() == Bytes.size())
          Want = &I;
      TransCacheEntry E;
      if (!Want ||
          TransCache::decodeEntryFile(Bytes, 1, Want->Key, E,
                                      /*ResolveCallees=*/false) !=
              TransCache::LoadResult::Found)
        Torn.fetch_add(1);
    }
  });
  W1.join();
  W2.join();
  WritersDone.store(true, std::memory_order_release);
  Reader.join();
  EXPECT_EQ(Torn.load(), 0) << "a reader observed a torn/mixed entry";
  // Every unique temp file was consumed by its rename.
  for (const auto &DE : fs::directory_iterator(Dir.Path))
    EXPECT_EQ(DE.path().extension(), ".vgtc")
        << "leftover temp file: " << DE.path();
}

//===----------------------------------------------------------------------===//
// Size budget
//===----------------------------------------------------------------------===//

// Eviction is oldest-mtime-first, not insertion- or directory-order:
// stamp the files with a fake clock (explicit last_write_time values in
// reverse creation order) and check the stamped-oldest files are the ones
// that go when a new store pushes the directory over budget.
TEST(TransCache, StaleMtimeEvictionUnderFakeClock) {
  ScratchDir Dir;
  uint64_t OneEntry;
  {
    CacheFixture Warm(Dir.str(), 0, /*NBlocks=*/4);
    for (uint32_t PC : Warm.Blocks)
      Warm.XS.translateSync(PC, false);
    ASSERT_EQ(Warm.XS.jitStats().CacheWrites, 4u);
    OneEntry = Warm.XS.cache()->totalBytes() / 4;
  }
  // Fake clock: sort by name, stamp [0] stalest, [3] freshest — an order
  // deliberately unrelated to when the files were actually written.
  std::vector<fs::path> Files;
  for (const auto &DE : fs::directory_iterator(Dir.Path))
    Files.push_back(DE.path());
  ASSERT_EQ(Files.size(), 4u);
  std::sort(Files.begin(), Files.end());
  fs::file_time_type Now = fs::file_time_type::clock::now();
  for (size_t I = 0; I != Files.size(); ++I)
    fs::last_write_time(Files[I],
                        Now - std::chrono::hours(24 * (4 - I)));
  // Reopen with room for ~3 entries and store a fifth block: the budget
  // forces eviction, which must pick the stamped-stalest files first.
  {
    GuestMemory Mem;
    CacheStubHost Host;
    TranslationService XS(Host, Mem);
    std::vector<uint32_t> Blocks;
    Assembler Code(CodeBase);
    for (unsigned I = 0; I != 5; ++I) {
      Blocks.push_back(Code.here());
      Code.movi(Reg::R0, I);
      Code.ret();
    }
    uint32_t FifthPC = Blocks[4];
    GuestImage Img =
        GuestImageBuilder().addCode(Code).entry(CodeBase).build();
    for (const ImageSegment &S : Img.Segments) {
      Mem.map(S.Base, static_cast<uint32_t>(S.Bytes.size()), S.Perms);
      Mem.write(S.Base, S.Bytes.data(),
                static_cast<uint32_t>(S.Bytes.size()),
                /*IgnorePerms=*/true);
    }
    XS.attachCache(std::make_unique<TransCache>(
        Dir.str(), 3 * OneEntry + OneEntry / 2, /*CH=*/1));
    XS.translateSync(FifthPC, false);
    EXPECT_EQ(XS.jitStats().CacheWrites, 1u);
    EXPECT_GT(XS.cache()->evictedFiles(), 0u);
  }
  // The stalest-stamped file went first; the freshest survived.
  EXPECT_FALSE(fs::exists(Files[0]));
  EXPECT_TRUE(fs::exists(Files[3]));
}

TEST(TransCache, EvictionHonoursByteBudget) {
  ScratchDir Dir;
  uint64_t OneEntry;
  {
    CacheFixture Probe(Dir.str());
    Probe.XS.translateSync(Probe.Blocks[0], false);
    OneEntry = Probe.XS.cache()->totalBytes();
    ASSERT_GT(OneEntry, 0u);
  }
  fs::remove_all(Dir.Path);
  // Budget for two entries; store four. The oldest files must go.
  CacheFixture F(Dir.str(), /*MaxBytes=*/2 * OneEntry + OneEntry / 2);
  for (uint32_t PC : F.Blocks)
    F.XS.translateSync(PC, false);
  EXPECT_EQ(F.XS.jitStats().CacheWrites, 4u);
  EXPECT_GT(F.XS.cache()->evictedFiles(), 0u);
  EXPECT_LE(F.XS.cache()->totalBytes(), 2 * OneEntry + OneEntry / 2);
}

//===----------------------------------------------------------------------===//
// Hard option validation (the getIntClamped bugfix)
//===----------------------------------------------------------------------===//

GuestImage trivialProgram() {
  Assembler Code(CodeBase);
  Code.movi(Reg::R0, 0);
  Code.ret();
  return GuestImageBuilder().addCode(Code).entry(CodeBase).build();
}

using OptionDeathTest = ::testing::Test;

TEST(OptionDeathTest, NonNumericJitThreadsIsFatal) {
  GuestImage Img = trivialProgram();
  Nulgrind T;
  EXPECT_EXIT(runUnderCore(Img, &T, {"--jit-threads=abc"}),
              ::testing::ExitedWithCode(1),
              "--jit-threads=abc: expected an integer in \\[0, 16\\]");
}

TEST(OptionDeathTest, NegativeQueueDepthIsFatal) {
  GuestImage Img = trivialProgram();
  Nulgrind T;
  EXPECT_EXIT(runUnderCore(Img, &T, {"--jit-queue-depth=-1"}),
              ::testing::ExitedWithCode(1),
              "--jit-queue-depth=-1: expected an integer in \\[1, 1024\\]");
}

TEST(OptionDeathTest, NonNumericCacheBudgetIsFatal) {
  ScratchDir Dir;
  GuestImage Img = trivialProgram();
  Nulgrind T;
  EXPECT_EXIT(runUnderCore(Img, &T,
                           {"--tt-cache=" + Dir.str(),
                            "--tt-cache-max-mb=xyz"}),
              ::testing::ExitedWithCode(1),
              "--tt-cache-max-mb=xyz: expected an integer");
}

TEST(OptionDeathTest, TrailingJunkAndRangeViolationsAreFatal) {
  GuestImage Img = trivialProgram();
  Nulgrind T;
  EXPECT_EXIT(runUnderCore(Img, &T, {"--jit-threads=2x"}),
              ::testing::ExitedWithCode(1), "expected an integer");
  EXPECT_EXIT(runUnderCore(Img, &T, {"--jit-threads=17"}),
              ::testing::ExitedWithCode(1), "expected an integer");
}

TEST(OptionDeathTest, NonNumericHotAndTraceThresholdsAreFatal) {
  GuestImage Img = trivialProgram();
  Nulgrind T;
  EXPECT_EXIT(runUnderCore(Img, &T, {"--hot-threshold=5x"}),
              ::testing::ExitedWithCode(1),
              "--hot-threshold=5x: expected an integer");
  EXPECT_EXIT(runUnderCore(Img, &T, {"--trace-threshold=-3"}),
              ::testing::ExitedWithCode(1),
              "--trace-threshold=-3: expected an integer");
}

TEST(OptionDeathTest, ZeroTraceEventsIsFatal) {
  GuestImage Img = trivialProgram();
  Nulgrind T;
  EXPECT_EXIT(runUnderCore(Img, &T, {"--trace-events=0"}),
              ::testing::ExitedWithCode(1),
              "--trace-events=0: expected an integer in \\[1,");
}

TEST(OptionDeathTest, MalformedFaultInjectSpecIsFatal) {
  GuestImage Img = trivialProgram();
  Nulgrind T;
  EXPECT_EXIT(runUnderCore(Img, &T, {"--fault-inject=seed=abc"}),
              ::testing::ExitedWithCode(1),
              "bad fault-inject seed in 'seed=abc'");
  EXPECT_EXIT(runUnderCore(Img, &T, {"--fault-inject=preempt:0"}),
              ::testing::ExitedWithCode(1),
              "bad fault-inject rate in 'preempt:0'");
}

//===----------------------------------------------------------------------===//
// End-to-end: cold/warm equivalence under a full Core
//===----------------------------------------------------------------------===//

constexpr uint32_t ProgCodeBase = 0x1000;
constexpr uint32_t ProgDataBase = 0x100000;

GuestImage loopProgram() {
  Assembler Code(ProgCodeBase);
  Assembler Data(ProgDataBase);
  GuestLibLabels Lib = emitGuestLib(Code, Data);
  Label Main = Code.newLabel();
  uint32_t Entry = emitStart(Code, Main);
  Code.bind(Main);
  Code.symbol("main");
  Label Str = Data.boundLabel();
  Data.emitString("done\n");
  Code.movi(Reg::R1, 0);
  Label Outer = Code.boundLabel();
  Code.movi(Reg::R2, 0);
  Label Inner = Code.boundLabel();
  Code.addi(Reg::R2, Reg::R2, 1);
  Code.cmpi(Reg::R2, 50);
  Code.blt(Inner);
  Code.addi(Reg::R1, Reg::R1, 1);
  Code.cmpi(Reg::R1, 200);
  Code.blt(Outer);
  Code.movi(Reg::R1, Data.labelAddr(Str));
  Code.call(Lib.Print);
  Code.movi(Reg::R0, 5);
  Code.ret();
  return GuestImageBuilder()
      .addCode(Code)
      .addData(Data)
      .entry(Entry)
      .build();
}

// Valid values at the range edges still work (the check is not
// over-eager): hex syntax parses and the run behaves like --jit-threads=2.
TEST(TransCacheEndToEnd, ValidOptionValuesStillParse) {
  GuestImage Img = loopProgram();
  Nulgrind T;
  RunReport R = runUnderCore(Img, &T, {"--jit-threads=0x2"});
  EXPECT_TRUE(R.Completed);
}

TEST(TransCacheEndToEnd, WarmRunSkipsPipelineAndMatchesCold) {
  ScratchDir Dir;
  GuestImage Img = loopProgram();
  std::vector<std::string> Opts = {"--chaining=yes", "--hot-threshold=2",
                                   "--tt-cache=" + Dir.str()};
  Nulgrind T1, T2;
  RunReport Cold = runUnderCore(Img, &T1, Opts);
  ASSERT_TRUE(Cold.Completed);
  EXPECT_GT(Cold.Jit.CacheWrites, 0u);
  EXPECT_EQ(Cold.Jit.CacheHits, 0u);

  RunReport Warm = runUnderCore(Img, &T2, Opts);
  ASSERT_TRUE(Warm.Completed);
  EXPECT_EQ(Warm.Stdout, Cold.Stdout);
  EXPECT_EQ(Warm.ExitCode, Cold.ExitCode);
  EXPECT_EQ(Warm.Jit.CacheMisses, 0u);
  EXPECT_EQ(Warm.Jit.CacheRejects, 0u);
  EXPECT_GT(Warm.Jit.CacheHits, 0u);
  EXPECT_EQ(Warm.Jit.CacheHits, Cold.Jit.CacheWrites);
  // Nothing new to persist on a fully warm run.
  EXPECT_EQ(Warm.Jit.CacheWrites, 0u);
}

TEST(TransCacheEndToEnd, MemcheckWarmRunIsEquivalent) {
  ScratchDir Dir;
  GuestImage Img = loopProgram();
  std::vector<std::string> Opts = {"--chaining=yes", "--hot-threshold=3",
                                   "--tt-cache=" + Dir.str()};
  Memcheck T1, T2;
  RunReport Cold = runUnderCore(Img, &T1, Opts);
  RunReport Warm = runUnderCore(Img, &T2, Opts);
  ASSERT_TRUE(Cold.Completed);
  ASSERT_TRUE(Warm.Completed);
  EXPECT_EQ(Warm.Stdout, Cold.Stdout);
  EXPECT_EQ(Warm.ExitCode, Cold.ExitCode);
  EXPECT_GT(Warm.Jit.CacheHits, 0u);
  EXPECT_EQ(T1.uniqueErrors(), T2.uniqueErrors());
}

// Different tools must not share entries: the config fingerprint keys the
// filenames, so a Memcheck run against a Nulgrind-written directory sees
// only misses (not rejects, not garbage installs).
TEST(TransCacheEndToEnd, ToolsDoNotShareEntries) {
  ScratchDir Dir;
  GuestImage Img = loopProgram();
  std::vector<std::string> Opts = {"--tt-cache=" + Dir.str()};
  Nulgrind TN;
  Memcheck TM;
  RunReport A = runUnderCore(Img, &TN, Opts);
  RunReport B = runUnderCore(Img, &TM, Opts);
  ASSERT_TRUE(A.Completed);
  ASSERT_TRUE(B.Completed);
  EXPECT_EQ(B.Jit.CacheHits, 0u);
  EXPECT_EQ(B.Jit.CacheRejects, 0u);
  EXPECT_GT(B.Jit.CacheWrites, 0u);
}

// SMC: with --smc-check=all every block carries a position-dependent
// prelude and must bypass the cache entirely — and self-modified code must
// still retranslate correctly on a warm run.
TEST(TransCacheEndToEnd, SmcCheckedBlocksBypassCache) {
  ScratchDir Dir;
  GuestImage Img = loopProgram();
  std::vector<std::string> Opts = {"--smc-check=all",
                                   "--tt-cache=" + Dir.str()};
  Nulgrind T1, T2;
  RunReport Cold = runUnderCore(Img, &T1, Opts);
  RunReport Warm = runUnderCore(Img, &T2, Opts);
  ASSERT_TRUE(Cold.Completed);
  ASSERT_TRUE(Warm.Completed);
  EXPECT_EQ(Cold.Jit.CacheWrites, 0u);
  EXPECT_EQ(Warm.Jit.CacheHits + Warm.Jit.CacheMisses +
                Warm.Jit.CacheRejects,
            0u);
  EXPECT_EQ(Warm.Stdout, Cold.Stdout);
}

// Trace-tier translations are excluded from the persistent cache in both
// directions: a trace inlines guest bytes from every constituent and its
// formation depends on run-specific edge profiles, so it is neither
// written back on the cold run nor served from disk on the warm run — the
// warm run re-forms its traces from its own profile.
TEST(TransCacheEndToEnd, TraceTierTranslationsBypassCache) {
  ScratchDir Dir;
  GuestImage Img = buildWorkload("bzip2", 1);
  std::vector<std::string> Opts = {"--chaining=yes", "--hot-threshold=2",
                                   "--trace-tier=yes", "--trace-threshold=16",
                                   "--tt-cache=" + Dir.str()};
  Nulgrind T1, T2;
  RunReport Cold = runUnderCore(Img, &T1, Opts);
  ASSERT_TRUE(Cold.Completed);
  ASSERT_GT(Cold.Stats.TracesFormed, 0u) << "test needs traces to form";
  ASSERT_GT(Cold.Jit.CacheWrites, 0u);

  RunReport Warm = runUnderCore(Img, &T2, Opts);
  ASSERT_TRUE(Warm.Completed);
  EXPECT_EQ(Warm.Stdout, Cold.Stdout);
  // Not stored: every cold write validates and installs on the warm run —
  // a persisted trace would be rejected here (tier mismatch at load).
  EXPECT_EQ(Warm.Jit.CacheRejects, 0u);
  EXPECT_EQ(Warm.Jit.CacheHits, Cold.Jit.CacheWrites);
  // Not loaded: the warm run still had to form its traces itself.
  EXPECT_GT(Warm.Stats.TracesFormed, 0u);
  // And nothing about the warm run's traces was newly persisted either.
  EXPECT_EQ(Warm.Jit.CacheWrites, 0u);
}

//===----------------------------------------------------------------------===//
// Concurrency: cache + background workers (TSan target)
//===----------------------------------------------------------------------===//

// All cache traffic stays on the guest thread by construction; this runs
// the full cold/warm cycle with two workers racing the guest thread so the
// tsan preset can prove it. The async accounting identity must also hold
// on both runs.
TEST(TransCacheConcurrency, ColdWarmWithBackgroundWorkers) {
  ScratchDir Dir;
  GuestImage Img = buildWorkload("crafty", 1);
  std::vector<std::string> Opts = {"--chaining=yes", "--hot-threshold=2",
                                   "--jit-threads=2",
                                   "--tt-cache=" + Dir.str()};
  Nulgrind T1, T2;
  RunReport Cold = runUnderCore(Img, &T1, Opts);
  RunReport Warm = runUnderCore(Img, &T2, Opts);
  ASSERT_TRUE(Cold.Completed);
  ASSERT_TRUE(Warm.Completed);
  EXPECT_EQ(Warm.Stdout, Cold.Stdout);
  EXPECT_GT(Cold.Jit.CacheWrites, 0u);
  EXPECT_GT(Warm.Jit.CacheHits, 0u);
  for (const RunReport *R : {&Cold, &Warm}) {
    const JitStats &J = R->Jit;
    EXPECT_EQ(J.AsyncRequests, J.AsyncInstalled + J.AsyncDiscardedEpoch +
                                   J.AsyncDiscardedStale + J.WorkerFailures +
                                   J.AsyncAbandoned);
  }
}

} // namespace
