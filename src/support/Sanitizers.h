//===-- support/Sanitizers.h - Sanitizer annotations ------------*- C++ -*-==//
///
/// \file
/// VG_NO_TSAN marks functions whose data races are the *guest program's*,
/// not the framework's. Under --sched-threads=N two guest threads may race
/// on a guest address exactly as they would on real hardware; the
/// framework mirrors that race onto the host byte array backing guest
/// memory, and onto the shadow bytes describing it. Serialising those
/// accesses would serialise guest execution (the big lock this subsystem
/// exists to break), and any interleaving TSan could pick is a correct
/// outcome of the guest's own (lack of a) memory model. So the narrow
/// guest-data/shadow-data copy paths are excluded from ThreadSanitizer
/// instrumentation — structural metadata (page tables, secondary-map
/// lifetime, permissions) stays fully instrumented and must stay clean.
///
//===----------------------------------------------------------------------===//
#ifndef VG_SUPPORT_SANITIZERS_H
#define VG_SUPPORT_SANITIZERS_H

#if defined(__SANITIZE_THREAD__)
#define VG_NO_TSAN __attribute__((no_sanitize("thread")))
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define VG_NO_TSAN __attribute__((no_sanitize("thread")))
#else
#define VG_NO_TSAN
#endif
#else
#define VG_NO_TSAN
#endif

#endif // VG_SUPPORT_SANITIZERS_H
