//===-- core/TranslationService.h - Tiered translation service -*- C++ -*-==//
///
/// \file
/// The translation layer extracted from the Core monolith: owns the
/// translation table, the eight-phase pipeline entry points, and (under
/// --jit-threads=N) a bounded promotion queue drained by background
/// workers. The design keeps one invariant above all others: the TransTab
/// and every guest-visible structure are touched by the guest thread ONLY.
///
/// Publication protocol for an asynchronous hot promotion:
///
///   1. Guest thread (dispatcher): the tier-1 block crosses the hot
///      threshold. Instead of stalling on an inline retranslation it
///      snapshots the executable pages, stamps the current TT flush epoch,
///      marks the block PromoPending, and enqueues a job. Execution
///      continues in the tier-1 code.
///   2. Worker: runs the full pipeline against the snapshot (never against
///      live GuestMemory — even const reads refresh its TLB). Phase 3
///      serialises behind a per-tool lock since tools are stateful. All
///      counters/timings accumulate in job-local storage.
///   3. Guest thread (next dispatch boundary): drains finished jobs. A job
///      is discarded if the flush epoch moved (redirect/munmap/SMC flush —
///      the bytes may hash equal yet mean something else now) or if the
///      live code no longer hashes to what was translated. Survivors are
///      installed with a plain TT.insert(), which atomically-from-the-
///      guest's-view replaces the tier-1 block and eagerly re-patches
///      chain back-edges through the chain graph.
///
/// Degradation ladder: --jit-threads=0 (default) never constructs a
/// worker, never takes a lock, and preserves byte-identical behaviour; a
/// full queue or an all-dead worker pool falls back to today's inline
/// synchronous promotion; a worker failure discards only that job.
///
//===----------------------------------------------------------------------===//
#ifndef VG_CORE_TRANSLATIONSERVICE_H
#define VG_CORE_TRANSLATIONSERVICE_H

#include "core/TransCache.h"
#include "core/TransTab.h"
#include "core/Translate.h"
#include "guest/GuestMemory.h"
#include "ir/IROpt.h"
#include "server/TransServerClient.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace vg {

/// Translation-service counters. Guest thread only: workers report through
/// job-local fields that the guest thread folds in at drain time, so the
/// numbers can never tear or double-count.
struct JitStats {
  uint64_t AsyncRequests = 0;       ///< promotions enqueued
  uint64_t AsyncCompleted = 0;      ///< pipelines finished by workers
  uint64_t AsyncInstalled = 0;      ///< superblocks published into the TT
  uint64_t AsyncDiscardedEpoch = 0; ///< lost to a TT flush/invalidation
  uint64_t AsyncDiscardedStale = 0; ///< guest code changed under the job
  uint64_t AsyncAbandoned = 0;      ///< still queued/unpublished at exit
  uint64_t QueueFullFallbacks = 0;  ///< backpressure -> inline translation
  uint64_t WorkerFailures = 0;
  uint64_t QueueHighWater = 0;
  uint64_t SyncPromotions = 0;      ///< promotions run inline (stalls)
  double InstallLatencySeconds = 0; ///< enqueue -> publication, summed
  double SyncPromoStallSeconds = 0; ///< guest time lost to inline promotion
  double EnqueueSeconds = 0;        ///< guest time spent snapshotting/queueing
  // Persistent translation cache (--tt-cache). Every lookup settles into
  // exactly one bucket: CacheHits + CacheMisses + CacheRejects equals the
  // number of lookups, and a hit was *installed* — there is no "hit but
  // not used" state. Hits never touch the async counters above, so the
  // accounting identity (AsyncRequests == Installed + DiscardedEpoch +
  // DiscardedStale + WorkerFailures + Abandoned) is unaffected by caching.
  uint64_t CacheHits = 0;    ///< validated entries installed from disk
  uint64_t CacheMisses = 0;  ///< no entry on disk; pipeline ran
  uint64_t CacheRejects = 0; ///< entry malformed/stale/poisoned; pipeline ran
  uint64_t CacheWrites = 0;  ///< translations persisted after install
  double CacheLoadSeconds = 0;  ///< guest time in lookup+validate+install
  double CacheStoreSeconds = 0; ///< guest time serializing write-backs
  // Trace tier (--trace-tier). Async trace jobs ride the same queue as hot
  // promotions and settle into the same accounting identity: a trace
  // request that fails in the worker (including spill overflow, which is a
  // legitimate outcome for a stitched path) counts as a WorkerFailure AND
  // a TraceAbort. Traces are never cached, so the cache counters above
  // never move for them.
  uint64_t TraceRequests = 0;  ///< trace formations attempted (sync+async)
  uint64_t TraceInstalled = 0; ///< traces published into the TT
  uint64_t TraceAborts = 0;    ///< spill overflow / worker failure
  uint64_t TraceDeadFlagPuts = 0; ///< dead CC-thunk writes deleted
  uint64_t TraceProbesCSEd = 0;   ///< shadow probes CSE'd across seams
  // Translation server (--tt-server). The daemon is consulted only after
  // the local cache misses, so ServerHits is a subset of CacheHits and the
  // cache identity above still holds. The server's own identity:
  // ServerRequests == ServerHits + ServerMisses + ServerRejects +
  // ServerFallbacks — every lookup settles into exactly one bucket, and a
  // Fallback (timeout/EOF/malformed/dead daemon) degrades to the local
  // pipeline, never to a stall. Timeouts/Retries also cover write-back
  // PUT traffic; the hit/miss buckets never do.
  uint64_t ServerRequests = 0;  ///< server lookups settled (incl. dead skips)
  uint64_t ServerHits = 0;      ///< fetched, validated, and installed
  uint64_t ServerMisses = 0;    ///< daemon had no entry under the key
  uint64_t ServerRejects = 0;   ///< fetched but failed validation; pipeline ran
  uint64_t ServerTimeouts = 0;  ///< per-request deadlines that fired
  uint64_t ServerRetries = 0;   ///< re-attempts after a failed attempt
  uint64_t ServerFallbacks = 0; ///< lookups that degraded down the ladder
  uint64_t ServerWrites = 0;    ///< translations pushed to the daemon
  uint64_t ServerBytesFetched = 0;
  uint64_t ServerBytesSent = 0;
  double ServerFetchSeconds = 0; ///< guest time in server lookups
};

/// The hooks the service needs from its host (the Core). Small enough that
/// tests can drive the service with a stub host and no full Core.
class TranslationHost {
public:
  virtual ~TranslationHost();

  /// Fills the pipeline options for translating the block at \p PC,
  /// binding the instrument hook against \p Raw (the Translation under
  /// construction — the SMC prelude embeds its address). Guest thread
  /// only: for async jobs the service calls this at enqueue time, so
  /// anything sampled here (SMC policy, option values) is pinned before
  /// the job leaves the guest thread.
  virtual void setupTranslation(TranslationOptions &TO, uint32_t PC,
                                bool Hot, Translation *Raw) = 0;

  /// Guest-thread accounting for one finished pipeline — called by the
  /// sync path right after translation and by the drain loop at install
  /// time (never by a worker).
  virtual void noteTranslation(uint32_t PC, const Translation &T,
                               double Seconds) = 0;

  /// A worker's phase times, folded in on the guest thread at drain time.
  virtual void mergePhaseTimes(const PhaseTimes &PT) = 0;

  /// An async superblock was just published over the tier-1 block.
  /// \p GenBefore is the TT generation sampled immediately before the
  /// insert (the host repairs its fast cache the same way the inline
  /// promotion path does).
  virtual void promotionInstalled(Translation *T, uint64_t GenBefore) = 0;
};

/// The tiered translation service. One instance per Core; owns the
/// TransTab for its whole lifetime.
class TranslationService {
public:
  TranslationService(TranslationHost &Host, GuestMemory &Memory,
                     size_t TTCapacityPow2 = 1u << 14);
  ~TranslationService();

  TranslationService(const TranslationService &) = delete;
  TranslationService &operator=(const TranslationService &) = delete;

  /// Starts \p Threads background workers over a queue of at most
  /// \p QueueDepth jobs. No-op when \p Threads is 0 (the deterministic
  /// default). Call once, before execution starts.
  void configure(unsigned Threads, unsigned QueueDepth);

  /// Stops the workers and counts every unpublished job as abandoned.
  /// Idempotent; the destructor calls it too.
  void shutdown();

  TransTab &transTab() { return TT; }
  unsigned jitThreads() const { return NumThreads; }
  unsigned queueDepth() const { return QueueDepth; }
  bool asyncEnabled() const { return NumThreads != 0 && !Stopped; }
  const JitStats &jitStats() const { return JS; }

  /// Attaches the persistent translation cache (--tt-cache). Call before
  /// execution starts. The cache is guest-thread-only: lookups happen in
  /// translateSync/promoteFromCache, write-backs right after an install —
  /// workers never see it.
  void attachCache(std::unique_ptr<TransCache> C) { Cache = std::move(C); }
  TransCache *cache() { return Cache.get(); }
  const TransCache *cache() const { return Cache.get(); }

  /// Attaches the translation-server client (--tt-server). Call before
  /// execution starts. \p ConfigHash is the same fingerprint the cache
  /// uses — with both attached it MUST be the value the cache was built
  /// with, so local files and served images decode under one key space.
  /// Guest-thread-only, exactly like the cache.
  void attachServer(std::unique_ptr<TransServerClient> S,
                    uint64_t ConfigHash) {
    Server = std::move(S);
    ServerCfg = ConfigHash;
  }
  TransServerClient *server() { return Server.get(); }
  const TransServerClient *server() const { return Server.get(); }

  /// Invalidation entry point hosts use instead of raw TT.invalidateRange:
  /// bumps the flush epoch exactly as before AND poisons the cache (or the
  /// server-only poison set) so a redirected/unmapped address can't be
  /// re-served this run, AND notifies the daemon (best-effort, bounded) so
  /// it evicts entries intersecting the range.
  unsigned invalidate(uint32_t Addr, uint32_t Len);

  /// Full-address-space invalidation. A Len parameter cannot express the
  /// whole 4GB guest space in 32 bits, and invalidate(0, 0xFFFFFFFF)
  /// silently missed translations covering the final guest byte — the
  /// fault-injected TT flush used exactly that spelling. One epoch bump,
  /// every translation discarded, the whole cache poisoned.
  unsigned invalidateAll();

  /// The synchronous pipeline: translate the block at \p PC (hot = chase
  /// branches into a superblock), hash its bytes, account it through the
  /// host, and insert it into the table. Guest thread only. With a cache
  /// attached, an eligible PC is first looked up on disk (a validated hit
  /// skips the pipeline entirely) and a fresh translation is written back
  /// after install.
  Translation *translateSync(uint32_t PC, bool Hot);

  /// Attempts to serve a hot promotion of \p PC straight from the
  /// persistent cache, skipping both the promotion queue and the inline
  /// pipeline. Returns the installed superblock, or null on miss/reject/
  /// ineligibility (caller falls through to enqueuePromotion/promoteHot).
  /// Guest thread, dispatch-boundary only: a hit replaces the resident
  /// tier-1 translation, which the caller must treat as dangling.
  Translation *promoteFromCache(uint32_t PC);

  /// Queues an asynchronous hot promotion of \p Cur (a resident tier-1
  /// block). Returns false — fall back to the inline path — when async
  /// mode is off, the queue is full, or the service is shut down. On
  /// success marks \p Cur PromoPending so the dispatcher and chain thunk
  /// stop re-requesting it.
  bool enqueuePromotion(Translation *Cur);

  /// The trace tier (tier 2). Synchronously stitches the hot path
  /// described by \p Spec into one trace translation and installs it over
  /// the head's tier-1 block. Returns null (leaving the tier-1 block
  /// resident) when register allocation overflows the executor frame —
  /// the only way a stitch can fail once the frontend has a path. Guest
  /// thread, dispatch-boundary only. Never consults or feeds the
  /// persistent cache: a trace encodes this run's branch bias and chain
  /// graph, which no cache key captures.
  Translation *translateTrace(const TraceSpec &Spec);

  /// Queues an asynchronous trace formation over \p Cur (the resident
  /// tier-1 head). Same contract and publication protocol as
  /// enqueuePromotion — epoch stamp, shared snapshot, PromoPending — with
  /// the trace spec pinned into the job before setupTranslation runs, so
  /// the instrument hook sees the seam list on the guest thread.
  bool enqueueTrace(Translation *Cur, const TraceSpec &Spec);

  /// True when at least one worker job awaits installation. A relaxed
  /// atomic load — cheap enough for the dispatch loop and the chain
  /// thunk; always false when --jit-threads=0.
  bool hasCompleted() const {
    return DoneCount.load(std::memory_order_relaxed) != 0;
  }

  /// Guest thread, dispatch-loop boundary only (nothing may be executing
  /// inside the code cache): installs every finished job that survives
  /// the epoch and liveness checks. Returns the number installed.
  unsigned drainCompleted();

  /// Accounts one inline (stalling) promotion — the fallback rung of the
  /// degradation ladder, and the entire promotion story at
  /// --jit-threads=0.
  void noteSyncPromotion(double Seconds) {
    ++JS.SyncPromotions;
    JS.SyncPromoStallSeconds += Seconds;
  }

  /// Blocks until the queue and all in-flight jobs have drained into the
  /// done list (test/bench support; guest thread).
  void waitIdle();

private:
  struct Job {
    uint32_t Addr = 0;
    uint64_t EpochAtEnqueue = 0;
    double EnqueueTime = 0;
    std::shared_ptr<const GuestMemory::ExecSnapshot> Snap;
    TranslationOptions TO;             ///< built on the guest thread
    std::unique_ptr<Translation> Result;
    // Worker-owned results, read by the guest thread only after the job
    // moves to the done list (the mutex hand-off orders the accesses).
    PhaseTimes Phases;
    double TranslateSeconds = 0;
    bool Failed = false;
    // Trace jobs (TO.Trace.Entries non-empty): TO.TraceStats points here
    // (the Job outlives the pipeline, so the pointer is stable); the guest
    // thread folds the counters into JitStats at drain time.
    ir::TraceOptStats TraceStats;
    bool SpillOverflow = false; ///< trace outgrew the executor frame
  };

  static double now();
  /// FNV-1a over the first (up to) 64 live guest bytes at \p PC — the
  /// content component of the cache key. Short reads (unmapped tail) just
  /// shorten the window; see TransCache::entryKey for why any window is
  /// correct.
  uint64_t cachePrefixHash(uint32_t PC) const;
  /// On Found+validated: fills \p TPtr (an already-set-up shell), accounts
  /// the hit, installs, and returns the resident translation; \p Promotion
  /// adds the promotionInstalled bookkeeping. Null on miss/reject (the
  /// shell stays reusable by the pipeline).
  Translation *installFromCache(std::unique_ptr<Translation> &TPtr,
                                uint64_t Key, uint32_t PC, bool Hot,
                                bool Promotion);
  /// Fetches \p Key from the daemon and decodes it. NotFound on miss or
  /// any transport failure (the ladder's "degrade" rung), Malformed when
  /// the daemon returned bytes that fail validation. On Found, \p Image
  /// keeps the pristine pre-callee-patch file bytes for write-through and
  /// \p FromServer is set so the caller attributes the install (or the
  /// reject — FromServer is set for Malformed too).
  TransCache::LoadResult loadFromServer(uint64_t Key, TransCacheEntry &E,
                                        std::vector<uint8_t> &Image,
                                        bool &FromServer);
  /// The run's semantic-invalidation check: the cache's poison set when a
  /// cache is attached, the service-level set in server-only mode.
  bool poisonedExtents(
      const std::vector<std::pair<uint32_t, uint32_t>> &Extents) const {
    return Cache ? Cache->poisoned(Extents) : ServerPoison.poisoned(Extents);
  }
  /// Serializes an installed translation under \p Key: encoded once, then
  /// published to the local cache (counts CacheWrites) and pushed to the
  /// daemon (counts ServerWrites).
  void writeBackToCache(uint64_t Key, const Translation &T);
  uint64_t hashLive(
      const std::vector<std::pair<uint32_t, uint32_t>> &Extents) const;
  static uint64_t
  hashSnapshot(const GuestMemory::ExecSnapshot &Snap,
               const std::vector<std::pair<uint32_t, uint32_t>> &Extents,
               bool &Ok);
  static void fillTranslation(Translation &T, uint32_t PC, bool Hot,
                              TranslatedBlock TB);
  /// Returns the shared exec-page snapshot for \p Epoch, rebuilding it when
  /// the epoch moved or \p Addr lies in pages mapped after it was taken.
  std::shared_ptr<const GuestMemory::ExecSnapshot>
  snapshotForEpoch(uint32_t Addr, uint64_t Epoch);
  /// Queue hand-off shared by enqueuePromotion/enqueueTrace: pushes \p J
  /// under backpressure rules, marks \p Cur pending, counts the request.
  bool submitJob(std::unique_ptr<Job> J, Translation *Cur, double T0);
  void workerMain();
  void runJob(Job &J);

  TranslationHost &Host;
  GuestMemory &Memory;
  TransTab TT;

  unsigned NumThreads = 0;
  unsigned QueueDepth = 8;
  bool Stopped = false; ///< guest-thread view; Stop below is the shared flag

  std::mutex QueueMu;
  std::condition_variable QueueCV;
  std::deque<std::unique_ptr<Job>> Queue; ///< guarded by QueueMu
  bool Stop = false;                      ///< guarded by QueueMu
  unsigned InFlight = 0;                  ///< jobs inside workers (QueueMu)

  std::mutex DoneMu;
  std::vector<std::unique_ptr<Job>> Done; ///< guarded by DoneMu
  std::atomic<unsigned> DoneCount{0};

  std::mutex InstrLock; ///< serialises Phase 3 (tools are stateful)
  std::vector<std::thread> Workers;

  /// Exec-page snapshot shared by every job enqueued within one flush
  /// epoch (guest thread only; workers hold const refs). Rebuilding per
  /// job would put a full page-copy on the guest thread's enqueue path —
  /// the very stall async mode exists to avoid. Reuse is safe even across
  /// SMC writes (which bump no epoch): a job translated from stale bytes
  /// fails the install-time hash check and is discarded.
  std::shared_ptr<const GuestMemory::ExecSnapshot> SnapCache;
  uint64_t SnapCacheEpoch = 0;

  /// Persistent translation cache, or null. Guest thread only.
  std::unique_ptr<TransCache> Cache;

  /// Translation-server client (--tt-server), or null. Guest thread only.
  std::unique_ptr<TransServerClient> Server;
  uint64_t ServerCfg = 0; ///< config fingerprint sent with every request
  /// Same-run poison bookkeeping for server-only mode (--tt-server with no
  /// local --tt-cache): without a TransCache to own the set, redirects and
  /// unmaps must still reject served entries for the rest of the run.
  PoisonSet ServerPoison;

  JitStats JS; ///< guest thread only
};

} // namespace vg

#endif // VG_CORE_TRANSLATIONSERVICE_H
