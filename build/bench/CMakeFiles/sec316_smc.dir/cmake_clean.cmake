file(REMOVE_RECURSE
  "CMakeFiles/sec316_smc.dir/sec316_smc.cpp.o"
  "CMakeFiles/sec316_smc.dir/sec316_smc.cpp.o.d"
  "sec316_smc"
  "sec316_smc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec316_smc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
