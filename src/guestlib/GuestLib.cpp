//===-- guestlib/GuestLib.cpp - The guest runtime library -----------------==//

#include "guestlib/GuestLib.h"

#include "kernel/SimKernel.h"

using namespace vg;
using namespace vg::vg1;

uint32_t vg::emitStart(Assembler &Code, Label Main) {
  uint32_t Entry = Code.here();
  Code.symbol("_start");
  Code.call(Main);
  Code.mov(Reg::R1, Reg::R0); // exit status = main's result
  Code.movi(Reg::R0, SysExit);
  Code.sys();
  Code.hlt(); // unreachable
  return Entry;
}

void vg::emitClientRequest(Assembler &Code, uint32_t Request, uint32_t Arg1,
                           uint32_t Arg2, uint32_t Arg3, uint32_t Arg4) {
  Code.movi(Reg::R0, Request);
  Code.movi(Reg::R1, Arg1);
  Code.movi(Reg::R2, Arg2);
  Code.movi(Reg::R3, Arg3);
  Code.movi(Reg::R4, Arg4);
  Code.clreq();
}

GuestLibLabels vg::emitGuestLib(Assembler &Code, Assembler &Data) {
  GuestLibLabels L;

  // Library state: [0] heap free pointer, [4] heap end, [8..40) itoa buf.
  Data.align(8);
  Label HeapState = Data.boundLabel();
  Data.symbol("_vglib_state");
  Data.emitZeros(40);
  uint32_t StateAddr = Data.labelAddr(HeapState);

  // --- malloc(r1 = size) -> r0 -----------------------------------------
  // Bump allocator over brk. Block layout: [raw size: 16 bytes hdr][payload].
  L.Malloc = Code.boundLabel();
  Code.symbol("malloc");
  {
    Code.addi(Reg::R2, Reg::R1, 15 + 16); // raw = align16(size) + 16 hdr
    Code.andi(Reg::R2, Reg::R2, 0xFFFFFFF0u);
    Code.movi(Reg::R3, StateAddr);
    Code.ld(Reg::R4, Reg::R3, 0); // freeptr
    Code.cmpi(Reg::R4, 0);
    Label Inited = Code.newLabel();
    Code.bne(Inited);
    // First call: discover the current brk end.
    Code.movi(Reg::R0, SysBrk);
    Code.movi(Reg::R1, 0);
    Code.sys(); // r0 = current end
    Code.st(Reg::R3, 0, Reg::R0);
    Code.st(Reg::R3, 4, Reg::R0);
    Code.mov(Reg::R4, Reg::R0);
    Code.bind(Inited);
    Code.add(Reg::R5, Reg::R4, Reg::R2); // newfree
    Code.ld(Reg::R0, Reg::R3, 4);        // heapend
    Code.cmp(Reg::R0, Reg::R5);
    Label Fits = Code.newLabel();
    Code.bgeu(Fits);
    // Grow the heap with room to spare.
    Code.addi(Reg::R1, Reg::R5, 65536);
    Code.movi(Reg::R0, SysBrk);
    Code.sys();
    Code.st(Reg::R3, 4, Reg::R0);
    Code.bind(Fits);
    Code.st(Reg::R3, 0, Reg::R5); // freeptr = newfree
    Code.st(Reg::R4, 0, Reg::R2); // header: raw size
    Code.addi(Reg::R0, Reg::R4, 16);
    Code.ret();
  }

  // --- free(r1 = ptr) ----------------------------------------------------
  L.Free = Code.boundLabel();
  Code.symbol("free");
  Code.ret(); // bump allocators don't reclaim

  // --- memset(r1 = dst, r2 = byte, r3 = len) -> r0 = dst -----------------
  L.Memset = Code.boundLabel();
  Code.symbol("memset");
  {
    Code.mov(Reg::R0, Reg::R1);
    Label Loop = Code.newLabel(), Done = Code.newLabel();
    Code.bind(Loop);
    Code.cmpi(Reg::R3, 0);
    Code.beq(Done);
    Code.stb(Reg::R1, 0, Reg::R2);
    Code.addi(Reg::R1, Reg::R1, 1);
    Code.addi(Reg::R3, Reg::R3, -1);
    Code.jmp(Loop);
    Code.bind(Done);
    Code.ret();
  }

  // --- memcpy(r1 = dst, r2 = src, r3 = len) -> r0 = dst -------------------
  L.Memcpy = Code.boundLabel();
  Code.symbol("memcpy");
  {
    Code.mov(Reg::R0, Reg::R1);
    Label Loop = Code.newLabel(), Done = Code.newLabel();
    Code.bind(Loop);
    Code.cmpi(Reg::R3, 0);
    Code.beq(Done);
    Code.ldb(Reg::R4, Reg::R2, 0);
    Code.stb(Reg::R1, 0, Reg::R4);
    Code.addi(Reg::R1, Reg::R1, 1);
    Code.addi(Reg::R2, Reg::R2, 1);
    Code.addi(Reg::R3, Reg::R3, -1);
    Code.jmp(Loop);
    Code.bind(Done);
    Code.ret();
  }

  // --- calloc(r1 = n, r2 = size) -> r0 ------------------------------------
  L.Calloc = Code.boundLabel();
  Code.symbol("calloc");
  {
    Code.mul(Reg::R1, Reg::R1, Reg::R2);
    Code.push(Reg::R1);
    Code.call(L.Malloc);
    Code.pop(Reg::R3); // len
    Code.mov(Reg::R1, Reg::R0);
    Code.push(Reg::R0);
    Code.movi(Reg::R2, 0);
    Code.call(L.Memset);
    Code.pop(Reg::R0);
    Code.ret();
  }

  // --- realloc(r1 = ptr, r2 = newsize) -> r0 -------------------------------
  L.Realloc = Code.boundLabel();
  Code.symbol("realloc");
  {
    Label NotNull = Code.newLabel();
    Code.cmpi(Reg::R1, 0);
    Code.bne(NotNull);
    Code.mov(Reg::R1, Reg::R2);
    Code.jmp(L.Malloc); // tail call: realloc(0, n) == malloc(n)
    Code.bind(NotNull);
    Code.push(Reg::R1); // old ptr
    Code.push(Reg::R2); // new size
    Code.mov(Reg::R1, Reg::R2);
    Code.call(L.Malloc);
    Code.pop(Reg::R3);  // new size
    Code.pop(Reg::R2);  // old ptr
    // old payload capacity = header raw size - 16
    Code.ld(Reg::R4, Reg::R2, -16);
    Code.addi(Reg::R4, Reg::R4, -16);
    // copy min(old capacity, new size)
    Code.cmp(Reg::R4, Reg::R3);
    Label UseOld = Code.newLabel();
    Code.bltu(UseOld);
    Code.mov(Reg::R4, Reg::R3);
    Code.bind(UseOld);
    Code.push(Reg::R0);
    Code.mov(Reg::R1, Reg::R0);
    Code.mov(Reg::R3, Reg::R4);
    Code.call(L.Memcpy);
    Code.pop(Reg::R0);
    Code.ret();
  }

  // --- strlen(r1 = str) -> r0 ----------------------------------------------
  // Byte-exact: never reads past the terminator (so Memcheck sees no
  // out-of-bounds accesses from library code).
  L.Strlen = Code.boundLabel();
  Code.symbol("strlen");
  {
    Code.mov(Reg::R2, Reg::R1);
    Label Loop = Code.newLabel(), Done = Code.newLabel();
    Code.bind(Loop);
    Code.ldb(Reg::R3, Reg::R2, 0);
    Code.cmpi(Reg::R3, 0);
    Code.beq(Done);
    Code.addi(Reg::R2, Reg::R2, 1);
    Code.jmp(Loop);
    Code.bind(Done);
    Code.sub(Reg::R0, Reg::R2, Reg::R1);
    Code.ret();
  }

  // --- print(r1 = NUL-terminated string) ------------------------------------
  L.Print = Code.boundLabel();
  Code.symbol("print");
  {
    Code.push(Reg::R1);
    Code.call(L.Strlen);
    Code.pop(Reg::R2);       // str
    Code.mov(Reg::R3, Reg::R0); // len
    Code.movi(Reg::R0, SysWrite);
    Code.movi(Reg::R1, 1); // stdout
    Code.sys();
    Code.ret();
  }

  // --- print_u32(r1 = value): decimal + newline -----------------------------
  L.PrintU32 = Code.boundLabel();
  Code.symbol("print_u32");
  {
    // Build digits backwards into the state buffer [8..40).
    Code.movi(Reg::R3, StateAddr + 39); // cursor (writes go downward)
    Code.movi(Reg::R2, 10);
    Code.stb(Reg::R3, 0, Reg::R2); // trailing '\n'... store 10 == '\n'
    Code.addi(Reg::R3, Reg::R3, -1);
    Label Loop = Code.boundLabel();
    Code.divu(Reg::R4, Reg::R1, Reg::R2); // q = v / 10
    Code.mul(Reg::R5, Reg::R4, Reg::R2);
    Code.sub(Reg::R5, Reg::R1, Reg::R5); // r = v % 10
    Code.addi(Reg::R5, Reg::R5, '0');
    Code.stb(Reg::R3, 0, Reg::R5);
    Code.addi(Reg::R3, Reg::R3, -1);
    Code.mov(Reg::R1, Reg::R4);
    Code.cmpi(Reg::R1, 0);
    Code.bne(Loop);
    // write(1, r3+1, end-r3-1)
    Code.addi(Reg::R2, Reg::R3, 1);
    Code.movi(Reg::R4, StateAddr + 40);
    Code.sub(Reg::R3, Reg::R4, Reg::R2);
    Code.movi(Reg::R0, SysWrite);
    Code.movi(Reg::R1, 1);
    Code.sys();
    Code.ret();
  }

  // --- exit(r1 = code) --------------------------------------------------------
  L.Exit = Code.boundLabel();
  Code.symbol("exit");
  Code.movi(Reg::R0, SysExit);
  Code.sys();
  Code.hlt(); // unreachable

  return L;
}
