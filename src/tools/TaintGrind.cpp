//===-- tools/TaintGrind.cpp - Taint tracker ------------------------------==//

#include "tools/TaintGrind.h"

#include "guest/GuestArch.h"

#include <cstring>

using namespace vg;
using namespace vg::ir;
using namespace vg::vg1;

//===----------------------------------------------------------------------===//
// TaintMap
//===----------------------------------------------------------------------===//

void TaintMap::set(uint32_t Addr, uint32_t Len, bool Tainted) {
  for (uint32_t I = 0; I != Len; ++I) {
    uint32_t A = Addr + I;
    auto &Page = Pages[A >> PageBits];
    Page[A & (PageSize - 1)] = Tainted ? 0xFF : 0;
  }
}

bool TaintMap::any(uint32_t Addr, uint32_t Len) const {
  for (uint32_t I = 0; I != Len; ++I) {
    uint32_t A = Addr + I;
    auto It = Pages.find(A >> PageBits);
    if (It != Pages.end() && It->second[A & (PageSize - 1)])
      return true;
  }
  return false;
}

uint64_t TaintMap::load(uint32_t Addr, uint32_t Size) const {
  uint64_t M = 0;
  for (uint32_t I = 0; I != Size; ++I) {
    uint32_t A = Addr + I;
    auto It = Pages.find(A >> PageBits);
    if (It != Pages.end())
      M |= static_cast<uint64_t>(It->second[A & (PageSize - 1)]) << (8 * I);
  }
  return M;
}

void TaintMap::store(uint32_t Addr, uint32_t Size, uint64_t Mask) {
  for (uint32_t I = 0; I != Size; ++I) {
    uint32_t A = Addr + I;
    uint8_t B = static_cast<uint8_t>(Mask >> (8 * I));
    auto It = Pages.find(A >> PageBits);
    if (It == Pages.end()) {
      if (!B)
        continue; // stay sparse for untainted stores
      It = Pages.try_emplace(A >> PageBits).first;
    }
    It->second[A & (PageSize - 1)] = B;
  }
}

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

namespace {
TaintGrind *toolOf(void *Env) {
  return static_cast<TaintGrind *>(static_cast<ExecContext *>(Env)->Tool);
}
} // namespace

uint64_t TaintGrind::helperLoadT(void *Env, uint64_t Addr, uint64_t Size,
                                 uint64_t, uint64_t) {
  return toolOf(Env)->TM.load(static_cast<uint32_t>(Addr),
                              static_cast<uint32_t>(Size));
}

uint64_t TaintGrind::helperStoreT(void *Env, uint64_t Addr, uint64_t Mask,
                                  uint64_t Size, uint64_t) {
  toolOf(Env)->TM.store(static_cast<uint32_t>(Addr),
                        static_cast<uint32_t>(Size), Mask);
  return 0;
}

uint64_t TaintGrind::helperTaintedJump(void *Env, uint64_t PC, uint64_t,
                                       uint64_t, uint64_t) {
  TaintGrind *T = toolOf(Env);
  T->report("TaintedJump",
            "Indirect jump/call target depends on tainted input",
            static_cast<uint32_t>(PC));
  return 0;
}

uint64_t TaintGrind::helperTaintedBranch(void *Env, uint64_t PC, uint64_t,
                                         uint64_t, uint64_t) {
  TaintGrind *T = toolOf(Env);
  T->report("TaintedControl", "Conditional branch depends on tainted input",
            static_cast<uint32_t>(PC));
  return 0;
}

namespace {
const Callee LoadTCallee = {"tg_LOADT", &TaintGrind::helperLoadT, 0};
const Callee StoreTCallee = {"tg_STORET", &TaintGrind::helperStoreT, 0};
const Callee TaintedJumpCallee = {"tg_tainted_jump",
                                  &TaintGrind::helperTaintedJump, 0};
const Callee TaintedBranchCallee = {"tg_tainted_branch",
                                    &TaintGrind::helperTaintedBranch, 0};
const ir::CalleeRegistrar RegisterCallees{&LoadTCallee, &StoreTCallee,
                                          &TaintedJumpCallee,
                                          &TaintedBranchCallee};
} // namespace

//===----------------------------------------------------------------------===//
// Instrumentation: pure UifU shadow propagation
//===----------------------------------------------------------------------===//

namespace {

class TgInstrumenter {
public:
  TgInstrumenter(IRSB &SB, bool CheckBranches)
      : SB(SB), CheckBranches(CheckBranches) {}

  void run() {
    std::vector<Stmt *> Old;
    Old.swap(SB.stmts());
    for (Stmt *S : Old)
      visit(S);
    Expr *Next = SB.next();
    if (Next->isRdTmp()) {
      Expr *TN = tAtom(Next);
      Expr *G = atom(SB.unop(Op::CmpNEZ32, TN));
      SB.dirty(&TaintedJumpCallee, {SB.constI64(CurPC)}, NoTmp, G);
    }
  }

private:
  static Ty shTy(Ty T) { return T == Ty::F64 ? Ty::I64 : T; }

  TmpId taintOf(TmpId T) {
    if (T >= TaintTmp.size())
      TaintTmp.resize(T + 1, NoTmp);
    if (TaintTmp[T] == NoTmp)
      TaintTmp[T] = SB.newTmp(shTy(SB.typeOfTmp(T)));
    return TaintTmp[T];
  }

  Expr *tAtom(const Expr *A) {
    if (A->isConst())
      return SB.mkConst(shTy(A->T), 0);
    return SB.rdTmp(taintOf(A->Tmp));
  }

  Expr *atom(Expr *E) { return E->isAtom() ? E : SB.rdTmp(SB.wrTmp(E)); }

  static Op cmpNEZOp(Ty T) {
    switch (T) {
    case Ty::I8:
      return Op::CmpNEZ8;
    case Ty::I16:
      return Op::CmpNEZ16;
    case Ty::I32:
      return Op::CmpNEZ32;
    default:
      return Op::CmpNEZ64;
    }
  }

  /// Taint-cast: any tainted input byte taints the whole result.
  Expr *tcast(Ty From, Ty To, Expr *V) {
    Expr *C = From == Ty::I1 ? V : atom(SB.unop(cmpNEZOp(From), V));
    switch (To) {
    case Ty::I1:
      return C;
    case Ty::I8:
      return atom(SB.unop(Op::Neg8, atom(SB.unop(Op::U1to8, C))));
    case Ty::I16:
      return atom(SB.unop(
          Op::T32to16,
          atom(SB.unop(Op::Neg32, atom(SB.unop(Op::U1to32, C))))));
    case Ty::I32:
      return atom(SB.unop(Op::Neg32, atom(SB.unop(Op::U1to32, C))));
    default:
      return atom(SB.unop(Op::Neg64, atom(SB.unop(Op::U1to64, C))));
    }
  }

  Expr *taintForRhs(Expr *D) {
    switch (D->Kind) {
    case ExprKind::Const:
      return SB.mkConst(shTy(D->T), 0);
    case ExprKind::RdTmp:
      return tAtom(D);
    case ExprKind::Get:
      return atom(SB.get(D->Offset + gso::ShadowOffset, shTy(D->T)));
    case ExprKind::Unop: {
      Expr *V = tAtom(D->Arg[0]);
      // Conversions carry taint bytes with them; everything else t-casts.
      switch (D->Opc) {
      case Op::U1to8:
      case Op::U1to32:
      case Op::U1to64:
      case Op::U8to16:
      case Op::U8to32:
      case Op::S8to32:
      case Op::U8to64:
      case Op::U16to32:
      case Op::S16to32:
      case Op::U16to64:
      case Op::U32to64:
      case Op::S32to64:
      case Op::T16to8:
      case Op::T32to8:
      case Op::T32to16:
      case Op::T64to32:
      case Op::T64HIto32:
      case Op::T32to1:
      case Op::T64to1:
      case Op::Not8:
      case Op::Not16:
      case Op::Not32:
      case Op::Not64:
        return atom(SB.unop(D->Opc == Op::Not8 || D->Opc == Op::Not16 ||
                                    D->Opc == Op::Not32 || D->Opc == Op::Not64
                                ? D->Opc // Not: taint unchanged? keep width
                                : D->Opc,
                            V));
      case Op::ReinterpF64asI64:
      case Op::ReinterpI64asF64:
        return V;
      default:
        return tcast(shTy(opArgTy(D->Opc, 0)), shTy(D->T), V);
      }
    }
    case ExprKind::Binop: {
      Expr *V1 = tAtom(D->Arg[0]);
      Expr *V2 = tAtom(D->Arg[1]);
      Ty A0 = shTy(D->Arg[0]->T), A1 = shTy(D->Arg[1]->T);
      Ty RT = shTy(D->T);
      // Bring both to the result width, then UifU.
      Expr *W1 = A0 == RT ? V1 : tcast(A0, RT, V1);
      Expr *W2 = A1 == RT ? V2 : tcast(A1, RT, V2);
      Op OrO = RT == Ty::I8    ? Op::Or8
               : RT == Ty::I16 ? Op::Or16
               : RT == Ty::I32 ? Op::Or32
                               : Op::Or64;
      if (RT == Ty::I1)
        return tcast(Ty::I32, Ty::I1,
                     atom(SB.binop(Op::Or32, tcast(A0, Ty::I32, V1),
                                   tcast(A1, Ty::I32, V2))));
      return atom(SB.binop(OrO, W1, W2));
    }
    case ExprKind::Load: {
      TmpId TV = SB.newTmp(shTy(D->T));
      SB.dirty(&LoadTCallee,
               {D->Arg[0], SB.constI64(tySizeBits(D->T) / 8)}, TV);
      return SB.rdTmp(TV);
    }
    case ExprKind::ITE: {
      Expr *Sel = atom(SB.ite(D->Arg[0], tAtom(D->Arg[1]), tAtom(D->Arg[2])));
      Expr *TC = tcast(Ty::I1, shTy(D->T), tAtom(D->Arg[0]));
      Op OrO = shTy(D->T) == Ty::I64 ? Op::Or64 : Op::Or32;
      if (shTy(D->T) == Ty::I1)
        return atom(SB.ite(tAtom(D->Arg[0]), SB.constI1(true), Sel));
      return atom(SB.binop(OrO, Sel, TC));
    }
    case ExprKind::CCall: {
      Expr *Acc = SB.constI32(0);
      for (const Expr *A : D->CallArgs)
        Acc = atom(SB.binop(Op::Or32, Acc,
                            tcast(shTy(A->T), Ty::I32, tAtom(A))));
      return tcast(Ty::I32, shTy(D->T), Acc);
    }
    }
    unreachable("taintForRhs: bad kind");
  }

  void visit(Stmt *S) {
    switch (S->Kind) {
    case StmtKind::NoOp:
      return;
    case StmtKind::IMark:
      CurPC = S->IAddr;
      SB.append(S);
      return;
    case StmtKind::Put:
      SB.put(S->Offset + gso::ShadowOffset, tAtom(S->Data));
      SB.append(S);
      return;
    case StmtKind::WrTmp: {
      Expr *T = taintForRhs(S->Data);
      SB.wrTmpTo(taintOf(S->Tmp), T);
      SB.append(S);
      return;
    }
    case StmtKind::Store:
      SB.dirty(&StoreTCallee,
               {S->Addr, tAtom(S->Data),
                SB.constI64(tySizeBits(S->Data->T) / 8)});
      SB.append(S);
      return;
    case StmtKind::Dirty:
      SB.append(S);
      for (const GuestFx &F : S->Fx) {
        if (!F.IsWrite)
          continue;
        uint32_t Off = F.Offset + gso::ShadowOffset;
        if (F.Size == 4)
          SB.put(Off, SB.constI32(0));
        else if (F.Size == 8)
          SB.put(Off, SB.constI64(0));
      }
      if (S->Tmp != NoTmp)
        SB.wrTmpTo(taintOf(S->Tmp),
                   SB.mkConst(shTy(SB.typeOfTmp(S->Tmp)), 0));
      return;
    case StmtKind::Exit:
      if (CheckBranches) {
        Expr *TG = tAtom(S->Guard);
        SB.dirty(&TaintedBranchCallee, {SB.constI64(CurPC)}, NoTmp, TG);
      }
      SB.append(S);
      return;
    }
  }

  IRSB &SB;
  bool CheckBranches;
  std::vector<TmpId> TaintTmp;
  uint32_t CurPC = 0;
};

} // namespace

void TaintGrind::instrument(IRSB &SB) {
  TgInstrumenter(SB, CheckBranches).run();
}

//===----------------------------------------------------------------------===//
// Tool plumbing
//===----------------------------------------------------------------------===//

void TaintGrind::registerOptions(OptionRegistry &Opts) {
  Opts.addOption("taint-branches", "no",
                 "also flag conditional branches on tainted data");
}

void TaintGrind::init(Core &Core_) {
  C = &Core_;
  CheckBranches = C->options().getBool("taint-branches");
  EventHub &E = C->events();
  E.PostFileRead = [this](int Tid, uint32_t Fd, uint32_t Addr, uint32_t Len,
                          const char *Source) {
    bool Untrusted =
        Fd == 0 || std::strncmp(Source, "tainted:", 8) == 0;
    if (!Untrusted)
      return;
    TM.set(Addr, Len, true);
    TaintedInputBytes += Len;
  };
  E.PreRegRead = [this](int Tid, uint32_t Off, uint32_t Size,
                        const char *Sys) {
    ThreadState &TS = C->thread(Tid);
    for (uint32_t I = 0; I != Size; ++I) {
      if (TS.Guest[vg1::gso::ShadowOffset + Off + I]) {
        report("TaintedSyscall",
               std::string("Tainted value passed to syscall parameter ") +
                   Sys,
               TS.getPC());
        return;
      }
    }
  };
  // Taint dies with the memory holding it.
  E.DieMemMunmap = [this](uint32_t A, uint32_t L) { TM.set(A, L, false); };
  E.DieMemStack = [this](uint32_t A, uint32_t L) { TM.set(A, L, false); };
}

bool TaintGrind::handleClientRequest(int Tid, uint32_t Code,
                                     const uint32_t Args[4],
                                     uint32_t &Result) {
  switch (Code) {
  case TgTaint:
  case TgLegacyTaint:
    TM.set(Args[0], Args[1], true);
    return true;
  case TgUntaint:
  case TgLegacyUntaint:
    TM.set(Args[0], Args[1], false);
    return true;
  case TgIsTainted:
  case TgLegacyIsTainted:
    Result = TM.any(Args[0], Args[1]) ? 1 : 0;
    return true;
  default:
    return false;
  }
}

void TaintGrind::report(const char *Kind, const std::string &Msg,
                        uint32_t PC) {
  bool IsNew = C->errors().record(Kind, "==taintgrind== " + Msg, PC);
  if (IsNew)
    C->output().printf("==taintgrind== %s\n==taintgrind==    at 0x%08X\n",
                       Msg.c_str(), PC);
}

void TaintGrind::fini(int ExitCode) {
  C->output().printf("==taintgrind== tainted input bytes: %llu\n",
                     static_cast<unsigned long long>(TaintedInputBytes));
  C->errors().printSummary(C->output());
}
