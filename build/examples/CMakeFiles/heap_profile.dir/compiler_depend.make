# Empty compiler generated dependencies file for heap_profile.
# This may be replaced when dependencies are built.
