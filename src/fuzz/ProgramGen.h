//===-- fuzz/ProgramGen.h - Seeded VG1 program generator --------*- C++ -*-==//
///
/// \file
/// Generates well-formed, terminating, encodable VG1 guest programs for
/// differential fuzzing (RefInterp oracle vs. the D&R JIT pipeline). A
/// program is a list of *atoms* — small instruction templates with enforced
/// hygiene — wrapped in a fixed scaffold (buffer allocation, a bounded
/// loop, and an observation epilogue that prints registers, flag probes,
/// an FP dump and a memory checksum to stdout).
///
/// The hygiene rules exist because the two engines run the same program at
/// *different heap addresses* (a heap-tracking tool redirects malloc to the
/// core's replacement allocator, Section 3.13). Hence:
///
///  - r1..r9 are data registers: observed in the epilogue, never hold an
///    address. Atoms that must route an address through one (syscall args)
///    re-materialise it with a constant afterwards.
///  - r10 is the loop counter, r11 the address temporary, r12 the
///    checksummed buffer base, r13 the scratch base (never checksummed) —
///    none of them observed.
///  - All generated loads/stores mask their offset into the buffer, so no
///    atom can fault or touch an absolute address.
///  - Syscall results that are legitimately nondeterministic across
///    engines (pids, clocks, kill/sigaction status with no KernelHost) are
///    overwritten with seeded constants immediately after the SYS.
///  - Signal handlers only write to scratch: natively (no KernelHost) they
///    never run, so their effects must be invisible to the observation.
///  - Self-modifying code (behind a flag) patches a block and then runs a
///    NOP sled at a decode-cache-aliasing address (+64 KiB) before
///    re-executing it — the VG1 "icache flush" idiom that makes native
///    semantics well-defined (RefInterp's predecode cache is not coherent
///    with stores, like real hardware; guest/RefInterp.h).
///
//===----------------------------------------------------------------------===//
#ifndef VG_FUZZ_PROGRAMGEN_H
#define VG_FUZZ_PROGRAMGEN_H

#include "core/GuestImage.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vg {
namespace fuzz {

/// Atom kinds. Each expands to 1..6 concrete instructions with the hygiene
/// rules above baked in. Operand fields are reduced modulo the legal range
/// at render time, so every (Kind, A, B, C, D, Imm) tuple is valid — the
/// shrinker can mutate freely.
enum class AtomKind : uint8_t {
  Alu3,      ///< A=subop(14: add..divs,vadd8..vcmpgt8) B=rd C=rs D=rt
  AluImm,    ///< A=subop(5: addi,andi,shli,shri,sari) B=rd C=rs Imm
  MovImm,    ///< B=rd, Imm
  MovReg,    ///< B=rd, C=rs
  CmpRR,     ///< C=rs, D=rt
  CmpImm,    ///< C=rs, Imm
  Load,      ///< A=width(0=ld 1=ldb 2=ldsb 3=ldh 4=ldsh) B=rd C=src Imm=disp
  Store,     ///< A=width(0=st 1=stb 2=sth) C=src D=rv Imm=disp
  LoadX,     ///< A=scale B=rd C=idxsrc Imm=disp (4-aligned)
  StoreX,    ///< A=scale C=idxsrc D=rv Imm=disp (4-aligned)
  PushPop,   ///< push C; pop B
  SkipInc,   ///< cmp C,D; b<A> over; addi B,B,1
  FlagProbe, ///< movi r11,Imm(tag); b<A> over; st [r12+slot], r11
  FAlu3,     ///< A=subop(4: fadd,fsub,fmul,fdiv) B=fd C=fs D=ft
  FUnary,    ///< A=subop(0=fneg 1=fmov) B=fd C=fs
  FMovImm,   ///< B=fd, Imm=raw IEEE754 bits
  FConvI2D,  ///< fitod: B=fd C=rs
  FConvD2I,  ///< fdtoi: B=rd C=fs (saturating)
  FCmp,      ///< C=fs D=ft
  FLoad,     ///< B=fd C=src Imm=disp (8-aligned)
  FStore,    ///< C=src D=fs Imm=disp (8-aligned)
  CpuInfo,   ///< cpuinfo (r0/r1 get the architectural constants)
  ClReq,     ///< movi r0,0; clreq (unknown request: returns 0 everywhere)
  SysWrite,  ///< write(1, buf+off, len): A=len Imm=off
  SysRead,   ///< read(0, scratch+io+off, len): A=len Imm=off
  LoadIo,    ///< ld B, [r13 + io + Imm] (deterministic stdin-backed bytes)
  SysTime,   ///< gettimeofday into scratch; r0/r1 renormalised
  SysGetpid, ///< getpid; r0 renormalised
  SysYield,  ///< yield; r0 renormalised
  SysKill,   ///< kill(0, USR1/USR2): A=sig-select; r0..r2 renormalised
  CallFn,    ///< call leaf function A
  CallrFn,   ///< leai r11, leaf A; callr r11
  JmprSkip,  ///< leai r11,L; jmpr r11; movi B,Imm(poison); L:
  ClReqCore, ///< RUNNING_ON_VALGRIND (canonical/legacy by A); r0 renormed
  ClReqTool, ///< tool-tagged request (LG start/stop or unknown 'Z','Z')
};
constexpr unsigned NumAtomKinds =
    static_cast<unsigned>(AtomKind::ClReqTool) + 1;

/// One generated atom. All fields are free-form; render() maps them into
/// the legal ranges.
struct Atom {
  AtomKind K = AtomKind::MovImm;
  uint8_t A = 0, B = 0, C = 0, D = 0;
  int64_t Imm = 0;
};

/// A complete generated program (plus its input). Rendering is a pure
/// function of this struct, so serialising it reproduces the run exactly.
struct FuzzProgram {
  uint64_t Seed = 0;      ///< seeds register/FPR init constants
  uint32_t LoopCount = 1; ///< body loop iterations (kept small)
  bool Signals = false;   ///< install handlers; SysKill atoms get targets
  bool Smc = false;       ///< append the self-modifying epilogue section
  std::vector<Atom> Body;
  std::vector<std::vector<Atom>> Leaves; ///< callable leaf functions
  std::string StdinData;

  unsigned totalAtoms() const {
    size_t N = Body.size();
    for (const auto &L : Leaves)
      N += L.size();
    return static_cast<unsigned>(N);
  }
};

/// Generation knobs.
struct GenOptions {
  unsigned MinBodyAtoms = 4;
  unsigned MaxBodyAtoms = 40;
  unsigned MaxLeaves = 2;
  unsigned MaxLoop = 12;
  /// 0 = never, 1 = seed-dependent (~1 in 5), 2 = always.
  int Signals = 1;
  int Smc = 1;
};

/// Deterministic generator: same (Seed, Opts) -> same program.
FuzzProgram generate(uint64_t Seed, const GenOptions &Opts = GenOptions());

/// Renders the program to a loadable image (pure function of \p P).
GuestImage render(const FuzzProgram &P);

/// Number of concrete instructions the body atoms expand to (the repro
/// size metric quoted by the shrinker).
unsigned bodyInstrCount(const FuzzProgram &P);

/// Textual .vg1 case format: header, atoms, and (on save) a disassembly
/// appended as comments. parse() ignores comments/blank lines.
std::string serialize(const FuzzProgram &P, bool WithDisasm = true);
bool parse(const std::string &Text, FuzzProgram &Out, std::string &Err);

/// splitmix64 — the shared PRNG of the fuzz subsystem.
struct Rng {
  uint64_t State;
  explicit Rng(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    uint64_t Z = (State += 0x9E3779B97F4A7C15ull);
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }
  /// Uniform in [0, N).
  uint64_t below(uint64_t N) { return N ? next() % N : 0; }
};

} // namespace fuzz
} // namespace vg

#endif // VG_FUZZ_PROGRAMGEN_H
