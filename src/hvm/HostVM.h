//===-- hvm/HostVM.h - Host instruction set and code buffers ----*- C++ -*-==//
///
/// \file
/// The resynthesise half of D&R: the "host machine" targeted by the JIT's
/// back end. HVM is a 16-register, 64-bit machine whose code is encoded
/// into byte buffers (the contents of the code cache) and executed by a
/// threaded interpreter (hvm/Exec.cpp).
///
/// The back-end phases map onto the paper's Phases 6-8:
///   Phase 6 (ISel.cpp):     tree IR -> HInstr list over virtual registers,
///                           via greedy top-down tree matching.
///   Phase 7 (RegAlloc.cpp): linear-scan register allocation with move
///                           coalescing hints and spill slots.
///   Phase 8 (encode()):     HInstr list -> code bytes.
///
/// Host register conventions (Section 3.4/3.9): registers h0..h9 are
/// allocatable, h10..h13 are spill-reload scratch, h14 conceptually holds
/// the guest program counter between blocks, and h15 is permanently
/// reserved to point at the ThreadState (the executor materialises these
/// last two implicitly).
///
//===----------------------------------------------------------------------===//
#ifndef VG_HVM_HOSTVM_H
#define VG_HVM_HOSTVM_H

#include "ir/IR.h"

#include <cstdint>
#include <vector>

namespace vg {
namespace hvm {

using RegId = uint32_t;
constexpr RegId NoReg = ~0u;

/// Total architectural host registers.
constexpr unsigned NumHostRegs = 16;
/// h0..h9 are available to the register allocator.
constexpr unsigned NumAllocatable = 10;
/// h0..h5 are caller-saved: a CALL clobbers them (the helper-call ABI).
/// Values live across a call must sit in h6..h9 or be spilled — this is
/// what makes C-call analysis code cost more than inline analysis code
/// (paper Section 5.4, ICntI vs ICntC).
constexpr unsigned NumCallerSaved = 6;
/// h10..h13 are scratch registers used by spill-code rewriting (preserved
/// across CALL).
constexpr unsigned FirstScratch = 10;

/// Virtual register ids start here (before register allocation).
constexpr RegId VirtBase = 0x10000;
inline bool isVirtual(RegId R) { return R >= VirtBase; }

/// Host opcodes.
enum class HOp : uint8_t {
  LI,     ///< Dst = Imm
  MOV,    ///< Dst = A
  ALU,    ///< Dst = IrOp(A, B)
  ALU1,   ///< Dst = IrOp(A)
  ALUI,   ///< Dst = IrOp(A, Imm)      (immediate folded by tree matching)
  LDG,    ///< Dst = guest_state[Off .. Off+Size)
  STG,    ///< guest_state[Off ..) = A
  LDM,    ///< Dst = guest_mem[A + Disp], Size bytes (zero-extended)
  STM,    ///< guest_mem[A + Disp] = B, Size bytes
  SEL,    ///< Dst = A ? B : C
  CALL,   ///< Dst = CalleeFn(Args[0..NArgs))      (Dst may be NoReg)
  JZ,     ///< if (A == 0) goto Label
  EXITI,  ///< leave block: next guest PC = Imm, kind JKind, chain ChainSlot
  EXITR,  ///< leave block: next guest PC = A, kind JKind
  IMARK,  ///< current guest instruction is at Imm (fault attribution)
  SPILL,  ///< spill_frame[Off] = A
  RELOAD, ///< Dst = spill_frame[Off]
  ALUIS,  ///< Dst = IrOp(A, Imm) with Imm in [0,255] (compact encoding)
  SHPROBE, ///< Dst = shadow probe at [A] (B = V-word for the store form);
           ///< the tool's ShadowMap services it inline — no helper call,
           ///< no caller-saved clobber. Imm bit 0: 1 = store, 0 = load.
};

/// One host instruction (pre- or post-register-allocation).
struct HInstr {
  HOp Op;
  ir::Op IrOp{};
  RegId Dst = NoReg, A = NoReg, B = NoReg, C = NoReg;
  uint64_t Imm = 0;
  int32_t Disp = 0;
  uint32_t Off = 0;
  uint8_t Size = 0;
  const ir::Callee *CalleeFn = nullptr;
  RegId Args[4] = {NoReg, NoReg, NoReg, NoReg};
  uint8_t NArgs = 0;
  uint8_t JKind = 0;
  uint32_t ChainSlot = ~0u;
  int32_t Label = -1; ///< JZ: index of the target instruction
};

/// Renders one host instruction (Figure 3 demo and debugging).
std::string toString(const HInstr &I);

/// Chain-slot target sentinel: the exit is not chainable (non-Boring kind).
constexpr uint32_t NoChainTarget = ~0u;

/// A fully lowered block: allocated instructions plus frame metadata.
struct HostCode {
  std::vector<HInstr> Instrs;
  uint32_t NumSpillSlots = 0;
  uint32_t NumChainSlots = 0;
  /// Per chain slot: constant guest target PC (NoChainTarget when the exit
  /// kind can never be chained). Parallel to the slot numbering.
  std::vector<uint32_t> ChainTargets;
  /// Chain slot of the fall-off-the-end exit (~0 when the block ends in a
  /// register-form exit, which takes no slot). Any *other* slot an
  /// execution leaves through is a guarded side exit — the trace tier's
  /// speculation-miss signal.
  uint32_t TerminalChainSlot = ~0u;
};

/// Phase 8: encodes an instruction list into code-cache bytes. JZ labels
/// are resolved to byte offsets.
std::vector<uint8_t> encode(const HostCode &Code);

/// Decodes the opcode stream of an encoded blob and reports the byte
/// offset of every CALL instruction's 8-byte callee field — the only
/// host-pointer-sized immediate encode() ever emits, and the reason a raw
/// blob is meaningless outside the process that produced it. The
/// persistent translation cache rewrites these fields (pointer <-> callee
/// name index) when serializing. Returns false when the bytes do not
/// decode cleanly (unknown opcode or truncated tail), which load paths
/// must treat as a malformed entry.
bool findCalleeSlots(const std::vector<uint8_t> &Bytes,
                     std::vector<uint32_t> &Slots);

} // namespace hvm
} // namespace vg

#endif // VG_HVM_HOSTVM_H
