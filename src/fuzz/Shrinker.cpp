//===-- fuzz/Shrinker.cpp - ddmin repro minimisation ----------------------==//

#include "fuzz/Shrinker.h"

#include <algorithm>

using namespace vg;
using namespace vg::fuzz;

namespace {

struct Shrinker {
  const FuzzConfig &Cfg;
  unsigned MaxEvals;
  unsigned Evals = 0;
  Divergence LastDiv;

  Shrinker(const FuzzConfig &C, unsigned Max) : Cfg(C), MaxEvals(Max) {}

  bool budget() const { return Evals < MaxEvals; }

  /// The predicate: still diverges on the failing config?
  bool fails(const FuzzProgram &P) {
    ++Evals;
    DiffResult R = diffRunOne(P, Cfg);
    if (!R.ok())
      LastDiv = R.Divs.front();
    return !R.ok();
  }

  /// Classic ddmin over one atom list; mutates \p Atoms in place inside
  /// \p P (the caller passes a member of P by reference).
  bool ddminList(FuzzProgram &P, std::vector<Atom> &Atoms) {
    bool Shrunk = false;
    size_t Chunk = (Atoms.size() + 1) / 2;
    while (Chunk >= 1 && !Atoms.empty() && budget()) {
      bool Removed = false;
      for (size_t Start = 0; Start < Atoms.size() && budget();) {
        size_t End = std::min(Start + Chunk, Atoms.size());
        std::vector<Atom> Saved(Atoms.begin() + Start, Atoms.begin() + End);
        Atoms.erase(Atoms.begin() + Start, Atoms.begin() + End);
        if (fails(P)) {
          Removed = Shrunk = true; // keep removal, retry same position
        } else {
          Atoms.insert(Atoms.begin() + Start, Saved.begin(), Saved.end());
          Start += Chunk;
        }
      }
      if (!Removed) {
        if (Chunk == 1)
          break;
        Chunk = (Chunk + 1) / 2;
      }
    }
    return Shrunk;
  }

  void run(FuzzProgram &P) {
    // 1. Loop count: smaller is simpler and faster to triage.
    for (uint32_t LC : {1u, 2u, 4u}) {
      if (P.LoopCount <= LC || !budget())
        break;
      FuzzProgram Q = P;
      Q.LoopCount = LC;
      if (fails(Q)) {
        P = std::move(Q);
        break;
      }
    }

    // 2. Drop leaves wholesale (calls to an empty leaf are call+ret).
    for (auto &Leaf : P.Leaves) {
      if (Leaf.empty() || !budget())
        continue;
      FuzzProgram Q = P;
      Q.Leaves[&Leaf - &P.Leaves[0]].clear();
      if (fails(Q))
        Leaf.clear();
    }

    // 3/4. ddmin the body and each leaf to fixpoint.
    bool Progress = true;
    while (Progress && budget()) {
      Progress = ddminList(P, P.Body);
      for (auto &Leaf : P.Leaves)
        if (budget())
          Progress |= ddminList(P, Leaf);
    }

    // 5. Feature flags off if the divergence survives without them.
    if (P.Signals && budget()) {
      // The generator only emits SysKill atoms when handlers are installed:
      // an unhandled kill is fatal under the core but a SysErr natively, so
      // Signals=false + SysKill diverges by design, not by bug. Clearing the
      // flag therefore has to drop those atoms too, or the shrink transmutes
      // the real divergence into that known engine difference.
      FuzzProgram Q = P;
      Q.Signals = false;
      auto DropKills = [](std::vector<Atom> &Atoms) {
        Atoms.erase(std::remove_if(Atoms.begin(), Atoms.end(),
                                   [](const Atom &At) {
                                     return At.K == AtomKind::SysKill;
                                   }),
                    Atoms.end());
      };
      DropKills(Q.Body);
      for (auto &Leaf : Q.Leaves)
        DropKills(Leaf);
      if (fails(Q))
        P = std::move(Q);
    }
    if (P.Smc && budget()) {
      FuzzProgram Q = P;
      Q.Smc = false;
      if (fails(Q))
        P.Smc = false;
    }

    // 6. Stdin truncation.
    while (!P.StdinData.empty() && budget()) {
      FuzzProgram Q = P;
      Q.StdinData.resize(Q.StdinData.size() / 2);
      if (!fails(Q))
        break;
      P.StdinData = Q.StdinData;
    }

    // Re-establish LastDiv for the final minimal program.
    fails(P);
  }
};

} // namespace

ShrinkOutcome vg::fuzz::shrinkProgram(const FuzzProgram &P,
                                      const FuzzConfig &FailingConfig,
                                      unsigned MaxEvals) {
  ShrinkOutcome Out;
  Out.AtomsBefore = P.totalAtoms();
  FuzzProgram Min = P;
  Shrinker S(FailingConfig, MaxEvals);
  S.run(Min);
  Out.Minimal = std::move(Min);
  Out.Div = S.LastDiv;
  Out.Evals = S.Evals;
  Out.AtomsAfter = Out.Minimal.totalAtoms();
  Out.InstrsAfter = bodyInstrCount(Out.Minimal);
  return Out;
}
