# Empty compiler generated dependencies file for find_heap_bugs.
# This may be replaced when dependencies are built.
