//===-- examples/cache_profile.cpp - Cachegrind on array traversals -------==//
///
/// \file
/// The classic cache-behaviour demo under Cachegrind: walk a large array
/// with stride 1 and then with stride 64 (one element per cache line) and
/// compare D1 miss rates. Shows the profiler attributing misses to guest
/// code addresses.
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "guestlib/GuestLib.h"
#include "tools/Cachegrind.h"

#include <cstdio>

using namespace vg;
using namespace vg::vg1;

namespace {

GuestImage strideWalk(uint32_t StrideBytes) {
  Assembler Code(0x1000);
  Assembler Data(0x100000);
  GuestLibLabels Lib = emitGuestLib(Code, Data);
  Label Main = Code.newLabel();
  uint32_t Entry = emitStart(Code, Main);
  Code.bind(Main);
  const uint32_t Bytes = 1 << 20; // 1MB, larger than D1
  Code.movi(Reg::R1, Bytes);
  Code.call(Lib.Malloc);
  Code.mov(Reg::R6, Reg::R0);
  Code.movi(Reg::R8, 0);  // checksum
  Code.movi(Reg::R9, 16); // passes
  Label Pass = Code.boundLabel();
  Code.movi(Reg::R7, 0); // offset
  Label Walk = Code.boundLabel();
  Code.add(Reg::R2, Reg::R6, Reg::R7);
  Code.st(Reg::R2, 0, Reg::R7);
  Code.ld(Reg::R3, Reg::R2, 0);
  Code.add(Reg::R8, Reg::R8, Reg::R3);
  Code.addi(Reg::R7, Reg::R7, static_cast<int32_t>(StrideBytes));
  Code.cmpi(Reg::R7, Bytes);
  Code.bltu(Walk);
  Code.addi(Reg::R9, Reg::R9, -1);
  Code.cmpi(Reg::R9, 0);
  Code.bgt(Pass);
  Code.movi(Reg::R0, 0);
  Code.ret();
  return GuestImageBuilder().addCode(Code).addData(Data).entry(Entry).build();
}

} // namespace

int main() {
  for (uint32_t Stride : {4u, 64u}) {
    Cachegrind Tool;
    RunReport R = runUnderCore(strideWalk(Stride), &Tool);
    std::printf("=== stride %u bytes ===\n%s\n", Stride,
                R.ToolOutput.c_str());
  }
  std::printf("(stride 4 touches each 64-byte line 16 times — low miss "
              "rate;\n stride 64 misses on essentially every access once "
              "the array exceeds D1)\n");
  return 0;
}
