//===-- guest/GuestMemory.h - Sparse paged guest address space --*- C++ -*-==//
///
/// \file
/// The client's user-mode address space (the "S" of Section 2): a sparse,
/// demand-allocated, 4KB-paged 32-bit memory with per-page permissions.
/// All guest loads/stores — from the reference interpreter, the HVM-executed
/// translations, and the simulated kernel — go through this object, so a
/// single permission model yields guest SIGSEGVs uniformly.
///
/// Concurrency (DESIGN section 14): the page table is a two-level radix
/// tree of atomic pointers (1024 x 1024 covering the 2^20 pages). Lookups
/// are lock-free — two acquire loads — so any number of shard dispatch
/// loops may read/write/fetch concurrently. Mutation (map/unmap/protect)
/// must be externally serialised (the core's world lock; trivially true
/// single-threaded): writers never race each other, only with lock-free
/// readers, which the release publication ordering covers. Unmapping under
/// the sharded scheduler defers page destruction to a graveyard (another
/// shard may be mid-memcpy through the page it just looked up); pages are
/// freed at tear-down. Concurrent guest accesses to the same byte are the
/// guest's own data race — the MT scheduler requires race-free guests, it
/// does not invent ordering for racy ones.
///
//===----------------------------------------------------------------------===//
#ifndef VG_GUEST_GUESTMEMORY_H
#define VG_GUEST_GUESTMEMORY_H

#include "support/Sanitizers.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace vg {

/// Page permission bits.
enum MemPerm : uint8_t {
  PermNone = 0,
  PermRead = 1,
  PermWrite = 2,
  PermExec = 4,
  PermRW = PermRead | PermWrite,
  PermRX = PermRead | PermExec,
  PermRWX = PermRead | PermWrite | PermExec,
};

/// Result of a guest memory access attempt.
struct MemFault {
  bool Faulted = false;
  uint32_t Addr = 0;     ///< first faulting byte
  bool WasWrite = false; ///< access direction
};

/// Sparse paged 32-bit guest memory.
class GuestMemory {
public:
  static constexpr uint32_t PageSize = 4096;
  static constexpr uint32_t PageShift = 12;

  GuestMemory() = default;
  ~GuestMemory();
  GuestMemory(const GuestMemory &) = delete;
  GuestMemory &operator=(const GuestMemory &) = delete;

  /// Maps [Addr, Addr+Len) with \p Perms, zero-filling fresh pages.
  /// Page-granular; Addr/Len are rounded outward. Re-mapping an existing
  /// page just updates its permissions (contents preserved).
  void map(uint32_t Addr, uint32_t Len, uint8_t Perms);

  /// Unmaps (discards) all pages intersecting [Addr, Addr+Len).
  void unmap(uint32_t Addr, uint32_t Len);

  /// Changes permissions on already-mapped pages in the range. Pages not
  /// mapped are skipped.
  void protect(uint32_t Addr, uint32_t Len, uint8_t Perms);

  /// Sharded-scheduler mode: unmapped pages go to a graveyard freed at
  /// destruction instead of being deleted immediately, so a concurrent
  /// lock-free reader that looked a page up just before the unmap never
  /// touches freed memory. Off by default (single-threaded destruction is
  /// immediate, byte-identical to the seed behaviour).
  void setDeferredReclaim(bool On) { DeferReclaim = On; }

  bool isMapped(uint32_t Addr) const { return lookup(Addr >> PageShift); }

  /// Permissions of the page containing \p Addr (PermNone if unmapped).
  uint8_t permsAt(uint32_t Addr) const {
    const Page *P = lookup(Addr >> PageShift);
    return P ? P->Perms.load(std::memory_order_relaxed)
             : static_cast<uint8_t>(PermNone);
  }

  /// Reads \p Len bytes. Requires PermRead on every page unless
  /// \p IgnorePerms (used by kernel/tool accesses which are not subject to
  /// guest protections). Returns fault info.
  MemFault read(uint32_t Addr, void *Out, uint32_t Len,
                bool IgnorePerms = false) const;

  /// Writes \p Len bytes, requiring PermWrite unless \p IgnorePerms.
  MemFault write(uint32_t Addr, const void *Data, uint32_t Len,
                 bool IgnorePerms = false);

  /// Instruction fetch: requires PermExec.
  MemFault fetch(uint32_t Addr, void *Out, uint32_t Len) const;

  // Typed convenience accessors (checked; return fault). Within-page
  // accesses take a fixed-size fast path; page-straddling ones fall back
  // to the generic byte-exact walker.
  // VG_NO_TSAN: guest data — two guest threads racing here is the
  // guest's own race, mirrored faithfully (see Sanitizers.h).
  template <typename T> VG_NO_TSAN MemFault readT(uint32_t A, T &V) const {
    Page *P = lookup(A >> PageShift);
    uint32_t Off = A & (PageSize - 1);
    if (P && (P->Perms.load(std::memory_order_relaxed) & PermRead) &&
        Off <= PageSize - sizeof(T)) {
      std::memcpy(&V, P->Data.data() + Off, sizeof(T));
      return MemFault{};
    }
    return read(A, &V, sizeof(T));
  }
  template <typename T> VG_NO_TSAN MemFault writeT(uint32_t A, T V) {
    Page *P = lookup(A >> PageShift);
    uint32_t Off = A & (PageSize - 1);
    if (P && (P->Perms.load(std::memory_order_relaxed) & PermWrite) &&
        Off <= PageSize - sizeof(T)) {
      std::memcpy(P->Data.data() + Off, &V, sizeof(T));
      return MemFault{};
    }
    return write(A, &V, sizeof(T));
  }
  MemFault readU8(uint32_t A, uint8_t &V) const { return readT(A, V); }
  MemFault readU16(uint32_t A, uint16_t &V) const { return readT(A, V); }
  MemFault readU32(uint32_t A, uint32_t &V) const { return readT(A, V); }
  MemFault readU64(uint32_t A, uint64_t &V) const { return readT(A, V); }
  MemFault writeU8(uint32_t A, uint8_t V) { return writeT(A, V); }
  MemFault writeU16(uint32_t A, uint16_t V) { return writeT(A, V); }
  MemFault writeU32(uint32_t A, uint32_t V) { return writeT(A, V); }
  MemFault writeU64(uint32_t A, uint64_t V) { return writeT(A, V); }

  uint64_t pagesAllocated() const {
    return PageCount.load(std::memory_order_relaxed);
  }

  /// One coalesced run of executable pages, copied out of the address
  /// space. Background translation workers fetch guest code from these
  /// snapshots: a snapshot pins the code bytes as they were when the
  /// promotion was requested, independent of later SMC or unmaps.
  struct ExecSnapshot {
    struct Range {
      uint32_t Base = 0;
      std::vector<uint8_t> Bytes;
    };
    std::vector<Range> Ranges; ///< sorted by Base, non-overlapping

    /// Fetch \p Len bytes at \p Addr; false if any byte falls outside the
    /// snapshotted executable ranges (the worker then abandons the job).
    bool fetch(uint32_t Addr, void *Out, uint32_t Len) const;
  };

  /// Copies every executable page into a snapshot, coalescing adjacent
  /// pages into runs. Mutation must be excluded while this runs (world
  /// lock / guest thread only).
  ExecSnapshot snapshotExecRanges() const;

private:
  struct Page {
    std::array<uint8_t, PageSize> Data;
    /// Atomic only so protect() under the world lock does not race the
    /// lock-free permission checks in concurrent shards; plain
    /// relaxed loads/stores, no ordering implied.
    std::atomic<uint8_t> Perms{0};
  };

  // Two-level radix split of the 20-bit page index.
  static constexpr uint32_t TopBits = 10;
  static constexpr uint32_t LeafBits = 10;
  static constexpr uint32_t TopSize = 1u << TopBits;
  static constexpr uint32_t LeafSize = 1u << LeafBits;

  struct Leaf {
    std::array<std::atomic<Page *>, LeafSize> Slots{};
  };

  /// Lock-free: two acquire loads. The acquire pairs with the release
  /// stores in map(), so a non-null page is fully zero-filled and its
  /// permissions are set before any reader can see it.
  Page *lookup(uint32_t PageIdx) const {
    const Leaf *L = Top[PageIdx >> LeafBits].load(std::memory_order_acquire);
    if (!L)
      return nullptr;
    return L->Slots[PageIdx & (LeafSize - 1)].load(std::memory_order_acquire);
  }

  /// Writer-side: returns the leaf for \p PageIdx, publishing a fresh one
  /// if absent. Callers must hold the world lock (or be single-threaded).
  Leaf *ensureLeaf(uint32_t PageIdx);

  /// Detaches the page at \p PageIdx (if any): null the slot, then delete
  /// or defer according to DeferReclaim.
  void dropPage(uint32_t PageIdx);

  template <bool IsWrite>
  MemFault access(uint32_t Addr, void *Buf, uint32_t Len,
                  uint8_t NeedPerm) const;

  std::array<std::atomic<Leaf *>, TopSize> Top{};
  std::atomic<uint64_t> PageCount{0};
  bool DeferReclaim = false;
  /// Pages unmapped while DeferReclaim was on; freed at destruction.
  std::vector<std::unique_ptr<Page>> Graveyard;
};

} // namespace vg

#endif // VG_GUEST_GUESTMEMORY_H
