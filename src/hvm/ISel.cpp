//===-- hvm/ISel.cpp - Phase 6: instruction selection ---------------------==//

#include "hvm/ISel.h"

using namespace vg;
using namespace vg::hvm;
using namespace vg::ir;

namespace {

class Selector {
public:
  explicit Selector(const IRSB &SB) : SB(SB) {}

  HostCode run() {
    for (const Stmt *S : SB.stmts())
      lowerStmt(S);
    lowerBlockEnd();
    Code.NumChainSlots = NextChainSlot;
    return std::move(Code);
  }

private:
  RegId freshVreg() { return VirtBase + NextVreg++; }

  RegId vregOfTmp(TmpId T) {
    if (T >= TmpVreg.size())
      TmpVreg.resize(T + 1, NoReg);
    if (TmpVreg[T] == NoReg)
      TmpVreg[T] = freshVreg();
    return TmpVreg[T];
  }

  HInstr &emit(HOp Op) {
    Code.Instrs.emplace_back();
    Code.Instrs.back().Op = Op;
    return Code.Instrs.back();
  }

  static uint8_t sizeOf(Ty T) {
    switch (T) {
    case Ty::I1:
    case Ty::I8:
      return 1;
    case Ty::I16:
      return 2;
    case Ty::I32:
      return 4;
    case Ty::I64:
    case Ty::F64:
      return 8;
    }
    return 4;
  }

  /// Greedy top-down selection: returns the register holding \p E's value.
  RegId sel(const Expr *E) {
    switch (E->Kind) {
    case ExprKind::Const: {
      RegId R = freshVreg();
      HInstr &I = emit(HOp::LI);
      I.Dst = R;
      I.Imm = E->ConstVal;
      return R;
    }
    case ExprKind::RdTmp:
      return vregOfTmp(E->Tmp);
    case ExprKind::Get: {
      RegId R = freshVreg();
      HInstr &I = emit(HOp::LDG);
      I.Dst = R;
      I.Off = E->Offset;
      I.Size = sizeOf(E->T);
      return R;
    }
    case ExprKind::Unop: {
      RegId A = sel(E->Arg[0]);
      RegId R = freshVreg();
      HInstr &I = emit(HOp::ALU1);
      I.IrOp = E->Opc;
      I.Dst = R;
      I.A = A;
      return R;
    }
    case ExprKind::Binop: {
      // Pattern: constant RHS folds into an immediate form.
      if (E->Arg[1]->isConst()) {
        RegId A = sel(E->Arg[0]);
        RegId R = freshVreg();
        HInstr &I = emit(HOp::ALUI);
        I.IrOp = E->Opc;
        I.Dst = R;
        I.A = A;
        I.Imm = E->Arg[1]->ConstVal;
        return R;
      }
      RegId A = sel(E->Arg[0]);
      RegId B = sel(E->Arg[1]);
      RegId R = freshVreg();
      HInstr &I = emit(HOp::ALU);
      I.IrOp = E->Opc;
      I.Dst = R;
      I.A = A;
      I.B = B;
      return R;
    }
    case ExprKind::Load: {
      auto [Base, Disp] = selAddr(E->Arg[0]);
      RegId R = freshVreg();
      HInstr &I = emit(HOp::LDM);
      I.Dst = R;
      I.A = Base;
      I.Disp = Disp;
      I.Size = sizeOf(E->T);
      return R;
    }
    case ExprKind::ITE: {
      RegId Cnd = sel(E->Arg[0]);
      RegId TV = sel(E->Arg[1]);
      RegId FV = sel(E->Arg[2]);
      RegId R = freshVreg();
      HInstr &I = emit(HOp::SEL);
      I.Dst = R;
      I.A = Cnd;
      I.B = TV;
      I.C = FV;
      return R;
    }
    case ExprKind::CCall: {
      RegId ArgRegs[4] = {NoReg, NoReg, NoReg, NoReg};
      for (size_t I = 0; I != E->CallArgs.size(); ++I)
        ArgRegs[I] = sel(E->CallArgs[I]);
      RegId R = freshVreg();
      HInstr &I = emit(HOp::CALL);
      I.CalleeFn = E->CalleeFn;
      I.Dst = R;
      I.NArgs = static_cast<uint8_t>(E->CallArgs.size());
      for (int J = 0; J != 4; ++J)
        I.Args[J] = ArgRegs[J];
      return R;
    }
    }
    unreachable("sel: bad expression kind");
  }

  /// Pattern-matches Add32(x, const) into a (base, displacement) pair.
  std::pair<RegId, int32_t> selAddr(const Expr *E) {
    if (E->Kind == ExprKind::Binop && E->Opc == Op::Add32 &&
        E->Arg[1]->isConst())
      return {sel(E->Arg[0]), static_cast<int32_t>(E->Arg[1]->ConstVal)};
    return {sel(E), 0};
  }

  void lowerStmt(const Stmt *S) {
    switch (S->Kind) {
    case StmtKind::NoOp:
      return;
    case StmtKind::IMark: {
      HInstr &I = emit(HOp::IMARK);
      I.Imm = S->IAddr;
      return;
    }
    case StmtKind::Put: {
      RegId V = sel(S->Data);
      HInstr &I = emit(HOp::STG);
      I.A = V;
      I.Off = S->Offset;
      I.Size = sizeOf(S->Data->T);
      return;
    }
    case StmtKind::WrTmp: {
      // RdTmp/Const right-hand sides become MOV/LI into the tmp's vreg;
      // everything else computes into a fresh vreg then MOVs (the register
      // allocator coalesces the copy away).
      RegId Dst = vregOfTmp(S->Tmp);
      RegId V = sel(S->Data);
      HInstr &I = emit(HOp::MOV);
      I.Dst = Dst;
      I.A = V;
      return;
    }
    case StmtKind::Store: {
      auto [Base, Disp] = selAddr(S->Addr);
      RegId V = sel(S->Data);
      HInstr &I = emit(HOp::STM);
      I.A = Base;
      I.B = V;
      I.Disp = Disp;
      I.Size = sizeOf(S->Data->T);
      return;
    }
    case StmtKind::Dirty: {
      int SkipLabel = -1;
      if (S->Guard && !S->Guard->isConst(1)) {
        RegId G = sel(S->Guard);
        HInstr &JZ = emit(HOp::JZ);
        JZ.A = G;
        SkipLabel = static_cast<int>(Code.Instrs.size()) - 1; // patched below
      }
      RegId ArgRegs[4] = {NoReg, NoReg, NoReg, NoReg};
      for (size_t I = 0; I != S->CallArgs.size(); ++I)
        ArgRegs[I] = sel(S->CallArgs[I]);
      HInstr &I = emit(HOp::CALL);
      I.CalleeFn = S->CalleeFn;
      I.Dst = S->Tmp == NoTmp ? NoReg : vregOfTmp(S->Tmp);
      I.NArgs = static_cast<uint8_t>(S->CallArgs.size());
      for (int J = 0; J != 4; ++J)
        I.Args[J] = ArgRegs[J];
      if (SkipLabel >= 0)
        Code.Instrs[SkipLabel].Label =
            static_cast<int32_t>(Code.Instrs.size());
      return;
    }
    case StmtKind::ShadowProbe: {
      RegId A = sel(S->Addr);
      RegId V = S->Data ? sel(S->Data) : NoReg;
      HInstr &I = emit(HOp::SHPROBE);
      I.Dst = vregOfTmp(S->Tmp);
      I.A = A;
      I.B = V;
      I.Imm = S->Data ? 1 : 0;
      I.Size = S->AccSize;
      return;
    }
    case StmtKind::Exit: {
      RegId G = sel(S->Guard);
      HInstr &JZ = emit(HOp::JZ);
      JZ.A = G;
      size_t JZIdx = Code.Instrs.size() - 1;
      HInstr &X = emit(HOp::EXITI);
      X.Imm = S->DstPC;
      X.JKind = static_cast<uint8_t>(S->JK);
      X.ChainSlot = NextChainSlot++;
      Code.ChainTargets.push_back(S->JK == ir::JumpKind::Boring
                                      ? S->DstPC
                                      : NoChainTarget);
      Code.Instrs[JZIdx].Label = static_cast<int32_t>(Code.Instrs.size());
      return;
    }
    }
  }

  void lowerBlockEnd() {
    const Expr *Next = SB.next();
    if (Next->isConst()) {
      HInstr &X = emit(HOp::EXITI);
      X.Imm = Next->ConstVal;
      X.JKind = static_cast<uint8_t>(SB.endJumpKind());
      X.ChainSlot = NextChainSlot++;
      Code.TerminalChainSlot = X.ChainSlot;
      Code.ChainTargets.push_back(SB.endJumpKind() == ir::JumpKind::Boring
                                      ? static_cast<uint32_t>(Next->ConstVal)
                                      : NoChainTarget);
      return;
    }
    RegId R = sel(Next);
    HInstr &X = emit(HOp::EXITR);
    X.A = R;
    X.JKind = static_cast<uint8_t>(SB.endJumpKind());
  }

  const IRSB &SB;
  HostCode Code;
  uint32_t NextVreg = 0;
  uint32_t NextChainSlot = 0;
  std::vector<RegId> TmpVreg;
};

} // namespace

HostCode hvm::selectInstructions(const IRSB &SB) {
  Selector S(SB);
  return S.run();
}
