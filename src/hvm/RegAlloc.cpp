//===-- hvm/RegAlloc.cpp - Phase 7: linear-scan register allocation -------==//
///
/// Linear-scan allocation in the style of Traub et al. (the paper's cited
/// algorithm [26]): live intervals over the instruction list, an active set
/// ordered by interval end, furthest-end spilling, and move-coalescing
/// hints so that "the register allocator can remove many register-to-
/// register moves" (Figure 3).
///
//===----------------------------------------------------------------------===//

#include "hvm/ISel.h"

#include <algorithm>
#include <map>

using namespace vg;
using namespace vg::hvm;

namespace {

struct Interval {
  RegId VR;
  int Start = -1, End = -1;
  RegId HintVR = NoReg; ///< prefer this vreg's assignment (MOV coalescing)
  RegId Phys = NoReg;
  int Slot = -1; ///< spill slot when >= 0
};

struct UseDef {
  RegId *Regs[6];
  bool IsDef[6];
  unsigned N = 0;
  void add(RegId &R, bool Def) {
    if (R == NoReg || !isVirtual(R))
      return;
    Regs[N] = &R;
    IsDef[N] = Def;
    ++N;
  }
};

/// Collects the virtual-register operands of an instruction.
UseDef operands(HInstr &I) {
  UseDef U;
  switch (I.Op) {
  case HOp::LI:
    U.add(I.Dst, true);
    break;
  case HOp::MOV:
    U.add(I.A, false);
    U.add(I.Dst, true);
    break;
  case HOp::ALU:
    U.add(I.A, false);
    U.add(I.B, false);
    U.add(I.Dst, true);
    break;
  case HOp::ALU1:
  case HOp::ALUI:
  case HOp::ALUIS: // only created at encode time, but handle uniformly
    U.add(I.A, false);
    U.add(I.Dst, true);
    break;
  case HOp::LDG:
    U.add(I.Dst, true);
    break;
  case HOp::STG:
    U.add(I.A, false);
    break;
  case HOp::LDM:
    U.add(I.A, false);
    U.add(I.Dst, true);
    break;
  case HOp::STM:
    U.add(I.A, false);
    U.add(I.B, false);
    break;
  case HOp::SEL:
    U.add(I.A, false);
    U.add(I.B, false);
    U.add(I.C, false);
    U.add(I.Dst, true);
    break;
  case HOp::CALL:
    for (unsigned J = 0; J != I.NArgs; ++J)
      U.add(I.Args[J], false);
    U.add(I.Dst, true);
    break;
  case HOp::JZ:
  case HOp::EXITR:
    U.add(I.A, false);
    break;
  case HOp::SPILL:
    U.add(I.A, false);
    break;
  case HOp::RELOAD:
    U.add(I.Dst, true);
    break;
  case HOp::SHPROBE:
    U.add(I.A, false);
    U.add(I.B, false); // NoReg for the load form; add() skips it
    U.add(I.Dst, true);
    break;
  case HOp::EXITI:
  case HOp::IMARK:
    break;
  }
  return U;
}

} // namespace

unsigned hvm::allocateRegisters(HostCode &Code) {
  auto &Ins = Code.Instrs;

  // --- build live intervals ---------------------------------------------
  std::map<RegId, Interval> Ivals;
  std::vector<int> CallPositions;
  for (size_t Idx = 0; Idx != Ins.size(); ++Idx) {
    if (Ins[Idx].Op == HOp::CALL)
      CallPositions.push_back(static_cast<int>(Idx));
    UseDef U = operands(Ins[Idx]);
    for (unsigned J = 0; J != U.N; ++J) {
      RegId VR = *U.Regs[J];
      Interval &IV = Ivals.try_emplace(VR, Interval{VR}).first->second;
      if (IV.Start < 0)
        IV.Start = static_cast<int>(Idx);
      IV.End = static_cast<int>(Idx);
    }
    // Coalescing hint: MOV dst,src prefers sharing src's register.
    if (Ins[Idx].Op == HOp::MOV && isVirtual(Ins[Idx].Dst) &&
        isVirtual(Ins[Idx].A))
      Ivals[Ins[Idx].Dst].HintVR = Ins[Idx].A;
  }

  // --- linear scan --------------------------------------------------------
  std::vector<Interval *> Order;
  Order.reserve(Ivals.size());
  for (auto &[VR, IV] : Ivals)
    Order.push_back(&IV);
  std::sort(Order.begin(), Order.end(), [](const Interval *A,
                                           const Interval *B) {
    return A->Start != B->Start ? A->Start < B->Start : A->VR < B->VR;
  });

  std::vector<Interval *> Active; // kept sorted by End
  bool FreeReg[NumAllocatable];
  std::fill(std::begin(FreeReg), std::end(FreeReg), true);
  uint32_t NextSlot = 0;

  auto Expire = [&](int Now) {
    size_t Keep = 0;
    for (Interval *A : Active) {
      if (A->End < Now)
        FreeReg[A->Phys] = true;
      else
        Active[Keep++] = A;
    }
    Active.resize(Keep);
  };

  auto InsertActive = [&](Interval *IV) {
    auto It = std::lower_bound(
        Active.begin(), Active.end(), IV,
        [](const Interval *A, const Interval *B) { return A->End < B->End; });
    Active.insert(It, IV);
  };

  // An interval strictly spanning a CALL cannot live in a caller-saved
  // register (the call clobbers h0..h5).
  auto SpansCall = [&](const Interval *IV) {
    for (int C : CallPositions)
      if (IV->Start < C && C < IV->End)
        return true;
    return false;
  };

  for (Interval *IV : Order) {
    Expire(IV->Start);
    bool NeedCalleeSaved = !CallPositions.empty() && SpansCall(IV);
    unsigned FirstOk = NeedCalleeSaved ? NumCallerSaved : 0;
    // Try the coalescing hint first. The common case is that the source of
    // the MOV dies exactly at the MOV (End == our Start): its register can
    // be taken over directly, which later deletes the MOV.
    RegId Chosen = NoReg;
    if (IV->HintVR != NoReg) {
      auto HIt = Ivals.find(IV->HintVR);
      if (HIt != Ivals.end() && HIt->second.Phys != NoReg &&
          HIt->second.Phys >= FirstOk) {
        Interval &H = HIt->second;
        if (FreeReg[H.Phys]) {
          Chosen = H.Phys;
        } else if (H.End <= IV->Start) {
          // Take over the dying source's register; drop it from the active
          // list so its (already transferred) register is not re-freed.
          Chosen = H.Phys;
          auto AIt = std::find(Active.begin(), Active.end(), &H);
          if (AIt != Active.end())
            Active.erase(AIt);
        }
      }
    }
    if (Chosen == NoReg) {
      for (unsigned R = FirstOk; R != NumAllocatable; ++R) {
        if (FreeReg[R]) {
          Chosen = R;
          break;
        }
      }
    }
    if (Chosen != NoReg) {
      IV->Phys = Chosen;
      FreeReg[Chosen] = false;
      InsertActive(IV);
      continue;
    }
    // No usable register free: spill the eligible interval ending furthest
    // away (or this one).
    Interval *Victim = nullptr;
    for (auto It = Active.rbegin(); It != Active.rend(); ++It) {
      if ((*It)->Phys >= FirstOk) {
        Victim = *It;
        break;
      }
    }
    if (Victim && Victim->End > IV->End) {
      IV->Phys = Victim->Phys;
      Victim->Phys = NoReg;
      Victim->Slot = static_cast<int>(NextSlot++);
      Active.erase(std::find(Active.begin(), Active.end(), Victim));
      InsertActive(IV);
    } else {
      IV->Slot = static_cast<int>(NextSlot++);
    }
  }

  // --- rewrite: apply assignments, insert spill code, coalesce moves -----
  std::vector<HInstr> Out;
  Out.reserve(Ins.size());
  std::vector<int32_t> NewIndex(Ins.size() + 1, 0);
  unsigned Coalesced = 0;

  for (size_t Idx = 0; Idx != Ins.size(); ++Idx) {
    NewIndex[Idx] = static_cast<int32_t>(Out.size());
    HInstr I = Ins[Idx];
    UseDef U = operands(I);
    unsigned ScratchNext = FirstScratch;
    HInstr DeferredSpill;
    bool HaveSpillAfter = false;

    for (unsigned J = 0; J != U.N; ++J) {
      RegId VR = *U.Regs[J];
      Interval &IV = Ivals[VR];
      if (IV.Phys != NoReg) {
        *U.Regs[J] = IV.Phys;
        continue;
      }
      // Spilled virtual register.
      assert(IV.Slot >= 0 && "spilled interval without a slot");
      RegId S = ScratchNext++;
      assert(S < NumHostRegs && "ran out of scratch registers");
      if (U.IsDef[J]) {
        *U.Regs[J] = S;
        DeferredSpill = HInstr();
        DeferredSpill.Op = HOp::SPILL;
        DeferredSpill.A = S;
        DeferredSpill.Off = static_cast<uint32_t>(IV.Slot);
        HaveSpillAfter = true;
      } else {
        HInstr R;
        R.Op = HOp::RELOAD;
        R.Dst = S;
        R.Off = static_cast<uint32_t>(IV.Slot);
        Out.push_back(R);
        *U.Regs[J] = S;
      }
    }

    // Coalesce now-trivial moves.
    if (I.Op == HOp::MOV && I.Dst == I.A) {
      ++Coalesced;
      continue;
    }
    Out.push_back(I);
    if (HaveSpillAfter)
      Out.push_back(DeferredSpill);
  }
  NewIndex[Ins.size()] = static_cast<int32_t>(Out.size());

  // Fix JZ targets (instruction indices moved).
  for (HInstr &I : Out)
    if (I.Op == HOp::JZ)
      I.Label = NewIndex[I.Label];

  Code.Instrs = std::move(Out);
  Code.NumSpillSlots = NextSlot;
  return Coalesced;
}
