//===-- support/Options.h - Command-line option handling --------*- C++ -*-==//
///
/// \file
/// A small option registry mirroring Valgrind's two-level command line:
/// the core owns options such as --tool=, --smc-check=, --chaining= and
/// --stack-switch-threshold=, and each tool plug-in may register its own
/// (e.g. Memcheck's --leak-check=). Options are "--name=value" strings;
/// bool options also accept bare "--name" as true.
///
//===----------------------------------------------------------------------===//
#ifndef VG_SUPPORT_OPTIONS_H
#define VG_SUPPORT_OPTIONS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vg {

/// Option table: registration, parsing, and typed lookup.
class OptionRegistry {
public:
  /// Registers an option with a default value and a help string.
  void addOption(const std::string &Name, const std::string &Default,
                 const std::string &Help);

  /// Parses "--name=value" / "--name" strings. Unknown options are collected
  /// into the returned list rather than being fatal, so the caller (core)
  /// can report them all at once.
  std::vector<std::string> parse(const std::vector<std::string> &Args);

  bool has(const std::string &Name) const;
  std::string getString(const std::string &Name) const;
  int64_t getInt(const std::string &Name) const;
  /// getInt with hard validation: the value must parse completely as an
  /// integer and lie in [Lo, Hi]; anything else (--jit-threads=abc,
  /// --jit-queue-depth=-1) is a usage error naming the option, the
  /// offending value, and the accepted range. The predecessor of this API
  /// silently clamped, which turned typos into surprising-but-running
  /// configurations.
  int64_t getIntChecked(const std::string &Name, int64_t Lo, int64_t Hi) const;
  bool getBool(const std::string &Name) const;

  /// Every registered option as (name, value) pairs, in name order. The
  /// persistent translation cache fingerprints these.
  std::vector<std::pair<std::string, std::string>> items() const;

  /// Renders the registered options and help strings (for --help output).
  std::string helpText() const;

private:
  struct Entry {
    std::string Value;
    std::string Default;
    std::string Help;
  };
  std::map<std::string, Entry> Entries;
};

} // namespace vg

#endif // VG_SUPPORT_OPTIONS_H
