//===-- tests/KernelTests.cpp - SimKernel and AddressSpace tests ----------==//
///
/// \file
/// Unit tests for the simulated-kernel substrate: the address-space
/// manager's segment algebra and placement policy, the virtual filesystem,
/// the memory syscalls' edge cases, and the virtual clock.
///
//===----------------------------------------------------------------------===//

#include "core/Events.h"
#include "guest/Assembler.h"
#include "guest/RefInterp.h"
#include "kernel/SimKernel.h"
#include "support/FaultInject.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

using namespace vg;
using namespace vg::vg1;

namespace {

//===----------------------------------------------------------------------===//
// AddressSpace
//===----------------------------------------------------------------------===//

TEST(AddressSpace, AddRejectsOverlap) {
  AddressSpace AS;
  EXPECT_TRUE(AS.add(0x10000, 0x4000, PermRW, SegKind::ClientData, "a"));
  EXPECT_FALSE(AS.add(0x12000, 0x1000, PermRW, SegKind::ClientData, "b"));
  EXPECT_TRUE(AS.add(0x14000, 0x1000, PermRW, SegKind::ClientData, "c"));
}

TEST(AddressSpace, ReleaseSplitsSegments) {
  AddressSpace AS;
  ASSERT_TRUE(AS.add(0x10000, 0x10000, PermRW, SegKind::ClientMmap, "m"));
  auto Removed = AS.release(0x14000, 0x4000);
  ASSERT_EQ(Removed.size(), 1u);
  EXPECT_EQ(Removed[0].first, 0x14000u);
  EXPECT_EQ(Removed[0].second, 0x18000u);
  // The hole is real: left and right survive.
  EXPECT_NE(AS.segmentAt(0x13000), nullptr);
  EXPECT_EQ(AS.segmentAt(0x15000), nullptr);
  EXPECT_NE(AS.segmentAt(0x19000), nullptr);
  // And the hole can be refilled.
  EXPECT_TRUE(AS.add(0x14000, 0x4000, PermRW, SegKind::ClientMmap, "again"));
}

TEST(AddressSpace, CoreRegionIsUntouchable) {
  AddressSpace AS;
  AS.reserveCoreRegion();
  EXPECT_FALSE(AS.add(AddressSpace::CoreBase + 0x1000, 0x1000, PermRW,
                      SegKind::ClientMmap, "evil"));
  auto Removed = AS.release(AddressSpace::CoreBase, AddressSpace::CoreSize);
  EXPECT_TRUE(Removed.empty());
  EXPECT_NE(AS.segmentAt(AddressSpace::CoreBase), nullptr);
}

TEST(AddressSpace, FindFreeSkipsSegmentsAndCoreRegion) {
  AddressSpace AS;
  AS.reserveCoreRegion();
  ASSERT_TRUE(AS.add(0x40000000, 0x10000, PermRW, SegKind::ClientMmap, "m"));
  uint32_t A = AS.findFree(0x1000, 0x40000000);
  EXPECT_GE(A, 0x40010000u);
  // A hint inside the core region lands after it.
  uint32_t B = AS.findFree(0x1000, AddressSpace::CoreBase + 0x100);
  EXPECT_GE(B, AddressSpace::CoreBase + AddressSpace::CoreSize);
}

TEST(AddressSpace, ResizeRespectsNeighbours) {
  AddressSpace AS;
  ASSERT_TRUE(AS.add(0x10000, 0x1000, PermRW, SegKind::ClientHeap, "brk"));
  ASSERT_TRUE(AS.add(0x20000, 0x1000, PermRW, SegKind::ClientData, "d"));
  EXPECT_TRUE(AS.resize(0x10000, 0x18000));
  EXPECT_FALSE(AS.resize(0x10000, 0x21000)); // would collide
  EXPECT_TRUE(AS.resize(0x10000, 0x11000));  // shrink back
}

//===----------------------------------------------------------------------===//
// SimKernel via the reference interpreter (no core involved)
//===----------------------------------------------------------------------===//

struct Machine {
  GuestMemory Mem;
  AddressSpace AS;
  SimKernel Kernel{AS, nullptr, nullptr};
  RefInterp Cpu{Mem, &Kernel};

  explicit Machine(Assembler &A) {
    AS.reserveCoreRegion();
    std::vector<uint8_t> Img = A.finalize();
    Mem.map(0x1000, static_cast<uint32_t>(Img.size()), PermRX);
    Mem.write(0x1000, Img.data(), static_cast<uint32_t>(Img.size()), true);
    Mem.map(0x8000, 0x1000, PermRW);
    AS.add(0x8000, 0x1000, PermRW, SegKind::ClientData, "data");
    AS.add(0x10000, 0x1000, PermRW, SegKind::ClientHeap, "brk");
    Mem.map(0x10000, 0x1000, PermRW);
    Mem.map(0x1F000, 0x1000, PermRW);
    Cpu.PC = 0x1000;
    Cpu.R[RegSP] = 0x20000;
  }
};

TEST(SimKernel, WriteToStdoutCaptured) {
  Assembler A(0x1000);
  A.movi(Reg::R2, 0x8000);
  A.movi(Reg::R3, 0x6F6C6C65); // "ello"
  A.st(Reg::R2, 0, Reg::R3);
  A.movi(Reg::R0, SysWrite);
  A.movi(Reg::R1, 1);
  A.movi(Reg::R3, 4);
  A.sys();
  A.hlt();
  Machine M(A);
  EXPECT_EQ(M.Cpu.run(100).Status, RunStatus::Halted);
  EXPECT_EQ(M.Kernel.stdoutText(), "ello");
  EXPECT_EQ(M.Cpu.R[0], 4u); // bytes written
}

TEST(SimKernel, FileRoundTripThroughVfs) {
  Assembler A(0x1000);
  Label Path = A.newLabel();
  // open("f", create) -> fd; write(fd, path, 1); close; open read; read.
  A.movi(Reg::R0, SysOpen);
  A.leai(Reg::R1, Path);
  A.movi(Reg::R2, 1);
  A.sys();
  A.mov(Reg::R6, Reg::R0);
  A.movi(Reg::R0, SysWrite);
  A.mov(Reg::R1, Reg::R6);
  A.leai(Reg::R2, Path);
  A.movi(Reg::R3, 1);
  A.sys();
  A.movi(Reg::R0, SysClose);
  A.mov(Reg::R1, Reg::R6);
  A.sys();
  A.movi(Reg::R0, SysOpen);
  A.leai(Reg::R1, Path);
  A.movi(Reg::R2, 0);
  A.sys();
  A.mov(Reg::R6, Reg::R0);
  A.movi(Reg::R0, SysFsize);
  A.mov(Reg::R1, Reg::R6);
  A.sys();
  A.mov(Reg::R7, Reg::R0); // size == 1
  A.hlt();
  A.bind(Path);
  A.emitString("f");
  Machine M(A);
  ASSERT_EQ(M.Cpu.run(100).Status, RunStatus::Halted);
  EXPECT_EQ(M.Cpu.R[7], 1u);
  ASSERT_NE(M.Kernel.file("f"), nullptr);
  EXPECT_EQ(M.Kernel.file("f")->size(), 1u);
}

TEST(SimKernel, OpenMissingFileFails) {
  Assembler A(0x1000);
  Label Path = A.newLabel();
  A.movi(Reg::R0, SysOpen);
  A.leai(Reg::R1, Path);
  A.movi(Reg::R2, 0); // read-only, does not exist
  A.sys();
  A.hlt();
  A.bind(Path);
  A.emitString("missing");
  Machine M(A);
  ASSERT_EQ(M.Cpu.run(100).Status, RunStatus::Halted);
  EXPECT_EQ(M.Cpu.R[0], SysErr);
}

TEST(SimKernel, BrkGrowAndShrink) {
  Assembler A(0x1000);
  A.movi(Reg::R0, SysBrk);
  A.movi(Reg::R1, 0);
  A.sys();
  A.mov(Reg::R6, Reg::R0); // current end
  A.addi(Reg::R1, Reg::R6, 0x3000);
  A.movi(Reg::R0, SysBrk);
  A.sys();
  A.mov(Reg::R7, Reg::R0); // new end
  // Touch the new memory.
  A.addi(Reg::R2, Reg::R6, 0x1000);
  A.movi(Reg::R3, 99);
  A.st(Reg::R2, 0, Reg::R3);
  A.ld(Reg::R8, Reg::R2, 0);
  // Shrink back.
  A.mov(Reg::R1, Reg::R6);
  A.movi(Reg::R0, SysBrk);
  A.sys();
  A.hlt();
  Machine M(A);
  ASSERT_EQ(M.Cpu.run(100).Status, RunStatus::Halted);
  EXPECT_EQ(M.Cpu.R[7], M.Cpu.R[6] + 0x3000);
  EXPECT_EQ(M.Cpu.R[8], 99u);
  // Shrunk memory is unmapped again.
  uint32_t V;
  EXPECT_TRUE(M.Mem.readU32(M.Cpu.R[6] + 0x1000, V).Faulted);
}

TEST(SimKernel, MmapPlacementAndFixedConflicts) {
  Assembler A(0x1000);
  // floating mmap
  A.movi(Reg::R0, SysMmap);
  A.movi(Reg::R1, 0);
  A.movi(Reg::R2, 4096);
  A.movi(Reg::R3, 3);
  A.movi(Reg::R4, 0);
  A.sys();
  A.mov(Reg::R6, Reg::R0);
  // fixed mmap over the same range must fail
  A.movi(Reg::R0, SysMmap);
  A.mov(Reg::R1, Reg::R6);
  A.movi(Reg::R2, 4096);
  A.movi(Reg::R3, 3);
  A.movi(Reg::R4, 1);
  A.sys();
  A.mov(Reg::R7, Reg::R0);
  A.hlt();
  Machine M(A);
  ASSERT_EQ(M.Cpu.run(100).Status, RunStatus::Halted);
  EXPECT_GE(M.Cpu.R[6], AddressSpace::MmapBase);
  EXPECT_EQ(M.Cpu.R[7], SysErr);
}

TEST(SimKernel, VirtualClockAdvancesMonotonically) {
  Assembler A(0x1000);
  A.movi(Reg::R0, SysGettimeofday);
  A.movi(Reg::R1, 0x8000);
  A.sys();
  A.movi(Reg::R0, SysNanosleep);
  A.movi(Reg::R1, 2'000'000); // 2 virtual seconds
  A.sys();
  A.movi(Reg::R0, SysGettimeofday);
  A.movi(Reg::R1, 0x8010);
  A.sys();
  A.hlt();
  Machine M(A);
  ASSERT_EQ(M.Cpu.run(100).Status, RunStatus::Halted);
  uint32_t S0, S1;
  ASSERT_FALSE(M.Mem.readU32(0x8000, S0).Faulted);
  ASSERT_FALSE(M.Mem.readU32(0x8010, S1).Faulted);
  EXPECT_EQ(S1, S0 + 2);
}

TEST(SimKernel, ThreadSyscallsFailWithoutHost) {
  Assembler A(0x1000);
  A.movi(Reg::R0, SysClone);
  A.movi(Reg::R1, 0x1000);
  A.movi(Reg::R2, 0x20000);
  A.sys();
  A.mov(Reg::R6, Reg::R0);
  A.movi(Reg::R0, SysKill);
  A.movi(Reg::R1, 0);
  A.movi(Reg::R2, 10);
  A.sys();
  A.mov(Reg::R7, Reg::R0);
  A.hlt();
  Machine M(A);
  ASSERT_EQ(M.Cpu.run(100).Status, RunStatus::Halted);
  EXPECT_EQ(M.Cpu.R[6], SysErr);
  EXPECT_EQ(M.Cpu.R[7], SysErr);
}

TEST(SimKernel, UnknownSyscallReturnsError) {
  Assembler A(0x1000);
  A.movi(Reg::R0, 9999);
  A.sys();
  A.hlt();
  Machine M(A);
  ASSERT_EQ(M.Cpu.run(100).Status, RunStatus::Halted);
  EXPECT_EQ(M.Cpu.R[0], SysErr);
}

//===----------------------------------------------------------------------===//
// Wrapper error paths under fault injection: events must describe exactly
// what the kernel touched — nothing for failed syscalls, the transferred
// length for partial ones.
//===----------------------------------------------------------------------===//

/// A Machine with an events recorder and a fault plan attached.
struct EventMachine {
  GuestMemory Mem;
  AddressSpace AS;
  EventHub Hub;
  FaultPlan Faults;
  SimKernel Kernel{AS, &Hub, nullptr};
  RefInterp Cpu{Mem, &Kernel};

  // Recorded event stream.
  std::vector<std::tuple<uint32_t, uint32_t>> PostMemWrites; ///< addr,len
  std::vector<std::tuple<uint32_t, uint32_t>> PostFileReads; ///< addr,len
  unsigned FaultEvents = 0;

  EventMachine(Assembler &A, const std::string &FaultSpec) {
    if (!FaultSpec.empty()) {
      std::string Err;
      if (!Faults.parse(FaultSpec, Err))
        ADD_FAILURE() << "bad fault spec: " << Err;
      Kernel.setFaultPlan(&Faults);
    }
    Hub.PostMemWrite = [this](int, uint32_t Addr, uint32_t Len) {
      PostMemWrites.push_back({Addr, Len});
    };
    Hub.PostFileRead = [this](int, uint32_t, uint32_t Addr, uint32_t Len,
                              const char *) {
      PostFileReads.push_back({Addr, Len});
    };
    Hub.FaultInjected = [this](int, uint32_t, uint32_t) { ++FaultEvents; };
    AS.reserveCoreRegion();
    std::vector<uint8_t> Img = A.finalize();
    Mem.map(0x1000, static_cast<uint32_t>(Img.size()), PermRX);
    Mem.write(0x1000, Img.data(), static_cast<uint32_t>(Img.size()), true);
    Mem.map(0x8000, 0x1000, PermRW);
    AS.add(0x8000, 0x1000, PermRW, SegKind::ClientData, "data");
    Cpu.PC = 0x1000;
    Cpu.R[RegSP] = 0x8F00;
  }
};

/// read(stdin, buf, 4) with every fallible syscall failing: the wrapper
/// must not announce writes to a buffer the kernel never touched.
TEST(FaultPaths, FailedSyscallFiresNoBufferEvents) {
  Assembler A(0x1000);
  A.movi(Reg::R0, SysRead);
  A.movi(Reg::R1, 0);
  A.movi(Reg::R2, 0x8000);
  A.movi(Reg::R3, 4);
  A.sys();
  A.hlt();
  EventMachine M(A, "syscall:1,seed=7");
  M.Kernel.provideStdin("abcd");
  ASSERT_EQ(M.Cpu.run(100).Status, RunStatus::Halted);
  EXPECT_EQ(M.Cpu.R[0], SysErr);
  EXPECT_EQ(M.FaultEvents, 1u);
  EXPECT_TRUE(M.PostMemWrites.empty());
  EXPECT_TRUE(M.PostFileReads.empty());
}

/// A short read must fire post_mem_write (and post_file_read) for exactly
/// the delivered length, not the requested one.
TEST(FaultPaths, ShortReadAnnouncesExactLength) {
  Assembler A(0x1000);
  A.movi(Reg::R0, SysRead);
  A.movi(Reg::R1, 0);
  A.movi(Reg::R2, 0x8000);
  A.movi(Reg::R3, 6);
  A.sys();
  A.hlt();
  EventMachine M(A, "shortio:1,seed=11");
  M.Kernel.provideStdin("abcdef");
  ASSERT_EQ(M.Cpu.run(100).Status, RunStatus::Halted);
  uint32_t N = M.Cpu.R[0];
  ASSERT_GE(N, 1u);
  ASSERT_LT(N, 6u); // rate-1 plan always truncates
  ASSERT_EQ(M.PostMemWrites.size(), 1u);
  EXPECT_EQ(M.PostMemWrites[0], std::make_tuple(0x8000u, N));
  ASSERT_EQ(M.PostFileReads.size(), 1u);
  EXPECT_EQ(M.PostFileReads[0], std::make_tuple(0x8000u, N));
}

/// A short write consumes — and reports — only the transferred prefix.
TEST(FaultPaths, ShortWriteConsumesExactLength) {
  Assembler A(0x1000);
  A.movi(Reg::R2, 0x8000);
  A.movi(Reg::R3, 0x64636261); // "abcd"
  A.st(Reg::R2, 0, Reg::R3);
  A.movi(Reg::R0, SysWrite);
  A.movi(Reg::R1, 1);
  A.movi(Reg::R3, 4);
  A.sys();
  A.hlt();
  EventMachine M(A, "shortio:1,seed=3");
  ASSERT_EQ(M.Cpu.run(100).Status, RunStatus::Halted);
  uint32_t N = M.Cpu.R[0];
  ASSERT_GE(N, 1u);
  ASSERT_LT(N, 4u);
  EXPECT_EQ(M.Kernel.stdoutText(), std::string("abcd").substr(0, N));
}

/// A zero-byte (EOF) read returns 0 and fires no events at all.
TEST(FaultPaths, ZeroByteReadFiresNoEvents) {
  Assembler A(0x1000);
  A.movi(Reg::R0, SysRead);
  A.movi(Reg::R1, 0);
  A.movi(Reg::R2, 0x8000);
  A.movi(Reg::R3, 4);
  A.sys();
  A.hlt();
  EventMachine M(A, ""); // no faults: plain EOF semantics
  ASSERT_EQ(M.Cpu.run(100).Status, RunStatus::Halted);
  EXPECT_EQ(M.Cpu.R[0], 0u);
  EXPECT_TRUE(M.PostMemWrites.empty());
  EXPECT_TRUE(M.PostFileReads.empty());
}

/// gettimeofday whose usec word faults announces only the seconds word
/// that actually landed.
TEST(FaultPaths, GettimeofdayPartialWriteAnnouncesPrefix) {
  Assembler A(0x1000);
  A.movi(Reg::R0, SysGettimeofday);
  A.movi(Reg::R1, 0x8FFC); // tv straddles the end of the data page
  A.sys();
  A.hlt();
  EventMachine M(A, "");
  ASSERT_EQ(M.Cpu.run(100).Status, RunStatus::Halted);
  EXPECT_EQ(M.Cpu.R[0], SysErr);
  ASSERT_EQ(M.PostMemWrites.size(), 1u);
  EXPECT_EQ(M.PostMemWrites[0], std::make_tuple(0x8FFCu, 4u));
}

} // namespace
