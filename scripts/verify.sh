#!/usr/bin/env sh
# Tier-1 verification: configure, build, run the full test suite, then
# smoke-run the dispatcher and slow-down benches (a crash or a hang here
# is a regression even when the unit tests pass).
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure -j

echo "== smoke: sec39_dispatch =="
./build/bench/sec39_dispatch

echo "== smoke: table2_slowdown =="
./build/bench/table2_slowdown

echo "== smoke: sec314_sched (quick soak) =="
# 5 seeds instead of 50; still checks clean exits, zero Memcheck errors,
# and byte-identical trace replay per seed.
VG_SOAK_QUICK=1 ./build/bench/sec314_sched

echo "== smoke: sec54_shadowmem (quick) =="
# Quick mode: every layout x pattern cell runs and BENCH_shadowmem.json is
# written, but the micro cells use fewer ops and the vortex macro
# comparison is skipped.
VG_SEC54_QUICK=1 ./build/bench/sec54_shadowmem \
    --benchmark_min_time=0.05

echo "verify: OK"
