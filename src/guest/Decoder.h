//===-- guest/Decoder.h - VG1 instruction decoder ---------------*- C++ -*-==//
///
/// \file
/// Decodes VG1 machine code into Instr records. Shared by the reference
/// interpreter ("native" execution) and the D&R front end (Phase 1
/// disassembly), so the two cannot disagree about encodings.
///
//===----------------------------------------------------------------------===//
#ifndef VG_GUEST_DECODER_H
#define VG_GUEST_DECODER_H

#include "guest/GuestArch.h"

#include <cstddef>

namespace vg {
namespace vg1 {

/// Maximum encoded length of any VG1 instruction (FMOVI).
constexpr unsigned MaxInstrLen = 10;

/// Decodes one instruction from \p Buf (at most \p Avail valid bytes).
/// Returns false on an undefined opcode or a truncated encoding; \p Out.Len
/// is left 0 in that case.
bool decode(const uint8_t *Buf, size_t Avail, Instr &Out);

} // namespace vg1
} // namespace vg

#endif // VG_GUEST_DECODER_H
