//===-- core/TransTab.cpp - Translation storage ---------------------------==//

#include "core/TransTab.h"

#include "support/Errors.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>

using namespace vg;

TransTab::TransTab(size_t CapacityPow2) {
  assert((CapacityPow2 & (CapacityPow2 - 1)) == 0 &&
         "table capacity must be a power of two");
  Slots.resize(CapacityPow2);
}

size_t TransTab::probeFor(uint32_t Addr) const {
  size_t Mask = Slots.size() - 1;
  size_t Idx = hashAddr(Addr) & Mask;
  size_t FirstTomb = NoSlot;
  for (size_t Step = 0; Step != Slots.size(); ++Step) {
    const Slot &S = Slots[Idx];
    if (S.St == Slot::State::Empty)
      return FirstTomb != NoSlot ? FirstTomb : Idx;
    if (S.St == Slot::State::Tomb) {
      if (FirstTomb == NoSlot)
        FirstTomb = Idx;
    } else if (S.T->Addr == Addr) {
      return Idx;
    }
    Idx = (Idx + 1) & Mask;
  }
  // Wrapped the whole table: at best a tomb is reusable; NoSlot tells the
  // caller there is no home at all (never hand back an unrelated slot).
  return FirstTomb;
}

Translation *TransTab::find(uint32_t Addr) const {
  size_t Idx = probeFor(Addr);
  if (Idx == NoSlot)
    return nullptr;
  const Slot &Sl = Slots[Idx];
  if (Sl.St == Slot::State::Full && Sl.T->Addr == Addr)
    return Sl.T.get();
  return nullptr;
}

Translation *TransTab::lookup(uint32_t Addr) {
  ++S.Lookups;
  Translation *T = find(Addr);
  if (T)
    ++S.Hits;
  return T;
}

Translation *TransTab::insert(std::unique_ptr<Translation> T) {
  // Keep occupancy (counting the incoming translation) at or below 80% so
  // the table can never fill completely and probes stay short.
  if ((Count + 1) * 10 > Slots.size() * 8)
    evictChunk();
  T->Seq = NextSeq++;
  T->Blob.Cookie = T.get();

  size_t Idx = probeFor(T->Addr);
  if (Idx != NoSlot && Slots[Idx].St == Slot::State::Full) {
    // Replacing an existing translation for the same address (probeFor
    // only returns a full slot on an exact address match).
    assert(Slots[Idx].T->Addr == T->Addr && "probe returned unrelated slot");
    eraseSlot(Idx);
  }
  if (Idx == NoSlot) {
    // No free slot on the probe path: make room and try again rather than
    // overwriting whatever lives at slot 0 (the seed's latent bug).
    evictChunk();
    Idx = probeFor(T->Addr);
  }
  if (Idx == NoSlot || Slots[Idx].St == Slot::State::Full)
    fatalError("TransTab::insert: no free slot after eviction");

  Slot &Sl = Slots[Idx];
  Sl.T = std::move(T);
  Sl.St = Slot::State::Full;
  ++Count;
  ++S.Inserts;
  linkChains(Sl.T.get());
  return Sl.T.get();
}

void TransTab::eraseSlot(size_t Idx) {
  Slot &Sl = Slots[Idx];
  assert(Sl.St == Slot::State::Full && "erasing non-full slot");
  unlinkChains(Sl.T.get());
#ifndef NDEBUG
  // A waiter whose From is the translation being retired would later be
  // filled against freed memory; unlinkChains must have cancelled them all.
  for (auto &[Key, W] : Pending)
    for (auto &[From, S2] : W) {
      (void)Key;
      (void)S2;
      assert(From != Sl.T.get() && "stale waiter survives retirement");
    }
#endif
  if (RetireFn)
    RetireFn(std::move(Sl.T)); // epoch-deferred destruction (MT scheduler)
  Sl.T.reset();
  Sl.St = Slot::State::Tomb;
  --Count;
  Gen.fetch_add(1, std::memory_order_release);
}

void TransTab::evictChunk() {
  ++S.EvictionRuns;
  // FIFO: evict exactly the N oldest resident translations (N = 1/8th of
  // the residents). The seed compared Seq <= threshold over the whole
  // table, which over-evicts whenever the threshold partition is uneven.
  struct Victim {
    uint64_t Seq;
    size_t Idx;
  };
  std::vector<Victim> Victims;
  Victims.reserve(Count);
  for (size_t I = 0; I != Slots.size(); ++I)
    if (Slots[I].St == Slot::State::Full)
      Victims.push_back({Slots[I].T->Seq, I});
  if (Victims.empty())
    return;
  size_t N = std::max<size_t>(1, Victims.size() / 8);
  std::nth_element(Victims.begin(), Victims.begin() + (N - 1), Victims.end(),
                   [](const Victim &A, const Victim &B) { return A.Seq < B.Seq; });
  uint64_t Before = S.Evicted;
  for (size_t I = 0; I != N; ++I)
    eraseSlot(Victims[I].Idx);
  S.Evicted += N;
  assert(S.Evicted == Before + N && "eviction run must evict exactly N");
  (void)Before;
  rehash();
}

void TransTab::rehash() {
  // Collect survivors, clear every slot (tombs included), and re-place.
  // Translation pointers are stable across the move, so chain pointers,
  // back-edges, and the dispatcher's fast cache stay valid.
  std::vector<std::unique_ptr<Translation>> Live;
  Live.reserve(Count);
  for (Slot &Sl : Slots) {
    if (Sl.St == Slot::State::Full)
      Live.push_back(std::move(Sl.T));
    Sl.T.reset();
    Sl.St = Slot::State::Empty;
  }
  for (std::unique_ptr<Translation> &T : Live) {
    size_t Idx = probeFor(T->Addr);
    assert(Idx != NoSlot && Slots[Idx].St == Slot::State::Empty &&
           "rehash of a non-full table must find an empty slot");
    Slots[Idx].T = std::move(T);
    Slots[Idx].St = Slot::State::Full;
  }
}

unsigned TransTab::invalidateRange(uint32_t Addr, uint32_t Len) {
  FlushEpoch.fetch_add(1, std::memory_order_release);
  // End as a 64-bit bound: a range reaching the top of the guest space
  // (Addr + Len == 2^32) must cover the final byte 0xFFFFFFFF rather than
  // wrapping to 0 and matching nothing.
  uint64_t End = static_cast<uint64_t>(Addr) + Len;
  unsigned N = 0;
  for (size_t I = 0; I != Slots.size(); ++I) {
    if (Slots[I].St != Slot::State::Full)
      continue;
    for (auto [Lo, Hi] : Slots[I].T->Extents) {
      if (Lo < End && Addr < Hi) {
        eraseSlot(I);
        ++N;
        ++S.Invalidated;
        break;
      }
    }
  }
  return N;
}

void TransTab::invalidateAll() {
  FlushEpoch.fetch_add(1, std::memory_order_release);
  for (size_t I = 0; I != Slots.size(); ++I)
    if (Slots[I].St == Slot::State::Full)
      eraseSlot(I);
  rehash(); // purge the tombs
  assert(Pending.empty() && "waiters must not outlive their translations");
}

//===----------------------------------------------------------------------===//
// The chain graph (Section 3.9)
//===----------------------------------------------------------------------===//

void TransTab::removeWaiter(uint32_t Target, const Translation *From,
                            uint32_t Slot) {
  auto It = Pending.find(Target);
  if (It == Pending.end())
    return;
  auto &W = It->second;
  W.erase(std::remove_if(W.begin(), W.end(),
                         [&](const std::pair<Translation *, uint32_t> &P) {
                           return P.first == From && P.second == Slot;
                         }),
          W.end());
  if (W.empty())
    Pending.erase(It);
}

void TransTab::chainTo(Translation *From, uint32_t Slot, Translation *To) {
  if (!From || !To || Slot >= From->Chain.size())
    return;
  if (From->Chain[Slot].load(std::memory_order_relaxed) == To)
    return;
  assert(!From->Chain[Slot].load(std::memory_order_relaxed) &&
         "chain slot already linked elsewhere");
  if (Slot < From->Blob.ChainTargets.size())
    removeWaiter(From->Blob.ChainTargets[Slot], From, Slot);
  // Release: a shard's chain thunk that acquire-loads the slot must see the
  // successor's fully-initialised blob.
  From->Chain[Slot].store(To, std::memory_order_release);
  To->ChainedFrom.push_back(From);
  ++S.ChainsFilled;
}

void TransTab::linkChains(Translation *T) {
  // Outgoing: link against resident successors, park waiters otherwise.
  const std::vector<uint32_t> &Targets = T->Blob.ChainTargets;
  for (uint32_t Slot = 0; Slot != T->Chain.size(); ++Slot) {
    if (Slot >= Targets.size() || Targets[Slot] == hvm::NoChainTarget)
      continue;
    if (Translation *Succ = find(Targets[Slot]))
      chainTo(T, Slot, Succ);
    else
      Pending[Targets[Slot]].push_back({T, Slot});
  }
  // Incoming: everything that was waiting for this address links up now.
  auto It = Pending.find(T->Addr);
  if (It == Pending.end())
    return;
  std::vector<std::pair<Translation *, uint32_t>> Waiters =
      std::move(It->second);
  Pending.erase(It);
  for (auto &[From, Slot] : Waiters)
    chainTo(From, Slot, T);
}

void TransTab::unlinkChains(Translation *T) {
  // Incoming edges: null every predecessor slot pointing at T and re-park
  // it, so a retranslation of T->Addr relinks the predecessors eagerly.
  for (Translation *P : T->ChainedFrom) {
    for (uint32_t Slot = 0; Slot != P->Chain.size(); ++Slot) {
      if (P->Chain[Slot].load(std::memory_order_relaxed) == T) {
        P->Chain[Slot].store(nullptr, std::memory_order_release);
        ++S.Unchains;
        Pending[T->Addr].push_back({P, Slot});
      }
    }
  }
  T->ChainedFrom.clear();
  // Outgoing edges: drop our back-edges from successors; cancel waiters
  // for slots that never linked.
  const std::vector<uint32_t> &Targets = T->Blob.ChainTargets;
  for (uint32_t Slot = 0; Slot != T->Chain.size(); ++Slot) {
    if (Translation *Succ = T->Chain[Slot].load(std::memory_order_relaxed)) {
      auto &BF = Succ->ChainedFrom;
      auto It = std::find(BF.begin(), BF.end(), T);
      if (It != BF.end())
        BF.erase(It);
      T->Chain[Slot].store(nullptr, std::memory_order_release);
    } else if (Slot < Targets.size() &&
               Targets[Slot] != hvm::NoChainTarget) {
      removeWaiter(Targets[Slot], T, Slot);
    }
  }
}
