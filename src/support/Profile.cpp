//===-- support/Profile.cpp - Dispatcher/translation profiling ------------==//

#include "support/Profile.h"

#include "support/Output.h"

#include <algorithm>
#include <chrono>
#include <vector>

using namespace vg;

namespace {

double now() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

} // namespace

const char *vg::profPhaseName(ProfPhase P) {
  switch (P) {
  case ProfPhase::Disasm:
    return "1 disassembly";
  case ProfPhase::Optimise1:
    return "2 optimisation 1";
  case ProfPhase::Instrument:
    return "3 instrumentation";
  case ProfPhase::Optimise2:
    return "4 optimisation 2";
  case ProfPhase::TreeBuild:
    return "5 tree building";
  case ProfPhase::ISel:
    return "6 isel";
  case ProfPhase::RegAlloc:
    return "7 regalloc";
  case ProfPhase::Encode:
    return "8 assembly";
  case ProfPhase::NumPhases:
    break;
  }
  return "?";
}

Profiler::Timer::Timer(Profiler *P, ProfPhase Ph)
    : P(P), Ph(Ph), T0(P ? now() : 0) {}

Profiler::Timer::~Timer() {
  if (P)
    P->notePhaseSeconds(Ph, now() - T0);
}

void Profiler::notePhaseSeconds(ProfPhase Ph, double Seconds) {
  unsigned I = static_cast<unsigned>(Ph);
  PhaseSeconds[I] += Seconds;
  ++PhaseCounts[I];
}

void Profiler::noteTranslation(uint32_t Addr, uint32_t NumInsns,
                               unsigned Tier, double Seconds) {
  BlockInfo &B = Blocks[Addr];
  B.NumInsns = NumInsns;
  ++B.Translations;
  B.Tier = std::max(B.Tier, Tier);
  B.TranslateSeconds += Seconds;
}

void Profiler::report(OutputSink &Out, const ProfCounters &C,
                      unsigned TopN) const {
  Out.printf("== profile: translation phases ==\n");
  Out.printf("%-18s %10s %12s %12s\n", "phase", "runs", "total(us)",
             "mean(us)");
  double Total = 0;
  for (unsigned I = 0; I != NPhases; ++I) {
    Total += PhaseSeconds[I];
    Out.printf("%-18s %10llu %12.1f %12.3f\n",
               profPhaseName(static_cast<ProfPhase>(I)),
               static_cast<unsigned long long>(PhaseCounts[I]),
               PhaseSeconds[I] * 1e6,
               PhaseCounts[I] ? PhaseSeconds[I] * 1e6 / PhaseCounts[I] : 0.0);
  }
  Out.printf("%-18s %10s %12.1f\n", "total", "", Total * 1e6);

  Out.printf("\n== profile: dispatcher ==\n");
  Out.printf("blocks=%llu dispatcher-entries=%llu chained=%llu\n",
             static_cast<unsigned long long>(C.BlocksDispatched),
             static_cast<unsigned long long>(C.DispatcherEntries),
             static_cast<unsigned long long>(C.ChainedTransfers));
  uint64_t FC = C.FastCacheHits + C.FastCacheMisses;
  Out.printf("fast-cache hits=%llu misses=%llu (%.2f%%)\n",
             static_cast<unsigned long long>(C.FastCacheHits),
             static_cast<unsigned long long>(C.FastCacheMisses),
             FC ? 100.0 * static_cast<double>(C.FastCacheHits) /
                      static_cast<double>(FC)
                : 0.0);
  Out.printf("table lookups=%llu hits=%llu chains-filled=%llu "
             "unchains=%llu\n",
             static_cast<unsigned long long>(C.TableLookups),
             static_cast<unsigned long long>(C.TableHits),
             static_cast<unsigned long long>(C.ChainsFilled),
             static_cast<unsigned long long>(C.Unchains));
  Out.printf("translations=%llu hot-promotions=%llu eviction-runs=%llu "
             "evicted=%llu invalidated=%llu\n",
             static_cast<unsigned long long>(C.Translations),
             static_cast<unsigned long long>(C.HotPromotions),
             static_cast<unsigned long long>(C.EvictionRuns),
             static_cast<unsigned long long>(C.Evicted),
             static_cast<unsigned long long>(C.Invalidated));

  if (C.HasShadow) {
    Out.printf("\n== profile: shadow memory ==\n");
    uint64_t Loads = C.ShadowFastLoads + C.ShadowSlowLoads;
    uint64_t Stores = C.ShadowFastStores + C.ShadowSlowStores;
    Out.printf("probe loads fast=%llu slow=%llu (%.2f%% fast)\n",
               static_cast<unsigned long long>(C.ShadowFastLoads),
               static_cast<unsigned long long>(C.ShadowSlowLoads),
               Loads ? 100.0 * static_cast<double>(C.ShadowFastLoads) /
                           static_cast<double>(Loads)
                     : 0.0);
    Out.printf("probe stores fast=%llu slow=%llu (%.2f%% fast)\n",
               static_cast<unsigned long long>(C.ShadowFastStores),
               static_cast<unsigned long long>(C.ShadowSlowStores),
               Stores ? 100.0 * static_cast<double>(C.ShadowFastStores) /
                            static_cast<double>(Stores)
                      : 0.0);
    uint64_t SC = C.ShadowSecCacheHits + C.ShadowSecCacheMisses;
    Out.printf("secondary cache hits=%llu misses=%llu (%.2f%%)\n",
               static_cast<unsigned long long>(C.ShadowSecCacheHits),
               static_cast<unsigned long long>(C.ShadowSecCacheMisses),
               SC ? 100.0 * static_cast<double>(C.ShadowSecCacheHits) /
                        static_cast<double>(SC)
                  : 0.0);
    Out.printf("chunks materialised=%llu reclaimed=%llu live=%llu "
               "high-water=%llu\n",
               static_cast<unsigned long long>(C.ShadowChunksMaterialised),
               static_cast<unsigned long long>(C.ShadowChunksReclaimed),
               static_cast<unsigned long long>(C.ShadowChunksLive),
               static_cast<unsigned long long>(C.ShadowChunksHighWater));
  }

  Out.printf("\n== profile: scheduler/signals ==\n");
  Out.printf("thread-switches=%llu signals delivered=%llu dropped=%llu\n",
             static_cast<unsigned long long>(C.ThreadSwitches),
             static_cast<unsigned long long>(C.SignalsDelivered),
             static_cast<unsigned long long>(C.SignalsDropped));

  if (C.HasFaults) {
    Out.printf("\n== profile: fault injection ==\n");
    uint64_t Injected = 0;
    for (unsigned I = 0; I != 8; ++I)
      Injected += C.FaultsInjected[I];
    Out.printf("rolls=%llu injected=%llu\n",
               static_cast<unsigned long long>(C.FaultRolls),
               static_cast<unsigned long long>(Injected));
    for (unsigned I = 0; I != 8 && C.FaultNames[I]; ++I)
      Out.printf("  %-12s %llu\n", C.FaultNames[I],
                 static_cast<unsigned long long>(C.FaultsInjected[I]));
  }

  if (C.HasJit) {
    Out.printf("\n== profile: translation service ==\n");
    Out.printf("jit-threads=%llu queue-depth=%llu high-water=%llu\n",
               static_cast<unsigned long long>(C.JitThreads),
               static_cast<unsigned long long>(C.JitQueueDepth),
               static_cast<unsigned long long>(C.QueueHighWater));
    Out.printf("async requests=%llu completed=%llu installed=%llu\n",
               static_cast<unsigned long long>(C.AsyncRequests),
               static_cast<unsigned long long>(C.AsyncCompleted),
               static_cast<unsigned long long>(C.AsyncInstalled));
    Out.printf("discarded epoch=%llu stale=%llu abandoned=%llu\n",
               static_cast<unsigned long long>(C.AsyncDiscardedEpoch),
               static_cast<unsigned long long>(C.AsyncDiscardedStale),
               static_cast<unsigned long long>(C.AsyncAbandoned));
    Out.printf("sync promotions=%llu queue-full-fallbacks=%llu "
               "worker-failures=%llu\n",
               static_cast<unsigned long long>(C.SyncPromotions),
               static_cast<unsigned long long>(C.QueueFullFallbacks),
               static_cast<unsigned long long>(C.WorkerFailures));
    Out.printf("install latency total=%.1fus mean=%.1fus\n",
               C.InstallLatencySeconds * 1e6,
               C.AsyncInstalled ? C.InstallLatencySeconds * 1e6 /
                                      static_cast<double>(C.AsyncInstalled)
                                : 0.0);
    Out.printf("guest stall: inline-promotion=%.1fus enqueue=%.1fus\n",
               C.SyncPromoStallSeconds * 1e6, C.EnqueueSeconds * 1e6);
  }

  if (C.HasTraces) {
    Out.printf("\n== profile: trace tier ==\n");
    Out.printf("requests=%llu traces-formed=%llu aborts=%llu\n",
               static_cast<unsigned long long>(C.TraceRequests),
               static_cast<unsigned long long>(C.TracesFormed),
               static_cast<unsigned long long>(C.TraceAborts));
    Out.printf("trace-execs=%llu side-exits=%llu (%.2f%% side-exit rate)\n",
               static_cast<unsigned long long>(C.TraceExecs),
               static_cast<unsigned long long>(C.TraceSideExits),
               C.TraceExecs ? 100.0 * static_cast<double>(C.TraceSideExits) /
                                  static_cast<double>(C.TraceExecs)
                            : 0.0);
    Out.printf("dead-flag-puts-eliminated=%llu probes-csed=%llu\n",
               static_cast<unsigned long long>(C.TraceDeadFlagPuts),
               static_cast<unsigned long long>(C.TraceProbesCSEd));
  }

  if (C.HasSched) {
    Out.printf("\n== profile: sharded scheduler ==\n");
    Out.printf("sched-threads=%llu quanta=%llu\n",
               static_cast<unsigned long long>(C.SchedThreads),
               static_cast<unsigned long long>(C.SchedQuanta));
    Out.printf("run-queue pushes=%llu pops=%llu waits=%llu\n",
               static_cast<unsigned long long>(C.RunQueuePushes),
               static_cast<unsigned long long>(C.RunQueuePops),
               static_cast<unsigned long long>(C.RunQueueWaits));
    Out.printf("world-lock acquisitions=%llu (%.1f blocks/acquisition)\n",
               static_cast<unsigned long long>(C.WorldLockAcquisitions),
               C.WorldLockAcquisitions
                   ? static_cast<double>(C.BlocksDispatched) /
                         static_cast<double>(C.WorldLockAcquisitions)
                   : 0.0);
    Out.printf("translations retired=%llu limbo-high-water=%llu\n",
               static_cast<unsigned long long>(C.TranslationsRetired),
               static_cast<unsigned long long>(C.LimboHighWater));
  }

  if (C.HasTransCache) {
    Out.printf("\n== profile: translation cache ==\n");
    uint64_t Lookups = C.CacheHits + C.CacheMisses + C.CacheRejects;
    Out.printf("lookups=%llu hits=%llu misses=%llu rejects=%llu "
               "(%.2f%% hit)\n",
               static_cast<unsigned long long>(Lookups),
               static_cast<unsigned long long>(C.CacheHits),
               static_cast<unsigned long long>(C.CacheMisses),
               static_cast<unsigned long long>(C.CacheRejects),
               Lookups ? 100.0 * static_cast<double>(C.CacheHits) /
                             static_cast<double>(Lookups)
                       : 0.0);
    Out.printf("writes=%llu evicted-files=%llu dir-bytes=%llu\n",
               static_cast<unsigned long long>(C.CacheWrites),
               static_cast<unsigned long long>(C.CacheEvictedFiles),
               static_cast<unsigned long long>(C.CacheDirBytes));
    Out.printf("load total=%.1fus mean=%.1fus store total=%.1fus "
               "mean=%.1fus\n",
               C.CacheLoadSeconds * 1e6,
               C.CacheHits ? C.CacheLoadSeconds * 1e6 /
                                 static_cast<double>(C.CacheHits)
                           : 0.0,
               C.CacheStoreSeconds * 1e6,
               C.CacheWrites ? C.CacheStoreSeconds * 1e6 /
                                   static_cast<double>(C.CacheWrites)
                             : 0.0);
  }

  if (C.HasTransServer) {
    Out.printf("\n== profile: translation server ==\n");
    Out.printf("server requests=%llu hits=%llu misses=%llu rejects=%llu "
               "(%.2f%% hit)\n",
               static_cast<unsigned long long>(C.ServerRequests),
               static_cast<unsigned long long>(C.ServerHits),
               static_cast<unsigned long long>(C.ServerMisses),
               static_cast<unsigned long long>(C.ServerRejects),
               C.ServerRequests
                   ? 100.0 * static_cast<double>(C.ServerHits) /
                         static_cast<double>(C.ServerRequests)
                   : 0.0);
    Out.printf("server timeouts=%llu retries=%llu fallbacks=%llu "
               "writes=%llu alive-at-exit=%s\n",
               static_cast<unsigned long long>(C.ServerTimeouts),
               static_cast<unsigned long long>(C.ServerRetries),
               static_cast<unsigned long long>(C.ServerFallbacks),
               static_cast<unsigned long long>(C.ServerWrites),
               C.ServerAlive ? "yes" : "no");
    Out.printf("server bytes fetched=%llu sent=%llu fetch total=%.1fus "
               "mean=%.1fus\n",
               static_cast<unsigned long long>(C.ServerBytesFetched),
               static_cast<unsigned long long>(C.ServerBytesSent),
               C.ServerFetchSeconds * 1e6,
               C.ServerHits ? C.ServerFetchSeconds * 1e6 /
                                  static_cast<double>(C.ServerHits)
                            : 0.0);
  }

  if (C.HasTrace) {
    Out.printf("\n== profile: event trace ==\n");
    Out.printf("recorded=%llu dropped=%llu syscalls=%llu signal-records="
               "%llu\n",
               static_cast<unsigned long long>(C.TraceRecorded),
               static_cast<unsigned long long>(C.TraceDropped),
               static_cast<unsigned long long>(C.TraceSyscalls),
               static_cast<unsigned long long>(C.TraceSignals));
  }

  Out.printf("\n== profile: hot blocks (top %u by executions) ==\n", TopN);
  Out.printf("%4s %-10s %12s %6s %5s %6s %12s\n", "rank", "addr", "execs",
             "insns", "tier", "xlate", "xlate(us)");
  std::vector<std::pair<uint32_t, const BlockInfo *>> Ranked;
  Ranked.reserve(Blocks.size());
  for (const auto &[Addr, B] : Blocks)
    Ranked.push_back({Addr, &B});
  std::sort(Ranked.begin(), Ranked.end(),
            [](const auto &A, const auto &B) {
              return A.second->Execs > B.second->Execs;
            });
  unsigned N = std::min<unsigned>(TopN, static_cast<unsigned>(Ranked.size()));
  for (unsigned I = 0; I != N; ++I) {
    const BlockInfo &B = *Ranked[I].second;
    Out.printf("%4u 0x%08X %12llu %6u %5u %6u %12.1f\n", I + 1,
               Ranked[I].first, static_cast<unsigned long long>(B.Execs),
               B.NumInsns, B.Tier, B.Translations, B.TranslateSeconds * 1e6);
  }
  Out.printf("(%zu blocks profiled)\n", Blocks.size());
}
