//===-- tools/TaintGrind.h - Taint tracker ----------------------*- C++ -*-==//
///
/// \file
/// A TaintCheck-style tool (paper Section 1.2): tracks which byte values
/// are *tainted* (from an untrusted source, or derived from tainted
/// values) and reports dangerous uses:
///
///   TaintedJump     an indirect jump/call whose target is tainted —
///                   TaintCheck's exploit-detection signal
///   TaintedControl  a conditional branch on tainted data (optional,
///                   --taint-branches=yes)
///   TaintedSyscall  a tainted value passed to the kernel
///
/// Sources: all bytes read from stdin and from files whose name starts
/// with "tainted:", plus the TAINT client request. The MAKE_UNTAINTED
/// request models sanitisation.
///
/// Shadow plumbing is a second, independent instance of the shadow-value
/// machinery: taint registers live in the same first-class shadow slots
/// (only one tool runs at a time), taint memory in a page-hashed map, and
/// propagation is pure UifU — one taint bit per byte, like TaintCheck,
/// which is why such tools run faster than Memcheck (paper Section 5.4).
///
//===----------------------------------------------------------------------===//
#ifndef VG_TOOLS_TAINTGRIND_H
#define VG_TOOLS_TAINTGRIND_H

#include "core/ClientRequests.h"
#include "core/Core.h"
#include "core/Tool.h"

#include <unordered_map>

namespace vg {

/// TaintGrind's client-request namespace tag.
constexpr uint32_t TgTag = vgToolTag('T', 'G');

/// TaintGrind's client requests ('T','G' namespace).
enum TaintRequest : uint32_t {
  TgTaint = vgRequest(TgTag, 1),     ///< (addr, len)
  TgUntaint = vgRequest(TgTag, 2),   ///< (addr, len)
  TgIsTainted = vgRequest(TgTag, 3), ///< (addr, len) -> nonzero if any
};

/// Pre-namespacing flat codes (CrToolBase+0x100..). Still accepted as
/// aliases in handleClientRequest.
enum LegacyTaintRequest : uint32_t {
  TgLegacyTaint = CrToolBase + 0x100,
  TgLegacyUntaint = CrToolBase + 0x101,
  TgLegacyIsTainted = CrToolBase + 0x102,
};

/// Sparse byte-granular taint plane (default: untainted).
class TaintMap {
public:
  static constexpr uint32_t PageBits = 12;
  static constexpr uint32_t PageSize = 1u << PageBits;

  void set(uint32_t Addr, uint32_t Len, bool Tainted);
  bool any(uint32_t Addr, uint32_t Len) const;
  uint64_t load(uint32_t Addr, uint32_t Size) const; ///< mask per byte
  void store(uint32_t Addr, uint32_t Size, uint64_t Mask);

private:
  std::unordered_map<uint32_t, std::array<uint8_t, PageSize>> Pages;
};

class TaintGrind : public Tool {
public:
  const char *name() const override { return "taintgrind"; }
  void registerOptions(OptionRegistry &Opts) override;
  void init(Core &C) override;
  void instrument(ir::IRSB &SB) override;
  void fini(int ExitCode) override;
  bool handleClientRequest(int Tid, uint32_t Code, const uint32_t Args[4],
                           uint32_t &Result) override;

  TaintMap &taint() { return TM; }

  static uint64_t helperLoadT(void *Env, uint64_t Addr, uint64_t Size,
                              uint64_t, uint64_t);
  static uint64_t helperStoreT(void *Env, uint64_t Addr, uint64_t Mask,
                               uint64_t Size, uint64_t);
  static uint64_t helperTaintedJump(void *Env, uint64_t PC, uint64_t,
                                    uint64_t, uint64_t);
  static uint64_t helperTaintedBranch(void *Env, uint64_t PC, uint64_t,
                                      uint64_t, uint64_t);

private:
  void report(const char *Kind, const std::string &Msg, uint32_t PC);

  Core *C = nullptr;
  TaintMap TM;
  bool CheckBranches = false;
  uint64_t TaintedInputBytes = 0;
};

} // namespace vg

#endif // VG_TOOLS_TAINTGRIND_H
