//===-- kernel/RunQueue.h - Runnable-thread queue for shards ----*- C++ -*-==//
///
/// \file
/// The sharded scheduler's run queue (DESIGN section 14): guest threads
/// that are runnable but not currently executing on a shard wait here.
/// Shards pop blocking — a futex-style park on a condition variable — and
/// pushes wake exactly one parked shard. shutdown() wakes everyone and
/// makes every future pop return Shutdown, which is how the world stops:
/// process exit, a fatal signal, and the block-budget ceiling all funnel
/// into one idempotent call.
///
/// The queue orders nothing beyond FIFO fairness and promises no
/// scheduling determinism — that is the point of --sched-threads=N. The
/// serialised N=1 scheduler never constructs one.
///
//===----------------------------------------------------------------------===//
#ifndef VG_KERNEL_RUNQUEUE_H
#define VG_KERNEL_RUNQUEUE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

namespace vg {

class RunQueue {
public:
  static constexpr int Shutdown = -1;

  /// Enqueues a runnable guest thread and wakes one parked shard. A tid
  /// must never be queued twice (the owner invariant: a runnable thread is
  /// either queued or held by exactly one shard).
  void push(int Tid) {
    {
      std::lock_guard<std::mutex> L(Mu);
      if (Down)
        return; // world is stopping; the tid's state no longer matters
      Q.push_back(Tid);
      ++Pushes;
    }
    Cv.notify_one();
  }

  /// Blocks until a tid is available (or the queue is shut down, returning
  /// Shutdown forever after).
  int pop() {
    std::unique_lock<std::mutex> L(Mu);
    ++Pops;
    if (Q.empty() && !Down) {
      ++Waits;
      Cv.wait(L, [&] { return !Q.empty() || Down; });
    }
    if (Down)
      return Shutdown;
    int Tid = Q.front();
    Q.pop_front();
    return Tid;
  }

  /// Stops the world: every parked shard wakes with Shutdown and every
  /// later pop returns it immediately. Idempotent; callable from any
  /// thread.
  void shutdown() {
    {
      std::lock_guard<std::mutex> L(Mu);
      Down = true;
      Q.clear();
    }
    Cv.notify_all();
  }

  // Profile counters (stable once all shards have joined).
  uint64_t pushes() const { return Pushes; }
  uint64_t pops() const { return Pops; }
  uint64_t waits() const { return Waits; }

private:
  std::mutex Mu;
  std::condition_variable Cv;
  std::deque<int> Q;
  bool Down = false;
  uint64_t Pushes = 0;
  uint64_t Pops = 0;
  uint64_t Waits = 0; ///< pops that had to park
};

} // namespace vg

#endif // VG_KERNEL_RUNQUEUE_H
