//===-- core/DispatchLoop.h - Dispatch and scheduling engine ----*- C++ -*-==//
///
/// \file
/// The dispatcher/scheduler engine (Sections 3.9 and 3.14), extracted from
/// the Core monolith. It owns everything between "a thread is runnable"
/// and "a translation's host code is executing":
///
///   - the serial scheduler (the big lock of Section 3.14: round-robin,
///     100k-block quanta) and its dispatch loop;
///   - the sharded scheduler (--sched-threads=N): shard contexts, the run
///     queue, the world lock, and the QSBR epoch/limbo reclamation of
///     retired translations;
///   - the dispatcher fast caches (one global for the serial path, one per
///     shard) and the lock-free chain-resolve thunks;
///   - hot-tier promotion and trace-formation gating (the policy decisions;
///     translation itself stays in the TranslationService);
///   - call-into-guest (the mechanism replacement and wrapping functions
///     use to run the code they replaced).
///
/// The lock-free paths — Exec.run, the chain thunks, the per-shard fast
/// caches — are exactly the monolith's; the extraction moved them without
/// changing a decision. Slow-path work (signals, client requests, faults,
/// redirects) is delegated to the sibling engines; run-state flags
/// (ProcessExited, FatalSignal) and configuration stay on Core, which this
/// engine reaches through its back-reference.
///
//===----------------------------------------------------------------------===//
#ifndef VG_CORE_DISPATCHLOOP_H
#define VG_CORE_DISPATCHLOOP_H

#include "core/Core.h"
#include "kernel/RunQueue.h"

#include <mutex>

namespace vg {

class DispatchLoop {
public:
  explicit DispatchLoop(Core &C) : C(C), FastCache(FastCacheSize) {}

  /// Runs the client to completion (or until \p MaxBlocks translations
  /// have been dispatched): the serial scheduler, or the sharded one when
  /// --sched-threads > 1. Ends in Core::finishRun.
  CoreExit run(uint64_t MaxBlocks);

  /// Dispatches blocks for \p TS until the quantum is spent, the process
  /// exits, a fatal signal lands, the thread stops being runnable, or the
  /// PC reaches \p StopPC (callGuest's sentinel).
  void dispatchLoop(ThreadState &TS, uint64_t &Quantum, uint32_t StopPC);

  /// Calls back into guest code from host context (replacement/wrapping).
  /// Returns the callee's r0.
  uint32_t callGuest(ThreadState &TS, uint32_t Addr,
                     const std::vector<uint32_t> &Args);

  /// True while the sharded scheduler is running.
  bool isParallel() const { return RunQ != nullptr; }

  /// Funnels every "the run is over" condition (process exit, fatal
  /// signal, block budget) into the run queue's shutdown. No-op when the
  /// serialised scheduler is running.
  void stopWorld();

  /// A newly spawned thread must enter the run queue while parallel (the
  /// serial scheduler's round-robin scan finds it by polling instead).
  void threadSpawned(int Tid);

  /// Yield request: the serial scheduler's flag plus the thread's own bit.
  void requestYield(int Tid);

  /// Async promotion install hook: surgically repair the serial fast
  /// cache's line when only the replaced translation died.
  void promotionInstalled(Translation *T, uint64_t GenBefore);

  /// The --profile report (reads the dispatch/scheduler counters this
  /// engine owns alongside Core's stats).
  void dumpProfile();

private:
  struct FastCacheEntry {
    uint32_t Addr = ~0u;
    Translation *T = nullptr;
  };
  static constexpr size_t FastCacheSize = 1u << 13; // direct-mapped

  //===--- sharded scheduler (--sched-threads=N, DESIGN section 14) -------===//
  /// One shard: a host thread that pops runnable guest threads from the run
  /// queue and executes them. Everything a shard touches without the world
  /// lock lives here — its own dispatcher fast cache, its own counters for
  /// the lock-free chain path, and its QSBR epoch announcement.
  struct ShardCtx {
    Core *C = nullptr;
    DispatchLoop *D = nullptr;
    unsigned Index = 0;
    /// The shard's snapshot of GlobalEpoch at its last quiescent point
    /// (a moment it provably held no translation pointers); ~0 while
    /// parked in the run queue. reclaimLimbo() frees a retired
    /// translation once every shard has announced an epoch at or past
    /// its retirement stamp.
    std::atomic<uint64_t> LocalEpoch{~0ull};
    std::vector<FastCacheEntry> FastCache; ///< private, never shared
    uint64_t FastCacheGen = 0;
    /// Counters bumped on the lock-free paths; merged into Core::Stats
    /// after the shards join.
    uint64_t ChainedTransfers = 0;
    uint64_t TraceExecs = 0;
    uint64_t TraceSideExits = 0;
    // Profile counters.
    uint64_t Quanta = 0;                ///< run-queue pops that ran a quantum
    uint64_t WorldLockAcquisitions = 0; ///< block-boundary lock round-trips
  };

  /// run() when SchedThreads > 1: spawns the shards, lets them race, joins
  /// them, merges their stats, and finishes exactly like the serial path.
  CoreExit runParallel(uint64_t MaxBlocks);
  void shardMain(ShardCtx &S);
  /// One scheduling quantum of \p TS on shard \p S: the MT twin of
  /// dispatchLoop. Block-boundary work (translate, chain, promote, signals,
  /// syscalls) runs under WorldMu; Exec.run and the chain thunk run
  /// lock-free.
  void dispatchLoopMT(ShardCtx &S, ThreadState &TS);
  /// findOrTranslate against the shard's private fast cache. WorldMu held.
  Translation *findOrTranslateMT(ShardCtx &S, uint32_t PC);
  static const hvm::CodeBlob *chainResolveThunkMT(void *User, void *Cookie,
                                                  uint32_t Slot);
  /// TransTab retire hook while parallel: dead translations park in Limbo
  /// with an epoch stamp instead of being freed (a shard may still be
  /// executing their code). WorldMu held by all callers.
  void retireTranslation(std::unique_ptr<Translation> T);
  /// Frees limbo entries every shard has quiesced past. WorldMu held.
  void reclaimLimbo();

  Translation *findOrTranslate(uint32_t PC);
  /// Inline hot-tier promotion: retranslate \p PC as a superblock,
  /// stalling the guest (the only mode at --jit-threads=0, and the
  /// fallback rung when the async queue is full). Replaces the old
  /// translation (predecessor chain slots relink eagerly via TransTab).
  Translation *promoteHot(uint32_t PC);
  /// Walks the chain graph from \p Head picking the dominant successor at
  /// each step. Returns a spec with fewer than 2 entries when no biased
  /// path exists (caller backs off via TraceRetryAt).
  TraceSpec selectTracePath(Translation *Head);
  /// Block-boundary fault injection (sigstorm / ttflush). Called at the
  /// top of the dispatch loop.
  void injectBoundaryFaults(ThreadState &TS);

  static const hvm::CodeBlob *chainResolveThunk(void *User, void *Cookie,
                                                uint32_t Slot);

  Core &C;

  bool YieldRequested = false;

  // Sharded-scheduler state (inert at --sched-threads=1: RunQ stays null
  // and nothing else is touched).
  std::mutex WorldMu;             ///< the MT big lock: every slow path
  std::unique_ptr<RunQueue> RunQ; ///< non-null only while runParallel runs
  std::vector<std::unique_ptr<ShardCtx>> Shards;
  std::atomic<uint64_t> GlobalEpoch{0};
  /// Retired translations awaiting their grace period, stamped with the
  /// epoch current at retirement. Guarded by WorldMu.
  std::vector<std::pair<uint64_t, std::unique_ptr<Translation>>> Limbo;
  uint64_t TranslationsRetired = 0;
  uint64_t LimboHighWater = 0;
  /// MT dispatched-block clock: budget accounting and trace timestamps.
  std::atomic<uint64_t> GlobalBlockClock{0};
  uint64_t MaxBlocksMT = ~0ull;
  /// Per-guest-thread yield requests. The serial scheduler keeps using the
  /// single YieldRequested flag (same decisions as ever); shards each honor
  /// their own bit.
  std::array<std::atomic<bool>, Core::MaxThreads> YieldFlags{};
  /// Run-queue counters saved before RunQ is destroyed (profile output).
  uint64_t RunQPushes = 0, RunQPops = 0, RunQWaits = 0;

  std::vector<FastCacheEntry> FastCache; ///< serial dispatcher's cache
  uint64_t FastCacheGen = 0;

  /// Sentinel return address used by callGuest.
  static constexpr uint32_t ReturnSentinel = 0xFFFF0000;
};

} // namespace vg

#endif // VG_CORE_DISPATCHLOOP_H
