//===-- tools/Cachegrind.cpp - Cache profiler -----------------------------==//

#include "tools/Cachegrind.h"

#include <algorithm>

using namespace vg;
using namespace vg::ir;

//===----------------------------------------------------------------------===//
// The cache model substrate
//===----------------------------------------------------------------------===//

CacheModel::CacheModel(uint32_t SizeBytes, uint32_t Assoc, uint32_t LineSz)
    : LineSize(LineSz), NumSets(SizeBytes / (Assoc * LineSz)), Assoc(Assoc) {
  assert(NumSets > 0 && (NumSets & (NumSets - 1)) == 0 &&
         "cache geometry must give a power-of-two set count");
  Sets.assign(NumSets, std::vector<uint32_t>(Assoc, ~0u));
}

bool CacheModel::touchLine(uint32_t LineAddr) {
  uint32_t SetIdx = (LineAddr / LineSize) & (NumSets - 1);
  std::vector<uint32_t> &Set = Sets[SetIdx];
  auto It = std::find(Set.begin(), Set.end(), LineAddr);
  if (It != Set.end()) {
    // Hit: move to MRU position.
    std::rotate(Set.begin(), It, It + 1);
    return true;
  }
  // Miss: evict LRU.
  std::rotate(Set.begin(), Set.end() - 1, Set.end());
  Set.front() = LineAddr;
  return false;
}

bool CacheModel::access(uint32_t Addr, uint32_t Len) {
  uint32_t First = Addr & ~(LineSize - 1);
  uint32_t Last = (Addr + (Len ? Len - 1 : 0)) & ~(LineSize - 1);
  bool Hit = touchLine(First);
  if (Last != First)
    Hit = touchLine(Last) && Hit;
  return Hit;
}

//===----------------------------------------------------------------------===//
// The tool
//===----------------------------------------------------------------------===//

namespace {

Cachegrind *toolOf(void *Env) {
  return static_cast<Cachegrind *>(static_cast<ExecContext *>(Env)->Tool);
}

} // namespace

uint64_t Cachegrind::helperInstr(void *Env, uint64_t PC, uint64_t Size,
                                 uint64_t, uint64_t) {
  toolOf(Env)->simInstr(static_cast<uint32_t>(PC),
                        static_cast<uint32_t>(Size));
  return 0;
}

uint64_t Cachegrind::helperRead(void *Env, uint64_t Addr, uint64_t Size,
                                uint64_t PC, uint64_t) {
  toolOf(Env)->simData(static_cast<uint32_t>(PC),
                       static_cast<uint32_t>(Addr),
                       static_cast<uint32_t>(Size), /*Write=*/false);
  return 0;
}

uint64_t Cachegrind::helperWrite(void *Env, uint64_t Addr, uint64_t Size,
                                 uint64_t PC, uint64_t) {
  toolOf(Env)->simData(static_cast<uint32_t>(PC),
                       static_cast<uint32_t>(Addr),
                       static_cast<uint32_t>(Size), /*Write=*/true);
  return 0;
}

namespace {
const Callee InstrCallee = {"cg_instr", &Cachegrind::helperInstr, 0};
const Callee ReadCallee = {"cg_read", &Cachegrind::helperRead, 0};
const Callee WriteCallee = {"cg_write", &Cachegrind::helperWrite, 0};
const ir::CalleeRegistrar RegisterCallees{&InstrCallee, &ReadCallee,
                                         &WriteCallee};
} // namespace

Cachegrind::Cachegrind() = default;

void Cachegrind::registerOptions(OptionRegistry &Opts) {
  Opts.addOption("I1", "32768,8,64", "I1 cache: size,assoc,linesize");
  Opts.addOption("D1", "32768,8,64", "D1 cache: size,assoc,linesize");
  Opts.addOption("LL", "1048576,16,64", "LL cache: size,assoc,linesize");
}

void Cachegrind::init(Core &Core_) {
  C = &Core_;
  auto Parse = [&](const char *Name) {
    std::string S = C->options().getString(Name);
    uint32_t Sz = 32768, As = 8, Ln = 64;
    std::sscanf(S.c_str(), "%u,%u,%u", &Sz, &As, &Ln);
    return std::make_unique<CacheModel>(Sz, As, Ln);
  };
  I1 = Parse("I1");
  D1 = Parse("D1");
  LL = Parse("LL");
}

void Cachegrind::simInstr(uint32_t PC, uint32_t Size) {
  CacheLineCounts &L = PerPC[PC];
  ++L.Ir;
  ++Totals.Ir;
  if (!I1->access(PC, Size)) {
    ++L.I1mr;
    ++Totals.I1mr;
    if (!LL->access(PC, Size)) {
      ++L.ILmr;
      ++Totals.ILmr;
    }
  }
}

void Cachegrind::simData(uint32_t PC, uint32_t Addr, uint32_t Size,
                         bool Write) {
  CacheLineCounts &L = PerPC[PC];
  if (Write) {
    ++L.Dw;
    ++Totals.Dw;
    if (!D1->access(Addr, Size)) {
      ++L.D1mw;
      ++Totals.D1mw;
      if (!LL->access(Addr, Size)) {
        ++L.DLmw;
        ++Totals.DLmw;
      }
    }
  } else {
    ++L.Dr;
    ++Totals.Dr;
    if (!D1->access(Addr, Size)) {
      ++L.D1mr;
      ++Totals.D1mr;
      if (!LL->access(Addr, Size)) {
        ++L.DLmr;
        ++Totals.DLmr;
      }
    }
  }
}

void Cachegrind::instrument(IRSB &SB) {
  std::vector<Stmt *> Old;
  Old.swap(SB.stmts());
  uint32_t CurPC = 0;
  for (Stmt *S : Old) {
    switch (S->Kind) {
    case StmtKind::IMark:
      CurPC = S->IAddr;
      SB.append(S);
      SB.dirty(&InstrCallee, {SB.constI64(S->IAddr), SB.constI64(S->ILen)});
      continue;
    case StmtKind::WrTmp:
      if (S->Data->Kind == ExprKind::Load) {
        SB.dirty(&ReadCallee,
                 {S->Data->Arg[0],
                  SB.constI64(tySizeBits(S->Data->T) / 8),
                  SB.constI64(CurPC)});
      }
      SB.append(S);
      continue;
    case StmtKind::Store:
      SB.dirty(&WriteCallee, {S->Addr, SB.constI64(tySizeBits(S->Data->T) / 8),
                              SB.constI64(CurPC)});
      SB.append(S);
      continue;
    default:
      SB.append(S);
      continue;
    }
  }
}

void Cachegrind::fini(int ExitCode) {
  OutputSink &Out = C->output();
  auto Pct = [](uint64_t Miss, uint64_t Total) {
    return Total ? 100.0 * static_cast<double>(Miss) /
                       static_cast<double>(Total)
                 : 0.0;
  };
  Out.printf("==cachegrind== I   refs:      %llu\n",
             static_cast<unsigned long long>(Totals.Ir));
  Out.printf("==cachegrind== I1  miss rate: %.2f%%\n",
             Pct(Totals.I1mr, Totals.Ir));
  Out.printf("==cachegrind== D   refs:      %llu (%llu rd + %llu wr)\n",
             static_cast<unsigned long long>(Totals.Dr + Totals.Dw),
             static_cast<unsigned long long>(Totals.Dr),
             static_cast<unsigned long long>(Totals.Dw));
  Out.printf("==cachegrind== D1  miss rate: %.2f%%\n",
             Pct(Totals.D1mr + Totals.D1mw, Totals.Dr + Totals.Dw));
  Out.printf("==cachegrind== LL  misses:    %llu\n",
             static_cast<unsigned long long>(Totals.ILmr + Totals.DLmr +
                                             Totals.DLmw));
  // Top 5 instruction addresses by data misses (the annotation view).
  std::vector<std::pair<uint64_t, uint32_t>> Hot;
  for (const auto &[PC, L] : PerPC)
    if (uint64_t M = L.D1mr + L.D1mw)
      Hot.push_back({M, PC});
  std::sort(Hot.rbegin(), Hot.rend());
  for (size_t I = 0; I != Hot.size() && I != 5; ++I)
    Out.printf("==cachegrind==   hot: 0x%08X  D1 misses %llu\n",
               Hot[I].second, static_cast<unsigned long long>(Hot[I].first));
}
