//===-- ir/IR.h - The architecture-neutral D&R IR ---------------*- C++ -*-==//
///
/// \file
/// Valgrind's single-static-assignment-flavoured intermediate representation
/// (Section 3.6), reproduced. The unit of translation is a superblock
/// (IRSB): a single-entry, multiple-exit list of statements. Statements are
/// operations with side effects (register writes via Put, memory stores,
/// assignments to temporaries, dirty helper calls, guarded exits);
/// expressions are pure values (constants, temporary reads, register reads
/// via Get, loads, arithmetic, conditional ITE, clean helper calls).
///
/// Expressions may be arbitrary trees ("tree IR") or flattened so that all
/// operands are temporaries or constants ("flat IR"); tools always see flat
/// IR (Section 3.7, Phase 3). The IR is load/store and RISC-like: complex
/// guest instructions become multiple operations, exposing intermediate
/// values (such as scaled-index address arithmetic) to instrumentation.
///
/// All nodes are arena-allocated inside their owning IRSB, so tools freely
/// share subexpressions when instrumenting without ownership bookkeeping —
/// mirroring Valgrind's single-IRSB allocation discipline.
///
//===----------------------------------------------------------------------===//
#ifndef VG_IR_IR_H
#define VG_IR_IR_H

#include "support/Errors.h"

#include <cstdint>
#include <deque>
#include <initializer_list>
#include <string>
#include <vector>

namespace vg {
namespace ir {

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

/// Value types. I1 is the type of guards and comparison results.
enum class Ty : uint8_t { I1, I8, I16, I32, I64, F64 };

const char *tyName(Ty T);
unsigned tySizeBits(Ty T);

//===----------------------------------------------------------------------===//
// Primitive operations
//
// The X-macro keeps the op list, the printer, the typechecker and the
// evaluator in sync. Grouped as in VEX: integer ALU per size, widening
// multiplies, comparisons, conversions, FP, and packed-SIMD lanes.
//===----------------------------------------------------------------------===//

// VG_IROP(name, result-type, nargs, arg1-type, arg2-type)
#define VG_IROP_LIST(X)                                                        \
  /* --- integer ALU, I8 --- */                                                \
  X(Add8, I8, 2, I8, I8)                                                       \
  X(Sub8, I8, 2, I8, I8)                                                       \
  X(Mul8, I8, 2, I8, I8)                                                       \
  X(And8, I8, 2, I8, I8)                                                       \
  X(Or8, I8, 2, I8, I8)                                                        \
  X(Xor8, I8, 2, I8, I8)                                                       \
  X(Shl8, I8, 2, I8, I8)                                                       \
  X(Shr8, I8, 2, I8, I8)                                                       \
  X(Sar8, I8, 2, I8, I8)                                                       \
  X(Not8, I8, 1, I8, I8)                                                       \
  X(Neg8, I8, 1, I8, I8)                                                       \
  /* --- integer ALU, I16 --- */                                               \
  X(Add16, I16, 2, I16, I16)                                                   \
  X(Sub16, I16, 2, I16, I16)                                                   \
  X(Mul16, I16, 2, I16, I16)                                                   \
  X(And16, I16, 2, I16, I16)                                                   \
  X(Or16, I16, 2, I16, I16)                                                    \
  X(Xor16, I16, 2, I16, I16)                                                   \
  X(Shl16, I16, 2, I16, I16)                                                   \
  X(Shr16, I16, 2, I16, I16)                                                   \
  X(Sar16, I16, 2, I16, I16)                                                   \
  X(Not16, I16, 1, I16, I16)                                                   \
  X(Neg16, I16, 1, I16, I16)                                                   \
  /* --- integer ALU, I32 --- */                                               \
  X(Add32, I32, 2, I32, I32)                                                   \
  X(Sub32, I32, 2, I32, I32)                                                   \
  X(Mul32, I32, 2, I32, I32)                                                   \
  X(And32, I32, 2, I32, I32)                                                   \
  X(Or32, I32, 2, I32, I32)                                                    \
  X(Xor32, I32, 2, I32, I32)                                                   \
  X(Shl32, I32, 2, I32, I8)                                                    \
  X(Shr32, I32, 2, I32, I8)                                                    \
  X(Sar32, I32, 2, I32, I8)                                                    \
  X(DivU32, I32, 2, I32, I32)                                                  \
  X(DivS32, I32, 2, I32, I32)                                                  \
  X(Not32, I32, 1, I32, I32)                                                   \
  X(Neg32, I32, 1, I32, I32)                                                   \
  /* --- integer ALU, I64 --- */                                               \
  X(Add64, I64, 2, I64, I64)                                                   \
  X(Sub64, I64, 2, I64, I64)                                                   \
  X(Mul64, I64, 2, I64, I64)                                                   \
  X(And64, I64, 2, I64, I64)                                                   \
  X(Or64, I64, 2, I64, I64)                                                    \
  X(Xor64, I64, 2, I64, I64)                                                   \
  X(Shl64, I64, 2, I64, I8)                                                    \
  X(Shr64, I64, 2, I64, I8)                                                    \
  X(Sar64, I64, 2, I64, I8)                                                    \
  X(Not64, I64, 1, I64, I64)                                                   \
  X(Neg64, I64, 1, I64, I64)                                                   \
  /* --- widening multiplies --- */                                            \
  X(MullU32, I64, 2, I32, I32)                                                 \
  X(MullS32, I64, 2, I32, I32)                                                 \
  /* --- comparisons (result I1) --- */                                        \
  X(CmpEQ8, I1, 2, I8, I8)                                                     \
  X(CmpNE8, I1, 2, I8, I8)                                                     \
  X(CmpEQ16, I1, 2, I16, I16)                                                  \
  X(CmpNE16, I1, 2, I16, I16)                                                  \
  X(CmpEQ32, I1, 2, I32, I32)                                                  \
  X(CmpNE32, I1, 2, I32, I32)                                                  \
  X(CmpEQ64, I1, 2, I64, I64)                                                  \
  X(CmpNE64, I1, 2, I64, I64)                                                  \
  X(CmpLT32S, I1, 2, I32, I32)                                                 \
  X(CmpLE32S, I1, 2, I32, I32)                                                 \
  X(CmpLT32U, I1, 2, I32, I32)                                                 \
  X(CmpLE32U, I1, 2, I32, I32)                                                 \
  X(CmpLT64S, I1, 2, I64, I64)                                                 \
  X(CmpLE64S, I1, 2, I64, I64)                                                 \
  X(CmpLT64U, I1, 2, I64, I64)                                                 \
  X(CmpLE64U, I1, 2, I64, I64)                                                 \
  X(CmpNEZ8, I1, 1, I8, I8)                                                    \
  X(CmpNEZ16, I1, 1, I16, I16)                                                 \
  X(CmpNEZ32, I1, 1, I32, I32)                                                 \
  X(CmpNEZ64, I1, 1, I64, I64)                                                 \
  /* --- widening conversions --- */                                           \
  X(U1to8, I8, 1, I1, I1)                                                      \
  X(U1to32, I32, 1, I1, I1)                                                    \
  X(U1to64, I64, 1, I1, I1)                                                    \
  X(U8to16, I16, 1, I8, I8)                                                    \
  X(U8to32, I32, 1, I8, I8)                                                    \
  X(S8to32, I32, 1, I8, I8)                                                    \
  X(U8to64, I64, 1, I8, I8)                                                    \
  X(U16to32, I32, 1, I16, I16)                                                 \
  X(S16to32, I32, 1, I16, I16)                                                 \
  X(U16to64, I64, 1, I16, I16)                                                 \
  X(U32to64, I64, 1, I32, I32)                                                 \
  X(S32to64, I64, 1, I32, I32)                                                 \
  /* --- narrowing conversions --- */                                          \
  X(T16to8, I8, 1, I16, I16)                                                   \
  X(T32to8, I8, 1, I32, I32)                                                   \
  X(T32to16, I16, 1, I32, I32)                                                 \
  X(T64to32, I32, 1, I64, I64)                                                 \
  X(T64HIto32, I32, 1, I64, I64)                                               \
  X(T32to1, I1, 1, I32, I32)                                                   \
  X(T64to1, I1, 1, I64, I64)                                                   \
  X(Concat32HLto64, I64, 2, I32, I32)                                          \
  /* --- floating point (F64) --- */                                           \
  X(AddF64, F64, 2, F64, F64)                                                  \
  X(SubF64, F64, 2, F64, F64)                                                  \
  X(MulF64, F64, 2, F64, F64)                                                  \
  X(DivF64, F64, 2, F64, F64)                                                  \
  X(NegF64, F64, 1, F64, F64)                                                  \
  X(AbsF64, F64, 1, F64, F64)                                                  \
  X(SqrtF64, F64, 1, F64, F64)                                                 \
  X(I32StoF64, F64, 1, I32, I32)                                               \
  X(F64toI32S, I32, 1, F64, F64)                                               \
  X(CmpF64, I32, 2, F64, F64)                                                  \
  X(ReinterpF64asI64, I64, 1, F64, F64)                                        \
  X(ReinterpI64asF64, F64, 1, I64, I64)                                        \
  /* --- packed SIMD: 4 x I8 lanes in an I32 --- */                            \
  X(Add8x4, I32, 2, I32, I32)                                                  \
  X(Sub8x4, I32, 2, I32, I32)                                                  \
  X(CmpGT8Sx4, I32, 2, I32, I32)

/// Primitive operation opcodes (~100 distinct operations).
enum class Op : uint16_t {
#define X(name, rt, n, a1, a2) name,
  VG_IROP_LIST(X)
#undef X
};

const char *opName(Op O);
Ty opResultTy(Op O);
unsigned opArity(Op O);
Ty opArgTy(Op O, unsigned Idx);

/// Evaluates a primitive op on constant bits (used by the constant folder,
/// the HVM executor, and differential tests, so all three agree). Operand
/// and result values are zero-extended into 64 bits; F64 travels as raw
/// IEEE754 bits.
uint64_t evalOp(Op O, uint64_t A, uint64_t B);

/// Truncates \p V to the bit width of \p T (canonical constant form).
uint64_t truncToTy(uint64_t V, Ty T);

//===----------------------------------------------------------------------===//
// Helper callees
//===----------------------------------------------------------------------===//

/// C helper function callable from IR. Clean calls (CCall expressions) must
/// be pure; dirty calls may read/write guest state and memory, described by
/// their effect annotations on the Dirty statement.
///
/// All helpers share one host ABI: up to four u64 arguments plus an opaque
/// environment pointer (the executing core), returning u64.
using HelperFn = uint64_t (*)(void *Env, uint64_t, uint64_t, uint64_t,
                              uint64_t);

struct Callee {
  const char *Name;
  HelperFn Fn;
  /// Identifier used by the optimiser's platform-specific partial
  /// evaluation hook (Section 3.7 Phase 2's %eflags specialisation).
  uint32_t SpecKey = 0;
  /// The helper never writes tool shadow state (shadow memory or shadow
  /// registers), so a cached ShadowProbe result stays valid across the
  /// call. Pure readers like Memcheck's LOADV qualify; anything that can
  /// mark memory defined/undefined (STOREV, stack events) must not.
  bool PreservesShadow = false;
  /// The helper's guest-register-state effects are fully described by the
  /// Dirty statement's Fx list (an empty list meaning "touches none").
  /// Lets the trace-tier optimiser keep Get/Put facts live across the
  /// call instead of treating it as a full barrier.
  bool StateFxComplete = false;
};

/// Process-wide registry of helper-callee descriptors, keyed by name.
/// Encoded host code embeds raw Callee pointers (HOp::CALL), which makes a
/// blob meaningless outside the process that emitted it; the persistent
/// translation cache serializes CALL targets as registered names and
/// resolves them back through this table at load time. Every Callee that
/// can appear in cacheable code must therefore be registered (via a
/// CalleeRegistrar static next to its definition). Thread-safe.
void registerCallee(const Callee *C);
/// Null when no callee of that name was registered.
const Callee *findCalleeByName(const std::string &Name);
/// The registered name for \p C, or null when \p C was never registered
/// (a translation calling it can then not be serialized).
const char *registeredCalleeName(const Callee *C);

/// Registers a set of Callee descriptors at static-initialisation time.
/// Place one of these in an anonymous namespace next to the descriptors:
///
///   const ir::CalleeRegistrar Reg{&LoadVCallee, &StoreVCallee};
struct CalleeRegistrar {
  CalleeRegistrar(std::initializer_list<const Callee *> Cs) {
    for (const Callee *C : Cs)
      registerCallee(C);
  }
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

using TmpId = uint32_t;
constexpr TmpId NoTmp = ~0u;

enum class ExprKind : uint8_t { Const, RdTmp, Get, Unop, Binop, Load, ITE,
                                CCall };

/// A pure value. Tagged union; fields are valid according to Kind.
struct Expr {
  ExprKind Kind;
  Ty T;                     ///< result type
  Op Opc{};                 ///< Unop/Binop
  TmpId Tmp = NoTmp;        ///< RdTmp
  uint64_t ConstVal = 0;    ///< Const (truncated to T's width)
  uint32_t Offset = 0;      ///< Get: guest-state byte offset
  Expr *Arg[3] = {};        ///< Unop: [0]; Binop: [0],[1]; Load: addr [0];
                            ///< ITE: cond,[1]=iftrue,[2]=iffalse
  const Callee *CalleeFn = nullptr; ///< CCall
  std::vector<Expr *> CallArgs;     ///< CCall

  bool isConst() const { return Kind == ExprKind::Const; }
  bool isConst(uint64_t V) const { return isConst() && ConstVal == V; }
  bool isRdTmp() const { return Kind == ExprKind::RdTmp; }
  /// Flat-IR "atom": RdTmp or Const.
  bool isAtom() const { return isConst() || isRdTmp(); }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Why control leaves a superblock. Mirrors VEX's IRJumpKind: the dispatcher
/// uses this to route to the scheduler for non-Boring events (Section 3.9).
enum class JumpKind : uint8_t {
  Boring,    ///< ordinary jump
  Call,      ///< guest call (informational)
  Ret,       ///< guest return (informational)
  Syscall,   ///< SYS: hand to the syscall machinery
  ClientReq, ///< CLREQ trap-door (Section 3.11)
  Yield,     ///< voluntary yield hint
  NoDecode,  ///< undecodable instruction at the target
  SigSEGV,   ///< deliberate fault (used by core-generated blocks)
  Exit,      ///< HLT: terminate the program
  SmcFail,   ///< self-modifying-code hash check failed: retranslate
};

const char *jumpKindName(JumpKind K);

enum class StmtKind : uint8_t {
  NoOp,
  IMark,
  Put,
  WrTmp,
  Store,
  Dirty,
  Exit,
  /// Non-faulting shadow-memory probe (the JIT-inlined Memcheck fast
  /// path). Load form (Data == null): Tmp:I64 receives the V-word
  /// zero-extended on success, or a value with bit 32 set when the access
  /// must take the helper slow path. Store form (Data != null): attempts
  /// to store the V-word Data; Tmp:I64 receives 0 on success, 1 to punt.
  /// Touches only tool shadow state — never guest registers or memory.
  ShadowProbe,
};

/// Effect annotation on a Dirty call: a guest-state region the helper reads
/// (RdFX) or writes (WrFX), so tools see through the call (Section 3.6's
/// cpuid discussion).
struct GuestFx {
  uint32_t Offset;
  uint32_t Size;
  bool IsWrite;
};

/// An operation with side effects.
struct Stmt {
  StmtKind Kind;
  // IMark
  uint32_t IAddr = 0; ///< guest address of the original instruction
  uint8_t ILen = 0;   ///< its encoded length in bytes
  // Put / WrTmp / Store / Dirty (fields shared where sensible)
  uint32_t Offset = 0;     ///< Put: guest-state byte offset
  TmpId Tmp = NoTmp;       ///< WrTmp dst; Dirty optional dst
  Expr *Data = nullptr;    ///< Put/WrTmp data; Store data
  Expr *Addr = nullptr;    ///< Store address
  // Dirty
  const Callee *CalleeFn = nullptr;
  std::vector<Expr *> CallArgs;
  Expr *Guard = nullptr; ///< Dirty: only run if guard (I1) is 1; Exit: cond
  std::vector<GuestFx> Fx;
  // Exit
  uint32_t DstPC = 0;
  JumpKind JK = JumpKind::Boring;
  // ShadowProbe
  uint8_t AccSize = 0; ///< access size in bytes (currently always 4)
};

//===----------------------------------------------------------------------===//
// Superblocks
//===----------------------------------------------------------------------===//

/// A single-entry, multiple-exit code block plus its type environment.
/// Owns all Expr/Stmt nodes reachable from it.
class IRSB {
public:
  IRSB() = default;
  IRSB(const IRSB &) = delete;
  IRSB &operator=(const IRSB &) = delete;

  // --- type environment -------------------------------------------------
  TmpId newTmp(Ty T) {
    TmpTypes.push_back(T);
    return static_cast<TmpId>(TmpTypes.size() - 1);
  }
  Ty typeOfTmp(TmpId T) const {
    assert(T < TmpTypes.size() && "temporary out of range");
    return TmpTypes[T];
  }
  size_t numTmps() const { return TmpTypes.size(); }

  /// Type of any expression in this block's environment.
  Ty typeOf(const Expr *E) const;

  // --- expression factories ---------------------------------------------
  Expr *constI1(bool V) { return mkConst(Ty::I1, V ? 1 : 0); }
  Expr *constI8(uint8_t V) { return mkConst(Ty::I8, V); }
  Expr *constI16(uint16_t V) { return mkConst(Ty::I16, V); }
  Expr *constI32(uint32_t V) { return mkConst(Ty::I32, V); }
  Expr *constI64(uint64_t V) { return mkConst(Ty::I64, V); }
  Expr *constF64(double V);
  Expr *mkConst(Ty T, uint64_t Bits);
  Expr *rdTmp(TmpId T);
  Expr *get(uint32_t Offset, Ty T);
  Expr *unop(Op O, Expr *A);
  Expr *binop(Op O, Expr *A, Expr *B);
  Expr *load(Ty T, Expr *Addr);
  Expr *ite(Expr *Cond, Expr *IfTrue, Expr *IfFalse);
  Expr *ccall(const Callee *C, Ty RetTy, std::vector<Expr *> Args);

  // --- statement factories (appended to the block) ----------------------
  void noop();
  void imark(uint32_t Addr, uint8_t Len);
  void put(uint32_t Offset, Expr *Data);
  /// Allocates a fresh tmp of the expression's type and assigns it.
  TmpId wrTmp(Expr *Data);
  void wrTmpTo(TmpId T, Expr *Data);
  void store(Expr *Addr, Expr *Data);
  /// Dirty helper call. \p Dst may be NoTmp; \p Guard may be null (always
  /// run).
  void dirty(const Callee *C, std::vector<Expr *> Args, TmpId Dst = NoTmp,
             Expr *Guard = nullptr, std::vector<GuestFx> Fx = {});
  void exit(Expr *Guard, uint32_t DstPC, JumpKind K = JumpKind::Boring);
  /// Shadow probe (see StmtKind::ShadowProbe). \p Data is null for the
  /// load form; \p Dst must be an I64 temporary.
  void shadowProbe(Expr *Addr, Expr *Data, TmpId Dst, uint8_t Size);

  /// Appends an externally built statement (used by instrumenters that
  /// rebuild statement lists).
  void append(Stmt *S) { Statements.push_back(S); }
  /// Allocates an uninitialised statement in this block's arena.
  Stmt *allocStmt() {
    StmtArena.emplace_back();
    return &StmtArena.back();
  }

  // --- block structure ---------------------------------------------------
  std::vector<Stmt *> &stmts() { return Statements; }
  const std::vector<Stmt *> &stmts() const { return Statements; }
  /// Replaces the statement list (instrumentation passes build new lists
  /// reusing this block's arena-owned expressions).
  void setStmts(std::vector<Stmt *> S) { Statements = std::move(S); }

  Expr *next() const { return Next; }
  void setNext(Expr *E, JumpKind K) {
    Next = E;
    EndJK = K;
  }
  JumpKind endJumpKind() const { return EndJK; }

  /// Verifies flatness/typing invariants; returns an empty string when OK,
  /// otherwise a diagnostic. \p RequireFlat additionally enforces that all
  /// statement operands are atoms.
  std::string typecheck(bool RequireFlat) const;

private:
  Expr *alloc() {
    ExprArena.emplace_back();
    return &ExprArena.back();
  }

  std::deque<Expr> ExprArena; // deque: stable addresses
  std::deque<Stmt> StmtArena;
  std::vector<Stmt *> Statements;
  std::vector<Ty> TmpTypes;
  Expr *Next = nullptr;
  JumpKind EndJK = JumpKind::Boring;
};

} // namespace ir
} // namespace vg

#endif // VG_IR_IR_H
