//===-- tests/GuestTests.cpp - Guest ISA / memory / interpreter tests -----==//
///
/// \file
/// Unit tests for the VG1 guest substrate: memory, decoder/assembler
/// round-trips, flag semantics, and the reference interpreter.
///
//===----------------------------------------------------------------------===//

#include "guest/Assembler.h"
#include "guest/Decoder.h"
#include "guest/Disasm.h"
#include "guest/GuestMemory.h"
#include "guest/RefInterp.h"

#include <gtest/gtest.h>

using namespace vg;
using namespace vg::vg1;

namespace {

constexpr uint32_t CodeBase = 0x1000;
constexpr uint32_t DataBase = 0x8000;
constexpr uint32_t StackTop = 0x20000;

/// Assembles, loads into fresh memory, runs, and returns the interpreter.
struct Machine {
  GuestMemory Mem;
  std::unique_ptr<RefInterp> Cpu;

  explicit Machine(Assembler &A) {
    std::vector<uint8_t> Img = A.finalize();
    Mem.map(CodeBase, static_cast<uint32_t>(Img.size()), PermRX);
    EXPECT_FALSE(Mem.write(CodeBase, Img.data(),
                           static_cast<uint32_t>(Img.size()), true)
                     .Faulted);
    Mem.map(DataBase, 0x4000, PermRW);
    Mem.map(StackTop - 0x4000, 0x4000, PermRW);
    Cpu = std::make_unique<RefInterp>(Mem);
    Cpu->PC = CodeBase;
    Cpu->R[RegSP] = StackTop;
  }

  RunResult run(uint64_t Max = 1'000'000) { return Cpu->run(Max); }
};

//===----------------------------------------------------------------------===//
// GuestMemory
//===----------------------------------------------------------------------===//

TEST(GuestMemory, MapReadWrite) {
  GuestMemory M;
  M.map(0x1000, 0x2000, PermRW);
  EXPECT_TRUE(M.isMapped(0x1000));
  EXPECT_TRUE(M.isMapped(0x2FFF));
  EXPECT_FALSE(M.isMapped(0x3000));
  EXPECT_FALSE(M.writeU32(0x1234, 0xDEADBEEF).Faulted);
  uint32_t V = 0;
  EXPECT_FALSE(M.readU32(0x1234, V).Faulted);
  EXPECT_EQ(V, 0xDEADBEEFu);
}

TEST(GuestMemory, FreshPagesAreZero) {
  GuestMemory M;
  M.map(0x4000, 0x1000, PermRW);
  uint32_t V = 1;
  EXPECT_FALSE(M.readU32(0x4100, V).Faulted);
  EXPECT_EQ(V, 0u);
}

TEST(GuestMemory, CrossPageAccess) {
  GuestMemory M;
  M.map(0x1000, 0x2000, PermRW);
  // Write straddling the page boundary at 0x2000.
  EXPECT_FALSE(M.writeU32(0x1FFE, 0x11223344).Faulted);
  uint32_t V = 0;
  EXPECT_FALSE(M.readU32(0x1FFE, V).Faulted);
  EXPECT_EQ(V, 0x11223344u);
}

TEST(GuestMemory, UnmappedFaults) {
  GuestMemory M;
  uint32_t V;
  MemFault F = M.readU32(0x9999, V);
  EXPECT_TRUE(F.Faulted);
  EXPECT_FALSE(F.WasWrite);
  F = M.writeU32(0x9999, 1);
  EXPECT_TRUE(F.Faulted);
  EXPECT_TRUE(F.WasWrite);
}

TEST(GuestMemory, PermissionChecks) {
  GuestMemory M;
  M.map(0x1000, 0x1000, PermRead);
  uint32_t V;
  EXPECT_FALSE(M.readU32(0x1000, V).Faulted);
  EXPECT_TRUE(M.writeU32(0x1000, 1).Faulted);
  uint8_t B;
  EXPECT_TRUE(M.fetch(0x1000, &B, 1).Faulted); // no exec perm
  M.protect(0x1000, 0x1000, PermRX);
  EXPECT_FALSE(M.fetch(0x1000, &B, 1).Faulted);
  // IgnorePerms bypasses protections (kernel/tool access).
  EXPECT_FALSE(M.write(0x1000, &B, 1, true).Faulted);
}

TEST(GuestMemory, CrossPageFaultReportsFirstBadByte) {
  GuestMemory M;
  M.map(0x1000, 0x1000, PermRW); // 0x2000 unmapped
  MemFault F = M.writeU32(0x1FFE, 0xAABBCCDD);
  EXPECT_TRUE(F.Faulted);
  EXPECT_EQ(F.Addr, 0x2000u);
}

TEST(GuestMemory, UnmapDiscards) {
  GuestMemory M;
  M.map(0x1000, 0x1000, PermRW);
  ASSERT_FALSE(M.writeU32(0x1000, 42).Faulted);
  M.unmap(0x1000, 0x1000);
  uint32_t V;
  EXPECT_TRUE(M.readU32(0x1000, V).Faulted);
  // Remapping yields zeroed contents.
  M.map(0x1000, 0x1000, PermRW);
  EXPECT_FALSE(M.readU32(0x1000, V).Faulted);
  EXPECT_EQ(V, 0u);
}

//===----------------------------------------------------------------------===//
// Decoder / assembler round trip
//===----------------------------------------------------------------------===//

TEST(Decoder, RoundTripAllFormats) {
  Assembler A(CodeBase);
  Label L = A.newLabel();
  A.nop();
  A.movi(Reg::R3, 0xCAFEBABE);
  A.mov(Reg::R4, Reg::R3);
  A.add(Reg::R1, Reg::R2, Reg::R3);
  A.addi(Reg::R1, Reg::R1, -7);
  A.shli(Reg::R2, Reg::R1, 5);
  A.cmp(Reg::R1, Reg::R2);
  A.cmpi(Reg::R1, 1000);
  A.ld(Reg::R5, Reg::R6, -16);
  A.st(Reg::R6, 8, Reg::R5);
  A.ldx(Reg::R7, Reg::R8, Reg::R9, 2, -16180);
  A.stx(Reg::R8, Reg::R9, 3, 64, Reg::R7);
  A.bind(L);
  A.bne(L);
  A.jmp(L);
  A.jmpr(Reg::R7);
  A.call(L);
  A.ret();
  A.push(Reg::R1);
  A.pop(Reg::R2);
  A.sys();
  A.cpuinfo();
  A.clreq();
  A.fmovi(FReg::F1, 3.5);
  A.fadd(FReg::F0, FReg::F1, FReg::F2);
  A.fld(FReg::F3, Reg::R4, 24);
  A.fst(Reg::R4, 32, FReg::F3);
  A.fitod(FReg::F5, Reg::R6);
  A.fdtoi(Reg::R6, FReg::F5);
  A.fcmp(FReg::F1, FReg::F2);
  A.vadd8(Reg::R1, Reg::R2, Reg::R3);
  A.hlt();
  std::vector<uint8_t> Img = A.finalize();

  // Every emitted instruction must decode, and lengths must tile the image.
  size_t Off = 0;
  int Count = 0;
  while (Off < Img.size()) {
    Instr I;
    ASSERT_TRUE(decode(Img.data() + Off, Img.size() - Off, I))
        << "undecodable at offset " << Off;
    ASSERT_GT(I.Len, 0);
    Off += I.Len;
    ++Count;
  }
  EXPECT_EQ(Off, Img.size());
  EXPECT_EQ(Count, 31);
}

TEST(Decoder, FieldsSurviveRoundTrip) {
  Assembler A(CodeBase);
  A.ldx(Reg::R7, Reg::R8, Reg::R9, 2, -16180);
  std::vector<uint8_t> Img = A.finalize();
  Instr I;
  ASSERT_TRUE(decode(Img.data(), Img.size(), I));
  EXPECT_EQ(I.Op, Opcode::LDX);
  EXPECT_EQ(I.Rd, 7);
  EXPECT_EQ(I.Rs, 8);
  EXPECT_EQ(I.Rt, 9);
  EXPECT_EQ(I.Scale, 2);
  EXPECT_EQ(I.Imm, -16180);
  EXPECT_EQ(I.Len, 7);
}

TEST(Decoder, RejectsBadOpcode) {
  uint8_t Bad[] = {0xFF, 0, 0, 0};
  Instr I;
  EXPECT_FALSE(decode(Bad, sizeof(Bad), I));
}

TEST(Decoder, RejectsTruncated) {
  Assembler A(CodeBase);
  A.movi(Reg::R1, 0x12345678);
  std::vector<uint8_t> Img = A.finalize();
  Instr I;
  EXPECT_TRUE(decode(Img.data(), Img.size(), I));
  EXPECT_FALSE(decode(Img.data(), 3, I)); // MOVI needs 6 bytes
}

TEST(Decoder, AllConditionCodesDecode) {
  for (unsigned C = 0; C != NumConds; ++C) {
    Assembler A(CodeBase);
    Label L = A.boundLabel();
    A.bcc(static_cast<Cond>(C), L);
    std::vector<uint8_t> Img = A.finalize();
    Instr I;
    ASSERT_TRUE(decode(Img.data(), Img.size(), I));
    EXPECT_EQ(I.Op, Opcode::BCC);
    EXPECT_EQ(static_cast<unsigned>(I.BCond), C);
    EXPECT_EQ(static_cast<uint32_t>(I.Imm), CodeBase);
  }
}

TEST(Disasm, RendersKeyForms) {
  Assembler A(0x24F275);
  A.ldx(Reg::R0, Reg::R3, Reg::R0, 2, -16180);
  std::vector<uint8_t> Img = A.finalize();
  Instr I;
  ASSERT_TRUE(decode(Img.data(), Img.size(), I));
  EXPECT_EQ(toString(I), "ldx r0, [r3 + r0<<2 -16180]");
}

//===----------------------------------------------------------------------===//
// Flag semantics
//===----------------------------------------------------------------------===//

TEST(Flags, AddCarryAndOverflow) {
  // 0xFFFFFFFF + 1 = 0 with carry, no signed overflow.
  uint32_t F = calcNZCV(static_cast<uint32_t>(CCOp::Add), 0xFFFFFFFFu, 1);
  EXPECT_TRUE(F & FlagZ);
  EXPECT_TRUE(F & FlagC);
  EXPECT_FALSE(F & FlagV);
  // INT_MAX + 1 overflows signed.
  F = calcNZCV(static_cast<uint32_t>(CCOp::Add), 0x7FFFFFFFu, 1);
  EXPECT_TRUE(F & FlagN);
  EXPECT_TRUE(F & FlagV);
  EXPECT_FALSE(F & FlagC);
}

TEST(Flags, SubBorrowConvention) {
  // 5 - 3: C set (no borrow).
  uint32_t F = calcNZCV(static_cast<uint32_t>(CCOp::Sub), 5, 3);
  EXPECT_TRUE(F & FlagC);
  EXPECT_FALSE(F & FlagZ);
  // 3 - 5: borrow, so C clear; negative result.
  F = calcNZCV(static_cast<uint32_t>(CCOp::Sub), 3, 5);
  EXPECT_FALSE(F & FlagC);
  EXPECT_TRUE(F & FlagN);
}

TEST(Flags, SignedComparisonAcrossOverflow) {
  // INT_MIN < 1 signed: N != V must hold for CMP(INT_MIN, 1).
  uint32_t F = calcNZCV(static_cast<uint32_t>(CCOp::Sub), 0x80000000u, 1);
  EXPECT_TRUE(condHolds(Cond::LTS, F));
  EXPECT_FALSE(condHolds(Cond::GES, F));
  // But unsigned INT_MIN (2^31) > 1.
  EXPECT_TRUE(condHolds(Cond::GEU, F));
}

// Property sweep: every condition agrees with a direct C computation.
class CondProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(CondProperty, MatchesDirectComparison) {
  Cond C = static_cast<Cond>(GetParam());
  const uint32_t Vals[] = {0u,          1u,          5u,         0x7FFFFFFFu,
                           0x80000000u, 0x80000001u, 0xFFFFFFFFu, 1234567u};
  for (uint32_t A : Vals) {
    for (uint32_t B : Vals) {
      uint32_t F = calcNZCV(static_cast<uint32_t>(CCOp::Sub), A, B);
      int32_t SA = static_cast<int32_t>(A), SB = static_cast<int32_t>(B);
      bool Expect = false;
      switch (C) {
      case Cond::EQ: Expect = A == B; break;
      case Cond::NE: Expect = A != B; break;
      case Cond::LTS: Expect = SA < SB; break;
      case Cond::GES: Expect = SA >= SB; break;
      case Cond::LTU: Expect = A < B; break;
      case Cond::GEU: Expect = A >= B; break;
      case Cond::GTS: Expect = SA > SB; break;
      case Cond::LES: Expect = SA <= SB; break;
      case Cond::MI: Expect = static_cast<int32_t>(A - B) < 0; break;
      case Cond::PL: Expect = static_cast<int32_t>(A - B) >= 0; break;
      }
      EXPECT_EQ(condHolds(C, F), Expect)
          << "cond " << GetParam() << " A=" << A << " B=" << B;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllConds, CondProperty,
                         ::testing::Range(0u, NumConds));

//===----------------------------------------------------------------------===//
// Reference interpreter
//===----------------------------------------------------------------------===//

TEST(RefInterp, ArithmeticAndHalt) {
  Assembler A(CodeBase);
  A.movi(Reg::R1, 6);
  A.movi(Reg::R2, 7);
  A.mul(Reg::R3, Reg::R1, Reg::R2);
  A.hlt();
  Machine M(A);
  RunResult R = M.run();
  EXPECT_EQ(R.Status, RunStatus::Halted);
  EXPECT_EQ(M.Cpu->R[3], 42u);
  EXPECT_EQ(R.InsnsExecuted, 4u);
}

TEST(RefInterp, LoopWithConditionalBranch) {
  // Sum 1..100.
  Assembler A(CodeBase);
  A.movi(Reg::R1, 0);  // sum
  A.movi(Reg::R2, 1);  // i
  Label Loop = A.boundLabel();
  A.add(Reg::R1, Reg::R1, Reg::R2);
  A.addi(Reg::R2, Reg::R2, 1);
  A.cmpi(Reg::R2, 100);
  A.ble(Loop);
  A.hlt();
  Machine M(A);
  EXPECT_EQ(M.run().Status, RunStatus::Halted);
  EXPECT_EQ(M.Cpu->R[1], 5050u);
}

TEST(RefInterp, CallRetAndStack) {
  Assembler A(CodeBase);
  Label Fn = A.newLabel();
  A.movi(Reg::R1, 10);
  A.call(Fn);
  A.addi(Reg::R1, Reg::R1, 1); // runs after return
  A.hlt();
  A.bind(Fn);
  A.shli(Reg::R1, Reg::R1, 1); // double it
  A.ret();
  Machine M(A);
  EXPECT_EQ(M.run().Status, RunStatus::Halted);
  EXPECT_EQ(M.Cpu->R[1], 21u);
  EXPECT_EQ(M.Cpu->R[RegSP], StackTop); // balanced
}

TEST(RefInterp, MemoryAndScaledAddressing) {
  Assembler A(CodeBase);
  A.movi(Reg::R1, DataBase);
  A.movi(Reg::R2, 3); // index
  A.movi(Reg::R3, 0x1111);
  A.stx(Reg::R1, Reg::R2, 2, 0, Reg::R3); // [DataBase + 12] = 0x1111
  A.ld(Reg::R4, Reg::R1, 12);
  A.hlt();
  Machine M(A);
  EXPECT_EQ(M.run().Status, RunStatus::Halted);
  EXPECT_EQ(M.Cpu->R[4], 0x1111u);
}

TEST(RefInterp, SubWordAccessAndExtension) {
  Assembler A(CodeBase);
  A.movi(Reg::R1, DataBase);
  A.movi(Reg::R2, 0x80);
  A.stb(Reg::R1, 0, Reg::R2);
  A.ldb(Reg::R3, Reg::R1, 0);  // zero-extend
  A.ldsb(Reg::R4, Reg::R1, 0); // sign-extend
  A.movi(Reg::R5, 0x8000);
  A.sth(Reg::R1, 4, Reg::R5);
  A.ldh(Reg::R6, Reg::R1, 4);
  A.ldsh(Reg::R7, Reg::R1, 4);
  A.hlt();
  Machine M(A);
  EXPECT_EQ(M.run().Status, RunStatus::Halted);
  EXPECT_EQ(M.Cpu->R[3], 0x80u);
  EXPECT_EQ(M.Cpu->R[4], 0xFFFFFF80u);
  EXPECT_EQ(M.Cpu->R[6], 0x8000u);
  EXPECT_EQ(M.Cpu->R[7], 0xFFFF8000u);
}

TEST(RefInterp, FloatingPoint) {
  Assembler A(CodeBase);
  A.fmovi(FReg::F0, 1.5);
  A.fmovi(FReg::F1, 2.5);
  A.fadd(FReg::F2, FReg::F0, FReg::F1);
  A.fmul(FReg::F3, FReg::F2, FReg::F2);
  A.fdtoi(Reg::R1, FReg::F3);
  A.movi(Reg::R2, 10);
  A.fitod(FReg::F4, Reg::R2);
  A.fdiv(FReg::F5, FReg::F4, FReg::F1);
  A.hlt();
  Machine M(A);
  EXPECT_EQ(M.run().Status, RunStatus::Halted);
  EXPECT_DOUBLE_EQ(M.Cpu->F[2], 4.0);
  EXPECT_EQ(M.Cpu->R[1], 16u);
  EXPECT_DOUBLE_EQ(M.Cpu->F[5], 4.0);
}

TEST(RefInterp, FCmpDrivesBranches) {
  Assembler A(CodeBase);
  A.fmovi(FReg::F0, 1.0);
  A.fmovi(FReg::F1, 2.0);
  A.fcmp(FReg::F0, FReg::F1);
  Label Less = A.newLabel();
  A.blt(Less); // N set since 1.0 < 2.0
  A.movi(Reg::R1, 0);
  A.hlt();
  A.bind(Less);
  A.movi(Reg::R1, 1);
  A.hlt();
  Machine M(A);
  EXPECT_EQ(M.run().Status, RunStatus::Halted);
  EXPECT_EQ(M.Cpu->R[1], 1u);
}

TEST(RefInterp, PackedSimd) {
  Assembler A(CodeBase);
  A.movi(Reg::R1, 0x01020304);
  A.movi(Reg::R2, 0x10204080);
  A.vadd8(Reg::R3, Reg::R1, Reg::R2);
  A.vcmpgt8(Reg::R4, Reg::R1, Reg::R2); // lane 0: 4 > -128 signed
  A.hlt();
  Machine M(A);
  EXPECT_EQ(M.run().Status, RunStatus::Halted);
  EXPECT_EQ(M.Cpu->R[3], 0x11224384u);
  EXPECT_EQ(M.Cpu->R[4], 0x000000FFu);
}

TEST(RefInterp, CpuInfoInstruction) {
  Assembler A(CodeBase);
  A.cpuinfo();
  A.hlt();
  Machine M(A);
  EXPECT_EQ(M.run().Status, RunStatus::Halted);
  EXPECT_EQ(M.Cpu->R[0], CpuInfoMagic);
  EXPECT_EQ(M.Cpu->R[1], CpuInfoVersion);
}

TEST(RefInterp, ClientRequestIsNoOpNatively) {
  Assembler A(CodeBase);
  A.movi(Reg::R0, 0x12345678); // request code
  A.clreq();
  A.hlt();
  Machine M(A);
  EXPECT_EQ(M.run().Status, RunStatus::Halted);
  EXPECT_EQ(M.Cpu->R[0], 0u);
}

TEST(RefInterp, MemoryFaultStopsExecution) {
  Assembler A(CodeBase);
  A.movi(Reg::R1, 0x00FF0000); // unmapped
  A.ld(Reg::R2, Reg::R1, 0);
  A.hlt();
  Machine M(A);
  RunResult R = M.run();
  EXPECT_EQ(R.Status, RunStatus::Faulted);
  EXPECT_TRUE(R.Fault.Faulted);
  EXPECT_EQ(R.Fault.Addr, 0x00FF0000u);
  EXPECT_EQ(R.FaultPC, CodeBase + 6);
}

TEST(RefInterp, DivisionByZeroIsTotal) {
  Assembler A(CodeBase);
  A.movi(Reg::R1, 100);
  A.movi(Reg::R2, 0);
  A.divu(Reg::R3, Reg::R1, Reg::R2);
  A.divs(Reg::R4, Reg::R1, Reg::R2);
  A.hlt();
  Machine M(A);
  EXPECT_EQ(M.run().Status, RunStatus::Halted);
  EXPECT_EQ(M.Cpu->R[3], 0xFFFFFFFFu);
  EXPECT_EQ(M.Cpu->R[4], 0xFFFFFFFFu);
}

TEST(RefInterp, SyscallSinkIsInvoked) {
  struct Sink : SyscallSink {
    int Calls = 0;
    Action onSyscall(CpuView &Cpu) override {
      ++Calls;
      Cpu.writeReg(0, 777);
      return Cpu.readReg(1) == 99 ? Action::Exit : Action::Continue;
    }
  };
  Assembler A(CodeBase);
  A.movi(Reg::R1, 1);
  A.sys();
  A.mov(Reg::R5, Reg::R0); // capture result
  A.movi(Reg::R1, 99);
  A.sys(); // sink requests exit
  A.hlt();
  GuestMemory Mem;
  std::vector<uint8_t> Img = A.finalize();
  Mem.map(CodeBase, static_cast<uint32_t>(Img.size()), PermRX);
  ASSERT_FALSE(
      Mem.write(CodeBase, Img.data(), static_cast<uint32_t>(Img.size()), true)
          .Faulted);
  Sink S;
  RefInterp Cpu(Mem, &S);
  Cpu.PC = CodeBase;
  RunResult R = Cpu.run(100);
  EXPECT_EQ(R.Status, RunStatus::Exited);
  EXPECT_EQ(S.Calls, 2);
  EXPECT_EQ(Cpu.R[5], 777u);
}

TEST(RefInterp, InstructionLimitStopsRun) {
  Assembler A(CodeBase);
  Label Spin = A.boundLabel();
  A.jmp(Spin);
  Machine M(A);
  RunResult R = M.run(1000);
  EXPECT_EQ(R.Status, RunStatus::InsnLimit);
  EXPECT_EQ(R.InsnsExecuted, 1000u);
}

TEST(RefInterp, ExecutePermissionRequired) {
  GuestMemory Mem;
  Mem.map(CodeBase, 0x1000, PermRW); // no exec
  RefInterp Cpu(Mem);
  Cpu.PC = CodeBase;
  RunResult R = Cpu.run(10);
  EXPECT_EQ(R.Status, RunStatus::Faulted);
}

} // namespace
