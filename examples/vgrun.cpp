//===-- examples/vgrun.cpp - The command-line driver ----------------------==//
///
/// \file
/// The analogue of the `valgrind` wrapper executable (Section 3.3): parses
/// --tool=<name> plus core and tool options from the command line, selects
/// the tool plug-in, loads the named guest program, and runs it — printing
/// the client's stdout and the tool's report.
///
/// Usage:
///   vgrun [--tool=memcheck|nulgrind|icnt|icntc|cachegrind|massif|
///          taintgrind|loopgrind] [core/tool options] <program> [--scale=N]
///          [--stdin=TEXT] [--native]
///
/// <program> is one of the built-in workloads (bzip2, crafty, gcc, gzip,
/// mcf, parser, perlbmk, vortex, ammp, applu, art, equake, mesa, swim) or
/// "demo" (a small buggy program that gives every tool something to say).
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "guestlib/GuestLib.h"
#include "tools/Cachegrind.h"
#include "tools/ICnt.h"
#include "tools/Loopgrind.h"
#include "tools/Massif.h"
#include "tools/Memcheck.h"
#include "tools/Nulgrind.h"
#include "tools/TaintGrind.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstring>
#include <memory>

using namespace vg;

namespace {

GuestImage demoImage() {
  using namespace vg::vg1;
  Assembler Code(0x1000);
  Assembler Data(0x100000);
  GuestLibLabels Lib = emitGuestLib(Code, Data);
  Label Main = Code.newLabel();
  uint32_t Entry = emitStart(Code, Main);
  Code.bind(Main);
  Label Msg = Data.boundLabel();
  Data.emitString("demo: allocating, looping, leaking\n");
  Code.movi(Reg::R1, Data.labelAddr(Msg));
  Code.call(Lib.Print);
  Code.movi(Reg::R1, 64);
  Code.call(Lib.Malloc);
  Code.mov(Reg::R6, Reg::R0);
  Code.movi(Reg::R7, 0);
  Label Loop = Code.boundLabel();
  Code.stx(Reg::R6, Reg::R7, 2, 0, Reg::R7);
  Code.addi(Reg::R7, Reg::R7, 1);
  Code.cmpi(Reg::R7, 16);
  Code.blt(Loop);
  Code.ld(Reg::R2, Reg::R6, 64); // one past the end
  Code.movi(Reg::R6, 0);         // drop the only pointer: a true leak
  Code.movi(Reg::R0, 0);
  Code.ret();
  return GuestImageBuilder().addCode(Code).addData(Data).entry(Entry).build();
}

std::unique_ptr<Tool> makeTool(const std::string &Name) {
  if (Name == "nulgrind" || Name == "none")
    return std::make_unique<Nulgrind>();
  if (Name == "memcheck")
    return std::make_unique<Memcheck>();
  if (Name == "icnt")
    return std::make_unique<ICnt>(ICnt::Mode::Inline);
  if (Name == "icntc")
    return std::make_unique<ICnt>(ICnt::Mode::CCall);
  if (Name == "cachegrind")
    return std::make_unique<Cachegrind>();
  if (Name == "massif")
    return std::make_unique<Massif>();
  if (Name == "taintgrind")
    return std::make_unique<TaintGrind>();
  if (Name == "loopgrind")
    return std::make_unique<Loopgrind>();
  return nullptr;
}

int usage() {
  std::fprintf(stderr,
               "usage: vgrun [--tool=NAME] [core/tool options] PROGRAM\n"
               "  tools: nulgrind memcheck icnt icntc cachegrind massif "
               "taintgrind loopgrind\n  programs: demo, or a workload name (");
  for (const WorkloadInfo &W : allWorkloads())
    std::fprintf(stderr, "%s ", W.Name.c_str());
  std::fprintf(stderr, "sigmt mtcpu)\n"
                       "  extras: --scale=N --stdin=TEXT --native\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  std::string ToolName = "memcheck", Program, StdinText;
  uint32_t Scale = 1;
  bool Native = false;
  std::vector<std::string> PassThrough;

  for (int I = 1; I != argc; ++I) {
    std::string A = argv[I];
    if (A.rfind("--tool=", 0) == 0)
      ToolName = A.substr(7);
    else if (A.rfind("--scale=", 0) == 0)
      Scale = static_cast<uint32_t>(std::atoi(A.c_str() + 8));
    else if (A.rfind("--stdin=", 0) == 0)
      StdinText = A.substr(8);
    else if (A == "--native")
      Native = true;
    else if (A.rfind("--", 0) == 0)
      PassThrough.push_back(A); // core/tool option
    else if (Program.empty())
      Program = A;
    else
      return usage();
  }
  if (Program.empty())
    return usage();

  GuestImage Img;
  if (Program == "demo") {
    Img = demoImage();
  } else {
    // "sigmt" and "mtcpu" are runnable by name but kept out of
    // allWorkloads() so they never perturb the Table 2 benchmark set.
    bool Known = Program == "sigmt" || Program == "mtcpu";
    for (const WorkloadInfo &W : allWorkloads())
      Known = Known || W.Name == Program;
    if (!Known)
      return usage();
    Img = buildWorkload(Program, Scale);
  }

  if (Native) {
    RunReport R = runNative(Img, StdinText);
    std::fputs(R.Stdout.c_str(), stdout);
    std::fprintf(stderr, "(native: %llu instructions, %.3fs, exit %d)\n",
                 static_cast<unsigned long long>(R.NativeInsns), R.Seconds,
                 R.ExitCode);
    return R.ExitCode;
  }

  std::unique_ptr<Tool> T = makeTool(ToolName);
  if (!T)
    return usage();
  RunReport R = runUnderCore(Img, T.get(), PassThrough, StdinText);
  std::fputs(R.Stdout.c_str(), stdout);
  std::fputs(R.ToolOutput.c_str(), stderr);
  std::fprintf(stderr,
               "(vgrun: tool=%s blocks=%llu translations=%llu %.3fs%s)\n",
               ToolName.c_str(),
               static_cast<unsigned long long>(R.Stats.BlocksDispatched),
               static_cast<unsigned long long>(R.Stats.Translations),
               R.Seconds, R.Completed ? "" : " [did not complete]");
  return R.Completed ? R.ExitCode : 1;
}
