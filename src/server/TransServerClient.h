//===-- server/TransServerClient.h - --tt-server client ---------*- C++ -*-==//
///
/// \file
/// The vgrun side of the translation server: fetches entry file images by
/// content-hash key on a local-cache miss, pushes freshly-compiled images
/// back (that is how a daemon warms), and forwards poison notifications.
///
/// The transport carries production-shape robustness so a sick daemon can
/// never stall or crash a guest run:
///
///  - every request runs under a per-request deadline (poll-based, never
///    a blocking read);
///  - a failed attempt is retried a bounded number of times with
///    exponential backoff, reconnecting each time;
///  - after MaxStrikes *consecutive* failed requests the client latches
///    dead for the rest of the run — subsequent lookups skip the socket
///    entirely (counted as fallbacks) and settle from the local cache or
///    the inline JIT. The degradation ladder never goes the other way:
///    a translation is installed from the server only after the SAME
///    validation a local --tt-cache file gets.
///
/// Guest-thread-only, exactly like TransCache: lookups happen in
/// translateSync/promoteFromCache and write-backs after installs, so no
/// locking is needed and --jit-threads=N stays race-free.
///
//===----------------------------------------------------------------------===//
#ifndef VG_SERVER_TRANSSERVERCLIENT_H
#define VG_SERVER_TRANSSERVERCLIENT_H

#include "server/TransProto.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vg {

class TransServerClient {
public:
  struct Config {
    std::string SocketPath;
    int TimeoutMs = 200; ///< per-request deadline (--tt-server-timeout-ms)
    int MaxRetries = 2;  ///< re-attempts after a failed attempt
    int MaxStrikes = 3;  ///< consecutive failed requests before latching dead
    int BackoffBaseMs = 1; ///< backoff = base << attempt, capped at 50ms
  };

  enum class FetchResult {
    Hit,    ///< image returned (caller still validates + live-hash checks)
    Miss,   ///< daemon has no entry under that key
    Failed, ///< timeout/EOF/malformed/dead — degrade down the ladder
  };

  /// Per-call transport detail, folded into JitStats by the service so the
  /// profile counters stay guest-thread-owned plain fields.
  struct CallStats {
    bool Attempted = false; ///< the socket was actually tried (not dead-skip)
    uint32_t Retries = 0;
    uint32_t Timeouts = 0;
  };

  /// Lifetime totals (protocol-level tests read these directly).
  struct Stats {
    uint64_t Requests = 0; ///< requests that reached the transport
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Timeouts = 0;
    uint64_t Retries = 0;
    uint64_t Fallbacks = 0; ///< requests that settled as Failed (incl. dead skips)
    uint64_t Puts = 0;
    uint64_t PutFailures = 0;
    uint64_t Reconnects = 0;
    uint64_t BytesFetched = 0;
    uint64_t BytesSent = 0;
  };

  explicit TransServerClient(Config C) : C(std::move(C)) {}
  ~TransServerClient();

  TransServerClient(const TransServerClient &) = delete;
  TransServerClient &operator=(const TransServerClient &) = delete;

  /// False once the strike budget is spent: the daemon is treated as gone
  /// for the rest of the run and every call degrades instantly.
  bool alive() const { return !Dead; }

  /// Fetches the entry image under (\p Cfg, \p Key). On Hit, \p Image
  /// holds the raw VGTC file bytes — NOT yet validated; the caller runs
  /// them through TransCache::decodeEntryFile plus the live-hash check
  /// before anything installs.
  FetchResult get(uint64_t Cfg, uint64_t Key, std::vector<uint8_t> &Image,
                  CallStats *CS = nullptr);

  /// Pushes a freshly-encoded image (best-effort; false on any failure).
  bool put(uint64_t Cfg, uint64_t Key, const std::vector<uint8_t> &Image,
           CallStats *CS = nullptr);

  /// Poison notifications: the daemon evicts entries of this config whose
  /// extents intersect (or all of them). Best-effort, bounded like any
  /// other request; failures are swallowed — local poison bookkeeping is
  /// what guarantees correctness, this only keeps the daemon fresh.
  void poison(uint64_t Cfg, uint32_t Addr, uint32_t Len,
              CallStats *CS = nullptr);
  void poisonAll(uint64_t Cfg, CallStats *CS = nullptr);

  const Stats &stats() const { return S; }
  const Config &config() const { return C; }

private:
  /// One deadline-bounded, retried request/response exchange. False when
  /// every attempt failed (the strike path).
  bool request(srv::MsgType Type, const std::vector<uint8_t> &Body,
               srv::Frame &Reply, CallStats *CS);
  void closeFd();

  Config C;
  Stats S;
  int Fd = -1;
  int Strikes = 0;
  bool Dead = false;
};

} // namespace vg

#endif // VG_SERVER_TRANSSERVERCLIENT_H
