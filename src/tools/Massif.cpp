//===-- tools/Massif.cpp - Heap profiler ----------------------------------==//

#include "tools/Massif.h"

#include "guest/GuestArch.h"

#include <algorithm>

using namespace vg;

void Massif::tick() {
  ++Time;
  if (LiveBytes > PeakBytes)
    PeakBytes = LiveBytes;
  // Snapshot on a coarse schedule: every 32 allocation events.
  if ((Time & 31) == 0 || Snapshots.empty())
    Snapshots.push_back(Snapshot{Time, LiveBytes});
}

void Massif::onMalloc(int Tid, uint32_t Addr, uint32_t Size, bool) {
  LiveBytes += Size;
  // Attribute to the call site: the return address the redirected
  // malloc will pop is on top of the caller's stack.
  ThreadState &TS = C->thread(Tid);
  uint32_t Site = 0;
  C->memory().read(TS.gpr(vg1::RegSP), &Site, 4, true);
  SiteOfBlock[Addr] = Site;
  BytesBySite[Site] += Size;
  tick();
}

void Massif::onFree(int Tid, uint32_t Addr, uint32_t Size) {
  LiveBytes -= std::min<uint64_t>(Size, LiveBytes);
  auto It = SiteOfBlock.find(Addr);
  if (It != SiteOfBlock.end()) {
    uint64_t &B = BytesBySite[It->second];
    B -= std::min<uint64_t>(Size, B);
    SiteOfBlock.erase(It);
  }
  tick();
}

void Massif::fini(int ExitCode) {
  OutputSink &Out = C->output();
  Out.printf("==massif== peak heap usage: %llu bytes\n",
             static_cast<unsigned long long>(PeakBytes));
  Out.printf("==massif== snapshots: %zu (time unit: allocation events)\n",
             Snapshots.size());
  // A small text graph of the final timeline (8 buckets).
  if (!Snapshots.empty() && PeakBytes) {
    size_t Buckets = std::min<size_t>(8, Snapshots.size());
    for (size_t B = 0; B != Buckets; ++B) {
      const Snapshot &S =
          Snapshots[B * (Snapshots.size() - 1) / std::max<size_t>(1, Buckets - 1)];
      int Bars = static_cast<int>(40 * S.LiveBytes / PeakBytes);
      Out.printf("==massif== t=%6llu |%.*s %llu\n",
                 static_cast<unsigned long long>(S.Time), Bars,
                 "########################################",
                 static_cast<unsigned long long>(S.LiveBytes));
    }
  }
  // Top allocation sites still holding memory.
  std::vector<std::pair<uint64_t, uint32_t>> Sites;
  for (auto [Site, Bytes] : BytesBySite)
    if (Bytes)
      Sites.push_back({Bytes, Site});
  std::sort(Sites.rbegin(), Sites.rend());
  for (size_t I = 0; I != Sites.size() && I != 5; ++I)
    Out.printf("==massif==   %llu bytes live from call site 0x%08X\n",
               static_cast<unsigned long long>(Sites[I].first),
               Sites[I].second);
}
