//===-- support/Output.h - Side-channel output sinks ------------*- C++ -*-==//
///
/// \file
/// Implements requirement R9 (extra output): tools must emit their results on
/// a side channel that does not perturb the client. An OutputSink can target
/// stderr (the default, as in Valgrind), a file, or an in-memory buffer (used
/// pervasively by the test suite to assert on tool output).
///
//===----------------------------------------------------------------------===//
#ifndef VG_SUPPORT_OUTPUT_H
#define VG_SUPPORT_OUTPUT_H

#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <string>

namespace vg {

/// Destination for tool messages (error reports, profiles, statistics).
/// Exactly one of the three modes is active. The client program's own
/// stdout/stderr flow through the simulated kernel's file table and never
/// touch this sink, so tool output cannot interleave with client output
/// destructively (R9).
class OutputSink {
public:
  enum class Mode { Stderr, File, Buffer };

  OutputSink() : TheMode(Mode::Stderr) {}
  ~OutputSink();

  OutputSink(const OutputSink &) = delete;
  OutputSink &operator=(const OutputSink &) = delete;

  /// Redirects output to \p Path. Returns false if the file cannot be opened
  /// (the sink then stays in its previous mode).
  bool openFile(const std::string &Path);

  /// Redirects output to an internal buffer, retrievable via takeBuffer().
  void useBuffer();

  /// printf-style formatted output.
  void printf(const char *Fmt, ...) __attribute__((format(printf, 2, 3)));

  /// Writes a raw string. All output funnels through here; the internal
  /// lock keeps concurrent writers (tool helpers running on several shards
  /// under --sched-threads=N) from interleaving mid-line.
  void write(const std::string &S);

  /// Returns and clears the accumulated buffer (Buffer mode only).
  std::string takeBuffer();

  /// Returns the buffer contents without clearing (Buffer mode only).
  const std::string &buffer() const { return Buf; }

  Mode mode() const { return TheMode; }

private:
  void vprintf(const char *Fmt, va_list Ap);

  Mode TheMode;
  std::FILE *File = nullptr;
  std::mutex Mu; ///< guards Buf and the FILE against concurrent write()
  std::string Buf;
};

} // namespace vg

#endif // VG_SUPPORT_OUTPUT_H
