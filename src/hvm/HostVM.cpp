//===-- hvm/HostVM.cpp - Encoding (Phase 8) and printing ------------------==//

#include "hvm/HostVM.h"

#include <cstdio>
#include <cstring>

using namespace vg;
using namespace vg::hvm;

namespace {

unsigned encodedSizeFor(HOp Op) {
  switch (Op) {
  case HOp::LI:
    return 10;
  case HOp::MOV:
    return 3;
  case HOp::ALU:
    return 6;
  case HOp::ALU1:
    return 5;
  case HOp::ALUI:
    return 13;
  case HOp::LDG:
  case HOp::STG:
    return 7;
  case HOp::LDM:
  case HOp::STM:
    return 8;
  case HOp::SEL:
    return 5;
  case HOp::CALL:
    return 15;
  case HOp::JZ:
    return 6;
  case HOp::EXITI:
    return 10;
  case HOp::EXITR:
    return 3;
  case HOp::IMARK:
    return 5;
  case HOp::SPILL:
  case HOp::RELOAD:
    return 6;
  case HOp::ALUIS:
    return 6;
  case HOp::SHPROBE:
    return 6;
  }
  return 0;
}

unsigned encodedSize(const HInstr &I) { return encodedSizeFor(I.Op); }

void putU16(std::vector<uint8_t> &B, uint16_t V) {
  B.push_back(static_cast<uint8_t>(V));
  B.push_back(static_cast<uint8_t>(V >> 8));
}

void putU32(std::vector<uint8_t> &B, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    B.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &B, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    B.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

uint8_t r8(RegId R) {
  assert(!isVirtual(R) && R < NumHostRegs && "unallocated register reaches encoder");
  return static_cast<uint8_t>(R);
}

} // namespace

std::vector<uint8_t> hvm::encode(const HostCode &CodeIn) {
  // Immediate-form selection: ALUI with a byte-sized immediate uses the
  // compact ALUIS encoding (6 bytes instead of 13).
  HostCode Code = CodeIn;
  for (HInstr &I : Code.Instrs)
    if (I.Op == HOp::ALUI && I.Imm <= 0xFF)
      I.Op = HOp::ALUIS;

  // First pass: byte offset of every instruction (for JZ targets).
  std::vector<uint32_t> Offset(Code.Instrs.size() + 1, 0);
  uint32_t Pos = 0;
  for (size_t I = 0; I != Code.Instrs.size(); ++I) {
    Offset[I] = Pos;
    Pos += encodedSize(Code.Instrs[I]);
  }
  Offset[Code.Instrs.size()] = Pos;

  std::vector<uint8_t> B;
  B.reserve(Pos);
  for (const HInstr &I : Code.Instrs) {
    B.push_back(static_cast<uint8_t>(I.Op));
    switch (I.Op) {
    case HOp::LI:
      B.push_back(r8(I.Dst));
      putU64(B, I.Imm);
      break;
    case HOp::MOV:
      B.push_back(r8(I.Dst));
      B.push_back(r8(I.A));
      break;
    case HOp::ALU:
      putU16(B, static_cast<uint16_t>(I.IrOp));
      B.push_back(r8(I.Dst));
      B.push_back(r8(I.A));
      B.push_back(r8(I.B));
      break;
    case HOp::ALU1:
      putU16(B, static_cast<uint16_t>(I.IrOp));
      B.push_back(r8(I.Dst));
      B.push_back(r8(I.A));
      break;
    case HOp::ALUI:
      putU16(B, static_cast<uint16_t>(I.IrOp));
      B.push_back(r8(I.Dst));
      B.push_back(r8(I.A));
      putU64(B, I.Imm);
      break;
    case HOp::LDG:
      B.push_back(r8(I.Dst));
      putU32(B, I.Off);
      B.push_back(I.Size);
      break;
    case HOp::STG:
      B.push_back(r8(I.A));
      putU32(B, I.Off);
      B.push_back(I.Size);
      break;
    case HOp::LDM:
      B.push_back(r8(I.Dst));
      B.push_back(r8(I.A));
      putU32(B, static_cast<uint32_t>(I.Disp));
      B.push_back(I.Size);
      break;
    case HOp::STM:
      B.push_back(r8(I.A));
      B.push_back(r8(I.B));
      putU32(B, static_cast<uint32_t>(I.Disp));
      B.push_back(I.Size);
      break;
    case HOp::SEL:
      B.push_back(r8(I.Dst));
      B.push_back(r8(I.A));
      B.push_back(r8(I.B));
      B.push_back(r8(I.C));
      break;
    case HOp::CALL:
      putU64(B, reinterpret_cast<uint64_t>(I.CalleeFn));
      B.push_back(I.Dst == NoReg ? 0xFF : r8(I.Dst));
      B.push_back(I.NArgs);
      for (int J = 0; J != 4; ++J)
        B.push_back(I.Args[J] == NoReg ? 0 : r8(I.Args[J]));
      break;
    case HOp::JZ:
      B.push_back(r8(I.A));
      assert(I.Label >= 0 &&
             static_cast<size_t>(I.Label) < Offset.size() &&
             "JZ with unresolved label");
      putU32(B, Offset[I.Label]);
      break;
    case HOp::EXITI:
      putU32(B, static_cast<uint32_t>(I.Imm));
      B.push_back(I.JKind);
      putU32(B, I.ChainSlot);
      break;
    case HOp::EXITR:
      B.push_back(r8(I.A));
      B.push_back(I.JKind);
      break;
    case HOp::IMARK:
      putU32(B, static_cast<uint32_t>(I.Imm));
      break;
    case HOp::SPILL:
      B.push_back(r8(I.A));
      putU32(B, I.Off);
      break;
    case HOp::RELOAD:
      B.push_back(r8(I.Dst));
      putU32(B, I.Off);
      break;
    case HOp::ALUIS:
      putU16(B, static_cast<uint16_t>(I.IrOp));
      B.push_back(r8(I.Dst));
      B.push_back(r8(I.A));
      B.push_back(static_cast<uint8_t>(I.Imm));
      break;
    case HOp::SHPROBE:
      B.push_back(r8(I.Dst));
      B.push_back(r8(I.A));
      B.push_back(I.B == NoReg ? 0xFF : r8(I.B));
      B.push_back(static_cast<uint8_t>(I.Imm)); // bit 0: store form
      B.push_back(I.Size);
      break;
    }
  }
  return B;
}

bool hvm::findCalleeSlots(const std::vector<uint8_t> &Bytes,
                          std::vector<uint32_t> &Slots) {
  Slots.clear();
  size_t Off = 0;
  while (Off < Bytes.size()) {
    uint8_t Op = Bytes[Off];
    if (Op > static_cast<uint8_t>(HOp::SHPROBE))
      return false;
    unsigned Sz = encodedSizeFor(static_cast<HOp>(Op));
    if (Sz == 0 || Off + Sz > Bytes.size())
      return false;
    if (static_cast<HOp>(Op) == HOp::CALL)
      Slots.push_back(static_cast<uint32_t>(Off + 1)); // field follows opcode
    Off += Sz;
  }
  return true;
}

std::string hvm::toString(const HInstr &I) {
  char Buf[160];
  auto RN = [](RegId R) {
    static thread_local char N[4][16];
    static thread_local int Slot = 0;
    char *P = N[Slot];
    Slot = (Slot + 1) & 3;
    if (R == NoReg)
      std::snprintf(P, 16, "-");
    else if (isVirtual(R))
      std::snprintf(P, 16, "%%%%vr%u", R - VirtBase);
    else
      std::snprintf(P, 16, "h%u", R);
    return P;
  };
  switch (I.Op) {
  case HOp::LI:
    std::snprintf(Buf, sizeof(Buf), "li    %s, 0x%llx", RN(I.Dst),
                  static_cast<unsigned long long>(I.Imm));
    break;
  case HOp::MOV:
    std::snprintf(Buf, sizeof(Buf), "mov   %s, %s", RN(I.Dst), RN(I.A));
    break;
  case HOp::ALU:
    std::snprintf(Buf, sizeof(Buf), "%-5s %s, %s, %s", ir::opName(I.IrOp),
                  RN(I.Dst), RN(I.A), RN(I.B));
    break;
  case HOp::ALU1:
    std::snprintf(Buf, sizeof(Buf), "%-5s %s, %s", ir::opName(I.IrOp),
                  RN(I.Dst), RN(I.A));
    break;
  case HOp::ALUI:
  case HOp::ALUIS:
    std::snprintf(Buf, sizeof(Buf), "%-5s %s, %s, 0x%llx", ir::opName(I.IrOp),
                  RN(I.Dst), RN(I.A),
                  static_cast<unsigned long long>(I.Imm));
    break;
  case HOp::LDG:
    std::snprintf(Buf, sizeof(Buf), "ldg   %s, gst[%u], %u", RN(I.Dst), I.Off,
                  I.Size);
    break;
  case HOp::STG:
    std::snprintf(Buf, sizeof(Buf), "stg   gst[%u], %s, %u", I.Off, RN(I.A),
                  I.Size);
    break;
  case HOp::LDM:
    std::snprintf(Buf, sizeof(Buf), "ldm   %s, [%s%+d], %u", RN(I.Dst),
                  RN(I.A), I.Disp, I.Size);
    break;
  case HOp::STM:
    std::snprintf(Buf, sizeof(Buf), "stm   [%s%+d], %s, %u", RN(I.A), I.Disp,
                  RN(I.B), I.Size);
    break;
  case HOp::SEL:
    std::snprintf(Buf, sizeof(Buf), "sel   %s, %s, %s, %s", RN(I.Dst),
                  RN(I.A), RN(I.B), RN(I.C));
    break;
  case HOp::CALL:
    std::snprintf(Buf, sizeof(Buf), "call  %s = %s/%u", RN(I.Dst),
                  I.CalleeFn ? I.CalleeFn->Name : "?", I.NArgs);
    break;
  case HOp::JZ:
    std::snprintf(Buf, sizeof(Buf), "jz    %s, @%d", RN(I.A), I.Label);
    break;
  case HOp::EXITI:
    std::snprintf(Buf, sizeof(Buf), "exiti 0x%llx, %s",
                  static_cast<unsigned long long>(I.Imm),
                  ir::jumpKindName(static_cast<ir::JumpKind>(I.JKind)));
    break;
  case HOp::EXITR:
    std::snprintf(Buf, sizeof(Buf), "exitr %s, %s", RN(I.A),
                  ir::jumpKindName(static_cast<ir::JumpKind>(I.JKind)));
    break;
  case HOp::IMARK:
    std::snprintf(Buf, sizeof(Buf), "imark 0x%llx",
                  static_cast<unsigned long long>(I.Imm));
    break;
  case HOp::SPILL:
    std::snprintf(Buf, sizeof(Buf), "spill frame[%u], %s", I.Off, RN(I.A));
    break;
  case HOp::RELOAD:
    std::snprintf(Buf, sizeof(Buf), "reload %s, frame[%u]", RN(I.Dst), I.Off);
    break;
  case HOp::SHPROBE:
    if (I.Imm & 1)
      std::snprintf(Buf, sizeof(Buf), "shprobe.st%u %s, [%s], %s", I.Size,
                    RN(I.Dst), RN(I.A), RN(I.B));
    else
      std::snprintf(Buf, sizeof(Buf), "shprobe.ld%u %s, [%s]", I.Size,
                    RN(I.Dst), RN(I.A));
    break;
  }
  return Buf;
}
