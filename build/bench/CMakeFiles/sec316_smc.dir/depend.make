# Empty dependencies file for sec316_smc.
# This may be replaced when dependencies are built.
