//===-- core/TransTab.h - Translation storage (Section 3.8) -----*- C++ -*-==//
///
/// \file
/// Stores translations in a fixed-size, linear-probe hash table. When the
/// table passes 80% occupancy, translations are evicted in chunks of 1/8th
/// of the table using a FIFO policy — "chosen over the more obvious LRU
/// policy because it is simpler and still does a fairly good job".
/// Translations are also evicted when client code is unloaded (munmap) or
/// made obsolete by self-modifying code (Section 3.16), via
/// invalidateRange().
///
/// The table also owns the translation chain graph (Section 3.9): every
/// filled chain slot (a constant Boring exit patched to jump straight into
/// its successor) is recorded as a back-edge on the successor, so evicting
/// a translation unlinks its predecessors in O(degree) rather than by
/// scanning the whole table. Slots whose successor does not exist yet are
/// parked in a pending-waiter map and filled eagerly the moment the
/// successor is inserted — including re-insertion after SMC invalidation or
/// hot-tier retranslation — so the dispatcher almost never has to fill a
/// chain slot lazily.
///
/// Concurrency (DESIGN section 14): the table structure (slots, waiter map,
/// back-edge vectors) is only ever mutated by a thread holding the core's
/// world lock; the per-translation execution profile (ExecCount, EdgeExecs),
/// the chain slots themselves, and the generation/flush-epoch counters are
/// atomics so that shard dispatch loops and the chain thunk may read them —
/// and bump the profile — without any lock. Chain installs are release
/// stores; unchaining happens under the world lock and the freed
/// translation is handed to the retire hook (when set) instead of being
/// destroyed, so a shard that loaded the slot just before the unchain can
/// finish its run through the old blob during the epoch grace period.
///
//===----------------------------------------------------------------------===//
#ifndef VG_CORE_TRANSTAB_H
#define VG_CORE_TRANSTAB_H

#include "hvm/Exec.h"

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <vector>

namespace vg {

/// One stored translation.
struct Translation {
  uint32_t Addr = 0;     ///< guest entry address
  hvm::CodeBlob Blob;    ///< encoded host code (Blob.Cookie == this)
  /// Guest ranges the translation was made from (for invalidation and SMC
  /// hashing; more than one when branches were chased).
  std::vector<std::pair<uint32_t, uint32_t>> Extents;
  uint64_t CodeHash = 0; ///< FNV-1a over the original guest bytes
  uint32_t NumInsns = 0;
  uint64_t Seq = 0; ///< insertion order (FIFO eviction key)
  /// Times the block was entered (dispatcher entries plus chained
  /// transfers); drives hot-tier promotion. Relaxed-atomic: bumped by
  /// whichever shard executes the block, read by promotion gates and the
  /// trace selector (an approximate profile is all either needs).
  std::atomic<uint64_t> ExecCount{0};
  /// 0 = baseline block, 1 = hot superblock (branch-chasing
  /// retranslation), 2 = trace (stitched hot path over several former
  /// superblocks; Extents then cover every constituent, so SMC or
  /// invalidateRange poisoning any one of them evicts the whole trace).
  uint8_t Tier = 0;
  /// Tier 2 only: constituent entry PCs in path order (TraceEntries[0] ==
  /// Addr). Empty below tier 2.
  std::vector<uint32_t> TraceEntries;
  /// Tier 1 only: do not re-attempt trace formation until ExecCount
  /// reaches this (backoff after an unbiased chain graph or a failed
  /// stitch). 0 = eligible immediately once over the trace threshold.
  /// Relaxed-atomic: written under the world lock (drain/backoff), read by
  /// the lock-free trace gate in every shard's dispatch loop.
  std::atomic<uint64_t> TraceRetryAt{0};
  /// An asynchronous hot promotion of this address is in flight (queued or
  /// being translated). Stops the dispatcher and the chain thunk from
  /// re-requesting promotion on every execution while the worker runs;
  /// written under the world lock, read lock-free by the promotion gates.
  /// Always false when --jit-threads=0.
  std::atomic<bool> PromoPending{false};
  /// The blob is position-independent (no SMC-check prelude, which embeds
  /// this Translation's own address as an immediate), so it may be served
  /// from or written to the persistent translation cache. Decided by the
  /// host in setupTranslation; false is always the safe default.
  bool Cacheable = false;
  /// Chain slots: successor translations for constant Boring exits. Filled
  /// eagerly by TransTab when the successor exists; otherwise parked as a
  /// pending waiter and filled on the successor's insertion. Atomic:
  /// installs are release stores under the world lock; the chain thunk
  /// acquire-loads the slot with no lock at all.
  std::vector<std::atomic<Translation *>> Chain;
  /// Per-slot transfer counts (parallel to Chain), bumped by the chain
  /// thunk on every chained transfer out of this translation. True edge
  /// profiles: trace formation follows the dominant *edge*, which a
  /// successor's ExecCount cannot substitute for when the successor has
  /// other predecessors. Relaxed-atomic: the guest thread bumped these
  /// while --jit-threads workers read them for trace-path selection — a
  /// pre-existing data race now pinned by MtSchedTests under TSan.
  std::vector<std::atomic<uint64_t>> EdgeExecs;
  /// Back-edges: one entry per filled chain slot pointing at this
  /// translation (duplicates allowed when a predecessor has several slots
  /// targeting us). Maintained by TransTab; makes unchaining O(degree).
  std::vector<Translation *> ChainedFrom;
};

/// The fixed-size, linear-probe translation table.
class TransTab {
public:
  explicit TransTab(size_t CapacityPow2 = 1u << 14);

  Translation *lookup(uint32_t Addr);

  /// Stats-free lookup (internal plumbing and eager chain resolution; does
  /// not perturb the Lookups/Hits counters the benches report).
  Translation *find(uint32_t Addr) const;

  /// Takes ownership; may trigger a FIFO eviction run first. Returns the
  /// stored translation. Re-inserting an address replaces (and properly
  /// unchains) the previous translation. Outgoing chain slots are linked
  /// eagerly against resident translations, and any waiters parked on this
  /// address are linked to the new translation.
  Translation *insert(std::unique_ptr<Translation> T);

  /// Discards translations whose extents intersect [Addr, Addr+Len).
  /// Returns how many were discarded.
  unsigned invalidateRange(uint32_t Addr, uint32_t Len);

  void invalidateAll();

  /// Fills one chain slot (dispatcher's lazy fallback path). Records the
  /// back-edge and removes any pending waiter for the slot. No-op if the
  /// slot is out of range or already chained to \p To.
  void chainTo(Translation *From, uint32_t Slot, Translation *To);

  /// The dispatcher's fast cache resolved a block without consulting the
  /// table; fold the hit into the same statistics view so reported hit
  /// rates are honest.
  void countFastHit() {
    ++S.Lookups;
    ++S.Hits;
    ++S.FastHits;
  }

  size_t size() const { return Count; }
  size_t capacity() const { return Slots.size(); }

  /// Visits every resident translation, insertion-order agnostic. The
  /// visitor must not mutate the table. Callers must hold the world lock
  /// (or run after the schedulers have joined — e.g. tool fini reports
  /// walking the chain graph).
  void forEach(const std::function<void(const Translation &)> &Fn) const {
    for (const Slot &S : Slots)
      if (S.St == Slot::State::Full)
        Fn(*S.T);
  }

  // Statistics for bench/sec39_dispatch.
  struct Stats {
    uint64_t Inserts = 0;
    uint64_t Lookups = 0;  ///< includes fast-cache hits (see countFastHit)
    uint64_t Hits = 0;     ///< includes fast-cache hits
    uint64_t FastHits = 0; ///< the fast-cache share of Hits
    uint64_t EvictionRuns = 0;
    uint64_t Evicted = 0;
    uint64_t Invalidated = 0;
    uint64_t ChainsFilled = 0; ///< chain slots linked (eager + lazy)
    uint64_t Unchains = 0;     ///< chain slots nulled by eviction
  };
  const Stats &stats() const { return S; }

  /// Generation counter bumped on any eviction/invalidation so the
  /// dispatcher's fast cache can drop stale pointers. Relaxed-atomic so
  /// shard fast caches may validate without taking the world lock.
  uint64_t generation() const { return Gen.load(std::memory_order_relaxed); }

  /// Flush-epoch counter: bumped only by invalidateRange/invalidateAll
  /// (never by capacity eviction). The translation service stamps each
  /// async job with the epoch at enqueue time and discards the result if
  /// the epoch moved — the guest code the job translated from may have
  /// been redirected or unmapped even when the bytes still hash equal.
  uint64_t flushEpoch() const {
    return FlushEpoch.load(std::memory_order_relaxed);
  }

  /// Deferred reclamation (sharded scheduler): when set, eraseSlot hands
  /// the evicted translation to this hook instead of destroying it, so the
  /// core can park it in an epoch-stamped limbo list until every shard has
  /// passed a quiescent point (a shard may still be executing the blob it
  /// loaded from a chain slot just before the unchain). Unset (the
  /// default, and always at --sched-threads=1) destruction is immediate —
  /// byte-identical to the single-threaded scheduler.
  void setRetireHook(std::function<void(std::unique_ptr<Translation>)> Fn) {
    RetireFn = std::move(Fn);
  }

  /// Folds fast-cache hits counted privately by a shard into the table's
  /// statistics view at shard exit (the single-threaded dispatcher calls
  /// countFastHit per hit instead).
  void addFastHits(uint64_t N) {
    S.Lookups += N;
    S.Hits += N;
    S.FastHits += N;
  }

private:
  struct Slot {
    enum class State : uint8_t { Empty, Full, Tomb };
    State St = State::Empty;
    std::unique_ptr<Translation> T;
  };

  /// No usable slot: the probe wrapped a table with no empty and no tomb.
  /// (The seed returned slot 0 here, letting insert() silently destroy an
  /// unrelated address's translation.)
  static constexpr size_t NoSlot = SIZE_MAX;

  size_t probeFor(uint32_t Addr) const;
  void evictChunk();
  void eraseSlot(size_t Idx);
  /// Rebuilds the table in place after an eviction run, turning tombs back
  /// into empties (tombs otherwise accumulate forever and drive every
  /// missed probe to a full-table scan). Translation pointers are stable.
  void rehash();
  /// Links \p T's outgoing slots against resident successors (or parks
  /// waiters) and resolves waiters parked on T->Addr.
  void linkChains(Translation *T);
  /// Severs every chain edge touching \p T: predecessors' slots are nulled
  /// and re-parked as waiters on T->Addr; successors drop their back-edges;
  /// T's own unfilled waiters are cancelled. O(degree of T).
  void unlinkChains(Translation *T);
  void removeWaiter(uint32_t Target, const Translation *From, uint32_t Slot);

  std::vector<Slot> Slots;
  size_t Count = 0;
  uint64_t NextSeq = 0;
  std::atomic<uint64_t> Gen{0};
  std::atomic<uint64_t> FlushEpoch{0};
  std::function<void(std::unique_ptr<Translation>)> RetireFn;
  /// target guest address -> (translation, slot) pairs waiting for a
  /// translation of that address to appear.
  std::map<uint32_t, std::vector<std::pair<Translation *, uint32_t>>> Pending;
  Stats S;
};

} // namespace vg

#endif // VG_CORE_TRANSTAB_H
