//===-- bench/sec314_mtscale.cpp - Section 3.14: parallel scaling ---------==//
///
/// \file
/// Measures what breaking the big lock buys: the "mtcpu" workload — four
/// cloned guest threads, each CPU-bound over a private buffer — runs under
/// Nulgrind with chaining at --sched-threads=1, 2, and 4, and the bench
/// reports wall-clock speedup over the serialised scheduler. Correctness
/// is asserted unconditionally (every configuration must complete with
/// exit 0 and print the same checksum); the speedup target (>= 1.5x at
/// --sched-threads=4) is asserted only when the host actually has >= 4
/// hardware threads — on a smaller host the sharded scheduler cannot
/// physically run guests in parallel and the bench degrades to a
/// correctness + overhead report.
///
/// VG_MTSCALE_QUICK=1 shrinks the workload for use as a smoke test.
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "tools/Nulgrind.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

using namespace vg;

namespace {

struct Sample {
  bool Ok = false;
  double Seconds = 0;
  std::string Stdout;
  uint64_t Blocks = 0;
};

Sample runOnce(const GuestImage &Img, unsigned SchedThreads) {
  Nulgrind T;
  char Opt[48];
  std::snprintf(Opt, sizeof Opt, "--sched-threads=%u", SchedThreads);
  RunReport R = runUnderCore(
      Img, &T, {Opt, "--chaining=yes", "--hot-threshold=64"});
  Sample S;
  S.Ok = R.Completed && !R.FatalSignal && R.ExitCode == 0;
  S.Seconds = R.Seconds;
  S.Stdout = R.Stdout;
  S.Blocks = R.Stats.BlocksDispatched;
  return S;
}

/// Best of \p Reps runs (wall-clock benches on shared machines need the
/// minimum, not the mean).
Sample best(const GuestImage &Img, unsigned SchedThreads, int Reps) {
  Sample B;
  for (int I = 0; I != Reps; ++I) {
    Sample S = runOnce(Img, SchedThreads);
    if (!S.Ok)
      return S;
    if (!B.Ok || S.Seconds < B.Seconds)
      B = S;
  }
  return B;
}

} // namespace

int main() {
  bool Quick = std::getenv("VG_MTSCALE_QUICK") != nullptr;
  uint32_t Scale = Quick ? 20 : 400;
  int Reps = Quick ? 1 : 3;
  unsigned HostThreads = std::thread::hardware_concurrency();

  std::printf("== Section 3.14: parallel guest execution scaling ==\n");
  std::printf("workload=mtcpu (4 guest threads) scale=%u tool=nulgrind "
              "host-threads=%u\n",
              Scale, HostThreads);

  GuestImage Img = buildWorkload("mtcpu", Scale);

  const unsigned Configs[] = {1, 2, 4};
  Sample S[3];
  for (int I = 0; I != 3; ++I) {
    S[I] = best(Img, Configs[I], Reps);
    if (!S[I].Ok) {
      std::printf("FAIL: --sched-threads=%u did not complete cleanly\n",
                  Configs[I]);
      return 1;
    }
  }

  std::printf("%-16s %10s %12s %9s\n", "config", "seconds", "blocks",
              "speedup");
  for (int I = 0; I != 3; ++I)
    std::printf("sched-threads=%-2u %10.3f %12llu %8.2fx\n", Configs[I],
                S[I].Seconds,
                static_cast<unsigned long long>(S[I].Blocks),
                S[I].Seconds > 0 ? S[0].Seconds / S[I].Seconds : 0.0);

  for (int I = 1; I != 3; ++I) {
    if (S[I].Stdout != S[0].Stdout) {
      std::printf("FAIL: --sched-threads=%u checksum diverged from the "
                  "serialised scheduler\n",
                  Configs[I]);
      return 1;
    }
  }

  double Speedup4 = S[2].Seconds > 0 ? S[0].Seconds / S[2].Seconds : 0.0;
  if (HostThreads >= 4) {
    if (Speedup4 < 1.5) {
      std::printf("FAIL: speedup at --sched-threads=4 is %.2fx "
                  "(target >= 1.5x on a >=4-thread host)\n",
                  Speedup4);
      return 1;
    }
    std::printf("RESULT: %.2fx at --sched-threads=4, checksums identical\n",
                Speedup4);
  } else {
    std::printf("RESULT: host has %u hardware thread(s); speedup target "
                "not applicable — checksums identical, overhead %.1f%%\n",
                HostThreads,
                S[0].Seconds > 0
                    ? 100.0 * (S[2].Seconds - S[0].Seconds) / S[0].Seconds
                    : 0.0);
  }
  return 0;
}
