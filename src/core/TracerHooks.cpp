//===-- core/TracerHooks.cpp - Event-trace layering -----------------------==//

#include "core/TracerHooks.h"

#include "core/Events.h"
#include "support/EventTrace.h"

using namespace vg;

void vg::installTracerHooks(EventHub &Events, EventTracer *Tr) {
  if (!Tr)
    return;

  auto P1 = Events.PreRegRead;
  Events.PreRegRead = [Tr, P1](int Tid, uint32_t Off, uint32_t Size,
                               const char *Name) {
    Tr->record(Tid, TraceEvent::PreRegRead, Off, Size);
    if (P1)
      P1(Tid, Off, Size, Name);
  };
  auto P2 = Events.PostRegWrite;
  Events.PostRegWrite = [Tr, P2](int Tid, uint32_t Off, uint32_t Size) {
    Tr->record(Tid, TraceEvent::PostRegWrite, Off, Size);
    if (P2)
      P2(Tid, Off, Size);
  };
  auto P3 = Events.PreMemRead;
  Events.PreMemRead = [Tr, P3](int Tid, uint32_t Addr, uint32_t Len,
                               const char *Name) {
    Tr->record(Tid, TraceEvent::PreMemRead, Addr, Len);
    if (P3)
      P3(Tid, Addr, Len, Name);
  };
  auto P4 = Events.PreMemReadAsciiz;
  Events.PreMemReadAsciiz = [Tr, P4](int Tid, uint32_t Addr,
                                     const char *Name) {
    Tr->record(Tid, TraceEvent::PreMemReadAsciiz, Addr);
    if (P4)
      P4(Tid, Addr, Name);
  };
  auto P5 = Events.PreMemWrite;
  Events.PreMemWrite = [Tr, P5](int Tid, uint32_t Addr, uint32_t Len,
                                const char *Name) {
    Tr->record(Tid, TraceEvent::PreMemWrite, Addr, Len);
    if (P5)
      P5(Tid, Addr, Len, Name);
  };
  auto P6 = Events.PostMemWrite;
  Events.PostMemWrite = [Tr, P6](int Tid, uint32_t Addr, uint32_t Len) {
    Tr->record(Tid, TraceEvent::PostMemWrite, Addr, Len);
    if (P6)
      P6(Tid, Addr, Len);
  };
  auto P7 = Events.NewMemStartup;
  Events.NewMemStartup = [Tr, P7](uint32_t Addr, uint32_t Len,
                                  uint8_t Perms) {
    Tr->record(0, TraceEvent::NewMemStartup, Addr, Len, Perms);
    if (P7)
      P7(Addr, Len, Perms);
  };
  auto P8 = Events.NewMemMmap;
  Events.NewMemMmap = [Tr, P8](uint32_t Addr, uint32_t Len, uint8_t Perms) {
    Tr->record(0, TraceEvent::NewMemMmap, Addr, Len, Perms);
    if (P8)
      P8(Addr, Len, Perms);
  };
  auto P9 = Events.DieMemMunmap;
  Events.DieMemMunmap = [Tr, P9](uint32_t Addr, uint32_t Len) {
    Tr->record(0, TraceEvent::DieMemMunmap, Addr, Len);
    if (P9)
      P9(Addr, Len);
  };
  auto P10 = Events.NewMemBrk;
  Events.NewMemBrk = [Tr, P10](uint32_t Addr, uint32_t Len) {
    Tr->record(0, TraceEvent::NewMemBrk, Addr, Len);
    if (P10)
      P10(Addr, Len);
  };
  auto P11 = Events.DieMemBrk;
  Events.DieMemBrk = [Tr, P11](uint32_t Addr, uint32_t Len) {
    Tr->record(0, TraceEvent::DieMemBrk, Addr, Len);
    if (P11)
      P11(Addr, Len);
  };
  auto P12 = Events.CopyMemMremap;
  Events.CopyMemMremap = [Tr, P12](uint32_t Src, uint32_t Dst,
                                   uint32_t Len) {
    Tr->record(0, TraceEvent::CopyMemMremap, Src, Dst, Len);
    if (P12)
      P12(Src, Dst, Len);
  };
  auto P13 = Events.NewMemStack;
  Events.NewMemStack = [Tr, P13](uint32_t Addr, uint32_t Len) {
    Tr->record(0, TraceEvent::NewMemStack, Addr, Len);
    if (P13)
      P13(Addr, Len);
  };
  auto P14 = Events.DieMemStack;
  Events.DieMemStack = [Tr, P14](uint32_t Addr, uint32_t Len) {
    Tr->record(0, TraceEvent::DieMemStack, Addr, Len);
    if (P14)
      P14(Addr, Len);
  };
  auto P15 = Events.PostFileRead;
  Events.PostFileRead = [Tr, P15](int Tid, uint32_t Fd, uint32_t Addr,
                                  uint32_t Len, const char *Source) {
    Tr->record(Tid, TraceEvent::PostFileRead, Fd, Addr, Len);
    if (P15)
      P15(Tid, Fd, Addr, Len, Source);
  };
  auto P16 = Events.PreSyscall;
  Events.PreSyscall = [Tr, P16](int Tid, uint32_t Num) {
    Tr->record(Tid, TraceEvent::SyscallEnter, Num);
    if (P16)
      P16(Tid, Num);
  };
  auto P17 = Events.PostSyscall;
  Events.PostSyscall = [Tr, P17](int Tid, uint32_t Num, uint32_t Result) {
    Tr->record(Tid, TraceEvent::SyscallExit, Num, Result);
    if (P17)
      P17(Tid, Num, Result);
  };
  auto P18 = Events.FaultInjected;
  Events.FaultInjected = [Tr, P18](int Tid, uint32_t Kind, uint32_t Arg) {
    Tr->record(Tid, TraceEvent::FaultInjected, Kind, Arg);
    if (P18)
      P18(Tid, Kind, Arg);
  };
}
