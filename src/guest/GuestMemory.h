//===-- guest/GuestMemory.h - Sparse paged guest address space --*- C++ -*-==//
///
/// \file
/// The client's user-mode address space (the "S" of Section 2): a sparse,
/// demand-allocated, 4KB-paged 32-bit memory with per-page permissions.
/// All guest loads/stores — from the reference interpreter, the HVM-executed
/// translations, and the simulated kernel — go through this object, so a
/// single permission model yields guest SIGSEGVs uniformly.
///
//===----------------------------------------------------------------------===//
#ifndef VG_GUEST_GUESTMEMORY_H
#define VG_GUEST_GUESTMEMORY_H

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

namespace vg {

/// Page permission bits.
enum MemPerm : uint8_t {
  PermNone = 0,
  PermRead = 1,
  PermWrite = 2,
  PermExec = 4,
  PermRW = PermRead | PermWrite,
  PermRX = PermRead | PermExec,
  PermRWX = PermRead | PermWrite | PermExec,
};

/// Result of a guest memory access attempt.
struct MemFault {
  bool Faulted = false;
  uint32_t Addr = 0;     ///< first faulting byte
  bool WasWrite = false; ///< access direction
};

/// Sparse paged 32-bit guest memory.
class GuestMemory {
public:
  static constexpr uint32_t PageSize = 4096;
  static constexpr uint32_t PageShift = 12;

  GuestMemory() = default;
  GuestMemory(const GuestMemory &) = delete;
  GuestMemory &operator=(const GuestMemory &) = delete;

  /// Maps [Addr, Addr+Len) with \p Perms, zero-filling fresh pages.
  /// Page-granular; Addr/Len are rounded outward. Re-mapping an existing
  /// page just updates its permissions (contents preserved).
  void map(uint32_t Addr, uint32_t Len, uint8_t Perms);

  /// Unmaps (discards) all pages intersecting [Addr, Addr+Len).
  void unmap(uint32_t Addr, uint32_t Len);

  /// Changes permissions on already-mapped pages in the range. Pages not
  /// mapped are skipped.
  void protect(uint32_t Addr, uint32_t Len, uint8_t Perms);

  bool isMapped(uint32_t Addr) const { return lookup(Addr >> PageShift); }

  /// Permissions of the page containing \p Addr (PermNone if unmapped).
  uint8_t permsAt(uint32_t Addr) const {
    const Page *P = lookup(Addr >> PageShift);
    return P ? P->Perms : static_cast<uint8_t>(PermNone);
  }

  /// Reads \p Len bytes. Requires PermRead on every page unless
  /// \p IgnorePerms (used by kernel/tool accesses which are not subject to
  /// guest protections). Returns fault info.
  MemFault read(uint32_t Addr, void *Out, uint32_t Len,
                bool IgnorePerms = false) const;

  /// Writes \p Len bytes, requiring PermWrite unless \p IgnorePerms.
  MemFault write(uint32_t Addr, const void *Data, uint32_t Len,
                 bool IgnorePerms = false);

  /// Instruction fetch: requires PermExec.
  MemFault fetch(uint32_t Addr, void *Out, uint32_t Len) const;

  // Typed convenience accessors (checked; return fault). Within-page
  // accesses take a fixed-size fast path; page-straddling ones fall back
  // to the generic byte-exact walker.
  template <typename T> MemFault readT(uint32_t A, T &V) const {
    Page *P = lookup(A >> PageShift);
    uint32_t Off = A & (PageSize - 1);
    if (P && (P->Perms & PermRead) && Off <= PageSize - sizeof(T)) {
      std::memcpy(&V, P->Data.data() + Off, sizeof(T));
      return MemFault{};
    }
    return read(A, &V, sizeof(T));
  }
  template <typename T> MemFault writeT(uint32_t A, T V) {
    Page *P = lookup(A >> PageShift);
    uint32_t Off = A & (PageSize - 1);
    if (P && (P->Perms & PermWrite) && Off <= PageSize - sizeof(T)) {
      std::memcpy(P->Data.data() + Off, &V, sizeof(T));
      return MemFault{};
    }
    return write(A, &V, sizeof(T));
  }
  MemFault readU8(uint32_t A, uint8_t &V) const { return readT(A, V); }
  MemFault readU16(uint32_t A, uint16_t &V) const { return readT(A, V); }
  MemFault readU32(uint32_t A, uint32_t &V) const { return readT(A, V); }
  MemFault readU64(uint32_t A, uint64_t &V) const { return readT(A, V); }
  MemFault writeU8(uint32_t A, uint8_t V) { return writeT(A, V); }
  MemFault writeU16(uint32_t A, uint16_t V) { return writeT(A, V); }
  MemFault writeU32(uint32_t A, uint32_t V) { return writeT(A, V); }
  MemFault writeU64(uint32_t A, uint64_t V) { return writeT(A, V); }

  uint64_t pagesAllocated() const { return Pages.size(); }

  /// One coalesced run of executable pages, copied out of the address
  /// space. Background translation workers fetch guest code from these
  /// snapshots: GuestMemory itself is not safe to share (even const reads
  /// refresh the one-entry TLB), and a snapshot pins the code bytes as
  /// they were when the promotion was requested.
  struct ExecSnapshot {
    struct Range {
      uint32_t Base = 0;
      std::vector<uint8_t> Bytes;
    };
    std::vector<Range> Ranges; ///< sorted by Base, non-overlapping

    /// Fetch \p Len bytes at \p Addr; false if any byte falls outside the
    /// snapshotted executable ranges (the worker then abandons the job).
    bool fetch(uint32_t Addr, void *Out, uint32_t Len) const;
  };

  /// Copies every executable page into a snapshot, coalescing adjacent
  /// pages into runs. Guest thread only.
  ExecSnapshot snapshotExecRanges() const;

private:
  struct Page {
    std::array<uint8_t, PageSize> Data;
    uint8_t Perms;
  };

  Page *lookup(uint32_t PageIdx) const {
    if (PageIdx == LastIdx)
      return LastPage;
    auto It = Pages.find(PageIdx);
    if (It == Pages.end())
      return nullptr;
    LastIdx = PageIdx;
    LastPage = It->second.get();
    return LastPage;
  }

  template <bool IsWrite>
  MemFault access(uint32_t Addr, void *Buf, uint32_t Len,
                  uint8_t NeedPerm) const;

  std::unordered_map<uint32_t, std::unique_ptr<Page>> Pages;
  // One-entry TLB; accesses are overwhelmingly within a recently used page.
  mutable uint32_t LastIdx = ~0u;
  mutable Page *LastPage = nullptr;
};

} // namespace vg

#endif // VG_GUEST_GUESTMEMORY_H
