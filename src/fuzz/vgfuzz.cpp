//===-- fuzz/vgfuzz.cpp - Differential fuzzing driver ---------------------==//
///
/// \file
/// The command-line front end of the differential fuzzing subsystem:
///
///   vgfuzz --iters=200 --seed=1          # campaign: generate, diff, shrink
///   vgfuzz --replay=case.vg1             # rerun a saved repro (full matrix)
///   vgfuzz --corpus=fuzz/corpus          # replay every saved repro
///   vgfuzz --self-test --seed=1          # plant an IROpt bug, prove the
///                                        # harness catches + shrinks it
///
/// A campaign renders each seeded program, runs RefInterp as oracle against
/// the full config matrix, and on divergence shrinks to a minimal repro and
/// writes it (with a disassembly listing) to --save-dir. Exit status: 0
/// clean, 1 divergence(s) found / replay failed, 2 usage.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/DiffRunner.h"
#include "fuzz/Shrinker.h"
#include "ir/IROpt.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

using namespace vg;
using namespace vg::fuzz;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: vgfuzz [mode] [options]\n"
      "modes (default: campaign)\n"
      "  --replay=FILE       rerun one saved .vg1 case on the full matrix\n"
      "  --corpus=DIR        replay every .vg1 case in DIR\n"
      "  --self-test         plant an IROpt miscompile; prove it is caught\n"
      "                      and shrunk (the harness's smoke-proof)\n"
      "campaign options\n"
      "  --iters=N           programs to generate (default 100)\n"
      "  --seed=S            base seed; program i uses S+i (default 1)\n"
      "  --min-atoms=N --max-atoms=N   body size range (default 4..40)\n"
      "  --signals=auto|never|always   signal-raising programs (default auto)\n"
      "  --smc=auto|never|always       self-modifying programs (default auto)\n"
      "  --config=NAME       restrict the matrix to cells whose name\n"
      "                      contains NAME\n"
      "  --stop-after=K      stop after K divergences (default 5)\n"
      "  --save-dir=DIR      where minimized repros go (default\n"
      "                      vgfuzz-failures)\n"
      "  --quiet             no per-iteration progress\n");
  return 2;
}

int parseTri(const std::string &V) {
  if (V == "never")
    return 0;
  if (V == "auto")
    return 1;
  if (V == "always")
    return 2;
  return -1;
}

std::vector<FuzzConfig> filteredMatrix(const FuzzProgram &P,
                                       const std::string &Filter) {
  std::vector<FuzzConfig> M = defaultMatrix(P);
  if (Filter.empty())
    return M;
  std::vector<FuzzConfig> Out;
  for (auto &C : M)
    if (C.Name.find(Filter) != std::string::npos)
      Out.push_back(std::move(C));
  return Out;
}

/// Replays one program against the matrix, printing per-config verdicts.
bool replayProgram(const FuzzProgram &P, const std::string &Label,
                   const std::string &Filter) {
  DiffResult R = diffRun(P, filteredMatrix(P, Filter));
  if (R.ok()) {
    std::printf("%s: clean (loop=%u atoms=%u%s%s)\n", Label.c_str(),
                P.LoopCount, P.totalAtoms(), P.Signals ? " signals" : "",
                P.Smc ? " smc" : "");
    return true;
  }
  std::printf("%s: DIVERGED\n", Label.c_str());
  for (const Divergence &D : R.Divs)
    std::printf("  %s\n", D.describe().c_str());
  return false;
}

/// Shrinks a diverging program and saves the minimal repro.
void shrinkAndSave(const FuzzProgram &P, const Divergence &First,
                   const std::string &SaveDir, bool Quiet) {
  FuzzConfig Failing;
  bool Oracle = First.Config == "oracle";
  if (!Oracle) {
    for (const FuzzConfig &C : defaultMatrix(P))
      if (C.Name == First.Config)
        Failing = C;
  } else {
    // Oracle failures shrink against any cell; nulgrind is the cheapest.
    Failing = defaultMatrix(P).front();
  }
  ShrinkOutcome S = shrinkProgram(P, Failing);
  std::error_code EC;
  std::filesystem::create_directories(SaveDir, EC);
  std::string Path =
      SaveDir + "/seed-" + std::to_string(P.Seed) + "-" + First.Config + "-" +
      First.Field + ".vg1";
  bool Saved = saveCase(Path, S.Minimal);
  std::printf("  shrunk: %u -> %u atoms (%u body instrs) in %u evals\n",
              S.AtomsBefore, S.AtomsAfter, S.InstrsAfter, S.Evals);
  std::printf("  minimal divergence: %s\n", S.Div.describe().c_str());
  std::printf("  %s %s\n", Saved ? "saved:" : "FAILED to save:", Path.c_str());
  if (!Quiet) {
    std::string Text = serialize(S.Minimal, /*WithDisasm=*/false);
    std::printf("---- minimal case ----\n%s----------------------\n",
                Text.c_str());
  }
}

int runCampaign(uint64_t Seed, unsigned Iters, const GenOptions &GO,
                const std::string &Filter, unsigned StopAfter,
                const std::string &SaveDir, bool Quiet) {
  unsigned Diverged = 0;
  for (unsigned I = 0; I < Iters; ++I) {
    uint64_t S = Seed + I;
    FuzzProgram P = generate(S, GO);
    DiffResult R = diffRun(P, filteredMatrix(P, Filter));
    if (!Quiet && (I + 1) % 50 == 0)
      std::printf("... %u/%u programs (seed %llu), %u divergence(s)\n", I + 1,
                  Iters, static_cast<unsigned long long>(S), Diverged);
    if (R.ok())
      continue;
    ++Diverged;
    std::printf("seed %llu: DIVERGED (%zu finding(s))\n",
                static_cast<unsigned long long>(S), R.Divs.size());
    for (const Divergence &D : R.Divs)
      std::printf("  %s\n", D.describe().c_str());
    shrinkAndSave(P, R.Divs.front(), SaveDir, Quiet);
    if (Diverged >= StopAfter) {
      std::printf("stopping after %u divergence(s)\n", Diverged);
      break;
    }
  }
  std::printf("vgfuzz: %u program(s), %u divergence(s)\n", Iters, Diverged);
  return Diverged ? 1 : 0;
}

int runSelfTest(uint64_t Seed, unsigned Iters, const GenOptions &GO) {
  std::printf("self-test: planting IROpt bug (Add32(x,1) -> x) ...\n");
  ir::setFuzzPlant(1);
  for (unsigned I = 0; I < Iters; ++I) {
    uint64_t S = Seed + I;
    FuzzProgram P = generate(S, GO);
    DiffResult R = diffRun(P, defaultMatrix(P));
    if (R.ok())
      continue;
    const Divergence &First = R.Divs.front();
    std::printf("self-test: caught at seed %llu: %s\n",
                static_cast<unsigned long long>(S), First.describe().c_str());
    FuzzConfig Failing;
    for (const FuzzConfig &C : defaultMatrix(P))
      if (C.Name == First.Config)
        Failing = C;
    ShrinkOutcome Sh = shrinkProgram(P, Failing);
    std::printf("self-test: shrunk %u -> %u atoms, %u body instrs, %u evals\n",
                Sh.AtomsBefore, Sh.AtomsAfter, Sh.InstrsAfter, Sh.Evals);
    std::printf("---- minimal case ----\n%s----------------------\n",
                serialize(Sh.Minimal, false).c_str());
    // With the plant removed the minimal case must be clean again —
    // proving the divergence was the planted bug, not harness noise.
    ir::setFuzzPlant(0);
    DiffResult Clean = diffRun(Sh.Minimal, defaultMatrix(Sh.Minimal));
    if (!Clean.ok()) {
      std::printf("self-test: FAIL: minimal case still diverges without the "
                  "plant:\n");
      for (const Divergence &D : Clean.Divs)
        std::printf("  %s\n", D.describe().c_str());
      return 1;
    }
    if (Sh.InstrsAfter > 8) {
      std::printf("self-test: FAIL: minimal repro has %u body instrs (> 8)\n",
                  Sh.InstrsAfter);
      return 1;
    }
    std::printf("self-test: PASS: planted bug caught and shrunk to %u body "
                "instr(s) (the scaffold's own loop increment carries the "
                "Add32(x,1) pattern)\n",
                Sh.InstrsAfter);
    return 0;
  }
  ir::setFuzzPlant(0);
  std::printf("self-test: FAIL: planted bug not caught in %u programs\n",
              Iters);
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Seed = 1;
  unsigned Iters = 100, StopAfter = 5;
  GenOptions GO;
  std::string Replay, CorpusDir, Filter, SaveDir = "vgfuzz-failures";
  bool SelfTest = false, Quiet = false;

  for (int I = 1; I != argc; ++I) {
    std::string A = argv[I];
    auto val = [&](const char *Pfx) -> const char * {
      size_t N = std::strlen(Pfx);
      return A.rfind(Pfx, 0) == 0 ? A.c_str() + N : nullptr;
    };
    if (const char *V = val("--iters="))
      Iters = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    else if (const char *V = val("--seed="))
      Seed = std::strtoull(V, nullptr, 10);
    else if (const char *V = val("--min-atoms="))
      GO.MinBodyAtoms = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    else if (const char *V = val("--max-atoms="))
      GO.MaxBodyAtoms = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    else if (const char *V = val("--signals=")) {
      if ((GO.Signals = parseTri(V)) < 0)
        return usage();
    } else if (const char *V = val("--smc=")) {
      if ((GO.Smc = parseTri(V)) < 0)
        return usage();
    } else if (const char *V = val("--config="))
      Filter = V;
    else if (const char *V = val("--stop-after="))
      StopAfter = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    else if (const char *V = val("--save-dir="))
      SaveDir = V;
    else if (const char *V = val("--replay="))
      Replay = V;
    else if (const char *V = val("--corpus="))
      CorpusDir = V;
    else if (A == "--self-test")
      SelfTest = true;
    else if (A == "--quiet")
      Quiet = true;
    else
      return usage();
  }
  if (GO.MinBodyAtoms > GO.MaxBodyAtoms || Iters == 0 || StopAfter == 0)
    return usage();

  if (!Replay.empty()) {
    FuzzProgram P;
    std::string Err;
    if (!loadCase(Replay, P, Err)) {
      std::fprintf(stderr, "vgfuzz: %s\n", Err.c_str());
      return 2;
    }
    return replayProgram(P, Replay, Filter) ? 0 : 1;
  }
  if (!CorpusDir.empty()) {
    std::vector<std::string> Cases = listCases(CorpusDir);
    if (Cases.empty()) {
      std::fprintf(stderr, "vgfuzz: no .vg1 cases under %s\n",
                   CorpusDir.c_str());
      return 2;
    }
    bool AllClean = true;
    for (const std::string &Path : Cases) {
      FuzzProgram P;
      std::string Err;
      if (!loadCase(Path, P, Err)) {
        std::fprintf(stderr, "vgfuzz: %s\n", Err.c_str());
        return 2;
      }
      AllClean &= replayProgram(P, Path, Filter);
    }
    return AllClean ? 0 : 1;
  }
  if (SelfTest)
    return runSelfTest(Seed, std::min(Iters, 50u), GO);
  return runCampaign(Seed, Iters, GO, Filter, StopAfter, SaveDir, Quiet);
}
