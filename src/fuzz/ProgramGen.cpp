//===-- fuzz/ProgramGen.cpp - Seeded VG1 program generator ----------------==//

#include "fuzz/ProgramGen.h"

#include "core/ClientRequests.h"
#include "guest/Disasm.h"
#include "guest/GuestMemory.h"
#include "guestlib/GuestLib.h"
#include "kernel/SimKernel.h"
#include "core/Core.h"

#include <cstring>
#include <sstream>

using namespace vg;
using namespace vg::fuzz;
using vg1::Assembler;
using vg1::Cond;
using vg1::FReg;
using vg1::Label;
using vg1::Reg;

//===----------------------------------------------------------------------===//
// Fixed layout of the generated program
//===----------------------------------------------------------------------===//

namespace {

// Checksummed buffer (r12): atom load/store playground, then the
// observation areas the epilogue fills.
constexpr uint32_t BodyBytes = 0x1000;       // atom load/store region
constexpr uint32_t FpDumpBase = 0x1000;      // 8 F64 slots
constexpr uint32_t ProbeBase = 0x1040;       // 16 in-body flag-probe slots
constexpr uint32_t FinalFlagBase = 0x1080;   // 10 final condition slots
constexpr uint32_t BufBytes = 0x10A8;        // total (4-byte multiple)

// Scratch (r13): never checksummed. [0,16) syscall sink + handler slot,
// [16, 0x200) deterministic I/O area (read(2) target, LoadIo source).
constexpr uint32_t ScratchBytes = 0x200;
constexpr uint32_t IoBase = 16;

// RefInterp's predecode cache is direct-mapped on the low 16 address bits;
// executing code at +64 KiB evicts the aliased entries (the "icache
// flush" idiom the SMC section relies on).
constexpr uint32_t DCacheAlias = 1u << 16;

constexpr uint32_t NumProbeSlots = 16;

Reg dataReg(unsigned V) { return static_cast<Reg>(1 + V % 9); }
FReg fpReg(unsigned V) { return static_cast<FReg>(V % 8); }
Cond cond(unsigned V) { return static_cast<Cond>(V % vg1::NumConds); }

/// Non-negative modulo of the (possibly negative) atom immediate — every
/// derived displacement must stay inside the buffer.
uint32_t umod(int64_t Imm, uint32_t M) {
  return static_cast<uint32_t>(static_cast<uint64_t>(Imm) % M);
}

/// Deterministic per-atom constant used to renormalise registers that held
/// engine-dependent values (addresses, kernel results).
uint32_t normConst(const Atom &At, uint32_t Salt) {
  uint64_t H = Salt * 0x9E3779B97F4A7C15ull;
  H ^= (uint64_t)At.A << 8 | (uint64_t)At.B << 16 | (uint64_t)At.C << 24;
  H ^= (uint64_t)At.Imm * 0xBF58476D1CE4E5B9ull;
  H ^= H >> 29;
  return static_cast<uint32_t>(H * 0x94D049BB133111EBull >> 32);
}

//===----------------------------------------------------------------------===//
// Atom rendering
//===----------------------------------------------------------------------===//

struct RenderCtx {
  Assembler &Code;
  GuestLibLabels &Lib;
  std::vector<Label> LeafL;
  unsigned ProbeSlot = 0;

  RenderCtx(Assembler &C, GuestLibLabels &L) : Code(C), Lib(L) {}

  void emitAtom(const Atom &At) {
    Assembler &A = Code;
    Reg Rd = dataReg(At.B), Rs = dataReg(At.C), Rt = dataReg(At.D);
    switch (At.K) {
    case AtomKind::Alu3:
      switch (At.A % 14) {
      case 0: A.add(Rd, Rs, Rt); break;
      case 1: A.sub(Rd, Rs, Rt); break;
      case 2: A.and_(Rd, Rs, Rt); break;
      case 3: A.or_(Rd, Rs, Rt); break;
      case 4: A.xor_(Rd, Rs, Rt); break;
      case 5: A.shl(Rd, Rs, Rt); break;
      case 6: A.shr(Rd, Rs, Rt); break;
      case 7: A.sar(Rd, Rs, Rt); break;
      case 8: A.mul(Rd, Rs, Rt); break;
      case 9: A.divu(Rd, Rs, Rt); break;
      case 10: A.divs(Rd, Rs, Rt); break;
      case 11: A.vadd8(Rd, Rs, Rt); break;
      case 12: A.vsub8(Rd, Rs, Rt); break;
      case 13: A.vcmpgt8(Rd, Rs, Rt); break;
      }
      break;
    case AtomKind::AluImm:
      switch (At.A % 5) {
      case 0: A.addi(Rd, Rs, static_cast<int32_t>(At.Imm)); break;
      case 1: A.andi(Rd, Rs, static_cast<uint32_t>(At.Imm)); break;
      // imm8 deliberately unreduced: amounts >= 32 probe the shift-mask
      // agreement between RefInterp, evalOp and the host JIT.
      case 2: A.shli(Rd, Rs, static_cast<uint8_t>(At.Imm)); break;
      case 3: A.shri(Rd, Rs, static_cast<uint8_t>(At.Imm)); break;
      case 4: A.sari(Rd, Rs, static_cast<uint8_t>(At.Imm)); break;
      }
      break;
    case AtomKind::MovImm:
      A.movi(Rd, static_cast<uint32_t>(At.Imm));
      break;
    case AtomKind::MovReg:
      A.mov(Rd, Rs);
      break;
    case AtomKind::CmpRR:
      A.cmp(Rs, Rt);
      break;
    case AtomKind::CmpImm:
      A.cmpi(Rs, static_cast<int32_t>(At.Imm));
      break;
    case AtomKind::Load: {
      // r11 = r12 + (rs & mask); then a displaced (possibly unaligned)
      // load that stays inside [0, BodyBytes).
      unsigned W = At.A % 5;
      A.andi(Reg::R11, Rs, 0xFF8);
      A.add(Reg::R11, Reg::R11, Reg::R12);
      switch (W) {
      case 0: // word: disp 0..4 covers unaligned accesses
        A.ld(Rd, Reg::R11, static_cast<int16_t>(umod(At.Imm, 5)));
        break;
      case 1:
        A.ldb(Rd, Reg::R11, static_cast<int16_t>(umod(At.Imm, 8)));
        break;
      case 2:
        A.ldsb(Rd, Reg::R11, static_cast<int16_t>(umod(At.Imm, 8)));
        break;
      case 3:
        A.ldh(Rd, Reg::R11, static_cast<int16_t>(umod(At.Imm, 7)));
        break;
      case 4:
        A.ldsh(Rd, Reg::R11, static_cast<int16_t>(umod(At.Imm, 7)));
        break;
      }
      break;
    }
    case AtomKind::Store: {
      unsigned W = At.A % 3;
      A.andi(Reg::R11, Rs, 0xFF8);
      A.add(Reg::R11, Reg::R11, Reg::R12);
      switch (W) {
      case 0:
        A.st(Reg::R11, static_cast<int16_t>(umod(At.Imm, 5)), Rt);
        break;
      case 1:
        A.stb(Reg::R11, static_cast<int16_t>(umod(At.Imm, 8)), Rt);
        break;
      case 2:
        A.sth(Reg::R11, static_cast<int16_t>(umod(At.Imm, 7)), Rt);
        break;
      }
      break;
    }
    case AtomKind::LoadX: {
      uint8_t S = At.A % 4;
      A.andi(Reg::R11, Rs, 0xFC); // 4-aligned index, (0xFC<<3)+60 < BodyBytes
      A.ldx(Rd, Reg::R12, Reg::R11, S,
            static_cast<int32_t>(umod(At.Imm, 16) * 4));
      break;
    }
    case AtomKind::StoreX: {
      uint8_t S = At.A % 4;
      A.andi(Reg::R11, Rs, 0xFC);
      A.stx(Reg::R12, Reg::R11, S, static_cast<int32_t>(umod(At.Imm, 16) * 4),
            Rt);
      break;
    }
    case AtomKind::PushPop:
      A.push(Rs);
      A.pop(Rd);
      break;
    case AtomKind::SkipInc: {
      Label L = A.newLabel();
      A.cmp(Rs, Rt);
      A.bcc(cond(At.A), L);
      A.addi(Rd, Rd, 1);
      A.bind(L);
      break;
    }
    case AtomKind::FlagProbe: {
      // Records "condition was false" for whatever thunk the previous
      // atoms left, into a dedicated slot (movi/bcc/st set no flags).
      unsigned Slot = ProbeSlot++ % NumProbeSlots;
      Label L = A.newLabel();
      A.movi(Reg::R11, static_cast<uint32_t>(At.Imm) | 1);
      A.bcc(cond(At.A), L);
      A.st(Reg::R12, static_cast<int16_t>(ProbeBase + Slot * 4), Reg::R11);
      A.bind(L);
      break;
    }
    case AtomKind::FAlu3: {
      FReg Fd = fpReg(At.B), Fs = fpReg(At.C), Ft = fpReg(At.D);
      switch (At.A % 4) {
      case 0: A.fadd(Fd, Fs, Ft); break;
      case 1: A.fsub(Fd, Fs, Ft); break;
      case 2: A.fmul(Fd, Fs, Ft); break;
      case 3: A.fdiv(Fd, Fs, Ft); break;
      }
      break;
    }
    case AtomKind::FUnary:
      if (At.A % 2)
        A.fmov(fpReg(At.B), fpReg(At.C));
      else
        A.fneg(fpReg(At.B), fpReg(At.C));
      break;
    case AtomKind::FMovImm: {
      double V;
      uint64_t Bits = static_cast<uint64_t>(At.Imm);
      std::memcpy(&V, &Bits, 8);
      A.fmovi(fpReg(At.B), V);
      break;
    }
    case AtomKind::FConvI2D:
      A.fitod(fpReg(At.B), Rs);
      break;
    case AtomKind::FConvD2I:
      A.fdtoi(Rd, fpReg(At.C));
      break;
    case AtomKind::FCmp:
      A.fcmp(fpReg(At.C), fpReg(At.D));
      break;
    case AtomKind::FLoad:
      A.andi(Reg::R11, Rs, 0x7F8);
      A.add(Reg::R11, Reg::R11, Reg::R12);
      A.fld(fpReg(At.B), Reg::R11,
            static_cast<int16_t>(umod(At.Imm, 0x100) & ~7u));
      break;
    case AtomKind::FStore:
      A.andi(Reg::R11, Rs, 0x7F8);
      A.add(Reg::R11, Reg::R11, Reg::R12);
      A.fst(Reg::R11, static_cast<int16_t>(umod(At.Imm, 0x100) & ~7u),
            fpReg(At.D));
      break;
    case AtomKind::CpuInfo:
      A.cpuinfo();
      break;
    case AtomKind::ClReq:
      // Request code 0 is unknown everywhere: returns 0 both natively
      // (RefInterp's no-op contract) and under the core.
      A.movi(Reg::R0, 0);
      A.clreq();
      break;
    case AtomKind::ClReqCore:
      // RUNNING_ON_VALGRIND through either encoding: the canonical tagged
      // code or its legacy flat alias (the engine must normalise both to
      // the same answer). The result differs by construction — 1 under the
      // core, 0 natively — so r0 is renormalised to a seeded constant.
      A.movi(Reg::R0, (At.A & 1) ? CrLegacyRunningOnValgrind
                                 : CrRunningOnValgrind);
      A.clreq();
      A.movi(Reg::R0, normConst(At, 0x43));
      break;
    case AtomKind::ClReqTool: {
      // A tool-namespace request: Loopgrind's start/stop (side effects
      // only — harmless under every other tool, which just declines it) or
      // a code in the unclaimed 'Z','Z' namespace. All of them return 0
      // everywhere today, but tools own their namespaces, so r0 is
      // renormalised rather than relied on.
      uint32_t Code;
      switch (At.A & 3) {
      case 0:
        Code = vgRequest(vgToolTag('L', 'G'), 1); // LgStart
        break;
      case 1:
        Code = vgRequest(vgToolTag('L', 'G'), 2); // LgStop
        break;
      default:
        Code = vgRequest(vgToolTag('Z', 'Z'), umod(At.Imm, 0x10000));
        break;
      }
      A.movi(Reg::R0, Code);
      A.clreq();
      A.movi(Reg::R0, normConst(At, 0x5A));
      break;
    }
    case AtomKind::SysWrite: {
      uint32_t Off = static_cast<uint32_t>(At.Imm) & 0xFC0;
      A.movi(Reg::R0, SysWrite);
      A.movi(Reg::R1, 1);
      A.addi(Reg::R2, Reg::R12, static_cast<int32_t>(Off));
      A.movi(Reg::R3, 1 + At.A % 32);
      A.sys();
      A.movi(Reg::R2, normConst(At, 0x57)); // r2 held an address
      break;
    }
    case AtomKind::SysRead: {
      uint32_t Off = static_cast<uint32_t>(At.Imm) & 0x1C0;
      A.movi(Reg::R0, SysRead);
      A.movi(Reg::R1, 0);
      A.addi(Reg::R2, Reg::R13, static_cast<int32_t>(IoBase + Off));
      A.movi(Reg::R3, 1 + At.A % 32);
      A.sys();
      A.movi(Reg::R2, normConst(At, 0x52));
      break;
    }
    case AtomKind::LoadIo: {
      uint32_t Off = umod(At.Imm, 0x1E9) & ~3u;
      A.addi(Reg::R11, Reg::R13, static_cast<int32_t>(IoBase + Off));
      A.ld(Rd, Reg::R11, 0);
      break;
    }
    case AtomKind::SysTime:
      A.movi(Reg::R0, SysGettimeofday);
      A.mov(Reg::R1, Reg::R13); // sink: scratch[0..8), never observed
      A.sys();
      A.movi(Reg::R1, normConst(At, 0x71));
      A.movi(Reg::R0, normConst(At, 0x72)); // virtual clocks may drift
      break;
    case AtomKind::SysGetpid:
      A.movi(Reg::R0, SysGetpid);
      A.sys();
      A.movi(Reg::R0, normConst(At, 0x9D));
      break;
    case AtomKind::SysYield:
      A.movi(Reg::R0, SysYield);
      A.sys();
      A.movi(Reg::R0, normConst(At, 0x91));
      break;
    case AtomKind::SysKill:
      // Natively there is no KernelHost: kill fails with SysErr and no
      // handler ever runs, so both the result and every handler effect
      // must be invisible to the observation epilogue.
      A.movi(Reg::R0, SysKill);
      A.movi(Reg::R1, 0); // main thread
      A.movi(Reg::R2, At.A % 2 ? SigUSR2 : SigUSR1);
      A.sys();
      A.movi(Reg::R0, normConst(At, 0xA1));
      A.movi(Reg::R1, normConst(At, 0xA2));
      A.movi(Reg::R2, normConst(At, 0xA3));
      break;
    case AtomKind::CallFn:
      if (LeafL.empty())
        A.nop();
      else
        A.call(LeafL[At.A % LeafL.size()]);
      break;
    case AtomKind::CallrFn:
      if (LeafL.empty()) {
        A.nop();
      } else {
        A.leai(Reg::R11, LeafL[At.A % LeafL.size()]);
        A.callr(Reg::R11);
      }
      break;
    case AtomKind::JmprSkip: {
      // The poison movi must never execute; a fallthrough bug in either
      // engine shows up as Rd == poison in the register dump.
      Label L = A.newLabel();
      A.leai(Reg::R11, L);
      A.jmpr(Reg::R11);
      A.movi(Rd, static_cast<uint32_t>(At.Imm) | 0xDEAD0000);
      A.bind(L);
      break;
    }
    }
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// render
//===----------------------------------------------------------------------===//

GuestImage vg::fuzz::render(const FuzzProgram &P) {
  Assembler Code(0x1000);
  Assembler Data(0x100000);
  GuestLibLabels Lib = emitGuestLib(Code, Data);
  Label Main = Code.newLabel();
  uint32_t Entry = emitStart(Code, Main);

  Rng R(P.Seed ^ 0xC0FFEEull); // render-time constants
  RenderCtx Ctx(Code, Lib);

  // --- leaf functions ----------------------------------------------------
  for (const auto &Leaf : P.Leaves) {
    Ctx.LeafL.push_back(Code.boundLabel());
    for (const Atom &At : Leaf)
      Ctx.emitAtom(At);
    Code.ret();
  }

  Label Handler = Code.newLabel();
  if (P.Signals) {
    // Handler effects are confined to scratch; sigreturn restores the
    // full interrupted context, so register clobbers are invisible.
    Code.bind(Handler);
    Code.movi(Reg::R11, 0x51);
    Code.st(Reg::R13, 8, Reg::R11);
    Code.movi(Reg::R0, SysSigreturn);
    Code.sys();
    Code.hlt(); // not reached
  }

  // --- main ---------------------------------------------------------------
  Code.bind(Main);
  // r12 = calloc(1, BufBytes): zeroed AND marked defined under Memcheck.
  Code.movi(Reg::R1, 1);
  Code.movi(Reg::R2, BufBytes);
  Code.call(Lib.Calloc);
  Code.mov(Reg::R12, Reg::R0);
  Code.movi(Reg::R1, 1);
  Code.movi(Reg::R2, ScratchBytes);
  Code.call(Lib.Calloc);
  Code.mov(Reg::R13, Reg::R0);

  if (P.Signals) {
    // Install after r12/r13 are valid: delivery can interrupt anything
    // that follows, and the handler dereferences r13.
    for (int Sig : {SigUSR1, SigUSR2}) {
      Code.movi(Reg::R0, SysSigaction);
      Code.movi(Reg::R1, static_cast<uint32_t>(Sig));
      Code.leai(Reg::R2, Handler);
      Code.sys();
    }
    Code.movi(Reg::R0, 0); // old-handler result differs native vs core
  }

  // Seeded initial data state (same derivation order every render).
  for (unsigned I = 1; I <= 9; ++I)
    Code.movi(static_cast<Reg>(I), static_cast<uint32_t>(R.next()));
  for (unsigned I = 0; I < 8; ++I) {
    static const uint64_t Specials[] = {
        0x0000000000000000ull, // 0.0
        0x8000000000000000ull, // -0.0
        0x3FF0000000000000ull, // 1.0
        0xBFF8000000000000ull, // -1.5
        0x7FF0000000000000ull, // +inf
        0x7FF8000000000001ull, // NaN
        0x41DFFFFFFFC00000ull, // 2147483647.0
        0xC1E0000000000000ull, // -2147483648.0
    };
    uint64_t Bits = R.below(2) ? Specials[R.below(8)] : R.next();
    double V;
    std::memcpy(&V, &Bits, 8);
    Code.fmovi(static_cast<FReg>(I), V);
  }
  Code.movi(Reg::R10, 0);
  // Normalise the CC thunk before the first body atom runs. Without this,
  // flag-reading atoms observe whatever NZCV the *allocator* left behind —
  // and heap-tracking tools run their replacement allocator, which leaves
  // different flags than the guestlib one. (Found by the fuzzer: seed 11's
  // one-atom flagprobe repro diverged under memcheck for exactly this.)
  Code.cmpi(Reg::R10, 0);

  // --- the loop -----------------------------------------------------------
  Label LoopTop = Code.boundLabel();
  for (const Atom &At : P.Body)
    Ctx.emitAtom(At);
  Code.addi(Reg::R10, Reg::R10, 1);
  Code.cmpi(Reg::R10, static_cast<int32_t>(P.LoopCount ? P.LoopCount : 1));
  Code.blt(LoopTop);

  // --- observation epilogue ----------------------------------------------
  // 1. Final flag probes: the loop-exit thunk, before anything perturbs it
  //    (movi/bcc/st set no flags).
  Code.movi(Reg::R11, 1);
  for (unsigned C = 0; C < vg1::NumConds; ++C) {
    Label L = Code.newLabel();
    Code.bcc(static_cast<Cond>(C), L);
    Code.st(Reg::R12, static_cast<int16_t>(FinalFlagBase + C * 4), Reg::R11);
    Code.bind(L);
  }

  // 2. Self-modifying section: run a tiny function, patch its MOVI
  //    immediate in place, flush via the +64 KiB NOP-sled alias, rerun.
  //    Correct SMC handling (native flush idiom, --smc-check=all under the
  //    core) leaves NewImm in the data register; a stale translation or
  //    stale predecode leaves OldImm.
  Label SmcFunc = Code.newLabel(), FlushFunc = Code.newLabel();
  Reg SmcRd = dataReg(static_cast<unsigned>(R.below(9)));
  uint32_t SmcOld = static_cast<uint32_t>(R.next());
  uint32_t SmcNew = static_cast<uint32_t>(R.next());
  if (P.Smc) {
    Code.call(SmcFunc);
    Code.movi(Reg::R10, SmcNew);
    Code.leai(Reg::R11, SmcFunc);
    Code.st(Reg::R11, 2, Reg::R10); // patch the MOVI imm32 field
    Code.call(FlushFunc);
    Code.call(SmcFunc);
  }

  // 3. FP dump into the checksummed buffer.
  for (unsigned I = 0; I < 8; ++I)
    Code.fst(Reg::R12, static_cast<int16_t>(FpDumpBase + I * 8),
             static_cast<FReg>(I));

  // 4. Register dump r9..r1 (push all first: print_u32 clobbers r0..r5).
  for (unsigned I = 1; I <= 9; ++I)
    Code.push(static_cast<Reg>(I));
  for (unsigned I = 0; I < 9; ++I) {
    Code.pop(Reg::R1);
    Code.call(Lib.PrintU32);
  }

  // 5. Memory checksum over the whole buffer; digest printed and folded
  //    into the exit status.
  Code.movi(Reg::R1, 0);
  Code.movi(Reg::R2, 0);
  Code.movi(Reg::R4, 0x01000193);
  Label CsLoop = Code.boundLabel();
  Code.ldx(Reg::R3, Reg::R12, Reg::R2, 0, 0);
  Code.mul(Reg::R1, Reg::R1, Reg::R4);
  Code.add(Reg::R1, Reg::R1, Reg::R3);
  Code.addi(Reg::R2, Reg::R2, 4);
  Code.cmpi(Reg::R2, BufBytes);
  Code.blt(CsLoop);
  Code.mov(Reg::R6, Reg::R1);
  Code.call(Lib.PrintU32);
  Code.andi(Reg::R0, Reg::R6, 0x7F);
  Code.ret();

  if (P.Smc) {
    uint32_t PatchAddr = Code.here();
    Code.bind(SmcFunc);
    Code.movi(SmcRd, SmcOld);
    Code.ret();
    // NOP-sled flusher at the decode-cache alias of the patched bytes.
    Code.emitZeros(PatchAddr + DCacheAlias - Code.here());
    Code.bind(FlushFunc);
    for (int I = 0; I < 8; ++I)
      Code.nop();
    Code.ret();
  }

  if (!P.Smc)
    return GuestImageBuilder()
        .addCode(Code)
        .addData(Data)
        .entry(Entry)
        .build();

  // SMC programs need a writable code segment; build the image by hand.
  GuestImage Img;
  Img.Entry = Entry;
  ImageSegment CS;
  CS.Base = Code.baseAddr();
  CS.Perms = PermRWX;
  for (const auto &[Name, Addr] : Code.symbols())
    Img.Symbols[Name] = Addr;
  CS.Bytes = Code.finalize();
  Img.Segments.push_back(std::move(CS));
  ImageSegment DS;
  DS.Base = Data.baseAddr();
  DS.Perms = PermRW;
  for (const auto &[Name, Addr] : Data.symbols())
    Img.Symbols[Name] = Addr;
  DS.Bytes = Data.finalize();
  Img.Segments.push_back(std::move(DS));
  return Img;
}

//===----------------------------------------------------------------------===//
// generate
//===----------------------------------------------------------------------===//

namespace {

/// (kind, weight, allowed-in-leaf) — biases follow the ISSUE: addressing
/// modes, flags, FP/SIMD, CPUINFO, syscalls, control flow.
struct KindWeight {
  AtomKind K;
  unsigned W;
  bool Leaf;
};
const KindWeight Weights[] = {
    {AtomKind::Alu3, 20, true},     {AtomKind::AluImm, 12, true},
    {AtomKind::MovImm, 6, true},    {AtomKind::MovReg, 3, true},
    {AtomKind::CmpRR, 4, true},     {AtomKind::CmpImm, 4, true},
    {AtomKind::Load, 8, true},      {AtomKind::Store, 8, true},
    {AtomKind::LoadX, 5, true},     {AtomKind::StoreX, 5, true},
    {AtomKind::PushPop, 3, true},   {AtomKind::SkipInc, 6, true},
    {AtomKind::FlagProbe, 6, true}, {AtomKind::FAlu3, 5, true},
    {AtomKind::FUnary, 2, true},    {AtomKind::FMovImm, 3, true},
    {AtomKind::FConvI2D, 2, true},  {AtomKind::FConvD2I, 3, true},
    {AtomKind::FCmp, 3, true},      {AtomKind::FLoad, 2, true},
    {AtomKind::FStore, 2, true},    {AtomKind::CpuInfo, 1, true},
    {AtomKind::ClReq, 1, true},     {AtomKind::SysWrite, 2, false},
    {AtomKind::SysRead, 2, false},  {AtomKind::LoadIo, 2, true},
    {AtomKind::SysTime, 1, false},  {AtomKind::SysGetpid, 1, false},
    {AtomKind::SysYield, 1, false}, {AtomKind::SysKill, 3, false},
    {AtomKind::CallFn, 3, false},   {AtomKind::CallrFn, 2, false},
    {AtomKind::JmprSkip, 2, true},  {AtomKind::ClReqCore, 1, true},
    {AtomKind::ClReqTool, 1, true},
};

int64_t interestingImm(Rng &R) {
  static const int64_t Pool[] = {
      0,          1,          2,          -1,         0x7FFFFFFF, INT64_C(0x80000000),
      0xFFFF,     0x10000,    31,         32,         33,         64,
      0xAAAAAAAA, 0x55555555, 0x01000193, -0x800000,
  };
  return R.below(2) ? Pool[R.below(sizeof(Pool) / sizeof(Pool[0]))]
                    : static_cast<int64_t>(R.next());
}

Atom randomAtom(Rng &R, bool LeafSafe, bool Signals, unsigned NLeaves) {
  for (;;) {
    unsigned Total = 0;
    for (const auto &KW : Weights)
      Total += KW.W;
    uint64_t Pick = R.below(Total);
    const KindWeight *Sel = nullptr;
    for (const auto &KW : Weights) {
      if (Pick < KW.W) {
        Sel = &KW;
        break;
      }
      Pick -= KW.W;
    }
    if (LeafSafe && !Sel->Leaf)
      continue;
    if (Sel->K == AtomKind::SysKill && !Signals)
      continue;
    if ((Sel->K == AtomKind::CallFn || Sel->K == AtomKind::CallrFn) &&
        NLeaves == 0)
      continue;
    Atom At;
    At.K = Sel->K;
    At.A = static_cast<uint8_t>(R.next());
    At.B = static_cast<uint8_t>(R.next());
    At.C = static_cast<uint8_t>(R.next());
    At.D = static_cast<uint8_t>(R.next());
    At.Imm = interestingImm(R);
    if (At.K == AtomKind::FMovImm && R.below(2)) {
      static const uint64_t Doubles[] = {
          0x0000000000000000ull, 0x8000000000000000ull, 0x3FF0000000000000ull,
          0x7FF0000000000000ull, 0xFFF0000000000000ull, 0x7FF8000000000001ull,
          0x0000000000000001ull, // denormal
          0x41DFFFFFFFC00000ull, 0xC1E0000000000000ull, 0x3FE0000000000000ull,
      };
      At.Imm = static_cast<int64_t>(Doubles[R.below(10)]);
    }
    return At;
  }
}

} // namespace

FuzzProgram vg::fuzz::generate(uint64_t Seed, const GenOptions &O) {
  Rng R(Seed);
  FuzzProgram P;
  P.Seed = Seed;
  P.LoopCount = 1 + static_cast<uint32_t>(R.below(O.MaxLoop));
  P.Signals = O.Signals == 2 || (O.Signals == 1 && R.below(5) == 0);
  P.Smc = O.Smc == 2 || (O.Smc == 1 && R.below(5) == 0);

  unsigned NLeaves = static_cast<unsigned>(R.below(O.MaxLeaves + 1));
  for (unsigned I = 0; I < NLeaves; ++I) {
    std::vector<Atom> Leaf;
    unsigned N = 1 + static_cast<unsigned>(R.below(8));
    for (unsigned J = 0; J < N; ++J)
      Leaf.push_back(randomAtom(R, /*LeafSafe=*/true, P.Signals, 0));
    P.Leaves.push_back(std::move(Leaf));
  }

  unsigned Span = O.MaxBodyAtoms - O.MinBodyAtoms + 1;
  unsigned NBody = O.MinBodyAtoms + static_cast<unsigned>(R.below(Span));
  for (unsigned I = 0; I < NBody; ++I)
    P.Body.push_back(randomAtom(R, /*LeafSafe=*/false, P.Signals, NLeaves));

  unsigned StdinLen = static_cast<unsigned>(R.below(33));
  for (unsigned I = 0; I < StdinLen; ++I)
    P.StdinData.push_back(static_cast<char>(R.next()));
  return P;
}

//===----------------------------------------------------------------------===//
// Instruction-count metric
//===----------------------------------------------------------------------===//

static unsigned atomInstrCount(const Atom &At) {
  switch (At.K) {
  case AtomKind::Alu3:
  case AtomKind::AluImm:
  case AtomKind::MovImm:
  case AtomKind::MovReg:
  case AtomKind::CmpRR:
  case AtomKind::CmpImm:
  case AtomKind::FAlu3:
  case AtomKind::FUnary:
  case AtomKind::FMovImm:
  case AtomKind::FConvI2D:
  case AtomKind::FConvD2I:
  case AtomKind::FCmp:
  case AtomKind::CpuInfo:
  case AtomKind::CallFn:
    return 1;
  case AtomKind::PushPop:
  case AtomKind::LoadX:
  case AtomKind::StoreX:
  case AtomKind::ClReq:
  case AtomKind::LoadIo:
  case AtomKind::CallrFn:
    return 2;
  case AtomKind::Load:
  case AtomKind::Store:
  case AtomKind::FLoad:
  case AtomKind::FStore:
  case AtomKind::SkipInc:
  case AtomKind::FlagProbe:
  case AtomKind::SysGetpid:
  case AtomKind::SysYield:
  case AtomKind::ClReqCore:
  case AtomKind::ClReqTool:
    return 3;
  case AtomKind::JmprSkip:
    return 4;
  case AtomKind::SysTime:
    return 5;
  case AtomKind::SysWrite:
  case AtomKind::SysRead:
    return 6;
  case AtomKind::SysKill:
    return 7;
  }
  return 1;
}

unsigned vg::fuzz::bodyInstrCount(const FuzzProgram &P) {
  unsigned N = 0;
  for (const Atom &At : P.Body)
    N += atomInstrCount(At);
  for (const auto &L : P.Leaves)
    for (const Atom &At : L)
      N += atomInstrCount(At);
  return N;
}

//===----------------------------------------------------------------------===//
// Serialisation (.vg1 case files)
//===----------------------------------------------------------------------===//

static const char *KindNames[NumAtomKinds] = {
    "alu3",     "aluimm",   "movimm",  "movreg",   "cmprr",    "cmpimm",
    "load",     "store",    "loadx",   "storex",   "pushpop",  "skipinc",
    "flagprobe", "falu3",   "funary",  "fmovimm",  "fconvi2d", "fconvd2i",
    "fcmp",     "fload",    "fstore",  "cpuinfo",  "clreq",    "syswrite",
    "sysread",  "loadio",   "systime", "sysgetpid", "sysyield", "syskill",
    "callfn",   "callrfn",  "jmprskip", "clreqcore", "clreqtool",
};

static void serializeAtoms(std::ostringstream &OS,
                           const std::vector<Atom> &Atoms) {
  for (const Atom &At : Atoms)
    OS << "atom " << KindNames[static_cast<unsigned>(At.K)] << ' '
       << unsigned(At.A) << ' ' << unsigned(At.B) << ' ' << unsigned(At.C)
       << ' ' << unsigned(At.D) << ' ' << At.Imm << '\n';
}

std::string vg::fuzz::serialize(const FuzzProgram &P, bool WithDisasm) {
  std::ostringstream OS;
  OS << "vg1fuzz 1\n";
  OS << "seed " << P.Seed << '\n';
  OS << "loop " << P.LoopCount << '\n';
  OS << "signals " << (P.Signals ? 1 : 0) << '\n';
  OS << "smc " << (P.Smc ? 1 : 0) << '\n';
  OS << "stdin ";
  if (P.StdinData.empty()) {
    OS << '-';
  } else {
    static const char *Hex = "0123456789ABCDEF";
    for (char C : P.StdinData) {
      uint8_t B = static_cast<uint8_t>(C);
      OS << Hex[B >> 4] << Hex[B & 15];
    }
  }
  OS << '\n';
  for (size_t I = 0; I < P.Leaves.size(); ++I) {
    OS << "leaf " << I << ' ' << P.Leaves[I].size() << '\n';
    serializeAtoms(OS, P.Leaves[I]);
  }
  OS << "body " << P.Body.size() << '\n';
  serializeAtoms(OS, P.Body);
  OS << "end\n";

  if (WithDisasm) {
    OS << "#\n# --- rendered image (triage aid; parse() ignores this) ---\n";
    GuestImage Img = render(P);
    for (const ImageSegment &S : Img.Segments) {
      if (!(S.Perms & PermExec))
        continue;
      std::string Listing =
          vg1::disassembleRange(S.Bytes.data(), S.Bytes.size(), S.Base);
      std::istringstream LS(Listing);
      std::string Line;
      unsigned Count = 0;
      while (std::getline(LS, Line)) {
        if (++Count > 1500) {
          OS << "# ... (truncated)\n";
          break;
        }
        OS << "# " << Line << '\n';
      }
    }
  }
  return OS.str();
}

bool vg::fuzz::parse(const std::string &Text, FuzzProgram &Out,
                     std::string &Err) {
  FuzzProgram P;
  std::istringstream IS(Text);
  std::string Line;
  std::vector<Atom> *Target = nullptr;
  bool SawHeader = false, SawEnd = false;
  int LineNo = 0;
  auto fail = [&](const std::string &M) {
    Err = "line " + std::to_string(LineNo) + ": " + M;
    return false;
  };
  while (std::getline(IS, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    if (SawEnd)
      continue; // trailing comments only
    std::istringstream LS(Line);
    std::string Tok;
    LS >> Tok;
    if (Tok == "vg1fuzz") {
      int V = 0;
      LS >> V;
      if (V != 1)
        return fail("unsupported version");
      SawHeader = true;
    } else if (Tok == "seed") {
      LS >> P.Seed;
    } else if (Tok == "loop") {
      LS >> P.LoopCount;
    } else if (Tok == "signals") {
      int V = 0;
      LS >> V;
      P.Signals = V != 0;
    } else if (Tok == "smc") {
      int V = 0;
      LS >> V;
      P.Smc = V != 0;
    } else if (Tok == "stdin") {
      std::string H;
      LS >> H;
      if (H != "-") {
        if (H.size() % 2)
          return fail("odd stdin hex length");
        auto Nib = [](char C) -> int {
          if (C >= '0' && C <= '9')
            return C - '0';
          if (C >= 'A' && C <= 'F')
            return C - 'A' + 10;
          if (C >= 'a' && C <= 'f')
            return C - 'a' + 10;
          return -1;
        };
        for (size_t I = 0; I < H.size(); I += 2) {
          int Hi = Nib(H[I]), Lo = Nib(H[I + 1]);
          if (Hi < 0 || Lo < 0)
            return fail("bad stdin hex");
          P.StdinData.push_back(static_cast<char>(Hi << 4 | Lo));
        }
      }
    } else if (Tok == "leaf") {
      size_t Idx = 0, N = 0;
      LS >> Idx >> N;
      if (Idx != P.Leaves.size())
        return fail("leaves out of order");
      P.Leaves.emplace_back();
      Target = &P.Leaves.back();
    } else if (Tok == "body") {
      Target = &P.Body;
    } else if (Tok == "atom") {
      if (!Target)
        return fail("atom before body/leaf");
      std::string Name;
      unsigned A, B, C, D;
      long long Imm;
      LS >> Name >> A >> B >> C >> D >> Imm;
      if (LS.fail())
        return fail("malformed atom");
      Atom At;
      bool Found = false;
      for (unsigned I = 0; I < NumAtomKinds; ++I)
        if (Name == KindNames[I]) {
          At.K = static_cast<AtomKind>(I);
          Found = true;
          break;
        }
      if (!Found)
        return fail("unknown atom kind '" + Name + "'");
      At.A = static_cast<uint8_t>(A);
      At.B = static_cast<uint8_t>(B);
      At.C = static_cast<uint8_t>(C);
      At.D = static_cast<uint8_t>(D);
      At.Imm = Imm;
      Target->push_back(At);
    } else if (Tok == "end") {
      SawEnd = true;
    } else {
      return fail("unknown directive '" + Tok + "'");
    }
  }
  if (!SawHeader)
    return fail("missing vg1fuzz header");
  if (!SawEnd)
    return fail("missing end");
  Out = std::move(P);
  return true;
}
