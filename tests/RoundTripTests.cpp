//===-- tests/RoundTripTests.cpp - Assembler/Decoder/Disasm round trips ---==//
///
/// \file
/// Exhaustive encode -> decode -> re-encode round trips over the full VG1
/// opcode table, plus decode(assembler output) identity and disassembly
/// sanity (no decodable instruction renders as "<bad>" or empty). These
/// pin down the encoding contract the differential fuzzer relies on: the
/// Assembler, Decoder, and Disasm can never disagree about an encoding.
///
//===----------------------------------------------------------------------===//

#include "guest/Assembler.h"
#include "guest/Decoder.h"
#include "guest/Disasm.h"

#include "gtest/gtest.h"

#include <cstring>
#include <vector>

using namespace vg;
using namespace vg::vg1;

namespace {

// Every opcode in the table, grouped by encoding form.
const Opcode Len1Ops[] = {Opcode::NOP, Opcode::HLT,     Opcode::RET,
                          Opcode::SYS, Opcode::CPUINFO, Opcode::CLREQ};
const Opcode Len2Ops[] = {Opcode::MOV,   Opcode::CMP,   Opcode::JMPR,
                          Opcode::CALLR, Opcode::PUSH,  Opcode::POP,
                          Opcode::FNEG,  Opcode::FITOD, Opcode::FDTOI,
                          Opcode::FCMP,  Opcode::FMOV};
const Opcode Alu3Ops[] = {Opcode::ADD,   Opcode::SUB,   Opcode::AND,
                          Opcode::OR,    Opcode::XOR,   Opcode::SHL,
                          Opcode::SHR,   Opcode::SAR,   Opcode::MUL,
                          Opcode::DIVU,  Opcode::DIVS,  Opcode::FADD,
                          Opcode::FSUB,  Opcode::FMUL,  Opcode::FDIV,
                          Opcode::VADD8, Opcode::VSUB8, Opcode::VCMPGT8};
const Opcode ShiftIOps[] = {Opcode::SHLI, Opcode::SHRI, Opcode::SARI};
const Opcode MemOps[] = {Opcode::LD,   Opcode::ST,   Opcode::LDB,
                         Opcode::LDSB, Opcode::STB,  Opcode::LDH,
                         Opcode::LDSH, Opcode::STH,  Opcode::FLD,
                         Opcode::FST};
const Opcode Jmp32Ops[] = {Opcode::JMP, Opcode::CALL};
const Opcode Imm32Ops[] = {Opcode::MOVI, Opcode::CMPI, Opcode::ADDI,
                           Opcode::ANDI};
const Opcode IndexOps[] = {Opcode::LDX, Opcode::STX};

// decode(encodeInstr(I)) must reproduce I field-for-field, and re-encoding
// the decode must reproduce the same bytes (full canonical round trip).
void expectRoundTrip(const Instr &I) {
  uint8_t Buf[MaxInstrLen] = {0};
  unsigned Len = encodeInstr(I, Buf);
  ASSERT_NE(Len, 0u) << "unencodable: " << toString(I);

  Instr D;
  ASSERT_TRUE(decode(Buf, Len, D)) << "undecodable: " << toString(I);
  EXPECT_EQ(D.Op, I.Op);
  EXPECT_EQ(D.Len, Len);
  EXPECT_EQ(D.Rd, I.Rd);
  EXPECT_EQ(D.Rs, I.Rs);
  EXPECT_EQ(D.Rt, I.Rt);
  EXPECT_EQ(D.Scale, I.Scale);
  EXPECT_EQ(D.Imm, I.Imm);
  EXPECT_EQ(D.Imm64, I.Imm64);
  if (I.Op == Opcode::BCC)
    EXPECT_EQ(D.BCond, I.BCond);

  uint8_t Buf2[MaxInstrLen] = {0};
  unsigned Len2 = encodeInstr(D, Buf2);
  ASSERT_EQ(Len2, Len);
  EXPECT_EQ(0, std::memcmp(Buf, Buf2, Len)) << "non-canonical re-encode of "
                                            << toString(I);

  // A truncated buffer must be rejected, never mis-decoded short.
  if (Len > 1) {
    Instr T;
    EXPECT_FALSE(decode(Buf, Len - 1, T)) << toString(I);
    EXPECT_EQ(T.Len, 0);
  }

  // Disassembly must render every decodable instruction.
  std::string S = toString(D);
  EXPECT_FALSE(S.empty());
  EXPECT_EQ(S.find("<bad>"), std::string::npos) << S;
  EXPECT_EQ(S.find("bad"), std::string::npos) << S;
}

Instr mk(Opcode Op, uint8_t Rd = 0, uint8_t Rs = 0, uint8_t Rt = 0,
         int32_t Imm = 0) {
  Instr I;
  I.Op = Op;
  I.Rd = Rd;
  I.Rs = Rs;
  I.Rt = Rt;
  I.Imm = Imm;
  return I;
}

TEST(RoundTrip, NoOperandForms) {
  for (Opcode Op : Len1Ops)
    expectRoundTrip(mk(Op));
}

TEST(RoundTrip, TwoRegForms) {
  for (Opcode Op : Len2Ops)
    for (uint8_t Rd : {0, 1, 7, 14, 15})
      for (uint8_t Rs : {0, 3, 15})
        expectRoundTrip(mk(Op, Rd, Rs));
}

TEST(RoundTrip, Alu3Forms) {
  for (Opcode Op : Alu3Ops)
    for (uint8_t Rd : {0, 5, 15})
      for (uint8_t Rs : {0, 9, 15})
        for (uint8_t Rt : {0, 2, 15})
          expectRoundTrip(mk(Op, Rd, Rs, Rt));
}

TEST(RoundTrip, ShiftImmediateForms) {
  // imm8 is decoded raw (not masked); 32+ and 255 must survive unchanged.
  for (Opcode Op : ShiftIOps)
    for (int32_t Imm : {0, 1, 31, 32, 33, 63, 64, 255})
      expectRoundTrip(mk(Op, 3, 12, 0, Imm));
}

TEST(RoundTrip, MemoryForms) {
  // disp16 edge cases, both signs, including the INT16 extremes.
  for (Opcode Op : MemOps)
    for (int32_t D : {0, 1, -1, 127, -128, 255, 0x7FFF, -0x8000})
      expectRoundTrip(mk(Op, 4, 13, 0, D));
}

TEST(RoundTrip, Branch32Forms) {
  for (Opcode Op : Jmp32Ops)
    for (int32_t T :
         {0, 0x1000, static_cast<int32_t>(0x80000000), -1})
      expectRoundTrip(mk(Op, 0, 0, 0, T));
}

TEST(RoundTrip, ConditionalBranchAllConds) {
  for (unsigned C = 0; C != NumConds; ++C) {
    Instr I = mk(Opcode::BCC, 0, 0, 0, 0x2040);
    I.BCond = static_cast<Cond>(C);
    expectRoundTrip(I);
  }
}

TEST(RoundTrip, Imm32Forms) {
  for (Opcode Op : Imm32Ops) {
    // MOVI/CMPI encode [r:0]; ADDI/ANDI use both register fields.
    bool TwoReg = Op == Opcode::ADDI || Op == Opcode::ANDI;
    for (int32_t Imm : {0, 1, -1, 0x7FFFFFFF, static_cast<int32_t>(0x80000000),
                        static_cast<int32_t>(0xAAAAAAAA)})
      expectRoundTrip(mk(Op, 6, TwoReg ? 11 : 0, 0, Imm));
  }
}

TEST(RoundTrip, ScaledIndexForms) {
  for (Opcode Op : IndexOps)
    for (uint8_t Scale : {0, 1, 2, 3})
      for (int32_t D : {0, -4, 0x7FFFFFFF, static_cast<int32_t>(0x80000000)}) {
        Instr I = mk(Op, 2, 12, 15, D);
        I.Scale = Scale;
        expectRoundTrip(I);
      }
}

TEST(RoundTrip, FMovImmediateBitPatterns) {
  // NaN payloads, infinities, signed zero, denormals — the exact bits must
  // survive (FMOVI carries raw IEEE754, not a value).
  const uint64_t Payloads[] = {
      0x0000000000000000ull, 0x8000000000000000ull, 0x7FF0000000000000ull,
      0xFFF0000000000000ull, 0x7FF8000000000001ull, 0x7FF4DEADBEEF1234ull,
      0x0000000000000001ull, 0x3FF0000000000000ull, 0xFFFFFFFFFFFFFFFFull};
  for (uint64_t Bits : Payloads) {
    Instr I = mk(Opcode::FMOVI, 7);
    I.Imm64 = Bits;
    expectRoundTrip(I);
  }
}

TEST(RoundTrip, EncodeRejectsOutOfRange) {
  uint8_t Buf[MaxInstrLen];
  Instr I = mk(Opcode::ADD, 16, 0, 0);
  EXPECT_EQ(encodeInstr(I, Buf), 0u);
  I = mk(Opcode::SHLI, 1, 2, 0, 256);
  EXPECT_EQ(encodeInstr(I, Buf), 0u);
  I = mk(Opcode::SHLI, 1, 2, 0, -1);
  EXPECT_EQ(encodeInstr(I, Buf), 0u);
  I = mk(Opcode::LD, 1, 2, 0, 0x8000); // > INT16_MAX
  EXPECT_EQ(encodeInstr(I, Buf), 0u);
  I = mk(Opcode::LDX, 1, 2, 3, 0);
  I.Scale = 4;
  EXPECT_EQ(encodeInstr(I, Buf), 0u);
}

// The assembler's own emission must decode to exactly what was asked for,
// and re-encode byte-identically (the assembler emits canonical form).
TEST(RoundTrip, AssemblerOutputIsCanonical) {
  Assembler A(0x1000);
  Label L = A.newLabel();
  A.bind(L);
  A.movi(Reg::R3, 0xDEADBEEF);
  A.addi(Reg::R4, Reg::R3, -1);
  A.andi(Reg::R5, Reg::R4, 0xFF);
  A.shli(Reg::R6, Reg::R5, 33);
  A.ld(Reg::R7, Reg::R12, -32768);
  A.st(Reg::R12, 32767, Reg::R7);
  A.ldx(Reg::R8, Reg::R12, Reg::R2, 3, -4);
  A.stx(Reg::R12, Reg::R2, 2, 0x100, Reg::R8);
  A.cmp(Reg::R3, Reg::R4);
  A.bcc(Cond::LES, L);
  A.fmovi(FReg::F7, -0.0);
  A.fcmp(FReg::F7, FReg::F0);
  A.push(Reg::R15);
  A.pop(Reg::R15);
  A.cpuinfo();
  A.clreq();
  A.jmp(L);
  A.call(L);
  A.ret();
  std::vector<uint8_t> Bytes = A.finalize();

  size_t Off = 0;
  unsigned Count = 0;
  while (Off < Bytes.size()) {
    Instr I;
    ASSERT_TRUE(decode(Bytes.data() + Off, Bytes.size() - Off, I))
        << "assembler emitted undecodable bytes at +" << Off;
    uint8_t Re[MaxInstrLen] = {0};
    unsigned Len = encodeInstr(I, Re);
    ASSERT_EQ(Len, I.Len) << toString(I);
    EXPECT_EQ(0, std::memcmp(Bytes.data() + Off, Re, Len))
        << "non-canonical assembler emission: " << toString(I);
    Off += I.Len;
    ++Count;
  }
  EXPECT_EQ(Count, 19u);
}

// Undefined opcode bytes must decode to false with Len 0 — the fuzzer's
// generator never produces them, so any appearance is a real bug.
TEST(RoundTrip, UndefinedOpcodesRejected) {
  for (unsigned B = 0; B != 256; ++B) {
    uint8_t Buf[MaxInstrLen] = {static_cast<uint8_t>(B), 0, 0, 0, 0,
                                0,                       0, 0, 0, 0};
    Instr I;
    bool Ok = decode(Buf, sizeof(Buf), I);
    uint8_t Op = static_cast<uint8_t>(B);
    bool Defined =
        Op <= 0x1F || (Op >= 0x20 && Op <= 0x29) ||
        (Op >= 0x2E && Op <= 0x37) || (Op >= 0x40 && Op <= 0x4B) ||
        (Op >= 0x50 && Op <= 0x52);
    EXPECT_EQ(Ok, Defined) << "opcode byte 0x" << std::hex << B;
    if (Ok)
      expectRoundTrip(I);
  }
}

} // namespace
