//===-- bench/table2_slowdown.cpp - Reproduces Table 2 --------------------==//
///
/// \file
/// The paper's headline evaluation (Section 5.4, Table 2): slow-down
/// factors of four tools — Nulgrind (no instrumentation), ICntI (inline
/// instruction counter), ICntC (C-call instruction counter), and Memcheck —
/// relative to native execution, on the SPEC-like workload suite, with
/// per-column geometric means. A fifth column runs Nulgrind with the
/// dispatcher hot path on (--chaining=yes --hot-threshold=50) to show the
/// two-tier JIT's effect on the headline slow-down, and two more run
/// Nulgrind and Memcheck with the trace tier stacked on top of that
/// (--trace-tier=yes) to show the third tier's effect.
///
/// "Native" is the reference interpreter (see DESIGN.md: the substitution
/// for direct hardware execution). Expected shape, as in the paper:
/// Nulgrind < ICntI < ICntC << Memcheck, with Memcheck in the tens.
///
/// Environment: VG_BENCH_SCALE multiplies workload size (default 1).
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "tools/ICnt.h"
#include "tools/Memcheck.h"
#include "tools/Nulgrind.h"
#include "workloads/Workloads.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>

using namespace vg;

namespace {

uint32_t benchScale() {
  if (const char *E = std::getenv("VG_BENCH_SCALE"))
    return static_cast<uint32_t>(std::max(1L, std::strtol(E, nullptr, 10)));
  return 1;
}

struct Row {
  std::string Name;
  double NativeSec = 0;
  // nulgrind, icnt-i, icnt-c, memcheck, nulgrind+chaining+hotness,
  // nulgrind+traces, memcheck+traces
  double Factor[7] = {0, 0, 0, 0, 0, 0, 0};
};

} // namespace

int main() {
  uint32_t Scale = benchScale();
  std::printf("== Table 2: tool slow-down factors vs native (scale %u) ==\n",
              Scale);
  std::printf("%-10s %10s %9s %9s %9s %9s %9s %9s %9s\n", "Program",
              "Nat.(s)", "Nulg.", "ICntI", "ICntC", "Memc.", "Nulg.+h",
              "Nulg.+t", "Memc.+t");

  std::vector<Row> Rows;
  double GeoSum[7] = {0, 0, 0, 0, 0, 0, 0};
  int GeoN = 0;

  for (const WorkloadInfo &W : allWorkloads()) {
    GuestImage Img = buildWorkload(W.Name, Scale);
    // Min-of-3 native runs: the baseline is fast enough that scheduler
    // noise would otherwise dominate the factors.
    RunReport Native = runNative(Img);
    for (int Rep = 0; Rep != 2 && Native.Completed; ++Rep) {
      RunReport Again = runNative(Img);
      if (Again.Completed && Again.Seconds < Native.Seconds)
        Native = Again;
    }
    if (!Native.Completed) {
      std::printf("%-10s  FAILED natively\n", W.Name.c_str());
      continue;
    }
    Row R;
    R.Name = W.Name;
    R.NativeSec = Native.Seconds;

    for (int T = 0; T != 7; ++T) {
      std::unique_ptr<Tool> Tool;
      std::vector<std::string> Opts = {"--smc-check=none"};
      switch (T) {
      case 0:
        Tool = std::make_unique<Nulgrind>();
        break;
      case 1:
        Tool = std::make_unique<ICnt>(ICnt::Mode::Inline);
        break;
      case 2:
        Tool = std::make_unique<ICnt>(ICnt::Mode::CCall);
        break;
      case 3:
        Tool = std::make_unique<Memcheck>();
        Opts.push_back("--leak-check=no"); // as in the paper's Table 2 runs
        break;
      case 4:
        Tool = std::make_unique<Nulgrind>();
        Opts.push_back("--chaining=yes");
        Opts.push_back("--hot-threshold=50");
        break;
      case 5:
        Tool = std::make_unique<Nulgrind>();
        Opts.push_back("--chaining=yes");
        Opts.push_back("--hot-threshold=50");
        Opts.push_back("--trace-tier=yes");
        break;
      case 6:
        Tool = std::make_unique<Memcheck>();
        Opts.push_back("--leak-check=no");
        Opts.push_back("--chaining=yes");
        Opts.push_back("--hot-threshold=50");
        Opts.push_back("--trace-tier=yes");
        break;
      }
      RunReport Rep = runUnderCore(Img, Tool.get(), Opts);
      {
        // Min-of-2 for the tool runs as well.
        RunReport Again = runUnderCore(Img, Tool.get(), Opts);
        if (Again.Completed && Again.Seconds < Rep.Seconds)
          Rep = Again;
      }
      bool Ok = Rep.Completed && Rep.Stdout == Native.Stdout;
      R.Factor[T] = Ok && Native.Seconds > 0
                        ? Rep.Seconds / Native.Seconds
                        : -1;
    }
    std::printf("%-10s %10.3f %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f\n",
                R.Name.c_str(), R.NativeSec, R.Factor[0], R.Factor[1],
                R.Factor[2], R.Factor[3], R.Factor[4], R.Factor[5],
                R.Factor[6]);
    bool AllOk = true;
    for (double F : R.Factor)
      AllOk = AllOk && F > 0;
    if (AllOk) {
      for (int T = 0; T != 7; ++T)
        GeoSum[T] += std::log(R.Factor[T]);
      ++GeoN;
    }
    Rows.push_back(R);
  }

  if (GeoN) {
    std::printf("%-10s %10s", "geo. mean", "");
    for (int T = 0; T != 7; ++T)
      std::printf(" %9.1f", std::exp(GeoSum[T] / GeoN));
    std::printf("\n");
    std::printf("\n(paper, SPEC CPU2000 on real hardware: Nulgrind 4.3x, "
                "ICntI 8.8x, ICntC 13.5x, Memcheck 22.1x;\n the expected "
                "*shape* — Nulgrind < ICntI < ICntC << Memcheck — is the "
                "reproduction target.)\n");
  }

  // Machine-readable copy of the table for regression tracking.
  {
    static const char *ToolNames[7] = {"nulgrind",     "icnt_inline",
                                       "icnt_ccall",   "memcheck",
                                       "nulgrind_hot", "nulgrind_traces",
                                       "memcheck_traces"};
    std::ofstream F("BENCH_table2.json");
    F << "{\n  \"bench\": \"table2_slowdown\",\n  \"scale\": " << Scale
      << ",\n  \"unit\": \"slowdown_factor_vs_native\",\n  \"rows\": [\n";
    for (size_t I = 0; I != Rows.size(); ++I) {
      const Row &R = Rows[I];
      F << "    {\"program\": \"" << R.Name
        << "\", \"native_sec\": " << R.NativeSec;
      for (int T = 0; T != 7; ++T)
        F << ", \"" << ToolNames[T] << "\": " << R.Factor[T];
      F << "}" << (I + 1 != Rows.size() ? "," : "") << "\n";
    }
    F << "  ],\n  \"geo_mean\": {";
    for (int T = 0; T != 7; ++T)
      F << (T ? ", " : "") << "\"" << ToolNames[T] << "\": "
        << (GeoN ? std::exp(GeoSum[T] / GeoN) : -1.0);
    F << "}\n}\n";
    std::printf("(wrote BENCH_table2.json)\n");
  }
  return 0;
}
