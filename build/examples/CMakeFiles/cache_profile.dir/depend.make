# Empty dependencies file for cache_profile.
# This may be replaced when dependencies are built.
