//===-- core/RedirectEngine.cpp - Replacement and wrapping ----------------==//

#include "core/RedirectEngine.h"

#include "core/Core.h"

using namespace vg;

void RedirectEngine::redirectToHost(uint32_t Addr, HostReplacementFn Fn) {
  HostRedirects[Addr] = std::move(Fn);
  // Drop any pre-redirect translation of Addr (and cancel chain waiters
  // parked on it): a predecessor chained straight into the old code would
  // bypass the dispatcher's redirect check.
  C.XS->invalidate(Addr, 1);
}

void RedirectEngine::redirectSymbolToHost(const std::string &Symbol,
                                          HostReplacementFn Fn) {
  if (auto It = ImageSymbols.find(Symbol); It != ImageSymbols.end()) {
    HostRedirects[It->second] = std::move(Fn);
    C.XS->invalidate(It->second, 1); // drop any pre-redirect translation
    return;
  }
  PendingSymbolRedirects[Symbol] = std::move(Fn);
}

void RedirectEngine::redirectGuest(uint32_t From, uint32_t To) {
  GuestRedirects[From] = To;
  // Any existing translation entered at From must go (and chasing through
  // From could have inlined it elsewhere, so scrub the byte too).
  C.XS->invalidate(From, 1);
}

void RedirectEngine::wrap(uint32_t Addr, WrapHooks Hooks) {
  // The wrapper is an ordinary host replacement whose body is: Pre hook,
  // call the original (arming the one-shot bypass so the dispatch at Addr
  // reaches the real code instead of recursing into this wrapper), Post
  // hook with the original's result, which it may rewrite. Recursion in
  // the wrapped function is safe: the inner dispatch of Addr sees the
  // replacement again and re-wraps, exactly like the outer call did.
  redirectToHost(
      Addr, [this, Addr, Hooks = std::move(Hooks)](Core &Core_,
                                                   ThreadState &TS) {
        if (Hooks.Pre)
          Hooks.Pre(Core_, TS);
        std::vector<uint32_t> Args = {TS.gpr(1), TS.gpr(2), TS.gpr(3),
                                      TS.gpr(4), TS.gpr(5)};
        BypassOnce = Addr;
        uint32_t Result = Core_.callGuest(TS, Addr, Args);
        if (Hooks.Post)
          Hooks.Post(Core_, TS, Result);
        TS.setGpr(0, Result);
      });
}

void RedirectEngine::wrapSymbol(const std::string &Symbol, WrapHooks Hooks) {
  if (auto It = ImageSymbols.find(Symbol); It != ImageSymbols.end()) {
    wrap(It->second, std::move(Hooks));
    return;
  }
  PendingSymbolWraps[Symbol] = std::move(Hooks);
}

void RedirectEngine::setImageSymbols(
    const std::map<std::string, uint32_t> &Symbols) {
  ImageSymbols = Symbols;
  for (auto &[Sym, Fn] : PendingSymbolRedirects)
    if (auto It = ImageSymbols.find(Sym); It != ImageSymbols.end())
      HostRedirects[It->second] = Fn;
  for (auto &[Sym, Hooks] : PendingSymbolWraps)
    if (ImageSymbols.count(Sym))
      wrap(ImageSymbols.at(Sym), Hooks);
  PendingSymbolWraps.clear();
}

uint32_t RedirectEngine::symbolAddr(const std::string &Symbol) const {
  auto It = ImageSymbols.find(Symbol);
  return It == ImageSymbols.end() ? 0 : It->second;
}
