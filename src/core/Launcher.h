//===-- core/Launcher.h - One-call program runners --------------*- C++ -*-==//
///
/// \file
/// Convenience entry points used by tests, examples, and the benchmark
/// harness: run a guest image natively (reference interpreter — the
/// "native" baseline of Table 2) or under the core with a tool plugged in,
/// and collect output, statistics, and wall-clock time.
///
//===----------------------------------------------------------------------===//
#ifndef VG_CORE_LAUNCHER_H
#define VG_CORE_LAUNCHER_H

#include "core/Core.h"

#include <string>
#include <vector>

namespace vg {

/// Fixed pieces of the client memory layout shared by both runners.
constexpr uint32_t ClientStackTop = 0xBFFF0000;
constexpr uint32_t ClientInitialSPGap = 64;

/// Everything a caller might want to know about a finished run.
struct RunReport {
  bool Completed = false; ///< reached exit (not fault/limit)
  int ExitCode = 0;
  int FatalSignal = 0;
  std::string Stdout;
  std::string Stderr;
  std::string ToolOutput; ///< core/tool side channel (R9), buffer mode
  CoreStats Stats;        ///< core runs only
  TransTab::Stats TTStats; ///< translation-table statistics (core runs)
  JitStats Jit;            ///< translation-service counters (core runs)
  uint64_t NativeInsns = 0;
  uint64_t Syscalls = 0;
  double Seconds = 0; ///< wall time of guest execution only
};

/// Runs \p Img on the reference interpreter with a standalone simulated
/// kernel (no events, no tool) — the Table 2 "native" baseline.
RunReport runNative(const GuestImage &Img, const std::string &StdinData = "",
                    uint64_t MaxInsns = ~0ull);

/// Runs \p Img under the core with \p ToolPlugin (may be null = no
/// instrumentation at all, distinct from Nulgrind which is a real tool).
/// \p ExtraOptions are "--name=value" strings.
RunReport runUnderCore(const GuestImage &Img, Tool *ToolPlugin,
                       const std::vector<std::string> &ExtraOptions = {},
                       const std::string &StdinData = "",
                       uint64_t MaxBlocks = ~0ull);

/// Same, but exposes the core for callers that need to configure it
/// between construction and run (tests). \p Setup runs after loadImage.
RunReport runUnderCoreWith(const GuestImage &Img, Tool *ToolPlugin,
                           const std::vector<std::string> &ExtraOptions,
                           const std::string &StdinData, uint64_t MaxBlocks,
                           const std::function<void(Core &)> &Setup);

} // namespace vg

#endif // VG_CORE_LAUNCHER_H
