//===-- core/Core.h - The Valgrind core -------------------------*- C++ -*-==//
///
/// \file
/// The core: everything of Section 3 that is not the JIT pipeline itself.
/// It owns the client address space, loads guest images (start-up,
/// Section 3.3), makes/finds/runs translations through the dispatcher and
/// scheduler (Section 3.9), routes system calls to the simulated kernel
/// (3.10), handles client requests (3.11), drives the events system (3.12),
/// provides function replacement/wrapping (3.13), serialises threads with a
/// big lock and a 100k-block quantum (3.14), intercepts and delivers
/// signals only between code blocks (3.15), and checks for self-modifying
/// code (3.16).
///
//===----------------------------------------------------------------------===//
#ifndef VG_CORE_CORE_H
#define VG_CORE_CORE_H

#include "core/ErrorManager.h"
#include "core/Events.h"
#include "core/GuestImage.h"
#include "core/ThreadState.h"
#include "core/Tool.h"
#include "core/TransTab.h"
#include "core/Translate.h"
#include "core/TranslationService.h"
#include "kernel/RunQueue.h"
#include "kernel/SimKernel.h"
#include "support/EventTrace.h"
#include "support/FaultInject.h"
#include "support/Options.h"
#include "support/Output.h"

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>

namespace vg {

/// How aggressively to check for self-modifying code (Section 3.16).
enum class SmcMode { None, Stack, All };

/// A host-side function replacement: runs instead of a guest function.
/// Reads its arguments from the thread's registers (r1..), writes its
/// result to r0. Entered via the guest CALL convention; the core performs
/// the return.
using HostReplacementFn = std::function<void(Core &C, ThreadState &TS)>;

/// Exit status of a whole run.
struct CoreExit {
  enum class Kind {
    Exited,      ///< exit syscall or HLT
    FatalSignal, ///< unhandled SIGSEGV/SIGILL
    BlockLimit,  ///< ran out of the block budget passed to run()
  };
  Kind K = Kind::Exited;
  int Code = 0;
  int Signal = 0;
};

/// Run statistics (bench/sec39_dispatch and the Table 2 harness read
/// these).
struct CoreStats {
  uint64_t BlocksDispatched = 0; ///< translations entered
  uint64_t FastCacheHits = 0;    ///< dispatcher direct-mapped cache hits
  uint64_t FastCacheMisses = 0;
  uint64_t Translations = 0;
  uint64_t GuestInsnsTranslated = 0;
  uint64_t ThreadSwitches = 0;
  uint64_t SignalsDelivered = 0;
  uint64_t SignalsDropped = 0; ///< bad target / coalesced / thread exit
  uint64_t SmcRetranslations = 0;
  uint64_t ChainedTransfers = 0;
  uint64_t HostRedirectCalls = 0;
  uint64_t HotPromotions = 0; ///< blocks retranslated as hot superblocks
  /// Trace tier (--trace-tier): traces installed, trace entries executed,
  /// and exits taken through a guarded side exit rather than the trace's
  /// terminal edge (TraceSideExits / TraceExecs is the side-exit rate).
  uint64_t TracesFormed = 0;
  uint64_t TraceExecs = 0;
  uint64_t TraceSideExits = 0;
  /// Guest-thread seconds producing installed translations: pipeline time
  /// for fresh ones, load+validate time for --tt-cache hits. The warm-start
  /// bench compares this across cold/warm runs.
  double TranslateSeconds = 0;
};

/// Signal numbers used by the simulated kernel.
enum Signals : int {
  SigSEGV = 11,
  SigILL = 4,
  SigUSR1 = 10,
  SigUSR2 = 12,
};

/// The core. Construct, configure (setTool/options), loadImage, run.
/// The TranslationHost side is the seam to the extracted
/// TranslationService: the service calls back for pipeline options and
/// guest-thread accounting, the core calls down for translations.
class Core : public KernelHost, public TranslationHost {
public:
  static constexpr int MaxThreads = 32;
  static constexpr uint64_t ThreadQuantum = 100'000; // blocks (Section 3.14)

  explicit Core(Tool *ToolPlugin = nullptr);
  ~Core() override;

  // --- configuration -----------------------------------------------------
  OptionRegistry &options() { return Opts; }
  /// Applies parsed options (smc-check, chaining, ...). Call after
  /// options().parse() and before run().
  void applyOptions();

  OutputSink &output() { return Out; }
  EventHub &events() { return Events; }
  ErrorManager &errors() { return Errors; }
  SimKernel &kernel() { return *Kernel; }
  GuestMemory &memory() { return Memory; }
  AddressSpace &addressSpace() { return AS; }
  Tool *tool() { return ToolPlugin; }
  const CoreStats &stats() const { return Stats; }
  TransTab &transTab() { return TT; }
  TranslationService &translationService() { return *XS; }

  void setSmcMode(SmcMode M) { Smc = M; }
  void setChaining(bool On) { ChainingEnabled = On; }
  /// Executions before a block is retranslated as a hot superblock with
  /// branch chasing (0 disables the hotness tier).
  void setHotThreshold(uint64_t N) { HotThreshold = N; }
  /// Enables the trace tier: hot superblocks whose chain edges are strongly
  /// biased get stitched into optimised traces (requires chaining and the
  /// hot tier to be on — traces form over tier-1 blocks only).
  void setTraceTier(bool On) { TraceTier = On; }
  /// Executions before a tier-1 superblock is considered for trace
  /// formation (0 = 4x the hot threshold).
  void setTraceThreshold(uint64_t N) { TraceThreshold = N; }
  /// Maximum superblocks stitched into one trace (clamped to [2, 8]).
  void setTraceMaxBlocks(unsigned N) {
    TraceMaxBlocks = N < 2 ? 2 : (N > 8 ? 8 : N);
  }
  Profiler *profiler() { return Prof.get(); }
  /// Non-null under --fault-inject / --trace-events.
  FaultPlan *faultPlan() { return Faults.get(); }
  EventTracer *tracer() { return Tracer.get(); }

  // --- start-up (Section 3.3) --------------------------------------------
  /// Loads the client image: maps text/data (firing new_mem_startup, R5),
  /// sets up the initial thread's stack and registers, creates the brk
  /// segment, and applies redirections against the image's symbol table.
  void loadImage(const GuestImage &Img);

  // --- execution -----------------------------------------------------------
  /// Runs the client to completion (or until \p MaxBlocks translations
  /// have been dispatched). Calls the tool's fini().
  CoreExit run(uint64_t MaxBlocks = ~0ull);

  // --- function replacement and wrapping (Section 3.13) -------------------
  /// Replaces the guest function at \p Addr with host code.
  void redirectToHost(uint32_t Addr, HostReplacementFn Fn);
  /// Replaces the function named \p Symbol (resolved at loadImage time;
  /// may be called before or after load).
  void redirectSymbolToHost(const std::string &Symbol, HostReplacementFn Fn);
  /// Makes calls to \p From run \p To instead (guest-to-guest).
  void redirectGuest(uint32_t From, uint32_t To);

  /// Calls back into guest code from host context (the mechanism that lets
  /// a replacement function invoke the function it replaced — wrapping).
  /// Returns the callee's r0.
  uint32_t callGuest(ThreadState &TS, uint32_t Addr,
                     const std::vector<uint32_t> &Args);

  // --- replacement allocator (R8) ------------------------------------------
  /// Allocates a client heap block (red zones per the tool's request).
  /// Returns the payload address, 0 on exhaustion.
  uint32_t clientMalloc(int Tid, uint32_t Size, bool Zeroed);
  /// Frees a payload pointer. Returns false (and reports) on a bad free.
  bool clientFree(int Tid, uint32_t Addr);
  uint32_t clientRealloc(int Tid, uint32_t Addr, uint32_t NewSize);
  /// Size of a live block (0 if unknown).
  uint32_t heapBlockSize(uint32_t Addr) const;
  /// Live heap blocks (leak checking, Massif).
  const std::map<uint32_t, uint32_t> &heapBlocks() const { return HeapLive; }
  uint64_t heapBytesLive() const { return HeapLiveBytes; }

  // --- threads (ThreadState access for tools/tests) -----------------------
  ThreadState &thread(int Tid) { return Threads[Tid]; }
  int currentTid() const { return CurTid; }
  int liveThreads() const;
  /// True while the sharded scheduler is running (--sched-threads > 1).
  /// Tools use this to avoid world-lock-only services from lock-free
  /// helper context (e.g. stack capture walks the segment map).
  bool isParallel() const { return RunQ != nullptr; }

  // --- KernelHost (threads & signals, called by the simulated kernel) -----
  int spawnThread(uint32_t Entry, uint32_t SP, uint32_t Arg) override;
  void exitThread(int Tid, int Code) override;
  void setSignalHandler(int Sig, uint32_t Handler) override;
  uint32_t signalHandler(int Sig) const override;
  bool raiseSignal(int Tid, int Sig) override;
  void sigreturn(int Tid) override;
  void requestYield(int Tid) override;

  /// Discards translations intersecting [Addr, Addr+Len) — the
  /// DISCARD_TRANSLATIONS client request and munmap both land here.
  void discardTranslations(uint32_t Addr, uint32_t Len);

  // --- TranslationHost (called by the TranslationService) -----------------
  void setupTranslation(TranslationOptions &TO, uint32_t PC, bool Hot,
                        Translation *Raw) override;
  void noteTranslation(uint32_t PC, const Translation &T,
                       double Seconds) override;
  void mergePhaseTimes(const PhaseTimes &PT) override;
  void promotionInstalled(Translation *T, uint64_t GenBefore) override;

  // Helper callees referenced from generated code (public because the
  // Callee descriptors binding them are defined at namespace scope).
  static uint64_t helperSmcCheck(void *Env, uint64_t TransPtr, uint64_t,
                                 uint64_t, uint64_t);
  static uint64_t helperTrackSp(void *Env, uint64_t, uint64_t, uint64_t,
                                uint64_t);

  /// Best-effort guest stack trace (return-address scan).
  std::vector<uint32_t> captureStackTrace(ThreadState &TS, unsigned Max = 8);

private:
  struct FastCacheEntry {
    uint32_t Addr = ~0u;
    Translation *T = nullptr;
  };
  static constexpr size_t FastCacheSize = 1u << 13; // direct-mapped

  //===--- sharded scheduler (--sched-threads=N, DESIGN section 14) -------===//
  /// One shard: a host thread that pops runnable guest threads from the run
  /// queue and executes them. Everything a shard touches without the world
  /// lock lives here — its own dispatcher fast cache, its own counters for
  /// the lock-free chain path, and its QSBR epoch announcement.
  struct ShardCtx {
    Core *C = nullptr;
    unsigned Index = 0;
    /// The shard's snapshot of GlobalEpoch at its last quiescent point
    /// (a moment it provably held no translation pointers); ~0 while
    /// parked in the run queue. reclaimLimbo() frees a retired
    /// translation once every shard has announced an epoch at or past
    /// its retirement stamp.
    std::atomic<uint64_t> LocalEpoch{~0ull};
    std::vector<FastCacheEntry> FastCache; ///< private, never shared
    uint64_t FastCacheGen = 0;
    /// Counters bumped on the lock-free paths; merged into Core::Stats
    /// after the shards join.
    uint64_t ChainedTransfers = 0;
    uint64_t TraceExecs = 0;
    uint64_t TraceSideExits = 0;
    // Profile counters.
    uint64_t Quanta = 0;                ///< run-queue pops that ran a quantum
    uint64_t WorldLockAcquisitions = 0; ///< block-boundary lock round-trips
  };

  /// The shared run epilogue: worker shutdown, tool fini, profile/trace
  /// dumps, exit-status construction.
  CoreExit finishRun();
  /// run() when SchedThreads > 1: spawns the shards, lets them race, joins
  /// them, merges their stats, and finishes exactly like the serial path.
  CoreExit runParallel(uint64_t MaxBlocks);
  void shardMain(ShardCtx &S);
  /// One scheduling quantum of \p TS on shard \p S: the MT twin of
  /// dispatchLoop. Block-boundary work (translate, chain, promote, signals,
  /// syscalls) runs under WorldMu; Exec.run and the chain thunk run
  /// lock-free.
  void dispatchLoopMT(ShardCtx &S, ThreadState &TS);
  /// findOrTranslate against the shard's private fast cache. WorldMu held.
  Translation *findOrTranslateMT(ShardCtx &S, uint32_t PC);
  static const hvm::CodeBlob *chainResolveThunkMT(void *User, void *Cookie,
                                                  uint32_t Slot);
  /// TransTab retire hook while parallel: dead translations park in Limbo
  /// with an epoch stamp instead of being freed (a shard may still be
  /// executing their code). WorldMu held by all callers.
  void retireTranslation(std::unique_ptr<Translation> T);
  /// Frees limbo entries every shard has quiesced past. WorldMu held.
  void reclaimLimbo();
  /// Funnels every "the run is over" condition (process exit, fatal
  /// signal, block budget) into the run queue's shutdown. No-op when the
  /// serialised scheduler is running.
  void stopWorld();

  Translation *findOrTranslate(uint32_t PC);
  /// Inline hot-tier promotion: retranslate \p PC as a superblock,
  /// stalling the guest (the only mode at --jit-threads=0, and the
  /// fallback rung when the async queue is full). Replaces the old
  /// translation (predecessor chain slots relink eagerly via TransTab).
  Translation *promoteHot(uint32_t PC);
  void dumpProfile();
  /// Dispatches blocks for \p TS until the quantum is spent, the process
  /// exits, a fatal signal lands, the thread stops being runnable, or the
  /// PC reaches \p StopPC (callGuest's sentinel).
  void dispatchLoop(ThreadState &TS, uint64_t &Quantum, uint32_t StopPC);
  void handleClientRequest(ThreadState &TS);
  void handleFault(ThreadState &TS, uint32_t FaultPC, uint32_t FaultAddr,
                   bool Write, int Sig);
  bool deliverPendingSignals(ThreadState &TS);
  void deliverSignal(ThreadState &TS, int Sig);
  /// Wraps every EventHub callback so the --trace-events buffer sees the
  /// event stream (tool callbacks still run). Called from loadImage.
  void installTracerHooks();
  /// Block-boundary fault injection (sigstorm / ttflush). Called at the
  /// top of the dispatch loop.
  void injectBoundaryFaults(ThreadState &TS);
  [[noreturn]] void internalError(const char *Msg);

  /// The core's own instrumentation layered around the tool's: SMC check
  /// prelude (when \p WantSmc — sampled on the guest thread at options-
  /// build time, since stack geometry must not be read from a worker) and
  /// SP-change tracking (R7). For trace pipelines \p SeamEntries lists the
  /// non-head constituent entry PCs: under WantSmc each seam gets its own
  /// SMC check + SmcFail exit, because the trace inlines its constituents
  /// without their own preludes and mid-path self-modification must still
  /// abort at the seam it invalidates.
  void instrumentBlock(ir::IRSB &SB, uint32_t Addr, Translation *Trans,
                       bool WantSmc,
                       const std::vector<uint32_t> &SeamEntries);
  /// Walks the chain graph from \p Head picking the dominant successor at
  /// each step. Returns a spec with fewer than 2 entries when no biased
  /// path exists (caller backs off via TraceRetryAt).
  TraceSpec selectTracePath(Translation *Head);
  bool addrOnAnyStack(uint32_t Addr) const;

  static const hvm::CodeBlob *chainResolveThunk(void *User, void *Cookie,
                                                uint32_t Slot);

  OptionRegistry Opts;
  OutputSink Out;
  EventHub Events;
  ErrorManager Errors;
  GuestMemory Memory;
  AddressSpace AS;
  std::unique_ptr<SimKernel> Kernel;
  /// The extracted translation layer; owns the TransTab and, under
  /// --jit-threads=N, the promotion queue and workers.
  std::unique_ptr<TranslationService> XS;
  TransTab &TT; ///< alias into XS (guest-thread access only)
  Tool *ToolPlugin;

  std::array<ThreadState, MaxThreads> Threads;
  int CurTid = 0;
  bool YieldRequested = false;
  /// Atomic because MT shards read them in their loop conditions while
  /// another shard's locked section sets them; the serial scheduler uses
  /// them exactly as the plain flags they replaced.
  std::atomic<bool> ProcessExited{false};
  int ProcessExitCode = 0;
  std::atomic<int> FatalSignal{0};

  // Sharded-scheduler state (inert at --sched-threads=1: RunQ stays null
  // and nothing else is touched).
  unsigned SchedThreads = 1;      // --sched-threads
  std::mutex WorldMu;             ///< the MT big lock: every slow path
  std::unique_ptr<RunQueue> RunQ; ///< non-null only while runParallel runs
  std::vector<std::unique_ptr<ShardCtx>> Shards;
  std::atomic<uint64_t> GlobalEpoch{0};
  /// Retired translations awaiting their grace period, stamped with the
  /// epoch current at retirement. Guarded by WorldMu.
  std::vector<std::pair<uint64_t, std::unique_ptr<Translation>>> Limbo;
  uint64_t TranslationsRetired = 0;
  uint64_t LimboHighWater = 0;
  /// MT dispatched-block clock: budget accounting and trace timestamps.
  std::atomic<uint64_t> GlobalBlockClock{0};
  uint64_t MaxBlocksMT = ~0ull;
  /// Per-guest-thread yield requests. The serial scheduler keeps using the
  /// single YieldRequested flag (same decisions as ever); shards each honor
  /// their own bit.
  std::array<std::atomic<bool>, MaxThreads> YieldFlags{};
  /// Run-queue counters saved before RunQ is destroyed (profile output).
  uint64_t RunQPushes = 0, RunQPops = 0, RunQWaits = 0;

  std::array<uint32_t, 64> SigHandlers{}; // 0 = default action
  SmcMode Smc = SmcMode::Stack;
  bool ChainingEnabled = false;
  uint64_t HotThreshold = 0; // 0 = hotness tier off
  bool TraceTier = false;            // --trace-tier
  uint64_t TraceThreshold = 0;       // 0 = 4x HotThreshold
  unsigned TraceMaxBlocks = 8;       // constituents per trace, [2, 8]
  /// The effective trace-formation threshold (never 0 when the hot tier is
  /// on, so the gate can use a plain >=).
  uint64_t effTraceThreshold() const {
    return TraceThreshold ? TraceThreshold : 4 * HotThreshold;
  }
  uint32_t StackSwitchThreshold = 2u << 20; // 2MB (Section 3.12)

  std::vector<FastCacheEntry> FastCache;
  uint64_t FastCacheGen = 0;
  std::unique_ptr<Profiler> Prof; // non-null under --profile
  std::unique_ptr<FaultPlan> Faults;   // non-null under --fault-inject
  std::unique_ptr<EventTracer> Tracer; // non-null under --trace-events
  bool TraceDumpAtExit = false;        // --trace-dump (fatal always dumps)

  std::map<uint32_t, HostReplacementFn> HostRedirects;
  std::map<std::string, HostReplacementFn> PendingSymbolRedirects;
  std::map<uint32_t, uint32_t> GuestRedirects;
  std::map<std::string, uint32_t> ImageSymbols;

  // Replacement allocator state.
  uint32_t HeapArenaBase = 0, HeapArenaEnd = 0, HeapBump = 0;
  uint32_t HeapMapped = 0; ///< arena pages are mapped lazily up to here
  std::map<uint32_t, uint32_t> HeapLive; ///< payload addr -> size
  /// payload addr -> (raw start, raw size), including red zones.
  std::map<uint32_t, std::pair<uint32_t, uint32_t>> HeapMeta;
  std::vector<std::pair<uint32_t, uint32_t>> HeapFree; ///< addr,size (raw)
  uint64_t HeapLiveBytes = 0;

  // Registered alternative stacks (client requests).
  struct RegisteredStack {
    uint32_t Id, Start, End;
  };
  std::vector<RegisteredStack> AltStacks;
  uint32_t NextStackId = 1;

  /// Sentinel return address used by callGuest.
  static constexpr uint32_t ReturnSentinel = 0xFFFF0000;

  CoreStats Stats;
  const ir::SpecFn Spec;
};

} // namespace vg

#endif // VG_CORE_CORE_H
