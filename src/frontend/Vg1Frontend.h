//===-- frontend/Vg1Frontend.h - Phase 1: VG1 -> tree IR --------*- C++ -*-==//
///
/// \file
/// The disassemble half of disassemble-and-resynthesise (Section 3.5):
/// converts VG1 machine code into tree IR, one superblock at a time. All of
/// the original code's effects on guest state — including condition-code
/// setting — are represented explicitly, because the original instructions
/// are discarded and final code is generated purely from the IR.
///
/// Superblock formation follows the paper's policy (Section 3.7): follow
/// instructions until (a) an instruction limit (~50) is reached, (b) a
/// conditional branch is hit, (c) a branch to an unknown target is hit, or
/// (d) more than three unconditional branches to known targets have been
/// chased.
///
/// Condition codes use a lazy thunk (CC_OP/CC_DEP1/CC_DEP2) exactly as
/// Valgrind models x86 %eflags; conditional branches call a clean helper
/// which the optimiser can partially evaluate via specFn().
///
/// The architecture-specific CPUINFO instruction is not modelled in IR;
/// it becomes an annotated dirty helper call (Section 3.6's cpuid
/// treatment), so tools still see which registers it writes.
///
//===----------------------------------------------------------------------===//
#ifndef VG_FRONTEND_VG1FRONTEND_H
#define VG_FRONTEND_VG1FRONTEND_H

#include "ir/IR.h"
#include "ir/IROpt.h"

#include <functional>
#include <memory>
#include <vector>

namespace vg {

/// Reads guest code bytes for disassembly. Returns how many bytes starting
/// at \p Addr were copied into \p Buf (0 if the address is not executable).
using FetchFn =
    std::function<uint32_t(uint32_t Addr, uint8_t *Buf, uint32_t MaxLen)>;

/// Output of Phase 1 for one superblock.
struct DisasmResult {
  std::unique_ptr<ir::IRSB> SB; ///< tree IR
  uint32_t Addr = 0;            ///< guest address of the block entry
  uint32_t NumInsns = 0;
  /// Guest byte ranges covered (more than one when unconditional branches
  /// were chased). Used for SMC hashing and translation invalidation.
  std::vector<std::pair<uint32_t, uint32_t>> Extents;
  /// True if the block ends because the next instruction failed to decode;
  /// the block then ends with a NoDecode jump.
  bool DecodeFailed = false;
  /// Trace stitching only: entry PCs of every constituent superblock the
  /// trace actually includes, in path order (the first element is Addr).
  /// Empty for plain superblocks.
  std::vector<uint32_t> TraceEntries;
};

/// Superblock formation limits.
struct FrontendConfig {
  unsigned MaxInsns = 50;
  unsigned MaxChases = 3;
};

/// Disassembles one superblock starting at \p Addr.
DisasmResult disassembleSB(uint32_t Addr, const FetchFn &Fetch,
                           const FrontendConfig &Cfg = FrontendConfig());

/// A hot path of chained superblocks to stitch into one trace (tier 2).
struct TraceSpec {
  /// Constituent entry PCs in execution order; Entries[0] is the trace
  /// head. Chosen by the core from the chain graph's execution counts.
  std::vector<uint32_t> Entries;
  /// Where the path goes after the last constituent (~0 = unknown). When
  /// it is the taken side of the last BCC, the trace ends with that
  /// direction as its chainable terminal (a loop back to Entries[0] then
  /// self-chains without a dispatcher round trip).
  uint32_t PreferredFinal = ~0u;
};

/// Disassembles the \p Spec path into a single superblock: at each
/// conditional branch whose likely direction continues the path, the
/// unlikely direction becomes a guarded side exit and disassembly carries
/// on across the seam. Degrades gracefully — if the code no longer matches
/// the path (SMC, stale counts), the result is a valid trace over the
/// prefix that still matches, never an error.
DisasmResult disassembleTrace(const TraceSpec &Spec, const FetchFn &Fetch,
                              const FrontendConfig &Cfg = FrontendConfig());

/// Proves the CC thunk dead at \p PC: every path from \p PC overwrites the
/// whole thunk (an opSetsFlags instruction) before reading it (BCC) and
/// before leaving straight-line code (limit 16 instructions, 2 chased
/// JMPs; anything else — SYS, calls, returns, decode failure — is
/// conservatively "live"). On success appends the scanned byte ranges to
/// \p Scanned so the proof is covered by SMC hashing and invalidation.
bool flagsDeadAt(uint32_t PC, const FetchFn &Fetch,
                 std::vector<std::pair<uint32_t, uint32_t>> &Scanned);

/// The clean helper evaluating VG1 conditions from the CC thunk:
/// vg1_calc_cond(cond, cc_op, cc_dep1, cc_dep2) -> 0/1.
const ir::Callee *calcCondCallee();

/// The dirty helper emulating CPUINFO (writes guest r0/r1).
const ir::Callee *cpuinfoCallee();

/// Partial evaluator for calcCond calls with constant cond/cc_op — the
/// reproduction of the %eflags specialisation hook (Section 3.7, Phase 2).
ir::SpecFn vg1SpecFn();

} // namespace vg

#endif // VG_FRONTEND_VG1FRONTEND_H
