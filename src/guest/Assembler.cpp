//===-- guest/Assembler.cpp - Programmatic VG1 assembler ------------------==//

#include "guest/Assembler.h"

#include "support/Errors.h"

using namespace vg;
using namespace vg::vg1;

Label Assembler::newLabel() {
  Label L;
  L.Id = static_cast<int>(LabelOffsets.size());
  LabelOffsets.push_back(-1);
  return L;
}

void Assembler::bind(Label L) {
  assert(L.valid() && "binding an invalid label");
  assert(LabelOffsets[L.Id] < 0 && "label bound twice");
  LabelOffsets[L.Id] = static_cast<int64_t>(Code.size());
}

void Assembler::symbol(const std::string &Name) { Symbols[Name] = here(); }

uint32_t Assembler::labelAddr(Label L) const {
  assert(L.valid() && LabelOffsets[L.Id] >= 0 && "label not bound");
  return Base + static_cast<uint32_t>(LabelOffsets[L.Id]);
}

void Assembler::addFixup(Label L, size_t Offset) {
  assert(L.valid() && "fixup against invalid label");
  Fixups.push_back(Fixup{L.Id, Offset});
}

void Assembler::movi(Reg Rd, uint32_t Imm) {
  Code.push_back(static_cast<uint8_t>(Opcode::MOVI));
  emitRegPair(Rd, Reg::R0);
  emitU32(Imm);
}

void Assembler::mov(Reg Rd, Reg Rs) {
  Code.push_back(static_cast<uint8_t>(Opcode::MOV));
  emitRegPair(Rd, Rs);
}

void Assembler::alu3(Opcode Op, Reg Rd, Reg Rs, Reg Rt) {
  Code.push_back(static_cast<uint8_t>(Op));
  emitRegPair(Rd, Rs);
  Code.push_back(static_cast<uint8_t>(static_cast<uint8_t>(Rt) << 4));
}

void Assembler::falu3(Opcode Op, FReg Fd, FReg Fs, FReg Ft) {
  Code.push_back(static_cast<uint8_t>(Op));
  Code.push_back(static_cast<uint8_t>((static_cast<uint8_t>(Fd) << 4) |
                                      static_cast<uint8_t>(Fs)));
  Code.push_back(static_cast<uint8_t>(static_cast<uint8_t>(Ft) << 4));
}

void Assembler::addi(Reg Rd, Reg Rs, int32_t Imm) {
  Code.push_back(static_cast<uint8_t>(Opcode::ADDI));
  emitRegPair(Rd, Rs);
  emitU32(static_cast<uint32_t>(Imm));
}

void Assembler::andi(Reg Rd, Reg Rs, uint32_t Imm) {
  Code.push_back(static_cast<uint8_t>(Opcode::ANDI));
  emitRegPair(Rd, Rs);
  emitU32(Imm);
}

void Assembler::shli(Reg Rd, Reg Rs, uint8_t Imm) {
  Code.push_back(static_cast<uint8_t>(Opcode::SHLI));
  emitRegPair(Rd, Rs);
  Code.push_back(Imm);
}

void Assembler::shri(Reg Rd, Reg Rs, uint8_t Imm) {
  Code.push_back(static_cast<uint8_t>(Opcode::SHRI));
  emitRegPair(Rd, Rs);
  Code.push_back(Imm);
}

void Assembler::sari(Reg Rd, Reg Rs, uint8_t Imm) {
  Code.push_back(static_cast<uint8_t>(Opcode::SARI));
  emitRegPair(Rd, Rs);
  Code.push_back(Imm);
}

void Assembler::cmp(Reg Rs, Reg Rt) {
  Code.push_back(static_cast<uint8_t>(Opcode::CMP));
  emitRegPair(Rs, Rt);
}

void Assembler::cmpi(Reg Rs, int32_t Imm) {
  Code.push_back(static_cast<uint8_t>(Opcode::CMPI));
  emitRegPair(Rs, Reg::R0);
  emitU32(static_cast<uint32_t>(Imm));
}

void Assembler::mem(Opcode Op, Reg A, Reg B, int16_t Disp) {
  Code.push_back(static_cast<uint8_t>(Op));
  emitRegPair(A, B);
  emitU16(static_cast<uint16_t>(Disp));
}

void Assembler::ldx(Reg Rd, Reg BaseR, Reg Index, uint8_t Scale,
                    int32_t Disp) {
  assert(Scale <= 3 && "LDX scale must be 0..3");
  Code.push_back(static_cast<uint8_t>(Opcode::LDX));
  emitRegPair(Rd, BaseR);
  Code.push_back(
      static_cast<uint8_t>((static_cast<uint8_t>(Index) << 4) | Scale));
  emitU32(static_cast<uint32_t>(Disp));
}

void Assembler::stx(Reg BaseR, Reg Index, uint8_t Scale, int32_t Disp,
                    Reg Rv) {
  assert(Scale <= 3 && "STX scale must be 0..3");
  Code.push_back(static_cast<uint8_t>(Opcode::STX));
  emitRegPair(BaseR, Rv);
  Code.push_back(
      static_cast<uint8_t>((static_cast<uint8_t>(Index) << 4) | Scale));
  emitU32(static_cast<uint32_t>(Disp));
}

void Assembler::push(Reg Rs) {
  Code.push_back(static_cast<uint8_t>(Opcode::PUSH));
  emitRegPair(Rs, Reg::R0);
}

void Assembler::pop(Reg Rd) {
  Code.push_back(static_cast<uint8_t>(Opcode::POP));
  emitRegPair(Rd, Reg::R0);
}

void Assembler::bcc(Cond C, Label Target) {
  Code.push_back(
      static_cast<uint8_t>(static_cast<uint8_t>(Opcode::BCC) +
                           static_cast<uint8_t>(C)));
  addFixup(Target, Code.size());
  emitU32(0);
}

void Assembler::jmp(Label Target) {
  Code.push_back(static_cast<uint8_t>(Opcode::JMP));
  addFixup(Target, Code.size());
  emitU32(0);
}

void Assembler::jmpAbs(uint32_t Target) {
  Code.push_back(static_cast<uint8_t>(Opcode::JMP));
  emitU32(Target);
}

void Assembler::jmpr(Reg Rs) {
  Code.push_back(static_cast<uint8_t>(Opcode::JMPR));
  emitRegPair(Rs, Reg::R0);
}

void Assembler::call(Label Target) {
  Code.push_back(static_cast<uint8_t>(Opcode::CALL));
  addFixup(Target, Code.size());
  emitU32(0);
}

void Assembler::callAbs(uint32_t Target) {
  Code.push_back(static_cast<uint8_t>(Opcode::CALL));
  emitU32(Target);
}

void Assembler::callr(Reg Rs) {
  Code.push_back(static_cast<uint8_t>(Opcode::CALLR));
  emitRegPair(Rs, Reg::R0);
}

void Assembler::ret() { Code.push_back(static_cast<uint8_t>(Opcode::RET)); }
void Assembler::sys() { Code.push_back(static_cast<uint8_t>(Opcode::SYS)); }
void Assembler::cpuinfo() {
  Code.push_back(static_cast<uint8_t>(Opcode::CPUINFO));
}
void Assembler::clreq() {
  Code.push_back(static_cast<uint8_t>(Opcode::CLREQ));
}
void Assembler::nop() { Code.push_back(static_cast<uint8_t>(Opcode::NOP)); }
void Assembler::hlt() { Code.push_back(static_cast<uint8_t>(Opcode::HLT)); }

void Assembler::fneg(FReg Fd, FReg Fs) {
  Code.push_back(static_cast<uint8_t>(Opcode::FNEG));
  Code.push_back(static_cast<uint8_t>((static_cast<uint8_t>(Fd) << 4) |
                                      static_cast<uint8_t>(Fs)));
}

void Assembler::fmov(FReg Fd, FReg Fs) {
  Code.push_back(static_cast<uint8_t>(Opcode::FMOV));
  Code.push_back(static_cast<uint8_t>((static_cast<uint8_t>(Fd) << 4) |
                                      static_cast<uint8_t>(Fs)));
}

void Assembler::fld(FReg Fd, Reg BaseR, int16_t Disp) {
  Code.push_back(static_cast<uint8_t>(Opcode::FLD));
  Code.push_back(static_cast<uint8_t>((static_cast<uint8_t>(Fd) << 4) |
                                      static_cast<uint8_t>(BaseR)));
  emitU16(static_cast<uint16_t>(Disp));
}

void Assembler::fst(Reg BaseR, int16_t Disp, FReg Fs) {
  Code.push_back(static_cast<uint8_t>(Opcode::FST));
  Code.push_back(static_cast<uint8_t>((static_cast<uint8_t>(BaseR) << 4) |
                                      static_cast<uint8_t>(Fs)));
  emitU16(static_cast<uint16_t>(Disp));
}

void Assembler::fitod(FReg Fd, Reg Rs) {
  Code.push_back(static_cast<uint8_t>(Opcode::FITOD));
  Code.push_back(static_cast<uint8_t>((static_cast<uint8_t>(Fd) << 4) |
                                      static_cast<uint8_t>(Rs)));
}

void Assembler::fdtoi(Reg Rd, FReg Fs) {
  Code.push_back(static_cast<uint8_t>(Opcode::FDTOI));
  Code.push_back(static_cast<uint8_t>((static_cast<uint8_t>(Rd) << 4) |
                                      static_cast<uint8_t>(Fs)));
}

void Assembler::fcmp(FReg Fs, FReg Ft) {
  Code.push_back(static_cast<uint8_t>(Opcode::FCMP));
  Code.push_back(static_cast<uint8_t>((static_cast<uint8_t>(Fs) << 4) |
                                      static_cast<uint8_t>(Ft)));
}

void Assembler::fmovi(FReg Fd, double Value) {
  Code.push_back(static_cast<uint8_t>(Opcode::FMOVI));
  Code.push_back(static_cast<uint8_t>(static_cast<uint8_t>(Fd) << 4));
  emitF64(Value);
}

void Assembler::emitU16(uint16_t V) {
  Code.push_back(static_cast<uint8_t>(V));
  Code.push_back(static_cast<uint8_t>(V >> 8));
}

void Assembler::emitU32(uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Code.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void Assembler::emitU64(uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Code.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void Assembler::emitF64(double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, 8);
  emitU64(Bits);
}

void Assembler::emitBytes(const void *Data, size_t Len) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  Code.insert(Code.end(), P, P + Len);
}

void Assembler::emitString(const std::string &S) {
  emitBytes(S.data(), S.size());
  Code.push_back(0);
}

void Assembler::emitZeros(size_t Len) { Code.insert(Code.end(), Len, 0); }

void Assembler::align(uint32_t A) {
  while (here() % A != 0)
    Code.push_back(0);
}

void Assembler::emitLabelAddr(Label L) {
  addFixup(L, Code.size());
  emitU32(0);
}

void Assembler::leai(Reg Rd, Label L) {
  Code.push_back(static_cast<uint8_t>(Opcode::MOVI));
  emitRegPair(Rd, Reg::R0);
  addFixup(L, Code.size());
  emitU32(0);
}

std::vector<uint8_t> Assembler::finalize() {
  for (const Fixup &F : Fixups) {
    if (LabelOffsets[F.LabelId] < 0)
      fatalError("assembler: unbound label referenced");
    uint32_t Addr = Base + static_cast<uint32_t>(LabelOffsets[F.LabelId]);
    for (int I = 0; I != 4; ++I)
      Code[F.Offset + I] = static_cast<uint8_t>(Addr >> (8 * I));
  }
  Fixups.clear();
  return Code;
}

//===----------------------------------------------------------------------===//
// encodeInstr — the inverse of decode()
//===----------------------------------------------------------------------===//

namespace {

void putU32(uint8_t *P, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    P[I] = static_cast<uint8_t>(V >> (8 * I));
}

void putU64(uint8_t *P, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    P[I] = static_cast<uint8_t>(V >> (8 * I));
}

} // namespace

unsigned vg1::encodeInstr(const Instr &I, uint8_t *Out) {
  if (I.Rd > 15 || I.Rs > 15 || I.Rt > 15 || I.Scale > 3)
    return 0;
  uint8_t RdRs = static_cast<uint8_t>((I.Rd << 4) | I.Rs);

  if (I.Op == Opcode::BCC) {
    if (static_cast<uint8_t>(I.BCond) >= NumConds)
      return 0;
    Out[0] = static_cast<uint8_t>(static_cast<uint8_t>(Opcode::BCC) +
                                  static_cast<uint8_t>(I.BCond));
    putU32(Out + 1, static_cast<uint32_t>(I.Imm));
    return 5;
  }

  Out[0] = static_cast<uint8_t>(I.Op);
  switch (I.Op) {
  case Opcode::NOP:
  case Opcode::HLT:
  case Opcode::RET:
  case Opcode::SYS:
  case Opcode::CPUINFO:
  case Opcode::CLREQ:
    return 1;

  case Opcode::MOV:
  case Opcode::CMP:
  case Opcode::JMPR:
  case Opcode::CALLR:
  case Opcode::PUSH:
  case Opcode::POP:
  case Opcode::FNEG:
  case Opcode::FITOD:
  case Opcode::FDTOI:
  case Opcode::FCMP:
  case Opcode::FMOV:
    Out[1] = RdRs;
    return 2;

  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR:
  case Opcode::SHL:
  case Opcode::SHR:
  case Opcode::SAR:
  case Opcode::MUL:
  case Opcode::DIVU:
  case Opcode::DIVS:
  case Opcode::FADD:
  case Opcode::FSUB:
  case Opcode::FMUL:
  case Opcode::FDIV:
  case Opcode::VADD8:
  case Opcode::VSUB8:
  case Opcode::VCMPGT8:
    Out[1] = RdRs;
    Out[2] = static_cast<uint8_t>(I.Rt << 4);
    return 3;

  case Opcode::SHLI:
  case Opcode::SHRI:
  case Opcode::SARI:
    if (I.Imm < 0 || I.Imm > 0xFF)
      return 0;
    Out[1] = RdRs;
    Out[2] = static_cast<uint8_t>(I.Imm);
    return 3;

  case Opcode::LD:
  case Opcode::ST:
  case Opcode::LDB:
  case Opcode::LDSB:
  case Opcode::STB:
  case Opcode::LDH:
  case Opcode::LDSH:
  case Opcode::STH:
  case Opcode::FLD:
  case Opcode::FST:
    if (I.Imm < INT16_MIN || I.Imm > INT16_MAX)
      return 0;
    Out[1] = RdRs;
    Out[2] = static_cast<uint8_t>(static_cast<uint16_t>(I.Imm) & 0xFF);
    Out[3] = static_cast<uint8_t>(static_cast<uint16_t>(I.Imm) >> 8);
    return 4;

  case Opcode::JMP:
  case Opcode::CALL:
    putU32(Out + 1, static_cast<uint32_t>(I.Imm));
    return 5;

  case Opcode::MOVI:
  case Opcode::CMPI:
  case Opcode::ADDI:
  case Opcode::ANDI:
    Out[1] = RdRs;
    putU32(Out + 2, static_cast<uint32_t>(I.Imm));
    return 6;

  case Opcode::LDX:
  case Opcode::STX:
    Out[1] = RdRs;
    Out[2] = static_cast<uint8_t>((I.Rt << 4) | I.Scale);
    putU32(Out + 3, static_cast<uint32_t>(I.Imm));
    return 7;

  case Opcode::FMOVI:
    Out[1] = static_cast<uint8_t>(I.Rd << 4);
    putU64(Out + 2, I.Imm64);
    return 10;

  case Opcode::BCC: // handled above
    return 0;
  }
  return 0;
}
