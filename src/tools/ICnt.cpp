//===-- tools/ICnt.cpp - Instruction-counting tools -----------------------==//

#include "tools/ICnt.h"

#include "guest/GuestArch.h"

using namespace vg;
using namespace vg::ir;

uint64_t ICnt::helperIncrement(void *Env, uint64_t, uint64_t, uint64_t,
                               uint64_t) {
  auto *Ctx = static_cast<ExecContext *>(Env);
  ++static_cast<ICnt *>(Ctx->Tool)->CCallCounter;
  return 0;
}

namespace {
const Callee IncrementCallee = {"icnt_increment", &ICnt::helperIncrement, 0};
const ir::CalleeRegistrar RegisterCallees{&IncrementCallee};
} // namespace

void ICnt::instrument(IRSB &SB) {
  std::vector<Stmt *> Old;
  Old.swap(SB.stmts());
  for (Stmt *S : Old) {
    SB.append(S);
    if (S->Kind != StmtKind::IMark)
      continue;
    if (TheMode == Mode::Inline) {
      TmpId T = SB.wrTmp(SB.get(ICntSlotOffset, Ty::I64));
      TmpId T2 = SB.wrTmp(SB.binop(Op::Add64, SB.rdTmp(T), SB.constI64(1)));
      SB.put(ICntSlotOffset, SB.rdTmp(T2));
    } else {
      SB.dirty(&IncrementCallee, {});
    }
  }
}

uint64_t ICnt::count() const {
  if (TheMode == Mode::CCall)
    return CCallCounter;
  if (FinalCount)
    return FinalCount;
  uint64_t Total = 0;
  if (TheCore) {
    for (int I = 0; I != Core::MaxThreads; ++I) {
      uint64_t V;
      std::memcpy(&V, TheCore->thread(I).Guest + ICntSlotOffset, 8);
      Total += V;
    }
  }
  return Total;
}

void ICnt::fini(int ExitCode) {
  FinalCount = count();
  if (TheCore)
    TheCore->output().printf("%s: executed %llu instructions\n", name(),
                             static_cast<unsigned long long>(FinalCount));
}
