//===-- tools/Massif.h - Heap profiler --------------------------*- C++ -*-==//
///
/// \file
/// Massif reproduced: a heap profiler built entirely on the core's heap
/// replacement (R8). It tracks live heap bytes over "time" (measured in
/// allocation events), records periodic snapshots, the peak, and
/// attributes allocations to their guest call sites.
///
//===----------------------------------------------------------------------===//
#ifndef VG_TOOLS_MASSIF_H
#define VG_TOOLS_MASSIF_H

#include "core/Core.h"
#include "core/Tool.h"

#include <map>

namespace vg {

class Massif : public Tool {
public:
  const char *name() const override { return "massif"; }
  void init(Core &Core_) override { C = &Core_; }
  void fini(int ExitCode) override;

  bool tracksHeap() const override { return true; }
  uint32_t redzoneBytes() const override { return 0; } // pure profiler
  void onMalloc(int Tid, uint32_t Addr, uint32_t Size, bool Zeroed) override;
  void onFree(int Tid, uint32_t Addr, uint32_t Size) override;

  struct Snapshot {
    uint64_t Time; ///< allocation-event ordinal
    uint64_t LiveBytes;
  };

  uint64_t peakBytes() const { return PeakBytes; }
  const std::vector<Snapshot> &snapshots() const { return Snapshots; }
  const std::map<uint32_t, uint64_t> &bytesBySite() const {
    return BytesBySite;
  }

private:
  void tick();

  Core *C = nullptr;
  uint64_t LiveBytes = 0, PeakBytes = 0, Time = 0;
  std::vector<Snapshot> Snapshots;
  std::map<uint32_t, uint64_t> BytesBySite; ///< call site -> live bytes
  std::map<uint32_t, uint32_t> SiteOfBlock; ///< payload -> call site
};

} // namespace vg

#endif // VG_TOOLS_MASSIF_H
