//===-- hvm/ISel.h - Phase 6: instruction selection -------------*- C++ -*-==//
///
/// \file
/// Converts tree IR into a host-instruction list over virtual registers
/// using a simple, greedy, top-down tree-matching algorithm (Section 3.7,
/// Phase 6). Patterns matched beyond the trivial per-node lowering:
/// constants feeding commutative/shift ALU ops become ALUI immediates, and
/// Add32(base, const) addresses fold into load/store displacements.
///
//===----------------------------------------------------------------------===//
#ifndef VG_HVM_ISEL_H
#define VG_HVM_ISEL_H

#include "hvm/HostVM.h"
#include "ir/IR.h"

namespace vg {
namespace hvm {

/// Lowers a (tree or flat) superblock. The result still uses virtual
/// registers; run allocateRegisters() on it next.
HostCode selectInstructions(const ir::IRSB &SB);

/// Phase 7: linear-scan register allocation in place. Coalesces MOVs where
/// interval hints allow and inserts SPILL/RELOAD around overflowed
/// intervals. Returns the number of MOVs removed by coalescing (reported by
/// the Figure 3 bench).
unsigned allocateRegisters(HostCode &Code);

} // namespace hvm
} // namespace vg

#endif // VG_HVM_ISEL_H
