//===-- tests/MtSchedTests.cpp - Sharded-scheduler concurrency tests ------==//
///
/// \file
/// Hammer tests for --sched-threads=N true parallel guest execution
/// (Section 3.14): multi-threaded CPU-bound and signal-heavy guests must
/// produce the same stdout under the sharded scheduler as under the
/// serialised one, with Memcheck staying error-clean; --sched-threads=1
/// must replay byte-identically against a run that never mentions the
/// option at all (same scheduling decisions, same --trace-events stream);
/// and the formerly racy Translation::EdgeExecs counters are pinned as
/// atomics by a cross-thread increment hammer. The whole file carries the
/// "concurrency" label so the TSan preset sweeps it.
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "core/TransTab.h"
#include "tools/Memcheck.h"
#include "tools/Nulgrind.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace vg;

namespace {

/// The "=== event trace ... ===" block of a run's tool output.
std::string extractTrace(const std::string &Output) {
  size_t Begin = Output.find("=== event trace");
  if (Begin == std::string::npos)
    return "";
  const char *EndMark = "=== end event trace ===";
  size_t End = Output.find(EndMark, Begin);
  if (End == std::string::npos)
    return "";
  return Output.substr(Begin, End + std::string(EndMark).size() - Begin);
}

RunReport runNul(const GuestImage &Img, std::vector<std::string> Opts) {
  Nulgrind T;
  return runUnderCore(Img, &T, Opts);
}

RunReport runMc(const GuestImage &Img, std::vector<std::string> Opts) {
  Memcheck T;
  return runUnderCore(Img, &T, Opts);
}

void expectClean(const RunReport &R) {
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.FatalSignal, 0);
  EXPECT_EQ(R.ExitCode, 0);
}

} // namespace

// Four CPU-bound guest threads under four host shards, plain dispatch:
// the parallel run must print exactly what the serial run prints.
TEST(MtSched, CpuHammerMatchesSerial) {
  GuestImage Img = buildWorkload("mtcpu", 8);
  RunReport Serial = runNul(Img, {});
  expectClean(Serial);
  EXPECT_FALSE(Serial.Stdout.empty()); // the workload prints its checksum

  for (int Round = 0; Round != 3; ++Round) {
    RunReport Mt = runNul(Img, {"--sched-threads=4"});
    expectClean(Mt);
    EXPECT_EQ(Mt.Stdout, Serial.Stdout) << "round " << Round;
  }
}

// Same hammer with the full JIT stack lit up: chaining, hot promotion on
// background JIT threads, and trace formation all racing the shards.
TEST(MtSched, CpuHammerWithChainingAndJitThreads) {
  GuestImage Img = buildWorkload("mtcpu", 8);
  RunReport Serial = runNul(Img, {});
  expectClean(Serial);

  for (int Round = 0; Round != 3; ++Round) {
    RunReport Mt = runNul(Img, {"--sched-threads=4", "--chaining=yes",
                                "--hot-threshold=20", "--jit-threads=2"});
    expectClean(Mt);
    EXPECT_EQ(Mt.Stdout, Serial.Stdout) << "round " << Round;
  }
}

// The signal-heavy multi-thread workload: cross-thread kills, handlers,
// and yields under the sharded scheduler.
TEST(MtSched, SignalHammerMatchesSerial) {
  GuestImage Img = buildWorkload("sigmt", 4);
  RunReport Serial = runNul(Img, {});
  expectClean(Serial);

  for (int Round = 0; Round != 3; ++Round) {
    RunReport Mt = runNul(Img, {"--sched-threads=4", "--chaining=yes"});
    expectClean(Mt);
    EXPECT_EQ(Mt.Stdout, Serial.Stdout) << "round " << Round;
  }
}

// Memcheck's shadow machinery under real concurrency: per-thread shadow
// loads/stores, the striped secondary maps, and the error funnel. The
// guest is race-free, so Memcheck must report zero errors and the same
// checksum as its serial self.
TEST(MtSched, MemcheckParallelCleanAndDeterministicOutput) {
  GuestImage Img = buildWorkload("mtcpu", 8);
  RunReport Serial = runMc(Img, {});
  expectClean(Serial);
  EXPECT_NE(Serial.ToolOutput.find("ERROR SUMMARY: 0 errors"),
            std::string::npos)
      << Serial.ToolOutput;

  RunReport Mt = runMc(Img, {"--sched-threads=4", "--chaining=yes",
                             "--hot-threshold=20"});
  expectClean(Mt);
  EXPECT_EQ(Mt.Stdout, Serial.Stdout);
  EXPECT_NE(Mt.ToolOutput.find("ERROR SUMMARY: 0 errors"), std::string::npos)
      << Mt.ToolOutput;
}

// --sched-threads=1 must be byte-identical to a run that never passes the
// option: same stdout, and the same fault-injection event trace — the
// strongest observable statement that N=1 takes the legacy scheduler's
// exact decision sequence.
TEST(MtSched, SchedThreadsOneIsByteIdenticalToDefault) {
  GuestImage Img = buildWorkload("sigmt", 3);
  std::vector<std::string> Base = {"--fault-inject=all,seed=7",
                                   "--trace-events=yes", "--trace-dump=yes"};
  RunReport Default = runNul(Img, Base);
  expectClean(Default);

  std::vector<std::string> WithOpt = Base;
  WithOpt.push_back("--sched-threads=1");
  RunReport One = runNul(Img, WithOpt);
  expectClean(One);

  EXPECT_EQ(One.Stdout, Default.Stdout);
  std::string TraceDefault = extractTrace(Default.ToolOutput);
  std::string TraceOne = extractTrace(One.ToolOutput);
  ASSERT_FALSE(TraceDefault.empty());
  EXPECT_EQ(TraceOne, TraceDefault);
}

// Pin Translation::EdgeExecs as an atomic: four threads hammer the same
// slots the way four shards' chain thunks do. TSan validates the absence
// of a data race; the count validates no lost increments.
TEST(MtSched, EdgeExecsIncrementsAreAtomic) {
  Translation T;
  T.EdgeExecs = std::vector<std::atomic<uint64_t>>(4);
  constexpr int Threads = 4;
  constexpr uint64_t PerThread = 50000;

  std::vector<std::thread> Workers;
  for (int W = 0; W != Threads; ++W)
    Workers.emplace_back([&T] {
      for (uint64_t I = 0; I != PerThread; ++I)
        T.EdgeExecs[I % 4].fetch_add(1, std::memory_order_relaxed);
    });
  for (std::thread &W : Workers)
    W.join();

  uint64_t Total = 0;
  for (const std::atomic<uint64_t> &E : T.EdgeExecs)
    Total += E.load();
  EXPECT_EQ(Total, uint64_t(Threads) * PerThread);
}

// The capability gate: a tool that does not declare parallel support gets
// the scheduler clamped back to one shard rather than racing through an
// unprepared tool. ICnt-style tools are absent here; use the base-class
// default via a minimal Tool subclass.
namespace {
struct SerialOnlyTool : Nulgrind {
  bool supportsParallelGuests() const override { return false; }
};
} // namespace

TEST(MtSched, UnsupportedToolClampsToOneShard) {
  GuestImage Img = buildWorkload("mtcpu", 2);
  SerialOnlyTool T;
  RunReport R = runUnderCore(Img, &T, {"--sched-threads=4"});
  expectClean(R);
  RunReport Serial = runNul(Img, {});
  EXPECT_EQ(R.Stdout, Serial.Stdout);
}
