//===-- core/ErrorManager.h - Error recording and suppression ---*- C++ -*-==//
///
/// \file
/// The core's error-recording services (Section 4, R9): tools report
/// errors here; the manager deduplicates them (by kind + program counter),
/// applies suppressions ("the ability to suppress uninteresting/unfixable
/// errors via suppressions listed in files"), attaches stack traces, and
/// renders the familiar end-of-run report.
///
//===----------------------------------------------------------------------===//
#ifndef VG_CORE_ERRORMANAGER_H
#define VG_CORE_ERRORMANAGER_H

#include "support/Output.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace vg {

/// One deduplicated error site.
struct ErrorRecord {
  std::string Kind;    ///< e.g. "UninitValue", "InvalidRead"
  std::string Message; ///< first occurrence's rendered message
  uint32_t PC = 0;
  std::vector<uint32_t> Stack; ///< return addresses, innermost first
  uint64_t Count = 0;
  bool Suppressed = false;
};

/// A suppression: matches errors by kind and (optionally) a PC range.
/// The textual form is "Kind" or "Kind:0xLO-0xHI", one per line; '#'
/// comments and blank lines are ignored.
struct Suppression {
  std::string Kind;
  uint32_t Lo = 0, Hi = 0xFFFFFFFF;
};

class ErrorManager {
public:
  /// Records one error occurrence. Returns true if this is a new
  /// (unsuppressed, previously unseen) error site — tools use this to
  /// decide whether to print the full message. Internally serialised:
  /// tool helpers report from inside Exec.run, which under
  /// --sched-threads=N runs on several host threads at once.
  bool record(const std::string &Kind, const std::string &Message,
              uint32_t PC, std::vector<uint32_t> Stack = {});

  void addSuppression(const Suppression &S) { Sups.push_back(S); }
  /// Parses suppression text (see Suppression); returns entries added.
  unsigned parseSuppressions(const std::string &Text);

  const std::vector<ErrorRecord> &records() const { return Records; }
  uint64_t uniqueErrors() const;
  uint64_t totalOccurrences() const;
  uint64_t suppressedCount() const { return NumSuppressed; }

  /// Prints the ERROR SUMMARY block.
  void printSummary(OutputSink &Out) const;

private:
  bool matchesSuppression(const std::string &Kind, uint32_t PC) const;

  mutable std::mutex Mu; ///< guards Records/NumSuppressed (record vs record)
  std::vector<ErrorRecord> Records;
  std::vector<Suppression> Sups;
  uint64_t NumSuppressed = 0;
};

} // namespace vg

#endif // VG_CORE_ERRORMANAGER_H
