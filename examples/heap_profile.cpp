//===-- examples/heap_profile.cpp - Massif on a phased allocator ----------==//
///
/// \file
/// Massif profiling a program with distinct heap phases: ramp up, plateau,
/// partial release, second spike. The snapshot graph and per-call-site
/// attribution mirror real massif output.
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "guestlib/GuestLib.h"
#include "tools/Massif.h"

#include <cstdio>

using namespace vg;
using namespace vg::vg1;

int main() {
  Assembler Code(0x1000);
  Assembler Data(0x100000);
  GuestLibLabels Lib = emitGuestLib(Code, Data);
  Label Main = Code.newLabel();
  uint32_t Entry = emitStart(Code, Main);
  Code.bind(Main);

  Label Ptrs = Data.boundLabel();
  Data.emitZeros(64 * 4);
  uint32_t PtrsAddr = Data.labelAddr(Ptrs);

  // Phase 1: allocate 64 blocks of 512 bytes (site A).
  Code.movi(Reg::R6, 0);
  Label Ramp = Code.boundLabel();
  Code.movi(Reg::R1, 512);
  Code.call(Lib.Malloc); // site A
  Code.movi(Reg::R2, PtrsAddr);
  Code.stx(Reg::R2, Reg::R6, 2, 0, Reg::R0);
  Code.addi(Reg::R6, Reg::R6, 1);
  Code.cmpi(Reg::R6, 64);
  Code.blt(Ramp);

  // Phase 2: free every other block.
  Code.movi(Reg::R6, 0);
  Label Thin = Code.boundLabel();
  Code.movi(Reg::R2, PtrsAddr);
  Code.ldx(Reg::R1, Reg::R2, Reg::R6, 2, 0);
  Code.call(Lib.Free);
  Code.addi(Reg::R6, Reg::R6, 2);
  Code.cmpi(Reg::R6, 64);
  Code.blt(Thin);

  // Phase 3: one big spike (site B), freed immediately.
  Code.movi(Reg::R1, 100000);
  Code.call(Lib.Malloc); // site B
  Code.mov(Reg::R1, Reg::R0);
  Code.call(Lib.Free);
  Code.movi(Reg::R0, 0);
  Code.ret();

  GuestImage Img =
      GuestImageBuilder().addCode(Code).addData(Data).entry(Entry).build();

  Massif Tool;
  RunReport R = runUnderCore(Img, &Tool);
  std::printf("=== massif report ===\n%s", R.ToolOutput.c_str());
  std::printf("\n(the peak captures phase 3's spike on top of the "
              "surviving phase-1 blocks;\n the live-bytes table points at "
              "the allocation sites still holding memory at exit)\n");
  return 0;
}
