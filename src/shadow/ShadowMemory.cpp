//===-- shadow/ShadowMemory.cpp - Shadow memory ---------------------------==//

#include "shadow/ShadowMemory.h"

#include <algorithm>

using namespace vg;

ShadowMap::Secondary ShadowMap::DsmNoAccess;
ShadowMap::Secondary ShadowMap::DsmDefined;
bool ShadowMap::DsmInit = false;
thread_local ShadowMap::TLCache ShadowMap::TLC;

namespace {
std::atomic<uint64_t> NextMapId{1};
} // namespace

ShadowMap::ShadowMap()
    : Primary(NumChunks), Id(NextMapId.fetch_add(1,
                                                 std::memory_order_relaxed)) {
  if (!DsmInit) {
    DsmNoAccess.V.fill(0xFF);
    DsmNoAccess.A.fill(0x00);
    DsmDefined.V.fill(0x00);
    DsmDefined.A.fill(0xFF);
    DsmInit = true;
  }
  for (std::atomic<Secondary *> &P : Primary)
    P.store(&DsmNoAccess, std::memory_order_relaxed);
}

ShadowMap::~ShadowMap() {
  for (std::atomic<Secondary *> &P : Primary) {
    Secondary *S = P.load(std::memory_order_relaxed);
    if (ownedSec(S))
      delete S;
  }
  // Graveyard secondaries free themselves (unique_ptr).
}

ShadowMap::Secondary *ShadowMap::materialise(uint32_t ChunkIdx) {
  std::lock_guard<std::mutex> Lock(Stripes[ChunkIdx % NumStripes]);
  Secondary *Cur = Primary[ChunkIdx].load(std::memory_order_relaxed);
  if (ownedSec(Cur)) {
    // Another thread materialised this chunk while we waited on the
    // stripe; adopt its secondary.
    TLC = {Id, CacheEpoch.load(std::memory_order_acquire), ChunkIdx, Cur,
           Cur};
    return Cur;
  }
  // Materialise a copy of the distinguished secondary (copy-on-write).
  Secondary *Raw = new Secondary(*Cur);
  // Release: a lock-free reader that sees the pointer sees the copy.
  Primary[ChunkIdx].store(Raw, std::memory_order_release);
  St.Materialised.fetch_add(1, std::memory_order_relaxed);
  uint64_t Live = St.LiveChunks.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t HW = St.HighWater.load(std::memory_order_relaxed);
  while (Live > HW &&
         !St.HighWater.compare_exchange_weak(HW, Live,
                                             std::memory_order_relaxed)) {
  }
  // Invalidate every thread's cached line for this chunk, then update
  // (don't just drop) our own: the caller is about to write here.
  uint64_t E = CacheEpoch.fetch_add(1, std::memory_order_release) + 1;
  TLC = {Id, E, ChunkIdx, Raw, Raw};
  return Raw;
}

void ShadowMap::setWholeChunk(uint32_t ChunkIdx, Secondary *Dsm) {
  std::lock_guard<std::mutex> Lock(Stripes[ChunkIdx % NumStripes]);
  Secondary *Old = Primary[ChunkIdx].load(std::memory_order_relaxed);
  Primary[ChunkIdx].store(Dsm, std::memory_order_release);
  if (ownedSec(Old)) {
    St.Reclaimed.fetch_add(1, std::memory_order_relaxed);
    St.LiveChunks.fetch_sub(1, std::memory_order_relaxed);
    if (DeferReclaim) {
      // A concurrent probe may still hold Old: park it until destruction.
      std::lock_guard<std::mutex> RLock(ReclaimMu);
      Graveyard.emplace_back(Old);
    } else {
      delete Old;
    }
  }
  // The epoch bump drops every thread's cached pointer for this map —
  // including our own entry for this chunk, which just died.
  CacheEpoch.fetch_add(1, std::memory_order_release);
}

namespace {
/// Applies Fn(chunk-relative offset, length) over [Addr, Addr+Len) chunk by
/// chunk.
template <typename Fn>
void forChunks(uint32_t Addr, uint32_t Len, Fn F) {
  while (Len) {
    uint32_t Chunk = Addr >> ShadowMap::ChunkBits;
    uint32_t Off = Addr & (ShadowMap::ChunkSize - 1);
    uint32_t N = std::min(Len, ShadowMap::ChunkSize - Off);
    F(Chunk, Off, N);
    Addr += N;
    Len -= N;
  }
}

/// Mask with bits [Lo, Hi) set, 0 <= Lo < Hi <= 8.
inline uint8_t bitMask(uint32_t Lo, uint32_t Hi) {
  return static_cast<uint8_t>(((1u << (Hi - Lo)) - 1u) << Lo);
}

/// Sets or clears A-bits [Off, Off+N) in \p A: memset over the whole
/// bytes, masked read-modify-write on the (at most two) edge bytes.
void setARange(uint8_t *A, uint32_t Off, uint32_t N, bool Set) {
  if (!N)
    return;
  uint32_t End = Off + N;
  auto Apply = [&](uint32_t Byte, uint8_t M) {
    if (Set)
      A[Byte] |= M;
    else
      A[Byte] &= static_cast<uint8_t>(~M);
  };
  uint32_t FullStart = (Off + 7) & ~7u;
  uint32_t FullEnd = End & ~7u;
  if (FullStart >= FullEnd) {
    // No whole byte: one or two partial bytes.
    if ((Off >> 3) == ((End - 1) >> 3)) {
      Apply(Off >> 3, bitMask(Off & 7, ((End - 1) & 7) + 1));
    } else {
      Apply(Off >> 3, bitMask(Off & 7, 8));
      Apply((End - 1) >> 3, bitMask(0, End & 7));
    }
    return;
  }
  if (Off & 7)
    Apply(Off >> 3, bitMask(Off & 7, 8));
  std::memset(A + (FullStart >> 3), Set ? 0xFF : 0x00,
              (FullEnd - FullStart) >> 3);
  if (End & 7)
    Apply(End >> 3, bitMask(0, End & 7));
}

/// Copies N bits from SrcA (starting at bit SrcOff) to DstA (bit DstOff).
/// When the bit phases match this is whole-byte copies with masked edges;
/// otherwise it falls back to a per-bit loop.
void copyABits(uint8_t *DstA, uint32_t DstOff, const uint8_t *SrcA,
               uint32_t SrcOff, uint32_t N) {
  if (!N)
    return;
  if (((DstOff ^ SrcOff) & 7) != 0) {
    for (uint32_t J = 0; J != N; ++J) {
      uint32_t S = SrcOff + J, D = DstOff + J;
      if (SrcA[S >> 3] & (1u << (S & 7)))
        DstA[D >> 3] |= static_cast<uint8_t>(1u << (D & 7));
      else
        DstA[D >> 3] &= static_cast<uint8_t>(~(1u << (D & 7)));
    }
    return;
  }
  uint32_t D = DstOff, S = SrcOff, Rem = N;
  auto CopyPart = [&](uint32_t Count) { // within a single byte
    uint8_t M = bitMask(D & 7, (D & 7) + Count);
    DstA[D >> 3] =
        static_cast<uint8_t>((DstA[D >> 3] & ~M) | (SrcA[S >> 3] & M));
    D += Count;
    S += Count;
    Rem -= Count;
  };
  if (D & 7)
    CopyPart(std::min(Rem, 8 - (D & 7)));
  if (Rem >= 8) {
    std::memcpy(DstA + (D >> 3), SrcA + (S >> 3), Rem >> 3);
    D += Rem & ~7u;
    S += Rem & ~7u;
    Rem &= 7;
  }
  if (Rem)
    CopyPart(Rem);
}
} // namespace

void ShadowMap::makeNoAccess(uint32_t Addr, uint32_t Len) {
  forChunks(Addr, Len, [&](uint32_t C, uint32_t Off, uint32_t N) {
    if (Off == 0 && N == ChunkSize) {
      setWholeChunk(C, &DsmNoAccess); // reclaims any owned secondary
      return;
    }
    Secondary *S = writable(C);
    std::memset(S->V.data() + Off, 0xFF, N);
    setARange(S->A.data(), Off, N, false);
  });
}

void ShadowMap::makeDefined(uint32_t Addr, uint32_t Len) {
  forChunks(Addr, Len, [&](uint32_t C, uint32_t Off, uint32_t N) {
    if (Off == 0 && N == ChunkSize) {
      setWholeChunk(C, &DsmDefined);
      return;
    }
    Secondary *S = writable(C);
    std::memset(S->V.data() + Off, 0x00, N);
    setARange(S->A.data(), Off, N, true);
  });
}

void ShadowMap::makeUndefined(uint32_t Addr, uint32_t Len) {
  // No distinguished secondary for addressable-but-undefined: always owned.
  forChunks(Addr, Len, [&](uint32_t C, uint32_t Off, uint32_t N) {
    Secondary *S = writable(C);
    std::memset(S->V.data() + Off, 0xFF, N);
    setARange(S->A.data(), Off, N, true);
  });
}

void ShadowMap::copyRange(uint32_t Src, uint32_t Dst, uint32_t Len) {
  if (!Len || Src == Dst)
    return;
  // Stage through temporaries: makes overlap behave like memmove and keeps
  // the scatter at one writable() (i.e. at most one CoW) per chunk instead
  // of per byte. A-bits are staged at Src's bit phase so the gather side is
  // always whole-byte copies.
  std::vector<uint8_t> VStage(Len);
  uint32_t Phase = Src & 7;
  std::vector<uint8_t> AStage((Phase + Len + 7) / 8, 0);
  uint32_t I = 0;
  forChunks(Src, Len, [&](uint32_t C, uint32_t Off, uint32_t N) {
    const Secondary *S = readable(C);
    std::memcpy(VStage.data() + I, S->V.data() + Off, N);
    copyABits(AStage.data(), Phase + I, S->A.data(), Off, N);
    I += N;
  });
  I = 0;
  forChunks(Dst, Len, [&](uint32_t C, uint32_t Off, uint32_t N) {
    Secondary *S = writable(C);
    std::memcpy(S->V.data() + Off, VStage.data() + I, N);
    copyABits(S->A.data(), Off, AStage.data(), Phase + I, N);
    I += N;
  });
}

uint8_t ShadowMap::vbyte(uint32_t Addr) const {
  const Secondary *S = readable(Addr >> ChunkBits);
  return S->V[Addr & (ChunkSize - 1)];
}

bool ShadowMap::abit(uint32_t Addr) const {
  const Secondary *S = readable(Addr >> ChunkBits);
  uint32_t Off = Addr & (ChunkSize - 1);
  return S->A[Off >> 3] & (1u << (Off & 7));
}

void ShadowMap::setByte(uint32_t Addr, bool Addressable, uint8_t V) {
  Secondary *S = writable(Addr >> ChunkBits);
  uint32_t Off = Addr & (ChunkSize - 1);
  S->V[Off] = V;
  if (Addressable)
    S->A[Off >> 3] |= static_cast<uint8_t>(1u << (Off & 7));
  else
    S->A[Off >> 3] &= static_cast<uint8_t>(~(1u << (Off & 7)));
}

// VG_NO_TSAN: V/A bytes of racy guest data (see Sanitizers.h).
VG_NO_TSAN uint64_t ShadowMap::loadVSlow(uint32_t Addr, uint32_t Size,
                              AddrCheck &Check) const {
  uint64_t V = 0;
  for (uint32_t I = 0; I != Size; ++I) {
    uint32_t A = Addr + I;
    uint8_t VB;
    if (!abit(A)) {
      if (Check.Ok) {
        Check.Ok = false;
        Check.FirstBad = A;
      }
      VB = 0xFF;
    } else {
      VB = vbyte(A);
    }
    V |= static_cast<uint64_t>(VB) << (8 * I);
  }
  return V;
}

VG_NO_TSAN void ShadowMap::storeVSlow(uint32_t Addr, uint32_t Size, uint64_t Vbits,
                           AddrCheck &Check) {
  for (uint32_t I = 0; I != Size; ++I) {
    uint32_t A = Addr + I;
    if (!abit(A)) {
      if (Check.Ok) {
        Check.Ok = false;
        Check.FirstBad = A;
      }
      continue;
    }
    Secondary *S = writable(A >> ChunkBits);
    S->V[A & (ChunkSize - 1)] = static_cast<uint8_t>(Vbits >> (8 * I));
  }
}

bool ShadowMap::isAddressable(uint32_t Addr, uint32_t Len,
                              uint32_t &FirstBad) const {
  for (uint32_t I = 0; I != Len; ++I) {
    if (!abit(Addr + I)) {
      FirstBad = Addr + I;
      return false;
    }
  }
  return true;
}

bool ShadowMap::isDefined(uint32_t Addr, uint32_t Len, uint32_t &FirstBad,
                          bool &BadIsUnaddressable) const {
  for (uint32_t I = 0; I != Len; ++I) {
    if (!abit(Addr + I)) {
      FirstBad = Addr + I;
      BadIsUnaddressable = true;
      return false;
    }
    if (vbyte(Addr + I)) {
      FirstBad = Addr + I;
      BadIsUnaddressable = false;
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// DirectShadow
//===----------------------------------------------------------------------===//

DirectShadow::DirectShadow(uint32_t WindowBase, uint32_t WindowSize)
    : Base(WindowBase), Size(WindowSize), V(WindowSize, 0xFF),
      A(WindowSize, 0) {}

void DirectShadow::makeNoAccess(uint32_t Addr, uint32_t Len) {
  if (!covers(Addr, Len))
    return;
  std::memset(V.data() + (Addr - Base), 0xFF, Len);
  std::memset(A.data() + (Addr - Base), 0, Len);
}

void DirectShadow::makeUndefined(uint32_t Addr, uint32_t Len) {
  if (!covers(Addr, Len))
    return;
  std::memset(V.data() + (Addr - Base), 0xFF, Len);
  std::memset(A.data() + (Addr - Base), 1, Len);
}

void DirectShadow::makeDefined(uint32_t Addr, uint32_t Len) {
  if (!covers(Addr, Len))
    return;
  std::memset(V.data() + (Addr - Base), 0, Len);
  std::memset(A.data() + (Addr - Base), 1, Len);
}

uint64_t DirectShadow::loadV(uint32_t Addr, uint32_t Sz,
                             AddrCheck &Check) const {
  if (!covers(Addr, Sz)) {
    Check.Ok = false;
    Check.FirstBad = Addr;
    return ~0ull;
  }
  uint32_t Off = Addr - Base;
  uint64_t Out = 0;
  for (uint32_t I = 0; I != Sz; ++I) {
    if (!A[Off + I] && Check.Ok) {
      Check.Ok = false;
      Check.FirstBad = Addr + I;
    }
    Out |= static_cast<uint64_t>(A[Off + I] ? V[Off + I] : 0xFF) << (8 * I);
  }
  return Out;
}

void DirectShadow::storeV(uint32_t Addr, uint32_t Sz, uint64_t Vbits,
                          AddrCheck &Check) {
  if (!covers(Addr, Sz)) {
    Check.Ok = false;
    Check.FirstBad = Addr;
    return;
  }
  uint32_t Off = Addr - Base;
  for (uint32_t I = 0; I != Sz; ++I) {
    if (!A[Off + I]) {
      if (Check.Ok) {
        Check.Ok = false;
        Check.FirstBad = Addr + I;
      }
      continue;
    }
    V[Off + I] = static_cast<uint8_t>(Vbits >> (8 * I));
  }
}
