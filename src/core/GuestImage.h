//===-- core/GuestImage.h - Guest executable images (GEF) -------*- C++ -*-==//
///
/// \file
/// The guest executable format: the unit the core's loader consumes
/// (standing in for ELF, Section 3.3). An image carries segments (code and
/// data with their base addresses and permissions), an entry point, and a
/// symbol table (used by function redirection, R8).
///
/// Images are normally produced from one or more Assemblers via
/// GuestImageBuilder; a flat serialised form exists so images can be
/// written to and loaded from the virtual filesystem.
///
//===----------------------------------------------------------------------===//
#ifndef VG_CORE_GUESTIMAGE_H
#define VG_CORE_GUESTIMAGE_H

#include "guest/Assembler.h"

#include <map>
#include <string>
#include <vector>

namespace vg {

struct ImageSegment {
  uint32_t Base = 0;
  uint8_t Perms = 0;
  std::vector<uint8_t> Bytes;
};

/// A loadable guest program.
struct GuestImage {
  uint32_t Entry = 0;
  std::vector<ImageSegment> Segments;
  std::map<std::string, uint32_t> Symbols;
  /// Requested stack size (the loader rounds up to pages).
  uint32_t StackSize = 1 << 20;

  /// Address of a named symbol, or 0.
  uint32_t symbol(const std::string &Name) const {
    auto It = Symbols.find(Name);
    return It == Symbols.end() ? 0 : It->second;
  }
};

/// Convenience builder: collects finalized assemblers into an image.
class GuestImageBuilder {
public:
  /// Adds an executable segment from \p A (finalizes it).
  GuestImageBuilder &addCode(vg1::Assembler &A);
  /// Adds a read-write data segment from \p A (finalizes it).
  GuestImageBuilder &addData(vg1::Assembler &A);
  GuestImageBuilder &entry(uint32_t Addr) {
    Img.Entry = Addr;
    return *this;
  }
  GuestImageBuilder &stackSize(uint32_t Bytes) {
    Img.StackSize = Bytes;
    return *this;
  }
  GuestImage build() { return std::move(Img); }

private:
  void addSegment(vg1::Assembler &A, uint8_t Perms);
  GuestImage Img;
};

} // namespace vg

#endif // VG_CORE_GUESTIMAGE_H
