//===-- shadow/ShadowMemory.h - Shadow memory (R2) --------------*- C++ -*-==//
///
/// \file
/// Shadow memory for shadow-value tools (requirement R2). Two layouts are
/// provided, reproducing the Section 5.4 trade-off discussion:
///
///  - ShadowMap: Memcheck's two-level table ("How to shadow every byte of
///    memory used by a program", VEE 2007). A primary array of 64K entries
///    maps each 64KB chunk of guest space to a secondary holding one V-bit
///    byte per guest byte and one A-bit per guest byte. Unmaterialised
///    chunks share two distinguished secondaries (all-NoAccess,
///    all-Defined), so memory cost tracks the client's footprint. Works
///    for the whole 4GB guest space.
///
///  - DirectShadow: the TaintTrace-style layout — one flat allocation at a
///    fixed offset, making shadow access a single add. Fast, but only
///    covers a fixed window of the address space and wastes host memory
///    for sparse clients (the paper: "reserving large areas of address
///    space works most of the time on Linux, but is untenable on many
///    other OSes").
///
/// Encoding (Memcheck's): V-bit 1 = undefined, 0 = defined; A-bit 1 =
/// addressable. Unaddressable bytes read as fully undefined.
///
/// Fast paths (Section 5.4: shadow access dominates shadow-value tool
/// cost): aligned power-of-two accesses take a whole-word path — one
/// secondary lookup, one A-byte mask test, one memcpy of V-bytes — and a
/// per-thread last-secondary cache short-circuits the primary table for
/// consecutive accesses to the same 64KB chunk. probeLoadW32/probeStoreW32
/// are the non-faulting entry points for the JIT-inlined Memcheck fast
/// path (hvm SHPROBE); they never report errors, only succeed or punt.
///
/// Concurrency (DESIGN section 14): the primary is an array of atomic
/// Secondary pointers, so probes and loads are lock-free — one acquire
/// load plus plain byte reads. The chunk state transitions (CoW
/// materialise, whole-chunk DSM swap/reclaim) take a per-chunk striped
/// mutex; the last-secondary cache is thread-local and validated against a
/// per-map cache epoch bumped on every transition, which closes the
/// stale-pointer window where a cached secondary outlives its chunk's
/// reclamation. Under the sharded scheduler reclaimed secondaries are
/// parked in a graveyard until destruction (never freed or reused
/// mid-run), so even a racy guest's stale probe reads allocated memory.
/// Concurrent accesses to the same A-byte (guest bytes within the same
/// 8-byte group) are the guest's own data race; the MT heap allocator
/// rounds allocations to 8-byte granularity so race-free guests never
/// share an A-byte across threads.
///
//===----------------------------------------------------------------------===//
#ifndef VG_SHADOW_SHADOWMEMORY_H
#define VG_SHADOW_SHADOWMEMORY_H

#include "support/Sanitizers.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

namespace vg {

/// Result of an addressability probe.
struct AddrCheck {
  bool Ok = true;
  uint32_t FirstBad = 0;
};

/// Counters for the shadow fast/slow split (surfaced by --profile).
/// Relaxed atomics: bumped lock-free from every shard; the totals are
/// exact, the interleaving is not observable.
struct ShadowStats {
  std::atomic<uint64_t> FastLoads{0};  ///< JIT probe loads resolved inline
  std::atomic<uint64_t> SlowLoads{0};  ///< probe loads punted to mc_LOADV
  std::atomic<uint64_t> FastStores{0}; ///< JIT probe stores resolved inline
  std::atomic<uint64_t> SlowStores{0}; ///< probe stores punted to mc_STOREV
  std::atomic<uint64_t> SecCacheHits{0};   ///< last-secondary cache hits
  std::atomic<uint64_t> SecCacheMisses{0}; ///< went to the primary table
  std::atomic<uint64_t> Materialised{0};   ///< CoW events (monotonic)
  std::atomic<uint64_t> Reclaimed{0}; ///< owned secondaries released
  std::atomic<uint64_t> LiveChunks{0}; ///< currently owned secondaries
  std::atomic<uint64_t> HighWater{0};  ///< maximum LiveChunks ever reached

  void reset() {
    FastLoads = 0;
    SlowLoads = 0;
    FastStores = 0;
    SlowStores = 0;
    SecCacheHits = 0;
    SecCacheMisses = 0;
    Materialised = 0;
    Reclaimed = 0;
    LiveChunks = 0;
    HighWater = 0;
  }
};

/// The two-level Memcheck-style shadow map.
class ShadowMap {
public:
  static constexpr uint32_t ChunkBits = 16;
  static constexpr uint32_t ChunkSize = 1u << ChunkBits; // 64KB
  static constexpr uint32_t NumChunks = 1u << (32 - ChunkBits);

  /// probeLoadW32 result when the inline path must punt (bit 32 set so the
  /// JIT can test the high word; low word is then meaningless).
  static constexpr uint64_t ProbeSlow = 1ull << 32;

  ShadowMap();
  ~ShadowMap();
  ShadowMap(const ShadowMap &) = delete;
  ShadowMap &operator=(const ShadowMap &) = delete;

  /// Sharded-scheduler mode: reclaimed secondaries go to a graveyard freed
  /// at destruction instead of being deleted, so a concurrent lock-free
  /// probe that resolved the secondary just before the reclaim never
  /// touches freed memory. Off by default (single-threaded reclamation
  /// frees immediately, as before).
  void setDeferredReclaim(bool On) { DeferReclaim = On; }

  // --- range operations (the make_mem_* of Table 1) -----------------------
  void makeNoAccess(uint32_t Addr, uint32_t Len);
  void makeUndefined(uint32_t Addr, uint32_t Len);
  void makeDefined(uint32_t Addr, uint32_t Len);
  /// Copies both A and V bits (mremap/realloc support). Overlap-safe.
  void copyRange(uint32_t Src, uint32_t Dst, uint32_t Len);

  // --- per-access operations ----------------------------------------------
  /// Loads V-bits for \p Size (1/2/4/8) bytes at \p Addr, low byte first.
  /// Unaddressable bytes contribute 0xFF. \p Check reports the first
  /// unaddressable byte.
  // VG_NO_TSAN on the V/A byte paths: shadow bytes describing guest
  // data a guest race touches are racy by construction; any candidate
  // value is a correct shadow of the racy guest bytes (Sanitizers.h).
  VG_NO_TSAN uint64_t loadV(uint32_t Addr, uint32_t Size, AddrCheck &Check) const {
    // Whole-word path: an aligned power-of-two access never crosses a
    // chunk and its A-bits sit in one A-byte. (V-byte order assumes a
    // little-endian host, as does the rest of hvm.)
    if (Size >= 2 && Size <= 8 && (Size & (Size - 1)) == 0 &&
        (Addr & (Size - 1)) == 0) {
      const Secondary *S = readable(Addr >> ChunkBits);
      uint32_t Off = Addr & (ChunkSize - 1);
      uint8_t Mask = wordMask(Off, Size);
      if ((S->A[Off >> 3] & Mask) == Mask) {
        uint64_t V = 0;
        std::memcpy(&V, S->V.data() + Off, Size);
        return V;
      }
    }
    return loadVSlow(Addr, Size, Check);
  }
  /// Stores V-bits for \p Size bytes; \p Check as for loadV. Stores to
  /// unaddressable bytes leave their shadow untouched.
  VG_NO_TSAN void storeV(uint32_t Addr, uint32_t Size, uint64_t Vbits, AddrCheck &Check) {
    if (Size >= 2 && Size <= 8 && (Size & (Size - 1)) == 0 &&
        (Addr & (Size - 1)) == 0) {
      uint32_t Chunk = Addr >> ChunkBits;
      uint32_t Off = Addr & (ChunkSize - 1);
      uint8_t Mask = wordMask(Off, Size);
      const Secondary *S = readable(Chunk);
      if ((S->A[Off >> 3] & Mask) == Mask) {
        // readable() just validated/refilled the thread-local cache for
        // this chunk, so its owned pointer is current.
        Secondary *W = TLC.Owned;
        if (!W) {
          // A-bits full but not owned => the Defined DSM. Storing
          // all-defined V-bits there is a no-op; anything else must CoW.
          uint64_t Masked =
              Size == 8 ? Vbits : Vbits & ((1ull << (8 * Size)) - 1);
          if (Masked == 0)
            return;
          W = writable(Chunk);
        }
        std::memcpy(W->V.data() + Off, &Vbits, Size);
        return;
      }
    }
    storeVSlow(Addr, Size, Vbits, Check);
  }

  // --- JIT probe entry points (SHPROBE) -----------------------------------
  /// Non-faulting aligned-4 load probe. Returns the (all-defined) V-word —
  /// i.e. 0 — when the access is aligned, fully addressable, and fully
  /// defined; returns ProbeSlow otherwise so the JIT falls back to the
  /// mc_LOADV helper (which handles errors and partial definedness).
  VG_NO_TSAN uint64_t probeLoadW32(uint32_t Addr) const {
    if ((Addr & 3) == 0) {
      const Secondary *S = readable(Addr >> ChunkBits);
      uint32_t Off = Addr & (ChunkSize - 1);
      uint8_t Mask = static_cast<uint8_t>(0x0Fu << (Off & 7));
      if ((S->A[Off >> 3] & Mask) == Mask) {
        uint32_t W;
        std::memcpy(&W, S->V.data() + Off, 4);
        if (W == 0) {
          St.FastLoads.fetch_add(1, std::memory_order_relaxed);
          return 0;
        }
      }
    }
    St.SlowLoads.fetch_add(1, std::memory_order_relaxed);
    return ProbeSlow;
  }
  /// Non-faulting aligned-4 store probe. Returns 0 when the V-word was
  /// stored inline (chunk fully addressable and either owned, or the
  /// Defined DSM receiving an all-defined word); returns 1 to punt.
  VG_NO_TSAN uint64_t probeStoreW32(uint32_t Addr, uint32_t VWord) {
    if ((Addr & 3) == 0) {
      const Secondary *S = readable(Addr >> ChunkBits);
      uint32_t Off = Addr & (ChunkSize - 1);
      uint8_t Mask = static_cast<uint8_t>(0x0Fu << (Off & 7));
      if ((S->A[Off >> 3] & Mask) == Mask) {
        if (Secondary *W = TLC.Owned) {
          std::memcpy(W->V.data() + Off, &VWord, 4);
          St.FastStores.fetch_add(1, std::memory_order_relaxed);
          return 0;
        }
        if (VWord == 0) { // defined word into the Defined DSM: no-op
          St.FastStores.fetch_add(1, std::memory_order_relaxed);
          return 0;
        }
      }
    }
    St.SlowStores.fetch_add(1, std::memory_order_relaxed);
    return 1;
  }

  bool isAddressable(uint32_t Addr, uint32_t Len, uint32_t &FirstBad) const;
  /// True if [Addr,Addr+Len) is fully addressable and defined; else sets
  /// \p FirstBad to the first offending byte and \p BadIsUnaddressable.
  bool isDefined(uint32_t Addr, uint32_t Len, uint32_t &FirstBad,
                 bool &BadIsUnaddressable) const;

  uint8_t vbyte(uint32_t Addr) const;
  bool abit(uint32_t Addr) const;
  void setByte(uint32_t Addr, bool Addressable, uint8_t V);

  /// Materialised secondaries (memory-footprint statistics). Monotonic
  /// count of CoW materialise events; see chunksLive() for the current
  /// footprint.
  uint64_t chunksMaterialised() const { return St.Materialised; }
  uint64_t chunksLive() const { return St.LiveChunks; }
  uint64_t chunksHighWater() const { return St.HighWater; }
  uint64_t chunksReclaimed() const { return St.Reclaimed; }

  const ShadowStats &stats() const { return St; }
  void resetStats() { St.reset(); }

private:
  struct Secondary {
    std::array<uint8_t, ChunkSize> V;
    std::array<uint8_t, ChunkSize / 8> A;
  };

  static constexpr uint32_t NoChunk = ~0u;
  static constexpr uint32_t NumStripes = 64;

  /// A-byte mask for an aligned \p Size-byte access at chunk offset
  /// \p Off (the bits all land in A[Off >> 3]).
  static uint8_t wordMask(uint32_t Off, uint32_t Size) {
    return static_cast<uint8_t>(((1u << Size) - 1u) << (Off & 7));
  }

  static bool ownedSec(const Secondary *S) {
    return S != &DsmNoAccess && S != &DsmDefined;
  }

  /// Per-thread last-secondary cache line. Keyed by (map instance, cache
  /// epoch, chunk): any chunk state transition anywhere in the map bumps
  /// the epoch and invalidates every thread's cached entry, so a cached
  /// secondary can never outlive its chunk's reclamation — the PR 2
  /// shared one-entry cache could, once a second thread existed.
  struct TLCache {
    uint64_t Map = 0; ///< ShadowMap::Id of the owning map (0 = empty)
    uint64_t Epoch = 0;
    uint32_t Chunk = NoChunk;
    const Secondary *Sec = nullptr;
    Secondary *Owned = nullptr;
  };
  static thread_local TLCache TLC;

  /// Cached secondary lookup: lock-free (one epoch load + one primary
  /// acquire load on miss). Also records, in TLC.Owned, whether the
  /// resolved secondary is owned (writable without CoW).
  const Secondary *readable(uint32_t ChunkIdx) const {
    uint64_t E = CacheEpoch.load(std::memory_order_acquire);
    if (TLC.Map == Id && TLC.Epoch == E && TLC.Chunk == ChunkIdx) {
      St.SecCacheHits.fetch_add(1, std::memory_order_relaxed);
      return TLC.Sec;
    }
    St.SecCacheMisses.fetch_add(1, std::memory_order_relaxed);
    Secondary *S = Primary[ChunkIdx].load(std::memory_order_acquire);
    TLC = {Id, E, ChunkIdx, S, ownedSec(S) ? S : nullptr};
    return S;
  }
  Secondary *writable(uint32_t ChunkIdx) {
    uint64_t E = CacheEpoch.load(std::memory_order_acquire);
    if (TLC.Map == Id && TLC.Epoch == E && TLC.Chunk == ChunkIdx &&
        TLC.Owned) {
      St.SecCacheHits.fetch_add(1, std::memory_order_relaxed);
      return TLC.Owned;
    }
    Secondary *S = Primary[ChunkIdx].load(std::memory_order_acquire);
    if (ownedSec(S)) {
      TLC = {Id, E, ChunkIdx, S, S};
      return S;
    }
    return materialise(ChunkIdx);
  }

  Secondary *materialise(uint32_t ChunkIdx);
  /// Swaps the whole chunk to a distinguished secondary, reclaiming any
  /// owned secondary (deleted, or parked in the graveyard under the
  /// sharded scheduler).
  void setWholeChunk(uint32_t ChunkIdx, Secondary *Dsm);

  uint64_t loadVSlow(uint32_t Addr, uint32_t Size, AddrCheck &Check) const;
  void storeVSlow(uint32_t Addr, uint32_t Size, uint64_t Vbits,
                  AddrCheck &Check);

  /// The primary: one atomic pointer per 64KB chunk — an owned secondary
  /// or one of the two distinguished ones. Readers acquire-load it with
  /// no lock; transitions happen under the chunk's stripe.
  std::vector<std::atomic<Secondary *>> Primary;
  std::array<std::mutex, NumStripes> Stripes;
  /// Bumped (release) on every materialise and whole-chunk swap;
  /// invalidates every thread's TLC entry for this map.
  std::atomic<uint64_t> CacheEpoch{0};
  std::mutex ReclaimMu; ///< guards Graveyard
  std::vector<std::unique_ptr<Secondary>> Graveyard;
  bool DeferReclaim = false;
  uint64_t Id; ///< process-unique map instance id (TLC key)

  mutable ShadowStats St;

  static Secondary DsmNoAccess, DsmDefined;
  static bool DsmInit;
};

/// The flat, fixed-window shadow layout (ablation comparator).
class DirectShadow {
public:
  /// Covers [WindowBase, WindowBase + WindowSize).
  DirectShadow(uint32_t WindowBase, uint32_t WindowSize);

  bool covers(uint32_t Addr, uint32_t Len) const {
    return Addr >= Base && Addr + Len <= Base + Size && Addr + Len >= Addr;
  }

  void makeNoAccess(uint32_t Addr, uint32_t Len);
  void makeUndefined(uint32_t Addr, uint32_t Len);
  void makeDefined(uint32_t Addr, uint32_t Len);

  uint64_t loadV(uint32_t Addr, uint32_t Sz, AddrCheck &Check) const;
  void storeV(uint32_t Addr, uint32_t Sz, uint64_t Vbits, AddrCheck &Check);

private:
  uint32_t Base, Size;
  std::vector<uint8_t> V; ///< one byte per guest byte
  std::vector<uint8_t> A; ///< one byte per guest byte (keeps it branchless)
};

} // namespace vg

#endif // VG_SHADOW_SHADOWMEMORY_H
