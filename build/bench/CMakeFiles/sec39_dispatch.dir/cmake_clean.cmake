file(REMOVE_RECURSE
  "CMakeFiles/sec39_dispatch.dir/sec39_dispatch.cpp.o"
  "CMakeFiles/sec39_dispatch.dir/sec39_dispatch.cpp.o.d"
  "sec39_dispatch"
  "sec39_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec39_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
